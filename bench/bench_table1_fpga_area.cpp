// Regenerates Table I (FPGA area on Artix-7 @75 MHz) and the ASIC area /
// power figures of §IV-A ② from the structural area model.
//
// The model is calibrated on the paper's own anchors (see
// src/hw/area_model.hpp); the PASTA-3 omega=33/54 rows are model
// *predictions* the paper does not report.
#include <iostream>

#include "common/table.hpp"
#include "core/poe.hpp"

namespace {

using namespace poe;

std::string pct(std::uint64_t used, std::uint64_t avail) {
  return percent(static_cast<double>(used) / static_cast<double>(avail), 0);
}

}  // namespace

int main() {
  hw::AreaModel model;
  hw::FpgaDevice device;

  std::cout << "=== Table I: PASTA-3/4 on Artix-7 (75 MHz target) ===\n";
  TextTable t;
  t.header({"Scheme", "w", "LUT (paper)", "LUT (model)", "FF (paper)",
            "FF (model)", "DSP (paper)", "DSP (model)", "LUT%", "DSP%"});
  struct Row {
    const char* scheme;
    unsigned omega;
    bool paper_row;
  };
  for (const auto& row : hw::paper_table1()) {
    const auto params = row.t == 128
                            ? pasta::pasta3(pasta::pasta_prime(row.omega))
                            : pasta::pasta4(pasta::pasta_prime(row.omega));
    const auto r = model.fpga(params);
    t.row({row.scheme, std::to_string(row.omega), with_commas(row.lut),
           with_commas(r.lut), with_commas(row.ff), with_commas(r.ff),
           std::to_string(row.dsp), std::to_string(r.dsp),
           pct(r.lut, device.lut), pct(r.dsp, device.dsp)});
  }
  t.separator();
  // Model predictions beyond the paper's rows.
  for (unsigned omega : {33u, 54u}) {
    const auto params = pasta::pasta3(pasta::pasta_prime(omega));
    const auto r = model.fpga(params);
    t.row({"PASTA-3*", std::to_string(omega), "-", with_commas(r.lut), "-",
           with_commas(r.ff), "-", std::to_string(r.dsp),
           pct(r.lut, device.lut), pct(r.dsp, device.dsp)});
  }
  t.print(std::cout);
  std::cout << "(* model prediction, not reported in the paper; the design "
               "uses 0 BRAM in all configurations)\n\n";

  std::cout << "=== ASIC area and power (Sec. IV-A (2)) ===\n";
  TextTable a;
  a.header({"Scheme", "w", "28nm mm2", "7nm mm2", "area vs w=17",
            "power @28nm (W)"});
  for (unsigned omega : {17u, 33u, 54u}) {
    for (const auto& params : {pasta::pasta4(pasta::pasta_prime(omega)),
                               pasta::pasta3(pasta::pasta_prime(omega))}) {
      const double a28 = model.asic_mm2(params, 28);
      const double a7 = model.asic_mm2(params, 7);
      const double base = model.asic_mm2(
          params.t == 32 ? pasta::pasta4() : pasta::pasta3(), 28);
      a.row({params.name, std::to_string(omega), fixed(a28, 3), fixed(a7, 3),
             fixed(a28 / base, 2) + "x",
             fixed(model.asic_power_w(params, 28), 2)});
    }
  }
  a.print(std::cout);
  std::cout
      << "Paper anchors: 0.24 mm2 @28nm, 0.03 mm2 @7nm (PASTA-4 w=17); "
         "area x2.1 @w=33, x4.3 @w=54; max power 1.2 W.\n";

  // §IV-A "Bitlength Comparison": area-time product across widths (cycles
  // per XOF word are width-invariant; see EXPERIMENTS.md for the measured
  // rejection-rate refinement).
  std::cout << "\n=== Area-time across bit widths (PASTA-4) ===\n";
  TextTable at;
  at.header({"w", "LUT", "rel. area", "rejection rate", "rel. cycles",
             "area-time vs w=17"});
  const double base_lut =
      static_cast<double>(model.fpga(pasta::pasta4()).lut);
  const double base_rate = pasta::pasta4().expected_words_per_element();
  for (unsigned omega : {17u, 33u, 54u, 60u}) {
    const auto params = pasta::pasta4(pasta::pasta_prime(omega));
    const double lut = static_cast<double>(model.fpga(params).lut);
    const double rate = params.expected_words_per_element();
    const double rel_cycles = rate / base_rate;  // XOF-bound
    at.row({std::to_string(omega), with_commas(model.fpga(params).lut),
            fixed(lut / base_lut, 2) + "x", fixed(rate, 2) + " words/elem",
            fixed(rel_cycles, 2) + "x",
            fixed(lut / base_lut * rel_cycles, 2) + "x"});
  }
  at.print(std::cout);
  std::cout << "Paper: \"area-time product increases\" with width. Nuance "
               "our model surfaces: the reference 33-bit modulus rejects "
               "almost nothing, so its blocks run ~1.9x faster and the "
               "area-time product is break-even with w=17; only beyond "
               "~54 bits does area growth dominate (see EXPERIMENTS.md).\n";
  return 0;
}
