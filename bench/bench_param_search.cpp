// Noise-aware parameter right-sizing tool (profile -> replay -> search).
//
// Records each transcipher server's circuit under the oversized legacy
// configs, searches the smallest BgvParams whose replayed output budget
// clears the safety band under the security table, and validates the
// result LIVE: the right-sized config (automatic mod-switch scheduling)
// must decrypt correctly, its measured budget must sit inside the band,
// and the batched path must beat the legacy config end to end.
//
// The chosen parameters are pasted into HheConfig::{test,demo,batched_*}
// (src/hhe/protocol.cpp); the param_search fixed-point test re-derives
// them so they cannot drift from this tool or the security table.
//
// Default: the PASTA-mini test profiles. POE_FULL_HHE=1 adds the full
// PASTA-4 demo profiles (minutes).
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/table.hpp"
#include "fhe/encoding.hpp"
#include "fhe/param_search.hpp"
#include "hhe/batched_server.hpp"
#include "hhe/profile.hpp"
#include "hhe/protocol.hpp"

namespace {
using namespace poe;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}

struct CaseResult {
  std::string name;
  fhe::SearchResult search;
  double legacy_log_q = 0;
  double legacy_s = 0;       ///< legacy end-to-end block time
  double rightsized_s = 0;   ///< right-sized end-to-end block time
  double measured_budget = 0;
  double predicted_budget = 0;
  bool decrypt_ok = false;
  bool matches_checked_in = false;
};

std::string params_literal(const fhe::BgvParams& p) {
  std::ostringstream os;
  os << "{n=" << p.n << ", num_primes=" << p.num_primes << ", prime_bits="
     << p.prime_bits << ", relin_digit_bits=" << p.relin_digit_bits << "}";
  return os.str();
}

bool same_params(const fhe::BgvParams& a, const fhe::BgvParams& b) {
  return a.n == b.n && a.t == b.t && a.num_primes == b.num_primes &&
         a.prime_bits == b.prime_bits &&
         a.relin_digit_bits == b.relin_digit_bits;
}

// Run one coefficient-wise transcipher block under `cfg`; returns seconds.
double run_coefficient(const hhe::HheConfig& cfg, hhe::ServerReport& rep,
                       bool& ok) {
  fhe::Bgv bgv(cfg.bgv);
  Xoshiro256 rng(3);
  const auto key = pasta::PastaCipher::random_key(cfg.pasta, rng);
  hhe::HheClient client(cfg, bgv, key);
  hhe::HheServer server(cfg, bgv, client.encrypt_key());
  std::vector<std::uint64_t> msg(cfg.pasta.t);
  for (auto& m : msg) m = rng.below(cfg.pasta.p);
  const auto sym = client.encrypt(msg, /*nonce=*/5);
  const auto t0 = Clock::now();
  const auto out = server.transcipher_block(sym, /*nonce=*/5, 0, &rep);
  const double s = seconds_since(t0);
  ok = client.decrypt_result(out) == msg;
  return s;
}

// Run one batched transcipher block under `cfg` (warmed up); returns seconds.
double run_batched(const hhe::HheConfig& cfg, hhe::ServerReport& rep,
                   bool& ok) {
  fhe::Bgv bgv(cfg.bgv);
  Xoshiro256 rng(3);
  const auto key = pasta::PastaCipher::random_key(cfg.pasta, rng);
  hhe::HheClient client(cfg, bgv, key);
  fhe::BatchEncoder encoder(cfg.bgv.n, cfg.bgv.t);
  fhe::SlotLayout layout(cfg.bgv.n, cfg.bgv.t);
  hhe::BatchedHheServer server(
      cfg, bgv, hhe::encrypt_key_batched(cfg, bgv, encoder, layout, key));
  std::vector<std::uint64_t> msg(cfg.pasta.t);
  for (auto& m : msg) m = rng.below(cfg.pasta.p);
  const auto sym = client.encrypt(msg, /*nonce=*/5);
  server.transcipher_block(sym, /*nonce=*/5, 0, nullptr);  // warm-up
  const auto t0 = Clock::now();
  const auto out = server.transcipher_block(sym, /*nonce=*/5, 0, &rep);
  const double s = seconds_since(t0);
  ok = hhe::BatchedHheServer::decode_block(cfg, bgv, out, msg.size()) == msg;
  return s;
}

CaseResult run_case(const std::string& name, const hhe::HheConfig& legacy,
                    const hhe::HheConfig& checked_in, bool batched) {
  CaseResult r;
  r.name = name;
  std::cout << "\n=== " << name << " ===\n";

  auto t0 = Clock::now();
  const fhe::CircuitProfile profile =
      batched ? hhe::record_batched_profile(legacy)
              : hhe::record_coefficient_profile(legacy);
  std::cout << "profile: " << profile.tape.size() << " tape nodes, "
            << profile.outputs.size() << " outputs, recorded in "
            << fixed(seconds_since(t0), 2) << " s under legacy "
            << params_literal(legacy.bgv) << "\n";

  fhe::SearchConstraints c;
  c.t = legacy.bgv.t;
  c.seed = legacy.bgv.seed;
  c.policy.margin = checked_in.switch_margin;
  t0 = Clock::now();
  r.search = fhe::search_params(profile, c);
  POE_ENSURE(r.search.found, "search found no feasible parameters");
  r.legacy_log_q =
      static_cast<double>(legacy.bgv.num_primes) * legacy.bgv.prime_bits;
  r.matches_checked_in = same_params(r.search.params, checked_in.bgv);
  std::cout << "search: " << r.search.candidates_tried << " candidates in "
            << fixed(seconds_since(t0), 2) << " s\n"
            << "chosen: " << params_literal(r.search.params) << " — log2(q) "
            << fixed(r.search.log_q, 0) << " (cap "
            << fixed(r.search.security_cap, 0) << ", legacy "
            << fixed(r.legacy_log_q, 0) << "), "
            << r.search.sim.mod_switches << " scheduled switches, predicted "
            << "output budget " << fixed(r.search.sim.min_output_budget, 1)
            << " bits (band_low " << fixed(c.band_low, 0) << ")\n"
            << (r.matches_checked_in
                    ? "checked-in config matches the search output\n"
                    : "NOTE: checked-in config differs — paste the params "
                      "above into protocol.cpp\n");

  // Live A/B: legacy hand-placed schedule vs right-sized auto schedule.
  hhe::HheConfig rightsized = checked_in;
  rightsized.bgv = r.search.params;
  rightsized.bgv.t = legacy.bgv.t;
  rightsized.auto_mod_switch = true;
  hhe::ServerReport lrep, rrep;
  bool lok = false, rok = false;
  if (batched) {
    r.legacy_s = run_batched(legacy, lrep, lok);
    r.rightsized_s = run_batched(rightsized, rrep, rok);
  } else {
    r.legacy_s = run_coefficient(legacy, lrep, lok);
    r.rightsized_s = run_coefficient(rightsized, rrep, rok);
  }
  r.decrypt_ok = lok && rok;
  r.measured_budget = rrep.min_noise_budget_bits;
  r.predicted_budget = rrep.predicted_min_budget_bits;
  std::cout << "live: legacy " << fixed(r.legacy_s, 3) << " s -> right-sized "
            << fixed(r.rightsized_s, 3) << " s ("
            << fixed(r.legacy_s / r.rightsized_s, 2) << "x), measured budget "
            << fixed(r.measured_budget, 1) << " bits (predicted "
            << fixed(r.predicted_budget, 1) << ", legacy surplus was "
            << fixed(lrep.min_noise_budget_bits, 1) << "), decrypt "
            << (r.decrypt_ok ? "OK" : "MISMATCH") << "\n";
  return r;
}

}  // namespace

int main() {
  const bool full = std::getenv("POE_FULL_HHE") != nullptr;
  std::cout << "=== Circuit-profile parameter search (noise right-sizing) "
            << "===\n";
  if (!full) {
    std::cout << "(test profiles only; POE_FULL_HHE=1 adds full PASTA-4)\n";
  }

  std::vector<CaseResult> results;
  results.push_back(run_case("coefficient/test",
                             hhe::HheConfig::test_legacy(),
                             hhe::HheConfig::test(), /*batched=*/false));
  results.push_back(run_case("batched/test",
                             hhe::HheConfig::batched_test_legacy(),
                             hhe::HheConfig::batched_test(),
                             /*batched=*/true));
  if (full) {
    results.push_back(run_case("coefficient/demo",
                               hhe::HheConfig::demo_legacy(),
                               hhe::HheConfig::demo(), /*batched=*/false));
    results.push_back(run_case("batched/demo",
                               hhe::HheConfig::batched_demo_legacy(),
                               hhe::HheConfig::batched_demo(),
                               /*batched=*/true));
  }

  bool ok = true;
  {
    std::ofstream json("BENCH_param_search.json");
    json << "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const CaseResult& r = results[i];
      const fhe::BgvParams& p = r.search.params;
      json << "    {\"name\": \"" << r.name << "\", \"n\": " << p.n
           << ", \"num_primes\": " << p.num_primes
           << ", \"prime_bits\": " << p.prime_bits
           << ", \"relin_digit_bits\": " << p.relin_digit_bits
           << ", \"log_q\": " << fixed(r.search.log_q, 0)
           << ", \"legacy_log_q\": " << fixed(r.legacy_log_q, 0)
           << ", \"security_cap\": " << fixed(r.search.security_cap, 0)
           << ", \"mod_switches\": " << r.search.sim.mod_switches
           << ", \"predicted_budget_bits\": " << fixed(r.predicted_budget, 1)
           << ", \"noise_budget_bits\": " << fixed(r.measured_budget, 1)
           << ", \"legacy_s\": " << fixed(r.legacy_s, 4)
           << ", \"rightsized_s\": " << fixed(r.rightsized_s, 4)
           << ", \"speedup\": " << fixed(r.legacy_s / r.rightsized_s, 2)
           << ", \"matches_checked_in\": "
           << (r.matches_checked_in ? "true" : "false")
           << ", \"decrypt_ok\": " << (r.decrypt_ok ? "true" : "false")
           << "}" << (i + 1 < results.size() ? "," : "") << "\n";
      ok = ok && r.decrypt_ok && r.matches_checked_in;
    }
    json << "  ]\n}\n";
    std::cout << "\n(wrote BENCH_param_search.json)\n";
  }
  return ok ? 0 : 1;
}
