// Future-work study (§VI + [30] SASTA): the cost of fault / side-channel
// countermeasures on the PASTA cryptoprocessor, compared against paying the
// same protections on a PKE client accelerator — plus a live fault-injection
// demonstration of the attack surface and its detection.
#include <iostream>

#include "analytics/prior_works.hpp"
#include "common/table.hpp"
#include "core/poe.hpp"
#include "hw/countermeasures.hpp"

int main() {
  using namespace poe;
  using hw::Countermeasure;

  hw::AreaModel model;
  const auto params = pasta::pasta4();
  Xoshiro256 rng(1);
  const auto key = pasta::PastaCipher::random_key(params, rng);
  hw::AcceleratorSim sim(params);
  const auto base_cycles = sim.run_block(key, 1, 0).stats.total_cycles;

  std::cout << "=== Countermeasure cost on the PASTA cryptoprocessor "
               "(PASTA-4, w=17) ===\n";
  TextTable t;
  t.header({"Countermeasure", "cycles/block", "FPGA us", "kLUT", "DSP",
            "detects faults", "1st-order SCA"});
  for (auto cm : {Countermeasure::kNone, Countermeasure::kTemporalRedundancy,
                  Countermeasure::kSpatialRedundancy,
                  Countermeasure::kMasking}) {
    const auto cost = hw::countermeasure_cost(cm);
    const auto cycles = hw::protected_cycles(base_cycles, cm);
    const auto area = hw::protected_fpga(model, params, cm);
    t.row({hw::to_string(cm), with_commas(cycles),
           fixed(hw::fpga_artix7().cycles_to_us(cycles), 1),
           fixed(area.lut / 1000.0, 1), std::to_string(area.dsp),
           cost.detects_transient_faults ? "yes" : "no",
           cost.first_order_sca_protected ? "yes" : "no"});
  }
  t.print(std::cout);

  // The same protections on a PKE client accelerator scale from its much
  // larger baseline (Aloha-HE [18] as the representative design).
  const auto& aloha = analytics::table3_prior_works()[2];
  std::cout << "\n=== Same countermeasures on a PKE client accelerator "
               "(Aloha-HE [18] baseline) ===\n";
  TextTable p;
  p.header({"Countermeasure", "PKE us/encr", "PASTA us/block",
            "protection overhead ratio (PKE/PASTA, us)"});
  for (auto cm : {Countermeasure::kTemporalRedundancy,
                  Countermeasure::kMasking}) {
    const auto cost = hw::countermeasure_cost(cm);
    const double pke_us = aloha.encrypt_us * cost.cycle_factor;
    const double pasta_us = hw::fpga_artix7().cycles_to_us(
        hw::protected_cycles(base_cycles, cm));
    const double pke_extra = pke_us - aloha.encrypt_us;
    const double pasta_extra =
        pasta_us - hw::fpga_artix7().cycles_to_us(base_cycles);
    p.row({hw::to_string(cm), fixed(pke_us, 0), fixed(pasta_us, 1),
           fixed(pke_extra / pasta_extra, 0) + "x"});
  }
  p.print(std::cout);
  std::cout << "Absolute protection cost on the HHE client is ~two orders "
               "of magnitude below protecting the PKE path.\n";

  // Live fault injection (SASTA attack surface + detection).
  std::cout << "\n=== Fault injection demo ===\n";
  hw::FaultInjection fault{.affine_layer = 1, .left_half = true,
                           .element = 3, .delta = 42};
  const auto clean = sim.run_block(key, 7, 0);
  const auto faulty = sim.run_block(key, 7, 0, &fault);
  std::size_t corrupted = 0;
  for (std::size_t i = 0; i < params.t; ++i) {
    if (clean.keystream[i] != faulty.keystream[i]) ++corrupted;
  }
  std::cout << "Single transient fault in affine layer 1 corrupts "
            << corrupted << "/" << params.t
            << " keystream elements (full diffusion) — exactly the "
               "single-fault leverage SASTA [30] exploits.\n";
  const auto detect =
      hw::run_with_temporal_redundancy(sim, key, 7, 0, &fault);
  std::cout << "Temporal redundancy: fault "
            << (detect.detected ? "DETECTED" : "missed") << " at a cost of "
            << with_commas(detect.cycles) << " cycles (vs "
            << with_commas(clean.stats.total_cycles) << " unprotected).\n";
  return detect.detected ? 0 : 1;
}
