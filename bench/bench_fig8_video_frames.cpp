// Regenerates Fig. 8: encrypted video frames per second over a 5G uplink
// (12.5 and 112.5 MB/s) for QQVGA/QVGA/VGA, this work vs RISE [19], plus a
// real end-to-end frame encryption through the cycle-accurate model.
#include <iostream>

#include "app/video.hpp"
#include "common/table.hpp"
#include "core/poe.hpp"

namespace {
using namespace poe;

void print_series(const char* label, const analytics::PastaCommModel& tw) {
  analytics::RiseCommModel rise;
  const auto series = analytics::fig8_series(rise, tw);
  std::cout << "--- " << label << " ---\n";
  TextTable t;
  t.header({"Resolution", "Bandwidth", "RISE fps", "TW fps", "TW/RISE"});
  for (const auto& p : series) {
    t.row({p.resolution,
           fixed(p.bandwidth_bps / 1e6, 1) + " MBps",
           p.rise_fps < 1 ? fixed(p.rise_fps, 2) : fixed(p.rise_fps, 0),
           fixed(p.this_work_fps, 0), fixed(p.ratio, 0) + "x"});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "=== Fig. 8: encrypted frames per second over 5G ===\n";
  std::cout << "RISE ciphertext: "
            << fixed(analytics::RiseCommModel{}.ciphertext_bytes() / 1e6, 2)
            << " MB (N=2^14, logQ=390); TW block: 132 B (t=32, w=33).\n\n";

  analytics::PastaCommModel asic{
      .params = pasta::pasta4(pasta::pasta_prime(33)),
      .pixels_per_element = 1,
      .encrypt_us_per_block = 1.59};
  print_series("TW paced by the ASIC (1.59 us/block)", asic);

  analytics::PastaCommModel fpga = asic;
  fpga.encrypt_us_per_block = 21.2;
  print_series("TW paced by the Artix-7 FPGA (21.2 us/block)", fpga);

  analytics::PastaCommModel packed = asic;
  packed.pixels_per_element = 4;  // 4 x 8-bit pixels per 33-bit element
  print_series("TW with 4 pixels packed per element", packed);

  std::cout << "\nPaper anchors: RISE sends 70 QQVGA fps at 112.5 MBps and "
               "cannot send VGA at 12.5 MBps; TW sustains orders of "
               "magnitude more frames (the paper's headline '712x' mixes "
               "per-ciphertext and per-frame rates — see EXPERIMENTS.md).\n";

  // End-to-end: run one QQVGA frame through the cycle-accurate model.
  std::cout << "\n=== End-to-end frame encryption (cycle-accurate) ===\n";
  const auto params = pasta::pasta4(pasta::pasta_prime(33));
  Xoshiro256 rng(3);
  app::FrameEncryptor enc(params, pasta::PastaCipher::random_key(params, rng),
                          4);
  app::SyntheticCamera cam(analytics::qqvga());
  const auto frame = cam.next_frame();
  const auto encrypted = enc.encrypt(frame, 1);
  const double us = hw::asic_1ghz().cycles_to_us(encrypted.cycles);
  std::cout << "QQVGA frame: " << encrypted.ciphertext.size()
            << " elements, " << encrypted.bytes_on_wire << " B on the wire, "
            << with_commas(encrypted.cycles) << " cycles ("
            << fixed(us, 0) << " us @1GHz => "
            << fixed(1e6 / us, 0) << " fps compute-bound)\n";
  const auto back = enc.decrypt(encrypted, frame.resolution, 1);
  std::cout << "Decrypt check: "
            << (back.pixels == frame.pixels ? "OK" : "MISMATCH") << "\n";
  return 0;
}
