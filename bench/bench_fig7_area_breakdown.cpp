// Regenerates Fig. 7: module-wise area utilisation for the FPGA and ASIC
// realisations, from the structural weights of the area model.
//
// The paper's pie-chart values are only partially legible in the source
// text (MatGen ~33% on FPGA is the clearest anchor); we reproduce the
// *shape*: the MatGen MAC array is the largest module, the multiplier
// arrays together dominate, and the SHAKE core is a significant fixed block
// (proportionally larger on ASIC where arithmetic maps to dense logic).
#include <iostream>

#include "common/table.hpp"
#include "core/poe.hpp"

int main() {
  using namespace poe;
  hw::AreaModel model;

  for (const auto& params : {pasta::pasta3(), pasta::pasta4()}) {
    std::cout << "=== Fig. 7: module-wise area share — " << params.name
              << " (w=17) ===\n";
    TextTable t;
    t.header({"Module", "FPGA share", "ASIC share"});
    const auto fpga = model.breakdown(params, "fpga");
    const auto asic = model.breakdown(params, "asic");
    for (std::size_t i = 0; i < fpga.size(); ++i) {
      t.row({fpga[i].module, percent(fpga[i].fraction),
             percent(asic[i].fraction)});
    }
    t.print(std::cout);
  }
  std::cout << "Paper anchor: MatGen is the largest slice (~33% on FPGA); "
               "the design needs no BRAM because matrix rows are streamed, "
               "never stored (Sec. III-C).\n";
  return 0;
}
