// End-to-end HHE benchmark (the workflow of Fig. 1): client PASTA-encrypts,
// server homomorphically decrypts under BGV, client verifies.
//
// Default: the reduced PASTA-mini instance (t = 8, identical circuit
// structure) so the whole suite stays fast. Set POE_FULL_HHE=1 to run the
// full PASTA-4 transciphering (t = 32; takes on the order of a minute).
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/table.hpp"
#include "core/poe.hpp"
#include "hhe/batched_server.hpp"
#include "hhe/protocol.hpp"

namespace {
using namespace poe;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}

std::string counter_line(const CounterSnapshot& ops) {
  std::ostringstream os;
  os << ops.ntts() << " NTTs, " << ops.key_switch << " key switches ("
     << ops.hoisted_rotations << " hoisted rotations, " << ops.automorphisms
     << " automorphisms), " << ops.mod_switch
     << " mod switches, pool hit rate "
     << fixed(100.0 * ops.pool_hit_rate(), 1) << "% (" << ops.pool_misses
     << " fresh allocations, " << ops.bytes_copied << " bytes copied)";
  return os.str();
}

// One benchmark record for BENCH_hhe.json. Carries the BgvParams the run
// used plus the predicted-vs-measured budget slack, so the noise-budget CI
// smoke (scripts/check_noise_budget.py) can pin both the safety band and
// the soundness invariant predicted <= measured.
std::string json_record(const char* name, double seconds,
                        const fhe::BgvParams& params,
                        const hhe::ServerReport& rep) {
  const CounterSnapshot& ops = rep.exec_ops;
  std::ostringstream os;
  os << "    {\"name\": \"" << name << "\", \"ns_per_op\": "
     << static_cast<std::uint64_t>(seconds * 1e9)
     << ", \"ct_ct_mults\": " << rep.ct_ct_multiplications
     << ", \"ntt_forward\": " << ops.ntt_forward
     << ", \"ntt_inverse\": " << ops.ntt_inverse
     << ", \"key_switches\": " << ops.key_switch
     << ", \"automorphisms\": " << ops.automorphisms
     << ", \"hoisted_rotations\": " << ops.hoisted_rotations
     << ", \"mod_switches\": " << ops.mod_switch
     << ", \"pool_hits\": " << ops.pool_hits
     << ", \"pool_misses\": " << ops.pool_misses
     << ", \"pool_hit_rate\": " << fixed(ops.pool_hit_rate(), 4)
     << ", \"bytes_copied\": " << ops.bytes_copied
     << ", \"n\": " << params.n
     << ", \"num_primes\": " << params.num_primes
     << ", \"prime_bits\": " << params.prime_bits
     << ", \"relin_digit_bits\": " << params.relin_digit_bits
     << ", \"noise_budget_bits\": " << fixed(rep.min_noise_budget_bits, 1)
     << ", \"predicted_budget_bits\": "
     << fixed(rep.predicted_min_budget_bits, 1)
     << ", \"budget_slack_bits\": "
     << fixed(rep.min_noise_budget_bits - rep.predicted_min_budget_bits, 1)
     << "}";
  return os.str();
}
}  // namespace

int main() {
  const bool full = std::getenv("POE_FULL_HHE") != nullptr;
  const auto config = full ? hhe::HheConfig::demo() : hhe::HheConfig::test();
  std::cout << "=== HHE transciphering (Fig. 1 workflow) — "
            << config.pasta.name << ", BGV n=" << config.bgv.n << ", "
            << config.bgv.num_primes << "x" << config.bgv.prime_bits
            << "-bit primes ===\n";
  if (!full) {
    std::cout << "(reduced instance; POE_FULL_HHE=1 runs full PASTA-4)\n";
  }

  auto t0 = Clock::now();
  fhe::Bgv bgv(config.bgv);
  std::cout << "BGV keygen: " << fixed(seconds_since(t0), 2) << " s\n";

  Xoshiro256 rng(1);
  const auto key = pasta::PastaCipher::random_key(config.pasta, rng);
  hhe::HheClient client(config, bgv, key);

  t0 = Clock::now();
  auto key_cts = client.encrypt_key();
  const double key_enc_s = seconds_since(t0);
  hhe::HheServer server(config, bgv, std::move(key_cts));

  std::vector<std::uint64_t> msg(config.pasta.t);
  for (auto& m : msg) m = rng.below(config.pasta.p);
  const std::uint64_t nonce = 0xABCDEF;

  t0 = Clock::now();
  const auto sym_ct = client.encrypt(msg, nonce);
  const double sym_enc_s = seconds_since(t0);

  hhe::ServerReport report;
  t0 = Clock::now();
  const auto fhe_cts = server.transcipher_block(sym_ct, nonce, 0, &report);
  const double transcipher_s = seconds_since(t0);

  const auto recovered = client.decrypt_result(fhe_cts);
  const bool ok = recovered == msg;

  TextTable t;
  t.header({"Step", "Where", "Result"});
  t.row({"FHE-encrypt PASTA key (once)", "client",
         fixed(key_enc_s, 3) + " s, " +
             std::to_string(config.pasta.key_size()) + " cts"});
  t.row({"PASTA-encrypt one block", "client",
         fixed(sym_enc_s * 1e6, 0) + " us, " +
             std::to_string(pasta::ciphertext_bytes(config.pasta,
                                                    sym_ct.size())) +
             " B on the wire"});
  t.row({"Homomorphic PASTA decryption", "server",
         fixed(transcipher_s, 2) + " s, " +
             std::to_string(report.ct_ct_multiplications) + " ct-ct mults, " +
             std::to_string(report.scalar_multiplications) + " scalar mults"});
  t.row({"Noise budget after circuit", "server",
         fixed(report.min_noise_budget_bits, 1) + " bits at level " +
             std::to_string(report.final_level)});
  t.row({"Client decrypts server output", "client",
         ok ? "matches the original message" : "MISMATCH"});
  t.print(std::cout);
  std::cout << "exec counters: " << counter_line(report.exec_ops) << "\n";

  // --- Batched (SIMD) server: the whole state in one ciphertext.
  hhe::ServerReport brep;
  double bs = 0;
  const auto bcfg =
      full ? hhe::HheConfig::batched_demo() : hhe::HheConfig::batched_test();
  {
    std::cout << "\n=== Batched (SIMD) server — hoisted diagonal evaluation ===\n";
    t0 = Clock::now();
    fhe::Bgv bbgv(bcfg.bgv);
    fhe::BatchEncoder encoder(bcfg.bgv.n, bcfg.bgv.t);
    fhe::SlotLayout layout(bcfg.bgv.n, bcfg.bgv.t);
    hhe::HheClient bclient(bcfg, bbgv, key);
    hhe::BatchedHheServer bserver(
        bcfg, bbgv,
        hhe::encrypt_key_batched(bcfg, bbgv, encoder, layout, key));
    std::cout << "keygen + rotation keys: " << fixed(seconds_since(t0), 2)
              << " s\n";

    const auto bsym = bclient.encrypt(msg, nonce);
    // Warm-up block first: the measured record then reflects the
    // steady-state serving loop (zero pool misses once every slab size
    // class is cached — scripts/check_alloc_budget.py pins this).
    bserver.transcipher_block(bsym, nonce, 0, nullptr);
    t0 = Clock::now();
    const auto bout = bserver.transcipher_block(bsym, nonce, 0, &brep);
    bs = seconds_since(t0);
    const auto bmsg = hhe::BatchedHheServer::decode_block(bcfg, bbgv, bout,
                                                          msg.size());
    std::cout << "transcipher: " << fixed(bs, 2) << " s with "
              << brep.ct_ct_multiplications << " ct-ct mults (vs "
              << report.ct_ct_multiplications
              << " coefficient-wise) — key upload is 1 ciphertext instead of "
              << config.pasta.key_size() << "; result "
              << (bmsg == msg ? "matches" : "MISMATCH") << ", noise budget "
              << fixed(brep.min_noise_budget_bits, 1) << " bits\n";
    std::cout << "exec counters: " << counter_line(brep.exec_ops) << "\n";
  }

  // --- Multi-tenant service: the batched circuit amortised over a SIMD
  // batch of blocks, with plaintext-side preparation pipelined against the
  // BGV evaluation (see bench_service for the full client-count sweep).
  {
    const auto scfg =
        full ? hhe::HheConfig::batched_demo() : hhe::HheConfig::batched_test();
    std::cout << "\n=== Transcipher service — SIMD batch of "
              << "one client's blocks ===\n";
    fhe::Bgv sbgv(scfg.bgv);
    fhe::BatchEncoder senc(scfg.bgv.n, scfg.bgv.t);
    fhe::SlotLayout slay(scfg.bgv.n, scfg.bgv.t);
    service::TranscipherService svc(scfg, sbgv);
    svc.open_session(1, hhe::encrypt_key_batched(scfg, sbgv, senc, slay, key));

    const std::size_t nblocks = std::min<std::size_t>(8, svc.batch_capacity());
    pasta::PastaCipher cipher(scfg.pasta, key);
    std::vector<std::uint64_t> smsg(nblocks * scfg.pasta.t);
    Xoshiro256 srng(7);
    for (auto& m : smsg) m = srng.below(scfg.pasta.p);
    service::ServiceReport srep;
    const auto sres = svc.process(
        std::vector{service::TranscipherRequest{
            .client_id = 1,
            .nonce = 99,
            .symmetric_ct = cipher.encrypt(smsg, 99)}},
        &srep);
    std::vector<std::uint64_t> sgot;
    for (const auto& block : sres[0].blocks) {
      const auto vals =
          service::TranscipherService::decode_block(scfg, sbgv, block);
      sgot.insert(sgot.end(), vals.begin(), vals.end());
    }
    std::cout << nblocks << " blocks in " << fixed(srep.total_s, 2) << " s ("
              << fixed(srep.total_s / double(nblocks), 3)
              << " s/block vs " << fixed(bs, 2)
              << " single-block batched, " << fixed(transcipher_s, 2)
              << " coefficient-wise) — prep overlapped "
              << fixed(srep.prepare_s, 3) << " s behind evaluation; result "
              << (sgot == smsg ? "matches" : "MISMATCH") << "\n";
  }

  // --- PASTA-3 vs PASTA-4 on the SERVER (the flip side of the paper's
  // §IV-C client trade-off: fewer rounds means a cheaper homomorphic
  // decryption per element, which is why the HHE literature prefers
  // PASTA-3 server-side). Batched evaluation, full variants — only with
  // POE_FULL_HHE=1.
  if (full) {
    std::cout << "\n=== Server-side variant trade-off (batched) ===\n";
    for (const int variant : {3, 4}) {
      hhe::HheConfig vcfg = hhe::HheConfig::batched_demo();
      vcfg.pasta = variant == 3 ? pasta::pasta3() : pasta::pasta4();
      vcfg.bgv.n = 2048;  // cols = 1024, multiple of both state sizes
      fhe::Bgv vbgv(vcfg.bgv);
      Xoshiro256 vrng(9);
      const auto vkey = pasta::PastaCipher::random_key(vcfg.pasta, vrng);
      hhe::HheClient vclient(vcfg, vbgv, vkey);
      fhe::BatchEncoder venc(vcfg.bgv.n, vcfg.bgv.t);
      fhe::SlotLayout vlay(vcfg.bgv.n, vcfg.bgv.t);
      hhe::BatchedHheServer vserver(
          vcfg, vbgv,
          hhe::encrypt_key_batched(vcfg, vbgv, venc, vlay, vkey));
      std::vector<std::uint64_t> vmsg(vcfg.pasta.t, 123);
      const auto vct = vclient.encrypt(vmsg, 1);
      hhe::ServerReport vrep;
      t0 = Clock::now();
      const auto vout = vserver.transcipher_block(vct, 1, 0, &vrep);
      const double vs = seconds_since(t0);
      const auto vgot =
          hhe::BatchedHheServer::decode_block(vcfg, vbgv, vout, vmsg.size());
      std::cout << "  " << vcfg.pasta.name << ": " << fixed(vs, 2) << " s, "
                << vrep.ct_ct_multiplications << " ct-ct mults, "
                << fixed(vs * 1000 / vcfg.pasta.t, 1)
                << " ms per element transciphered, budget "
                << fixed(vrep.min_noise_budget_bits, 0) << " bits — "
                << (vgot == vmsg ? "OK" : "MISMATCH") << "\n";
    }
    std::cout << "  (PASTA-3's single extra-wide block amortises the server "
                 "circuit over 4x the elements with one fewer round — the "
                 "inverse of the client-side area trade-off.)\n";
  }

  // Communication comparison: HHE vs sending a fresh BGV ciphertext.
  const std::uint64_t bgv_ct_bytes =
      2ull * config.bgv.num_primes * config.bgv.n * 8;
  const std::uint64_t pasta_bytes =
      pasta::ciphertext_bytes(config.pasta, config.pasta.t);
  std::cout << "Communication per block: PASTA " << pasta_bytes
            << " B vs direct FHE upload " << with_commas(bgv_ct_bytes)
            << " B — " << fixed(static_cast<double>(bgv_ct_bytes) / pasta_bytes, 0)
            << "x expansion avoided (the point of HHE).\n";

  // Machine-readable record for regression tracking across PRs.
  {
    std::ofstream json("BENCH_hhe.json");
    json << "{\n  \"config\": \"" << config.pasta.name << "\",\n"
         << "  \"kernel_backend\": \""
         << ExecContext::global().kernel_backend_name() << "\",\n"
         << "  \"benchmarks\": [\n"
         << json_record("transcipher_block_coefficient", transcipher_s,
                        config.bgv, report)
         << ",\n"
         << json_record("transcipher_block_batched", bs, bcfg.bgv, brep)
         << "\n"
         << "  ]\n}\n";
    std::cout << "(wrote BENCH_hhe.json)\n";
  }
  return ok ? 0 : 1;
}
