// Regenerates the §IV-B cycle-count derivation: Keccak permutation counts
// per block, the overlapped-vs-naive Keccak ablation, and the
// nonce-dependent cycle distribution.
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common/table.hpp"
#include "core/poe.hpp"

int main() {
  using namespace poe;

  std::cout << "=== Sec. IV-B: XOF schedule ablation ===\n";
  TextTable t;
  t.header({"Scheme", "Keccak mode", "mean cycles", "min..max", "mean perms",
            "XOF stalls"});

  for (const auto& params : {pasta::pasta4(), pasta::pasta3()}) {
    Xoshiro256 rng(5);
    const auto key = pasta::PastaCipher::random_key(params, rng);
    for (const bool naive : {false, true}) {
      hw::XofTimingConfig cfg;
      cfg.mode = naive ? hw::KeccakMode::kNaive : hw::KeccakMode::kOverlapped;
      hw::AcceleratorSim sim(params, cfg);
      std::uint64_t sum = 0, perms = 0, stalls = 0;
      std::uint64_t lo = ~0ull, hi = 0;
      const int kBlocks = 20;
      for (int i = 0; i < kBlocks; ++i) {
        const auto r = sim.run_block(key, 100 + i, 0);
        sum += r.stats.total_cycles;
        perms += r.stats.permutations;
        stalls += r.stats.xof_stall_cycles;
        lo = std::min(lo, r.stats.total_cycles);
        hi = std::max(hi, r.stats.total_cycles);
      }
      t.row({params.name, naive ? "naive" : "overlapped [14]",
             with_commas(sum / kBlocks),
             with_commas(lo) + ".." + with_commas(hi),
             fixed(static_cast<double>(perms) / kBlocks, 1),
             std::to_string(stalls)});
    }
    t.separator();
  }
  t.print(std::cout);

  // Reconstructed Fig.-3 schedule from a real PASTA-4 block (write
  // schedule.vcd with POE_DUMP_VCD=1 for GTKWave).
  {
    const auto params = pasta::pasta4();
    Xoshiro256 rng(6);
    const auto key = pasta::PastaCipher::random_key(params, rng);
    hw::AcceleratorSim sim(params);
    hw::ScheduleTrace trace;
    const auto r = sim.run_block(key, 7, 0, nullptr, &trace);
    std::cout << "\nReconstructed schedule (PASTA-4 block, "
              << with_commas(r.stats.total_cycles) << " cycles):\n";
    trace.print_timeline(std::cout, r.stats.total_cycles, 100);
    std::cout << "Unit utilisation: xof "
              << percent(trace.utilisation(hw::Unit::kXof,
                                           r.stats.total_cycles))
              << ", mat engine "
              << percent(trace.utilisation(hw::Unit::kMatEngine,
                                           r.stats.total_cycles))
              << ", adders "
              << percent(trace.utilisation(hw::Unit::kVecAdd,
                                           r.stats.total_cycles))
              << "\n";
    if (std::getenv("POE_DUMP_VCD") != nullptr) {
      std::ofstream vcd("schedule.vcd");
      trace.write_vcd(vcd, r.stats.total_cycles);
      std::cout << "wrote schedule.vcd\n";
    }
  }

  std::cout
      << "Paper: PASTA-4 needs ~60 permutations and 60*(21+5) = 1,560 cc of "
         "XOF + 32 cc final Mix = 1,592 cc; a naive Keccak 'almost doubles' "
         "the cycle count. PASTA-3: ~186 permutations, 4,964 cc total.\n"
      << "Expected rejection-sampling rate for p = 65537 with a 17-bit mask "
         "is 2.0x; measured rates follow the nonce (hence the min..max "
         "spread above).\n";
  return 0;
}
