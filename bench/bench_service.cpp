// Multi-tenant transcipher service benchmark: client-count sweep.
//
// Each client opens a session (cached encrypted PASTA key) and submits one
// multi-block message; the service packs blocks from DIFFERENT tenants into
// shared SIMD batches (per-tenant tile ranges, merged masked keys) and
// overlaps plaintext-side batch preparation (SHAKE squeeze, rejection
// sampling, matrix generation) with the BGV evaluation of the previous
// batch — the software analogue of the paper's Fig. 3 schedule. At 8
// clients x 4 blocks the packed batch is exactly full (32 tiles):
// occupancy 1.0 where per-client batching idled at 0.125.
//
// Two reference points anchor the numbers: the same 8-client workload with
// cross-tenant packing disabled (per-client batches, the pre-packing
// service), and sequential per-client coefficient-wise
// HheServer::transcipher calls. The service must beat the coefficient-wise
// baseline by >= 1.3x aggregate throughput.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/table.hpp"
#include "core/poe.hpp"
#include "hhe/batched_server.hpp"

namespace {
using namespace poe;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}

struct SweepPoint {
  std::size_t clients = 0;
  service::ServiceReport report;
};
}  // namespace

int main() {
  const auto config = hhe::HheConfig::batched_test();
  const std::size_t blocks_per_client = 4;
  const std::vector<std::size_t> client_counts = {1, 2, 4, 8};

  std::cout << "=== Multi-tenant transcipher service — " << config.pasta.name
            << ", BGV n=" << config.bgv.n << " ===\n";

  auto t0 = Clock::now();
  fhe::Bgv bgv(config.bgv);
  fhe::BatchEncoder encoder(config.bgv.n, config.bgv.t);
  fhe::SlotLayout layout(config.bgv.n, config.bgv.t);
  const auto simd_keys =
      hhe::SimdBatchEngine::make_shared_rotation_keys(config, bgv);
  std::cout << "BGV keygen + rotation keys: " << fixed(seconds_since(t0), 2)
            << " s\n";

  // One key/cipher per client id (the same across all sweep points so the
  // sweep measures scheduling, not key material).
  const std::size_t max_clients = client_counts.back();
  Xoshiro256 rng(42);
  std::vector<std::vector<std::uint64_t>> keys(max_clients);
  std::vector<pasta::PastaCipher> ciphers;
  std::vector<fhe::Ciphertext> key_cts;
  for (std::size_t c = 0; c < max_clients; ++c) {
    keys[c] = pasta::PastaCipher::random_key(config.pasta, rng);
    ciphers.emplace_back(config.pasta, keys[c]);
    key_cts.push_back(
        hhe::encrypt_key_batched(config, bgv, encoder, layout, keys[c]));
  }
  const std::size_t msg_len = blocks_per_client * config.pasta.t;
  std::vector<std::vector<std::uint64_t>> msgs(max_clients);
  for (auto& msg : msgs) {
    msg.resize(msg_len);
    for (auto& m : msg) m = rng.below(config.pasta.p);
  }

  // ---- Sweep: N clients through the pipelined service. -------------------
  std::vector<SweepPoint> sweep;
  for (const std::size_t n : client_counts) {
    service::ServiceConfig scfg;
    scfg.max_sessions = max_clients;
    service::TranscipherService svc(config, bgv, scfg, simd_keys);
    std::vector<service::TranscipherRequest> reqs;
    for (std::size_t c = 0; c < n; ++c) {
      svc.open_session(c + 1, key_cts[c]);
      reqs.push_back(service::TranscipherRequest{
          .client_id = c + 1,
          .nonce = 7000 + c,
          .symmetric_ct = ciphers[c].encrypt(msgs[c], 7000 + c)});
    }
    // Untimed warm-up wave: faults in every slab shape this client count
    // needs (per-tenant key merge included), so the measured wave reports
    // STEADY-STATE counters — scripts/check_alloc_budget.py pins its pool
    // misses at zero.
    std::vector<service::TranscipherRequest> warm_reqs;
    for (std::size_t c = 0; c < n; ++c) {
      warm_reqs.push_back(service::TranscipherRequest{
          .client_id = c + 1,
          .nonce = 6000 + c,
          .symmetric_ct = ciphers[c].encrypt(msgs[c], 6000 + c)});
    }
    for (const auto& r : svc.process(warm_reqs)) {
      if (!r.ok()) {
        std::cerr << "warm-up request degraded: " << r.error << "\n";
        return 1;
      }
    }
    SweepPoint point;
    point.clients = n;
    const auto results = svc.process(reqs, &point.report);
    // Verify every request succeeded and every block round-trips before
    // trusting the numbers (the robustness layer degrades per request
    // instead of throwing, so a silent failure would otherwise skew the
    // sweep).
    for (std::size_t c = 0; c < n; ++c) {
      if (!results[c].ok()) {
        std::cerr << "request for client " << c + 1 << " degraded: "
                  << to_string(results[c].status) << " ("
                  << results[c].error << ")\n";
        return 1;
      }
      std::vector<std::uint64_t> got;
      for (const auto& block : results[c].blocks) {
        const auto vals =
            service::TranscipherService::decode_block(config, bgv, block);
        got.insert(got.end(), vals.begin(), vals.end());
      }
      if (got != msgs[c]) {
        std::cerr << "MISMATCH for client " << c + 1 << "\n";
        return 1;
      }
    }
    // No injector is registered: the fault points are on the hot path at
    // their unarmed cost (one pointer load each), and the counters must
    // read all-quiet.
    if (point.report.faults.ok != n || point.report.faults.injected != 0 ||
        point.report.faults.retries != 0) {
      std::cerr << "unexpected fault accounting in a fault-free run\n";
      return 1;
    }
    sweep.push_back(std::move(point));
  }

  TextTable t;
  t.header({"Clients", "Blocks", "Batches", "X-tenant", "Total s", "s/block",
            "Blocks/s", "Occupancy", "Prep overlap s"});
  for (const auto& p : sweep) {
    const auto& r = p.report;
    t.row({std::to_string(p.clients), std::to_string(r.blocks),
           std::to_string(r.batches), std::to_string(r.cross_tenant_batches),
           fixed(r.total_s, 2), fixed(r.total_s / double(r.blocks), 3),
           fixed(r.blocks_per_s, 2), fixed(r.avg_batch_occupancy, 3),
           fixed(r.prepare_s, 3)});
  }
  t.print(std::cout);

  // ---- Reference: the same 8-client workload, packing disabled. ----------
  service::ServiceReport unpacked;
  {
    service::ServiceConfig scfg;
    scfg.max_sessions = max_clients;
    scfg.cross_tenant_packing = false;
    service::TranscipherService svc(config, bgv, scfg, simd_keys);
    std::vector<service::TranscipherRequest> reqs;
    for (std::size_t c = 0; c < max_clients; ++c) {
      svc.open_session(c + 1, key_cts[c]);
      reqs.push_back(service::TranscipherRequest{
          .client_id = c + 1,
          .nonce = 7000 + c,
          .symmetric_ct = ciphers[c].encrypt(msgs[c], 7000 + c)});
    }
    const auto results = svc.process(reqs, &unpacked);
    for (const auto& res : results) {
      if (!res.ok()) {
        std::cerr << "unpacked reference degraded: " << res.error << "\n";
        return 1;
      }
    }
    const double packed_vs_unpacked =
        sweep.back().report.blocks_per_s / unpacked.blocks_per_s;
    std::cout << "\nunpacked reference @ " << max_clients
              << " clients: occupancy " << fixed(unpacked.avg_batch_occupancy, 3)
              << ", " << fixed(unpacked.blocks_per_s, 2)
              << " blocks/s -> packing speedup "
              << fixed(packed_vs_unpacked, 2) << "x\n";
  }

  // ---- Baseline at 8 clients: sequential coefficient-wise serving. -------
  const auto coeff_config = hhe::HheConfig::test();
  fhe::Bgv coeff_bgv(coeff_config.bgv);
  double baseline_s = 0;
  std::size_t baseline_blocks = 0;
  {
    std::cout << "\nbaseline: sequential per-client HheServer::transcipher ("
              << max_clients << " clients x " << blocks_per_client
              << " blocks)...\n";
    std::vector<hhe::HheServer> servers;
    servers.reserve(max_clients);
    for (std::size_t c = 0; c < max_clients; ++c) {
      hhe::HheClient client(coeff_config, coeff_bgv, keys[c]);
      servers.emplace_back(coeff_config, coeff_bgv, client.encrypt_key());
    }
    t0 = Clock::now();
    for (std::size_t c = 0; c < max_clients; ++c) {
      const auto sym = ciphers[c].encrypt(msgs[c], 7000 + c);
      const auto out = servers[c].transcipher(sym, 7000 + c);
      baseline_blocks += (sym.size() + coeff_config.pasta.t - 1) /
                         coeff_config.pasta.t;
      if (out.size() != sym.size()) return 1;
    }
    baseline_s = seconds_since(t0);
  }

  const auto& peak = sweep.back().report;
  const double service_tput = peak.blocks_per_s;
  const double baseline_tput = double(baseline_blocks) / baseline_s;
  const double speedup = service_tput / baseline_tput;
  std::cout << "baseline: " << fixed(baseline_s, 2) << " s for "
            << baseline_blocks << " blocks ("
            << fixed(baseline_tput, 2) << " blocks/s)\n"
            << "service @ " << max_clients << " clients: "
            << fixed(service_tput, 2) << " blocks/s — " << fixed(speedup, 2)
            << "x aggregate throughput (acceptance floor 1.3x)\n";

  // ---- Machine-readable record. ------------------------------------------
  {
    std::ofstream json("BENCH_service.json");
    json << "{\n  \"config\": \"" << config.pasta.name << "\",\n"
         << "  \"bgv\": {\"n\": " << config.bgv.n
         << ", \"num_primes\": " << config.bgv.num_primes
         << ", \"prime_bits\": " << config.bgv.prime_bits
         << ", \"relin_digit_bits\": " << config.bgv.relin_digit_bits
         << "},\n"
         << "  \"kernel_backend\": \""
         << (sweep.empty() ? std::string("unknown")
                           : sweep.back().report.kernel_backend)
         << "\",\n"
         << "  \"blocks_per_client\": " << blocks_per_client << ",\n"
         << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& r = sweep[i].report;
      json << "    {\"clients\": " << sweep[i].clients
           << ", \"blocks\": " << r.blocks << ", \"batches\": " << r.batches
           << ", \"total_s\": " << fixed(r.total_s, 4)
           << ", \"ns_per_block\": "
           << static_cast<std::uint64_t>(r.total_s / double(r.blocks) * 1e9)
           << ", \"blocks_per_s\": " << fixed(r.blocks_per_s, 3)
           << ", \"avg_batch_occupancy\": " << fixed(r.avg_batch_occupancy, 3)
           << ", \"cross_tenant_batches\": " << r.cross_tenant_batches
           << ", \"full_flushes\": " << r.full_flushes
           << ", \"deadline_flushes\": " << r.deadline_flushes
           << ", \"drain_flushes\": " << r.drain_flushes
           << ", \"max_batch_wait_s\": " << fixed(r.max_batch_wait_s, 4)
           << ", \"prepare_s\": " << fixed(r.prepare_s, 4)
           << ", \"eval_s\": " << fixed(r.eval_s, 4)
           << ", \"prepare_stalls\": " << r.prepare_stalls
           << ", \"eval_stalls\": " << r.eval_stalls
           << ", \"max_queue_depth\": " << r.max_queue_depth
           << ", \"min_noise_budget_bits\": "
           << fixed(r.min_noise_budget_bits, 1)
           << ", \"predicted_budget_bits\": "
           << fixed(r.predicted_min_budget_bits, 1)
           << ", \"budget_slack_bits\": "
           << fixed(r.min_noise_budget_bits - r.predicted_min_budget_bits, 1)
           << ", \"requests_ok\": " << r.faults.ok
           << ", \"requests_degraded\": "
           << (r.requests - r.faults.ok)
           << ", \"stage_retries\": " << r.faults.retries
           << ", \"faults_injected\": " << r.faults.injected
           << ", \"ntt_forward\": " << r.exec_ops.ntt_forward
           << ", \"key_switches\": " << r.exec_ops.key_switch
           << ", \"automorphisms\": " << r.exec_ops.automorphisms
           << ", \"hoisted_rotations\": " << r.exec_ops.hoisted_rotations
           << ", \"pool_misses\": " << r.exec_ops.pool_misses
           << ", \"bytes_copied\": " << r.exec_ops.bytes_copied
           << "}"
           << (i + 1 < sweep.size() ? ",\n" : "\n");
    }
    json << "  ],\n"
         << "  \"unpacked_reference\": {\"clients\": " << max_clients
         << ", \"blocks\": " << unpacked.blocks
         << ", \"batches\": " << unpacked.batches
         << ", \"avg_batch_occupancy\": "
         << fixed(unpacked.avg_batch_occupancy, 3)
         << ", \"blocks_per_s\": " << fixed(unpacked.blocks_per_s, 3)
         << ", \"total_s\": " << fixed(unpacked.total_s, 4) << "},\n"
         << "  \"packed_vs_unpacked_speedup\": "
         << fixed(sweep.back().report.blocks_per_s / unpacked.blocks_per_s, 3)
         << ",\n"
         << "  \"baseline\": {\"name\": \"sequential_coeff_hhe_server\", "
         << "\"clients\": " << max_clients
         << ", \"blocks\": " << baseline_blocks
         << ", \"total_s\": " << fixed(baseline_s, 4)
         << ", \"blocks_per_s\": " << fixed(baseline_tput, 3) << "},\n"
         << "  \"speedup_at_" << max_clients
         << "_clients\": " << fixed(speedup, 3) << "\n}\n";
    std::cout << "(wrote BENCH_service.json)\n";
  }
  return speedup >= 1.3 ? 0 : 1;
}
