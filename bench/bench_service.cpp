// Multi-tenant transcipher service benchmark: client-count sweep.
//
// Each client opens a session (cached encrypted PASTA key) and submits one
// multi-block message; the service packs blocks from DIFFERENT tenants into
// shared SIMD batches (per-tenant tile ranges, merged masked keys) and
// overlaps plaintext-side batch preparation (SHAKE squeeze, rejection
// sampling, matrix generation) with the BGV evaluation of the previous
// batch — the software analogue of the paper's Fig. 3 schedule. At 8
// clients x 4 blocks the packed batch is exactly full (32 tiles):
// occupancy 1.0 where per-client batching idled at 0.125.
//
// Two reference points anchor the numbers: the same 8-client workload with
// cross-tenant packing disabled (per-client batches, the pre-packing
// service), and sequential per-client coefficient-wise
// HheServer::transcipher calls. The service must beat the coefficient-wise
// baseline by >= 1.3x aggregate throughput.
//
// Multi-process mode: re-invoked with `--shard <fd>` or `--keymanager <fd>`
// this binary becomes one worker of a process-level deployment — the parent
// binds the listen sockets, forks+execs itself into N shard processes and a
// key-manager process, onboards the clients over the key-manager socket and
// drives waves through a Router, so the shard-count sweep measures real
// process-level scale-out over the framed wire protocol.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "core/poe.hpp"
#include "fhe/serialize.hpp"
#include "hhe/batched_server.hpp"
#include "modular/primes.hpp"
#include "net/key_manager.hpp"
#include "net/ring.hpp"
#include "net/router.hpp"
#include "net/shard.hpp"

namespace {
using namespace poe;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}

struct SweepPoint {
  std::size_t clients = 0;
  service::ServiceReport report;
};

// ---- Child roles of the multi-process mode. --------------------------------

/// One worker-shard process: adopt the inherited listen fd, derive the full
/// evaluation key material independently (the deterministic BgvParams seed
/// makes it bit-identical to every peer's — no key ever crosses the wire),
/// then serve router connections until an orderly kShutdown frame.
int run_shard(int fd) {
  // Each worker computes single-threaded: the sweep measures PROCESS-level
  // scale-out, not each process's internal thread pool.
  ::setenv("POE_THREADS", "1", 1);
  const auto config = hhe::HheConfig::batched_test();
  ExecContext exec;
  fhe::Bgv bgv(config.bgv, &exec);
  const auto keys = hhe::SimdBatchEngine::make_shared_rotation_keys(config, bgv);
  net::ListenSocket listen = net::ListenSocket::adopt(fd);
  service::ServiceConfig scfg;
  scfg.max_sessions = 16;
  std::optional<net::ShardServer> server;
  server.emplace(config, bgv, scfg, keys);
  for (;;) {
    net::Socket sock;
    try {
      sock = listen.accept();
    } catch (const net::WireError&) {
      return 0;
    }
    net::FrameChannel ch(std::move(sock), &exec);
    const net::ShardServer::Exit exit = server->serve(ch);
    if (exit == net::ShardServer::Exit::kShutdown) return 0;
    if (exit == net::ShardServer::Exit::kKilled) {
      server.emplace(config, bgv, scfg, keys);
    }
    // kConnectionLost: keep state, wait for the router to reconnect.
  }
}

/// The key-manager process: onboarding and key fetches only, no evaluation.
/// It validates uploads against the public CRT context — built directly from
/// the parameters, no keygen (this process holds nothing but ciphertext).
int run_key_manager(int fd) {
  ::setenv("POE_THREADS", "1", 1);
  const auto config = hhe::HheConfig::batched_test();
  fhe::RnsContext ctx(config.bgv.n, config.bgv.t,
                      mod::bgv_prime_chain(config.bgv.num_primes,
                                           config.bgv.prime_bits, config.bgv.n,
                                           config.bgv.t));
  net::KeyManager km(ctx);
  net::ListenSocket listen = net::ListenSocket::adopt(fd);
  for (;;) {
    net::Socket sock;
    try {
      sock = listen.accept();
    } catch (const net::WireError&) {
      return 0;
    }
    net::FrameChannel ch(std::move(sock));
    if (!km.serve(ch)) return 0;  // orderly kShutdown frame
  }
}

/// fork + exec this binary into a child role, the listen fd inherited across
/// the exec. The fd argument is formatted BEFORE the fork so the child calls
/// nothing but execv/_exit (the parent has live threads at this point).
pid_t spawn_child(const char* role, int fd) {
  char fd_arg[16];
  std::snprintf(fd_arg, sizeof(fd_arg), "%d", fd);
  const pid_t pid = ::fork();
  if (pid == 0) {
    char* args[] = {const_cast<char*>("bench_service"),
                    const_cast<char*>(role), fd_arg, nullptr};
    ::execv("/proc/self/exe", args);
    ::_exit(127);
  }
  return pid;
}

/// Client ids that land `total / nshards` per shard under the router's own
/// consistent-hash ring, so the sweep compares balanced deployments.
std::vector<std::uint64_t> pick_balanced_clients(std::size_t nshards,
                                                 std::size_t total) {
  net::HashRing ring(nshards, net::RouterConfig{}.ring_vnodes);
  std::vector<std::size_t> load(nshards, 0);
  const std::size_t quota = total / nshards;
  std::vector<std::uint64_t> ids;
  for (std::uint64_t id = 1; ids.size() < total; ++id) {
    const std::size_t owner = ring.owner(id);
    if (load[owner] < quota) {
      ++load[owner];
      ids.push_back(id);
    }
  }
  return ids;
}

struct MpPoint {
  std::size_t shards = 0;
  std::size_t clients = 0;
  std::size_t blocks = 0;
  std::size_t requests_ok = 0;
  double total_s = 0;
  double blocks_per_s = 0;
};

/// One multi-process deployment: fork the key manager and `nshards` workers,
/// onboard every client over the key-manager socket, run one untimed warm
/// wave and one timed wave through a Router, verify every block round-trips,
/// then shut the fleet down and reap it.
///
/// Weak scaling: `n_clients` should be shard-count * clients-per-full-batch,
/// so every shard evaluates FULL batches and the sweep measures aggregate
/// scale-out throughput — a fixed workload split across shards would leave
/// each shard paying full batch cost for a half-empty batch.
std::optional<MpPoint> run_multiprocess_point(
    std::size_t nshards, std::size_t n_clients, const hhe::HheConfig& config,
    fhe::Bgv& bgv, std::size_t blocks_per_client,
    const std::vector<pasta::PastaCipher>& ciphers,
    const std::vector<fhe::Ciphertext>& key_cts,
    const std::vector<std::vector<std::uint64_t>>& msgs) {
  std::vector<pid_t> pids;

  net::ListenSocket km_listen = net::ListenSocket::loopback();
  pids.push_back(spawn_child("--keymanager", km_listen.fd()));
  std::vector<net::ListenSocket> shard_listens;
  for (std::size_t s = 0; s < nshards; ++s) {
    shard_listens.push_back(net::ListenSocket::loopback());
    pids.push_back(spawn_child("--shard", shard_listens.back().fd()));
  }

  std::optional<MpPoint> out;
  const auto ids = pick_balanced_clients(nshards, n_clients);
  // Everything below connects into listen backlogs immediately and blocks on
  // the first reply until the child finishes its keygen — no readiness
  // handshake needed.
  bool ok = true;
  try {
    for (std::size_t c = 0; c < n_clients && ok; ++c) {
      net::FrameChannel ch(net::connect_loopback(km_listen.port()));
      net::OnboardKeyMsg msg;
      msg.client_id = ids[c];
      msg.key_bytes = fhe::serialize_ciphertext(bgv.rns(), key_cts[c]);
      ch.send(net::MsgType::kOnboardKey, net::encode_onboard_key(msg));
      auto resp = ch.recv();
      if (!resp || resp->type != net::MsgType::kOnboardAck ||
          !net::decode_ack(resp->payload).ok) {
        std::cerr << "multiprocess: onboarding failed for client " << ids[c]
                  << "\n";
        ok = false;
      }
    }

    if (ok) {
      std::vector<net::FrameChannel> channels;
      for (const auto& listen : shard_listens) {
        channels.emplace_back(net::connect_loopback(listen.port()));
      }
      net::Router router(bgv.rns(), std::move(channels),
                         net::FrameChannel(net::connect_loopback(
                             km_listen.port())));

      auto make_wave = [&](std::uint64_t nonce_base) {
        std::vector<service::TranscipherRequest> reqs;
        for (std::size_t c = 0; c < n_clients; ++c) {
          reqs.push_back(service::TranscipherRequest{
              .client_id = ids[c],
              .nonce = nonce_base + c,
              .symmetric_ct = ciphers[c].encrypt(msgs[c], nonce_base + c)});
        }
        return reqs;
      };

      // Untimed warm wave: session installs, slab shaping, page faults.
      for (const auto& r : router.process(make_wave(80000))) {
        if (!r.ok()) {
          std::cerr << "multiprocess: warm-up degraded for client "
                    << r.client_id << ": " << r.error << "\n";
          ok = false;
        }
      }

      if (ok) {
        const auto reqs = make_wave(81000);
        net::RouterReport report;
        const auto t0 = Clock::now();
        const auto results = router.process(reqs, &report);
        const double total_s = seconds_since(t0);
        for (std::size_t c = 0; c < n_clients && ok; ++c) {
          if (!results[c].ok()) {
            std::cerr << "multiprocess: request degraded for client "
                      << ids[c] << ": " << results[c].error << "\n";
            ok = false;
            break;
          }
          std::vector<std::uint64_t> got;
          for (const auto& block : results[c].blocks) {
            const auto vals =
                service::TranscipherService::decode_block(config, bgv, block);
            got.insert(got.end(), vals.begin(), vals.end());
          }
          if (got != msgs[c]) {
            std::cerr << "multiprocess: MISMATCH for client " << ids[c] << "\n";
            ok = false;
          }
        }
        if (ok) {
          MpPoint point;
          point.shards = nshards;
          point.clients = n_clients;
          point.blocks = n_clients * blocks_per_client;
          point.requests_ok = report.faults.ok;
          point.total_s = total_s;
          point.blocks_per_s = double(point.blocks) / total_s;
          out = point;
        }
      }

    }
  } catch (const poe::Error& e) {
    std::cerr << "multiprocess: " << e.what() << "\n";
    out.reset();
  }

  // Orderly shutdown — runs even after a failure, or waitpid would hang on
  // children that never saw a stop signal. Every router channel is closed by
  // now (the Router left scope above), so each child is either blocked in
  // accept() or about to be; the queued connection delivers one kShutdown
  // frame. A child that already died just fails the connect, which is fine —
  // waitpid reaps it either way.
  auto send_shutdown = [](std::uint16_t port) {
    try {
      net::FrameChannel ch(net::connect_loopback(port));
      ch.send(net::MsgType::kShutdown, {});
    } catch (const poe::Error&) {
    }
  };
  for (const auto& listen : shard_listens) send_shutdown(listen.port());
  send_shutdown(km_listen.port());

  for (const pid_t pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::cerr << "multiprocess: child " << pid << " exited abnormally\n";
      out.reset();
    }
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  if (argc == 3) {
    const std::string role = argv[1];
    if (role == "--shard") return run_shard(std::atoi(argv[2]));
    if (role == "--keymanager") return run_key_manager(std::atoi(argv[2]));
  }
  const auto config = hhe::HheConfig::batched_test();
  const std::size_t blocks_per_client = 4;
  const std::vector<std::size_t> client_counts = {1, 2, 4, 8};

  std::cout << "=== Multi-tenant transcipher service — " << config.pasta.name
            << ", BGV n=" << config.bgv.n << " ===\n";

  auto t0 = Clock::now();
  fhe::Bgv bgv(config.bgv);
  fhe::BatchEncoder encoder(config.bgv.n, config.bgv.t);
  fhe::SlotLayout layout(config.bgv.n, config.bgv.t);
  const auto simd_keys =
      hhe::SimdBatchEngine::make_shared_rotation_keys(config, bgv);
  std::cout << "BGV keygen + rotation keys: " << fixed(seconds_since(t0), 2)
            << " s\n";

  // One key/cipher per client id (the same across all sweep points so the
  // sweep measures scheduling, not key material).
  const std::size_t max_clients = client_counts.back();
  Xoshiro256 rng(42);
  std::vector<std::vector<std::uint64_t>> keys(max_clients);
  std::vector<pasta::PastaCipher> ciphers;
  std::vector<fhe::Ciphertext> key_cts;
  for (std::size_t c = 0; c < max_clients; ++c) {
    keys[c] = pasta::PastaCipher::random_key(config.pasta, rng);
    ciphers.emplace_back(config.pasta, keys[c]);
    key_cts.push_back(
        hhe::encrypt_key_batched(config, bgv, encoder, layout, keys[c]));
  }
  const std::size_t msg_len = blocks_per_client * config.pasta.t;
  std::vector<std::vector<std::uint64_t>> msgs(max_clients);
  for (auto& msg : msgs) {
    msg.resize(msg_len);
    for (auto& m : msg) m = rng.below(config.pasta.p);
  }

  // ---- Sweep: N clients through the pipelined service. -------------------
  std::vector<SweepPoint> sweep;
  for (const std::size_t n : client_counts) {
    service::ServiceConfig scfg;
    scfg.max_sessions = max_clients;
    service::TranscipherService svc(config, bgv, scfg, simd_keys);
    std::vector<service::TranscipherRequest> reqs;
    for (std::size_t c = 0; c < n; ++c) {
      svc.open_session(c + 1, key_cts[c]);
      reqs.push_back(service::TranscipherRequest{
          .client_id = c + 1,
          .nonce = 7000 + c,
          .symmetric_ct = ciphers[c].encrypt(msgs[c], 7000 + c)});
    }
    // Untimed warm-up wave: faults in every slab shape this client count
    // needs (per-tenant key merge included), so the measured wave reports
    // STEADY-STATE counters — scripts/check_alloc_budget.py pins its pool
    // misses at zero.
    std::vector<service::TranscipherRequest> warm_reqs;
    for (std::size_t c = 0; c < n; ++c) {
      warm_reqs.push_back(service::TranscipherRequest{
          .client_id = c + 1,
          .nonce = 6000 + c,
          .symmetric_ct = ciphers[c].encrypt(msgs[c], 6000 + c)});
    }
    for (const auto& r : svc.process(warm_reqs)) {
      if (!r.ok()) {
        std::cerr << "warm-up request degraded: " << r.error << "\n";
        return 1;
      }
    }
    SweepPoint point;
    point.clients = n;
    const auto results = svc.process(reqs, &point.report);
    // Verify every request succeeded and every block round-trips before
    // trusting the numbers (the robustness layer degrades per request
    // instead of throwing, so a silent failure would otherwise skew the
    // sweep).
    for (std::size_t c = 0; c < n; ++c) {
      if (!results[c].ok()) {
        std::cerr << "request for client " << c + 1 << " degraded: "
                  << to_string(results[c].status) << " ("
                  << results[c].error << ")\n";
        return 1;
      }
      std::vector<std::uint64_t> got;
      for (const auto& block : results[c].blocks) {
        const auto vals =
            service::TranscipherService::decode_block(config, bgv, block);
        got.insert(got.end(), vals.begin(), vals.end());
      }
      if (got != msgs[c]) {
        std::cerr << "MISMATCH for client " << c + 1 << "\n";
        return 1;
      }
    }
    // No injector is registered: the fault points are on the hot path at
    // their unarmed cost (one pointer load each), and the counters must
    // read all-quiet.
    if (point.report.faults.ok != n || point.report.faults.injected != 0 ||
        point.report.faults.retries != 0) {
      std::cerr << "unexpected fault accounting in a fault-free run\n";
      return 1;
    }
    sweep.push_back(std::move(point));
  }

  TextTable t;
  t.header({"Clients", "Blocks", "Batches", "X-tenant", "Total s", "s/block",
            "Blocks/s", "Occupancy", "Prep overlap s"});
  for (const auto& p : sweep) {
    const auto& r = p.report;
    t.row({std::to_string(p.clients), std::to_string(r.blocks),
           std::to_string(r.batches), std::to_string(r.cross_tenant_batches),
           fixed(r.total_s, 2), fixed(r.total_s / double(r.blocks), 3),
           fixed(r.blocks_per_s, 2), fixed(r.avg_batch_occupancy, 3),
           fixed(r.prepare_s, 3)});
  }
  t.print(std::cout);

  // ---- Reference: the same 8-client workload, packing disabled. ----------
  service::ServiceReport unpacked;
  {
    service::ServiceConfig scfg;
    scfg.max_sessions = max_clients;
    scfg.cross_tenant_packing = false;
    service::TranscipherService svc(config, bgv, scfg, simd_keys);
    std::vector<service::TranscipherRequest> reqs;
    for (std::size_t c = 0; c < max_clients; ++c) {
      svc.open_session(c + 1, key_cts[c]);
      reqs.push_back(service::TranscipherRequest{
          .client_id = c + 1,
          .nonce = 7000 + c,
          .symmetric_ct = ciphers[c].encrypt(msgs[c], 7000 + c)});
    }
    const auto results = svc.process(reqs, &unpacked);
    for (const auto& res : results) {
      if (!res.ok()) {
        std::cerr << "unpacked reference degraded: " << res.error << "\n";
        return 1;
      }
    }
    const double packed_vs_unpacked =
        sweep.back().report.blocks_per_s / unpacked.blocks_per_s;
    std::cout << "\nunpacked reference @ " << max_clients
              << " clients: occupancy " << fixed(unpacked.avg_batch_occupancy, 3)
              << ", " << fixed(unpacked.blocks_per_s, 2)
              << " blocks/s -> packing speedup "
              << fixed(packed_vs_unpacked, 2) << "x\n";
  }

  // ---- Baseline at 8 clients: sequential coefficient-wise serving. -------
  const auto coeff_config = hhe::HheConfig::test();
  fhe::Bgv coeff_bgv(coeff_config.bgv);
  double baseline_s = 0;
  std::size_t baseline_blocks = 0;
  {
    std::cout << "\nbaseline: sequential per-client HheServer::transcipher ("
              << max_clients << " clients x " << blocks_per_client
              << " blocks)...\n";
    std::vector<hhe::HheServer> servers;
    servers.reserve(max_clients);
    for (std::size_t c = 0; c < max_clients; ++c) {
      hhe::HheClient client(coeff_config, coeff_bgv, keys[c]);
      servers.emplace_back(coeff_config, coeff_bgv, client.encrypt_key());
    }
    t0 = Clock::now();
    for (std::size_t c = 0; c < max_clients; ++c) {
      const auto sym = ciphers[c].encrypt(msgs[c], 7000 + c);
      const auto out = servers[c].transcipher(sym, 7000 + c);
      baseline_blocks += (sym.size() + coeff_config.pasta.t - 1) /
                         coeff_config.pasta.t;
      if (out.size() != sym.size()) return 1;
    }
    baseline_s = seconds_since(t0);
  }

  const auto& peak = sweep.back().report;
  const double service_tput = peak.blocks_per_s;
  const double baseline_tput = double(baseline_blocks) / baseline_s;
  const double speedup = service_tput / baseline_tput;
  std::cout << "baseline: " << fixed(baseline_s, 2) << " s for "
            << baseline_blocks << " blocks ("
            << fixed(baseline_tput, 2) << " blocks/s)\n"
            << "service @ " << max_clients << " clients: "
            << fixed(service_tput, 2) << " blocks/s — " << fixed(speedup, 2)
            << "x aggregate throughput (acceptance floor 1.3x)\n";

  // ---- Multi-process scale-out: fork this binary into a key-manager
  // ---- process plus {1, 2} worker-shard processes and push the same
  // ---- 8-client workload through a Router over real sockets. ------------
  std::vector<MpPoint> mp_sweep;
  bool mp_ok = true;
  {
    const unsigned host_cores = std::thread::hardware_concurrency();
    std::cout << "\nmulti-process deployment (host cores: " << host_cores
              << ", workers pinned to POE_THREADS=1)...\n";
    // Weak scaling needs one full batch of clients PER shard; extend the
    // client material beyond the in-process sweep's roster.
    const std::size_t max_shards = 2;
    const std::size_t mp_clients = max_shards * max_clients;
    std::vector<pasta::PastaCipher> mp_ciphers = ciphers;
    std::vector<fhe::Ciphertext> mp_key_cts = key_cts;
    std::vector<std::vector<std::uint64_t>> mp_msgs = msgs;
    for (std::size_t c = max_clients; c < mp_clients; ++c) {
      const auto key = pasta::PastaCipher::random_key(config.pasta, rng);
      mp_ciphers.emplace_back(config.pasta, key);
      mp_key_cts.push_back(
          hhe::encrypt_key_batched(config, bgv, encoder, layout, key));
      std::vector<std::uint64_t> msg(msg_len);
      for (auto& m : msg) m = rng.below(config.pasta.p);
      mp_msgs.push_back(std::move(msg));
    }
    for (const std::size_t nshards : {std::size_t{1}, max_shards}) {
      const auto point = run_multiprocess_point(
          nshards, nshards * max_clients, config, bgv, blocks_per_client,
          mp_ciphers, mp_key_cts, mp_msgs);
      if (!point) {
        mp_ok = false;
        break;
      }
      mp_sweep.push_back(*point);
    }
    if (mp_ok) {
      TextTable mp;
      mp.header({"Shards", "Clients", "Blocks", "Total s", "Blocks/s"});
      for (const auto& p : mp_sweep) {
        mp.row({std::to_string(p.shards), std::to_string(p.clients),
                std::to_string(p.blocks), fixed(p.total_s, 2),
                fixed(p.blocks_per_s, 2)});
      }
      mp.print(std::cout);
      std::cout << "2-shard scale-out: "
                << fixed(mp_sweep[1].blocks_per_s / mp_sweep[0].blocks_per_s, 2)
                << "x (scripts/check_shard_budget.py enforces the floor on "
                   "multi-core hosts)\n";
    } else {
      std::cerr << "multi-process sweep FAILED\n";
    }
  }

  // ---- Machine-readable record. ------------------------------------------
  {
    std::ofstream json("BENCH_service.json");
    json << "{\n  \"config\": \"" << config.pasta.name << "\",\n"
         << "  \"bgv\": {\"n\": " << config.bgv.n
         << ", \"num_primes\": " << config.bgv.num_primes
         << ", \"prime_bits\": " << config.bgv.prime_bits
         << ", \"relin_digit_bits\": " << config.bgv.relin_digit_bits
         << "},\n"
         << "  \"kernel_backend\": \""
         << (sweep.empty() ? std::string("unknown")
                           : sweep.back().report.kernel_backend)
         << "\",\n"
         << "  \"blocks_per_client\": " << blocks_per_client << ",\n"
         << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& r = sweep[i].report;
      json << "    {\"clients\": " << sweep[i].clients
           << ", \"blocks\": " << r.blocks << ", \"batches\": " << r.batches
           << ", \"total_s\": " << fixed(r.total_s, 4)
           << ", \"ns_per_block\": "
           << static_cast<std::uint64_t>(r.total_s / double(r.blocks) * 1e9)
           << ", \"blocks_per_s\": " << fixed(r.blocks_per_s, 3)
           << ", \"avg_batch_occupancy\": " << fixed(r.avg_batch_occupancy, 3)
           << ", \"cross_tenant_batches\": " << r.cross_tenant_batches
           << ", \"full_flushes\": " << r.full_flushes
           << ", \"deadline_flushes\": " << r.deadline_flushes
           << ", \"drain_flushes\": " << r.drain_flushes
           << ", \"max_batch_wait_s\": " << fixed(r.max_batch_wait_s, 4)
           << ", \"prepare_s\": " << fixed(r.prepare_s, 4)
           << ", \"eval_s\": " << fixed(r.eval_s, 4)
           << ", \"prepare_stalls\": " << r.prepare_stalls
           << ", \"eval_stalls\": " << r.eval_stalls
           << ", \"max_queue_depth\": " << r.max_queue_depth
           << ", \"min_noise_budget_bits\": "
           << fixed(r.min_noise_budget_bits, 1)
           << ", \"predicted_budget_bits\": "
           << fixed(r.predicted_min_budget_bits, 1)
           << ", \"budget_slack_bits\": "
           << fixed(r.min_noise_budget_bits - r.predicted_min_budget_bits, 1)
           << ", \"requests_ok\": " << r.faults.ok
           << ", \"requests_degraded\": "
           << (r.requests - r.faults.ok)
           << ", \"stage_retries\": " << r.faults.retries
           << ", \"faults_injected\": " << r.faults.injected
           << ", \"ntt_forward\": " << r.exec_ops.ntt_forward
           << ", \"key_switches\": " << r.exec_ops.key_switch
           << ", \"automorphisms\": " << r.exec_ops.automorphisms
           << ", \"hoisted_rotations\": " << r.exec_ops.hoisted_rotations
           << ", \"pool_misses\": " << r.exec_ops.pool_misses
           << ", \"bytes_copied\": " << r.exec_ops.bytes_copied
           << "}"
           << (i + 1 < sweep.size() ? ",\n" : "\n");
    }
    json << "  ],\n"
         << "  \"unpacked_reference\": {\"clients\": " << max_clients
         << ", \"blocks\": " << unpacked.blocks
         << ", \"batches\": " << unpacked.batches
         << ", \"avg_batch_occupancy\": "
         << fixed(unpacked.avg_batch_occupancy, 3)
         << ", \"blocks_per_s\": " << fixed(unpacked.blocks_per_s, 3)
         << ", \"total_s\": " << fixed(unpacked.total_s, 4) << "},\n"
         << "  \"packed_vs_unpacked_speedup\": "
         << fixed(sweep.back().report.blocks_per_s / unpacked.blocks_per_s, 3)
         << ",\n"
         << "  \"baseline\": {\"name\": \"sequential_coeff_hhe_server\", "
         << "\"clients\": " << max_clients
         << ", \"blocks\": " << baseline_blocks
         << ", \"total_s\": " << fixed(baseline_s, 4)
         << ", \"blocks_per_s\": " << fixed(baseline_tput, 3) << "},\n"
         << "  \"speedup_at_" << max_clients
         << "_clients\": " << fixed(speedup, 3) << ",\n"
         << "  \"multiprocess\": {\"host_cores\": "
         << std::thread::hardware_concurrency()
         << ", \"workers_single_threaded\": true, \"ok\": "
         << (mp_ok ? "true" : "false") << ",\n    \"sweep\": [";
    for (std::size_t i = 0; i < mp_sweep.size(); ++i) {
      const auto& p = mp_sweep[i];
      json << (i == 0 ? "\n" : ",\n")
           << "      {\"shards\": " << p.shards
           << ", \"clients\": " << p.clients << ", \"blocks\": " << p.blocks
           << ", \"requests_ok\": " << p.requests_ok
           << ", \"total_s\": " << fixed(p.total_s, 4)
           << ", \"blocks_per_s\": " << fixed(p.blocks_per_s, 3) << "}";
    }
    json << "\n    ]";
    if (mp_sweep.size() == 2) {
      json << ",\n    \"speedup_2_shards\": "
           << fixed(mp_sweep[1].blocks_per_s / mp_sweep[0].blocks_per_s, 3);
    }
    json << "\n  }\n}\n";
    std::cout << "(wrote BENCH_service.json)\n";
  }
  return speedup >= 1.3 && mp_ok ? 0 : 1;
}
