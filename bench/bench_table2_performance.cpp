// Regenerates Table II: clock cycles and latency of one PASTA-3/PASTA-4
// block encryption on FPGA (75 MHz), ASIC (1 GHz) and the RISC-V SoC
// (100 MHz), next to the CPU cycle counts reported by the PASTA designers
// [9], plus our own measured software baseline.
//
// Also prints the PASTA-3 vs PASTA-4 area-time comparison of §IV-C ①.
#include <chrono>
#include <iostream>

#include "common/table.hpp"
#include "core/poe.hpp"

namespace {

using namespace poe;

struct SimSummary {
  double mean_cycles = 0;
  std::uint64_t min_cycles = ~0ull, max_cycles = 0;
};

SimSummary simulate(const pasta::PastaParams& params, int blocks) {
  hw::AcceleratorSim sim(params);
  Xoshiro256 rng(42);
  const auto key = pasta::PastaCipher::random_key(params, rng);
  SimSummary s;
  std::uint64_t sum = 0;
  for (int i = 0; i < blocks; ++i) {
    const auto cycles = sim.run_block(key, 1000 + i, 0).stats.total_cycles;
    sum += cycles;
    s.min_cycles = std::min(s.min_cycles, cycles);
    s.max_cycles = std::max(s.max_cycles, cycles);
  }
  s.mean_cycles = static_cast<double>(sum) / blocks;
  return s;
}

std::uint64_t soc_block_cycles(const pasta::PastaParams& params) {
  // Per-block SoC cost with the one-time key upload amortised over a batch,
  // as a deployed client would run it.
  auto accel = Accelerator::with_random_key(params, 7, Backend::kSoc);
  const std::size_t blocks = 8;
  std::vector<std::uint64_t> msg(params.t * blocks, 1);
  EncryptStats stats;
  accel.encrypt(msg, 3, &stats);
  return stats.cycles / blocks;
}

double software_block_us(const pasta::PastaParams& params) {
  Xoshiro256 rng(9);
  pasta::PastaCipher cipher(params, pasta::PastaCipher::random_key(params, rng));
  // Warm up, then time.
  std::uint64_t sink = cipher.keystream(0, 0)[0];
  const int reps = params.t >= 128 ? 20 : 100;
  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) sink += cipher.keystream(1, i)[0];
  asm volatile("" : : "r"(sink) : "memory");
  const auto end = std::chrono::steady_clock::now();

  return std::chrono::duration<double, std::micro>(end - begin).count() /
         reps;
}

}  // namespace

int main() {
  std::cout << "=== Table II: one-block encryption performance ===\n";
  TextTable t;
  t.header({"Scheme", "Elements", "clock cycles", "FPGA us", "ASIC us",
            "RISC-V us"});

  struct PaperRow {
    const char* name;
    pasta::PastaParams params;
    std::uint64_t paper_cpu_cycles;
    double paper_fpga_us, paper_asic_us, paper_soc_us;
    std::uint64_t paper_cycles;
  };
  const PaperRow rows[] = {
      {"PASTA-3", pasta::pasta3(), 17041380, 66.1, 4.96, 45.5, 4955},
      {"PASTA-4", pasta::pasta4(), 1363339, 21.2, 1.59, 15.9, 1591},
  };

  for (const auto& row : rows) {
    t.row({std::string(row.name) + " [9] CPU", std::to_string(row.params.t),
           with_commas(row.paper_cpu_cycles), "-", "-", "-"});
    t.row({std::string(row.name) + " paper", std::to_string(row.params.t),
           with_commas(row.paper_cycles), fixed(row.paper_fpga_us, 1),
           fixed(row.paper_asic_us, 2), fixed(row.paper_soc_us, 1)});

    const auto sim = simulate(row.params, 25);
    const auto soc_cycles = soc_block_cycles(row.params);
    t.row({std::string(row.name) + " measured", std::to_string(row.params.t),
           with_commas(static_cast<std::uint64_t>(sim.mean_cycles)) + " [" +
               with_commas(sim.min_cycles) + ".." +
               with_commas(sim.max_cycles) + "]",
           fixed(hw::fpga_artix7().cycles_to_us(
                     static_cast<std::uint64_t>(sim.mean_cycles)),
                 1),
           fixed(hw::asic_1ghz().cycles_to_us(
                     static_cast<std::uint64_t>(sim.mean_cycles)),
                 2),
           fixed(hw::riscv_soc_100mhz().cycles_to_us(soc_cycles), 1)});
    t.separator();

    // CPU comparison (Sec. IV-C): cycle reduction vs [9].
    const double measured = sim.mean_cycles;
    std::cout.flush();
    const double reduction =
        static_cast<double>(row.paper_cpu_cycles) / measured;
    std::cout << row.name << ": cycle reduction vs CPU [9]: "
              << fixed(reduction, 0)
              << "x (paper: 857-3,439x); wall-clock speedup of the 100 MHz "
                 "SoC vs the 2.2 GHz CPU: "
              << fixed(reduction / 22.0, 0) << "x (paper: 43-171x)\n";
  }
  t.print(std::cout);

  std::cout << "\nOur portable software baseline (this host): PASTA-3 "
            << fixed(software_block_us(pasta::pasta3()), 0) << " us/block, PASTA-4 "
            << fixed(software_block_us(pasta::pasta4()), 0)
            << " us/block (the paper's [9] numbers are from a Xeon E5-2699v4 "
               "@2.2 GHz).\n";

  // --- Sec. IV-C (1): PASTA-3 vs PASTA-4 area-time trade-off.
  std::cout << "\n=== PASTA-3 vs PASTA-4 (Sec. IV-C (1)) ===\n";
  const auto s3 = simulate(pasta::pasta3(), 10);
  const auto s4 = simulate(pasta::pasta4(), 10);
  const double t3_per_elem = s3.mean_cycles / 128.0;
  const double t4_per_elem = s4.mean_cycles / 32.0;
  hw::AreaModel model;
  const double area_ratio =
      static_cast<double>(model.fpga(pasta::pasta3()).lut) /
      static_cast<double>(model.fpga(pasta::pasta4()).lut);
  std::cout << "PASTA-3 cycles/element: " << fixed(t3_per_elem, 2)
            << ", PASTA-4: " << fixed(t4_per_elem, 2) << " -> PASTA-3 is "
            << percent(1.0 - t3_per_elem / t4_per_elem, 0)
            << " faster per element (paper: 22%)\n";
  std::cout << "PASTA-3 / PASTA-4 LUT ratio: " << fixed(area_ratio, 2)
            << "x (paper: ~3x) -> PASTA-4 has the better area-time product "
               "for clients\n";
  return 0;
}
