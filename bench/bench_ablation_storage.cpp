// Ablation of the paper's key memory optimisation (§III-C): streaming
// matrix rows from (alpha, previous row) versus materialising the random
// invertible matrices in on-chip memory. Quantifies the claim that the
// streamed design needs zero BRAM "without compromising the throughput".
#include <iostream>

#include "common/bits.hpp"
#include "common/table.hpp"
#include "core/poe.hpp"

int main() {
  using namespace poe;

  std::cout << "=== Sec. III-C ablation: streamed vs stored matrices ===\n";
  TextTable t;
  t.header({"Scheme", "w", "matrices/block", "stored bits", "BRAM36",
            "streamed storage (FF bits)", "BRAM (paper design)"});
  for (unsigned omega : {17u, 33u, 54u}) {
    for (const auto& params : {pasta::pasta4(pasta::pasta_prime(omega)),
                               pasta::pasta3(pasta::pasta_prime(omega))}) {
      // A stored design buffers both matrices of every affine layer for the
      // block being processed (they are nonce-dependent, regenerated per
      // block, so they cannot live in ROM).
      const std::uint64_t matrices = params.affine_layers() * 2;
      const std::uint64_t bits =
          matrices * params.t * params.t * params.prime_bits();
      const std::uint64_t bram36 = ceil_div(bits, 36 * 1024);
      // The streamed design keeps only (alpha, current row) per matrix
      // engine: 2 rows of t elements.
      const std::uint64_t ff_bits = 2 * params.t * params.prime_bits();
      t.row({params.name, std::to_string(omega), std::to_string(matrices),
             with_commas(bits), std::to_string(bram36), with_commas(ff_bits),
             "0"});
    }
  }
  t.print(std::cout);
  std::cout
      << "Streaming trades a >1000x memory reduction for zero extra cycles: "
         "each generated row is consumed by the matrix-vector product in "
         "the same pipeline pass (6 + t + log2 t cycles total), which the "
         "cycle model's zero XOF-stall count confirms "
         "(bench_keccak_schedule).\n";

  // Throughput check: the streamed design's matrix engine always finishes
  // inside the XOF window (no back-pressure), so a stored-matrix variant
  // could not be faster.
  const auto params = pasta::pasta4();
  Xoshiro256 rng(1);
  const auto key = pasta::PastaCipher::random_key(params, rng);
  hw::AcceleratorSim sim(params);
  std::uint64_t stalls = 0;
  for (int i = 0; i < 10; ++i) {
    stalls += sim.run_block(key, i, 0).stats.xof_stall_cycles;
  }
  std::cout << "Measured DataGen back-pressure stalls over 10 blocks: "
            << stalls << " (matrix engine never throttles the XOF).\n";
  return 0;
}
