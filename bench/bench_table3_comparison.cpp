// Regenerates Table III: PASTA-4 performance/area against prior FHE
// client-side accelerators (FPGA works [18],[21],[22]; RISC-V/ASIC works
// [19],[20]), with per-element normalisation and the paper's speedup claims
// recomputed from first principles.
#include <iostream>

#include "common/table.hpp"
#include "core/poe.hpp"

namespace {
using namespace poe;
}

int main() {
  // Measure our design once.
  const auto params = pasta::pasta4();
  Xoshiro256 rng(1);
  const auto key = pasta::PastaCipher::random_key(params, rng);
  hw::AcceleratorSim sim(params);
  std::uint64_t sum = 0;
  const int kBlocks = 20;
  for (int i = 0; i < kBlocks; ++i)
    sum += sim.run_block(key, i, 0).stats.total_cycles;
  const double cycles = static_cast<double>(sum) / kBlocks;

  // SoC per-block cost with the one-time key upload amortised over a batch.
  auto soc = Accelerator(params, key, Backend::kSoc);
  const std::size_t soc_blocks = 8;
  std::vector<std::uint64_t> msg(params.t * soc_blocks, 1);
  EncryptStats soc_stats;
  soc.encrypt(msg, 0, &soc_stats);
  soc_stats.cycles /= soc_blocks;
  soc_stats.soc_us /= static_cast<double>(soc_blocks);

  const double tw_fpga_us = hw::fpga_artix7().cycles_to_us(
      static_cast<std::uint64_t>(cycles));
  const double tw_asic_us =
      hw::asic_1ghz().cycles_to_us(static_cast<std::uint64_t>(cycles));
  const double tw_soc_us = soc_stats.soc_us;

  hw::AreaModel model;
  const auto tw_area = model.fpga(params);

  std::cout << "=== Table III: comparison with prior works (PASTA-4) ===\n";
  TextTable t;
  t.header({"Work", "Platform", "kLUT", "kFF", "DSP", "BRAM",
            "Encr. us (per elem)"});
  for (const auto& w : analytics::table3_prior_works()) {
    if (w.is_asic) continue;
    t.row({w.citation, w.platform,
           w.klut_x10 ? fixed(w.klut_x10 / 10.0, 1) : "-",
           w.kff_x10 ? fixed(w.kff_x10 / 10.0, 1) : "-",
           w.dsp ? std::to_string(w.dsp) : "-",
           w.bram > 0 ? fixed(w.bram, 1) : "-",
           fixed(w.encrypt_us, 0) + " (" + fixed(w.us_per_element(), 2) + ")"});
  }
  t.row({"TW (measured)", "Artix-7", fixed(tw_area.lut / 1000.0, 1),
         fixed(tw_area.ff / 1000.0, 1), std::to_string(tw_area.dsp), "0",
         fixed(tw_fpga_us, 1) + " (" + fixed(tw_fpga_us / 32, 2) + ")"});
  t.separator();
  for (const auto& w : analytics::table3_prior_works()) {
    if (!w.is_asic) continue;
    t.row({w.citation, w.platform, "-", "-", "-",
           w.area_mm2 ? fixed(*w.area_mm2, 2) + " mm2" : "-",
           fixed(w.encrypt_us / 1000.0, 0) + "k (" +
               fixed(w.us_per_element(), 2) + ")"});
  }
  t.row({"TW (measured)", "7/28nm", "-", "-", "-",
         fixed(model.asic_mm2(params, 28), 2) + " mm2",
         fixed(tw_asic_us, 2) + " (" + fixed(tw_asic_us / 32, 3) + ")"});
  t.row({"TW (measured)", "65/130nm SoC", "-", "-", "-", "-",
         fixed(tw_soc_us, 1) + " (" + fixed(tw_soc_us / 32, 2) + ")"});
  t.print(std::cout);

  std::cout << "\nSpeedups per element (computed):\n";
  for (const auto& w : analytics::table3_prior_works()) {
    const double vs_asic = w.us_per_element() / (tw_asic_us / 32);
    const double vs_soc = w.us_per_element() / (tw_soc_us / 32);
    std::cout << "  vs " << w.citation << ": ASIC " << fixed(vs_asic, 0)
              << "x, SoC " << fixed(vs_soc, 0) << "x\n";
  }
  std::cout << "Paper claims: 97x abstract headline (RISE per-element vs TW "
               "ASIC); 98-338x standalone chip; 10-34x for the SoC.\n";

  // §IV-C ①, last paragraph: small-payload ML inference case.
  const auto& aloha = analytics::table3_prior_works()[2];
  std::cout << "\nSmall payloads (32 elements): TW " << fixed(tw_fpga_us, 1)
            << " us vs FHE client " << fixed(aloha.encrypt_us, 0)
            << " us — an FHE encryption costs the same for any payload up to "
               "2^12 elements (paper: 21.2 us vs 1,884 us).\n";

  std::cout << "\nTechnology normalisation (Sec. IV-C (2)): TW 0.24 mm2 @28nm"
               " -> "
            << fixed(analytics::normalize_area_mm2(0.24, 28, 12), 3)
            << " mm2 @12nm vs RISE 0.11 mm2 — same order of magnitude.\n";

  // Abstract claim: "several orders better performance and energy
  // efficiency". Energy = power x time; TW's power comes from the
  // calibrated model, the baselines use representative figures (CPU package
  // ~50 W, client FPGA board ~10 W, RISE reports a 1 GHz 12nm SoC ~1 W).
  std::cout << "\n=== Energy per 32-element encryption ===\n";
  TextTable e;
  e.header({"Platform", "power (W)", "time (us)", "energy (uJ)",
            "vs TW ASIC"});
  const double tw_power = model.asic_power_w(params, 28);
  const double tw_energy = tw_power * tw_asic_us;
  struct EnergyRow {
    const char* name;
    double watts, us;
  };
  const EnergyRow rows[] = {
      {"CPU (Xeon, [9] cycles)", 50.0, 1363339.0 / 2200.0},
      {"FHE client FPGA ([18], any payload <= 2^12)", 10.0, 1870.0},
      {"RISE 12nm SoC [19] (per 32 of 2^12)", 1.0, 20000.0 * 32 / 4096},
      {"TW Artix-7 @75MHz", 2.0, tw_fpga_us},
      {"TW ASIC @1GHz", tw_power, tw_asic_us},
  };
  for (const auto& row : rows) {
    const double energy = row.watts * row.us;
    e.row({row.name, fixed(row.watts, 2), fixed(row.us, 1), fixed(energy, 2),
           fixed(energy / tw_energy, 0) + "x"});
  }
  e.print(std::cout);
  std::cout << "(baseline powers are representative package figures; the "
             "orders-of-magnitude gap, not the exact ratio, is the claim)\n";
  return 0;
}
