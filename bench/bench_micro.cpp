// Google-benchmark microbenchmarks for the primitive layers: Keccak-f,
// SHAKE squeeze throughput, modular multiplication, the NTT, PASTA block
// encryption (the CPU baseline of Table II), and BGV primitives.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/exec_context.hpp"
#include "kernels/backend.hpp"
#include "common/rng.hpp"
#include "fhe/bgv.hpp"
#include "fhe/encoding.hpp"
#include "fhe/ntt.hpp"
#include "keccak/shake.hpp"
#include "modular/primes.hpp"
#include "fhe/serialize.hpp"
#include "hw/accelerator.hpp"
#include "pasta/cipher.hpp"
#include "pasta/serialize.hpp"

namespace {

using namespace poe;

void BM_KeccakF1600(benchmark::State& state) {
  keccak::State s{};
  s[0] = 1;
  for (auto _ : state) {
    keccak::f1600(s);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_KeccakF1600);

void BM_Shake128Squeeze(benchmark::State& state) {
  keccak::Shake xof = keccak::Shake::shake128();
  std::uint8_t seed[16] = {1};
  xof.absorb(seed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xof.squeeze_u64());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_Shake128Squeeze);

void BM_ModMul(benchmark::State& state) {
  const mod::Modulus m(pasta::pasta_prime(static_cast<unsigned>(state.range(0))));
  Xoshiro256 rng(1);
  std::uint64_t a = rng.below(m.value()), b = rng.below(m.value());
  for (auto _ : state) {
    a = m.mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ModMul)->Arg(17)->Arg(33)->Arg(60);

void BM_FermatReduce(benchmark::State& state) {
  Xoshiro256 rng(2);
  mod::u128 x = static_cast<mod::u128>(rng.next()) * 65536;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mod::fermat_reduce(x, 16, 65537));
  }
}
BENCHMARK(BM_FermatReduce);

void BM_Ntt(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto q = mod::ntt_prime_chain(1, 50, n)[0];
  fhe::Ntt ntt(q, n);
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> a(n);
  for (auto& x : a) x = rng.below(q);
  for (auto _ : state) {
    ntt.forward(a);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_Ntt)->Arg(1024)->Arg(4096)->Arg(8192);

void BM_PastaBlockEncrypt(benchmark::State& state) {
  const auto params =
      state.range(0) == 3 ? pasta::pasta3() : pasta::pasta4();
  Xoshiro256 rng(4);
  pasta::PastaCipher cipher(params,
                            pasta::PastaCipher::random_key(params, rng));
  std::uint64_t ctr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher.keystream(1, ctr++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(params.t));
}
BENCHMARK(BM_PastaBlockEncrypt)->Arg(3)->Arg(4);

void BM_BgvEncrypt(benchmark::State& state) {
  static fhe::Bgv bgv(fhe::BgvParams::toy());
  fhe::BatchEncoder enc(bgv.params().n, bgv.params().t);
  const auto pt = enc.encode({1, 2, 3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgv.encrypt(pt));
  }
}
BENCHMARK(BM_BgvEncrypt);

void BM_BgvMultiplyRelin(benchmark::State& state) {
  static fhe::Bgv bgv(fhe::BgvParams::toy());
  fhe::BatchEncoder enc(bgv.params().n, bgv.params().t);
  const auto ct = bgv.encrypt(enc.encode({5, 6}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgv.multiply_relin(ct, ct));
  }
}
BENCHMARK(BM_BgvMultiplyRelin);

void BM_BgvRotation(benchmark::State& state) {
  static fhe::Bgv bgv(fhe::BgvParams::toy());
  static fhe::GaloisKeys keys = bgv.make_rotation_keys({1});
  fhe::BatchEncoder enc(bgv.params().n, bgv.params().t);
  const auto base = bgv.encrypt(enc.encode({1, 2, 3, 4}));
  for (auto _ : state) {
    fhe::Ciphertext ct = base;
    bgv.rotate_columns_inplace(ct, 1, keys);
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_BgvRotation);

void BM_BgvModSwitch(benchmark::State& state) {
  static fhe::Bgv bgv(fhe::BgvParams::toy());
  fhe::BatchEncoder enc(bgv.params().n, bgv.params().t);
  const auto base = bgv.encrypt(enc.encode({9, 8}));
  for (auto _ : state) {
    fhe::Ciphertext ct = base;
    bgv.mod_switch_inplace(ct);
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_BgvModSwitch);

void BM_SerializeCiphertext(benchmark::State& state) {
  static fhe::Bgv bgv(fhe::BgvParams::toy());
  fhe::BatchEncoder enc(bgv.params().n, bgv.params().t);
  const auto ct = bgv.encrypt(enc.encode({5}));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto wire = fhe::serialize_ciphertext(bgv.rns(), ct);
    bytes = wire.size();
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SerializeCiphertext);

void BM_PastaPackElements(benchmark::State& state) {
  const auto params = pasta::pasta4(pasta::pasta_prime(33));
  Xoshiro256 rng(9);
  std::vector<std::uint64_t> elems(1024);
  for (auto& e : elems) e = rng.below(params.p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pasta::pack_elements(params, elems));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_PastaPackElements);

void BM_AcceleratorBlock(benchmark::State& state) {
  // Host-side cost of simulating one accelerator block (meta-benchmark:
  // how fast the simulator itself runs).
  const auto params =
      state.range(0) == 3 ? pasta::pasta3() : pasta::pasta4();
  Xoshiro256 rng(10);
  const auto key = pasta::PastaCipher::random_key(params, rng);
  hw::AcceleratorSim sim(params);
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run_block(key, nonce++, 0));
  }
}
BENCHMARK(BM_AcceleratorBlock)->Arg(3)->Arg(4);

// ---- Kernel-backend comparison epilogue. ---------------------------------
// Times the three hot kernels (forward NTT, pointwise Barrett mul, lazy ksw
// inner product) on EVERY backend usable on this machine and splices the
// results into BENCH_hhe.json as "kernel_backends", so a regression in the
// SIMD paths is visible next to the end-to-end transcipher numbers.

/// ns/op of `op`, timed until the sample is at least ~30 ms long.
template <typename F>
double time_ns_per_op(F&& op) {
  using Clock = std::chrono::steady_clock;
  op();  // warm caches and page in the tables
  std::size_t reps = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) op();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (s >= 0.03) return s * 1e9 / static_cast<double>(reps);
    reps = s <= 0 ? reps * 16 : static_cast<std::size_t>(
                                    static_cast<double>(reps) * 0.05 / s) + 1;
  }
}

void run_kernel_backend_comparison() {
  const std::size_t n = 4096;
  const std::size_t nd = 16;  // digits in the ksw inner product
  const auto q = mod::ntt_prime_chain(1, 50, n)[0];
  const mod::Modulus m(q);
  const fhe::Ntt ntt(q, n);
  const auto tables = ntt.tables();
  Xoshiro256 rng(42);

  std::vector<std::uint64_t> a(n), b(n), lo(n), hi(n);
  for (auto& x : a) x = rng.below(q);
  for (auto& x : b) x = rng.below(q);
  std::vector<std::vector<std::uint64_t>> dig(nd), kb(nd), ka(nd);
  std::vector<const std::uint64_t*> dig_p(nd), kb_p(nd), ka_p(nd);
  for (std::size_t w = 0; w < nd; ++w) {
    dig[w].resize(n), kb[w].resize(n), ka[w].resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      dig[w][i] = rng.below(q), kb[w][i] = rng.below(q),
      ka[w][i] = rng.below(q);
    }
    dig_p[w] = dig[w].data(), kb_p[w] = kb[w].data(), ka_p[w] = ka[w].data();
  }

  struct Row {
    const char* kernel;
    std::vector<std::pair<std::string, double>> ns;  // backend -> ns/op
  };
  std::vector<Row> rows = {{"ntt_4096", {}},
                           {"pointwise_mul_4096", {}},
                           {"ksw_accumulate_4096x16", {}}};
  for (const kernels::Backend* bk : kernels::available_backends()) {
    // NTT output is < q < 4q, so feeding it back in is a legal steady state.
    std::vector<std::uint64_t> x = a;
    rows[0].ns.emplace_back(bk->name(), time_ns_per_op([&] {
                              bk->ntt_inplace(x.data(), tables);
                            }));
    std::vector<std::uint64_t> d = a;
    rows[1].ns.emplace_back(bk->name(), time_ns_per_op([&] {
                              bk->mul(d.data(), b.data(), n, m);
                            }));
    std::vector<std::uint64_t> d0 = a, d1 = b;
    rows[2].ns.emplace_back(bk->name(), time_ns_per_op([&] {
                              bk->ksw_accumulate(d0.data(), d1.data(),
                                                 dig_p.data(), kb_p.data(),
                                                 ka_p.data(), nd, n, nullptr,
                                                 m);
                            }));
  }

  std::cout << "\nkernel backends (ns/op, speedup vs scalar):\n";
  std::ostringstream js;
  js << "  \"kernel_backends\": {\n    \"selected\": \""
     << kernels::select_backend().name() << "\"";
  for (const Row& row : rows) {
    std::cout << "  " << row.kernel << ":";
    js << ",\n    \"" << row.kernel << "\": {";
    const double scalar_ns = row.ns.front().second;
    for (std::size_t i = 0; i < row.ns.size(); ++i) {
      const auto& [name, ns] = row.ns[i];
      std::cout << "  " << name << "=" << static_cast<std::uint64_t>(ns);
      if (i > 0) {
        std::cout << " (" << std::fixed << std::setprecision(2)
                  << scalar_ns / ns << "x)" << std::defaultfloat;
      }
      js << (i > 0 ? ", " : "") << "\"" << name
         << "\": " << static_cast<std::uint64_t>(ns);
    }
    js << "}";
    std::cout << "\n";
  }
  js << "\n  }";

  // Splice into BENCH_hhe.json (idempotent: an existing kernel_backends
  // section is replaced; a missing file gets a minimal skeleton).
  std::string doc;
  {
    std::ifstream in("BENCH_hhe.json");
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      doc = ss.str();
    }
  }
  const std::string marker = ",\n  \"kernel_backends\"";
  if (const auto pos = doc.find(marker); pos != std::string::npos) {
    doc.erase(pos);
  } else {
    while (!doc.empty() && (doc.back() == '\n' || doc.back() == ' ')) {
      doc.pop_back();
    }
    if (!doc.empty() && doc.back() == '}') doc.pop_back();
    while (!doc.empty() && (doc.back() == '\n' || doc.back() == ' ')) {
      doc.pop_back();
    }
  }
  if (doc.empty()) doc = "{\n  \"config\": \"micro-only\"";
  std::ofstream out("BENCH_hhe.json");
  out << doc << ",\n" << js.str() << "\n}\n";
  std::cout << "(spliced kernel_backends into BENCH_hhe.json)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Cumulative ExecContext counters across every benchmark above — a quick
  // sanity check that the BGV benches hit the pool instead of the allocator.
  const poe::CounterSnapshot ops = poe::ExecContext::global().snapshot();
  std::cout << "exec counters (cumulative): " << ops.ntts() << " NTTs, "
            << ops.ct_ct_mul << " ct-ct mults, " << ops.key_switch
            << " key switches, " << ops.mod_switch << " mod switches, "
            << ops.encode << " encodes, pool " << ops.pool_hits << " hits / "
            << ops.pool_misses << " misses\n";
  run_kernel_backend_comparison();
  return 0;
}
