// Google-benchmark microbenchmarks for the primitive layers: Keccak-f,
// SHAKE squeeze throughput, modular multiplication, the NTT, PASTA block
// encryption (the CPU baseline of Table II), and BGV primitives.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "fhe/bgv.hpp"
#include "fhe/encoding.hpp"
#include "fhe/ntt.hpp"
#include "keccak/shake.hpp"
#include "modular/primes.hpp"
#include "fhe/serialize.hpp"
#include "hw/accelerator.hpp"
#include "pasta/cipher.hpp"
#include "pasta/serialize.hpp"

namespace {

using namespace poe;

void BM_KeccakF1600(benchmark::State& state) {
  keccak::State s{};
  s[0] = 1;
  for (auto _ : state) {
    keccak::f1600(s);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_KeccakF1600);

void BM_Shake128Squeeze(benchmark::State& state) {
  keccak::Shake xof = keccak::Shake::shake128();
  std::uint8_t seed[16] = {1};
  xof.absorb(seed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xof.squeeze_u64());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_Shake128Squeeze);

void BM_ModMul(benchmark::State& state) {
  const mod::Modulus m(pasta::pasta_prime(static_cast<unsigned>(state.range(0))));
  Xoshiro256 rng(1);
  std::uint64_t a = rng.below(m.value()), b = rng.below(m.value());
  for (auto _ : state) {
    a = m.mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ModMul)->Arg(17)->Arg(33)->Arg(60);

void BM_FermatReduce(benchmark::State& state) {
  Xoshiro256 rng(2);
  mod::u128 x = static_cast<mod::u128>(rng.next()) * 65536;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mod::fermat_reduce(x, 16, 65537));
  }
}
BENCHMARK(BM_FermatReduce);

void BM_Ntt(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto q = mod::ntt_prime_chain(1, 50, n)[0];
  fhe::Ntt ntt(q, n);
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> a(n);
  for (auto& x : a) x = rng.below(q);
  for (auto _ : state) {
    ntt.forward(a);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_Ntt)->Arg(1024)->Arg(4096)->Arg(8192);

void BM_PastaBlockEncrypt(benchmark::State& state) {
  const auto params =
      state.range(0) == 3 ? pasta::pasta3() : pasta::pasta4();
  Xoshiro256 rng(4);
  pasta::PastaCipher cipher(params,
                            pasta::PastaCipher::random_key(params, rng));
  std::uint64_t ctr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher.keystream(1, ctr++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(params.t));
}
BENCHMARK(BM_PastaBlockEncrypt)->Arg(3)->Arg(4);

void BM_BgvEncrypt(benchmark::State& state) {
  static fhe::Bgv bgv(fhe::BgvParams::toy());
  fhe::BatchEncoder enc(bgv.params().n, bgv.params().t);
  const auto pt = enc.encode({1, 2, 3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgv.encrypt(pt));
  }
}
BENCHMARK(BM_BgvEncrypt);

void BM_BgvMultiplyRelin(benchmark::State& state) {
  static fhe::Bgv bgv(fhe::BgvParams::toy());
  fhe::BatchEncoder enc(bgv.params().n, bgv.params().t);
  const auto ct = bgv.encrypt(enc.encode({5, 6}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgv.multiply_relin(ct, ct));
  }
}
BENCHMARK(BM_BgvMultiplyRelin);

void BM_BgvRotation(benchmark::State& state) {
  static fhe::Bgv bgv(fhe::BgvParams::toy());
  static fhe::GaloisKeys keys = bgv.make_rotation_keys({1});
  fhe::BatchEncoder enc(bgv.params().n, bgv.params().t);
  const auto base = bgv.encrypt(enc.encode({1, 2, 3, 4}));
  for (auto _ : state) {
    fhe::Ciphertext ct = base;
    bgv.rotate_columns_inplace(ct, 1, keys);
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_BgvRotation);

void BM_BgvModSwitch(benchmark::State& state) {
  static fhe::Bgv bgv(fhe::BgvParams::toy());
  fhe::BatchEncoder enc(bgv.params().n, bgv.params().t);
  const auto base = bgv.encrypt(enc.encode({9, 8}));
  for (auto _ : state) {
    fhe::Ciphertext ct = base;
    bgv.mod_switch_inplace(ct);
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_BgvModSwitch);

void BM_SerializeCiphertext(benchmark::State& state) {
  static fhe::Bgv bgv(fhe::BgvParams::toy());
  fhe::BatchEncoder enc(bgv.params().n, bgv.params().t);
  const auto ct = bgv.encrypt(enc.encode({5}));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto wire = fhe::serialize_ciphertext(bgv.rns(), ct);
    bytes = wire.size();
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SerializeCiphertext);

void BM_PastaPackElements(benchmark::State& state) {
  const auto params = pasta::pasta4(pasta::pasta_prime(33));
  Xoshiro256 rng(9);
  std::vector<std::uint64_t> elems(1024);
  for (auto& e : elems) e = rng.below(params.p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pasta::pack_elements(params, elems));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_PastaPackElements);

void BM_AcceleratorBlock(benchmark::State& state) {
  // Host-side cost of simulating one accelerator block (meta-benchmark:
  // how fast the simulator itself runs).
  const auto params =
      state.range(0) == 3 ? pasta::pasta3() : pasta::pasta4();
  Xoshiro256 rng(10);
  const auto key = pasta::PastaCipher::random_key(params, rng);
  hw::AcceleratorSim sim(params);
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run_block(key, nonce++, 0));
  }
}
BENCHMARK(BM_AcceleratorBlock)->Arg(3)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Cumulative ExecContext counters across every benchmark above — a quick
  // sanity check that the BGV benches hit the pool instead of the allocator.
  const poe::CounterSnapshot ops = poe::ExecContext::global().snapshot();
  std::cout << "exec counters (cumulative): " << ops.ntts() << " NTTs, "
            << ops.ct_ct_mul << " ct-ct mults, " << ops.key_switch
            << " key switches, " << ops.mod_switch << " mod switches, "
            << ops.encode << " encodes, pool " << ops.pool_hits << " hits / "
            << ops.pool_misses << " misses\n";
  return 0;
}
