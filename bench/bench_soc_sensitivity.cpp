// Sensitivity study of the RISC-V SoC integration (paper §IV-A ③): the
// paper notes the single shared data bus is "another limiting factor" that
// serialises block processing. This bench quantifies (i) how the per-block
// latency degrades with slower buses, and (ii) what a double-buffered
// peripheral (readout of block i overlapped with computation of block i+1)
// would recover — the natural next step the paper's design leaves open.
#include <iostream>

#include "common/table.hpp"
#include "core/poe.hpp"
#include "riscv/cpu.hpp"
#include "soc/driver.hpp"
#include "soc/soc.hpp"

namespace {
using namespace poe;

// Run the standard driver with a given bus wait-state count by scaling the
// core timing (the model charges bus latency per access).
std::uint64_t per_block_cycles(const pasta::PastaParams& params,
                               unsigned extra_wait_states) {
  soc::SocConfig cfg{.params = params};
  soc::Soc machine(cfg);
  Xoshiro256 rng(1);
  const auto key = pasta::PastaCipher::random_key(params, rng);
  soc::DriverLayout layout;
  layout.num_blocks = 8;
  std::vector<std::uint64_t> msg(params.t * layout.num_blocks, 1);
  const unsigned stride = machine.peripheral().element_stride();
  soc::store_elements(machine.ram(), layout.key_addr, key, stride);
  soc::store_elements(machine.ram(), layout.src_addr, msg, stride);

  // Measure with the stock single-wait-state bus, then charge the extra
  // wait states analytically per bus access (the driver's access count per
  // block is fixed).
  const auto program =
      soc::build_encrypt_driver(params, cfg.periph_base, layout);
  machine.run_program(program);
  const auto t0 = machine.ram().load_word(layout.cycles_addr);
  const auto t1 = machine.ram().load_word(layout.cycles_addr + 4);
  const std::uint64_t measured = (t1 - t0) / layout.num_blocks;
  // Bus accesses per block: readout (t loads + t stores) + control (~8).
  const std::uint64_t accesses = 2 * params.t + 8;
  return measured + accesses * extra_wait_states;
}

}  // namespace

int main() {
  const auto params = pasta::pasta4();
  Xoshiro256 rng(2);
  const auto key = pasta::PastaCipher::random_key(params, rng);
  hw::AcceleratorSim sim(params);
  std::uint64_t accel = 0;
  for (int i = 0; i < 8; ++i) {
    accel += sim.run_block(key, i, 0).stats.total_cycles;
  }
  accel /= 8;

  std::cout << "=== SoC bus sensitivity (PASTA-4, per block) ===\n";
  TextTable t;
  t.header({"bus wait states", "SoC cycles/block", "us @100MHz",
            "overhead vs accelerator"});
  for (unsigned ws : {0u, 1u, 2u, 4u, 8u}) {
    const auto cycles = per_block_cycles(params, ws);
    t.row({std::to_string(ws + 1), with_commas(cycles),
           fixed(hw::riscv_soc_100mhz().cycles_to_us(cycles), 1),
           percent(static_cast<double>(cycles - accel) /
                   static_cast<double>(accel))});
  }
  t.print(std::cout);
  std::cout << "Accelerator alone: " << with_commas(accel)
            << " cycles/block. The paper's Table II RISC-V figure (15.9 us "
               "= 1,590 cc) equals the bare accelerator latency — i.e. zero "
               "bus overhead; real driver traffic adds the rest.\n";

  // Measured DMA write-back mode (CTRL bit 1): the peripheral streams the
  // ciphertext to RAM over its master port; the core only polls.
  {
    soc::SocConfig cfg{.params = params};
    soc::Soc machine(cfg);
    soc::DriverLayout layout;
    layout.num_blocks = 8;
    layout.dma_writeback = true;
    std::vector<std::uint64_t> msg(params.t * layout.num_blocks, 1);
    soc::store_elements(machine.ram(), layout.key_addr, key, 4);
    soc::store_elements(machine.ram(), layout.src_addr, msg, 4);
    machine.run_program(
        soc::build_encrypt_driver(params, cfg.periph_base, layout));
    const auto t0 = machine.ram().load_word(layout.cycles_addr);
    const auto t1 = machine.ram().load_word(layout.cycles_addr + 4);
    const auto dma = (t1 - t0) / layout.num_blocks;
    const auto serial_measured = per_block_cycles(params, 0);
    std::cout << "\nMeasured DMA write-back: " << with_commas(dma)
              << " cycles/block ("
              << fixed(hw::riscv_soc_100mhz().cycles_to_us(dma), 1)
              << " us) vs " << with_commas(serial_measured)
              << " with slave readout — "
              << percent(1.0 - static_cast<double>(dma) /
                                   static_cast<double>(serial_measured))
              << " faster and within "
              << percent(static_cast<double>(dma - accel) /
                         static_cast<double>(accel))
              << " of the bare accelerator.\n";
  }

  // Double-buffered peripheral estimate: the block-serial constraint means
  // time = accel + readout; with an output double buffer the core drains
  // block i while block i+1 computes: time = max(accel, readout) + control.
  const auto serial = per_block_cycles(params, 0);
  const std::uint64_t readout = serial - accel;
  const std::uint64_t overlapped =
      std::max<std::uint64_t>(accel, readout) + 8;
  std::cout << "\nDouble-buffered output (hypothetical): "
            << with_commas(overlapped) << " cycles/block vs "
            << with_commas(serial) << " serial — recovers "
            << percent(static_cast<double>(serial - overlapped) /
                       static_cast<double>(serial))
            << " of the bus serialisation the paper calls a limiting "
               "factor.\n";
  return 0;
}
