// Regenerates the research-gap analysis of §I-A: the modular-multiplication
// complexity of an FHE public-key client encryption (~2^19) versus PASTA
// (~2^18 for PASTA-3), and the resulting throughput trade-off for
// data-intensive workloads.
#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "core/poe.hpp"

int main() {
  using namespace poe;

  analytics::PkeEncryptModel pke;
  std::cout << "=== Sec. I-A: multiplicative complexity ===\n";
  std::cout << "PKE client encryption (N=2^13, 3 NTTs x 3 moduli): "
            << with_commas(pke.total_mults()) << " mults = 2^"
            << fixed(std::log2(static_cast<double>(pke.total_mults())), 2)
            << " (paper: ~2^19)\n";

  TextTable t;
  t.header({"Scheme", "affine mults", "s-box mults", "total", "log2",
            "per element"});
  for (const auto& params : {pasta::pasta3(), pasta::pasta4()}) {
    analytics::PastaCostModel m{params};
    t.row({params.name, with_commas(m.affine_mults()),
           with_commas(m.sbox_mults()), with_commas(m.total_mults()),
           fixed(std::log2(static_cast<double>(m.total_mults())), 2),
           fixed(m.mults_per_element(), 0)});
  }
  t.print(std::cout);
  std::cout << "(paper: PASTA-3 affine cost 2^18 — half the PKE cost for "
               "1/32 of the elements)\n\n";

  std::cout << "=== Throughput ratio for 2^12 elements ===\n";
  for (const auto& params : {pasta::pasta3(), pasta::pasta4()}) {
    analytics::PastaCostModel m{params};
    const double ratio =
        analytics::pasta_vs_pke_throughput_ratio(m, pke, 1ull << 12);
    std::cout << params.name << ": " << fixed(ratio, 1)
              << "x more multiplications than one PKE encryption packing "
                 "2^12 elements (paper: 32x for PASTA-3)\n";
  }
  std::cout << "\nCommunication: PASTA ciphertexts carry "
            << fixed(
                   static_cast<double>(pasta::ciphertext_bytes(
                       pasta::pasta4(pasta::pasta_prime(33)), 32)),
                   0)
            << " B per 32 elements (4.1 B/elem) vs an RLWE ciphertext's "
            << fixed(analytics::RiseCommModel{}.ciphertext_bytes() / 4096.0, 1)
            << " B/elem packed — the ~6x-lower-communication claim of the "
               "paper depends on packing density.\n";
  return 0;
}
