// Future-work study (§VI): the impact of moving from PASTA to the other
// HHE-enabling SE schemes (MASTA/HERA/RUBATO-like profiles) on the same
// cryptoprocessor datapath — XOF demand is the bottleneck, and the
// fixed-matrix schemes additionally drop the MatGen array that dominates
// the area.
#include <iostream>

#include "analytics/scheme_space.hpp"
#include "common/table.hpp"
#include "core/poe.hpp"

int main() {
  using namespace poe;

  // Calibrate the estimate against the measured PASTA points first.
  const auto profiles = analytics::scheme_profiles();
  Xoshiro256 rng(1);
  hw::AcceleratorSim sim4(pasta::pasta4());
  const auto key4 = pasta::PastaCipher::random_key(pasta::pasta4(), rng);
  const auto measured4 = sim4.run_block(key4, 1, 0).stats.total_cycles;

  std::cout << "=== Future work (Sec. VI): HHE scheme design space on this "
               "datapath ===\n";
  TextTable t;
  t.header({"Scheme", "state", "block", "XOF elems", "MatGen?",
            "est. cycles", "cycles/elem", "rel. area", "area-time"});
  double base_at = 0;
  for (const auto& s : profiles) {
    const auto cycles = analytics::estimated_cycles(s);
    const double per_elem =
        static_cast<double>(cycles) / static_cast<double>(s.block_elements);
    const double area = analytics::estimated_area_factor(s);
    const double at = per_elem * area;
    if (s.name == "PASTA-4") base_at = at;
    t.row({s.name, std::to_string(s.state_elements),
           std::to_string(s.block_elements), std::to_string(s.xof_elements),
           s.needs_matgen ? "yes" : "no", with_commas(cycles),
           fixed(per_elem, 1), fixed(area, 2) + "x", fixed(at, 1)});
  }
  t.print(std::cout);
  std::cout << "Model sanity: PASTA-4 estimate "
            << analytics::estimated_cycles(profiles[1]) << " cycles vs "
            << measured4 << " measured on the cycle-accurate model.\n";
  std::cout << "Takeaways: (i) the XOF dominates every scheme; (ii) the "
               "fixed-matrix schemes (HERA/RUBATO-like) need ~10-20x less "
               "XOF data and no MatGen array, trading symmetric-ciphertext "
               "noise/expansion properties for a much smaller, faster "
               "client; (iii) area-time per element varies by >10x across "
               "schemes (PASTA-4 baseline "
            << fixed(base_at, 1) << ").\n";
  std::cout << "(MASTA/HERA/RUBATO rows are structural profiles — state and "
               "round counts from the literature on this datapath model — "
               "not bit-exact reimplementations.)\n";
  return 0;
}
