#include <gtest/gtest.h>

#include "common/error.hpp"
#include "riscv/assembler.hpp"
#include "riscv/compressed.hpp"
#include "riscv/disasm.hpp"
#include "riscv/bus.hpp"
#include "riscv/cpu.hpp"

namespace poe::rv {
namespace {

// Build a 64 KiB RAM at 0, load the program, run, and return the CPU.
struct Machine {
  Ram ram{64 * 1024};
  Bus bus;
  Machine() { bus.map(0, 64 * 1024, &ram); }

  Cpu run(Program& p, u64 max_instr = 1'000'000) {
    Program::load(ram, 0, p.assemble());
    Cpu cpu(bus, 0);
    cpu.run(max_instr);
    return cpu;
  }
};

TEST(Assembler, KnownEncodings) {
  Program p;
  p.addi(Reg::ra, Reg::x0, 5);
  p.add(Reg::gp, Reg::ra, Reg::sp);
  p.lui(Reg::t0, 0x12345);
  p.sw(Reg::a0, Reg::sp, 8);
  p.lw(Reg::a1, Reg::sp, 8);
  p.ecall();
  const auto w = p.assemble();
  EXPECT_EQ(w[0], 0x00500093u);  // addi x1, x0, 5
  EXPECT_EQ(w[1], 0x002081B3u);  // add x3, x1, x2
  EXPECT_EQ(w[2], 0x123452B7u);  // lui x5, 0x12345
  EXPECT_EQ(w[3], 0x00A12423u);  // sw x10, 8(x2)
  EXPECT_EQ(w[4], 0x00812583u);  // lw x11, 8(x2)
  EXPECT_EQ(w[5], 0x00000073u);  // ecall
}

TEST(Assembler, BranchAndJumpFixups) {
  Program p;
  auto skip = p.make_label();
  p.addi(Reg::t0, Reg::x0, 1);
  p.beq(Reg::x0, Reg::x0, skip);
  p.addi(Reg::t0, Reg::x0, 99);  // skipped
  p.bind(skip);
  p.ecall();

  Machine m;
  const auto cpu = m.run(p);
  EXPECT_EQ(cpu.reg(5), 1u);
  EXPECT_EQ(cpu.stop_reason(), StopReason::kEcall);
}

TEST(Assembler, BackwardBranchLoop) {
  // sum = 1 + 2 + ... + 10
  Program p;
  p.li(Reg::t0, 10);
  p.li(Reg::t1, 0);
  auto loop = p.make_label();
  p.bind(loop);
  p.add(Reg::t1, Reg::t1, Reg::t0);
  p.addi(Reg::t0, Reg::t0, -1);
  p.bne(Reg::t0, Reg::x0, loop);
  p.ecall();

  Machine m;
  EXPECT_EQ(m.run(p).reg(6), 55u);
}

TEST(Assembler, LiCoversHardImmediates) {
  for (u32 value : {0u, 1u, 0x7FFu, 0x800u, 0xFFFu, 0x12345678u, 0xFFFFFFFFu,
                    0x80000000u, 0x12345FFFu, 0xFFFFF800u}) {
    Program p;
    p.li(Reg::a0, value);
    p.ecall();
    Machine m;
    EXPECT_EQ(m.run(p).reg(10), value) << "li " << std::hex << value;
  }
}

TEST(Assembler, UnboundLabelThrows) {
  Program p;
  auto l = p.make_label();
  p.j(l);
  EXPECT_THROW(p.assemble(), poe::Error);
}

TEST(Assembler, DoubleBindThrows) {
  Program p;
  auto l = p.make_label();
  p.bind(l);
  EXPECT_THROW(p.bind(l), poe::Error);
}

TEST(Cpu, ArithmeticAndLogic) {
  Program p;
  p.li(Reg::a0, 7);
  p.li(Reg::a1, 3);
  p.sub(Reg::a2, Reg::a0, Reg::a1);   // 4
  p.xor_(Reg::a3, Reg::a0, Reg::a1);  // 4
  p.or_(Reg::a4, Reg::a0, Reg::a1);   // 7
  p.and_(Reg::a5, Reg::a0, Reg::a1);  // 3
  p.slli(Reg::a6, Reg::a0, 4);        // 112
  p.srai(Reg::a7, Reg::a1, 1);        // 1
  p.ecall();
  Machine m;
  auto cpu = m.run(p);
  EXPECT_EQ(cpu.reg(12), 4u);
  EXPECT_EQ(cpu.reg(13), 4u);
  EXPECT_EQ(cpu.reg(14), 7u);
  EXPECT_EQ(cpu.reg(15), 3u);
  EXPECT_EQ(cpu.reg(16), 112u);
  EXPECT_EQ(cpu.reg(17), 1u);
}

TEST(Cpu, SignedComparisonsAndShifts) {
  Program p;
  p.li(Reg::a0, 0xFFFFFFFF);  // -1
  p.li(Reg::a1, 1);
  p.slt(Reg::a2, Reg::a0, Reg::a1);   // -1 < 1 -> 1
  p.sltu(Reg::a3, Reg::a0, Reg::a1);  // max_u < 1 -> 0
  p.sra(Reg::a4, Reg::a0, Reg::a1);   // -1 >> 1 = -1
  p.srl(Reg::a5, Reg::a0, Reg::a1);   // logical
  p.ecall();
  Machine m;
  auto cpu = m.run(p);
  EXPECT_EQ(cpu.reg(12), 1u);
  EXPECT_EQ(cpu.reg(13), 0u);
  EXPECT_EQ(cpu.reg(14), 0xFFFFFFFFu);
  EXPECT_EQ(cpu.reg(15), 0x7FFFFFFFu);
}

TEST(Cpu, LoadStoreAllWidths) {
  Program p;
  p.li(Reg::s0, 0x1000);
  p.li(Reg::a0, 0xDEADBEEF);
  p.sw(Reg::a0, Reg::s0, 0);
  p.lb(Reg::a1, Reg::s0, 3);   // 0xDE sign-extended
  p.lbu(Reg::a2, Reg::s0, 3);  // 0xDE
  p.lh(Reg::a3, Reg::s0, 0);   // 0xBEEF sign-extended
  p.lhu(Reg::a4, Reg::s0, 0);  // 0xBEEF
  p.sb(Reg::x0, Reg::s0, 0);
  p.lw(Reg::a5, Reg::s0, 0);  // 0xDEADBE00
  p.sh(Reg::x0, Reg::s0, 2);
  p.lw(Reg::a6, Reg::s0, 0);  // 0x0000BE00
  p.ecall();
  Machine m;
  auto cpu = m.run(p);
  EXPECT_EQ(cpu.reg(11), 0xFFFFFFDEu);
  EXPECT_EQ(cpu.reg(12), 0xDEu);
  EXPECT_EQ(cpu.reg(13), 0xFFFFBEEFu);
  EXPECT_EQ(cpu.reg(14), 0xBEEFu);
  EXPECT_EQ(cpu.reg(15), 0xDEADBE00u);
  EXPECT_EQ(cpu.reg(16), 0x0000BE00u);
}

TEST(Cpu, JalLinksAndJalrReturns) {
  Program p;
  auto func = p.make_label();
  auto done = p.make_label();
  p.jal(Reg::ra, func);      // call
  p.j(done);                 // after return
  p.bind(func);
  p.li(Reg::a0, 42);
  p.jalr(Reg::x0, Reg::ra, 0);  // ret
  p.bind(done);
  p.ecall();
  Machine m;
  auto cpu = m.run(p);
  EXPECT_EQ(cpu.reg(10), 42u);
  EXPECT_EQ(cpu.stop_reason(), StopReason::kEcall);
}

TEST(Cpu, MExtensionSemantics) {
  // Spot values incl. signed corner cases.
  Program p;
  p.li(Reg::a0, 0x80000000);  // INT_MIN
  p.li(Reg::a1, 0xFFFFFFFF);  // -1
  p.mul(Reg::s2, Reg::a0, Reg::a1);
  p.mulh(Reg::s3, Reg::a0, Reg::a1);
  p.mulhu(Reg::s4, Reg::a0, Reg::a1);
  p.div(Reg::s5, Reg::a0, Reg::a1);   // overflow -> INT_MIN
  p.rem(Reg::s6, Reg::a0, Reg::a1);   // overflow -> 0
  p.div(Reg::s7, Reg::a0, Reg::x0);   // div by zero -> -1
  p.rem(Reg::s8, Reg::a0, Reg::x0);   // rem by zero -> a
  p.li(Reg::a2, 100);
  p.li(Reg::a3, 7);
  p.divu(Reg::s9, Reg::a2, Reg::a3);
  p.remu(Reg::s10, Reg::a2, Reg::a3);
  p.mulhsu(Reg::s11, Reg::a1, Reg::a3);  // (-1) * 7 unsigned-b
  p.ecall();
  Machine m;
  auto cpu = m.run(p);
  EXPECT_EQ(cpu.reg(18), 0x80000000u);             // mul low
  EXPECT_EQ(cpu.reg(19), 0u);                      // mulh: (2^31)*1 >> 32
  EXPECT_EQ(cpu.reg(20), 0x7FFFFFFFu);             // mulhu
  EXPECT_EQ(cpu.reg(21), 0x80000000u);             // div overflow
  EXPECT_EQ(cpu.reg(22), 0u);                      // rem overflow
  EXPECT_EQ(cpu.reg(23), 0xFFFFFFFFu);             // div/0
  EXPECT_EQ(cpu.reg(24), 0x80000000u);             // rem/0
  EXPECT_EQ(cpu.reg(25), 14u);
  EXPECT_EQ(cpu.reg(26), 2u);
  EXPECT_EQ(cpu.reg(27), 0xFFFFFFFFu);  // mulhsu(-1, 7): high word of -7
}

TEST(Cpu, CycleCsrMonotonicAndMatchesModel) {
  Program p;
  p.csrr_cycle(Reg::s0);
  p.nop();
  p.nop();
  p.csrr_cycle(Reg::s1);
  p.ecall();
  Machine m;
  auto cpu = m.run(p);
  EXPECT_GT(cpu.reg(9), cpu.reg(8));
  EXPECT_EQ(cpu.reg(9) - cpu.reg(8), 3u);  // 2 nops + 1 csr read, 1cc each
}

TEST(Cpu, TimingModel) {
  // loads pay bus latency; divisions pay the iterative divider.
  Program p1;
  p1.nop();
  p1.ecall();
  Machine m1;
  const u64 base = m1.run(p1).cycles();

  Program p2;
  p2.lw(Reg::a0, Reg::x0, 0);
  p2.ecall();
  Machine m2;
  EXPECT_GT(m2.run(p2).cycles(), base);

  Program p3;
  p3.div(Reg::a0, Reg::a1, Reg::a2);
  p3.ecall();
  Machine m3;
  EXPECT_GE(m3.run(p3).cycles(), base + 36);
}

TEST(Cpu, X0IsHardwiredZero) {
  Program p;
  p.li(Reg::t0, 7);
  p.add(Reg::x0, Reg::t0, Reg::t0);
  p.mv(Reg::a0, Reg::x0);
  p.ecall();
  Machine m;
  EXPECT_EQ(m.run(p).reg(10), 0u);
}

TEST(Cpu, EbreakStops) {
  Program p;
  p.ebreak();
  Machine m;
  EXPECT_EQ(m.run(p).stop_reason(), StopReason::kEbreak);
}

TEST(Cpu, MaxInstructionLimit) {
  Program p;
  auto loop = p.make_label();
  p.bind(loop);
  p.j(loop);  // infinite loop
  Machine m;
  Program::load(m.ram, 0, p.assemble());
  Cpu cpu(m.bus, 0);
  EXPECT_EQ(cpu.run(1000), StopReason::kMaxInstructions);
  EXPECT_EQ(cpu.instructions_retired(), 1000u);
}

TEST(Cpu, IllegalInstructionThrows) {
  Machine m;
  m.ram.store_word(0, 0xFFFFFFFFu);
  Cpu cpu(m.bus, 0);
  EXPECT_THROW(cpu.step(), poe::Error);
}

TEST(Bus, UnmappedAccessThrows) {
  Bus bus;
  Ram ram(1024);
  bus.map(0x1000, 1024, &ram);
  EXPECT_THROW(bus.read32(0, 0), poe::Error);
  EXPECT_NO_THROW(bus.read32(0x1000, 0));
}

TEST(Bus, OverlappingWindowRejected) {
  Bus bus;
  Ram a(1024), b(1024);
  bus.map(0, 1024, &a);
  EXPECT_THROW(bus.map(512, 1024, &b), poe::Error);
  EXPECT_NO_THROW(bus.map(1024, 1024, &b));
}

// Build a program from raw 16-bit (compressed) and 32-bit encodings mixed.
struct RawProgram {
  std::vector<std::uint16_t> halves;
  void c(std::uint16_t insn) { halves.push_back(insn); }
  void word(u32 insn) {
    halves.push_back(static_cast<std::uint16_t>(insn));
    halves.push_back(static_cast<std::uint16_t>(insn >> 16));
  }
  void load(Ram& ram, u32 base) const {
    for (std::size_t i = 0; i < halves.size(); ++i) {
      ram.write8(base + static_cast<u32>(i) * 2,
                 static_cast<u8>(halves[i]));
      ram.write8(base + static_cast<u32>(i) * 2 + 1,
                 static_cast<u8>(halves[i] >> 8));
    }
  }
};

TEST(Compressed, KnownEncodingsExpandAndExecute) {
  // Canonical RV32C encodings (as seen in any objdump):
  //   0x4505 c.li a0, 1      0x852E c.mv a0, a1     0x952E c.add a0, a1
  //   0x0505 c.addi a0, 1    0x8D0D c.sub a0, a1    0x9002 c.ebreak
  Machine m;
  RawProgram p;
  p.c(0x4505);  // c.li a0, 1
  p.c(0x0505);  // c.addi a0, 1      -> a0 = 2
  p.word(0x00A00593);  // addi a1, x0, 10 (32-bit, mixed stream)
  p.c(0x852E);  // c.mv a0, a1       -> a0 = 10
  p.c(0x952E);  // c.add a0, a1      -> a0 = 20
  p.c(0x8D0D);  // c.sub a0, a1      -> a0 = 10
  p.c(0x9002);  // c.ebreak
  p.load(m.ram, 0);
  Cpu cpu(m.bus, 0);
  EXPECT_EQ(cpu.run(100), StopReason::kEbreak);
  EXPECT_EQ(cpu.reg(10), 10u);
}

TEST(Compressed, StackIdioms) {
  // Prologue/epilogue idioms: c.addi16sp, c.swsp, c.lwsp, c.jr ra.
  Machine m;
  RawProgram p;
  p.word(0x00010113);  // addi sp, x0... set sp = 0x8000 first:
  RawProgram q;
  q.word(0x00008137);  // lui sp, 0x8
  q.c(0x1141);         // c.addi sp, -16
  q.word(0x00100093);  // addi ra, x0, 1
  q.c(0xC606);         // c.swsp ra, 12(sp)
  q.word(0x00000093);  // addi ra, x0, 0
  q.c(0x40B2);         // c.lwsp ra, 12(sp)
  q.c(0x0141);         // c.addi sp, 16
  q.word(0x00000073);  // ecall
  q.load(m.ram, 0);
  Cpu cpu(m.bus, 0);
  EXPECT_EQ(cpu.run(100), StopReason::kEcall);
  EXPECT_EQ(cpu.reg(1), 1u);       // ra restored through the stack
  EXPECT_EQ(cpu.reg(2), 0x8000u);  // sp restored
  (void)p;
}

TEST(Compressed, ControlFlowAndLinkLength) {
  // c.jal must link pc+2 (not pc+4).
  Machine m;
  RawProgram p;
  p.c(0x2009);  // c.jal +2? — construct instead with c.j over a trap:
  // Simpler: place c.j +4 at 0, trap at 2, ecall at 4.
  RawProgram q;
  q.c(0xA011);         // c.j +4  (to halfword 2)
  q.c(0x9002);         // c.ebreak (skipped)
  q.word(0x00000073);  // ecall
  q.load(m.ram, 0);
  Cpu cpu(m.bus, 0);
  EXPECT_EQ(cpu.run(100), StopReason::kEcall);
  (void)p;
}

TEST(Compressed, MemoryOps) {
  Machine m;
  m.ram.store_word(0x1000, 0xCAFEF00D);
  RawProgram q;
  q.word(0x00001537);  // lui a0, 0x1    (a0 = 0x1000)
  q.c(0x4108);         // c.lw a0, 0(a0)
  q.word(0x000015B7);  // lui a1, 0x1
  q.c(0xC188);         // c.sw a0, 0(a1)... offsets: verify via result
  q.word(0x00000073);  // ecall
  q.load(m.ram, 0);
  Cpu cpu(m.bus, 0);
  EXPECT_EQ(cpu.run(100), StopReason::kEcall);
  EXPECT_EQ(cpu.reg(10), 0xCAFEF00Du);
  EXPECT_EQ(m.ram.load_word(0x1000), 0xCAFEF00Du);
}

TEST(Compressed, BranchesAndShifts) {
  Machine m;
  RawProgram q;
  q.c(0x4529);         // c.li a0, 10
  q.c(0x0105);         // c.addi sp?? -> use 32-bit loop instead
  // Rebuild cleanly: a0 = 4; a0 <<= 2 (c.slli); if (a0 != 16) trap.
  RawProgram r;
  r.c(0x4511);         // c.li a0, 4
  r.c(0x050A);         // c.slli a0, 2 -> 16
  r.word(0x01000593);  // addi a1, x0, 16
  r.word(0x00B50463);  // beq a0, a1, +8
  r.c(0x9002);         // c.ebreak (must be skipped)
  r.c(0x0001);         // c.nop
  r.word(0x00000073);  // ecall
  r.load(m.ram, 0);
  Cpu cpu(m.bus, 0);
  EXPECT_EQ(cpu.run(100), StopReason::kEcall);
  EXPECT_EQ(cpu.reg(10), 16u);
  (void)q;
}

TEST(Compressed, IllegalEncodingsThrow) {
  EXPECT_THROW(expand_compressed(0x0000), poe::Error);  // defined illegal
  EXPECT_TRUE(is_compressed(0x4505));
  EXPECT_FALSE(is_compressed(0x00000073));
}

TEST(Disasm, KnownInstructions) {
  EXPECT_EQ(disassemble(0x00500093), "addi ra, x0, 5");
  EXPECT_EQ(disassemble(0x002081B3), "add gp, ra, sp");
  EXPECT_EQ(disassemble(0x123452B7), "lui t0, 0x12345");
  EXPECT_EQ(disassemble(0x00A12423), "sw a0, 8(sp)");
  EXPECT_EQ(disassemble(0x00812583), "lw a1, 8(sp)");
  EXPECT_EQ(disassemble(0x00000073), "ecall");
  EXPECT_EQ(disassemble(0x00100073), "ebreak");
  EXPECT_EQ(disassemble(0x00008067), "ret");
  EXPECT_EQ(disassemble(0x02B50533), "mul a0, a0, a1");
  EXPECT_EQ(disassemble(0x40B50533), "sub a0, a0, a1");
  EXPECT_EQ(disassemble(0xC0002573), "csrr a0, cycle");
  EXPECT_EQ(disassemble(0xFFFFFFFF), ".word 0xffffffff");
}

TEST(Disasm, RoundtripsAssembler) {
  // Disassembling the assembler's output must produce the source mnemonics.
  Program p;
  p.li(Reg::a0, 0x12345678);
  p.lw(Reg::t0, Reg::a0, 4);
  p.mul(Reg::t1, Reg::t0, Reg::a0);
  auto l = p.make_label();
  p.bind(l);
  p.bne(Reg::t1, Reg::x0, l);
  p.ecall();
  const auto lines = disassemble_program(p.assemble(), 0);
  ASSERT_GE(lines.size(), 5u);
  EXPECT_NE(lines[0].find("lui a0"), std::string::npos);
  EXPECT_NE(lines[1].find("addi a0, a0"), std::string::npos);
  EXPECT_NE(lines[2].find("lw t0, 4(a0)"), std::string::npos);
  EXPECT_NE(lines[3].find("mul t1, t0, a0"), std::string::npos);
  EXPECT_NE(lines[4].find("bne t1, x0, +0"), std::string::npos);
}

TEST(Disasm, HandlesCompressedStream) {
  // 0x4505 (c.li a0, 1) + 0x9002 (c.ebreak) packed into one 32-bit word.
  const std::vector<u32> words = {0x90024505};
  const auto lines = disassemble_program(words, 0x100);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("c.addi a0, x0, 1"), std::string::npos);
  EXPECT_NE(lines[1].find("c.ebreak"), std::string::npos);
}

TEST(Cpu, MemcpyProgram) {
  // Copy 16 words from 0x1000 to 0x2000.
  Machine m;
  for (u32 i = 0; i < 16; ++i) m.ram.store_word(0x1000 + 4 * i, 0xA0B0C000u + i);
  Program p;
  p.li(Reg::s0, 0x1000);
  p.li(Reg::s1, 0x2000);
  p.li(Reg::t0, 16);
  auto loop = p.make_label();
  p.bind(loop);
  p.lw(Reg::t1, Reg::s0, 0);
  p.sw(Reg::t1, Reg::s1, 0);
  p.addi(Reg::s0, Reg::s0, 4);
  p.addi(Reg::s1, Reg::s1, 4);
  p.addi(Reg::t0, Reg::t0, -1);
  p.bne(Reg::t0, Reg::x0, loop);
  p.ecall();
  m.run(p);
  for (u32 i = 0; i < 16; ++i) {
    EXPECT_EQ(m.ram.load_word(0x2000 + 4 * i), 0xA0B0C000u + i);
  }
}

}  // namespace
}  // namespace poe::rv
