// Allocation-count regression harness (ctest label: alloc).
//
// The warmed-up transcipher hot path is contractually allocation-free: after
// one block has flowed through a server, every later block must be served
// entirely from BufferPool slab reuse — zero pool misses, and a flat
// peak-outstanding watermark (no new slabs minted, no growth in concurrently
// live slabs). These tests pin that contract per kernel backend and for the
// packed service path, so a future change that sneaks a fresh allocation or
// a ciphertext copy into the diagonal loop fails CI here rather than
// showing up as a quiet throughput regression.
//
// Methodology: each test builds its OWN ExecContext (own pool, own
// counters), runs warm-up blocks to reach steady state, snapshots
// {pool misses, peak outstanding slabs}, runs 16 more blocks, and asserts
// both numbers are unchanged. Pool HITS are expected to grow — traffic
// still flows through the pool; it just never misses.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "fhe/bgv.hpp"
#include "fhe/encoding.hpp"
#include "hhe/batched_server.hpp"
#include "hhe/protocol.hpp"
#include "hhe/simd_batch.hpp"
#include "kernels/backend.hpp"
#include "pasta/cipher.hpp"
#include "service/service.hpp"

namespace poe {
namespace {

using u64 = std::uint64_t;

std::vector<u64> random_msg(Xoshiro256& rng, u64 p, std::size_t len) {
  std::vector<u64> msg(len);
  for (auto& m : msg) m = rng.below(p);
  return msg;
}

struct PoolMark {
  u64 misses;
  u64 peak;
};

PoolMark mark(const ExecContext& exec) {
  return {exec.pool().misses(), exec.pool().peak_outstanding()};
}

// ------------------------------------------------- batched server, per backend

TEST(AllocRegression, BatchedServerSteadyStateIsAllocationFree) {
  const hhe::HheConfig config = hhe::HheConfig::batched_test();
  for (const kernels::Backend* backend : kernels::available_backends()) {
    SCOPED_TRACE(backend->name());
    ExecContext exec(nullptr, backend);
    fhe::Bgv bgv(config.bgv, &exec);
    fhe::BatchEncoder encoder(config.bgv.n, config.bgv.t);
    fhe::SlotLayout layout(config.bgv.n, config.bgv.t);

    Xoshiro256 rng(0xA110C);
    const auto key = pasta::PastaCipher::random_key(config.pasta, rng);
    pasta::PastaCipher sw(config.pasta, key);
    hhe::BatchedHheServer server(
        config, bgv,
        hhe::encrypt_key_batched(config, bgv, encoder, layout, key));

    const auto msg = random_msg(rng, config.pasta.p, config.pasta.t);
    const u64 nonce = 42;
    auto block = [&](u64 counter) {
      server.transcipher_block(sw.encrypt(msg, nonce), nonce, counter);
    };

    // Two warm-up blocks: the first faults every slab size class in, the
    // second proves the shapes repeat before we start measuring.
    block(0);
    block(1);
    const PoolMark warm = mark(exec);
    for (u64 counter = 2; counter < 18; ++counter) block(counter);
    const PoolMark after = mark(exec);

    EXPECT_EQ(after.misses, warm.misses)
        << "a warmed-up block minted a new slab";
    EXPECT_EQ(after.peak, warm.peak)
        << "a warmed-up block grew the set of concurrently live slabs";
    EXPECT_GT(exec.pool().hits(), warm.misses)
        << "sanity: steady-state traffic should flow through the pool";
  }
}

// ------------------------------------------------ SIMD batch engine, per backend

TEST(AllocRegression, SimdBatchEngineSteadyStateIsAllocationFree) {
  const hhe::HheConfig config = hhe::HheConfig::batched_test();
  for (const kernels::Backend* backend : kernels::available_backends()) {
    SCOPED_TRACE(backend->name());
    ExecContext exec(nullptr, backend);
    fhe::Bgv bgv(config.bgv, &exec);
    fhe::BatchEncoder encoder(config.bgv.n, config.bgv.t);
    fhe::SlotLayout layout(config.bgv.n, config.bgv.t);

    Xoshiro256 rng(0x51D);
    const auto key = pasta::PastaCipher::random_key(config.pasta, rng);
    pasta::PastaCipher sw(config.pasta, key);
    const auto key_ct =
        hhe::encrypt_key_batched(config, bgv, encoder, layout, key);
    hhe::SimdBatchEngine engine(
        config, bgv, hhe::SimdBatchEngine::make_shared_rotation_keys(config, bgv));

    const auto msg = random_msg(rng, config.pasta.p, config.pasta.t);
    u64 counter = 0;
    auto evaluate_batch = [&](std::size_t blocks) {
      std::vector<hhe::SimdBlockRequest> reqs;
      for (std::size_t i = 0; i < blocks; ++i) {
        reqs.push_back({.nonce = 7,
                        .counter = counter,
                        .symmetric_ct = sw.encrypt(msg, 7)});
        ++counter;
      }
      engine.evaluate(key_ct, engine.prepare(reqs));
    };

    evaluate_batch(4);  // warm-up batch
    const PoolMark warm = mark(exec);
    for (int b = 0; b < 4; ++b) evaluate_batch(4);  // 16 measured blocks
    const PoolMark after = mark(exec);

    EXPECT_EQ(after.misses, warm.misses)
        << "a warmed-up SIMD batch minted a new slab";
    EXPECT_EQ(after.peak, warm.peak)
        << "a warmed-up SIMD batch grew the set of concurrently live slabs";
  }
}

// ------------------------------------------------------- packed service path

struct ServiceClient {
  u64 id;
  std::vector<u64> key;
  pasta::PastaCipher cipher;

  ServiceClient(const hhe::HheConfig& config, u64 client_id, u64 seed)
      : id(client_id),
        key([&] {
          Xoshiro256 rng(seed);
          return pasta::PastaCipher::random_key(config.pasta, rng);
        }()),
        cipher(config.pasta, key) {}
};

// Drive the cross-tenant packed service to steady state, then assert the
// pool stopped minting slabs. `pipelined=false` keeps prepare/evaluate on
// one thread so the watermark is deterministic; the pipelined variant below
// checks the miss counter only (stage overlap makes transient liveness —
// and thus the peak — timing-dependent).
TEST(AllocRegression, PackedServiceSteadyStateIsAllocationFree) {
  const hhe::HheConfig config = hhe::HheConfig::batched_test();
  ExecContext exec;
  fhe::Bgv bgv(config.bgv, &exec);
  fhe::BatchEncoder encoder(config.bgv.n, config.bgv.t);
  fhe::SlotLayout layout(config.bgv.n, config.bgv.t);

  service::ServiceConfig cfg;
  cfg.pipelined = false;
  cfg.cross_tenant_packing = true;
  service::TranscipherService service(config, bgv, cfg);

  std::vector<ServiceClient> clients;
  for (u64 c = 0; c < 2; ++c) {
    clients.emplace_back(config, c, 0xBEEF + c);
    service.open_session(
        clients.back().id,
        hhe::encrypt_key_batched(config, bgv, encoder, layout,
                                 clients.back().key));
  }

  Xoshiro256 rng(99);
  const auto msg = random_msg(rng, config.pasta.p, config.pasta.t);
  u64 nonce = 1;
  auto process_blocks = [&](std::size_t blocks) {
    std::vector<service::TranscipherRequest> reqs;
    for (std::size_t i = 0; i < blocks; ++i) {
      const auto& cl = clients[i % clients.size()];
      reqs.push_back({.client_id = cl.id,
                      .nonce = nonce,
                      .symmetric_ct = cl.cipher.encrypt(msg, nonce)});
      ++nonce;
    }
    const auto results = service.process(reqs);
    for (const auto& r : results) {
      ASSERT_TRUE(r.ok()) << r.error;
    }
  };

  process_blocks(8);  // warm-up: faults in merge, prepare and evaluate slabs
  const PoolMark warm = mark(exec);
  process_blocks(8);
  process_blocks(8);
  const PoolMark after = mark(exec);

  EXPECT_EQ(after.misses, warm.misses)
      << "a warmed-up packed batch minted a new slab";
  EXPECT_EQ(after.peak, warm.peak)
      << "a warmed-up packed batch grew the set of concurrently live slabs";
}

TEST(AllocRegression, PipelinedServiceSteadyStateHasZeroPoolMisses) {
  const hhe::HheConfig config = hhe::HheConfig::batched_test();
  ExecContext exec;
  fhe::Bgv bgv(config.bgv, &exec);
  fhe::BatchEncoder encoder(config.bgv.n, config.bgv.t);
  fhe::SlotLayout layout(config.bgv.n, config.bgv.t);

  service::ServiceConfig cfg;
  cfg.pipelined = true;
  cfg.cross_tenant_packing = true;
  service::TranscipherService service(config, bgv, cfg);

  ServiceClient client(config, 0, 0xF00D);
  service.open_session(
      client.id,
      hhe::encrypt_key_batched(config, bgv, encoder, layout, client.key));

  Xoshiro256 rng(7);
  const auto msg = random_msg(rng, config.pasta.p, config.pasta.t);
  u64 nonce = 1;
  auto process_blocks = [&](std::size_t blocks) {
    std::vector<service::TranscipherRequest> reqs;
    for (std::size_t i = 0; i < blocks; ++i) {
      reqs.push_back({.client_id = client.id,
                      .nonce = nonce,
                      .symmetric_ct = client.cipher.encrypt(msg, nonce)});
      ++nonce;
    }
    const auto results = service.process(reqs);
    for (const auto& r : results) {
      ASSERT_TRUE(r.ok()) << r.error;
    }
  };

  process_blocks(8);
  const u64 warm_misses = exec.pool().misses();
  process_blocks(8);
  process_blocks(8);
  EXPECT_EQ(exec.pool().misses(), warm_misses)
      << "the pipelined serving loop minted a new slab after warm-up";
}

// -------------------------------------------- scratch bank under concurrency

// Two workers hammer rotate_hoisted_into on ONE evaluator concurrently.
// The per-Bgv scratch bank must lease each of them a DISTINCT HoistScratch
// (the debug build asserts non-aliasing inside ScratchLease); the outputs
// must stay bit-identical to the single-threaded allocating reference.
TEST(AllocRegression, ConcurrentHoistedRotationsUseDistinctScratch) {
  const hhe::HheConfig config = hhe::HheConfig::test();
  ExecContext exec;
  fhe::Bgv bgv(config.bgv, &exec);
  fhe::BatchEncoder encoder(config.bgv.n, config.bgv.t);
  fhe::SlotLayout layout(config.bgv.n, config.bgv.t);

  const std::vector<long> steps{1, 3};
  const fhe::GaloisKeys keys = bgv.make_rotation_keys(steps);

  Xoshiro256 rng(2024);
  std::vector<u64> logical(config.bgv.n);
  for (auto& x : logical) x = rng.below(config.bgv.t);
  const fhe::Ciphertext ct = bgv.encrypt(encoder.encode(layout.to_slots(logical)));
  const fhe::HoistedCt hoisted = bgv.hoist(ct);

  // Allocating reference per step (rotate_hoisted_into is bit-identical to
  // rotate_hoisted by construction; see the differential suite).
  std::vector<fhe::Ciphertext> want;
  for (const long step : steps) {
    want.push_back(bgv.rotate_hoisted(hoisted, step, keys));
  }

  auto bits_equal = [](const fhe::Ciphertext& a, const fhe::Ciphertext& b) {
    if (a.level != b.level || a.parts.size() != b.parts.size()) return false;
    for (std::size_t p = 0; p < a.parts.size(); ++p) {
      if (a.parts[p].is_ntt() != b.parts[p].is_ntt()) return false;
      for (std::size_t i = 0; i < a.level; ++i) {
        const auto ra = a.parts[p].rns(i);
        const auto rb = b.parts[p].rns(i);
        if (!std::equal(ra.begin(), ra.end(), rb.begin())) return false;
      }
    }
    return true;
  };

  constexpr int kIters = 32;
  std::atomic<int> mismatches{0};
  auto worker = [&](std::size_t offset) {
    fhe::Ciphertext out;  // reused across iterations, thread-private
    for (int it = 0; it < kIters; ++it) {
      const std::size_t which = (offset + static_cast<std::size_t>(it)) % steps.size();
      bgv.rotate_hoisted_into(hoisted, steps[which], keys, out);
      if (!bits_equal(out, want[which])) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "concurrent hoisted rotations corrupted each other's scratch";
}

}  // namespace
}  // namespace poe
