#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "common/rng.hpp"
#include "fhe/serialize.hpp"
#include "hhe/batched_server.hpp"
#include "service/pipeline.hpp"
#include "service/service.hpp"

namespace poe::service {
namespace {

using u64 = std::uint64_t;

// The BGV evaluator and rotation keys dominate setup time, so every test
// shares one stack (the service's shared-keys constructor exists for exactly
// this: keys depend on the BGV secret key only, not on any client).
struct Stack {
  hhe::HheConfig config = hhe::HheConfig::batched_test();
  fhe::Bgv bgv{config.bgv};
  fhe::BatchEncoder encoder{config.bgv.n, config.bgv.t};
  fhe::SlotLayout layout{config.bgv.n, config.bgv.t};
  std::shared_ptr<const fhe::GaloisKeys> keys =
      hhe::SimdBatchEngine::make_shared_rotation_keys(config, bgv);
};

Stack& stack() {
  static Stack s;
  return s;
}

TranscipherService make_service(ServiceConfig cfg = {}) {
  return TranscipherService(stack().config, stack().bgv, cfg, stack().keys);
}

struct TestClient {
  u64 id;
  std::vector<u64> key;
  pasta::PastaCipher cipher;

  TestClient(u64 client_id, u64 seed)
      : id(client_id),
        key([&] {
          Xoshiro256 rng(seed);
          return pasta::PastaCipher::random_key(stack().config.pasta, rng);
        }()),
        cipher(stack().config.pasta, key) {}

  fhe::Ciphertext encrypted_key() const {
    return hhe::encrypt_key_batched(stack().config, stack().bgv,
                                    stack().encoder, stack().layout, key);
  }

  TranscipherRequest request(u64 nonce, const std::vector<u64>& msg) const {
    return TranscipherRequest{.client_id = id,
                              .nonce = nonce,
                              .symmetric_ct = cipher.encrypt(msg, nonce)};
  }
};

std::vector<u64> random_msg(std::size_t len, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u64> msg(len);
  for (auto& m : msg) m = rng.below(stack().config.pasta.p);
  return msg;
}

std::vector<u64> decode_all(const TranscipherResult& result) {
  std::vector<u64> out;
  for (const auto& block : result.blocks) {
    const auto vals =
        TranscipherService::decode_block(stack().config, stack().bgv, block);
    out.insert(out.end(), vals.begin(), vals.end());
  }
  return out;
}

// The serialized bytes of every block's batch ciphertext, in request order —
// the strongest "same output" comparison two runs can be held to.
std::vector<std::vector<std::uint8_t>> wire_blocks(
    const TranscipherResult& result) {
  std::vector<std::vector<std::uint8_t>> out;
  for (const auto& block : result.blocks) {
    out.push_back(fhe::serialize_ciphertext(stack().bgv.rns(), *block.ct));
  }
  return out;
}

TEST(BoundedQueue, OrderCloseAndStallAccounting) {
  BoundedQueue<int> q(1);
  ASSERT_EQ(q.push(1), PushStatus::kOk);
  std::thread producer([&] { EXPECT_EQ(q.push(2), PushStatus::kOk); });
  // Give the producer time to hit the full queue before draining it, so the
  // push-stall is recorded deterministically (the sleeping main thread
  // yields the CPU to the producer, which then blocks on the full queue).
  while (q.push_stalls() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(q.pop(), 1);  // unblocks the producer
  producer.join();
  EXPECT_EQ(q.pop(), 2);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_EQ(q.push(3), PushStatus::kClosed);  // closed queue refuses work
  EXPECT_EQ(q.push_stalls(), 1u);
  EXPECT_EQ(q.max_depth(), 1u);
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
  // Shutdown race regression: a producer blocked in push() on a full queue
  // must wake with kClosed when the consumer closes the queue, instead of
  // sleeping forever on a condition nobody will ever signal.
  BoundedQueue<int> q(1);
  ASSERT_EQ(q.push(1), PushStatus::kOk);
  PushStatus blocked_result = PushStatus::kOk;
  std::thread producer([&] { blocked_result = q.push(2); });
  while (q.push_stalls() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  q.close();  // producer is parked in push(); this must wake it
  producer.join();
  EXPECT_EQ(blocked_result, PushStatus::kClosed);
  // The item enqueued before the close still drains.
  EXPECT_EQ(q.pop(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, PushForTimesOutWhenSaturated) {
  BoundedQueue<int> q(1);
  ASSERT_EQ(q.push(1), PushStatus::kOk);
  // Saturated queue + bounded wait: the value is refused, not enqueued.
  EXPECT_EQ(q.push_for(2, std::chrono::milliseconds(5)),
            PushStatus::kTimedOut);
  EXPECT_EQ(q.pop(), 1);
  // With space available the bounded push behaves like push().
  EXPECT_EQ(q.push_for(3, std::chrono::milliseconds(5)), PushStatus::kOk);
  EXPECT_EQ(q.pop(), 3);
  q.close();
  EXPECT_EQ(q.push_for(4, std::chrono::milliseconds(5)), PushStatus::kClosed);
}

TEST(TranscipherServiceTest, RoundTripMultiBlockMessage) {
  auto service = make_service();
  TestClient client(1, 11);
  service.open_session(client.id, client.encrypted_key());
  ASSERT_TRUE(service.has_session(client.id));

  const auto msg = random_msg(2 * stack().config.pasta.t + 3, 12);
  const std::vector<TranscipherRequest> reqs{client.request(77, msg)};
  ServiceReport report;
  const auto results = service.process(reqs, &report);

  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok());
  ASSERT_EQ(results[0].blocks.size(), 3u);
  EXPECT_EQ(decode_all(results[0]), msg);

  EXPECT_EQ(report.requests, 1u);
  EXPECT_EQ(report.blocks, 3u);
  EXPECT_EQ(report.batches, 1u);  // one client: blocks coalesce
  EXPECT_GT(report.avg_batch_occupancy, 0.0);
  EXPECT_LE(report.avg_batch_occupancy, 1.0);
  EXPECT_GT(report.total_s, 0.0);
  EXPECT_GT(report.blocks_per_s, 0.0);
  EXPECT_GT(report.min_noise_budget_bits, 0.0);
  ASSERT_EQ(report.request_latency_s.size(), 1u);
  EXPECT_GT(report.request_latency_s[0], 0.0);
  EXPECT_LE(report.request_latency_s[0], report.total_s);
  EXPECT_GT(report.exec_ops.ct_ct_mul, 0u);
  EXPECT_GT(report.exec_ops.ntt_forward, 0u);
  // Fault-free run: every robustness counter is quiet.
  EXPECT_EQ(report.faults.ok, 1u);
  EXPECT_EQ(report.faults.retries, 0u);
  EXPECT_EQ(report.faults.injected, 0u);
}

TEST(TranscipherServiceTest, CoalescesRequestsOfOneClient) {
  auto service = make_service();
  TestClient client(2, 21);
  service.open_session(client.id, client.encrypted_key());

  const auto msg_a = random_msg(stack().config.pasta.t, 22);
  const auto msg_b = random_msg(stack().config.pasta.t + 1, 23);
  const std::vector<TranscipherRequest> reqs{client.request(1, msg_a),
                                             client.request(2, msg_b)};
  ServiceReport report;
  const auto results = service.process(reqs, &report);

  EXPECT_EQ(report.blocks, 3u);
  EXPECT_EQ(report.batches, 1u);  // both requests share one SIMD batch
  EXPECT_EQ(decode_all(results[0]), msg_a);
  EXPECT_EQ(decode_all(results[1]), msg_b);
}

TEST(TranscipherServiceTest, ClientsShareOnePackedBatchWithIsolation) {
  auto service = make_service();
  TestClient alice(3, 31), bob(4, 41);
  service.open_session(alice.id, alice.encrypted_key());
  service.open_session(bob.id, bob.encrypted_key());

  const auto msg_a = random_msg(5, 32);
  const auto msg_b = random_msg(7, 42);
  const std::vector<TranscipherRequest> reqs{alice.request(9, msg_a),
                                             bob.request(9, msg_b)};
  ServiceReport report;
  const auto results = service.process(reqs, &report);

  // Different clients, distinct PASTA keys, ONE batch: each tenant's key is
  // masked into its own tile of the merged key ciphertext.
  EXPECT_EQ(report.batches, 1u);
  EXPECT_EQ(report.cross_tenant_batches, 1u);
  EXPECT_EQ(decode_all(results[0]), msg_a);
  EXPECT_EQ(decode_all(results[1]), msg_b);

  // Isolation boundary: the ciphertext handed to alice is a masked
  // extraction — bob's tile (tile 1 of the shared batch) decodes to all
  // zeros from alice's ciphertext, and vice versa.
  const std::size_t t = stack().config.pasta.t;
  const std::vector<u64> zeros(t, 0);
  EXPECT_EQ(hhe::SimdBatchEngine::decode_block(stack().config, stack().bgv,
                                               *results[0].blocks[0].ct,
                                               /*tile=*/1, t),
            zeros);
  EXPECT_EQ(hhe::SimdBatchEngine::decode_block(stack().config, stack().bgv,
                                               *results[1].blocks[0].ct,
                                               /*tile=*/0, t),
            zeros);
}

TEST(TranscipherServiceTest, PackingOffRestoresPerClientBatches) {
  // The legacy per-client path survives as an explicit config, serving as
  // the reference side of the packed-vs-unpacked differential tests.
  auto service = make_service(ServiceConfig{.cross_tenant_packing = false});
  TestClient alice(30, 33), bob(31, 43);
  service.open_session(alice.id, alice.encrypted_key());
  service.open_session(bob.id, bob.encrypted_key());

  const auto msg_a = random_msg(5, 34);
  const auto msg_b = random_msg(7, 44);
  ServiceReport report;
  const auto results = service.process(
      std::vector{alice.request(9, msg_a), bob.request(9, msg_b)}, &report);

  EXPECT_EQ(report.batches, 2u);  // different keys, never share a batch
  EXPECT_EQ(report.cross_tenant_batches, 0u);
  EXPECT_EQ(decode_all(results[0]), msg_a);
  EXPECT_EQ(decode_all(results[1]), msg_b);
}

TEST(TranscipherServiceTest, PackedFlushCausesReported) {
  // Two tiles per batch, three blocks from two interleaved tenants: the
  // first batch flushes FULL, the leftover block flushes at DRAIN.
  auto service = make_service(ServiceConfig{.max_batch_blocks = 2});
  TestClient alice(32, 35), bob(33, 45);
  service.open_session(alice.id, alice.encrypted_key());
  service.open_session(bob.id, bob.encrypted_key());

  const auto msg_1 = random_msg(3, 36);   // 1 block
  const auto msg_2 = random_msg(4, 46);   // 1 block
  const auto msg_3 = random_msg(5, 47);   // 1 block
  ServiceReport report;
  const auto results = service.process(
      std::vector{alice.request(1, msg_1), bob.request(1, msg_2),
                  alice.request(2, msg_3)},
      &report);

  EXPECT_EQ(report.batches, 2u);
  EXPECT_EQ(report.full_flushes, 1u);
  EXPECT_EQ(report.drain_flushes, 1u);
  EXPECT_EQ(report.deadline_flushes, 0u);  // no deadline configured
  EXPECT_EQ(report.cross_tenant_batches, 1u);  // the full alice+bob batch
  EXPECT_DOUBLE_EQ(report.avg_batch_occupancy, 0.75);  // (2/2 + 1/2) / 2
  EXPECT_GE(report.max_batch_wait_s, 0.0);
  EXPECT_EQ(decode_all(results[0]), msg_1);
  EXPECT_EQ(decode_all(results[1]), msg_2);
  EXPECT_EQ(decode_all(results[2]), msg_3);
}

TEST(TranscipherServiceTest, InterleavedTenantNonceReplayIsPerTenant) {
  // Replay tracking must be per-TENANT, not per-batch: two tenants may use
  // the same nonce value in one packed batch, and a replay is detected for
  // the right tenant regardless of interleaved submission order.
  auto service = make_service();
  TestClient alice(34, 37), bob(35, 48);
  service.open_session(alice.id, alice.encrypted_key());
  service.open_session(bob.id, bob.encrypted_key());
  const auto msg = random_msg(3, 38);

  // Wave 1, interleaved: alice(5), bob(5), alice(6), bob(7). The shared
  // nonce value 5 is fine — the windows are independent.
  ServiceReport rep1;
  const auto wave1 = service.process(
      std::vector{alice.request(5, msg), bob.request(5, msg),
                  alice.request(6, msg), bob.request(7, msg)},
      &rep1);
  for (const auto& res : wave1) ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_EQ(rep1.batches, 1u);  // all four requests packed together

  // Wave 2, interleaved the other way: bob replays alice's nonce 6 for the
  // FIRST time (fresh for bob -> ok), alice replays her own 6 (-> replay),
  // bob replays his own 5 (-> replay), alice uses fresh 8 (-> ok).
  ServiceReport rep2;
  const auto wave2 = service.process(
      std::vector{bob.request(6, msg), alice.request(6, msg),
                  bob.request(5, msg), alice.request(8, msg)},
      &rep2);
  ASSERT_TRUE(wave2[0].ok()) << wave2[0].error;
  EXPECT_EQ(wave2[1].status, RequestStatus::kNonceReplay);
  EXPECT_EQ(wave2[2].status, RequestStatus::kNonceReplay);
  ASSERT_TRUE(wave2[3].ok()) << wave2[3].error;
  EXPECT_EQ(decode_all(wave2[0]), msg);
  EXPECT_EQ(decode_all(wave2[3]), msg);
  EXPECT_EQ(rep2.faults.rejected, 2u);
  EXPECT_EQ(rep2.faults.ok, 2u);
}

TEST(TranscipherServiceTest, MaxBatchBlocksSplitsBatches) {
  auto service = make_service(ServiceConfig{.max_batch_blocks = 2});
  EXPECT_EQ(service.batch_capacity(), 2u);
  TestClient client(5, 51);
  service.open_session(client.id, client.encrypted_key());

  const auto msg = random_msg(4 * stack().config.pasta.t, 52);
  ServiceReport report;
  const auto results =
      service.process(std::vector{client.request(3, msg)}, &report);

  EXPECT_EQ(report.blocks, 4u);
  EXPECT_EQ(report.batches, 2u);
  EXPECT_DOUBLE_EQ(report.avg_batch_occupancy, 1.0);
  EXPECT_EQ(decode_all(results[0]), msg);
}

TEST(TranscipherServiceTest, LruEvictionRespectsRecency) {
  auto service = make_service(ServiceConfig{.max_sessions = 2});
  TestClient a(10, 61), b(11, 62), c(12, 63);
  service.open_session(a.id, a.encrypted_key());
  service.open_session(b.id, b.encrypted_key());
  // Re-opening A refreshes its recency: B becomes the LRU victim.
  service.open_session(a.id, a.encrypted_key());
  service.open_session(c.id, c.encrypted_key());

  EXPECT_EQ(service.session_count(), 2u);
  EXPECT_TRUE(service.has_session(a.id));
  EXPECT_FALSE(service.has_session(b.id));
  EXPECT_TRUE(service.has_session(c.id));
  EXPECT_EQ(service.evictions(), 1u);
}

TEST(TranscipherServiceTest, EvictedClientReOnboardsIdentically) {
  // LRU eviction must be invisible to the evicted client after it
  // re-uploads its key: the transciphered output is bit-identical.
  auto service = make_service(ServiceConfig{.max_sessions = 2});
  TestClient a(13, 64), b(14, 65), c(15, 66);
  // One fixed key upload reused for both onboardings (BGV encryption is
  // randomized, so a fresh encrypt would yield different — still correct —
  // ciphertext bytes; the wire round-trip pins the upload exactly).
  const auto key_wire =
      fhe::serialize_ciphertext(stack().bgv.rns(), a.encrypted_key());

  ASSERT_TRUE(service.open_session_wire(a.id, key_wire));
  const auto msg = random_msg(stack().config.pasta.t + 5, 67);
  const auto first = service.process(std::vector{a.request(100, msg)});
  ASSERT_TRUE(first[0].ok());
  EXPECT_EQ(decode_all(first[0]), msg);
  const auto first_wire = wire_blocks(first[0]);

  service.open_session(b.id, b.encrypted_key());
  service.open_session(c.id, c.encrypted_key());
  ASSERT_FALSE(service.has_session(a.id));  // A was evicted (with its
                                            // nonce-replay window)

  std::string error;
  ASSERT_TRUE(service.open_session_wire(a.id, key_wire, &error)) << error;
  // Same nonce as before the eviction: the fresh session accepts it, and
  // the deterministic evaluation reproduces the exact output bytes.
  const auto second = service.process(std::vector{a.request(100, msg)});
  ASSERT_TRUE(second[0].ok());
  EXPECT_EQ(decode_all(second[0]), msg);
  EXPECT_EQ(wire_blocks(second[0]), first_wire);
}

TEST(TranscipherServiceTest, UnknownClientAndEmptyRequestRejected) {
  auto service = make_service();
  const std::vector<TranscipherRequest> unknown{
      TranscipherRequest{.client_id = 999, .nonce = 1, .symmetric_ct = {1}}};
  ServiceReport report;
  auto results = service.process(unknown, &report);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RequestStatus::kUnknownSession);
  EXPECT_FALSE(results[0].error.empty());
  EXPECT_TRUE(results[0].blocks.empty());
  EXPECT_EQ(report.faults.rejected, 1u);
  EXPECT_EQ(report.batches, 0u);  // rejected before any evaluation

  TestClient client(6, 71);
  service.open_session(client.id, client.encrypted_key());
  const std::vector<TranscipherRequest> empty{
      TranscipherRequest{.client_id = client.id, .nonce = 2,
                         .symmetric_ct = {}}};
  results = service.process(empty);
  EXPECT_EQ(results[0].status, RequestStatus::kInvalidRequest);

  const std::vector<TranscipherRequest> oversized{TranscipherRequest{
      .client_id = client.id, .nonce = 3,
      .symmetric_ct = std::vector<u64>(9, 1)}};
  auto small = make_service(ServiceConfig{.max_request_elems = 8});
  small.open_session(client.id, client.encrypted_key());
  results = small.process(oversized);
  EXPECT_EQ(results[0].status, RequestStatus::kInvalidRequest);
}

TEST(TranscipherServiceTest, NonceReplayRejectedWithoutHarmingBatchmates) {
  auto service = make_service();
  TestClient client(7, 81);
  service.open_session(client.id, client.encrypted_key());

  const auto msg = random_msg(3, 82);
  const auto results = service.process(std::vector{client.request(55, msg)});
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(decode_all(results[0]), msg);

  // Same nonce again, bundled with a healthy request: the replay is
  // rejected during admission and the healthy request is untouched.
  const auto msg2 = random_msg(4, 83);
  const std::vector<TranscipherRequest> reqs{client.request(55, msg),
                                             client.request(56, msg2)};
  ServiceReport report;
  const auto mixed = service.process(reqs, &report);
  EXPECT_EQ(mixed[0].status, RequestStatus::kNonceReplay);
  ASSERT_TRUE(mixed[1].ok());
  EXPECT_EQ(decode_all(mixed[1]), msg2);
  EXPECT_EQ(report.faults.rejected, 1u);
  EXPECT_EQ(report.faults.ok, 1u);
}

TEST(TranscipherServiceTest, NonceWindowSlidesOldReplaysOut) {
  // The replay window is bounded: once max_tracked_nonces fresh nonces have
  // passed, the oldest nonce falls out of the window and is accepted again
  // (the documented trade-off of a bounded window, pinned here).
  auto service = make_service(
      ServiceConfig{.pipelined = false, .max_tracked_nonces = 3});
  TestClient client(16, 84);
  service.open_session(client.id, client.encrypted_key());
  const auto msg = random_msg(2, 85);

  for (const u64 nonce : {1, 2, 3}) {
    ASSERT_TRUE(service.process(std::vector{client.request(nonce, msg)})[0]
                    .ok());
  }
  // Window now {1,2,3}: nonce 1 is still a replay.
  auto replay = service.process(std::vector{client.request(1, msg)});
  EXPECT_EQ(replay[0].status, RequestStatus::kNonceReplay);
  // Nonce 4 slides nonce 1 out of the window...
  ASSERT_TRUE(service.process(std::vector{client.request(4, msg)})[0].ok());
  // ...so a second presentation of nonce 1 is admitted.
  auto slid = service.process(std::vector{client.request(1, msg)});
  EXPECT_TRUE(slid[0].ok());
  EXPECT_EQ(decode_all(slid[0]), msg);
}

TEST(TranscipherServiceTest, AdmissionLoadShedIsTypedAndRetriable) {
  auto service = make_service(
      ServiceConfig{.pipelined = false, .max_pending_blocks = 2});
  TestClient client(17, 86);
  service.open_session(client.id, client.encrypted_key());
  const auto msg = random_msg(2, 87);  // 1 block per request

  const std::vector<TranscipherRequest> reqs{client.request(10, msg),
                                             client.request(11, msg),
                                             client.request(12, msg)};
  ServiceReport report;
  const auto results = service.process(reqs, &report);
  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[1].ok());
  EXPECT_EQ(results[2].status, RequestStatus::kOverloaded);
  EXPECT_EQ(report.faults.shed, 1u);
  EXPECT_EQ(report.blocks, 2u);  // the shed block was never admitted

  // Shedding happens before the nonce is recorded: the same request is
  // accepted verbatim once there is capacity again.
  const auto retry = service.process(std::vector{client.request(12, msg)});
  ASSERT_TRUE(retry[0].ok());
  EXPECT_EQ(decode_all(retry[0]), msg);
}

TEST(TranscipherServiceTest, ReportAccountingConsistent) {
  // One mixed multi-client call: the terminal-status buckets must
  // partition the requests, and every other counter must stay consistent
  // with what actually ran.
  auto service = make_service(
      ServiceConfig{.pipelined = false, .max_pending_blocks = 3});
  TestClient alice(20, 88), bob(21, 89), carol(22, 90);
  service.open_session(alice.id, alice.encrypted_key());
  service.open_session(bob.id, bob.encrypted_key());
  service.open_session(carol.id, carol.encrypted_key());

  const auto msg_a = random_msg(3, 91);
  const auto msg_b = random_msg(4, 92);
  const auto msg_c = random_msg(5, 93);
  const std::vector<TranscipherRequest> reqs{
      alice.request(1, msg_a),  // ok
      alice.request(2, msg_a),  // ok
      bob.request(1, msg_b),    // ok
      TranscipherRequest{.client_id = 999, .nonce = 1,
                         .symmetric_ct = {1}},           // unknown session
      TranscipherRequest{.client_id = alice.id, .nonce = 3,
                         .symmetric_ct = {}},            // invalid (empty)
      alice.request(1, msg_a),  // nonce replay (of request 0)
      carol.request(1, msg_c),  // shed: 4th block > max_pending_blocks
  };
  ServiceReport rep;
  const auto results = service.process(reqs, &rep);

  EXPECT_EQ(results[0].status, RequestStatus::kOk);
  EXPECT_EQ(results[1].status, RequestStatus::kOk);
  EXPECT_EQ(results[2].status, RequestStatus::kOk);
  EXPECT_EQ(results[3].status, RequestStatus::kUnknownSession);
  EXPECT_EQ(results[4].status, RequestStatus::kInvalidRequest);
  EXPECT_EQ(results[5].status, RequestStatus::kNonceReplay);
  EXPECT_EQ(results[6].status, RequestStatus::kOverloaded);

  // The partition invariant.
  EXPECT_EQ(rep.requests, reqs.size());
  EXPECT_EQ(rep.faults.ok + rep.faults.rejected + rep.faults.shed +
                rep.faults.quarantined + rep.faults.timed_out +
                rep.faults.failed,
            rep.requests);
  EXPECT_EQ(rep.faults.ok, 3u);
  EXPECT_EQ(rep.faults.rejected, 3u);
  EXPECT_EQ(rep.faults.shed, 1u);
  EXPECT_EQ(rep.faults.quarantined, 0u);
  EXPECT_EQ(rep.faults.timed_out, 0u);
  EXPECT_EQ(rep.faults.failed, 0u);
  // No faults were injected and nothing needed a retry.
  EXPECT_EQ(rep.faults.retries, 0u);
  EXPECT_EQ(rep.faults.stage_timeouts, 0u);
  EXPECT_EQ(rep.faults.recovered_batches, 0u);
  EXPECT_EQ(rep.faults.injected, 0u);

  // Admitted work: 3 blocks (alice 2, bob 1) packed into ONE shared batch.
  EXPECT_EQ(rep.blocks, 3u);
  EXPECT_EQ(rep.batches, 1u);
  EXPECT_EQ(rep.cross_tenant_batches, 1u);
  EXPECT_EQ(rep.drain_flushes, 1u);  // partial batch flushed at end of call
  EXPECT_GT(rep.prepare_s, 0.0);
  EXPECT_GT(rep.eval_s, 0.0);
  EXPECT_GT(rep.min_noise_budget_bits, 0.0);

  // Latency is recorded exactly for the requests that completed.
  ASSERT_EQ(rep.request_latency_s.size(), reqs.size());
  for (std::size_t r = 0; r < reqs.size(); ++r) {
    if (results[r].ok()) {
      EXPECT_GT(rep.request_latency_s[r], 0.0) << "request " << r;
      EXPECT_LE(rep.request_latency_s[r], rep.total_s);
    } else {
      EXPECT_EQ(rep.request_latency_s[r], 0.0) << "request " << r;
      EXPECT_TRUE(results[r].blocks.empty());
      EXPECT_FALSE(results[r].error.empty());
    }
  }
  EXPECT_EQ(decode_all(results[0]), msg_a);
  EXPECT_EQ(decode_all(results[1]), msg_a);
  EXPECT_EQ(decode_all(results[2]), msg_b);
}

TEST(TranscipherServiceTest, OpenSessionWireRejectsHostileBytes) {
  auto service = make_service();
  TestClient client(23, 94);
  const auto wire =
      fhe::serialize_ciphertext(stack().bgv.rns(), client.encrypted_key());

  // Truncation and header corruption must be rejected without a session.
  std::string error;
  EXPECT_FALSE(service.open_session_wire(
      client.id, std::span(wire).first(wire.size() / 2), &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(service.has_session(client.id));

  auto bad_magic = wire;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(service.open_session_wire(client.id, bad_magic, &error));
  EXPECT_FALSE(service.has_session(client.id));

  // The untouched upload is accepted and serves requests.
  ASSERT_TRUE(service.open_session_wire(client.id, wire, &error)) << error;
  const auto msg = random_msg(3, 95);
  const auto results = service.process(std::vector{client.request(7, msg)});
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(decode_all(results[0]), msg);
}

TEST(TranscipherServiceTest, PipelinedMatchesUnpipelined) {
  auto pipelined = make_service(ServiceConfig{.pipelined = true});
  auto sequential = make_service(ServiceConfig{.pipelined = false});
  TestClient client(8, 91);
  pipelined.open_session(client.id, client.encrypted_key());
  sequential.open_session(client.id, client.encrypted_key());

  const auto msg = random_msg(stack().config.pasta.t + 2, 92);
  const auto req = std::vector{client.request(4, msg)};
  ServiceReport rep_p, rep_s;
  const auto out_p = pipelined.process(req, &rep_p);
  const auto out_s = sequential.process(req, &rep_s);

  EXPECT_EQ(decode_all(out_p[0]), msg);
  EXPECT_EQ(decode_all(out_s[0]), msg);
  EXPECT_EQ(rep_p.batches, rep_s.batches);
  EXPECT_EQ(rep_p.blocks, rep_s.blocks);
  EXPECT_GE(rep_p.max_queue_depth, 1u);
  EXPECT_EQ(rep_s.max_queue_depth, 0u);  // no queue in the sequential path
}

// ---------------------------------------------------------------------------
// Session-state snapshot/restore: the versioned wire form a shard restart or
// a router rebalance moves around.
// ---------------------------------------------------------------------------

TEST(SessionStateTest, WireRoundTripWithAndWithoutKey) {
  SessionState full;
  full.client_id = 42;
  full.has_key = true;
  full.key_bytes = {1, 2, 3, 4, 5, 6};
  full.nonces = {9, 3, 7};  // order is part of the state (oldest first)
  full.requests_served = 11;
  full.blocks_served = 23;

  const auto bytes = serialize_session_state(full);
  const SessionState back = deserialize_session_state(bytes);
  EXPECT_EQ(back.client_id, full.client_id);
  EXPECT_TRUE(back.has_key);
  EXPECT_EQ(back.key_bytes, full.key_bytes);
  EXPECT_EQ(back.nonces, full.nonces);
  EXPECT_EQ(back.requests_served, full.requests_served);
  EXPECT_EQ(back.blocks_served, full.blocks_served);

  SessionState update;  // the key-less piggyback form
  update.client_id = 43;
  update.nonces = {1};
  const SessionState back2 =
      deserialize_session_state(serialize_session_state(update));
  EXPECT_EQ(back2.client_id, 43u);
  EXPECT_FALSE(back2.has_key);
  EXPECT_TRUE(back2.key_bytes.empty());
  EXPECT_EQ(back2.nonces, update.nonces);
}

TEST(SessionStateTest, WireRejectsDamageTyped) {
  SessionState state;
  state.client_id = 7;
  state.has_key = true;
  state.key_bytes = {10, 20, 30};
  state.nonces = {1, 2};
  const auto good = serialize_session_state(state);

  {  // bad magic
    auto b = good;
    b[0] ^= 0xFF;
    EXPECT_THROW(deserialize_session_state(b), poe::Error);
  }
  {  // unsupported version
    auto b = good;
    b[4] = 0x7F;
    EXPECT_THROW(deserialize_session_state(b), poe::Error);
  }
  {  // unknown flag bits
    auto b = good;
    b[7] = 0x80;
    EXPECT_THROW(deserialize_session_state(b), poe::Error);
  }
  {  // every truncation is caught, none crashes or misparses
    for (std::size_t n = 0; n < good.size(); ++n) {
      EXPECT_THROW(
          deserialize_session_state(std::span(good).first(n)), poe::Error);
    }
  }
  {  // trailing bytes
    auto b = good;
    b.push_back(0);
    EXPECT_THROW(deserialize_session_state(b), poe::Error);
  }
}

TEST(SessionStateTest, ExportImportMovesReplayWindowAndStats) {
  auto source = make_service();
  TestClient client(70, 701);
  source.open_session(client.id, client.encrypted_key());
  const auto msg = random_msg(stack().config.pasta.t + 1, 702);
  ASSERT_TRUE(source.process(std::vector{client.request(1, msg)})[0].ok());

  const auto bytes = serialize_session_state(
      source.export_session(client.id, /*include_key=*/true));

  // A brand-new "process" restores the session purely from the snapshot.
  auto restored = make_service();
  std::string error;
  ASSERT_TRUE(restored.import_session(deserialize_session_state(bytes), &error))
      << error;
  ASSERT_TRUE(restored.has_session(client.id));

  ServiceReport rep;
  const auto results = restored.process(
      std::vector{client.request(1, msg),  // replay from before the move
                  client.request(2, msg)},
      &rep);
  EXPECT_EQ(results[0].status, RequestStatus::kNonceReplay);
  ASSERT_TRUE(results[1].ok()) << results[1].error;
  EXPECT_EQ(decode_all(results[1]), msg);
  // Stats survived the move and kept counting.
  const SessionState after = restored.export_session(client.id, false);
  EXPECT_EQ(after.requests_served, 2u);
  EXPECT_GE(after.blocks_served, 2u);
}

TEST(SessionStateTest, ImportMergesWindowsAndRejectsKeylessStranger) {
  auto service = make_service();
  TestClient client(71, 711);
  service.open_session(client.id, client.encrypted_key());
  const auto msg = random_msg(3, 712);
  ASSERT_TRUE(service.process(std::vector{client.request(5, msg)})[0].ok());

  // A key-less update (what response piggybacks carry) MERGES: the session
  // afterwards rejects both its own nonces and the update's.
  SessionState update;
  update.client_id = client.id;
  update.nonces = {9};
  ASSERT_TRUE(service.import_session(update));
  const auto results = service.process(std::vector{
      client.request(5, msg), client.request(9, msg), client.request(6, msg)});
  EXPECT_EQ(results[0].status, RequestStatus::kNonceReplay);
  EXPECT_EQ(results[1].status, RequestStatus::kNonceReplay);
  ASSERT_TRUE(results[2].ok()) << results[2].error;

  // A key-less state for a client this service has never seen cannot
  // create a session (there is no key to serve with).
  SessionState stranger;
  stranger.client_id = 9999;
  stranger.nonces = {1};
  std::string error;
  EXPECT_FALSE(service.import_session(stranger, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(service.has_session(9999));
}

TEST(SessionStateTest, RaggedMidBatchSnapshotKeepsReplayProtection) {
  // Nonces are recorded at ADMISSION, before the pipeline runs — so a
  // session snapshot taken after a batch failed mid-flight (the "ragged"
  // case: nonce admitted, zero blocks delivered) must still carry that
  // nonce, and a restore must still reject its replay. Losing the in-flight
  // work is fine; reopening the nonce is not.
  ServiceConfig cfg;
  cfg.pipelined = false;
  cfg.max_stage_attempts = 3;
  cfg.backoff_base_s = 1e-4;
  auto source = make_service(cfg);
  TestClient client(72, 721);
  source.open_session(client.id, client.encrypted_key());
  const auto msg = random_msg(stack().config.pasta.t, 722);

  FaultInjector fi;
  fi.arm(FaultSpec{.site = "service.evaluate",
                   .kind = FaultClass::kThrow,
                   .count = 3});  // exhaust every attempt
  stack().bgv.rns().exec().set_fault_injector(&fi);
  const auto failed = source.process(std::vector{client.request(8, msg)});
  stack().bgv.rns().exec().set_fault_injector(nullptr);
  ASSERT_EQ(failed[0].status, RequestStatus::kFailed);
  ASSERT_TRUE(failed[0].blocks.empty());

  const SessionState ragged = source.export_session(client.id, true);
  EXPECT_NE(std::find(ragged.nonces.begin(), ragged.nonces.end(), 8u),
            ragged.nonces.end());
  EXPECT_EQ(ragged.requests_served, 0u);  // nothing was ever delivered

  auto restored = make_service(cfg);
  ASSERT_TRUE(restored.import_session(ragged));
  const auto results = restored.process(
      std::vector{client.request(8, msg), client.request(9, msg)});
  EXPECT_EQ(results[0].status, RequestStatus::kNonceReplay);
  ASSERT_TRUE(results[1].ok()) << results[1].error;
  EXPECT_EQ(decode_all(results[1]), msg);
}

}  // namespace
}  // namespace poe::service
