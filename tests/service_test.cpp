#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "hhe/batched_server.hpp"
#include "service/pipeline.hpp"
#include "service/service.hpp"

namespace poe::service {
namespace {

using u64 = std::uint64_t;

// The BGV evaluator and rotation keys dominate setup time, so every test
// shares one stack (the service's shared-keys constructor exists for exactly
// this: keys depend on the BGV secret key only, not on any client).
struct Stack {
  hhe::HheConfig config = hhe::HheConfig::batched_test();
  fhe::Bgv bgv{config.bgv};
  fhe::BatchEncoder encoder{config.bgv.n, config.bgv.t};
  fhe::SlotLayout layout{config.bgv.n, config.bgv.t};
  std::shared_ptr<const fhe::GaloisKeys> keys =
      hhe::SimdBatchEngine::make_shared_rotation_keys(config, bgv);
};

Stack& stack() {
  static Stack s;
  return s;
}

TranscipherService make_service(ServiceConfig cfg = {}) {
  return TranscipherService(stack().config, stack().bgv, cfg, stack().keys);
}

struct TestClient {
  u64 id;
  std::vector<u64> key;
  pasta::PastaCipher cipher;

  TestClient(u64 client_id, u64 seed)
      : id(client_id),
        key([&] {
          Xoshiro256 rng(seed);
          return pasta::PastaCipher::random_key(stack().config.pasta, rng);
        }()),
        cipher(stack().config.pasta, key) {}

  fhe::Ciphertext encrypted_key() const {
    return hhe::encrypt_key_batched(stack().config, stack().bgv,
                                    stack().encoder, stack().layout, key);
  }

  TranscipherRequest request(u64 nonce, const std::vector<u64>& msg) const {
    return TranscipherRequest{.client_id = id,
                              .nonce = nonce,
                              .symmetric_ct = cipher.encrypt(msg, nonce)};
  }
};

std::vector<u64> random_msg(std::size_t len, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u64> msg(len);
  for (auto& m : msg) m = rng.below(stack().config.pasta.p);
  return msg;
}

std::vector<u64> decode_all(const TranscipherResult& result) {
  std::vector<u64> out;
  for (const auto& block : result.blocks) {
    const auto vals =
        TranscipherService::decode_block(stack().config, stack().bgv, block);
    out.insert(out.end(), vals.begin(), vals.end());
  }
  return out;
}

TEST(BoundedQueue, OrderCloseAndStallAccounting) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&] { EXPECT_TRUE(q.push(2)); });
  // Give the producer time to hit the full queue before draining it, so the
  // push-stall is recorded deterministically (the sleeping main thread
  // yields the CPU to the producer, which then blocks on the full queue).
  while (q.push_stalls() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(q.pop(), 1);  // unblocks the producer
  producer.join();
  EXPECT_EQ(q.pop(), 2);
  q.close();
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.push(3));  // closed queue refuses new work
  EXPECT_EQ(q.push_stalls(), 1u);
  EXPECT_EQ(q.max_depth(), 1u);
}

TEST(TranscipherServiceTest, RoundTripMultiBlockMessage) {
  auto service = make_service();
  TestClient client(1, 11);
  service.open_session(client.id, client.encrypted_key());
  ASSERT_TRUE(service.has_session(client.id));

  const auto msg = random_msg(2 * stack().config.pasta.t + 3, 12);
  const std::vector<TranscipherRequest> reqs{client.request(77, msg)};
  ServiceReport report;
  const auto results = service.process(reqs, &report);

  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(results[0].blocks.size(), 3u);
  EXPECT_EQ(decode_all(results[0]), msg);

  EXPECT_EQ(report.requests, 1u);
  EXPECT_EQ(report.blocks, 3u);
  EXPECT_EQ(report.batches, 1u);  // one client: blocks coalesce
  EXPECT_GT(report.avg_batch_occupancy, 0.0);
  EXPECT_LE(report.avg_batch_occupancy, 1.0);
  EXPECT_GT(report.total_s, 0.0);
  EXPECT_GT(report.blocks_per_s, 0.0);
  EXPECT_GT(report.min_noise_budget_bits, 0.0);
  ASSERT_EQ(report.request_latency_s.size(), 1u);
  EXPECT_GT(report.request_latency_s[0], 0.0);
  EXPECT_LE(report.request_latency_s[0], report.total_s);
  EXPECT_GT(report.exec_ops.ct_ct_mul, 0u);
  EXPECT_GT(report.exec_ops.ntt_forward, 0u);
}

TEST(TranscipherServiceTest, CoalescesRequestsOfOneClient) {
  auto service = make_service();
  TestClient client(2, 21);
  service.open_session(client.id, client.encrypted_key());

  const auto msg_a = random_msg(stack().config.pasta.t, 22);
  const auto msg_b = random_msg(stack().config.pasta.t + 1, 23);
  const std::vector<TranscipherRequest> reqs{client.request(1, msg_a),
                                             client.request(2, msg_b)};
  ServiceReport report;
  const auto results = service.process(reqs, &report);

  EXPECT_EQ(report.blocks, 3u);
  EXPECT_EQ(report.batches, 1u);  // both requests share one SIMD batch
  EXPECT_EQ(decode_all(results[0]), msg_a);
  EXPECT_EQ(decode_all(results[1]), msg_b);
}

TEST(TranscipherServiceTest, ClientsDoNotShareBatches) {
  auto service = make_service();
  TestClient alice(3, 31), bob(4, 41);
  service.open_session(alice.id, alice.encrypted_key());
  service.open_session(bob.id, bob.encrypted_key());

  const auto msg_a = random_msg(5, 32);
  const auto msg_b = random_msg(7, 42);
  const std::vector<TranscipherRequest> reqs{alice.request(9, msg_a),
                                             bob.request(9, msg_b)};
  ServiceReport report;
  const auto results = service.process(reqs, &report);

  // Different clients = different keys = different batches.
  EXPECT_EQ(report.batches, 2u);
  EXPECT_EQ(decode_all(results[0]), msg_a);
  EXPECT_EQ(decode_all(results[1]), msg_b);
}

TEST(TranscipherServiceTest, MaxBatchBlocksSplitsBatches) {
  auto service = make_service(ServiceConfig{.max_batch_blocks = 2});
  EXPECT_EQ(service.batch_capacity(), 2u);
  TestClient client(5, 51);
  service.open_session(client.id, client.encrypted_key());

  const auto msg = random_msg(4 * stack().config.pasta.t, 52);
  ServiceReport report;
  const auto results =
      service.process(std::vector{client.request(3, msg)}, &report);

  EXPECT_EQ(report.blocks, 4u);
  EXPECT_EQ(report.batches, 2u);
  EXPECT_DOUBLE_EQ(report.avg_batch_occupancy, 1.0);
  EXPECT_EQ(decode_all(results[0]), msg);
}

TEST(TranscipherServiceTest, LruEvictionRespectsRecency) {
  auto service = make_service(ServiceConfig{.max_sessions = 2});
  TestClient a(10, 61), b(11, 62), c(12, 63);
  service.open_session(a.id, a.encrypted_key());
  service.open_session(b.id, b.encrypted_key());
  // Re-opening A refreshes its recency: B becomes the LRU victim.
  service.open_session(a.id, a.encrypted_key());
  service.open_session(c.id, c.encrypted_key());

  EXPECT_EQ(service.session_count(), 2u);
  EXPECT_TRUE(service.has_session(a.id));
  EXPECT_FALSE(service.has_session(b.id));
  EXPECT_TRUE(service.has_session(c.id));
  EXPECT_EQ(service.evictions(), 1u);
}

TEST(TranscipherServiceTest, UnknownClientAndEmptyRequestRejected) {
  auto service = make_service();
  const std::vector<TranscipherRequest> unknown{
      TranscipherRequest{.client_id = 999, .nonce = 1, .symmetric_ct = {1}}};
  EXPECT_THROW(service.process(unknown), poe::Error);

  TestClient client(6, 71);
  service.open_session(client.id, client.encrypted_key());
  const std::vector<TranscipherRequest> empty{
      TranscipherRequest{.client_id = client.id, .nonce = 2,
                         .symmetric_ct = {}}};
  EXPECT_THROW(service.process(empty), poe::Error);
}

TEST(TranscipherServiceTest, NonceReplayRejected) {
  auto service = make_service();
  TestClient client(7, 81);
  service.open_session(client.id, client.encrypted_key());

  const auto msg = random_msg(3, 82);
  const auto results = service.process(std::vector{client.request(55, msg)});
  EXPECT_EQ(decode_all(results[0]), msg);
  // Same nonce again: rejected during admission, before any evaluation.
  EXPECT_THROW(service.process(std::vector{client.request(55, msg)}),
               poe::Error);
}

TEST(TranscipherServiceTest, PipelinedMatchesUnpipelined) {
  auto pipelined = make_service(ServiceConfig{.pipelined = true});
  auto sequential = make_service(ServiceConfig{.pipelined = false});
  TestClient client(8, 91);
  pipelined.open_session(client.id, client.encrypted_key());
  sequential.open_session(client.id, client.encrypted_key());

  const auto msg = random_msg(stack().config.pasta.t + 2, 92);
  const auto req = std::vector{client.request(4, msg)};
  ServiceReport rep_p, rep_s;
  const auto out_p = pipelined.process(req, &rep_p);
  const auto out_s = sequential.process(req, &rep_s);

  EXPECT_EQ(decode_all(out_p[0]), msg);
  EXPECT_EQ(decode_all(out_s[0]), msg);
  EXPECT_EQ(rep_p.batches, rep_s.batches);
  EXPECT_EQ(rep_p.blocks, rep_s.blocks);
  EXPECT_GE(rep_p.max_queue_depth, 1u);
  EXPECT_EQ(rep_s.max_queue_depth, 0u);  // no queue in the sequential path
}

}  // namespace
}  // namespace poe::service
