#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hhe/batched_server.hpp"
#include "hhe/protocol.hpp"

namespace poe::hhe {
namespace {

class HheProtocol : public ::testing::Test {
 protected:
  HheProtocol()
      : config_(HheConfig::test()), bgv_(config_.bgv) {}

  HheConfig config_;
  fhe::Bgv bgv_;
};

TEST_F(HheProtocol, KeyCiphertextsDecryptToKey) {
  Xoshiro256 rng(1);
  const auto key = pasta::PastaCipher::random_key(config_.pasta, rng);
  HheClient client(config_, bgv_, key);
  const auto key_cts = client.encrypt_key();
  ASSERT_EQ(key_cts.size(), config_.pasta.key_size());
  EXPECT_EQ(client.decrypt_result(key_cts), key);
}

TEST_F(HheProtocol, TranscipherBlockRecoversMessage) {
  Xoshiro256 rng(2);
  const auto key = pasta::PastaCipher::random_key(config_.pasta, rng);
  HheClient client(config_, bgv_, key);
  HheServer server(config_, bgv_, client.encrypt_key());

  std::vector<std::uint64_t> msg(config_.pasta.t);
  for (auto& m : msg) m = rng.below(config_.pasta.p);
  const std::uint64_t nonce = 123456;

  // Client -> server: symmetric ciphertext, zero expansion.
  const auto sym_ct = client.encrypt(msg, nonce);
  ASSERT_EQ(sym_ct.size(), msg.size());

  // Server: homomorphic PASTA decryption.
  ServerReport report;
  const auto fhe_cts = server.transcipher_block(sym_ct, nonce, 0, &report);
  ASSERT_EQ(fhe_cts.size(), msg.size());
  EXPECT_GT(report.min_noise_budget_bits, 0.0)
      << "circuit ran out of noise budget (final level "
      << report.final_level << ")";
  EXPECT_GE(report.final_level, 1u);
  // 2 * (t-1) Feistel squares per round * 3 rounds + 2t * 2 cube mults.
  const std::size_t t = config_.pasta.t;
  EXPECT_EQ(report.ct_ct_multiplications, 3 * 2 * (t - 1) + 2 * t * 2);

  // Client: decrypting the server's output yields the original message.
  EXPECT_EQ(client.decrypt_result(fhe_cts), msg);
}

TEST_F(HheProtocol, TranscipherPartialAndMultiBlock) {
  Xoshiro256 rng(3);
  const auto key = pasta::PastaCipher::random_key(config_.pasta, rng);
  HheClient client(config_, bgv_, key);
  HheServer server(config_, bgv_, client.encrypt_key());

  std::vector<std::uint64_t> msg(config_.pasta.t + 3);  // 2 blocks, 2nd short
  for (auto& m : msg) m = rng.below(config_.pasta.p);
  const auto sym_ct = client.encrypt(msg, 77);
  const auto fhe_cts = server.transcipher(sym_ct, 77);
  ASSERT_EQ(fhe_cts.size(), msg.size());
  EXPECT_EQ(client.decrypt_result(fhe_cts), msg);
}

TEST_F(HheProtocol, ServerOutputIsComputable) {
  // The point of HHE: the server's output is a *usable* FHE ciphertext —
  // e.g. it can add two transciphered values.
  Xoshiro256 rng(4);
  const auto key = pasta::PastaCipher::random_key(config_.pasta, rng);
  HheClient client(config_, bgv_, key);
  HheServer server(config_, bgv_, client.encrypt_key());

  std::vector<std::uint64_t> msg(config_.pasta.t);
  for (auto& m : msg) m = rng.below(config_.pasta.p);
  const auto cts = server.transcipher_block(client.encrypt(msg, 5), 5, 0);

  fhe::Ciphertext sum = cts[0];
  bgv_.add_inplace(sum, cts[1]);
  bgv_.mul_scalar_inplace(sum, 3);
  const auto got = client.decrypt_result({sum});
  const mod::Modulus pm(config_.pasta.p);
  EXPECT_EQ(got[0], pm.mul(pm.add(msg[0], msg[1]), 3));
}

TEST_F(HheProtocol, MismatchedPlaintextModulusRejected) {
  HheConfig bad = config_;
  bad.pasta.p = 8088322049ull;  // != bgv.t
  Xoshiro256 rng(5);
  const auto key = pasta::PastaCipher::random_key(bad.pasta, rng);
  EXPECT_THROW(HheClient(bad, bgv_, key), poe::Error);
}

TEST_F(HheProtocol, WrongKeyCountRejected) {
  EXPECT_THROW(HheServer(config_, bgv_, {}), poe::Error);
}

class BatchedHhe : public ::testing::Test {
 protected:
  BatchedHhe() : config_(HheConfig::batched_test()), bgv_(config_.bgv) {}
  HheConfig config_;
  fhe::Bgv bgv_;
};

TEST_F(BatchedHhe, BatchedKeyCiphertextDecodesToKey) {
  Xoshiro256 rng(10);
  const auto key = pasta::PastaCipher::random_key(config_.pasta, rng);
  fhe::BatchEncoder encoder(config_.bgv.n, config_.bgv.t);
  fhe::SlotLayout layout(config_.bgv.n, config_.bgv.t);
  const auto ct = encrypt_key_batched(config_, bgv_, encoder, layout, key);
  const auto got =
      BatchedHheServer::decode_block(config_, bgv_, ct, key.size());
  EXPECT_EQ(got, key);
}

TEST_F(BatchedHhe, BatchedTranscipherMatchesMessage) {
  Xoshiro256 rng(11);
  const auto key = pasta::PastaCipher::random_key(config_.pasta, rng);
  HheClient client(config_, bgv_, key);
  fhe::BatchEncoder encoder(config_.bgv.n, config_.bgv.t);
  fhe::SlotLayout layout(config_.bgv.n, config_.bgv.t);
  BatchedHheServer server(
      config_, bgv_, encrypt_key_batched(config_, bgv_, encoder, layout, key));

  std::vector<std::uint64_t> msg(config_.pasta.t);
  for (auto& m : msg) m = rng.below(config_.pasta.p);
  const std::uint64_t nonce = 31337;
  const auto sym_ct = client.encrypt(msg, nonce);

  ServerReport report;
  const auto out = server.transcipher_block(sym_ct, nonce, 0, &report);
  EXPECT_GT(report.min_noise_budget_bits, 0.0)
      << "final level " << report.final_level;
  // One squaring per Feistel round + two multiplications for the cube —
  // for the WHOLE state (vs 2(t-1) per round coefficient-wise).
  EXPECT_EQ(report.ct_ct_multiplications,
            config_.pasta.rounds - 1 + 2);

  const auto got =
      BatchedHheServer::decode_block(config_, bgv_, out, msg.size());
  EXPECT_EQ(got, msg);
}

TEST_F(BatchedHhe, BatchedAgreesWithCoefficientWiseServer) {
  Xoshiro256 rng(12);
  const auto key = pasta::PastaCipher::random_key(config_.pasta, rng);
  HheClient client(config_, bgv_, key);

  std::vector<std::uint64_t> msg(config_.pasta.t);
  for (auto& m : msg) m = rng.below(config_.pasta.p);
  const auto sym_ct = client.encrypt(msg, 5);

  // Coefficient-wise path.
  HheServer coeff_server(config_, bgv_, client.encrypt_key());
  const auto coeff_out = coeff_server.transcipher_block(sym_ct, 5, 0);
  const auto coeff_msg = client.decrypt_result(coeff_out);

  // Batched path.
  fhe::BatchEncoder encoder(config_.bgv.n, config_.bgv.t);
  fhe::SlotLayout layout(config_.bgv.n, config_.bgv.t);
  BatchedHheServer batched(
      config_, bgv_, encrypt_key_batched(config_, bgv_, encoder, layout, key));
  const auto batched_out = batched.transcipher_block(sym_ct, 5, 0);
  const auto batched_msg =
      BatchedHheServer::decode_block(config_, bgv_, batched_out, msg.size());

  EXPECT_EQ(coeff_msg, msg);
  EXPECT_EQ(batched_msg, msg);
}

TEST_F(BatchedHhe, RejectsTooSmallRing) {
  HheConfig bad = config_;
  bad.pasta.t = 600;  // 2t = 1200 does not divide n/2 = 512
  fhe::Ciphertext dummy = bgv_.encrypt(fhe::Plaintext{{1}});
  EXPECT_THROW(BatchedHheServer(bad, bgv_, dummy), poe::Error);
}

TEST_F(BatchedHhe, SharedRotationKeysMatchOwnedKeys) {
  Xoshiro256 rng(13);
  const auto key = pasta::PastaCipher::random_key(config_.pasta, rng);
  HheClient client(config_, bgv_, key);
  fhe::BatchEncoder encoder(config_.bgv.n, config_.bgv.t);
  fhe::SlotLayout layout(config_.bgv.n, config_.bgv.t);
  const auto key_ct = encrypt_key_batched(config_, bgv_, encoder, layout, key);

  std::vector<std::uint64_t> msg(config_.pasta.t);
  for (auto& m : msg) m = rng.below(config_.pasta.p);
  const auto sym_ct = client.encrypt(msg, 99);

  BatchedHheServer owned(config_, bgv_, key_ct);
  const auto shared_keys =
      BatchedHheServer::make_shared_rotation_keys(config_, bgv_);
  BatchedHheServer shared(config_, bgv_, key_ct, shared_keys);

  // Key switching is deterministic given the key material, so both servers
  // must produce the same recovered message (and the shared-keys server
  // must not need keys of its own).
  const auto a = BatchedHheServer::decode_block(
      config_, bgv_, owned.transcipher_block(sym_ct, 99, 0), msg.size());
  const auto b = BatchedHheServer::decode_block(
      config_, bgv_, shared.transcipher_block(sym_ct, 99, 0), msg.size());
  EXPECT_EQ(a, msg);
  EXPECT_EQ(b, msg);
  EXPECT_THROW(BatchedHheServer(config_, bgv_, key_ct, nullptr), poe::Error);
}

// ---- Noise-budget regression bands -------------------------------------
//
// Measured on the right-sized configs (parameter search + automatic
// mod-switch scheduling + terminal output trim): both circuits finish at
// level 1 with ~34-35 bits of measured budget, a few bits above the
// predicted (bound-derived) 28 and comfortably inside the [band_low,
// band_high] = [8, 40] safety band the search targets. The bands below are
// wide enough for platform jitter (rounding in the budget estimate) but
// tight enough to catch a real regression — a missed trim or a skipped
// mod-switch shows up as a whole-prime (~57 bit) jump.

TEST_F(HheProtocol, NoiseBudgetStaysWithinRecordedBand) {
  Xoshiro256 rng(6);
  const auto key = pasta::PastaCipher::random_key(config_.pasta, rng);
  HheClient client(config_, bgv_, key);
  HheServer server(config_, bgv_, client.encrypt_key());

  std::vector<std::uint64_t> msg(config_.pasta.t);
  for (auto& m : msg) m = rng.below(config_.pasta.p);
  ServerReport report;
  const auto cts =
      server.transcipher_block(client.encrypt(msg, 314), 314, 0, &report);
  EXPECT_EQ(client.decrypt_result(cts), msg);
  EXPECT_GE(report.min_noise_budget_bits, 28.0)
      << "noise regression: budget dropped below the recorded band";
  EXPECT_LE(report.min_noise_budget_bits, 40.0)
      << "budget above the recorded band: parameters changed? "
         "re-measure and update the band";
  EXPECT_GE(report.min_noise_budget_bits, report.predicted_min_budget_bits)
      << "tracked bound is not a sound lower estimate";
  EXPECT_EQ(report.final_level, 1u);
}

TEST_F(BatchedHhe, NoiseBudgetStaysWithinRecordedBand) {
  Xoshiro256 rng(14);
  const auto key = pasta::PastaCipher::random_key(config_.pasta, rng);
  HheClient client(config_, bgv_, key);
  fhe::BatchEncoder encoder(config_.bgv.n, config_.bgv.t);
  fhe::SlotLayout layout(config_.bgv.n, config_.bgv.t);
  BatchedHheServer server(
      config_, bgv_, encrypt_key_batched(config_, bgv_, encoder, layout, key));

  std::vector<std::uint64_t> msg(config_.pasta.t);
  for (auto& m : msg) m = rng.below(config_.pasta.p);
  ServerReport report;
  const auto out =
      server.transcipher_block(client.encrypt(msg, 159), 159, 0, &report);
  EXPECT_EQ(BatchedHheServer::decode_block(config_, bgv_, out, msg.size()),
            msg);
  EXPECT_GE(report.min_noise_budget_bits, 28.0)
      << "noise regression: budget dropped below the recorded band";
  EXPECT_LE(report.min_noise_budget_bits, 40.0)
      << "budget above the recorded band: parameters changed? "
         "re-measure and update the band";
  EXPECT_GE(report.min_noise_budget_bits, report.predicted_min_budget_bits)
      << "tracked bound is not a sound lower estimate";
  EXPECT_EQ(report.final_level, 1u);
}

TEST(HheConfigs, DemoUsesPasta4) {
  const auto cfg = HheConfig::demo();
  EXPECT_EQ(cfg.pasta.t, 32u);
  EXPECT_EQ(cfg.pasta.rounds, 4u);
  EXPECT_EQ(cfg.bgv.t, cfg.pasta.p);
}

}  // namespace
}  // namespace poe::hhe
