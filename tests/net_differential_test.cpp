// Cross-process differential suite (ctest label: diff): a LocalCluster —
// router + worker shards + key manager, every byte over real loopback
// sockets in the framed protocol — against the in-process
// TranscipherService as reference.
//
// The bit-identity axis: every shard derives its key material independently
// from the deterministic BgvParams seed, and a single-shard deployment
// receives its wave in request order, reproducing the in-process batch
// composition exactly — so the serialized result ciphertexts must be
// BYTE-identical to the reference's, not merely decrypt the same. With two
// shards the batch composition differs, so the check relaxes to
// bit-identical decrypted outputs plus matching terminal statuses and the
// ServiceReport partition invariants on every shard's report.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fhe/serialize.hpp"
#include "hhe/batched_server.hpp"
#include "net/cluster.hpp"
#include "service/service.hpp"

namespace poe::net {
namespace {

using u64 = std::uint64_t;
using service::RequestStatus;
using service::ServiceReport;
using service::TranscipherRequest;
using service::TranscipherResult;
using service::TranscipherService;

struct Stack {
  hhe::HheConfig config = hhe::HheConfig::batched_test();
  fhe::Bgv bgv{config.bgv};
  fhe::BatchEncoder encoder{config.bgv.n, config.bgv.t};
  fhe::SlotLayout layout{config.bgv.n, config.bgv.t};
  std::shared_ptr<const fhe::GaloisKeys> keys =
      hhe::SimdBatchEngine::make_shared_rotation_keys(config, bgv);
};

Stack& stack() {
  static Stack s;
  return s;
}

struct TestClient {
  u64 id;
  std::vector<u64> key;
  pasta::PastaCipher cipher;

  TestClient(u64 client_id, u64 seed)
      : id(client_id),
        key([&] {
          Xoshiro256 rng(seed);
          return pasta::PastaCipher::random_key(stack().config.pasta, rng);
        }()),
        cipher(stack().config.pasta, key) {}

  std::vector<std::uint8_t> key_wire() const {
    return fhe::serialize_ciphertext(
        stack().bgv.rns(),
        hhe::encrypt_key_batched(stack().config, stack().bgv, stack().encoder,
                                 stack().layout, key));
  }

  TranscipherRequest request(u64 nonce, const std::vector<u64>& msg) const {
    return TranscipherRequest{.client_id = id,
                              .nonce = nonce,
                              .symmetric_ct = cipher.encrypt(msg, nonce)};
  }
};

std::vector<u64> random_msg(std::size_t len, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u64> msg(len);
  for (auto& m : msg) m = rng.below(stack().config.pasta.p);
  return msg;
}

std::vector<u64> decode_all(const TranscipherResult& result) {
  std::vector<u64> out;
  for (const auto& block : result.blocks) {
    const auto vals =
        TranscipherService::decode_block(stack().config, stack().bgv, block);
    out.insert(out.end(), vals.begin(), vals.end());
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> wire_blocks(
    const TranscipherResult& result) {
  std::vector<std::vector<std::uint8_t>> out;
  for (const auto& block : result.blocks) {
    out.push_back(fhe::serialize_ciphertext(stack().bgv.rns(), *block.ct));
  }
  return out;
}

void expect_router_partition(const RouterReport& rep) {
  EXPECT_EQ(rep.faults.ok + rep.faults.rejected + rep.faults.shed +
                rep.faults.quarantined + rep.faults.timed_out +
                rep.faults.failed,
            rep.requests);
}

void expect_shard_partition(const ShardReportMsg& rep) {
  EXPECT_EQ(rep.faults.ok + rep.faults.rejected + rep.faults.shed +
                rep.faults.quarantined + rep.faults.timed_out +
                rep.faults.failed,
            rep.requests);
}

TEST(NetDifferential, SingleShardIsBitIdenticalToInProcess) {
  Stack& st = stack();
  ClusterConfig cc;
  cc.shards = 1;
  LocalCluster cluster(st.config, st.bgv.rns(), cc);
  TranscipherService reference(st.config, st.bgv, {}, st.keys);

  std::vector<TestClient> clients;
  for (u64 id = 1; id <= 4; ++id) clients.emplace_back(id, 9000 + id);
  for (const TestClient& c : clients) {
    // The SAME enc(K) bytes travel both paths: over the wire to the key
    // manager, and straight into the reference service.
    const auto wire = c.key_wire();
    std::string error;
    ASSERT_TRUE(cluster.onboard(c.id, wire, &error)) << error;
    ASSERT_TRUE(reference.open_session_wire(c.id, wire));
  }

  std::vector<TranscipherRequest> wave;
  std::vector<std::vector<u64>> msgs;
  u64 nonce = 1;
  for (const TestClient& c : clients) {
    for (int j = 0; j < 2; ++j) {
      msgs.push_back(
          random_msg(st.config.pasta.t + 3 * static_cast<std::size_t>(j) + 1,
                     500 + nonce));
      wave.push_back(c.request(nonce, msgs.back()));
      ++nonce;
    }
  }

  ServiceReport ref_rep;
  const auto ref_results = reference.process(wave, &ref_rep);
  RouterReport net_rep;
  const auto net_results = cluster.router().process(wave, &net_rep);

  ASSERT_EQ(net_results.size(), ref_results.size());
  for (std::size_t i = 0; i < wave.size(); ++i) {
    ASSERT_EQ(net_results[i].status, ref_results[i].status) << "request " << i;
    ASSERT_TRUE(net_results[i].ok()) << net_results[i].error;
    // Byte-identical serialized ciphertexts — the strongest form of the
    // differential: same keys, same batch composition, same evaluation.
    EXPECT_EQ(wire_blocks(net_results[i]), wire_blocks(ref_results[i]))
        << "request " << i;
    EXPECT_EQ(decode_all(net_results[i]), msgs[i]) << "request " << i;
  }
  EXPECT_EQ(net_rep.faults.ok, ref_rep.faults.ok);
  EXPECT_EQ(net_rep.requests, ref_rep.requests);
  expect_router_partition(net_rep);
  ASSERT_EQ(net_rep.shard_reports.size(), 1u);
  expect_shard_partition(net_rep.shard_reports[0]);
  EXPECT_EQ(net_rep.shard_reports[0].requests, wave.size());
}

TEST(NetDifferential, TwoShardsDecryptIdenticallyWithPartitionInvariants) {
  Stack& st = stack();
  ClusterConfig cc;
  cc.shards = 2;
  LocalCluster cluster(st.config, st.bgv.rns(), cc);
  TranscipherService reference(st.config, st.bgv, {}, st.keys);

  // Pick client ids the deterministic ring places two-per-shard, so the
  // wave genuinely exercises the fan-out and the collect merge.
  std::vector<TestClient> clients;
  std::size_t per_shard[2] = {0, 0};
  for (u64 id = 100; clients.size() < 4; ++id) {
    const std::size_t owner = cluster.router().owner(id);
    if (per_shard[owner] < 2) {
      ++per_shard[owner];
      clients.emplace_back(id, 9100 + id);
    }
  }
  for (const TestClient& c : clients) {
    const auto wire = c.key_wire();
    std::string error;
    ASSERT_TRUE(cluster.onboard(c.id, wire, &error)) << error;
    ASSERT_TRUE(reference.open_session_wire(c.id, wire));
  }

  std::vector<TranscipherRequest> wave;
  std::vector<std::vector<u64>> msgs;
  u64 nonce = 1;
  for (const TestClient& c : clients) {
    for (int j = 0; j < 2; ++j) {
      msgs.push_back(random_msg(st.config.pasta.t + nonce % 5, 700 + nonce));
      wave.push_back(c.request(nonce, msgs.back()));
      ++nonce;
    }
  }

  ServiceReport ref_rep;
  const auto ref_results = reference.process(wave, &ref_rep);
  RouterReport net_rep;
  const auto net_results = cluster.router().process(wave, &net_rep);

  ASSERT_EQ(net_results.size(), ref_results.size());
  for (std::size_t i = 0; i < wave.size(); ++i) {
    ASSERT_EQ(net_results[i].status, ref_results[i].status) << "request " << i;
    ASSERT_TRUE(net_results[i].ok()) << net_results[i].error;
    // Batch composition differs across 2 shards, so ciphertext bytes may
    // differ — the decrypted payload must not.
    EXPECT_EQ(decode_all(net_results[i]), decode_all(ref_results[i]))
        << "request " << i;
    EXPECT_EQ(decode_all(net_results[i]), msgs[i]) << "request " << i;
  }
  EXPECT_EQ(net_rep.faults.ok, ref_rep.faults.ok);
  expect_router_partition(net_rep);
  ASSERT_EQ(net_rep.shard_reports.size(), 2u);
  std::size_t shard_requests = 0;
  for (const ShardReportMsg& rep : net_rep.shard_reports) {
    expect_shard_partition(rep);
    EXPECT_GT(rep.requests, 0u);  // both shards actually served
    shard_requests += rep.requests;
  }
  EXPECT_EQ(shard_requests, wave.size());
}

TEST(NetDifferential, DegradedStatusesMatchInProcessReference) {
  Stack& st = stack();
  ClusterConfig cc;
  cc.shards = 2;
  LocalCluster cluster(st.config, st.bgv.rns(), cc);
  TranscipherService reference(st.config, st.bgv, {}, st.keys);

  TestClient good(7, 9777);
  const auto wire = good.key_wire();
  ASSERT_TRUE(cluster.onboard(good.id, wire));
  ASSERT_TRUE(reference.open_session_wire(good.id, wire));
  TestClient ghost(8, 9778);  // never onboarded anywhere

  const auto msg = random_msg(st.config.pasta.t, 42);
  const auto first = std::vector{good.request(1, msg)};
  ASSERT_TRUE(reference.process(first)[0].ok());
  ASSERT_TRUE(cluster.router().process(first)[0].ok());

  // Second wave: a nonce replay and a session the key manager has never
  // seen. Both must land as the SAME typed statuses the in-process service
  // assigns — degradation is part of the differential contract.
  const std::vector<TranscipherRequest> wave{good.request(1, msg),
                                             ghost.request(2, msg),
                                             good.request(2, msg)};
  ServiceReport ref_rep;
  const auto ref_results = reference.process(wave, &ref_rep);
  RouterReport net_rep;
  const auto net_results = cluster.router().process(wave, &net_rep);

  ASSERT_EQ(ref_results[0].status, RequestStatus::kNonceReplay);
  ASSERT_EQ(ref_results[1].status, RequestStatus::kUnknownSession);
  ASSERT_EQ(ref_results[2].status, RequestStatus::kOk);
  for (std::size_t i = 0; i < wave.size(); ++i) {
    EXPECT_EQ(net_results[i].status, ref_results[i].status) << "request " << i;
  }
  EXPECT_FALSE(net_results[0].error.empty());
  EXPECT_FALSE(net_results[1].error.empty());
  EXPECT_EQ(decode_all(net_results[2]), msg);
  EXPECT_EQ(net_rep.faults.ok, ref_rep.faults.ok);
  EXPECT_EQ(net_rep.faults.rejected, ref_rep.faults.rejected);
  expect_router_partition(net_rep);
}

}  // namespace
}  // namespace poe::net
