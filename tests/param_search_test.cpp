// Noise-aware parameter right-sizing: soundness of the tracked bound,
// replay feasibility, the search fixed point that pins protocol.cpp's
// checked-in configs, and the auto-vs-hand-placed schedule differential.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/rng.hpp"
#include "fhe/bgv.hpp"
#include "fhe/encoding.hpp"
#include "fhe/noise.hpp"
#include "fhe/param_search.hpp"
#include "hhe/batched_server.hpp"
#include "hhe/profile.hpp"
#include "hhe/protocol.hpp"
#include "kernels/backend.hpp"

namespace poe::fhe {
namespace {

// Measured (secret-key) budget must never be below the tracked bound's
// budget: the bound is conservative, so predicted <= measured. The 0.51
// slack absorbs the log2 rounding in the measured budget.
void expect_sound(const Bgv& bgv, const Ciphertext& ct, const char* where) {
  const double measured = bgv.noise_budget_bits(ct);
  const double predicted = bgv.predicted_budget_bits(ct);
  EXPECT_GT(measured, 0.0) << where << ": circuit ran out of budget";
  EXPECT_LE(predicted, measured + 0.51)
      << where << ": tracked bound claims more budget than is really left";
}

// One seeded random walk through every noise-relevant op the evaluators
// use, checking predicted <= measured after each step.
void random_circuit_soundness(const BgvParams& params, std::uint64_t seed) {
  const Bgv bgv(params);
  Xoshiro256 rng(seed);
  const GaloisKeys keys = bgv.make_rotation_keys({1, 3});

  auto random_plain = [&](std::size_t len) {
    Plaintext pt;
    pt.coeffs.resize(len);
    for (auto& c : pt.coeffs) c = rng.below(params.t);
    return pt;
  };

  Ciphertext a = bgv.encrypt(random_plain(params.n));
  Ciphertext b = bgv.encrypt(random_plain(params.n));
  expect_sound(bgv, a, "fresh");

  for (int step = 0; step < 24; ++step) {
    switch (rng.below(10)) {
      case 0:
        bgv.match_levels(a, b);
        bgv.add_inplace(a, b);
        break;
      case 1:
        bgv.add_plain_inplace(a, random_plain(params.n));
        break;
      case 2:
        bgv.add_scalar_inplace(a, rng.below(params.t));
        break;
      case 3:
        bgv.mul_scalar_inplace(a, rng.below(params.t));
        break;
      case 4:
        bgv.mul_plain_inplace(a, random_plain(params.n));
        break;
      case 5: {
        if (a.level < 3) break;
        bgv.match_levels(a, b);
        // The tensor's bound is a + b + log_n + 1: only multiply when the
        // tracked budget keeps the product comfortably decryptable.
        if (bgv.predicted_budget_bits(a) < b.noise_bits + 31.0) break;
        Ciphertext prod = bgv.multiply(a, b);
        expect_sound(bgv, prod, "multiply (3-part)");
        bgv.relinearize_inplace(prod);
        a = std::move(prod);
        break;
      }
      case 6:
        bgv.rotate_columns_inplace(a, 1, keys);
        break;
      case 7: {
        // Hoisted rotation must track the same bound as the plain rotate.
        const HoistedCt hoisted = bgv.hoist(a);
        Ciphertext rot = bgv.rotate_hoisted(hoisted, 3, keys);
        expect_sound(bgv, rot, "rotate_hoisted");
        Ciphertext rot2;
        bgv.rotate_hoisted_into(hoisted, 3, keys, rot2);
        expect_sound(bgv, rot2, "rotate_hoisted_into");
        a = std::move(rot);
        break;
      }
      case 8:
        if (a.level > 2) bgv.mod_switch_inplace(a);
        break;
      case 9:
        bgv.auto_switch_inplace(a);
        break;
    }
    expect_sound(bgv, a, "random step");
    if (bgv.noise_budget_bits(a) < 40.0) {
      a = bgv.encrypt(random_plain(params.n));  // re-arm before exhaustion
    }
  }
}

TEST(NoiseBoundSoundness, RandomCircuitsAcrossKernelBackends) {
  const BgvParams params = hhe::HheConfig::test().bgv;
  for (const kernels::Backend* backend : kernels::available_backends()) {
    ASSERT_EQ(
        setenv("POE_KERNEL_BACKEND", std::string(backend->name()).c_str(), 1),
        0);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE(std::string(backend->name()) +
                   " seed=" + std::to_string(seed));
      random_circuit_soundness(params, seed);
    }
  }
  ASSERT_EQ(unsetenv("POE_KERNEL_BACKEND"), 0);
}

TEST(NoiseBoundSoundness, IngestSwitchTracksKeySwitchNoise) {
  const BgvParams params = hhe::HheConfig::batched_test().bgv;
  const Bgv bgv(params);
  BgvParams foreign_params = params;
  foreign_params.seed += 17;
  const Bgv foreign(foreign_params);
  const KswKey ingest_key = bgv.make_ingest_key(foreign);

  Plaintext pt;
  pt.coeffs.assign(4, 7);
  const Ciphertext uploaded = foreign.encrypt(pt);
  const Ciphertext switched = bgv.ingest_switch(uploaded, ingest_key);
  expect_sound(bgv, switched, "ingest_switch");
  // The switch costs noise: the tracked bound must reflect that, not stay
  // at the fresh-encryption bound.
  EXPECT_GT(switched.noise_bits, uploaded.noise_bits);
}

TEST(NoiseEstimator, TrimSpendsSurplusButKeepsTheBand) {
  const BgvParams params = hhe::HheConfig::batched_test().bgv;
  const NoiseEstimator est(params);
  const double floor = est.mod_switch_floor(2);
  // Plenty of surplus: the trim should walk down to the last level whose
  // post-switch budget still clears keep_bits.
  const std::size_t target = est.trim_target(floor, 12, 2, 8.0);
  ASSERT_LT(target, 12u);
  double noise = floor;
  for (std::size_t lvl = 12; lvl > target; --lvl) noise = est.mod_switch(noise, 2);
  EXPECT_GE(est.budget(noise, target), 8.0);
  // One more drop would violate the band (or the level floor).
  if (target > 1) {
    EXPECT_LT(est.budget(est.mod_switch(noise, 2), target - 1), 8.0);
  }
}

TEST(NoiseEstimator, AutoDropTargetIsContracting) {
  // Two trajectories whose bounds differ by less than a prime converge to
  // the same level, and their post-drop bounds land within one switch's
  // rounding floor of each other — the property that keeps live and
  // replayed schedules from bifurcating on sub-bit bound differences.
  const BgvParams params = hhe::HheConfig::batched_test().bgv;
  const NoiseEstimator est(params);
  const double hi = 120.0;
  for (double delta = 0.25; delta <= 8.0; delta *= 2.0) {
    EXPECT_EQ(est.auto_drop_target(hi, 12, 2, 2.0),
              est.auto_drop_target(hi + delta, 12, 2, 2.0))
        << "delta=" << delta;
  }
}

// Replaying the recorded circuit under the checked-in parameters must be
// feasible with the output budget inside the safety band — and a chain too
// short for the circuit must be rejected.
TEST(Simulate, CheckedInParamsAreFeasible) {
  const hhe::HheConfig legacy = hhe::HheConfig::batched_test_legacy();
  const hhe::HheConfig checked_in = hhe::HheConfig::batched_test();
  const CircuitProfile profile = hhe::record_batched_profile(legacy);
  ASSERT_FALSE(profile.tape.empty());
  ASSERT_FALSE(profile.outputs.empty());

  const SearchConstraints c;
  const SimResult ok =
      simulate(profile, checked_in.bgv, c.policy, c.band_low);
  EXPECT_TRUE(ok.feasible);
  EXPECT_GE(ok.min_output_budget, c.band_low);
  EXPECT_LE(ok.min_output_budget, c.band_high);
  EXPECT_GT(ok.mod_switches, 0u);

  BgvParams starved = checked_in.bgv;
  starved.num_primes = 2;
  const SimResult bad = simulate(profile, starved, c.policy, c.band_low);
  EXPECT_FALSE(bad.feasible);
}

// The fixed point that pins protocol.cpp: re-recording the circuits under
// the legacy configs and re-running the search must reproduce exactly the
// BgvParams checked into HheConfig::test() / batched_test(). If this fails,
// either the estimator, the scheduler policy, the security table, or the
// circuit changed — re-run build/bench/bench_param_search and paste its
// output into protocol.cpp.
TEST(SearchFixedPoint, CoefficientTestConfig) {
  const hhe::HheConfig legacy = hhe::HheConfig::test_legacy();
  const CircuitProfile profile = hhe::record_coefficient_profile(legacy);
  SearchConstraints c;
  c.t = legacy.bgv.t;
  c.seed = legacy.bgv.seed;
  c.policy.margin = hhe::HheConfig::test().switch_margin;
  const SearchResult r = search_params(profile, c);
  ASSERT_TRUE(r.found);
  const BgvParams expected = hhe::HheConfig::test().bgv;
  EXPECT_EQ(r.params.n, expected.n);
  EXPECT_EQ(r.params.num_primes, expected.num_primes);
  EXPECT_EQ(r.params.prime_bits, expected.prime_bits);
  EXPECT_EQ(r.params.relin_digit_bits, expected.relin_digit_bits);
  EXPECT_LE(r.log_q, r.security_cap);
}

TEST(SearchFixedPoint, BatchedTestConfig) {
  const hhe::HheConfig legacy = hhe::HheConfig::batched_test_legacy();
  const CircuitProfile profile = hhe::record_batched_profile(legacy);
  SearchConstraints c;
  c.t = legacy.bgv.t;
  c.seed = legacy.bgv.seed;
  c.policy.margin = hhe::HheConfig::batched_test().switch_margin;
  const SearchResult r = search_params(profile, c);
  ASSERT_TRUE(r.found);
  const BgvParams expected = hhe::HheConfig::batched_test().bgv;
  EXPECT_EQ(r.params.n, expected.n);
  EXPECT_EQ(r.params.num_primes, expected.num_primes);
  EXPECT_EQ(r.params.prime_bits, expected.prime_bits);
  EXPECT_EQ(r.params.relin_digit_bits, expected.relin_digit_bits);
  EXPECT_LE(r.log_q, r.security_cap);
}

TEST(ProfileOverride, LegacyKnobRestoresHandChosenConfigs) {
  ASSERT_EQ(setenv("POE_HHE_PROFILE", "legacy", 1), 0);
  const hhe::HheConfig overridden = hhe::HheConfig::batched_test();
  ASSERT_EQ(unsetenv("POE_HHE_PROFILE"), 0);
  const hhe::HheConfig legacy = hhe::HheConfig::batched_test_legacy();
  EXPECT_EQ(overridden.bgv.num_primes, legacy.bgv.num_primes);
  EXPECT_EQ(overridden.bgv.prime_bits, legacy.bgv.prime_bits);
  EXPECT_FALSE(overridden.auto_mod_switch);
  // Default (unset) hands out the right-sized profile.
  EXPECT_TRUE(hhe::HheConfig::batched_test().auto_mod_switch);
}

TEST(SecurityTable, DemoCeilingNeverGrowsPastLegacy) {
  // kDemo is "no more modulus than the legacy demo configs shipped":
  // 18 x 55-bit primes.
  EXPECT_EQ(max_log_q(1024, SecurityLevel::kDemo), 990.0);
  EXPECT_EQ(max_log_q(32768, SecurityLevel::kDemo), 990.0);
  // The 128-bit classical column is monotone in n and zero off-table.
  double prev = 0.0;
  for (std::size_t n = 1024; n <= 32768; n *= 2) {
    const double cap = max_log_q(n, SecurityLevel::k128Classical);
    EXPECT_GT(cap, prev);
    prev = cap;
  }
  EXPECT_EQ(max_log_q(512, SecurityLevel::k128Classical), 0.0);
}

// The automatic schedule must be a pure performance change: the same
// message transciphers identically under the legacy hand-placed schedule
// and the right-sized auto schedule, on both server shapes.
TEST(AutoScheduleDifferential, CoefficientAutoMatchesHandPlaced) {
  Xoshiro256 rng(42);
  for (const bool auto_sched : {false, true}) {
    const hhe::HheConfig cfg = auto_sched ? hhe::HheConfig::test()
                                          : hhe::HheConfig::test_legacy();
    const Bgv bgv(cfg.bgv);
    Xoshiro256 keyrng(9);
    const auto key = pasta::PastaCipher::random_key(cfg.pasta, keyrng);
    hhe::HheClient client(cfg, bgv, key);
    hhe::HheServer server(cfg, bgv, client.encrypt_key());
    std::vector<std::uint64_t> msg(cfg.pasta.t);
    for (auto& m : msg) m = rng.below(cfg.pasta.p);
    const auto out =
        server.transcipher_block(client.encrypt(msg, 321), 321, 0);
    EXPECT_EQ(client.decrypt_result(out), msg)
        << (auto_sched ? "auto" : "hand-placed") << " schedule";
    rng = Xoshiro256(42);  // same messages for both schedules
  }
}

TEST(AutoScheduleDifferential, BatchedAutoMatchesHandPlaced) {
  Xoshiro256 rng(43);
  for (const bool auto_sched : {false, true}) {
    const hhe::HheConfig cfg = auto_sched
                                   ? hhe::HheConfig::batched_test()
                                   : hhe::HheConfig::batched_test_legacy();
    const Bgv bgv(cfg.bgv);
    Xoshiro256 keyrng(9);
    const auto key = pasta::PastaCipher::random_key(cfg.pasta, keyrng);
    hhe::HheClient client(cfg, bgv, key);
    BatchEncoder encoder(cfg.bgv.n, cfg.bgv.t);
    SlotLayout layout(cfg.bgv.n, cfg.bgv.t);
    hhe::BatchedHheServer server(
        cfg, bgv, hhe::encrypt_key_batched(cfg, bgv, encoder, layout, key));
    std::vector<std::uint64_t> msg(cfg.pasta.t);
    for (auto& m : msg) m = rng.below(cfg.pasta.p);
    const auto out =
        server.transcipher_block(client.encrypt(msg, 654), 654, 0);
    EXPECT_EQ(hhe::BatchedHheServer::decode_block(cfg, bgv, out, msg.size()),
              msg)
        << (auto_sched ? "auto" : "hand-placed") << " schedule";
    rng = Xoshiro256(43);
  }
}

}  // namespace
}  // namespace poe::fhe
