#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <span>

#include "common/rng.hpp"
#include "pasta/cipher.hpp"
#include "pasta/matrix.hpp"
#include "pasta/params.hpp"
#include "pasta/sampler.hpp"
#include "pasta/serialize.hpp"

namespace poe::pasta {
namespace {

TEST(Params, Presets) {
  const auto p3 = pasta3();
  EXPECT_EQ(p3.t, 128u);
  EXPECT_EQ(p3.rounds, 3u);
  EXPECT_EQ(p3.affine_layers(), 4u);
  EXPECT_EQ(p3.xof_elements_per_block(), 2048u);  // §III-A of the paper
  EXPECT_EQ(p3.key_size(), 256u);

  const auto p4 = pasta4();
  EXPECT_EQ(p4.t, 32u);
  EXPECT_EQ(p4.rounds, 4u);
  EXPECT_EQ(p4.affine_layers(), 5u);
  EXPECT_EQ(p4.xof_elements_per_block(), 640u);  // §III-A of the paper
  EXPECT_EQ(p4.prime_bits(), 17u);
}

TEST(Params, RejectionRateForFermatPrime) {
  // p = 65537 with a 17-bit mask keeps ~half the samples (§IV-B: "high rate
  // of rejection sampling (≈2x)").
  const auto p4 = pasta4();
  EXPECT_EQ(p4.sample_mask(), (1ull << 17) - 1);
  EXPECT_NEAR(p4.expected_words_per_element(), 2.0, 0.01);
}

TEST(Sampler, InRangeAndZeroPolicy) {
  const auto params = pasta4();
  FieldSampler s(params, 0, 0);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(s.next(true), params.p);
  }
  FieldSampler s2(params, 0, 0);
  for (int i = 0; i < 5000; ++i) {
    const auto v = s2.next(false);
    EXPECT_GT(v, 0u);
    EXPECT_LT(v, params.p);
  }
}

TEST(Sampler, DeterministicPerSeed) {
  const auto params = pasta4();
  FieldSampler a(params, 42, 7), b(params, 42, 7), c(params, 42, 8);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next(true);
    EXPECT_EQ(va, b.next(true));
    diverged |= (va != c.next(true));
  }
  EXPECT_TRUE(diverged);
}

TEST(Sampler, RejectionRateNearTwo) {
  const auto params = pasta4();
  FieldSampler s(params, 1, 2);
  for (int i = 0; i < 20000; ++i) s.next(true);
  const auto st = s.stats();
  const double rate =
      static_cast<double>(st.words_drawn) / (st.words_drawn - st.words_rejected);
  EXPECT_NEAR(rate, 2.0, 0.05);
}

TEST(Sampler, UniformityChiSquare) {
  // The accepted stream must be uniform over [0, p): bucketed chi-square
  // against the uniform expectation (64 buckets, 64k samples).
  const auto params = pasta4();
  FieldSampler s(params, 7, 9);
  constexpr int kBuckets = 64;
  constexpr int kSamples = 1 << 16;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    const auto v = s.next(true);
    ++counts[static_cast<std::size_t>(
        (static_cast<unsigned __int128>(v) * kBuckets) / params.p)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 63 degrees of freedom: mean 63, std ~11.2; 120 is beyond the 0.9999
  // quantile — failures indicate real bias, not noise.
  EXPECT_LT(chi2, 120.0) << "chi2=" << chi2;
}

TEST(Sampler, RejectionRateMatchesAnalyticBound) {
  // Property: the measured word consumption per element must match the
  // analytic 2^ceil(log2 p) / p bound for every supported prime width —
  // for the Fermat prime 65537 that is the paper's "≈2x" rejection rate.
  for (const unsigned bits : {17u, 33u, 54u, 60u}) {
    const auto params = pasta4(pasta_prime(bits));
    FieldSampler s(params, 3, 1);
    const int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) s.next(true);
    const auto st = s.stats();
    const double measured = static_cast<double>(st.words_drawn) / kSamples;
    EXPECT_NEAR(measured, params.expected_words_per_element(),
                0.03 * params.expected_words_per_element())
        << "prime_bits=" << bits;
  }
  // The p = 65537 instance specifically sits in the paper's [1.94, 2.06]
  // band around 2x.
  const auto p4 = pasta4();
  FieldSampler s(p4, 5, 6);
  for (int i = 0; i < 20000; ++i) s.next(true);
  const auto st = s.stats();
  const double rate =
      static_cast<double>(st.words_drawn) / (st.words_drawn - st.words_rejected);
  EXPECT_GT(rate, 1.94);
  EXPECT_LT(rate, 2.06);
}

TEST(Sampler, UniformityAggregatedAcrossSeeds) {
  // Uniformity must hold for the stream as PASTA uses it: many independent
  // (nonce, counter) seeds, aggregated. Also checks the first moment.
  const auto params = pasta4();
  constexpr int kBuckets = 32;
  constexpr int kPerSeed = 1 << 13;
  std::vector<int> counts(kBuckets, 0);
  double sum = 0;
  int total = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    FieldSampler s(params, 1000 + seed, seed * 17);
    for (int i = 0; i < kPerSeed; ++i) {
      const auto v = s.next(true);
      sum += static_cast<double>(v);
      ++counts[static_cast<std::size_t>(
          (static_cast<unsigned __int128>(v) * kBuckets) / params.p)];
      ++total;
    }
  }
  const double expected = static_cast<double>(total) / kBuckets;
  double chi2 = 0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 31 dof: mean 31, std ~7.9; 75 is far beyond the 0.9999 quantile.
  EXPECT_LT(chi2, 75.0) << "chi2=" << chi2;
  // Mean of uniform [0, p) is (p-1)/2; allow 1%.
  const double mean = sum / total;
  EXPECT_NEAR(mean, (params.p - 1) / 2.0, 0.01 * params.p);
}

TEST(Sampler, ZeroExcludedStreamStaysUniform) {
  // allow_zero = false (matrix first rows) must stay uniform over [1, p),
  // not just skip zeros.
  const auto params = pasta4();
  FieldSampler s(params, 21, 4);
  constexpr int kBuckets = 32;
  constexpr int kSamples = 1 << 15;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    const auto v = s.next(false);
    ASSERT_GE(v, 1u);
    ASSERT_LT(v, params.p);
    ++counts[static_cast<std::size_t>(
        (static_cast<unsigned __int128>(v - 1) * kBuckets) / (params.p - 1))];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 75.0) << "chi2=" << chi2;
}

TEST(Cipher, CiphertextBytesLookUniform) {
  // Encrypting a constant message must still give ciphertext bytes with no
  // gross bias (keystream pseudo-randomness smoke test).
  const auto params = pasta4();
  Xoshiro256 rng(35);
  PastaCipher cipher(params, PastaCipher::random_key(params, rng));
  std::vector<std::uint64_t> msg(params.t * 64, 12345);
  const auto ct = cipher.encrypt(msg, 3);
  std::vector<int> ones_per_bit(16, 0);
  for (const auto c : ct) {
    for (int b = 0; b < 16; ++b) ones_per_bit[b] += (c >> b) & 1;
  }
  const int n = static_cast<int>(ct.size());
  for (int b = 0; b < 16; ++b) {
    // Each of the low 16 bits should be ~50/50 (beyond ±10% would be a
    // glaring keystream defect).
    EXPECT_GT(ones_per_bit[b], n * 2 / 5) << "bit " << b;
    EXPECT_LT(ones_per_bit[b], n * 3 / 5) << "bit " << b;
  }
}

TEST(Matrix, RowStreamMatchesMaterialisedMatrix) {
  mod::Modulus m(65537);
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> alpha(32);
  for (auto& a : alpha) a = 1 + rng.below(65536);
  auto full = sequential_matrix(m, alpha);
  RowStream stream(m, alpha);
  for (std::size_t r = 0; r < 32; ++r) {
    const auto& row = stream.next_row();
    for (std::size_t c = 0; c < 32; ++c) EXPECT_EQ(row[c], full.at(r, c));
  }
}

TEST(Matrix, FirstRowIsAlphaAndRecurrenceHolds) {
  mod::Modulus m(65537);
  std::vector<std::uint64_t> alpha{3, 1, 4, 1};
  auto mat = sequential_matrix(m, alpha);
  for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(mat.at(0, c), alpha[c]);
  // next[0] = prev[t-1]*alpha[0]; next[j] = prev[j-1] + prev[t-1]*alpha[j]
  for (std::size_t r = 1; r < 4; ++r) {
    EXPECT_EQ(mat.at(r, 0), m.mul(mat.at(r - 1, 3), alpha[0]));
    for (std::size_t j = 1; j < 4; ++j) {
      EXPECT_EQ(mat.at(r, j),
                m.add(mat.at(r - 1, j - 1), m.mul(mat.at(r - 1, 3), alpha[j])));
    }
  }
}

class MatrixInvertibility : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatrixInvertibility, SequentialMatricesAreInvertible) {
  // Property claimed by the construction (paper §II-C / PHOTON, LED):
  // matrices generated from XOF-sampled first rows are invertible.
  const auto params = pasta4();
  mod::Modulus m(params.p);
  FieldSampler s(params, GetParam(), 0);
  for (int trial = 0; trial < 8; ++trial) {
    auto alpha = s.next_vector(/*allow_zero=*/false);
    EXPECT_TRUE(is_invertible(m, sequential_matrix(m, alpha)))
        << "nonce=" << GetParam() << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Nonces, MatrixInvertibility,
                         ::testing::Values(0, 1, 2, 17, 1000, 99999));

TEST(Matrix, MatVec) {
  mod::Modulus m(17);
  Matrix mat(2, 2);
  mat.at(0, 0) = 1;
  mat.at(0, 1) = 2;
  mat.at(1, 0) = 3;
  mat.at(1, 1) = 4;
  auto y = mat_vec(m, mat, {5, 6});
  EXPECT_EQ(y[0], 0u);  // 5 + 12 = 17 = 0
  EXPECT_EQ(y[1], (15 + 24) % 17);
}

TEST(Matrix, SingularDetected) {
  mod::Modulus m(17);
  Matrix mat(2, 2);
  mat.at(0, 0) = 1;
  mat.at(0, 1) = 2;
  mat.at(1, 0) = 2;
  mat.at(1, 1) = 4;
  EXPECT_FALSE(is_invertible(m, mat));
}

TEST(Layers, MixIsInvertibleAndMatchesDefinition) {
  mod::Modulus m(65537);
  Block l{1, 2, 3}, r{10, 20, 30};
  Block l0 = l, r0 = r;
  mix(m, l, r);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(l[i], m.add(m.mul(2, l0[i]), r0[i]));
    EXPECT_EQ(r[i], m.add(l0[i], m.mul(2, r0[i])));
  }
  // Invert: det of [[2,1],[1,2]] = 3; inverse = 3^-1 * [[2,-1],[-1,2]].
  const auto inv3 = m.inv(3);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto li = m.mul(inv3, m.sub(m.mul(2, l[i]), r[i]));
    const auto ri = m.mul(inv3, m.sub(m.mul(2, r[i]), l[i]));
    EXPECT_EQ(li, l0[i]);
    EXPECT_EQ(ri, r0[i]);
  }
}

TEST(Layers, FeistelSboxIsInvertible) {
  mod::Modulus m(65537);
  Xoshiro256 rng(4);
  Block x(32);
  for (auto& v : x) v = rng.below(65537);
  Block y = x;
  sbox_feistel(m, y);
  EXPECT_EQ(y[0], x[0]);
  // Invert: forward pass from the low index down.
  Block z = y;
  for (std::size_t j = 1; j < z.size(); ++j) {
    z[j] = m.sub(z[j], m.mul(z[j - 1], z[j - 1]));
  }
  EXPECT_EQ(z, x);
}

TEST(Layers, CubeSboxIsPermutation) {
  // x^3 is a bijection on F_p iff gcd(3, p-1) = 1; 65537-1 = 2^16. Check by
  // inverting with the exponent d = 3^-1 mod (p-1).
  mod::Modulus m(65537);
  const std::uint64_t d = [] {
    // 3d ≡ 1 (mod 65536)
    std::uint64_t d_val = 1;
    while ((3 * d_val) % 65536 != 1) ++d_val;
    return d_val;
  }();
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) {
    Block x{rng.below(65537)};
    Block y = x;
    sbox_cube(m, y);
    EXPECT_EQ(m.pow(y[0], d), x[0]);
  }
}

TEST(Layers, AffineMatchesMatVecPlusRc) {
  mod::Modulus m(65537);
  Xoshiro256 rng(6);
  std::vector<std::uint64_t> alpha(16), rc(16);
  Block x(16);
  for (auto& a : alpha) a = 1 + rng.below(65536);
  for (auto& a : rc) a = rng.below(65537);
  for (auto& a : x) a = rng.below(65537);
  const auto y = affine(m, alpha, rc, x);
  const auto expect = mat_vec(m, sequential_matrix(m, alpha), x);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(y[i], m.add(expect[i], rc[i]));
}

TEST(Cipher, KeySizeValidated) {
  const auto params = pasta4();
  EXPECT_THROW(PastaCipher(params, std::vector<std::uint64_t>(10, 1)),
               poe::Error);
  std::vector<std::uint64_t> bad(params.key_size(), 0);
  bad[0] = params.p;  // out of range
  EXPECT_THROW(PastaCipher(params, bad), poe::Error);
}

class CipherRoundtrip
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(CipherRoundtrip, DecryptInvertsEncrypt) {
  const auto [variant, omega] = GetParam();
  const auto params =
      variant == 3 ? pasta3(pasta_prime(omega)) : pasta4(pasta_prime(omega));
  Xoshiro256 rng(99 + variant + omega);
  PastaCipher cipher(params, PastaCipher::random_key(params, rng));

  std::vector<std::uint64_t> msg(params.t * 2 + 5);  // partial last block
  for (auto& v : msg) v = rng.below(params.p);

  const auto ct = cipher.encrypt(msg, /*nonce=*/123456);
  EXPECT_EQ(ct.size(), msg.size());
  EXPECT_NE(ct, msg);
  EXPECT_EQ(cipher.decrypt(ct, 123456), msg);
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndPrimes, CipherRoundtrip,
    ::testing::Combine(::testing::Values(3, 4),
                       ::testing::Values(17u, 33u, 54u, 60u)));

TEST(Cipher, KeystreamDependsOnNonceCounterAndKey) {
  const auto params = pasta4();
  Xoshiro256 rng(7);
  PastaCipher a(params, PastaCipher::random_key(params, rng));
  PastaCipher b(params, PastaCipher::random_key(params, rng));
  EXPECT_NE(a.keystream(1, 0), a.keystream(1, 1));
  EXPECT_NE(a.keystream(1, 0), a.keystream(2, 0));
  EXPECT_NE(a.keystream(1, 0), b.keystream(1, 0));
  EXPECT_EQ(a.keystream(1, 0), a.keystream(1, 0));
}

TEST(Cipher, KeystreamElementsInField) {
  for (const auto& params : {pasta3(), pasta4()}) {
    Xoshiro256 rng(8);
    PastaCipher c(params, PastaCipher::random_key(params, rng));
    const auto ks = c.keystream(5, 6);
    EXPECT_EQ(ks.size(), params.t);
    EXPECT_TRUE(std::all_of(ks.begin(), ks.end(),
                            [&](std::uint64_t v) { return v < params.p; }));
  }
}

TEST(Cipher, XofConsumptionMatchesSpec) {
  // §III-A: PASTA-3 draws 2048 elements, PASTA-4 640 per block.
  for (const auto& params : {pasta3(), pasta4()}) {
    Xoshiro256 rng(9);
    PastaCipher c(params, PastaCipher::random_key(params, rng));
    SamplerStats st;
    c.keystream(7, 0, &st);
    EXPECT_EQ(st.words_drawn - st.words_rejected,
              params.xof_elements_per_block());
  }
}

TEST(Cipher, KeccakPermutationCountNearPaperEstimate) {
  // §IV-B: ≈60 permutations per PASTA-4 block, ≈186–195 per PASTA-3 block.
  Xoshiro256 rng(10);
  {
    const auto params = pasta4();
    PastaCipher c(params, PastaCipher::random_key(params, rng));
    SamplerStats st;
    c.keystream(0, 0, &st);
    EXPECT_GE(st.permutations, 55u);
    EXPECT_LE(st.permutations, 68u);
  }
  {
    const auto params = pasta3();
    PastaCipher c(params, PastaCipher::random_key(params, rng));
    SamplerStats st;
    c.keystream(0, 0, &st);
    EXPECT_GE(st.permutations, 180u);
    EXPECT_LE(st.permutations, 210u);
  }
}

TEST(Cipher, EncryptRejectsOutOfRangeMessage) {
  const auto params = pasta4();
  Xoshiro256 rng(11);
  PastaCipher c(params, PastaCipher::random_key(params, rng));
  std::vector<std::uint64_t> msg{params.p};
  EXPECT_THROW(c.encrypt(msg, 0), poe::Error);
}

TEST(Cipher, DeriveBlockRandomnessMatchesKeystreamPath) {
  // Recomputing the keystream from the derived public randomness must give
  // the same result as the cipher's own keystream — this is the property the
  // HHE server relies on.
  const auto params = pasta4();
  Xoshiro256 rng(12);
  PastaCipher c(params, PastaCipher::random_key(params, rng));
  const std::uint64_t nonce = 777, ctr = 3;

  const auto rnd = derive_block_randomness(params, nonce, ctr);
  ASSERT_EQ(rnd.layers.size(), params.affine_layers());

  mod::Modulus m(params.p);
  Block l(c.key().begin(), c.key().begin() + static_cast<long>(params.t));
  Block r(c.key().begin() + static_cast<long>(params.t), c.key().end());
  for (std::size_t round = 0; round < params.rounds; ++round) {
    const auto& d = rnd.layers[round];
    l = affine(m, d.alpha_l, d.rc_l, l);
    r = affine(m, d.alpha_r, d.rc_r, r);
    mix(m, l, r);
    if (round == params.rounds - 1) {
      sbox_cube(m, l);
      sbox_cube(m, r);
    } else {
      sbox_feistel(m, l);
      sbox_feistel(m, r);
    }
  }
  const auto& fin = rnd.layers.back();
  l = affine(m, fin.alpha_l, fin.rc_l, l);
  r = affine(m, fin.alpha_r, fin.rc_r, r);
  mix(m, l, r);

  EXPECT_EQ(l, c.keystream(nonce, ctr));
}

class SerializeRoundtrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(SerializeRoundtrip, PackUnpackIsIdentity) {
  const auto params = pasta4(pasta_prime(GetParam()));
  Xoshiro256 rng(31 + GetParam());
  std::vector<std::uint64_t> elems(77);
  for (auto& e : elems) e = rng.below(params.p);
  const auto bytes = pack_elements(params, elems);
  EXPECT_EQ(bytes.size(),
            (elems.size() * params.prime_bits() + 7) / 8);
  EXPECT_EQ(unpack_elements(params, bytes, elems.size()), elems);
}

INSTANTIATE_TEST_SUITE_P(Primes, SerializeRoundtrip,
                         ::testing::Values(17u, 33u, 54u, 60u));

TEST(Serialize, MatchesPaperWireSizes) {
  // §V: 32 elements at w=33 -> 132 bytes, exactly.
  const auto params = pasta4(pasta_prime(33));
  std::vector<std::uint64_t> block(32, 12345);
  EXPECT_EQ(pack_elements(params, block).size(), 132u);
  EXPECT_EQ(pack_elements(params, block).size(),
            ciphertext_bytes(params, 32));
}

TEST(Serialize, BoundaryValuesAndErrors) {
  const auto params = pasta4();
  std::vector<std::uint64_t> edge{0, params.p - 1, 1};
  EXPECT_EQ(unpack_elements(params, pack_elements(params, edge), 3), edge);

  std::vector<std::uint64_t> bad{params.p};
  EXPECT_THROW(pack_elements(params, bad), poe::Error);
  std::vector<std::uint8_t> short_buf(1);
  EXPECT_THROW(unpack_elements(params, short_buf, 5), poe::Error);
  // Out-of-range decoded element (all-ones bits >= p for the 17-bit prime).
  std::vector<std::uint8_t> ones(3, 0xFF);
  EXPECT_THROW(unpack_elements(params, ones, 1), poe::Error);
}

TEST(Serialize, TruncatedBuffersAlwaysThrow) {
  // Any buffer shorter than ceil(count * bits / 8) must be rejected up
  // front — the unpack loop must never index past the span.
  const auto params = pasta4();
  Xoshiro256 rng(101);
  for (std::size_t len = 1; len <= 40; ++len) {
    std::vector<std::uint64_t> elems(len);
    for (auto& e : elems) e = rng.below(params.p);
    const auto bytes = pack_elements(params, elems);
    for (const std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                                  std::size_t{0}}) {
      std::span<const std::uint8_t> truncated(bytes.data(), cut);
      EXPECT_THROW(unpack_elements(params, truncated, len), poe::Error)
          << "len=" << len << " cut=" << cut;
    }
  }
}

TEST(Serialize, HugeCountOverflowRejected) {
  // count * bits used to be computed in size_t and could wrap, silencing
  // the bounds check and reading out of bounds. Adversarial counts must
  // throw, never allocate or read.
  const auto params = pasta4();
  const std::vector<std::uint8_t> buf(64, 0);
  const std::size_t max = std::numeric_limits<std::size_t>::max();
  for (const std::size_t count :
       {max, max / 2, max / params.prime_bits(),
        max / params.prime_bits() + 1}) {
    EXPECT_THROW(unpack_elements(params, buf, count), poe::Error)
        << "count=" << count;
  }
}

TEST(Serialize, CorruptionFuzzNeverCrashes) {
  // Bit-flip fuzz: a corrupted wire buffer must either decode to in-field
  // elements or throw — never crash or read out of bounds (this test is
  // part of the ASan CI job).
  const auto params = pasta4();
  Xoshiro256 rng(202);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t len = 1 + rng.below(50);
    std::vector<std::uint64_t> elems(len);
    for (auto& e : elems) e = rng.below(params.p);
    auto bytes = pack_elements(params, elems);
    const std::size_t bit = rng.below(bytes.size() * 8);
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    try {
      const auto decoded = unpack_elements(params, bytes, len);
      ASSERT_EQ(decoded.size(), len);
      for (const auto v : decoded) ASSERT_LT(v, params.p);
    } catch (const poe::Error&) {
      // Rejected corrupt input: also acceptable.
    }
    // Random truncation on top of the corruption.
    const std::size_t cut = rng.below(bytes.size() + 1);
    std::span<const std::uint8_t> truncated(bytes.data(), cut);
    const std::size_t need =
        (len * params.prime_bits() + 7) / 8;
    if (cut < need) {
      EXPECT_THROW(unpack_elements(params, truncated, len), poe::Error);
    }
  }
}

TEST(Serialize, EncryptedWireFormatEndToEnd) {
  // Client packs the ciphertext for the 5G uplink; receiver unpacks and the
  // keyholder decrypts.
  const auto params = pasta4();
  Xoshiro256 rng(33);
  PastaCipher cipher(params, PastaCipher::random_key(params, rng));
  std::vector<std::uint64_t> msg(params.t);
  for (auto& m : msg) m = rng.below(params.p);
  const auto ct = cipher.encrypt(msg, 8);
  const auto wire = pack_elements(params, ct);
  const auto back = unpack_elements(params, wire, ct.size());
  EXPECT_EQ(cipher.decrypt(back, 8), msg);
}

TEST(Cipher, GoldenKeystreamRegression) {
  // Pinned keystream values (fixed key 0,1,2,..., nonce, counter) so any
  // accidental semantic change to the cipher, sampler or XOF ordering is
  // caught immediately. Regenerate deliberately if the spec interpretation
  // changes (documented in DESIGN.md §3).
  struct Golden {
    int variant;
    unsigned omega;
    std::uint64_t ks[4];
  };
  const Golden golden[] = {
      {3, 17, {6778, 59514, 3089, 32776}},
      {3, 33, {6022595011ull, 890059286ull, 3575282425ull, 7728061396ull}},
      {3, 60,
       {177495148443476874ull, 338892686987554798ull,
        1000857409194166814ull, 638625025920480806ull}},
      {4, 17, {60605, 57855, 4271, 16889}},
      {4, 33, {4393672191ull, 2390200284ull, 4236091650ull, 362362165ull}},
      {4, 60,
       {498381833881865227ull, 277009089871339963ull, 569765844131856748ull,
        152722855314799079ull}},
  };
  for (const auto& g : golden) {
    const auto params = g.variant == 3 ? pasta3(pasta_prime(g.omega))
                                       : pasta4(pasta_prime(g.omega));
    std::vector<std::uint64_t> key(params.key_size());
    for (std::size_t i = 0; i < key.size(); ++i) key[i] = i % params.p;
    PastaCipher c(params, key);
    const auto ks = c.keystream(0x0123456789ABCDEFull, 42);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(ks[i], g.ks[i])
          << "PASTA-" << g.variant << " w=" << g.omega << " elem " << i;
    }
  }
}

TEST(Cipher, KeystreamAvalanche) {
  // Flipping one key element changes roughly all keystream elements —
  // distinct keys never share visible structure.
  const auto params = pasta4();
  Xoshiro256 rng(34);
  auto key = PastaCipher::random_key(params, rng);
  PastaCipher a(params, key);
  key[10] = (key[10] + 1) % params.p;
  PastaCipher b(params, key);
  const auto ka = a.keystream(3, 0);
  const auto kb = b.keystream(3, 0);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < params.t; ++i) {
    if (ka[i] != kb[i]) ++diff;
  }
  EXPECT_GE(diff, params.t - 1);
}

TEST(Cipher, CiphertextBytesModel) {
  // §V: one PASTA block of 32 elements at 33-bit prime = 132 bytes.
  EXPECT_EQ(ciphertext_bytes(pasta4(pasta_prime(33)), 32), 132u);
  // 17-bit prime: 32 * 17 bits = 544 bits = 68 bytes.
  EXPECT_EQ(ciphertext_bytes(pasta4(), 32), 68u);
}

}  // namespace
}  // namespace poe::pasta
