#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fhe/bgv.hpp"
#include "fhe/encoding.hpp"
#include "fhe/galois.hpp"
#include "fhe/noise.hpp"
#include "fhe/ntt.hpp"
#include "fhe/serialize.hpp"
#include "modular/primes.hpp"

namespace poe::fhe {
namespace {

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t bound,
                                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.below(bound);
  return v;
}

// Schoolbook negacyclic convolution for cross-checking the NTT.
std::vector<std::uint64_t> negacyclic_schoolbook(
    const std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b,
    std::uint64_t q) {
  const std::size_t n = a.size();
  mod::Modulus m(q);
  std::vector<std::uint64_t> out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t prod = m.mul(a[i], b[j]);
      const std::size_t k = i + j;
      if (k < n) {
        out[k] = m.add(out[k], prod);
      } else {
        out[k - n] = m.sub(out[k - n], prod);
      }
    }
  }
  return out;
}

TEST(Ntt, ForwardInverseRoundtrip) {
  const std::uint64_t q = mod::ntt_prime_chain(1, 40, 256)[0];
  Ntt ntt(q, 256);
  auto a = random_values(256, q, 1);
  auto b = a;
  ntt.forward(b);
  EXPECT_NE(a, b);
  ntt.inverse(b);
  EXPECT_EQ(a, b);
}

TEST(Ntt, MultiplyMatchesSchoolbook) {
  const std::uint64_t q = mod::ntt_prime_chain(1, 40, 64)[0];
  Ntt ntt(q, 64);
  auto a = random_values(64, q, 2);
  auto b = random_values(64, q, 3);
  EXPECT_EQ(ntt.multiply(a, b), negacyclic_schoolbook(a, b, q));
}

TEST(Ntt, NegacyclicWraparound) {
  // x * x^{n-1} = x^n = -1 in Z_q[X]/(X^n+1).
  const std::uint64_t q = mod::ntt_prime_chain(1, 40, 32)[0];
  Ntt ntt(q, 32);
  std::vector<std::uint64_t> x(32, 0), xn1(32, 0);
  x[1] = 1;
  xn1[31] = 1;
  const auto prod = ntt.multiply(x, xn1);
  EXPECT_EQ(prod[0], q - 1);
  for (std::size_t i = 1; i < 32; ++i) EXPECT_EQ(prod[i], 0u);
}

TEST(Ntt, RejectsBadParameters) {
  EXPECT_THROW(Ntt(65537, 48), poe::Error);       // not a power of two
  EXPECT_THROW(Ntt(65539, 1024), poe::Error);     // 2n does not divide q-1
}

TEST(Context, CrtPrecomputationsConsistent) {
  const auto primes = mod::ntt_prime_chain(3, 40, 64);
  RnsContext ctx(64, 65537, primes);
  for (std::size_t lvl = 1; lvl <= 3; ++lvl) {
    const auto& d = ctx.level(lvl);
    for (std::size_t j = 0; j < lvl; ++j) {
      // (q/q_j) * q_hat_inv_j == 1 (mod q_j)
      const auto hat_mod = d.q_hat[j].mod_u64(primes[j]);
      EXPECT_EQ(ctx.mod(j).mul(hat_mod, d.q_hat_inv[j]), 1u);
      // q_hat[j] * q_j == q
      UBig check = d.q_hat[j];
      check.mul_u64(primes[j]);
      EXPECT_TRUE(check == d.q);
    }
  }
}

TEST(Context, RejectsBadBases) {
  EXPECT_THROW(RnsContext(64, 65537, {}), poe::Error);
  EXPECT_THROW(RnsContext(64, 65537, {65537}), poe::Error);  // q == t
  const auto p = mod::ntt_prime_chain(1, 40, 64)[0];
  EXPECT_THROW(RnsContext(64, 65537, std::vector<std::uint64_t>{p, p}),
               poe::Error);  // duplicate
}

class BgvToy : public ::testing::Test {
 protected:
  BgvToy() : bgv_(BgvParams::toy()), encoder_(bgv_.params().n, bgv_.params().t) {}
  Bgv bgv_;
  BatchEncoder encoder_;
};

TEST_F(BgvToy, EncryptDecryptRoundtrip) {
  const auto values = random_values(bgv_.params().n, bgv_.params().t, 4);
  const auto ct = bgv_.encrypt(encoder_.encode(values));
  EXPECT_GT(bgv_.noise_budget_bits(ct), 20.0);
  EXPECT_EQ(encoder_.decode(bgv_.decrypt(ct)), values);
}

TEST_F(BgvToy, ZeroAndConstantPlaintexts) {
  Plaintext zero;
  zero.coeffs.assign(bgv_.params().n, 0);
  EXPECT_EQ(bgv_.decrypt(bgv_.encrypt(zero)).coeffs, zero.coeffs);

  Plaintext constant;
  constant.coeffs.assign(bgv_.params().n, 0);
  constant.coeffs[0] = 12345;
  EXPECT_EQ(bgv_.decrypt(bgv_.encrypt(constant)).coeffs, constant.coeffs);
}

TEST_F(BgvToy, HomomorphicAddSub) {
  const std::uint64_t t = bgv_.params().t;
  const auto a = random_values(16, t, 5);
  const auto b = random_values(16, t, 6);
  auto ca = bgv_.encrypt(encoder_.encode(a));
  const auto cb = bgv_.encrypt(encoder_.encode(b));
  bgv_.add_inplace(ca, cb);
  auto sum = encoder_.decode(bgv_.decrypt(ca));
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(sum[i], (a[i] + b[i]) % t);

  bgv_.sub_inplace(ca, cb);
  sum = encoder_.decode(bgv_.decrypt(ca));
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(sum[i], a[i]);
}

TEST_F(BgvToy, PlainOperations) {
  const std::uint64_t t = bgv_.params().t;
  const auto a = random_values(16, t, 7);
  const auto b = random_values(16, t, 8);
  auto ct = bgv_.encrypt(encoder_.encode(a));

  bgv_.add_plain_inplace(ct, encoder_.encode(b));
  auto got = encoder_.decode(bgv_.decrypt(ct));
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(got[i], (a[i] + b[i]) % t);

  bgv_.sub_plain_inplace(ct, encoder_.encode(b));
  bgv_.mul_plain_inplace(ct, encoder_.encode(b));
  got = encoder_.decode(bgv_.decrypt(ct));
  mod::Modulus mt(t);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(got[i], mt.mul(a[i], b[i]));
}

TEST_F(BgvToy, ScalarOperations) {
  const std::uint64_t t = bgv_.params().t;
  mod::Modulus mt(t);
  const auto a = random_values(16, t, 9);
  auto ct = bgv_.encrypt(encoder_.encode(a));
  bgv_.mul_scalar_inplace(ct, 12321);
  bgv_.add_scalar_inplace(ct, 777);
  // add_scalar adds the constant polynomial, which is the constant in every
  // slot; mul_scalar scales every slot.
  const auto got = encoder_.decode(bgv_.decrypt(ct));
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(got[i], mt.add(mt.mul(a[i], 12321), 777));
  }
}

TEST_F(BgvToy, MultiplyRelinearizeDecrypt) {
  const std::uint64_t t = bgv_.params().t;
  mod::Modulus mt(t);
  const auto a = random_values(16, t, 10);
  const auto b = random_values(16, t, 11);
  const auto ca = bgv_.encrypt(encoder_.encode(a));
  const auto cb = bgv_.encrypt(encoder_.encode(b));

  // Decryption of the raw 3-part tensor also works (uses s^2).
  auto tensor = bgv_.multiply(ca, cb);
  EXPECT_EQ(tensor.size(), 3u);
  auto got = encoder_.decode(bgv_.decrypt(tensor));
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(got[i], mt.mul(a[i], b[i]));

  // Relinearised + mod-switched product.
  const auto prod = bgv_.multiply_relin(ca, cb);
  EXPECT_EQ(prod.size(), 2u);
  EXPECT_EQ(prod.level, bgv_.top_level() - 1);
  EXPECT_GT(bgv_.noise_budget_bits(prod), 0.0);
  got = encoder_.decode(bgv_.decrypt(prod));
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(got[i], mt.mul(a[i], b[i]));
}

TEST_F(BgvToy, ModSwitchPreservesPlaintext) {
  const auto values = random_values(bgv_.params().n, bgv_.params().t, 12);
  auto ct = bgv_.encrypt(encoder_.encode(values));
  while (ct.level > 1) {
    bgv_.mod_switch_inplace(ct);
    EXPECT_EQ(encoder_.decode(bgv_.decrypt(ct)), values);
  }
  EXPECT_THROW(bgv_.mod_switch_inplace(ct), poe::Error);
}

TEST_F(BgvToy, MatchLevels) {
  const auto a = random_values(8, bgv_.params().t, 13);
  auto ca = bgv_.encrypt(encoder_.encode(a));
  auto cb = bgv_.encrypt(encoder_.encode(a));
  bgv_.mod_switch_inplace(ca);
  EXPECT_THROW(bgv_.add_inplace(ca, cb), poe::Error);
  bgv_.match_levels(ca, cb);
  EXPECT_EQ(ca.level, cb.level);
  bgv_.add_inplace(ca, cb);
  const auto got = encoder_.decode(bgv_.decrypt(ca));
  mod::Modulus mt(bgv_.params().t);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(got[i], mt.add(a[i], a[i]));
}

TEST_F(BgvToy, NoiseBudgetDecreasesWithWork) {
  const auto a = random_values(8, bgv_.params().t, 14);
  auto ct = bgv_.encrypt(encoder_.encode(a));
  const double fresh = bgv_.noise_budget_bits(ct);
  bgv_.mul_scalar_inplace(ct, 65000);
  const double after_scalar = bgv_.noise_budget_bits(ct);
  EXPECT_LT(after_scalar, fresh);
  const auto prod = bgv_.multiply_relin(ct, ct);
  EXPECT_LT(bgv_.noise_budget_bits(prod), after_scalar);
}

TEST_F(BgvToy, SupportsDepthTwo) {
  // toy parameters must supply two multiplicative levels (the unit of work
  // in the PASTA circuit between switches).
  mod::Modulus mt(bgv_.params().t);
  const auto a = random_values(4, bgv_.params().t, 15);
  auto ct = bgv_.encrypt(encoder_.encode(a));
  auto sq = bgv_.multiply_relin(ct, ct);
  const auto got = encoder_.decode(bgv_.decrypt(sq));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(got[i], mt.mul(a[i], a[i]));
  }
  EXPECT_GT(bgv_.noise_budget_bits(sq), 0.0);
}

TEST(BgvPresets, DemoParametersSupportTheCircuitDepth) {
  // The public demo() preset (n = 4096) must encrypt, square twice with
  // relinearisation + switching, and still decrypt.
  Bgv bgv(BgvParams::demo());
  BatchEncoder enc(bgv.params().n, bgv.params().t);
  mod::Modulus mt(bgv.params().t);
  const auto values = random_values(32, bgv.params().t, 50);
  auto ct = bgv.encrypt(enc.encode(values));
  ct = bgv.multiply_relin(ct, ct);
  bgv.mod_switch_inplace(ct);
  ct = bgv.multiply_relin(ct, ct);
  EXPECT_GT(bgv.noise_budget_bits(ct), 0.0);
  const auto got = enc.decode(bgv.decrypt(ct));
  for (std::size_t i = 0; i < 32; ++i) {
    const auto sq = mt.mul(values[i], values[i]);
    EXPECT_EQ(got[i], mt.mul(sq, sq));
  }
}

TEST(BgvPresets, SecureParametersAreWellFormed) {
  // Constructing the n = 2^15 ring is too slow for the default suite; check
  // the preset's shape and that its prime chain exists.
  const auto p = BgvParams::secure();
  EXPECT_EQ(p.n, 32768u);
  EXPECT_EQ(p.t, 65537u);
  const auto chain =
      mod::bgv_prime_chain(p.num_primes, p.prime_bits, p.n, p.t);
  EXPECT_EQ(chain.size(), p.num_primes);
  for (const auto q : chain) {
    EXPECT_TRUE(mod::is_prime(q));
    EXPECT_EQ((q - 1) % (2 * p.n), 0u);
    EXPECT_EQ(q % p.t, 1u);
  }
}

TEST(BatchEncoder, EncodeDecodeRoundtrip) {
  BatchEncoder enc(1024, 65537);
  const auto values = random_values(1024, 65537, 16);
  EXPECT_EQ(enc.decode(enc.encode(values)), values);
}

TEST(BatchEncoder, ShortInputZeroFills) {
  BatchEncoder enc(64, 65537);
  const auto pt = enc.encode({1, 2, 3});
  const auto slots = enc.decode(pt);
  EXPECT_EQ(slots[0], 1u);
  EXPECT_EQ(slots[2], 3u);
  EXPECT_EQ(slots[63], 0u);
}

TEST(BatchEncoder, RejectsOutOfRange) {
  BatchEncoder enc(64, 65537);
  EXPECT_THROW(enc.encode({65537}), poe::Error);
  EXPECT_THROW(enc.encode(std::vector<std::uint64_t>(65, 0)), poe::Error);
}

TEST(Poly, SignedLiftAndScalar) {
  const auto primes = mod::ntt_prime_chain(2, 40, 16);
  RnsContext ctx(16, 65537, primes);
  std::vector<std::int64_t> coeffs(16, 0);
  coeffs[0] = -1;
  coeffs[1] = 2;
  auto p = RnsPoly::from_signed_coeffs(&ctx, 2, coeffs);
  EXPECT_EQ(p.rns(0)[0], primes[0] - 1);
  EXPECT_EQ(p.rns(1)[1], 2u);
  // (-1) * (t-1 == -1 centered) = +1
  p.mul_scalar_inplace(65536);
  EXPECT_EQ(p.rns(0)[0], 1u);
  EXPECT_EQ(p.rns(0)[1], primes[0] - 2);
}

TEST(SlotLayout, LogicalGridRoundtrip) {
  SlotLayout layout(64, 65537);
  EXPECT_EQ(layout.rows(), 2u);
  EXPECT_EQ(layout.cols(), 32u);
  // slot_index is a bijection.
  std::vector<bool> seen(64, false);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 32; ++c) {
      const auto idx = layout.slot_index(r, c);
      ASSERT_LT(idx, 64u);
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
  const auto logical = random_values(64, 65537, 20);
  EXPECT_EQ(layout.from_slots(layout.to_slots(logical)), logical);
}

TEST(SlotLayout, RotateReference) {
  SlotLayout layout(16, 65537);  // 2 x 8 grid
  std::vector<std::uint64_t> v(16);
  for (std::size_t i = 0; i < 16; ++i) v[i] = i;
  const auto r = layout.rotate_columns(v, 3);
  for (std::size_t row = 0; row < 2; ++row) {
    for (std::size_t col = 0; col < 8; ++col) {
      EXPECT_EQ(r[row * 8 + col], v[row * 8 + (col + 3) % 8]);
    }
  }
  // Negative steps wrap.
  EXPECT_EQ(layout.rotate_columns(v, -1), layout.rotate_columns(v, 7));
  // Full cycle is the identity.
  EXPECT_EQ(layout.rotate_columns(v, 8), v);
}

TEST(BgvRotation, MatchesSlotLayoutReference) {
  const auto params = BgvParams::toy();
  Bgv bgv(params);
  BatchEncoder encoder(params.n, params.t);
  SlotLayout layout(params.n, params.t);
  const auto keys = bgv.make_rotation_keys({1, 5, 100});

  const auto logical = random_values(params.n, params.t, 21);
  auto ct = bgv.encrypt(encoder.encode(layout.to_slots(logical)));

  for (long step : {1L, 5L, 100L}) {
    Ciphertext rotated = ct;
    bgv.rotate_columns_inplace(rotated, step, keys);
    EXPECT_GT(bgv.noise_budget_bits(rotated), 0.0) << "step " << step;
    const auto got =
        layout.from_slots(encoder.decode(bgv.decrypt(rotated)));
    EXPECT_EQ(got, layout.rotate_columns(logical, step)) << "step " << step;
  }
}

TEST(BgvRotation, ComposesAndSupportsLowerLevels) {
  const auto params = BgvParams::toy();
  Bgv bgv(params);
  BatchEncoder encoder(params.n, params.t);
  SlotLayout layout(params.n, params.t);
  const auto keys = bgv.make_rotation_keys({2, 3});

  const auto logical = random_values(params.n, params.t, 22);
  auto ct = bgv.encrypt(encoder.encode(layout.to_slots(logical)));
  bgv.mod_switch_inplace(ct);  // rotation keys restrict to lower levels
  bgv.rotate_columns_inplace(ct, 2, keys);
  bgv.rotate_columns_inplace(ct, 3, keys);
  const auto got = layout.from_slots(encoder.decode(bgv.decrypt(ct)));
  EXPECT_EQ(got, layout.rotate_columns(logical, 5));
}

TEST(BgvRotation, RowSwapMatchesReference) {
  const auto params = BgvParams::toy();
  Bgv bgv(params);
  BatchEncoder encoder(params.n, params.t);
  SlotLayout layout(params.n, params.t);
  const auto keys = bgv.make_rotation_keys({GaloisKeys::kRowSwap, 2});

  const auto logical = random_values(params.n, params.t, 24);
  auto ct = bgv.encrypt(encoder.encode(layout.to_slots(logical)));
  bgv.swap_rows_inplace(ct, keys);
  auto got = layout.from_slots(encoder.decode(bgv.decrypt(ct)));
  EXPECT_EQ(got, layout.swap_rows(logical));

  // Swap twice == identity; composes with column rotation.
  bgv.swap_rows_inplace(ct, keys);
  bgv.rotate_columns_inplace(ct, 2, keys);
  got = layout.from_slots(encoder.decode(bgv.decrypt(ct)));
  EXPECT_EQ(got, layout.rotate_columns(logical, 2));
}

TEST(BgvRotation, MissingKeyThrowsAndZeroIsNoop) {
  const auto params = BgvParams::toy();
  Bgv bgv(params);
  BatchEncoder encoder(params.n, params.t);
  const auto keys = bgv.make_rotation_keys({1});
  auto ct = bgv.encrypt(encoder.encode({1, 2, 3}));
  EXPECT_THROW(bgv.rotate_columns_inplace(ct, 2, keys), poe::Error);
  Ciphertext copy = ct;
  bgv.rotate_columns_inplace(copy, 0, keys);  // no-op, no key needed
  EXPECT_EQ(bgv.decrypt(copy).coeffs, bgv.decrypt(ct).coeffs);
}

TEST(Poly, AutomorphismIsRingHomomorphism) {
  // tau_g(f * h) == tau_g(f) * tau_g(h) in R_q.
  const auto primes = mod::ntt_prime_chain(1, 40, 32);
  RnsContext ctx(32, 65537, primes);
  Xoshiro256 rng(23);
  std::vector<std::int64_t> fc(32), hc(32);
  for (auto& x : fc) x = static_cast<std::int64_t>(rng.below(100));
  for (auto& x : hc) x = static_cast<std::int64_t>(rng.below(100));
  auto f = RnsPoly::from_signed_coeffs(&ctx, 1, fc);
  auto h = RnsPoly::from_signed_coeffs(&ctx, 1, hc);

  const std::uint64_t g = 3;
  // lhs: tau(f*h)
  RnsPoly prod = f;
  prod.to_ntt();
  RnsPoly hn = h;
  hn.to_ntt();
  prod.mul_inplace(hn);
  prod.from_ntt();
  RnsPoly lhs = prod.apply_automorphism(g);
  // rhs: tau(f)*tau(h)
  RnsPoly tf = f.apply_automorphism(g);
  RnsPoly th = h.apply_automorphism(g);
  tf.to_ntt();
  th.to_ntt();
  tf.mul_inplace(th);
  tf.from_ntt();
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(lhs.rns(0)[i], tf.rns(0)[i]);
  }
}

TEST(Poly, AutomorphismNttMatchesCoefficientPath) {
  // In NTT form tau_g is a pure slot permutation (X^i evaluates to psi-power
  // slots; tau_g permutes which power lands where), so forward-NTT followed
  // by apply_automorphism_ntt must be bit-identical to the coefficient-domain
  // automorphism followed by forward-NTT — for every odd Galois element, at
  // every level, in every RNS component.
  const std::size_t n = 64;
  const auto primes = mod::ntt_prime_chain(3, 40, n);
  RnsContext ctx(n, 65537, primes);
  Xoshiro256 rng(29);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t level = 1 + static_cast<std::size_t>(trial) % 3;
    const std::uint64_t g = 2 * rng.below(n) + 1;  // random odd elt of Z_2n
    std::vector<std::int64_t> c(n);
    for (auto& x : c) x = static_cast<std::int64_t>(rng.below(5000));
    const RnsPoly f = RnsPoly::from_signed_coeffs(&ctx, level, c);

    RnsPoly ref = f.apply_automorphism(g);
    ref.to_ntt();
    RnsPoly fn = f;
    fn.to_ntt();
    const RnsPoly got = fn.apply_automorphism_ntt(g);

    ASSERT_TRUE(got.is_ntt());
    for (std::size_t i = 0; i < level; ++i) {
      for (std::size_t idx = 0; idx < n; ++idx) {
        ASSERT_EQ(got.rns(i)[idx], ref.rns(i)[idx])
            << "g=" << g << " level=" << level << " component=" << i;
      }
    }
  }
}

TEST(Galois, EltForStepMatchesIteratedGenerator) {
  // galois_elt_for_step computes 3^step mod 2n by square-and-multiply; pin
  // it against the plain iterated product and the step normalisation rules.
  const std::size_t n = 256;
  std::uint64_t e = 1;
  for (long step = 0; step < static_cast<long>(n / 2); ++step) {
    EXPECT_EQ(galois_elt_for_step(n, step), e) << "step " << step;
    e = (e * 3) % (2 * n);
  }
  EXPECT_EQ(galois_elt_for_step(n, 0), 1u);
  EXPECT_EQ(galois_elt_for_step(n, -3),
            galois_elt_for_step(n, static_cast<long>(n / 2) - 3));
  EXPECT_EQ(galois_elt_for_step(n, static_cast<long>(n / 2) + 5),
            galois_elt_for_step(n, 5));
}

TEST(BgvRotation, HoistedMatchesReferenceWithZeroForwardNtts) {
  const auto params = BgvParams::toy();
  Bgv bgv(params);
  BatchEncoder encoder(params.n, params.t);
  SlotLayout layout(params.n, params.t);
  const auto keys = bgv.make_rotation_keys({1, 3, 7});

  const auto logical = random_values(params.n, params.t, 41);
  auto ct = bgv.encrypt(encoder.encode(layout.to_slots(logical)));
  const HoistedCt hoisted = bgv.hoist(ct);

  // All rotations are served from the one shared decomposition; none of
  // them may run a forward NTT — that is the point of hoisting.
  const auto before = bgv.rns().exec().snapshot();
  std::vector<Ciphertext> rotated;
  for (long step : {1L, 3L, 7L}) {
    rotated.push_back(bgv.rotate_hoisted(hoisted, step, keys));
  }
  const auto delta = bgv.rns().exec().snapshot() - before;
  EXPECT_EQ(delta.ntt_forward, 0u);
  EXPECT_EQ(delta.hoisted_rotations, 3u);
  EXPECT_EQ(delta.automorphisms, 3u);

  std::size_t i = 0;
  for (long step : {1L, 3L, 7L}) {
    EXPECT_GT(bgv.noise_budget_bits(rotated[i]), 0.0) << "step " << step;
    EXPECT_EQ(layout.from_slots(encoder.decode(bgv.decrypt(rotated[i]))),
              layout.rotate_columns(logical, step))
        << "step " << step;
    ++i;
  }

  // Hoisting works at lower levels too (keys restrict per level).
  bgv.mod_switch_inplace(ct);
  const HoistedCt lower = bgv.hoist(ct);
  const auto rot = bgv.rotate_hoisted(lower, 3, keys);
  EXPECT_EQ(layout.from_slots(encoder.decode(bgv.decrypt(rot))),
            layout.rotate_columns(logical, 3));
}

TEST(BgvRotation, HoistedRejectsZeroStepAndMissingKey) {
  const auto params = BgvParams::toy();
  Bgv bgv(params);
  BatchEncoder encoder(params.n, params.t);
  const auto keys = bgv.make_rotation_keys({1});
  const auto ct = bgv.encrypt(encoder.encode({1, 2, 3}));
  const HoistedCt hoisted = bgv.hoist(ct);
  EXPECT_THROW(bgv.rotate_hoisted(hoisted, 0, keys), poe::Error);
  EXPECT_THROW(bgv.rotate_hoisted(hoisted, 2, keys), poe::Error);
}

TEST(NoiseEstimator, BoundIsSoundOverRandomCircuits) {
  // Property: the static (no-secret-key) noise bound never claims more
  // budget than the true, secret-key-measured budget — and whenever it
  // claims positive budget, decryption is correct.
  const auto params = BgvParams::toy();
  Bgv bgv(params);
  BatchEncoder encoder(params.n, params.t);
  NoiseEstimator est(params);
  mod::Modulus mt(params.t);

  Xoshiro256 rng(40);
  for (int trial = 0; trial < 6; ++trial) {
    auto values = random_values(16, params.t, 41 + trial);
    values.resize(params.n, 0);
    auto expect = values;
    auto ct = bgv.encrypt(encoder.encode(values));
    double bound = est.fresh();

    for (int op = 0; op < 10; ++op) {
      switch (rng.below(5)) {
        case 0: {  // add ct
          bgv.add_inplace(ct, ct);
          bound = est.add(bound, bound);
          for (auto& v : expect) v = mt.add(v, v);
          break;
        }
        case 1: {  // scalar mul
          const std::uint64_t s = 1 + rng.below(1000);
          bgv.mul_scalar_inplace(ct, s);
          bound = est.mul_scalar(bound, s);
          for (auto& v : expect) v = mt.mul(v, s);
          break;
        }
        case 2: {  // add scalar
          bgv.add_scalar_inplace(ct, 7);
          bound = est.add_scalar(bound);
          for (auto& v : expect) v = mt.add(v, 7);
          break;
        }
        case 3: {  // square + relin, if depth remains
          if (ct.level < 2 ||
              est.budget(est.multiply(bound, bound), ct.level) < 10) break;
          ct = bgv.multiply_relin(ct, ct);
          bound = est.mod_switch(
              est.relinearize(est.multiply(bound, bound), ct.level + 1));
          for (auto& v : expect) v = mt.mul(v, v);
          break;
        }
        case 4: {  // mod switch
          if (ct.level < 2) break;
          bgv.mod_switch_inplace(ct);
          bound = est.mod_switch(bound);
          break;
        }
      }
      const double est_budget = est.budget(bound, ct.level);
      const double true_budget = bgv.noise_budget_bits(ct);
      EXPECT_LE(est_budget, true_budget + 0.5)
          << "trial " << trial << " op " << op << " level " << ct.level;
      if (est_budget > 0) {
        EXPECT_EQ(encoder.decode(bgv.decrypt(ct)), expect)
            << "trial " << trial << " op " << op;
      }
    }
  }
}

TEST(NoiseEstimator, MatchesObservedFreshAndSwitchBehaviour) {
  const auto params = BgvParams::toy();
  Bgv bgv(params);
  NoiseEstimator est(params);
  BatchEncoder encoder(params.n, params.t);
  auto ct = bgv.encrypt(encoder.encode({1, 2, 3}));
  // Fresh bound is conservative but within ~14 bits of measured.
  const double measured = bgv.noise_budget_bits(ct);
  const double estimated = est.budget(est.fresh(), ct.level);
  EXPECT_LE(estimated, measured);
  EXPECT_GT(estimated, measured - 14.0);
}

TEST(Serialize, CiphertextRoundtripAtEveryLevel) {
  const auto params = BgvParams::toy();
  Bgv bgv(params);
  BatchEncoder encoder(params.n, params.t);
  const auto values = random_values(params.n, params.t, 30);
  auto ct = bgv.encrypt(encoder.encode(values));
  for (;;) {
    const auto bytes = serialize_ciphertext(bgv.rns(), ct);
    EXPECT_EQ(bytes.size(),
              ciphertext_wire_bytes(bgv.rns(), ct.level, ct.size()));
    const auto back = deserialize_ciphertext(bgv.rns(), bytes);
    EXPECT_EQ(back.level, ct.level);
    EXPECT_EQ(encoder.decode(bgv.decrypt(back)), values);
    if (ct.level == 1) break;
    bgv.mod_switch_inplace(ct);
  }
}

TEST(Serialize, ThreePartCiphertext) {
  const auto params = BgvParams::toy();
  Bgv bgv(params);
  BatchEncoder encoder(params.n, params.t);
  const auto a = random_values(8, params.t, 31);
  const auto ca = bgv.encrypt(encoder.encode(a));
  const auto tensor = bgv.multiply(ca, ca);
  const auto bytes = serialize_ciphertext(bgv.rns(), tensor);
  const auto back = deserialize_ciphertext(bgv.rns(), bytes);
  EXPECT_EQ(back.size(), 3u);
  mod::Modulus mt(params.t);
  const auto got = encoder.decode(bgv.decrypt(back));
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(got[i], mt.mul(a[i], a[i]));
}

TEST(Serialize, RejectsCorruptStreams) {
  const auto params = BgvParams::toy();
  Bgv bgv(params);
  auto ct = bgv.encrypt(Plaintext{{1, 2, 3}});
  auto bytes = serialize_ciphertext(bgv.rns(), ct);
  // Bad magic.
  auto bad = bytes;
  bad[0] ^= 0xFF;
  EXPECT_THROW(deserialize_ciphertext(bgv.rns(), bad), poe::Error);
  // Truncated.
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(deserialize_ciphertext(bgv.rns(), bytes), poe::Error);
}

TEST(Serialize, WireSizeShrinksWithLevel) {
  const auto params = BgvParams::toy();
  Bgv bgv(params);
  const auto full = ciphertext_wire_bytes(bgv.rns(), params.num_primes, 2);
  const auto one = ciphertext_wire_bytes(bgv.rns(), 1, 2);
  EXPECT_GT(full, one * 2);
}

TEST(Poly, MoveAndPoolRoundtripBitIdentical) {
  const auto primes = mod::ntt_prime_chain(2, 40, 16);
  RnsContext ctx(16, 65537, primes);
  Xoshiro256 rng(42);
  RnsPoly a = RnsPoly::sample_uniform(&ctx, 2, rng, /*ntt_form=*/false);
  std::vector<std::uint64_t> want;
  for (std::size_t i = 0; i < 2; ++i) {
    want.insert(want.end(), a.rns(i).begin(), a.rns(i).end());
  }
  // A move re-seats the same slab (no copy, no pool traffic).
  const std::uint64_t* slab = a.rns(0).data();
  const CounterSnapshot before = ctx.exec().snapshot();
  RnsPoly b = std::move(a);
  EXPECT_EQ(b.rns(0).data(), slab);
  const CounterSnapshot after_move = ctx.exec().snapshot() - before;
  EXPECT_EQ(after_move.pool_hits + after_move.pool_misses, 0u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_EQ(b.rns(i)[j], want[i * 16 + j]);
    }
  }
  // Destroying the poly parks the slab; the next same-size construction gets
  // the recycled slab back with every word zeroed (no stale coefficients).
  b = RnsPoly();
  RnsPoly c(&ctx, 2, false);
  EXPECT_EQ(c.rns(0).data(), slab);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 16; ++j) EXPECT_EQ(c.rns(i)[j], 0u);
  }
}

TEST(Bgv, WarmedUpMultiplyRunsFromThePool) {
  // After one warm-up multiply has populated the pool's size classes, ten
  // more multiply+relinearise rounds should recycle slabs rather than touch
  // the allocator: the ISSUE's acceptance bar is a >90% hit rate.
  Bgv bgv(BgvParams::toy());
  BatchEncoder enc(bgv.params().n, bgv.params().t);
  const auto ct = bgv.encrypt(enc.encode({5, 6, 7}));
  (void)bgv.multiply_relin(ct, ct);
  const CounterSnapshot before = bgv.rns().exec().snapshot();
  for (int i = 0; i < 10; ++i) (void)bgv.multiply_relin(ct, ct);
  const CounterSnapshot delta = bgv.rns().exec().snapshot() - before;
  EXPECT_EQ(delta.ct_ct_mul, 10u);
  EXPECT_EQ(delta.key_switch, 10u);
  EXPECT_GT(delta.ntts(), 0u);
  EXPECT_GT(delta.pool_hits, 0u);
  EXPECT_GT(delta.pool_hit_rate(), 0.9);
}

TEST(BgvIngest, SwitchedCiphertextDecryptsUnderEvaluatorKey) {
  // Two evaluators over the SAME ring but different secrets: a ciphertext
  // encrypted by the tenant, switched on ingest, must decrypt under the
  // host's secret to the same plaintext — with noise to spare.
  const auto params = BgvParams::toy();
  auto tenant_params = params;
  tenant_params.seed = params.seed + 99;
  Bgv host(params), tenant(tenant_params);
  BatchEncoder encoder(params.n, params.t);

  const KswKey ingest_key = host.make_ingest_key(tenant);
  const auto values = random_values(params.n, params.t, 7);
  const auto ct = tenant.encrypt(encoder.encode(values));

  const Ciphertext switched = host.ingest_switch(ct, ingest_key);
  EXPECT_GT(host.noise_budget_bits(switched), 0.0);
  EXPECT_EQ(encoder.decode(host.decrypt(switched)), values);

  // Sanity: the secrets genuinely differ — the tenant reads its own
  // ciphertext fine (the host cannot even be handed `ct` directly: its
  // polynomials are bound to the tenant's context, which is the point of
  // the span-wise rebind inside ingest_switch).
  EXPECT_EQ(encoder.decode(tenant.decrypt(ct)), values);

  // The switched ciphertext is a first-class citizen of the host domain:
  // homomorphic ops on it still decrypt correctly.
  auto doubled = switched;
  host.add_inplace(doubled, switched);
  auto expect = values;
  for (auto& v : expect) v = (2 * v) % params.t;
  EXPECT_EQ(encoder.decode(host.decrypt(doubled)), expect);
}

TEST(BgvIngest, RejectsMismatchedRings) {
  const auto params = BgvParams::toy();
  Bgv host(params);
  auto other = params;
  other.num_primes = params.num_primes - 1;  // different modulus chain
  Bgv tenant(other);
  EXPECT_THROW((void)host.make_ingest_key(tenant), poe::Error);
}

TEST(Poly, RepresentationGuards) {
  const auto primes = mod::ntt_prime_chain(2, 40, 16);
  RnsContext ctx(16, 65537, primes);
  RnsPoly a(&ctx, 2, false), b(&ctx, 2, true);
  EXPECT_THROW(a.add_inplace(b), poe::Error);   // form mismatch
  EXPECT_THROW(a.mul_inplace(a), poe::Error);   // not NTT form
  RnsPoly c(&ctx, 1, false);
  EXPECT_THROW(a.add_inplace(c), poe::Error);   // level mismatch
  a.to_ntt();
  EXPECT_THROW(a.to_ntt(), poe::Error);
}

}  // namespace
}  // namespace poe::fhe
