// Unit + property tests for the wire layer (ctest label: tier1): the
// little-endian primitives, the frame codec (round-trip property, typed
// rejection of truncated/oversized/bad-magic/bad-CRC frames), the
// consistent-hash ring (determinism, balance, minimal disruption), the
// typed message codecs, and FrameChannel over a real loopback socket —
// including torn-frame detection and the injected `net.frame.torn` fault.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "net/frame.hpp"
#include "net/messages.hpp"
#include "net/ring.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace poe::net {
namespace {

using u64 = std::uint64_t;
using u8 = std::uint8_t;

TEST(Wire, PrimitivesRoundTrip) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.str("hello");
  w.blob(std::vector<u8>{1, 2, 3});
  const std::vector<u8> bytes = w.take();

  WireReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.str(), "hello");
  const auto blob = r.blob();
  EXPECT_EQ(std::vector<u8>(blob.begin(), blob.end()),
            (std::vector<u8>{1, 2, 3}));
  EXPECT_NO_THROW(r.expect_done("test"));
}

TEST(Wire, TruncatedReadsThrowTyped) {
  const std::vector<u8> three{1, 2, 3};
  EXPECT_THROW(WireReader(three).u32(), WireError);
  EXPECT_THROW(WireReader({}).u8(), WireError);
  // A length prefix claiming more bytes than the buffer holds must be
  // rejected before it can size an allocation.
  WireWriter w;
  w.u32(1u << 30);
  const std::vector<u8> lying = w.take();
  EXPECT_THROW(WireReader(lying).blob(), WireError);
  // Trailing undeclared bytes are protocol damage too.
  WireReader r(three);
  r.u8();
  EXPECT_THROW(r.expect_done("test"), WireError);
}

TEST(Wire, Crc32KnownVector) {
  // The standard IEEE check value for "123456789".
  const char* s = "123456789";
  EXPECT_EQ(crc32({reinterpret_cast<const u8*>(s), 9}), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Frame, RoundTripProperty) {
  Xoshiro256 rng(7);
  const MsgType types[] = {MsgType::kPing, MsgType::kOnboardKey,
                           MsgType::kProcessBatch, MsgType::kProcessResult,
                           MsgType::kShutdown};
  for (int iter = 0; iter < 200; ++iter) {
    const MsgType type = types[rng.below(5)];
    std::vector<u8> payload(rng.below(2048));
    for (auto& b : payload) b = static_cast<u8>(rng.next());
    const std::vector<u8> frame = encode_frame(type, payload);
    ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
    const Frame decoded = decode_frame(frame);
    EXPECT_EQ(decoded.type, type);
    EXPECT_EQ(decoded.payload, payload);
  }
}

TEST(Frame, RejectsDamageTyped) {
  const std::vector<u8> payload{10, 20, 30, 40};
  std::vector<u8> good = encode_frame(MsgType::kPing, payload);

  {  // bad magic
    auto f = good;
    f[0] ^= 0xFF;
    EXPECT_THROW(decode_frame(f), WireError);
  }
  {  // bad version
    auto f = good;
    f[4] = 0x7F;
    EXPECT_THROW(decode_frame(f), WireError);
  }
  {  // unknown type
    auto f = good;
    f[6] = 0xEE;
    f[7] = 0xEE;
    EXPECT_THROW(decode_frame(f), WireError);
  }
  {  // payload CRC mismatch
    auto f = good;
    f.back() ^= 0x01;
    EXPECT_THROW(decode_frame(f), WireError);
  }
  {  // truncated: every prefix of a valid frame must be rejected
    for (std::size_t n = 0; n < good.size(); ++n) {
      EXPECT_THROW(decode_frame(std::span(good).first(n)), WireError);
    }
  }
  {  // trailing garbage past the declared payload
    auto f = good;
    f.push_back(0);
    EXPECT_THROW(decode_frame(f), WireError);
  }
  {  // length field beyond the protocol bound — rejected at header parse,
     // BEFORE any payload-sized allocation could happen
    auto f = good;
    const std::uint32_t huge = kMaxFramePayload + 1;
    f[8] = static_cast<u8>(huge);
    f[9] = static_cast<u8>(huge >> 8);
    f[10] = static_cast<u8>(huge >> 16);
    f[11] = static_cast<u8>(huge >> 24);
    EXPECT_THROW(parse_frame_header(f), WireError);
  }
}

TEST(Ring, DeterministicAcrossInstances) {
  HashRing a(4), b(4);
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const u64 client = rng.next();
    EXPECT_EQ(a.owner(client), b.owner(client));
  }
}

TEST(Ring, ReasonablyBalanced) {
  HashRing ring(4);
  std::vector<std::size_t> share(4, 0);
  Xoshiro256 rng(13);
  const int kClients = 20000;
  for (int i = 0; i < kClients; ++i) ++share[ring.owner(rng.next())];
  for (std::size_t s = 0; s < 4; ++s) {
    // With 64 vnodes per shard, no shard should stray far from 25%.
    EXPECT_GT(share[s], kClients / 10) << "shard " << s;
    EXPECT_LT(share[s], kClients / 2) << "shard " << s;
  }
}

TEST(Ring, DeathMovesOnlyTheDeadShardsClients) {
  HashRing ring(4);
  Xoshiro256 rng(17);
  std::vector<u64> clients(2000);
  for (auto& c : clients) c = rng.next();
  std::vector<std::size_t> before;
  before.reserve(clients.size());
  for (const u64 c : clients) before.push_back(ring.owner(c));

  ring.mark_dead(2);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const std::size_t now = ring.owner(clients[i]);
    EXPECT_NE(now, 2u);
    if (before[i] != 2) {
      // The minimal-disruption property: only shard 2's clients moved.
      EXPECT_EQ(now, before[i]) << "client " << clients[i];
    }
  }
  // Revival restores the exact original placement (determinism again).
  ring.revive(2);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    EXPECT_EQ(ring.owner(clients[i]), before[i]);
  }
}

TEST(Ring, ThrowsWhenEveryShardIsDead) {
  HashRing ring(2);
  ring.mark_dead(0);
  EXPECT_EQ(ring.alive_count(), 1u);
  ring.mark_dead(1);
  EXPECT_THROW(ring.owner(42), poe::Error);
}

TEST(Messages, SmallCodecsRoundTrip) {
  {
    const OnboardKeyMsg m{77, {1, 2, 3, 4, 5}};
    const auto d = decode_onboard_key(encode_onboard_key(m));
    EXPECT_EQ(d.client_id, m.client_id);
    EXPECT_EQ(d.key_bytes, m.key_bytes);
  }
  {
    const AckMsg m{false, "nope"};
    const auto d = decode_ack(encode_ack(m));
    EXPECT_EQ(d.ok, m.ok);
    EXPECT_EQ(d.error, m.error);
  }
  {
    const auto d = decode_fetch_key(encode_fetch_key(FetchKeyMsg{99}));
    EXPECT_EQ(d.client_id, 99u);
  }
  {
    const KeyStateMsg m{true, {9, 8, 7}};
    const auto d = decode_key_state(encode_key_state(m));
    EXPECT_TRUE(d.found);
    EXPECT_EQ(d.key_bytes, m.key_bytes);
  }
}

TEST(Messages, ProcessBatchRoundTrip) {
  ProcessBatchMsg m;
  m.requests.push_back(
      service::TranscipherRequest{1, 100, {11, 22, 33, 44, 55}});
  m.requests.push_back(service::TranscipherRequest{2, 200, {66}});
  const auto d = decode_process_batch(encode_process_batch(m));
  ASSERT_EQ(d.requests.size(), 2u);
  EXPECT_EQ(d.requests[0].client_id, 1u);
  EXPECT_EQ(d.requests[0].nonce, 100u);
  EXPECT_EQ(d.requests[0].symmetric_ct, m.requests[0].symmetric_ct);
  EXPECT_EQ(d.requests[1].symmetric_ct, m.requests[1].symmetric_ct);
}

TEST(Messages, ProcessResultRoundTrip) {
  ProcessResultMsg m;
  m.cts = {{1, 2, 3}, {4, 5}};
  WireResult ok;
  ok.client_id = 1;
  ok.nonce = 100;
  ok.status = service::RequestStatus::kOk;
  ok.blocks = {WireBlockRef{0, 2, 8}, WireBlockRef{1, 0, 3}};
  WireResult bad;
  bad.client_id = 2;
  bad.nonce = 200;
  bad.status = service::RequestStatus::kNonceReplay;
  bad.error = "nonce replay";
  m.results = {ok, bad};
  m.session_updates = {{7, 7, 7}};
  m.report.requests = 2;
  m.report.blocks = 3;
  m.report.batches = 1;
  m.report.faults.ok = 1;
  m.report.faults.rejected = 1;
  m.stall_s = 2.5;

  const auto d = decode_process_result(encode_process_result(m));
  ASSERT_EQ(d.results.size(), 2u);
  EXPECT_EQ(d.cts, m.cts);
  EXPECT_EQ(d.results[0].blocks[0].ct_index, 0u);
  EXPECT_EQ(d.results[0].blocks[0].tile, 2u);
  EXPECT_EQ(d.results[0].blocks[0].len, 8u);
  EXPECT_EQ(d.results[1].status, service::RequestStatus::kNonceReplay);
  EXPECT_EQ(d.results[1].error, "nonce replay");
  EXPECT_EQ(d.session_updates, m.session_updates);
  EXPECT_EQ(d.report.requests, 2u);
  EXPECT_EQ(d.report.faults.ok, 1u);
  EXPECT_EQ(d.report.faults.rejected, 1u);
  EXPECT_EQ(d.stall_s, 2.5);
}

TEST(Messages, ProcessResultRejectsDanglingCtIndex) {
  ProcessResultMsg m;  // no cts at all
  WireResult res;
  res.blocks = {WireBlockRef{5, 0, 1}};
  m.results = {res};
  EXPECT_THROW(decode_process_result(encode_process_result(m)), WireError);
}

TEST(FrameChannel, LoopbackRoundTripAndCleanClose) {
  ListenSocket listen = ListenSocket::loopback();
  std::thread server([&] {
    FrameChannel ch(listen.accept());
    for (;;) {
      auto msg = ch.recv();
      if (!msg) return;  // clean close
      ch.send(MsgType::kPong, msg->payload);
    }
  });

  FrameChannel client(connect_loopback(listen.port()));
  Xoshiro256 rng(23);
  for (int i = 0; i < 10; ++i) {
    std::vector<u8> payload(rng.below(512) + 1);
    for (auto& b : payload) b = static_cast<u8>(rng.next());
    client.send(MsgType::kPing, payload);
    auto echo = client.recv();
    ASSERT_TRUE(echo.has_value());
    EXPECT_EQ(echo->type, MsgType::kPong);
    EXPECT_EQ(echo->payload, payload);
  }
  client.shutdown();
  server.join();
}

TEST(FrameChannel, TornFrameThrowsTyped) {
  ListenSocket listen = ListenSocket::loopback();
  std::thread peer([&] {
    // A peer that dies mid-frame: half the bytes, then gone.
    Socket sock = connect_loopback(listen.port());
    const std::vector<u8> frame =
        encode_frame(MsgType::kPing, std::vector<u8>(64, 0x5A));
    sock.send_all(std::span(frame).first(frame.size() / 2));
  });
  FrameChannel ch(listen.accept());
  EXPECT_THROW(ch.recv(), WireError);
  peer.join();
}

TEST(FrameChannel, InjectedTornFrameWrecksBothEnds) {
  ListenSocket listen = ListenSocket::loopback();
  ExecContext sender_exec;
  FaultInjector fi;
  fi.arm(FaultSpec{.site = "net.frame.torn", .kind = FaultClass::kForce});
  sender_exec.set_fault_injector(&fi);

  std::thread peer([&] {
    FrameChannel ch(connect_loopback(listen.port()), &sender_exec);
    EXPECT_THROW(ch.send(MsgType::kPing, std::vector<u8>(128, 1)), WireError);
  });
  FrameChannel receiver(listen.accept());
  EXPECT_THROW(receiver.recv(), WireError);
  peer.join();
  EXPECT_EQ(fi.fired(FaultClass::kForce), 1u);
}

TEST(FrameChannel, OversizedLengthFieldRejectedBeforePayload) {
  ListenSocket listen = ListenSocket::loopback();
  std::thread peer([&] {
    // A hostile header claiming a payload beyond the protocol bound; the
    // receiver must reject it from the header alone.
    Socket sock = connect_loopback(listen.port());
    WireWriter w;
    w.u32(kFrameMagic);
    w.u16(kFrameVersion);
    w.u16(static_cast<std::uint16_t>(MsgType::kPing));
    w.u32(kMaxFramePayload + 1);
    w.u32(0);
    sock.send_all(w.bytes());
  });
  FrameChannel ch(listen.accept());
  EXPECT_THROW(ch.recv(), WireError);
  peer.join();
}

}  // namespace
}  // namespace poe::net
