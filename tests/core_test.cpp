#include <gtest/gtest.h>

#include <cmath>

#include "analytics/scheme_space.hpp"
#include "core/poe.hpp"

namespace poe {
namespace {

TEST(CoreAccelerator, AllBackendsProduceIdenticalCiphertexts) {
  const auto params = pasta::pasta4();
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> msg(params.t + 9);
  for (auto& m : msg) m = rng.below(params.p);

  const auto ref = Accelerator::with_random_key(params, 2, Backend::kReference);
  const Accelerator sim(params, ref.key(), Backend::kCycleSim);
  const Accelerator soc(params, ref.key(), Backend::kSoc);

  const auto ct_ref = ref.encrypt(msg, 42);
  EXPECT_EQ(sim.encrypt(msg, 42), ct_ref);
  EXPECT_EQ(soc.encrypt(msg, 42), ct_ref);
  EXPECT_EQ(ref.decrypt(ct_ref, 42), msg);
  EXPECT_EQ(soc.decrypt(ct_ref, 42), msg);
}

TEST(CoreAccelerator, StatsReflectPlatformClocks) {
  const auto params = pasta::pasta4();
  auto accel = Accelerator::with_random_key(params, 3);
  std::vector<std::uint64_t> msg(params.t, 1);
  EncryptStats stats;
  accel.encrypt(msg, 7, &stats);
  EXPECT_EQ(stats.blocks, 1u);
  EXPECT_GT(stats.cycles, 1000u);
  // 75 MHz vs 1 GHz: the FPGA time is ~13.3x the ASIC time.
  EXPECT_NEAR(stats.fpga_us / stats.asic_us, 1000.0 / 75.0, 0.01);
}

TEST(CoreAccelerator, SocStatsIncludeDriverOverhead) {
  const auto params = pasta::pasta4();
  auto sim = Accelerator::with_random_key(params, 4, Backend::kCycleSim);
  const Accelerator soc(params, sim.key(), Backend::kSoc);
  std::vector<std::uint64_t> msg(params.t, 5);
  EncryptStats sim_stats, soc_stats;
  sim.encrypt(msg, 1, &sim_stats);
  soc.encrypt(msg, 1, &soc_stats);
  EXPECT_GT(soc_stats.cycles, sim_stats.cycles);
  EXPECT_GT(soc_stats.soc_us, 0.0);
}

TEST(CoreAccelerator, ReferenceBackendReportsNoCycles) {
  const auto params = pasta::pasta4();
  auto accel = Accelerator::with_random_key(params, 5, Backend::kReference);
  std::vector<std::uint64_t> msg(3, 1);
  EncryptStats stats;
  accel.encrypt(msg, 1, &stats);
  EXPECT_EQ(stats.cycles, 0u);
  EXPECT_EQ(stats.blocks, 1u);
}

TEST(PkeModel, PaperOperationCounts) {
  // §I-A: PKE client encryption ~2^19 multiplications; PASTA-3 ~2^18.
  analytics::PkeEncryptModel pke;
  EXPECT_NEAR(std::log2(static_cast<double>(pke.total_mults())), 19.0, 0.2);

  analytics::PastaCostModel p3{pasta::pasta3()};
  EXPECT_NEAR(std::log2(static_cast<double>(p3.affine_mults())), 18.0, 0.01);

  // "32x slower computation for data-intensive applications": encrypting
  // 2^12 elements.
  const double ratio =
      analytics::pasta_vs_pke_throughput_ratio(p3, pke, 1ull << 12);
  EXPECT_GT(ratio, 14.0);
  EXPECT_LT(ratio, 34.0);
}

TEST(PriorWorks, PerElementNormalisation) {
  for (const auto& w : analytics::table3_prior_works()) {
    EXPECT_GT(w.us_per_element(), 0.0);
    EXPECT_LT(w.us_per_element(), w.encrypt_us);
  }
  // Headline claim: ~97x over prior PKE client accelerators (RISE per
  // element vs this work on ASIC: 4.88 / 0.05).
  const auto& rise = analytics::table3_prior_works().back();
  EXPECT_EQ(rise.citation.find("[19]"), 0u);
  const double tw_asic_us_per_element = 1.59 / 32.0;
  EXPECT_NEAR(rise.us_per_element() / tw_asic_us_per_element, 98.0, 3.0);
}

TEST(PriorWorks, TechnologyNormalisation) {
  // Area similar to RISE post-normalisation (§IV-C ②): 0.24 mm^2 at 28nm
  // scaled to 12nm is the same order as RISE's 0.11 mm^2.
  const double tw_at_12 = analytics::normalize_area_mm2(0.24, 28, 12);
  EXPECT_GT(tw_at_12 / 0.11, 0.2);
  EXPECT_LT(tw_at_12 / 0.11, 5.0);
}

TEST(Fig8Model, RiseMatchesPaperAnchors) {
  analytics::RiseCommModel rise;
  // ~1.5 MB per ciphertext.
  EXPECT_NEAR(static_cast<double>(rise.ciphertext_bytes()) / 1e6, 1.6, 0.1);
  // One QQVGA frame per ciphertext... (the paper overpacks slightly: 19200
  // pixels vs 16384 slots; we model the honest 2 ciphertexts but check the
  // paper's 70 fps claim against the 1-ct reading).
  const double fps_1ct = analytics::kMaxBandwidthBps /
                         static_cast<double>(rise.ciphertext_bytes());
  EXPECT_NEAR(fps_1ct, 70.0, 5.0);
}

TEST(Fig8Model, ShapeOfFigure8) {
  analytics::RiseCommModel rise;
  // ASIC-paced encryption (1.59 us/block, Table II) — Fig. 8 compares
  // chips; the FPGA-paced variant is printed by the bench for reference.
  analytics::PastaCommModel tw{.params = pasta::pasta4(pasta::pasta_prime(33)),
                               .pixels_per_element = 1,
                               .encrypt_us_per_block = 1.59};
  // §V anchor: one 32-element block at omega=33 is 132 bytes.
  EXPECT_EQ(tw.frame_bytes(analytics::Resolution{"one-block", 32, 1}), 132u);

  const auto series = analytics::fig8_series(rise, tw);
  ASSERT_EQ(series.size(), 6u);
  for (const auto& p : series) {
    // This work sustains orders of magnitude more frames at every point.
    EXPECT_GT(p.ratio, 5.0) << p.resolution << " @ " << p.bandwidth_bps;
  }
  // RISE cannot sustain VGA at the minimum bandwidth (< 1 fps).
  const auto& vga_min = series.back();
  EXPECT_EQ(vga_min.resolution, "VGA");
  EXPECT_LT(vga_min.rise_fps, 1.0);
  EXPECT_GT(vga_min.this_work_fps, 1.0);
}

TEST(SchemeSpace, ProfilesAndEstimates) {
  const auto profiles = analytics::scheme_profiles();
  ASSERT_GE(profiles.size(), 5u);
  // PASTA entries use the exact structural numbers.
  EXPECT_EQ(profiles[0].xof_elements, 2048u);
  EXPECT_EQ(profiles[1].xof_elements, 640u);
  // Cycle estimate agrees with the cycle-accurate model within ~5%.
  Xoshiro256 rng(3);
  hw::AcceleratorSim sim(pasta::pasta4());
  const auto key = pasta::PastaCipher::random_key(pasta::pasta4(), rng);
  const auto measured = sim.run_block(key, 1, 0).stats.total_cycles;
  const auto estimate = analytics::estimated_cycles(profiles[1]);
  EXPECT_NEAR(static_cast<double>(estimate), static_cast<double>(measured),
              measured * 0.05);
  // Fixed-matrix schemes are strictly cheaper in XOF and area.
  for (const auto& s : profiles) {
    EXPECT_GT(analytics::estimated_cycles(s), 26u);
    EXPECT_GT(analytics::estimated_area_factor(s), 0.3);
    if (!s.needs_matgen) {
      EXPECT_LT(analytics::estimated_area_factor(s), 1.0);
      EXPECT_LT(s.xof_elements, 256u);
    }
  }
}

}  // namespace
}  // namespace poe
