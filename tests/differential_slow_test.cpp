// Randomized differential sweep (ctest label: slow, nightly CI).
//
// Unlike differential_test.cpp, which pins fixed seeds, this binary draws a
// fresh base seed each run (from POE_DIFF_SEED when set, so any failure is
// reproducible: re-run with the printed seed). Every assertion carries the
// seed in its failure message.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fhe/bgv.hpp"
#include "hhe/batched_server.hpp"
#include "hhe/protocol.hpp"
#include "hhe/simd_batch.hpp"
#include "hw/accelerator.hpp"
#include "pasta/cipher.hpp"
#include "pasta/serialize.hpp"
#include "service/service.hpp"

namespace poe {
namespace {

using u64 = std::uint64_t;

u64 base_seed() {
  static const u64 seed = [] {
    u64 s = 12345;  // deterministic default for local runs
    if (const char* env = std::getenv("POE_DIFF_SEED")) {
      s = std::strtoull(env, nullptr, 10);
    }
    fprintf(stderr, "[ POE_DIFF_SEED=%llu ] re-run with this env var to "
                    "reproduce\n",
            static_cast<unsigned long long>(s));
    return s;
  }();
  return seed;
}

std::vector<u64> random_msg(Xoshiro256& rng, u64 p, std::size_t len) {
  std::vector<u64> msg(len);
  for (auto& m : msg) m = rng.below(p);
  return msg;
}

TEST(SlowDifferential, SwHwKeystreamSweep) {
  Xoshiro256 rng(base_seed());
  const pasta::PastaParams param_sets[] = {
      pasta::pasta3(), pasta::pasta4(),
      pasta::pasta4(pasta::pasta_prime(33)), hhe::HheConfig::test().pasta};
  for (int iter = 0; iter < 150; ++iter) {
    SCOPED_TRACE("seed=" + std::to_string(base_seed()) +
                 " iter=" + std::to_string(iter));
    const auto& params = param_sets[iter % std::size(param_sets)];
    const auto key = pasta::PastaCipher::random_key(params, rng);
    pasta::PastaCipher sw(params, key);
    hw::AcceleratorSim hw_sim(params);
    const u64 nonce = rng.next();
    const u64 counter = rng.below(1u << 20);
    ASSERT_EQ(hw_sim.run_block(key, nonce, counter).keystream,
              sw.keystream(nonce, counter));
  }
}

TEST(SlowDifferential, SerializeRoundTripAndCorruptionFuzz) {
  Xoshiro256 rng(base_seed() ^ 0x5e5e5e5e);
  const pasta::PastaParams param_sets[] = {
      pasta::pasta3(), pasta::pasta4(),
      pasta::pasta4(pasta::pasta_prime(33)),
      pasta::pasta4(pasta::pasta_prime(54)),
      pasta::pasta4(pasta::pasta_prime(60))};
  for (int iter = 0; iter < 2000; ++iter) {
    SCOPED_TRACE("seed=" + std::to_string(base_seed()) +
                 " iter=" + std::to_string(iter));
    const auto& params = param_sets[iter % std::size(param_sets)];
    const std::size_t len = 1 + rng.below(64);
    const auto elems = random_msg(rng, params.p, len);
    auto bytes = pack_elements(params, elems);
    ASSERT_EQ(unpack_elements(params, bytes, len), elems);

    // Corrupt: truncate and/or flip a random bit. Unpacking must either
    // succeed or throw poe::Error — never read out of bounds (ASan-checked).
    auto corrupt = bytes;
    if (!corrupt.empty() && rng.below(2) == 0) {
      corrupt.resize(rng.below(corrupt.size() + 1));
    }
    if (!corrupt.empty()) {
      corrupt[rng.below(corrupt.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    try {
      const auto out = unpack_elements(params, corrupt, len);
      ASSERT_EQ(out.size(), len);
    } catch (const poe::Error&) {
      // acceptable: corrupted input rejected
    }
  }
}

TEST(SlowDifferential, RandomFullStackRoundTrip) {
  const u64 seed = base_seed() ^ 0xf00d;
  SCOPED_TRACE("seed=" + std::to_string(base_seed()));
  Xoshiro256 rng(seed);

  // Coefficient-wise server on a random key/message/nonce.
  {
    const auto config = hhe::HheConfig::test();
    fhe::Bgv bgv(config.bgv);
    const auto key = pasta::PastaCipher::random_key(config.pasta, rng);
    hhe::HheClient client(config, bgv, key);
    hhe::HheServer server(config, bgv, client.encrypt_key());
    const auto msg = random_msg(rng, config.pasta.p, config.pasta.t);
    const u64 nonce = rng.next();
    const auto cts = server.transcipher_block(client.encrypt(msg, nonce),
                                              nonce, 0);
    ASSERT_EQ(client.decrypt_result(cts), msg);
  }

  // SIMD engine on a random batch (random occupancy, lengths, counters).
  {
    const auto config = hhe::HheConfig::batched_test();
    fhe::Bgv bgv(config.bgv);
    fhe::BatchEncoder encoder(config.bgv.n, config.bgv.t);
    fhe::SlotLayout layout(config.bgv.n, config.bgv.t);
    hhe::SimdBatchEngine engine(config, bgv);
    const auto key = pasta::PastaCipher::random_key(config.pasta, rng);
    pasta::PastaCipher sw(config.pasta, key);
    const auto key_ct =
        hhe::encrypt_key_batched(config, bgv, encoder, layout, key);

    const std::size_t blocks = 1 + rng.below(engine.capacity());
    std::vector<hhe::SimdBlockRequest> reqs(blocks);
    std::vector<std::vector<u64>> msgs(blocks);
    for (std::size_t m = 0; m < blocks; ++m) {
      const std::size_t len = 1 + rng.below(config.pasta.t);
      msgs[m] = random_msg(rng, config.pasta.p, len);
      reqs[m].nonce = rng.next();
      reqs[m].counter = rng.below(16);
      const auto ks = sw.keystream(reqs[m].nonce, reqs[m].counter);
      reqs[m].symmetric_ct.resize(len);
      for (std::size_t i = 0; i < len; ++i) {
        reqs[m].symmetric_ct[i] = (msgs[m][i] + ks[i]) % config.pasta.p;
      }
    }
    const auto ct = engine.evaluate(key_ct, engine.prepare(reqs));
    for (std::size_t m = 0; m < blocks; ++m) {
      ASSERT_EQ(hhe::SimdBatchEngine::decode_block(config, bgv, ct, m,
                                                   msgs[m].size()),
                msgs[m])
          << "tile " << m << "/" << blocks;
    }
  }
}

TEST(SlowDifferential, RandomServiceWorkload) {
  const u64 seed = base_seed() ^ 0xcafe;
  SCOPED_TRACE("seed=" + std::to_string(base_seed()));
  Xoshiro256 rng(seed);

  const auto config = hhe::HheConfig::batched_test();
  fhe::Bgv bgv(config.bgv);
  fhe::BatchEncoder encoder(config.bgv.n, config.bgv.t);
  fhe::SlotLayout layout(config.bgv.n, config.bgv.t);
  service::TranscipherService svc(config, bgv);

  const std::size_t n_clients = 2;
  std::vector<std::vector<u64>> keys(n_clients);
  std::vector<pasta::PastaCipher> ciphers;
  for (std::size_t c = 0; c < n_clients; ++c) {
    keys[c] = pasta::PastaCipher::random_key(config.pasta, rng);
    ciphers.emplace_back(config.pasta, keys[c]);
    svc.open_session(c + 1, hhe::encrypt_key_batched(config, bgv, encoder,
                                                     layout, keys[c]));
  }

  std::vector<service::TranscipherRequest> reqs;
  std::vector<std::vector<u64>> msgs;
  for (std::size_t r = 0; r < 4; ++r) {
    const std::size_t c = rng.below(n_clients);
    const std::size_t len = 1 + rng.below(2 * config.pasta.t);
    msgs.push_back(random_msg(rng, config.pasta.p, len));
    reqs.push_back(service::TranscipherRequest{
        .client_id = c + 1,
        .nonce = 100 + r,
        .symmetric_ct = ciphers[c].encrypt(msgs.back(), 100 + r)});
  }

  service::ServiceReport report;
  const auto results = svc.process(reqs, &report);
  ASSERT_EQ(results.size(), reqs.size());
  EXPECT_EQ(report.blocks, [&] {
    std::size_t b = 0;
    for (const auto& m : msgs) b += (m.size() + config.pasta.t - 1) /
                                    config.pasta.t;
    return b;
  }());
  for (std::size_t r = 0; r < reqs.size(); ++r) {
    std::vector<u64> got;
    for (const auto& block : results[r].blocks) {
      const auto vals =
          service::TranscipherService::decode_block(config, bgv, block);
      got.insert(got.end(), vals.begin(), vals.end());
    }
    ASSERT_EQ(got, msgs[r]) << "request " << r;
  }
}

}  // namespace
}  // namespace poe
