// Cross-process chaos harness (ctest label: chaos): fault sites at the
// PROCESS BOUNDARY — a peer dying mid-write (net.frame.torn), a slow peer
// (net.peer.stall, virtual time), a worker-shard process dying between
// request and response (shard.kill) — driven through a LocalCluster over
// real loopback sockets.
//
// Directed tests pin the exact degradation contract: a torn or killed shard
// fails its wave with a typed kFailed and NEVER costs a healthy shard's
// tenant anything; a slow peer degrades to kTimedOut in the fail-safe
// direction (the nonce IS recorded, a retry replays); and a killed shard's
// sessions rebalance to the survivors from serialized session state with
// ZERO nonce-replay acceptance — not for nonces acknowledged before the
// kill, not even after the dead shard restarts empty and reinstalls from
// the router's cache.
//
// RandomScheduleSweep drives seeded schedules over a menu mixing the net
// sites with in-process stage faults and checks invariants only (the
// partition, correct decode for every surviving request, full recovery
// after disarm + revive). Reproduce with POE_FAULT_SEED; POE_FAULT_SCHEDULES
// lengthens the sweep. The key-corrupt sites are deliberately absent here:
// quarantine recovery requires a fresh key upload, an in-process contract
// fault_test already sweeps.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "common/rng.hpp"
#include "fhe/serialize.hpp"
#include "hhe/batched_server.hpp"
#include "net/cluster.hpp"
#include "service/service.hpp"

namespace poe::net {
namespace {

using u64 = std::uint64_t;
using service::RequestStatus;
using service::TranscipherRequest;
using service::TranscipherResult;
using service::TranscipherService;

struct Stack {
  hhe::HheConfig config = hhe::HheConfig::batched_test();
  fhe::Bgv bgv{config.bgv};
  fhe::BatchEncoder encoder{config.bgv.n, config.bgv.t};
  fhe::SlotLayout layout{config.bgv.n, config.bgv.t};
  std::shared_ptr<const fhe::GaloisKeys> keys =
      hhe::SimdBatchEngine::make_shared_rotation_keys(config, bgv);
};

Stack& stack() {
  static Stack s;
  return s;
}

// One shared 2-shard cluster for the whole binary (each shard's Bgv keygen
// is the expensive part). Tests isolate through fresh client ids and
// globally fresh nonces; every test begins by reviving anything a previous
// test killed.
LocalCluster& cluster() {
  static LocalCluster* c = [] {
    ClusterConfig cc;
    cc.shards = 2;
    // Sequential shards: per-site arrival order is exactly the frame order,
    // so "which wave eats the fault" is deterministic in directed tests.
    cc.service.pipelined = false;
    cc.service.max_stage_attempts = 3;
    cc.service.backoff_base_s = 1e-4;
    cc.service.stage_timeout_s = 2.0;
    cc.router.peer_timeout_s = 2.0;
    return new LocalCluster(stack().config, stack().bgv.rns(), cc);
  }();
  return *c;
}

u64 fresh_nonce() {
  static u64 next = 1;
  return next++;
}

/// First client id >= `start` the ring places on `shard`.
u64 pick_client_on(std::size_t shard, u64 start) {
  for (u64 id = start;; ++id) {
    if (cluster().router().owner(id) == shard) return id;
  }
}

// Registers the injector on ONE shard's ExecContext — directed chaos is
// always "this worker misbehaves, its neighbours must not care".
struct ShardArmed {
  FaultInjector fi;
  ExecContext* exec;
  ShardArmed(std::size_t shard, u64 seed = 0)
      : fi(seed), exec(&cluster().shard_exec(shard)) {
    exec->set_fault_injector(&fi);
  }
  ~ShardArmed() { exec->set_fault_injector(nullptr); }
  void disarm() { exec->set_fault_injector(nullptr); }
};

struct TestClient {
  u64 id;
  std::vector<u64> key;
  pasta::PastaCipher cipher;

  TestClient(u64 client_id, u64 seed)
      : id(client_id),
        key([&] {
          Xoshiro256 rng(seed);
          return pasta::PastaCipher::random_key(stack().config.pasta, rng);
        }()),
        cipher(stack().config.pasta, key) {}

  std::vector<std::uint8_t> key_wire() const {
    return fhe::serialize_ciphertext(
        stack().bgv.rns(),
        hhe::encrypt_key_batched(stack().config, stack().bgv, stack().encoder,
                                 stack().layout, key));
  }

  TranscipherRequest request(u64 nonce, const std::vector<u64>& msg) const {
    return TranscipherRequest{.client_id = id,
                              .nonce = nonce,
                              .symmetric_ct = cipher.encrypt(msg, nonce)};
  }
};

std::vector<u64> random_msg(std::size_t len, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u64> msg(len);
  for (auto& m : msg) m = rng.below(stack().config.pasta.p);
  return msg;
}

std::vector<u64> decode_all(const TranscipherResult& result) {
  std::vector<u64> out;
  for (const auto& block : result.blocks) {
    const auto vals =
        TranscipherService::decode_block(stack().config, stack().bgv, block);
    out.insert(out.end(), vals.begin(), vals.end());
  }
  return out;
}

void expect_partition(const RouterReport& rep) {
  EXPECT_EQ(rep.faults.ok + rep.faults.rejected + rep.faults.shed +
                rep.faults.quarantined + rep.faults.timed_out +
                rep.faults.failed,
            rep.requests);
}

void onboard(const TestClient& c) {
  std::string error;
  ASSERT_TRUE(cluster().onboard(c.id, c.key_wire(), &error)) << error;
}

u64 env_u64(const char* name, u64 fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

TEST(NetFaultDirected, TornResponseFrameFailsTypedAndSparesNeighbours) {
  cluster().revive_dead_shards();
  TestClient a(pick_client_on(0, 200), 201);
  TestClient b(pick_client_on(1, 260), 202);
  onboard(a);
  onboard(b);
  const auto msg_a = random_msg(stack().config.pasta.t + 1, 203);
  const auto msg_b = random_msg(stack().config.pasta.t + 2, 204);

  // Warm wave: installs both sessions so the armed wave's only shard-side
  // send is the process-result frame the fault will tear.
  const u64 warm_a = fresh_nonce();
  {
    const auto warm = cluster().router().process(
        std::vector{a.request(warm_a, msg_a), b.request(fresh_nonce(), msg_b)});
    ASSERT_TRUE(warm[0].ok()) << warm[0].error;
    ASSERT_TRUE(warm[1].ok()) << warm[1].error;
  }

  ShardArmed scope(0);
  scope.fi.arm(
      FaultSpec{.site = "net.frame.torn", .kind = FaultClass::kForce});
  const u64 torn_nonce = fresh_nonce();
  RouterReport rep;
  const auto results = cluster().router().process(
      std::vector{a.request(torn_nonce, msg_a),
                  b.request(fresh_nonce(), msg_b)},
      &rep);
  scope.disarm();

  EXPECT_EQ(scope.fi.fired(FaultClass::kForce), 1u);
  EXPECT_EQ(results[0].status, RequestStatus::kFailed);
  EXPECT_FALSE(results[0].error.empty());
  // The healthy shard's tenant is untouched — typed degradation only, no
  // collateral damage across the wire.
  ASSERT_TRUE(results[1].ok()) << results[1].error;
  EXPECT_EQ(decode_all(results[1]), msg_b);
  EXPECT_FALSE(cluster().router().shard_alive(0));
  EXPECT_EQ(rep.faults.failed, 1u);
  EXPECT_EQ(rep.faults.ok, 1u);
  expect_partition(rep);

  // The supervisor reconnects the shard; its SERVICE kept its state across
  // the lost connection, so the torn wave's nonce — which the shard DID
  // process even though the ack never arrived — still replays, and fresh
  // traffic flows again.
  cluster().revive_dead_shards();
  ASSERT_TRUE(cluster().router().shard_alive(0));
  const auto after = cluster().router().process(
      std::vector{a.request(torn_nonce, msg_a),
                  a.request(fresh_nonce(), msg_a)});
  EXPECT_EQ(after[0].status, RequestStatus::kNonceReplay);
  ASSERT_TRUE(after[1].ok()) << after[1].error;
  EXPECT_EQ(decode_all(after[1]), msg_a);
}

TEST(NetFaultDirected, SlowPeerDegradesToTimedOutFailSafe) {
  cluster().revive_dead_shards();
  TestClient a(pick_client_on(0, 300), 301);
  TestClient b(pick_client_on(1, 360), 302);
  onboard(a);
  onboard(b);
  const auto msg_a = random_msg(stack().config.pasta.t + 1, 303);
  const auto msg_b = random_msg(3, 304);
  {
    const auto warm = cluster().router().process(std::vector{
        a.request(fresh_nonce(), msg_a), b.request(fresh_nonce(), msg_b)});
    ASSERT_TRUE(warm[0].ok()) << warm[0].error;
    ASSERT_TRUE(warm[1].ok()) << warm[1].error;
  }

  ShardArmed scope(0);
  // 3 virtual seconds of peer slowness against the router's 2 s budget.
  // The stall is charged at the shard's frame receive and ECHOED in the
  // response, so the timeout runs on virtual time (real sleep is bounded).
  scope.fi.arm(FaultSpec{.site = "net.peer.stall",
                         .kind = FaultClass::kStall,
                         .count = 4,
                         .arg = 3000});
  const u64 slow_nonce = fresh_nonce();
  RouterReport rep;
  const auto results = cluster().router().process(
      std::vector{a.request(slow_nonce, msg_a),
                  b.request(fresh_nonce(), msg_b)},
      &rep);
  scope.disarm();

  EXPECT_GE(scope.fi.fired(FaultClass::kStall), 1u);
  EXPECT_EQ(results[0].status, RequestStatus::kTimedOut);
  EXPECT_TRUE(results[0].blocks.empty());
  ASSERT_TRUE(results[1].ok()) << results[1].error;
  EXPECT_EQ(decode_all(results[1]), msg_b);
  // Slowness is not death: the shard stays in the ring.
  EXPECT_TRUE(cluster().router().shard_alive(0));
  EXPECT_EQ(rep.faults.timed_out, 1u);
  expect_partition(rep);

  // Fail-safe direction: the slow shard DID record the nonce (its window
  // rode back in the response piggyback), so a retry is a replay — the
  // cluster never serves the same nonce twice, even under timeouts.
  const auto after = cluster().router().process(
      std::vector{a.request(slow_nonce, msg_a),
                  a.request(fresh_nonce(), msg_a)});
  EXPECT_EQ(after[0].status, RequestStatus::kNonceReplay);
  ASSERT_TRUE(after[1].ok()) << after[1].error;
}

TEST(NetFaultDirected, KilledShardRebalancesWithZeroReplayAcceptance) {
  cluster().revive_dead_shards();
  // Two tenants per shard.
  TestClient a1(pick_client_on(0, 400), 401);
  TestClient a2(pick_client_on(0, a1.id + 1), 402);
  TestClient b1(pick_client_on(1, 460), 403);
  TestClient b2(pick_client_on(1, b1.id + 1), 404);
  const std::vector<const TestClient*> clients{&a1, &a2, &b1, &b2};
  for (const TestClient* c : clients) onboard(*c);
  std::map<u64, std::vector<u64>> msg_by_client;
  for (const TestClient* c : clients) {
    msg_by_client[c->id] = random_msg(stack().config.pasta.t + c->id % 3, c->id);
  }

  // Wave 1: every nonce here is ACKNOWLEDGED kOk — these are exactly the
  // nonces replay safety must protect across the kill.
  std::map<u64, u64> acked;
  {
    std::vector<TranscipherRequest> wave;
    for (const TestClient* c : clients) {
      acked[c->id] = fresh_nonce();
      wave.push_back(c->request(acked[c->id], msg_by_client[c->id]));
    }
    const auto results = cluster().router().process(wave);
    for (const auto& res : results) ASSERT_TRUE(res.ok()) << res.error;
  }

  const std::size_t lost_before = cluster().router().shards_lost();
  const std::size_t reb_before = cluster().router().sessions_rebalanced();

  // Wave 2: shard 0 dies on frame arrival — no response, sessions gone.
  ShardArmed scope(0);
  scope.fi.arm(FaultSpec{.site = "shard.kill", .kind = FaultClass::kForce});
  {
    std::vector<TranscipherRequest> wave;
    for (const TestClient* c : clients) {
      wave.push_back(c->request(fresh_nonce(), msg_by_client[c->id]));
    }
    RouterReport rep;
    const auto results = cluster().router().process(wave, &rep);
    scope.disarm();
    EXPECT_EQ(scope.fi.fired(FaultClass::kForce), 1u);
    EXPECT_EQ(results[0].status, RequestStatus::kFailed);
    EXPECT_EQ(results[1].status, RequestStatus::kFailed);
    ASSERT_TRUE(results[2].ok()) << results[2].error;
    ASSERT_TRUE(results[3].ok()) << results[3].error;
    EXPECT_EQ(rep.faults.failed, 2u);
    EXPECT_EQ(rep.faults.ok, 2u);
    expect_partition(rep);
  }
  EXPECT_FALSE(cluster().router().shard_alive(0));
  EXPECT_EQ(cluster().router().shards_lost(), lost_before + 1);
  // The dead shard's sessions were restored onto the survivor from
  // serialized session state (enc(K) refetched from the key manager, nonce
  // windows from the response piggybacks).
  EXPECT_GE(cluster().router().sessions_rebalanced(), reb_before + 2);

  // Wave 3: replay EVERY acknowledged nonce at the survivor. Zero may be
  // accepted — the rebalanced windows must be as strict as the dead
  // shard's were.
  {
    std::vector<TranscipherRequest> wave;
    for (const TestClient* c : clients) {
      wave.push_back(c->request(acked[c->id], msg_by_client[c->id]));
    }
    RouterReport rep;
    const auto results = cluster().router().process(wave, &rep);
    for (const auto& res : results) {
      EXPECT_EQ(res.status, RequestStatus::kNonceReplay)
          << "client " << res.client_id << " nonce " << res.nonce
          << " replay was accepted after rebalance";
    }
    EXPECT_EQ(rep.faults.rejected, wave.size());
    expect_partition(rep);
  }

  // Wave 4: fresh traffic for every tenant flows on the survivor.
  {
    std::vector<TranscipherRequest> wave;
    for (const TestClient* c : clients) {
      wave.push_back(c->request(fresh_nonce(), msg_by_client[c->id]));
    }
    const auto results = cluster().router().process(wave);
    for (const auto& res : results) ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(decode_all(results[0]), msg_by_client[a1.id]);
  }

  // The supervisor restarts shard 0 EMPTY (a killed process lost
  // everything). Sessions reinstall from the router's cache — and the
  // acknowledged nonces still replay, even against the restarted shard.
  cluster().revive_dead_shards();
  ASSERT_TRUE(cluster().router().shard_alive(0));
  {
    const auto results = cluster().router().process(
        std::vector{a1.request(acked[a1.id], msg_by_client[a1.id]),
                    a1.request(fresh_nonce(), msg_by_client[a1.id])});
    EXPECT_EQ(results[0].status, RequestStatus::kNonceReplay);
    ASSERT_TRUE(results[1].ok()) << results[1].error;
    EXPECT_EQ(decode_all(results[1]), msg_by_client[a1.id]);
  }
}

// ---------------------------------------------------------------------------
// The seeded cross-process chaos sweep. Reproduce a failure with
// POE_FAULT_SEED=<seed>; POE_FAULT_SCHEDULES controls sweep length.
// ---------------------------------------------------------------------------

constexpr FaultInjector::MenuEntry kNetSweepMenu[] = {
    {"net.frame.torn", FaultClass::kForce},
    {"net.peer.stall", FaultClass::kStall},
    {"shard.kill", FaultClass::kForce},
    {"service.prepare", FaultClass::kThrow},
    {"service.evaluate", FaultClass::kThrow},
    {"service.prepare.stall", FaultClass::kStall},
    {"service.evaluate.stall", FaultClass::kStall},
    {"pool.acquire", FaultClass::kAllocFail},
};

TEST(NetFaultSweep, RandomScheduleSweep) {
  cluster().revive_dead_shards();
  const u64 base_seed = env_u64("POE_FAULT_SEED", 20260808);
  const u64 schedules = env_u64("POE_FAULT_SCHEDULES", 3);
  RecordProperty("poe_fault_seed", std::to_string(base_seed));

  std::vector<TestClient> clients;
  for (u64 c = 0; c < 4; ++c) clients.emplace_back(600 + 7 * c, 601 + c);
  for (const TestClient& c : clients) onboard(c);

  u64 total_fired = 0;
  for (u64 s = 0; s < schedules; ++s) {
    SCOPED_TRACE("schedule seed " + std::to_string(base_seed + s));
    FaultInjector fi(base_seed + s);
    for (auto& spec :
         FaultInjector::random_schedule(base_seed + s, kNetSweepMenu, 3)) {
      fi.arm(std::move(spec));
    }
    cluster().set_fault_injector(&fi);

    std::map<u64, std::vector<u64>> expected;
    std::vector<TranscipherRequest> wave;
    for (const TestClient& c : clients) {
      for (int j = 0; j < 2; ++j) {
        const u64 nonce = fresh_nonce();
        expected[nonce] = random_msg(stack().config.pasta.t + nonce % 4,
                                     9000 + nonce);
        wave.push_back(c.request(nonce, expected[nonce]));
      }
    }
    // The headline promise, extended across the process boundary: whatever
    // the schedule does to frames, peers and shards, process() returns one
    // typed result per request — never an escaped exception, never a
    // crash, never a wrong answer for a surviving request.
    RouterReport rep;
    const auto results = cluster().router().process(wave, &rep);
    cluster().set_fault_injector(nullptr);
    total_fired += fi.fired_total();

    ASSERT_EQ(results.size(), wave.size());
    expect_partition(rep);
    for (std::size_t r = 0; r < results.size(); ++r) {
      const auto& res = results[r];
      EXPECT_STRNE(service::to_string(res.status), "?");
      if (res.ok()) {
        EXPECT_EQ(decode_all(res), expected[res.nonce]) << "request " << r;
      } else {
        EXPECT_TRUE(res.blocks.empty());
        EXPECT_FALSE(res.error.empty());
      }
    }

    // Full recovery once the chaos stops: revive whatever died and serve
    // fresh nonces for every tenant.
    cluster().revive_dead_shards();
    std::vector<TranscipherRequest> after_wave;
    std::map<u64, std::vector<u64>> after_expected;
    for (const TestClient& c : clients) {
      const u64 nonce = fresh_nonce();
      after_expected[nonce] = random_msg(4, 9500 + nonce);
      after_wave.push_back(c.request(nonce, after_expected[nonce]));
    }
    const auto after = cluster().router().process(after_wave);
    for (const auto& res : after) {
      ASSERT_TRUE(res.ok()) << res.error;
      EXPECT_EQ(decode_all(res), after_expected[res.nonce]);
    }
  }
  EXPECT_GT(total_fired, 0u);
}

}  // namespace
}  // namespace poe::net
