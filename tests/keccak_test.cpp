#include <gtest/gtest.h>

#include "common/error.hpp"
#include "keccak/keccak_f1600.hpp"
#include "keccak/shake.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace poe::keccak {
namespace {

std::string hex(std::span<const std::uint8_t> bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (auto b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

TEST(KeccakF1600, ZeroStatePermutation) {
  // Known-answer: first lane of Keccak-f[1600] applied to the all-zero state.
  State s{};
  f1600(s);
  EXPECT_EQ(s[0], 0xF1258F7940E1DDE7ull);
  EXPECT_EQ(s[1], 0x84D5CCF933C0478Aull);
}

TEST(KeccakF1600, ZeroStateFullFirstPlane) {
  // Known-answer: the whole first plane (lanes y = 0) of Keccak-f[1600] on
  // the all-zero state, from the Keccak team's published intermediate
  // values (KeccakF-1600-IntermediateValues.txt).
  State s{};
  f1600(s);
  EXPECT_EQ(s[0], 0xF1258F7940E1DDE7ull);
  EXPECT_EQ(s[1], 0x84D5CCF933C0478Aull);
  EXPECT_EQ(s[2], 0xD598261EA65AA9EEull);
  EXPECT_EQ(s[3], 0xBD1547306F80494Dull);
  EXPECT_EQ(s[4], 0x8B284E056253D057ull);
}

TEST(KeccakF1600, DoublePermutationKnownAnswer) {
  // Second application (same source): catches state-management bugs that a
  // single-shot permutation KAT cannot (e.g. missing state writeback).
  State s{};
  f1600(s);
  f1600(s);
  EXPECT_EQ(s[0], 0x2D5C954DF96ECB3Cull);
  EXPECT_EQ(s[1], 0x6A332CD07057B56Dull);
}

TEST(KeccakF1600, RoundStepsComposeToFullPermutation) {
  State a{}, b{};
  a[3] = 0xdeadbeef;
  b[3] = 0xdeadbeef;
  f1600(a);
  for (int r = 0; r < kNumRounds; ++r) f1600_round(b, r);
  EXPECT_EQ(a, b);
}

TEST(Shake128, EmptyInputKnownAnswer) {
  // FIPS 202 test vector: SHAKE128("") first 32 bytes.
  auto out = shake128({}, 32);
  EXPECT_EQ(hex(out),
            "7f9c2ba4e88f827d616045507605853e"
            "d73b8093f6efbc88eb1a6eacfa66ef26");
}

TEST(Shake256, EmptyInputKnownAnswer) {
  Shake xof = Shake::shake256();
  std::vector<std::uint8_t> out(32);
  xof.squeeze(out);
  EXPECT_EQ(hex(out),
            "46b9dd2b0ba88d13233b3feb743eeb24"
            "3fcd52ea62b81b82b50c27646ed5762f");
}

TEST(Shake128, EmptyInput64ByteKnownAnswer) {
  // FIPS 202: SHAKE128("") first 64 bytes — the longer prefix exercises
  // squeezing past the first 32 bytes the short KAT covers.
  auto out = shake128({}, 64);
  EXPECT_EQ(hex(out),
            "7f9c2ba4e88f827d616045507605853e"
            "d73b8093f6efbc88eb1a6eacfa66ef26"
            "3cb1eea988004b93103cfb0aeefd2a68"
            "6e01fa4a58e8a3639ca8a1e3f9ae57e2");
}

TEST(Shake256, EmptyInput64ByteKnownAnswer) {
  Shake xof = Shake::shake256();
  std::vector<std::uint8_t> out(64);
  xof.squeeze(out);
  EXPECT_EQ(hex(out),
            "46b9dd2b0ba88d13233b3feb743eeb24"
            "3fcd52ea62b81b82b50c27646ed5762f"
            "d75dc4ddd8c0f200cb05019d67b592f6"
            "fc821c49479ab48640292eacb3b7c4be");
}

TEST(Shake128, IncrementalAbsorbMatchesOneShot) {
  std::vector<std::uint8_t> msg(500);
  for (std::size_t i = 0; i < msg.size(); ++i)
    msg[i] = static_cast<std::uint8_t>(i * 7 + 1);

  auto oneshot = shake128(msg, 64);

  Shake xof = Shake::shake128();
  xof.absorb(std::span(msg).subspan(0, 3));
  xof.absorb(std::span(msg).subspan(3, 200));
  xof.absorb(std::span(msg).subspan(203));
  std::vector<std::uint8_t> incremental(64);
  xof.squeeze(incremental);
  EXPECT_EQ(oneshot, incremental);
}

TEST(Shake128, IncrementalSqueezeMatchesOneShot) {
  std::vector<std::uint8_t> msg = {1, 2, 3};
  auto oneshot = shake128(msg, 400);  // spans multiple rate blocks

  Shake xof = Shake::shake128();
  xof.absorb(msg);
  std::vector<std::uint8_t> incremental(400);
  std::size_t off = 0;
  for (std::size_t chunk : {1u, 7u, 160u, 200u, 32u}) {
    xof.squeeze(std::span(incremental).subspan(off, chunk));
    off += chunk;
  }
  EXPECT_EQ(off, incremental.size());
  EXPECT_EQ(oneshot, incremental);
}

TEST(Shake128, SqueezeU64IsLittleEndianOfByteStream) {
  Shake a = Shake::shake128();
  Shake b = Shake::shake128();
  std::uint8_t bytes[8];
  b.squeeze(bytes);
  std::uint64_t expect = 0;
  for (int i = 7; i >= 0; --i) expect = (expect << 8) | bytes[i];
  EXPECT_EQ(a.squeeze_u64(), expect);
}

TEST(Shake128, RateBlockBoundaryAbsorb) {
  // Absorb exactly one rate block (168 bytes) and compare against split.
  std::vector<std::uint8_t> msg(168, 0xAB);
  auto oneshot = shake128(msg, 16);
  Shake xof = Shake::shake128();
  xof.absorb(std::span(msg).subspan(0, 168));
  std::vector<std::uint8_t> out(16);
  xof.squeeze(out);
  EXPECT_EQ(oneshot, out);
}

TEST(Shake128, PermutationCountGrowsWithOutput) {
  Shake xof = Shake::shake128();
  xof.absorb(std::vector<std::uint8_t>{1});
  std::vector<std::uint8_t> out(168 * 3);
  xof.squeeze(out);
  // 1 permutation to finish absorbing + 2 more for blocks 2 and 3.
  EXPECT_EQ(xof.permutation_count(), 3u);
}

TEST(Shake, AbsorbAfterSqueezeThrows) {
  Shake xof = Shake::shake128();
  std::vector<std::uint8_t> out(8);
  xof.squeeze(out);
  std::vector<std::uint8_t> more{1};
  EXPECT_THROW(xof.absorb(more), poe::Error);
}

TEST(Shake, InvalidRateRejected) {
  EXPECT_THROW(Shake(0), poe::Error);
  EXPECT_THROW(Shake(7), poe::Error);
  EXPECT_THROW(Shake(200), poe::Error);
}

TEST(Sha3_256, KnownAnswers) {
  // FIPS 202: SHA3-256("") — the canonical empty-input digest.
  const auto empty = sha3_256({});
  EXPECT_EQ(hex(empty),
            "a7ffc6f8bf1ed76651c14756a061d662"
            "f580ff4de43b49fa82d80a4b80f8434a");
}

TEST(Sha3_256, RateBoundaryInputs) {
  // Inputs of exactly rate-1, rate, rate+1 bytes exercise the padding
  // paths; check determinism and divergence rather than fixed vectors.
  std::vector<std::uint8_t> a(135, 0x61), b(136, 0x61), c(137, 0x61);
  EXPECT_EQ(sha3_256(a), sha3_256(a));
  EXPECT_NE(hex(sha3_256(a)), hex(sha3_256(b)));
  EXPECT_NE(hex(sha3_256(b)), hex(sha3_256(c)));
}

TEST(Shake128, DistinctSeedsDiverge) {
  std::vector<std::uint8_t> a{0, 0, 0, 1}, b{0, 0, 0, 2};
  EXPECT_NE(shake128(a, 32), shake128(b, 32));
}

}  // namespace
}  // namespace poe::keccak
