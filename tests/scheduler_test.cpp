// Unit tests for the deadline-aware cross-tenant BatchScheduler (ctest
// label: tier1). Everything here runs under VIRTUAL time — the scheduler
// takes `now` as a parameter — so deadline expiry, partial flushes and
// saturation shedding are pinned exactly, without a single sleep. The
// end-to-end service behaviour (kOverloaded mapping, packed evaluation) is
// covered by service_test.cpp and fault_test.cpp; this file pins the
// formation logic itself.
#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "service/scheduler.hpp"

namespace poe::service {
namespace {

ScheduledBlock block(std::uint64_t tenant, std::size_t handle, double t) {
  return ScheduledBlock{.tenant = tenant, .handle = handle, .arrival_s = t};
}

TEST(BatchScheduler, FullBatchFlushesImmediately) {
  BatchScheduler sched(SchedulerConfig{.batch_capacity = 3});
  EXPECT_TRUE(sched.submit(block(1, 0, 0.0), 0.0));
  EXPECT_TRUE(sched.submit(block(2, 1, 0.0), 0.0));
  EXPECT_FALSE(sched.next().has_value());  // still forming
  EXPECT_TRUE(sched.submit(block(1, 2, 0.0), 0.0));

  const auto batch = sched.next();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->cause, FlushCause::kFull);
  ASSERT_EQ(batch->blocks.size(), 3u);
  // Tiles are assigned in arrival order: tile i = i-th submitted block.
  EXPECT_EQ(batch->blocks[0].handle, 0u);
  EXPECT_EQ(batch->blocks[1].handle, 1u);
  EXPECT_EQ(batch->blocks[2].handle, 2u);
  EXPECT_EQ(sched.stats().full_flushes, 1u);
  EXPECT_EQ(sched.stats().cross_tenant_batches, 1u);  // tenants {1, 2}
  EXPECT_DOUBLE_EQ(sched.stats().occupancy_sum, 1.0);
}

TEST(BatchScheduler, DeadlineExpiryFlushesPartialBatch) {
  BatchScheduler sched(
      SchedulerConfig{.batch_capacity = 8, .deadline_s = 1.0});
  EXPECT_TRUE(sched.submit(block(1, 0, 0.0), 0.0));
  EXPECT_TRUE(sched.submit(block(1, 1, 0.4), 0.4));

  sched.advance(0.99);  // oldest block has waited 0.99 s < 1 s
  EXPECT_FALSE(sched.next().has_value());

  sched.advance(1.0);  // deadline reached: flush the partial batch
  const auto batch = sched.next();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->cause, FlushCause::kDeadline);
  EXPECT_EQ(batch->blocks.size(), 2u);
  EXPECT_EQ(sched.stats().deadline_flushes, 1u);
  EXPECT_DOUBLE_EQ(sched.stats().occupancy_sum, 2.0 / 8.0);
  // The worst wait is the oldest block's: flushed at 1.0, arrived at 0.0.
  EXPECT_DOUBLE_EQ(sched.stats().max_wait_s, 1.0);

  // The deadline clock restarts with the next forming batch.
  EXPECT_TRUE(sched.submit(block(1, 2, 1.5), 1.5));
  sched.advance(2.4);
  EXPECT_FALSE(sched.next().has_value());
  sched.advance(2.5);
  EXPECT_TRUE(sched.next().has_value());
}

TEST(BatchScheduler, DeadlineChecksOnSubmitToo) {
  // A late submit first flushes the expired forming batch, then starts a
  // new one with the late block — the old batch must not absorb it.
  BatchScheduler sched(
      SchedulerConfig{.batch_capacity = 8, .deadline_s = 1.0});
  EXPECT_TRUE(sched.submit(block(1, 0, 0.0), 0.0));
  EXPECT_TRUE(sched.submit(block(2, 1, 5.0), 5.0));

  const auto expired = sched.next();
  ASSERT_TRUE(expired.has_value());
  EXPECT_EQ(expired->cause, FlushCause::kDeadline);
  ASSERT_EQ(expired->blocks.size(), 1u);
  EXPECT_EQ(expired->blocks[0].handle, 0u);
  EXPECT_EQ(sched.pending_blocks(), 1u);  // handle 1 is forming
}

TEST(BatchScheduler, DrainFlushesRemainder) {
  BatchScheduler sched(SchedulerConfig{.batch_capacity = 4});
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(sched.submit(block(7, i, 0.0), 0.0));
  }
  sched.drain(0.5);

  const auto full = sched.next();
  const auto rest = sched.next();
  ASSERT_TRUE(full.has_value());
  ASSERT_TRUE(rest.has_value());
  EXPECT_EQ(full->cause, FlushCause::kFull);
  EXPECT_EQ(full->blocks.size(), 4u);
  EXPECT_EQ(rest->cause, FlushCause::kDrain);
  EXPECT_EQ(rest->blocks.size(), 2u);
  EXPECT_FALSE(sched.next().has_value());
  EXPECT_EQ(sched.pending_blocks(), 0u);
  EXPECT_EQ(sched.stats().cross_tenant_batches, 0u);  // single tenant
  EXPECT_EQ(std::string(to_string(full->cause)), "full");
  EXPECT_EQ(std::string(to_string(rest->cause)), "drain");

  // An empty drain is a no-op, not an empty batch.
  sched.drain(1.0);
  EXPECT_FALSE(sched.next().has_value());
  EXPECT_EQ(sched.stats().batches, 2u);
}

TEST(BatchScheduler, SaturatedBacklogShedsDeterministically) {
  // Backlog bound counts forming AND formed-but-unconsumed blocks: with
  // max_pending_blocks = 4 and nothing consumed, the 5th submit sheds —
  // every time, under virtual time, no races involved.
  BatchScheduler sched(SchedulerConfig{.batch_capacity = 4,
                                       .max_pending_blocks = 4});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(sched.can_accept(1));
    EXPECT_TRUE(sched.submit(block(1, i, 0.0), 0.0));
  }
  // The batch flushed full but was not consumed: still 4 pending.
  EXPECT_EQ(sched.pending_blocks(), 4u);
  EXPECT_FALSE(sched.can_accept(1));
  EXPECT_FALSE(sched.submit(block(1, 4, 0.0), 0.0));
  EXPECT_EQ(sched.stats().shed, 1u);
  EXPECT_EQ(sched.stats().submitted, 4u);

  // Consuming the formed batch frees the backlog; the same block is
  // accepted on resubmission.
  EXPECT_TRUE(sched.next().has_value());
  EXPECT_TRUE(sched.can_accept(4));
  EXPECT_TRUE(sched.submit(block(1, 4, 1.0), 1.0));
  EXPECT_EQ(sched.stats().shed, 1u);

  // A multi-block request that would overflow is refused up front.
  EXPECT_TRUE(sched.can_accept(3));
  EXPECT_FALSE(sched.can_accept(4));
}

TEST(BatchScheduler, StatsPartitionInvariant) {
  // submitted == sum of flushed batch sizes + still-pending blocks, and
  // submitted + shed == everything offered; flush causes partition batches.
  BatchScheduler sched(SchedulerConfig{.batch_capacity = 2,
                                       .deadline_s = 1.0,
                                       .max_pending_blocks = 6});
  std::size_t offered = 0, accepted = 0;
  auto offer = [&](std::uint64_t tenant, double t) {
    ++offered;
    if (sched.submit(block(tenant, offered, t), t)) ++accepted;
  };
  offer(1, 0.0);
  offer(2, 0.1);  // -> full flush
  offer(1, 0.2);
  sched.advance(1.3);  // -> deadline flush (partial)
  offer(3, 1.4);
  offer(3, 1.5);  // -> full flush
  offer(1, 1.6);     // 5 ready + 1 forming = 6 pending (at the bound)
  offer(2, 1.7);     // would make 7 > 6: shed
  sched.drain(2.0);  // -> drain flush of the forming block

  const SchedulerStats& stats = sched.stats();
  EXPECT_EQ(stats.submitted, accepted);
  EXPECT_EQ(stats.shed, offered - accepted);
  EXPECT_EQ(stats.full_flushes + stats.deadline_flushes + stats.drain_flushes,
            stats.batches);
  std::size_t flushed_blocks = 0, popped = 0;
  while (auto batch = sched.next()) {
    flushed_blocks += batch->blocks.size();
    ++popped;
  }
  EXPECT_EQ(popped, stats.batches);
  EXPECT_EQ(flushed_blocks + sched.pending_blocks(), stats.submitted);
  EXPECT_EQ(stats.max_pending, 6u);
  EXPECT_GT(stats.occupancy_sum, 0.0);
}

TEST(BatchScheduler, RejectsZeroCapacity) {
  EXPECT_THROW(BatchScheduler(SchedulerConfig{.batch_capacity = 0}),
               poe::Error);
}

}  // namespace
}  // namespace poe::service
