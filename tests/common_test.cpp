#include <gtest/gtest.h>

#include "common/bignum.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/exec_context.hpp"
#include "common/parallel.hpp"
#include "common/pool.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

namespace poe {
namespace {

TEST(Bits, RotlMatchesManual) {
  EXPECT_EQ(rotl64(1, 1), 2u);
  EXPECT_EQ(rotl64(0x8000000000000000ull, 1), 1u);
  EXPECT_EQ(rotl64(0x0123456789ABCDEFull, 0), 0x0123456789ABCDEFull);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(65537), 17u);
  EXPECT_EQ(ceil_log2(65536), 16u);
}

TEST(Bits, LoadStoreRoundtrip) {
  std::uint8_t buf[8];
  store_le64(buf, 0x1122334455667788ull);
  EXPECT_EQ(buf[0], 0x88);
  EXPECT_EQ(load_le64(buf), 0x1122334455667788ull);
  store_be64(buf, 0x1122334455667788ull);
  EXPECT_EQ(buf[0], 0x11);
  EXPECT_EQ(buf[7], 0x88);
}

TEST(Error, EnsureThrowsWithMessage) {
  try {
    POE_ENSURE(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(123), b(123), c(124);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(97), 97u);
  }
}

TEST(Bignum, AddSubRoundtrip) {
  UBig a(0xFFFFFFFFFFFFFFFFull);
  a.add(UBig(1));
  EXPECT_EQ(a.bit_length(), 65u);
  a.sub(UBig(1));
  EXPECT_EQ(a.low_u64(), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(a.bit_length(), 64u);
}

TEST(Bignum, MulDivRoundtrip) {
  UBig a(1);
  for (int i = 0; i < 10; ++i) a.mul_u64(1000000007ull);
  UBig b = a;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(b.divmod_u64(1000000007ull), 0u);
  }
  EXPECT_EQ(b.low_u64(), 1u);
  EXPECT_TRUE(b == UBig::one());
}

TEST(Bignum, ModU64MatchesDivmod) {
  UBig a(123456789);
  a.mul_u64(987654321).add_u64(55);
  UBig b = a;
  EXPECT_EQ(a.mod_u64(1000003), b.divmod_u64(1000003));
}

TEST(Bignum, ProductAndToString) {
  UBig p = UBig::product({10, 10, 10});
  EXPECT_EQ(p.to_string(), "1000");
  EXPECT_EQ(UBig{}.to_string(), "0");
}

TEST(Bignum, ModBySubtraction) {
  UBig m = UBig::product({65537, 65537});
  UBig v = m;
  v.add(m).add(UBig(42));  // 3m + 42 > value is 2m+42... build k*m + 42
  v.mod_by_subtraction(m);
  EXPECT_EQ(v.low_u64(), 42u);
}

TEST(Bignum, Shr1) {
  UBig a(1);
  a.mul_u64(1ull << 63).mul_u64(2);  // 2^64
  a.shr1();
  EXPECT_EQ(a.bit_length(), 64u);
  EXPECT_EQ(a.low_u64(), 0x8000000000000000ull);
}

TEST(Bignum, SubUnderflowThrows) {
  UBig a(5);
  EXPECT_THROW(a.sub(UBig(6)), Error);
}

TEST(Bignum, FuzzAgainstInt128) {
  // Random add/sub/mul_u64/mod chains cross-checked against native
  // 128-bit arithmetic while values fit.
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    unsigned __int128 ref = rng.below(1ull << 62);
    UBig big(static_cast<std::uint64_t>(ref));
    for (int op = 0; op < 8; ++op) {
      const std::uint64_t v = 1 + rng.below(1u << 30);
      switch (rng.below(3)) {
        case 0:
          if (ref <= (unsigned __int128)1 << 96) {
            ref *= v;
            big.mul_u64(v);
          }
          break;
        case 1:
          ref += v;
          big.add_u64(v);
          break;
        case 2: {
          const std::uint64_t m = 2 + rng.below(1u << 20);
          EXPECT_EQ(big.mod_u64(m), static_cast<std::uint64_t>(ref % m))
              << "trial " << trial;
          break;
        }
      }
    }
    // Final value comparison through limbs.
    UBig check;
    check = UBig(static_cast<std::uint64_t>(ref & 0xFFFFFFFFFFFFFFFFull));
    UBig hi(static_cast<std::uint64_t>(ref >> 64));
    for (int i = 0; i < 64; ++i) hi.mul_u64(2);
    check.add(hi);
    EXPECT_TRUE(big == check) << "trial " << trial;
  }
}

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); },
               /*max_threads=*/4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ZeroAndSingleElement) {
  int calls = 0;
  parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](std::size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(
          100,
          [&](std::size_t i) {
            if (i == 57) throw Error("boom");
          },
          4),
      Error);
}

TEST(Parallel, DeterministicResultsAcrossThreadCounts) {
  auto run = [](unsigned threads) {
    std::vector<std::uint64_t> out(256);
    parallel_for(
        256, [&](std::size_t i) { out[i] = i * i + 7; }, threads);
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(Parallel, ParseThreadsEnv) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  EXPECT_EQ(ThreadPool::parse_threads_env(nullptr), hw);
  EXPECT_EQ(ThreadPool::parse_threads_env(""), hw);
  EXPECT_EQ(ThreadPool::parse_threads_env("0"), hw);
  EXPECT_EQ(ThreadPool::parse_threads_env("pasta"), hw);
  EXPECT_EQ(ThreadPool::parse_threads_env("-2"), hw);
  EXPECT_EQ(ThreadPool::parse_threads_env("1"), 1u);
  EXPECT_EQ(ThreadPool::parse_threads_env("6"), 6u);
}

TEST(Parallel, CancellationChecksBeforeInvoking) {
  // Regression test for the cancellation protocol: once one body throws, no
  // NEW body invocation may begin. Uses a dedicated pool (the global one has
  // zero workers on single-core machines, which would serialise the loop and
  // mask the race). One executor parks inside body(0) until body(1) is about
  // to throw, so both executors are pinned while indices 2..999 are pending.
  ThreadPool pool(1);  // one worker + the calling thread = 2 executors
  std::atomic<bool> blocked_entered{false};
  std::atomic<bool> about_to_throw{false};
  std::atomic<int> invocations{0};
  auto body = [&](std::size_t i) {
    invocations.fetch_add(1, std::memory_order_relaxed);
    if (i == 0) {
      blocked_entered.store(true);
      while (!about_to_throw.load()) std::this_thread::yield();
    } else if (i == 1) {
      while (!blocked_entered.load()) std::this_thread::yield();
      about_to_throw.store(true);
      throw Error("boom");
    }
  };
  using Body = decltype(body);
  EXPECT_THROW(
      pool.run(1000, std::addressof(body),
               [](void* ctx, std::size_t i) { (*static_cast<Body*>(ctx))(i); }),
      Error);
  // Indices 0 and 1 always run; after the failure the pre-invoke check stops
  // both executors. A couple of racing claims may slip through while the
  // exception unwinds, but nothing close to the remaining 998 indices.
  EXPECT_GE(invocations.load(), 2);
  EXPECT_LE(invocations.load(), 16);
}

TEST(BufferPool, MissThenHitReusesSlab) {
  BufferPool pool;
  std::uint64_t* raw = nullptr;
  {
    PolyBuffer b = pool.acquire(256);
    raw = b.data();
    EXPECT_EQ(pool.misses(), 1u);
    EXPECT_EQ(pool.hits(), 0u);
    EXPECT_EQ(pool.outstanding(), 1u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(raw) % 64, 0u);  // cache line
    for (std::size_t i = 0; i < 256; ++i) EXPECT_EQ(b.data()[i], 0u);
  }
  EXPECT_EQ(pool.outstanding(), 0u);
  const PolyBuffer c = pool.acquire(256, /*zero=*/false);
  EXPECT_EQ(c.data(), raw);  // recycled the very same slab
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  const PolyBuffer d = pool.acquire(256);  // first slab lent out -> fresh
  EXPECT_EQ(pool.misses(), 2u);
  EXPECT_EQ(pool.outstanding(), 2u);
}

TEST(BufferPool, BiggerSlabServesSmallerRequest) {
  BufferPool pool;
  {
    PolyBuffer big = pool.acquire(1024, /*zero=*/false);
    big.data()[5] = 77;  // stale coefficient to be cleared on recycle
  }
  const PolyBuffer small = pool.acquire(64, /*zero=*/true);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_GE(small.size(), 1024u);  // slab keeps its original size class
  EXPECT_EQ(small.data()[5], 0u);
}

TEST(BufferPool, TrimFreesCachedSlabs) {
  BufferPool pool;
  { const PolyBuffer a = pool.acquire(128); }
  EXPECT_EQ(pool.cached_bytes(), 128 * sizeof(std::uint64_t));
  pool.trim();
  EXPECT_EQ(pool.cached_bytes(), 0u);
  const PolyBuffer b = pool.acquire(128);  // cache emptied -> fresh again
  EXPECT_EQ(pool.misses(), 2u);
}

TEST(BufferPool, MoveTransfersOwnership) {
  BufferPool pool;
  PolyBuffer a = pool.acquire(32);
  std::uint64_t* raw = a.data();
  PolyBuffer b = std::move(a);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(b.data(), raw);
  EXPECT_EQ(pool.outstanding(), 1u);
  b.reset();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(ExecContext, SnapshotDeltas) {
  ExecContext ctx;
  const CounterSnapshot before = ctx.snapshot();
  ctx.counters().bump(ctx.counters().ntt_forward, 3);
  ctx.counters().bump(ctx.counters().ct_ct_mul);
  { const PolyBuffer p = ctx.pool().acquire(16); }  // miss, then returned
  const PolyBuffer q = ctx.pool().acquire(16);      // hit
  const CounterSnapshot delta = ctx.snapshot() - before;
  EXPECT_EQ(delta.ntt_forward, 3u);
  EXPECT_EQ(delta.ntts(), 3u);
  EXPECT_EQ(delta.ct_ct_mul, 1u);
  EXPECT_EQ(delta.pool_misses, 1u);
  EXPECT_EQ(delta.pool_hits, 1u);
  EXPECT_DOUBLE_EQ(delta.pool_hit_rate(), 0.5);
}

TEST(Table, RendersAllCells) {
  TextTable t("demo");
  t.header({"a", "bb"});
  t.row({"1", "2"}).separator().row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(percent(0.333, 1), "33.3%");
}

TEST(FaultInjector, FiresInsideArrivalWindowOnly) {
  FaultInjector fi;
  fi.arm(FaultSpec{.site = "x", .after = 2, .count = 2});
  fi.visit("x");  // arrival 0
  fi.visit("x");  // arrival 1
  EXPECT_THROW(fi.visit("x"), FaultInjectedError);  // 2
  EXPECT_THROW(fi.visit("x"), FaultInjectedError);  // 3
  fi.visit("x");  // 4: window exhausted
  EXPECT_EQ(fi.arrivals("x"), 5u);
  EXPECT_EQ(fi.fired(FaultClass::kThrow), 2u);
  EXPECT_EQ(fi.fired_total(), 2u);
  EXPECT_EQ(fi.fired_by_site().at("x"), 2u);
  // Other sites are counted but never fire.
  fi.visit("y");
  EXPECT_EQ(fi.arrivals("y"), 1u);
  EXPECT_EQ(fi.fired_total(), 2u);
}

TEST(FaultInjector, ClassesAreIndependentPerSite) {
  FaultInjector fi;
  // Arrival counters are per SITE, shared by every hook type: the kThrow
  // visit below consumes arrival 0, so the stall is armed for arrival 1.
  fi.arm(FaultSpec{.site = "s", .kind = FaultClass::kStall, .after = 1,
                   .arg = 1500});
  fi.arm(FaultSpec{.site = "f", .kind = FaultClass::kForce, .after = 1});
  // A kThrow visit at a site armed only with kStall does not fire.
  fi.visit("s");
  EXPECT_EQ(fi.fired_total(), 0u);
  // stall_s charges the full arg in seconds (real sleep is bounded).
  EXPECT_DOUBLE_EQ(fi.stall_s("s"), 1.5);
  EXPECT_DOUBLE_EQ(fi.stall_s("s"), 0.0);  // count=1: second arrival is clean
  EXPECT_FALSE(fi.forced("f"));  // arrival 0, armed after=1
  EXPECT_TRUE(fi.forced("f"));   // arrival 1
  EXPECT_FALSE(fi.forced("f"));
  EXPECT_EQ(fi.fired(FaultClass::kStall), 1u);
  EXPECT_EQ(fi.fired(FaultClass::kForce), 1u);
}

TEST(FaultInjector, CorruptMarksWordsOutOfRnsRange) {
  FaultInjector fi(99);
  fi.arm(FaultSpec{.site = "c", .kind = FaultClass::kCorrupt, .arg = 3});
  std::vector<std::uint64_t> words(16, 7);
  ASSERT_TRUE(fi.corrupt("c", words));
  std::size_t mangled = 0;
  for (const std::uint64_t w : words) {
    if (w == 7) continue;
    ++mangled;
    // The top bit guarantees the word exceeds any supported RNS prime.
    EXPECT_GE(w, std::uint64_t{1} << 63);
  }
  EXPECT_GE(mangled, 1u);
  EXPECT_LE(mangled, 3u);  // seeded positions may collide
  EXPECT_FALSE(fi.corrupt("c", words));  // window exhausted
}

TEST(FaultInjector, RandomScheduleIsDeterministicAndOnMenu) {
  constexpr FaultInjector::MenuEntry menu[] = {
      {"a", FaultClass::kThrow},
      {"b", FaultClass::kStall},
      {"c", FaultClass::kCorrupt},
  };
  const auto s1 = FaultInjector::random_schedule(31337, menu, 8);
  const auto s2 = FaultInjector::random_schedule(31337, menu, 8);
  ASSERT_EQ(s1.size(), 8u);
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].site, s2[i].site);
    EXPECT_EQ(s1[i].kind, s2[i].kind);
    EXPECT_EQ(s1[i].after, s2[i].after);
    EXPECT_EQ(s1[i].count, s2[i].count);
    EXPECT_EQ(s1[i].arg, s2[i].arg);
    bool on_menu = false;
    for (const auto& m : menu) {
      on_menu |= s1[i].site == m.site && s1[i].kind == m.kind;
    }
    EXPECT_TRUE(on_menu) << s1[i].site;
    EXPECT_LT(s1[i].after, 8u);
    EXPECT_GE(s1[i].count, 1u);
  }
  // A different seed produces a different schedule.
  const auto s3 = FaultInjector::random_schedule(31338, menu, 8);
  bool any_diff = false;
  for (std::size_t i = 0; i < s1.size(); ++i) {
    any_diff |= s1[i].site != s3[i].site || s1[i].after != s3[i].after ||
                s1[i].arg != s3[i].arg;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultInjector, ExecContextHelpersRespectRegistration) {
  ExecContext exec;
  // Unregistered: helpers are inert.
  fault_point(exec, "z");
  EXPECT_DOUBLE_EQ(fault_stall_s(exec, "z"), 0.0);
  EXPECT_FALSE(fault_forced(exec, "z"));

  FaultInjector fi;
  fi.arm(FaultSpec{.site = "z", .kind = FaultClass::kForce});
  exec.set_fault_injector(&fi);
#ifdef POE_NO_FAULT_INJECTION
  EXPECT_FALSE(fault_forced(exec, "z"));  // compiled out entirely
#else
  EXPECT_TRUE(fault_forced(exec, "z"));
#endif
  exec.set_fault_injector(nullptr);
  EXPECT_FALSE(fault_forced(exec, "z"));
}

TEST(FaultInjector, ArmedPoolAcquireSimulatesAllocationFailure) {
  ExecContext exec;
  FaultInjector fi;
  fi.arm(FaultSpec{.site = "pool.acquire", .kind = FaultClass::kAllocFail});
  exec.set_fault_injector(&fi);
#ifndef POE_NO_FAULT_INJECTION
  EXPECT_THROW(exec.pool().acquire(64), FaultInjectedError);
#endif
  // The failure is transient: the next acquire succeeds and the slab is
  // usable.
  auto slab = exec.pool().acquire(64);
  EXPECT_GE(slab.size(), 64u);
  exec.set_fault_injector(nullptr);
}

}  // namespace
}  // namespace poe
