#include <gtest/gtest.h>

#include "app/video.hpp"
#include "common/rng.hpp"
#include "pasta/cipher.hpp"

namespace poe::app {
namespace {

TEST(Video, SyntheticFramesAreDeterministicAndMoving) {
  SyntheticCamera cam(analytics::qqvga());
  const auto f0 = cam.next_frame();
  const auto f1 = cam.next_frame();
  EXPECT_EQ(f0.pixels.size(), 19200u);
  EXPECT_NE(f0.pixels, f1.pixels);

  SyntheticCamera cam2(analytics::qqvga());
  EXPECT_EQ(cam2.next_frame().pixels, f0.pixels);
}

TEST(Video, PackUnpackRoundtrip) {
  const auto params = pasta::pasta4(pasta::pasta_prime(33));
  SyntheticCamera cam(analytics::qqvga());
  const auto frame = cam.next_frame();
  for (unsigned ppe : {1u, 2u, 4u}) {
    const auto elements = pack_pixels(frame, params, ppe);
    EXPECT_EQ(elements.size(), (frame.pixels.size() + ppe - 1) / ppe);
    const auto back = unpack_pixels(elements, frame.resolution, ppe);
    EXPECT_EQ(back.pixels, frame.pixels);
  }
}

TEST(Video, PackingRejectsOverfullElements) {
  const auto params = pasta::pasta4();  // 17-bit prime: max 2 px... 16 bits
  SyntheticCamera cam(analytics::qqvga());
  EXPECT_NO_THROW(pack_pixels(cam.next_frame(), params, 2));
  EXPECT_THROW(pack_pixels(cam.next_frame(), params, 3), poe::Error);
}

TEST(Video, EncryptDecryptFrameRoundtrip) {
  const auto params = pasta::pasta4(pasta::pasta_prime(33));
  Xoshiro256 rng(1);
  FrameEncryptor enc(params, pasta::PastaCipher::random_key(params, rng), 4);
  SyntheticCamera cam(analytics::qqvga());
  const auto frame = cam.next_frame();

  const auto encrypted = enc.encrypt(frame, 99);
  EXPECT_GT(encrypted.cycles, 0u);
  // 19200 px / 4 per element = 4800 elements = 150 blocks x 132 B.
  EXPECT_EQ(encrypted.ciphertext.size(), 4800u);
  EXPECT_EQ(encrypted.bytes_on_wire, 150u * 132u);

  const auto back = enc.decrypt(encrypted, frame.resolution, 99);
  EXPECT_EQ(back.pixels, frame.pixels);
}

TEST(Video, CiphertextDiffersFromPlaintext) {
  const auto params = pasta::pasta4();
  Xoshiro256 rng(2);
  FrameEncryptor enc(params, pasta::PastaCipher::random_key(params, rng), 2);
  SyntheticCamera cam(analytics::qqvga());
  const auto frame = cam.next_frame();
  const auto packed = pack_pixels(frame, params, 2);
  const auto encrypted = enc.encrypt(frame, 1);
  EXPECT_NE(encrypted.ciphertext, packed);
}

}  // namespace
}  // namespace poe::app
