// Chaos harness for the transcipher service (ctest label: chaos).
//
// Directed tests arm one fault class at a time — allocation failure, stage
// exceptions, virtual-time stalls, queue saturation, key corruption, wire
// truncation — and pin the exact degradation the robustness layer promises:
// recovery via bounded retry, or a typed per-request status; never an
// escaped exception, never collateral damage to a healthy tenant.
//
// RandomScheduleSweep then drives seeded random fault schedules through the
// full pipelined service and checks invariants only (the status partition,
// bit-identical outputs for surviving requests against a fault-free
// baseline, full recovery after disarm) — exact outcomes are not
// reproducible across thread interleavings, invariants must hold for every
// seed. Reproduce a failed sweep with POE_FAULT_SEED (see docs/TESTING.md);
// POE_FAULT_SCHEDULES lengthens the sweep for the nightly CI job.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "common/rng.hpp"
#include "fhe/serialize.hpp"
#include "hhe/batched_server.hpp"
#include "service/service.hpp"

namespace poe::service {
namespace {

using u64 = std::uint64_t;

struct Stack {
  hhe::HheConfig config = hhe::HheConfig::batched_test();
  fhe::Bgv bgv{config.bgv};
  fhe::BatchEncoder encoder{config.bgv.n, config.bgv.t};
  fhe::SlotLayout layout{config.bgv.n, config.bgv.t};
  std::shared_ptr<const fhe::GaloisKeys> keys =
      hhe::SimdBatchEngine::make_shared_rotation_keys(config, bgv);
};

Stack& stack() {
  static Stack s;
  return s;
}

TranscipherService make_service(ServiceConfig cfg = {}) {
  return TranscipherService(stack().config, stack().bgv, cfg, stack().keys);
}

// Registers the injector on the shared ExecContext for the test's scope;
// tests arm faults only AFTER session onboarding so they land in process().
struct ArmedScope {
  FaultInjector fi;
  explicit ArmedScope(u64 seed = 0) : fi(seed) {
    stack().bgv.rns().exec().set_fault_injector(&fi);
  }
  ~ArmedScope() { stack().bgv.rns().exec().set_fault_injector(nullptr); }
  void disarm() { stack().bgv.rns().exec().set_fault_injector(nullptr); }
};

struct TestClient {
  u64 id;
  std::vector<u64> key;
  pasta::PastaCipher cipher;

  TestClient(u64 client_id, u64 seed)
      : id(client_id),
        key([&] {
          Xoshiro256 rng(seed);
          return pasta::PastaCipher::random_key(stack().config.pasta, rng);
        }()),
        cipher(stack().config.pasta, key) {}

  std::vector<std::uint8_t> key_wire() const {
    return fhe::serialize_ciphertext(
        stack().bgv.rns(),
        hhe::encrypt_key_batched(stack().config, stack().bgv, stack().encoder,
                                 stack().layout, key));
  }

  TranscipherRequest request(u64 nonce, const std::vector<u64>& msg) const {
    return TranscipherRequest{.client_id = id,
                              .nonce = nonce,
                              .symmetric_ct = cipher.encrypt(msg, nonce)};
  }
};

std::vector<u64> random_msg(std::size_t len, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u64> msg(len);
  for (auto& m : msg) m = rng.below(stack().config.pasta.p);
  return msg;
}

std::vector<u64> decode_all(const TranscipherResult& result) {
  std::vector<u64> out;
  for (const auto& block : result.blocks) {
    const auto vals =
        TranscipherService::decode_block(stack().config, stack().bgv, block);
    out.insert(out.end(), vals.begin(), vals.end());
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> wire_blocks(
    const TranscipherResult& result) {
  std::vector<std::vector<std::uint8_t>> out;
  for (const auto& block : result.blocks) {
    out.push_back(fhe::serialize_ciphertext(stack().bgv.rns(), *block.ct));
  }
  return out;
}

// Directed tests run the sequential path: with one thread, per-site arrival
// order is exactly the batch order, so "which batch eats the fault" is
// deterministic. The sweep exercises the pipelined path.
ServiceConfig sequential_cfg() {
  ServiceConfig cfg;
  cfg.pipelined = false;
  cfg.max_stage_attempts = 3;
  cfg.backoff_base_s = 1e-4;
  return cfg;
}

void expect_partition(const ServiceReport& rep) {
  EXPECT_EQ(rep.faults.ok + rep.faults.rejected + rep.faults.shed +
                rep.faults.quarantined + rep.faults.timed_out +
                rep.faults.failed,
            rep.requests);
}

TEST(FaultDirected, AllocationFailureRecoversViaRetry) {
  auto service = make_service(sequential_cfg());
  TestClient client(1, 101);
  ASSERT_TRUE(service.open_session_wire(client.id, client.key_wire()));
  const auto msg = random_msg(stack().config.pasta.t + 3, 102);

  ArmedScope scope(1);
  scope.fi.arm(FaultSpec{.site = "pool.acquire",
                         .kind = FaultClass::kAllocFail});
  ServiceReport rep;
  const auto results =
      service.process(std::vector{client.request(1, msg)}, &rep);
  scope.disarm();

  ASSERT_TRUE(results[0].ok()) << results[0].error;
  EXPECT_EQ(decode_all(results[0]), msg);
  EXPECT_EQ(rep.faults.injected, 1u);
  EXPECT_GE(rep.faults.retries, 1u);
  EXPECT_GE(rep.faults.recovered_batches, 1u);
  EXPECT_EQ(scope.fi.fired(FaultClass::kAllocFail), 1u);
  expect_partition(rep);
}

TEST(FaultDirected, HoistScratchAllocFailureRecoversViaRetry) {
  // The scratch lease inside Bgv::rotate_hoisted_into fails mid-diagonal-
  // loop (the site fires on the first k != 0 rotation of the first affine
  // layer, after the accumulator and the k = 0 term are already built).
  // The evaluate stage must surface it as a typed stage failure and
  // recover on retry — no UB from the half-filled accumulator, no torn
  // scratch left leased in the bank.
  auto service = make_service(sequential_cfg());
  TestClient client(21, 121);
  ASSERT_TRUE(service.open_session_wire(client.id, client.key_wire()));
  const auto msg = random_msg(stack().config.pasta.t + 2, 122);

  ArmedScope scope(2);
  scope.fi.arm(FaultSpec{.site = "fhe.hoist.scratch.alloc_fail",
                         .kind = FaultClass::kAllocFail});
  ServiceReport rep;
  const auto results =
      service.process(std::vector{client.request(1, msg)}, &rep);
  scope.disarm();

  ASSERT_TRUE(results[0].ok()) << results[0].error;
  EXPECT_EQ(decode_all(results[0]), msg);
  EXPECT_EQ(rep.faults.injected, 1u);
  EXPECT_GE(rep.faults.retries, 1u);
  EXPECT_GE(rep.faults.recovered_batches, 1u);
  EXPECT_EQ(scope.fi.fired(FaultClass::kAllocFail), 1u);
  expect_partition(rep);
}

TEST(FaultDirected, HoistScratchAllocFailureExhaustsToTypedFailure) {
  // Every attempt's lease fails: the batch must degrade to kFailed with a
  // descriptive error — a typed terminal status, never an escaped
  // exception or a crash on the partially-accumulated state.
  auto service = make_service(sequential_cfg());
  TestClient client(22, 123);
  ASSERT_TRUE(service.open_session_wire(client.id, client.key_wire()));
  const auto msg = random_msg(3, 124);

  ArmedScope scope(3);
  scope.fi.arm(FaultSpec{.site = "fhe.hoist.scratch.alloc_fail",
                         .kind = FaultClass::kAllocFail,
                         .count = 3});
  ServiceReport rep;
  const auto results =
      service.process(std::vector{client.request(1, msg)}, &rep);
  scope.disarm();

  EXPECT_EQ(results[0].status, RequestStatus::kFailed);
  EXPECT_FALSE(results[0].error.empty());
  EXPECT_TRUE(results[0].blocks.empty());
  EXPECT_EQ(rep.faults.failed, 1u);
  EXPECT_EQ(rep.faults.injected, 3u);
  EXPECT_EQ(rep.faults.retries, 2u);
  expect_partition(rep);

  // The bank must be clean after the failures: a fault-free call succeeds.
  const auto retry = service.process(std::vector{client.request(2, msg)});
  ASSERT_TRUE(retry[0].ok()) << retry[0].error;
  EXPECT_EQ(decode_all(retry[0]), msg);
}

TEST(FaultDirected, PrepareThrowRecoversViaRetry) {
  auto service = make_service(sequential_cfg());
  TestClient client(2, 103);
  ASSERT_TRUE(service.open_session_wire(client.id, client.key_wire()));
  const auto msg = random_msg(4, 104);

  ArmedScope scope;
  scope.fi.arm(FaultSpec{.site = "service.prepare"});
  ServiceReport rep;
  const auto results =
      service.process(std::vector{client.request(1, msg)}, &rep);
  scope.disarm();

  ASSERT_TRUE(results[0].ok()) << results[0].error;
  EXPECT_EQ(decode_all(results[0]), msg);
  EXPECT_EQ(rep.faults.retries, 1u);
  EXPECT_EQ(rep.faults.recovered_batches, 1u);
  EXPECT_EQ(rep.faults.injected, 1u);
  EXPECT_EQ(scope.fi.arrivals("service.prepare"), 2u);  // fault + retry
}

TEST(FaultDirected, EvaluateFaultExhaustsToTypedFailure) {
  // One block per batch: this test pins BATCH-granularity blast radius, so
  // keep the two clients out of one packed batch.
  auto cfg = sequential_cfg();
  cfg.max_batch_blocks = 1;
  auto service = make_service(cfg);
  TestClient doomed(3, 105), healthy(4, 106);
  ASSERT_TRUE(service.open_session_wire(doomed.id, doomed.key_wire()));
  ASSERT_TRUE(service.open_session_wire(healthy.id, healthy.key_wire()));
  const auto msg_d = random_msg(3, 107);
  const auto msg_h = random_msg(5, 108);

  // Fire on every attempt of the FIRST batch (arrivals 0..2 = 3 attempts);
  // the second client's batch starts at arrival 3 and runs clean.
  ArmedScope scope;
  scope.fi.arm(FaultSpec{.site = "service.evaluate", .count = 3});
  ServiceReport rep;
  const auto results = service.process(
      std::vector{doomed.request(1, msg_d), healthy.request(1, msg_h)}, &rep);
  scope.disarm();

  EXPECT_EQ(results[0].status, RequestStatus::kFailed);
  EXPECT_FALSE(results[0].error.empty());
  EXPECT_TRUE(results[0].blocks.empty());
  ASSERT_TRUE(results[1].ok()) << results[1].error;
  EXPECT_EQ(decode_all(results[1]), msg_h);
  EXPECT_EQ(rep.faults.failed, 1u);
  EXPECT_EQ(rep.faults.ok, 1u);
  EXPECT_EQ(rep.faults.retries, 2u);  // attempts 2 and 3 of the doomed batch
  EXPECT_EQ(rep.faults.injected, 3u);
  expect_partition(rep);
}

TEST(FaultDirected, StallTimeoutRetriesThenRecovers) {
  auto cfg = sequential_cfg();
  cfg.stage_timeout_s = 2.0;  // generous for sanitizer builds; the injected
                              // stall below charges well past it regardless
  auto service = make_service(cfg);
  TestClient client(5, 109);
  ASSERT_TRUE(service.open_session_wire(client.id, client.key_wire()));
  const auto msg = random_msg(4, 110);

  // Charge 4 s of virtual time to the first evaluate attempt: over the 2 s
  // stage timeout, so it retries — but the injector only sleeps a bounded
  // real slice, so this test is fast.
  ArmedScope scope;
  scope.fi.arm(FaultSpec{.site = "service.evaluate.stall",
                         .kind = FaultClass::kStall,
                         .arg = 4000});
  ServiceReport rep;
  const auto results =
      service.process(std::vector{client.request(1, msg)}, &rep);
  scope.disarm();

  ASSERT_TRUE(results[0].ok()) << results[0].error;
  EXPECT_EQ(decode_all(results[0]), msg);
  EXPECT_EQ(rep.faults.stage_timeouts, 1u);
  EXPECT_EQ(rep.faults.retries, 1u);
  EXPECT_EQ(rep.faults.recovered_batches, 1u);
  EXPECT_EQ(scope.fi.fired(FaultClass::kStall), 1u);
}

TEST(FaultDirected, PersistentStallDegradesToTimedOut) {
  auto cfg = sequential_cfg();
  cfg.stage_timeout_s = 2.0;
  cfg.max_batch_blocks = 1;  // batch-granularity test: one block per batch
  auto service = make_service(cfg);
  TestClient slow(6, 111), healthy(7, 112);
  ASSERT_TRUE(service.open_session_wire(slow.id, slow.key_wire()));
  ASSERT_TRUE(service.open_session_wire(healthy.id, healthy.key_wire()));
  const auto msg_s = random_msg(3, 113);
  const auto msg_h = random_msg(3, 114);

  ArmedScope scope;
  scope.fi.arm(FaultSpec{.site = "service.evaluate.stall",
                         .kind = FaultClass::kStall,
                         .count = 3,  // every attempt of the first batch
                         .arg = 4000});
  ServiceReport rep;
  const auto results = service.process(
      std::vector{slow.request(1, msg_s), healthy.request(1, msg_h)}, &rep);
  scope.disarm();

  EXPECT_EQ(results[0].status, RequestStatus::kTimedOut);
  EXPECT_TRUE(results[0].blocks.empty());
  ASSERT_TRUE(results[1].ok()) << results[1].error;
  EXPECT_EQ(decode_all(results[1]), msg_h);
  EXPECT_EQ(rep.faults.timed_out, 1u);
  EXPECT_EQ(rep.faults.stage_timeouts, 3u);
  expect_partition(rep);
}

TEST(FaultDirected, QueueSaturationShedsTyped) {
  ServiceConfig cfg;
  cfg.pipelined = true;  // the queue only exists in the pipelined path
  cfg.queue_push_timeout_s = 5.0;
  cfg.max_batch_blocks = 1;  // batch-granularity test: one block per batch
  auto service = make_service(cfg);
  TestClient shed(8, 115), healthy(9, 116);
  ASSERT_TRUE(service.open_session_wire(shed.id, shed.key_wire()));
  ASSERT_TRUE(service.open_session_wire(healthy.id, healthy.key_wire()));
  const auto msg_a = random_msg(3, 117);
  const auto msg_b = random_msg(3, 118);

  // The producer thread is the only visitor of this site, so arrival order
  // is batch order even in the pipelined path: the first batch is shed.
  ArmedScope scope;
  scope.fi.arm(FaultSpec{.site = "service.queue.full",
                         .kind = FaultClass::kForce});
  ServiceReport rep;
  const auto results = service.process(
      std::vector{shed.request(1, msg_a), healthy.request(1, msg_b)}, &rep);
  scope.disarm();

  EXPECT_EQ(results[0].status, RequestStatus::kOverloaded);
  ASSERT_TRUE(results[1].ok()) << results[1].error;
  EXPECT_EQ(decode_all(results[1]), msg_b);
  EXPECT_EQ(rep.faults.shed, 1u);
  EXPECT_EQ(scope.fi.fired(FaultClass::kForce), 1u);
  expect_partition(rep);
}

TEST(FaultDirected, CorruptKeyQuarantinedThenReOnboardRestores) {
  auto service = make_service(sequential_cfg());
  TestClient poisoned(10, 119), healthy(11, 120);
  const auto key_wire = poisoned.key_wire();
  ASSERT_TRUE(service.open_session_wire(poisoned.id, key_wire));
  ASSERT_TRUE(service.open_session_wire(healthy.id, healthy.key_wire()));
  const auto msg_p = random_msg(3, 121);
  const auto msg_h = random_msg(3, 122);

  ArmedScope scope(7);
  scope.fi.arm(FaultSpec{.site = "service.key.corrupt",
                         .kind = FaultClass::kCorrupt,
                         .arg = 4});
  ServiceReport rep;
  const auto results = service.process(
      std::vector{poisoned.request(1, msg_p), healthy.request(1, msg_h)},
      &rep);
  scope.disarm();

  // The corrupted session key fails the decrypt-free plausibility check;
  // its batch is quarantined before any evaluation, batchmates run clean.
  EXPECT_EQ(results[0].status, RequestStatus::kQuarantined);
  EXPECT_FALSE(results[0].error.empty());
  ASSERT_TRUE(results[1].ok()) << results[1].error;
  EXPECT_EQ(decode_all(results[1]), msg_h);
  EXPECT_EQ(rep.faults.quarantined, 1u);
  EXPECT_EQ(scope.fi.fired(FaultClass::kCorrupt), 1u);
  expect_partition(rep);

  // Quarantine is recoverable: a fresh key upload re-onboards the client
  // and the same message (fresh nonce) transciphers correctly.
  ASSERT_TRUE(service.open_session_wire(poisoned.id, key_wire));
  const auto again = service.process(std::vector{poisoned.request(2, msg_p)});
  ASSERT_TRUE(again[0].ok()) << again[0].error;
  EXPECT_EQ(decode_all(again[0]), msg_p);
}

TEST(FaultDirected, PackedPoisonMidPackQuarantinesOnlyThatTenant) {
  // Cross-tenant packing blast radius: three tenants share ONE packed
  // batch; the key of the SECOND tenant is poisoned mid-pack (the
  // service.pack.key.corrupt site only exists for multi-tenant batches,
  // `after = 1` skips the first tenant's arrival). Only that tenant may
  // degrade — the co-packed tenants must decode bit-identical to a
  // fault-free run of the same requests.
  auto service = make_service(sequential_cfg());
  std::vector<TestClient> tenants;
  std::vector<std::vector<u64>> msgs;
  std::vector<TranscipherRequest> reqs;
  for (u64 c = 0; c < 3; ++c) {
    tenants.emplace_back(40 + c, 500 + c);
    ASSERT_TRUE(
        service.open_session_wire(tenants[c].id, tenants[c].key_wire()));
    msgs.push_back(random_msg(3, 600 + c));
    reqs.push_back(tenants[c].request(1, msgs[c]));
  }

  ArmedScope scope(11);
  scope.fi.arm(FaultSpec{.site = "service.pack.key.corrupt",
                         .kind = FaultClass::kCorrupt,
                         .after = 1,
                         .arg = 4});
  ServiceReport rep;
  const auto results = service.process(reqs, &rep);
  scope.disarm();

  ASSERT_EQ(rep.batches, 1u);  // all three tenants packed into one batch
  EXPECT_EQ(rep.cross_tenant_batches, 1u);
  EXPECT_EQ(results[1].status, RequestStatus::kQuarantined);
  EXPECT_TRUE(results[1].blocks.empty());
  ASSERT_TRUE(results[0].ok()) << results[0].error;
  ASSERT_TRUE(results[2].ok()) << results[2].error;
  EXPECT_EQ(decode_all(results[0]), msgs[0]);
  EXPECT_EQ(decode_all(results[2]), msgs[2]);
  EXPECT_EQ(rep.faults.quarantined, 1u);
  EXPECT_EQ(rep.faults.ok, 2u);
  EXPECT_EQ(scope.fi.fired(FaultClass::kCorrupt), 1u);
  expect_partition(rep);

  // Containment is also recoverable: a fresh key upload restores the
  // poisoned tenant on the same service instance.
  ASSERT_TRUE(service.open_session_wire(tenants[1].id, tenants[1].key_wire()));
  const auto again = service.process(std::vector{tenants[1].request(2, msgs[1])});
  ASSERT_TRUE(again[0].ok()) << again[0].error;
  EXPECT_EQ(decode_all(again[0]), msgs[1]);
}

TEST(FaultDirected, TruncatedWireUploadRejected) {
  auto service = make_service();
  TestClient client(12, 123);
  const auto wire = client.key_wire();

  ArmedScope scope;
  scope.fi.arm(
      FaultSpec{.site = "service.wire.truncate", .kind = FaultClass::kForce});
  std::string error;
  EXPECT_FALSE(service.open_session_wire(client.id, wire, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(service.has_session(client.id));
  scope.disarm();

  // The identical bytes are accepted once the uplink stops truncating.
  ASSERT_TRUE(service.open_session_wire(client.id, wire, &error)) << error;
  const auto msg = random_msg(3, 124);
  const auto results = service.process(std::vector{client.request(1, msg)});
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(decode_all(results[0]), msg);
}

TEST(FaultDirected, UnarmedInjectorIsInvisible) {
  // A registered injector with nothing armed must not change behaviour —
  // it only counts arrivals (this is the instrumented-but-quiet fast path
  // every production build runs one pointer-load away from).
  auto service = make_service(sequential_cfg());
  TestClient client(13, 125);
  ASSERT_TRUE(service.open_session_wire(client.id, client.key_wire()));
  const auto msg = random_msg(4, 126);

  ArmedScope scope;
  ServiceReport rep;
  const auto results =
      service.process(std::vector{client.request(1, msg)}, &rep);
  scope.disarm();

  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(decode_all(results[0]), msg);
  EXPECT_EQ(rep.faults.injected, 0u);
  EXPECT_EQ(scope.fi.fired_total(), 0u);
  EXPECT_GE(scope.fi.arrivals("service.prepare"), 1u);
  EXPECT_GE(scope.fi.arrivals("service.evaluate"), 1u);
  EXPECT_GE(scope.fi.arrivals("pool.acquire"), 1u);
}

// ---------------------------------------------------------------------------
// The seeded chaos sweep: random fault schedules through the full pipelined
// service. Reproduce a failure with POE_FAULT_SEED=<seed>; POE_FAULT_SCHEDULES
// controls sweep length (nightly CI runs a long sweep).
// ---------------------------------------------------------------------------

constexpr FaultInjector::MenuEntry kSweepMenu[] = {
    {"pool.acquire", FaultClass::kAllocFail},
    {"fhe.hoist.scratch.alloc_fail", FaultClass::kAllocFail},
    {"service.prepare", FaultClass::kThrow},
    {"service.prepare.stall", FaultClass::kStall},
    {"service.evaluate", FaultClass::kThrow},
    {"service.evaluate.stall", FaultClass::kStall},
    {"service.queue.full", FaultClass::kForce},
    {"service.key.corrupt", FaultClass::kCorrupt},
    {"service.pack.key.corrupt", FaultClass::kCorrupt},
};

u64 env_u64(const char* name, u64 fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

TEST(FaultSweep, RandomScheduleSweep) {
  // ≥ 6 instrumented sites across ≥ 4 fault classes go through the sweep.
  ASSERT_GE(std::size(kSweepMenu), 6u);

  const u64 base_seed = env_u64("POE_FAULT_SEED", 20260805);
  const u64 schedules = env_u64("POE_FAULT_SCHEDULES", 4);
  RecordProperty("poe_fault_seed", std::to_string(base_seed));

  ServiceConfig cfg;
  cfg.pipelined = true;
  cfg.max_stage_attempts = 3;
  cfg.backoff_base_s = 1e-4;
  cfg.stage_timeout_s = 2.0;
  cfg.queue_push_timeout_s = 5.0;
  // Small batches force SEVERAL cross-tenant packed batches per call, so
  // every site (including the per-tenant pack sites) gets enough arrivals
  // for the schedules' random arrival windows.
  cfg.max_batch_blocks = 4;

  std::vector<TestClient> clients;
  std::vector<std::vector<std::uint8_t>> key_wires;
  std::vector<std::vector<u64>> msgs;
  for (u64 c = 0; c < 3; ++c) {
    clients.emplace_back(30 + c, 300 + c);
    key_wires.push_back(clients.back().key_wire());
    msgs.push_back(random_msg(stack().config.pasta.t + 2 * c + 1, 400 + c));
  }
  auto requests_with_nonce = [&](u64 nonce) {
    std::vector<TranscipherRequest> reqs;
    for (std::size_t c = 0; c < clients.size(); ++c) {
      reqs.push_back(clients[c].request(nonce, msgs[c]));
    }
    return reqs;
  };
  // Two waves of interleaved tenants per call: 12 blocks over 3 batches of
  // 4 tiles, every batch packing two tenants.
  auto two_wave_requests = [&](u64 nonce) {
    auto reqs = requests_with_nonce(nonce);
    const auto wave2 = requests_with_nonce(nonce + 1);
    reqs.insert(reqs.end(), wave2.begin(), wave2.end());
    return reqs;
  };

  // Fault-free baseline: the bit-exact outputs every surviving request of
  // every fault run must reproduce (same nonce, same key upload bytes).
  std::vector<std::vector<std::vector<std::uint8_t>>> baseline;
  {
    auto service = make_service(cfg);
    for (std::size_t c = 0; c < clients.size(); ++c) {
      ASSERT_TRUE(service.open_session_wire(clients[c].id, key_wires[c]));
    }
    const auto results = service.process(two_wave_requests(1));
    for (std::size_t r = 0; r < results.size(); ++r) {
      ASSERT_TRUE(results[r].ok()) << results[r].error;
      ASSERT_EQ(decode_all(results[r]), msgs[r % clients.size()]);
      baseline.push_back(wire_blocks(results[r]));
    }
  }

  u64 total_fired = 0;
  for (u64 s = 0; s < schedules; ++s) {
    SCOPED_TRACE("schedule seed " + std::to_string(base_seed + s));
    auto service = make_service(cfg);
    for (std::size_t c = 0; c < clients.size(); ++c) {
      ASSERT_TRUE(service.open_session_wire(clients[c].id, key_wires[c]));
    }

    ArmedScope scope(base_seed + s);
    for (auto& spec :
         FaultInjector::random_schedule(base_seed + s, kSweepMenu, 3)) {
      scope.fi.arm(std::move(spec));
    }
    ServiceReport rep;
    // The headline promise: whatever the schedule does, process() returns —
    // every injected fault recovers or degrades to a typed status.
    const auto results = service.process(two_wave_requests(1), &rep);
    scope.disarm();
    total_fired += scope.fi.fired_total();

    expect_partition(rep);
    EXPECT_EQ(rep.faults.injected, scope.fi.fired_total());
    ASSERT_EQ(results.size(), 2 * clients.size());
    for (std::size_t c = 0; c < results.size(); ++c) {
      const auto& res = results[c];
      EXPECT_STRNE(to_string(res.status), "?");
      if (res.ok()) {
        // A tenant that survived a chaotic run decodes bit-identical to the
        // fault-free run — degraded neighbours must not perturb it.
        EXPECT_EQ(decode_all(res), msgs[c % clients.size()]) << "request " << c;
        // Ciphertext BYTES only match when no tenant was quarantined: a
        // quarantine removes that tenant from the batch's merged key, so
        // the survivors' ciphertexts differ while their decoded slots stay
        // exactly equal (the keystream circuit is tile-local).
        if (rep.faults.quarantined == 0) {
          EXPECT_EQ(wire_blocks(res), baseline[c]) << "client " << c;
        }
      } else {
        EXPECT_TRUE(res.blocks.empty());
        EXPECT_FALSE(res.error.empty());
      }
    }

    // Full recovery once the chaos stops: re-onboard every client (a
    // schedule may have poisoned a cached session key) and serve fresh
    // nonces on the SAME service instance.
    for (std::size_t c = 0; c < clients.size(); ++c) {
      ASSERT_TRUE(service.open_session_wire(clients[c].id, key_wires[c]));
    }
    const auto after = service.process(requests_with_nonce(100 + s));
    for (std::size_t c = 0; c < clients.size(); ++c) {
      ASSERT_TRUE(after[c].ok()) << after[c].error;
      EXPECT_EQ(decode_all(after[c]), msgs[c]);
    }
  }
  // A sweep that never fires is not sweeping; with 3 faults per schedule and
  // small arrival windows this holds for any seed in practice.
  EXPECT_GT(total_fired, 0u);
}

}  // namespace
}  // namespace poe::service
