// Serialization fuzz regression suite.
//
// Replays the checked-in corpus (tests/corpus/, path injected as
// POE_CORPUS_DIR) against the three deserializers that eat untrusted wire
// bytes (PASTA element buffers, BGV ciphertexts, protocol frames), then byte-mutates every corpus entry plus freshly generated valid
// artifacts with a seeded RNG. The contract under fuzzing: throw a clean
// poe::Error or produce a structurally valid result — never crash, never
// read out of bounds (this binary is part of the sanitizer CI job).
// POE_FAULT_SEED reseeds the mutations; POE_FUZZ_ITERS lengthens the run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fhe/bgv.hpp"
#include "fhe/serialize.hpp"
#include "net/frame.hpp"
#include "pasta/params.hpp"
#include "pasta/serialize.hpp"

namespace poe {
namespace {

using u64 = std::uint64_t;

struct Entry {
  std::string name;
  std::string kind;    // "pasta" | "bgv" | "frame"
  u64 count = 0;       // pasta: elements demanded on unpack
  std::string expect;  // "roundtrip" | "error"
  std::vector<std::uint8_t> bytes;
};

std::vector<std::uint8_t> parse_hex(const std::string& hex) {
  POE_ENSURE(hex.size() % 2 == 0, "odd hex length in corpus");
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(
        std::stoul(hex.substr(2 * i, 2), nullptr, 16));
  }
  return out;
}

std::vector<Entry> load_corpus() {
  std::vector<Entry> entries;
  for (const auto& file :
       std::filesystem::directory_iterator(POE_CORPUS_DIR)) {
    if (file.path().extension() != ".txt") continue;
    Entry e;
    e.name = file.path().filename().string();
    std::ifstream in(file.path());
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ls(line);
      std::string key, value;
      ls >> key >> value;
      if (key == "kind") e.kind = value;
      else if (key == "count") e.count = std::strtoull(value.c_str(), nullptr, 10);
      else if (key == "expect") e.expect = value;
      else if (key == "hex") e.bytes = parse_hex(value);
    }
    POE_ENSURE(e.kind == "pasta" || e.kind == "bgv" || e.kind == "frame",
               "corpus entry with unknown kind: " + e.name);
    POE_ENSURE(e.expect == "roundtrip" || e.expect == "error",
               "corpus entry with unknown expectation: " + e.name);
    entries.push_back(std::move(e));
  }
  POE_ENSURE(!entries.empty(), "empty fuzz corpus at " POE_CORPUS_DIR);
  return entries;
}

// Shared toy BGV stack for the "bgv" entries (matches the corpus README).
fhe::Bgv& toy_bgv() {
  static fhe::Bgv bgv(fhe::BgvParams::toy());
  return bgv;
}

u64 env_u64(const char* name, u64 fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

// One decode attempt under the fuzz contract. Returns true if it decoded.
bool try_decode(const Entry& e, std::span<const std::uint8_t> bytes) {
  if (e.kind == "pasta") {
    const auto params = pasta::pasta4();
    const auto decoded = pasta::unpack_elements(params, bytes, e.count);
    EXPECT_EQ(decoded.size(), e.count) << e.name;
    for (const u64 v : decoded) EXPECT_LT(v, params.p) << e.name;
    return true;
  }
  if (e.kind == "frame") {
    const net::Frame f = net::decode_frame(bytes);
    // A decoded frame's payload is exactly the bytes past the header.
    EXPECT_EQ(f.payload.size(), bytes.size() - net::kFrameHeaderBytes)
        << e.name;
    return true;
  }
  const fhe::Ciphertext ct =
      fhe::deserialize_ciphertext(toy_bgv().rns(), bytes);
  // Anything the deserializer accepts must also pass the decrypt-free
  // plausibility check — the two untrusted-input gates agree by design.
  const auto why = fhe::validate_ciphertext(toy_bgv().rns(), ct);
  EXPECT_FALSE(why.has_value()) << e.name << ": " << *why;
  return true;
}

TEST(SerializeFuzz, CorpusReplaysVerbatim) {
  for (const Entry& e : load_corpus()) {
    SCOPED_TRACE(e.name);
    if (e.expect == "error") {
      EXPECT_THROW(try_decode(e, e.bytes), poe::Error);
      continue;
    }
    ASSERT_TRUE(try_decode(e, e.bytes));
    // Roundtrip entries re-encode to the exact corpus bytes.
    if (e.kind == "pasta") {
      const auto params = pasta::pasta4();
      EXPECT_EQ(pasta::pack_elements(
                    params, pasta::unpack_elements(params, e.bytes, e.count)),
                e.bytes);
    } else if (e.kind == "frame") {
      const net::Frame f = net::decode_frame(e.bytes);
      EXPECT_EQ(net::encode_frame(f.type, f.payload), e.bytes);
    } else {
      EXPECT_EQ(fhe::serialize_ciphertext(
                    toy_bgv().rns(),
                    fhe::deserialize_ciphertext(toy_bgv().rns(), e.bytes)),
                e.bytes);
    }
  }
}

TEST(SerializeFuzz, MutatedCorpusNeverCrashes) {
  auto seeds = load_corpus();

  // Add freshly generated valid artifacts as mutation seeds: a real toy BGV
  // ciphertext (too large to check in) and a two-block PASTA buffer.
  {
    fhe::Plaintext pt;
    pt.coeffs.assign(16, 0);
    for (std::size_t i = 0; i < pt.coeffs.size(); ++i) pt.coeffs[i] = i + 1;
    Entry e;
    e.name = "<generated toy bgv ct>";
    e.kind = "bgv";
    e.expect = "roundtrip";
    e.bytes = fhe::serialize_ciphertext(toy_bgv().rns(),
                                        toy_bgv().encrypt(pt));
    seeds.push_back(std::move(e));

    const auto params = pasta::pasta4();
    Xoshiro256 elem_rng(11);
    std::vector<u64> elems(2 * params.t);
    for (auto& v : elems) v = elem_rng.below(params.p);
    Entry p;
    p.name = "<generated pasta buffer>";
    p.kind = "pasta";
    p.count = elems.size();
    p.expect = "roundtrip";
    p.bytes = pasta::pack_elements(params, elems);
    seeds.push_back(std::move(p));

    // A larger frame (kProcessBatch-sized payload) as a mutation seed for
    // the wire protocol path.
    Entry f;
    f.name = "<generated frame>";
    f.kind = "frame";
    f.expect = "roundtrip";
    Xoshiro256 frame_rng(13);
    std::vector<std::uint8_t> frame_payload(512);
    for (auto& b : frame_payload) {
      b = static_cast<std::uint8_t>(frame_rng.next());
    }
    f.bytes = net::encode_frame(net::MsgType::kProcessBatch, frame_payload);
    seeds.push_back(std::move(f));
  }

  const u64 seed = env_u64("POE_FAULT_SEED", 4242);
  const u64 iters = env_u64("POE_FUZZ_ITERS", 120);
  Xoshiro256 rng(seed);

  std::size_t decoded = 0, rejected = 0;
  for (const Entry& e : seeds) {
    SCOPED_TRACE(e.name);
    for (u64 it = 0; it < iters; ++it) {
      auto bytes = e.bytes;
      // Flip a few bytes; sometimes truncate; sometimes append garbage.
      const u64 flips = 1 + rng.below(4);
      for (u64 f = 0; f < flips && !bytes.empty(); ++f) {
        bytes[rng.below(bytes.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
      }
      if (!bytes.empty() && rng.below(4) == 0) {
        bytes.resize(rng.below(bytes.size() + 1));
      }
      if (rng.below(8) == 0) {
        const u64 extra = 1 + rng.below(8);
        for (u64 x = 0; x < extra; ++x) {
          bytes.push_back(static_cast<std::uint8_t>(rng.below(256)));
        }
      }
      try {
        if (try_decode(e, bytes)) ++decoded;
      } catch (const poe::Error&) {
        ++rejected;  // clean rejection is the other acceptable outcome
      }
    }
  }
  // The mutator must exercise both sides of the contract.
  EXPECT_GT(decoded, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(SerializeFuzz, EmptyAndZeroEdges) {
  const auto params = pasta::pasta4();
  // Zero elements from an empty buffer is a valid, empty decode.
  EXPECT_TRUE(pasta::unpack_elements(params, {}, 0).empty());
  EXPECT_TRUE(pasta::pack_elements(params, {}).empty());
  // An empty BGV stream is a truncated header.
  EXPECT_THROW(fhe::deserialize_ciphertext(toy_bgv().rns(), {}), poe::Error);
}

}  // namespace
}  // namespace poe
