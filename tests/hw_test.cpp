#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "common/rng.hpp"
#include "hw/accelerator.hpp"
#include "hw/area_model.hpp"
#include "hw/countermeasures.hpp"
#include "hw/platforms.hpp"
#include "hw/xof_unit.hpp"
#include "pasta/cipher.hpp"

namespace poe::hw {
namespace {

using pasta::pasta3;
using pasta::pasta4;
using pasta::PastaCipher;

TEST(XofUnit, OverlappedCadence) {
  // Words 1..21 in consecutive cycles after init (2 absorb + 24 perm), then
  // a 5-cycle gap before the next 21.
  XofSamplerUnit xof(pasta4(), 0, 0);
  std::vector<std::uint64_t> cycles;
  std::uint64_t words = 0;
  // Draw enough accepted coefficients to cover > 2 batches of words.
  while (xof.words_drawn() < 50) {
    xof.next(true);
    words = xof.words_drawn();
  }
  (void)words;
  // Reconstruct expectation: word w (1-based) in batch b = (w-1)/21 arrives
  // at 26 + b*26 + ((w-1)%21 + 1).
  XofSamplerUnit x2(pasta4(), 0, 0);
  for (int i = 0; i < 100; ++i) {
    const auto before = x2.words_drawn();
    const auto c = x2.next(true);
    const auto accepted_word_index = x2.words_drawn();  // 1-based
    (void)before;
    const std::uint64_t w = accepted_word_index - 1;
    const std::uint64_t expect = 26 + (w / 21) * 26 + (w % 21) + 1;
    EXPECT_EQ(c.cycle, expect) << "word " << accepted_word_index;
  }
}

TEST(XofUnit, NaiveCadenceIsSlower) {
  XofTimingConfig naive;
  naive.mode = KeccakMode::kNaive;
  XofSamplerUnit fast(pasta4(), 3, 4);
  XofSamplerUnit slow(pasta4(), 3, 4, naive);
  for (int i = 0; i < 200; ++i) {
    const auto cf = fast.next(true);
    const auto cs = slow.next(true);
    EXPECT_EQ(cf.value, cs.value);  // identical functional stream
    EXPECT_LE(cf.cycle, cs.cycle);
  }
  // Past the first batch the naive mode pays 45 vs 26 cycles per batch.
  EXPECT_GT(slow.current_cycle(),
            fast.current_cycle() + 19 * (fast.words_drawn() / 21 - 1));
}

TEST(XofUnit, MatchesSoftwareSampler) {
  const auto params = pasta3();
  XofSamplerUnit hw_xof(params, 42, 9);
  pasta::FieldSampler sw(params, 42, 9);
  for (int i = 0; i < 2000; ++i) {
    const bool allow_zero = (i % 3) != 0;
    EXPECT_EQ(hw_xof.next(allow_zero).value, sw.next(allow_zero));
  }
}

TEST(XofUnit, StallAdvancesClock) {
  XofSamplerUnit xof(pasta4(), 0, 0);
  const auto c1 = xof.next(true);
  xof.stall_until(c1.cycle + 1000);
  const auto c2 = xof.next(true);
  EXPECT_GT(c2.cycle, c1.cycle + 1000);
  EXPECT_GE(xof.stall_cycles(), 999u);
}

class HwFunctionalEquivalence
    : public ::testing::TestWithParam<
          std::tuple<int, unsigned, std::uint64_t>> {};

TEST_P(HwFunctionalEquivalence, KeystreamMatchesReferenceCipher) {
  const auto [variant, omega, nonce] = GetParam();
  const auto params = variant == 3 ? pasta3(pasta::pasta_prime(omega))
                                   : pasta4(pasta::pasta_prime(omega));
  Xoshiro256 rng(55 + nonce + omega);
  const auto key = PastaCipher::random_key(params, rng);

  AcceleratorSim sim(params);
  PastaCipher sw(params, key);
  for (std::uint64_t ctr = 0; ctr < 3; ++ctr) {
    const auto hw_result = sim.run_block(key, nonce, ctr);
    EXPECT_EQ(hw_result.keystream, sw.keystream(nonce, ctr))
        << "variant=" << variant << " w=" << omega << " nonce=" << nonce
        << " ctr=" << ctr;
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsPrimesAndNonces, HwFunctionalEquivalence,
    ::testing::Combine(::testing::Values(3, 4),
                       ::testing::Values(17u, 33u, 54u, 60u),
                       ::testing::Values(0ull, 123456789ull)));

TEST(Accelerator, Pasta4CycleCountNearPaper) {
  // Paper Table II: 1,591 cycles for one PASTA-4 block (nonce-dependent).
  const auto params = pasta4();
  Xoshiro256 rng(1);
  const auto key = PastaCipher::random_key(params, rng);
  AcceleratorSim sim(params);
  std::uint64_t sum = 0;
  const int kBlocks = 20;
  for (int i = 0; i < kBlocks; ++i) {
    const auto r = sim.run_block(key, 1000 + i, 0);
    sum += r.stats.total_cycles;
    EXPECT_EQ(r.stats.xof_stall_cycles, 0u) << "unexpected back-pressure";
  }
  const double mean = static_cast<double>(sum) / kBlocks;
  EXPECT_NEAR(mean, 1591.0, 1591.0 * 0.06) << "mean cycles " << mean;
}

TEST(Accelerator, Pasta3CycleCountNearPaper) {
  // Paper Table II: 4,955 cycles for one PASTA-3 block.
  const auto params = pasta3();
  Xoshiro256 rng(2);
  const auto key = PastaCipher::random_key(params, rng);
  AcceleratorSim sim(params);
  std::uint64_t sum = 0;
  const int kBlocks = 8;
  for (int i = 0; i < kBlocks; ++i)
    sum += sim.run_block(key, 77 + i, 0).stats.total_cycles;
  const double mean = static_cast<double>(sum) / kBlocks;
  EXPECT_NEAR(mean, 4955.0, 4955.0 * 0.07) << "mean cycles " << mean;
}

TEST(Accelerator, NaiveKeccakAlmostDoublesCycles) {
  // §IV-B: "the clock cycle almost doubles for a naive Keccak
  // implementation".
  const auto params = pasta4();
  Xoshiro256 rng(3);
  const auto key = PastaCipher::random_key(params, rng);
  XofTimingConfig naive;
  naive.mode = KeccakMode::kNaive;
  AcceleratorSim fast(params);
  AcceleratorSim slow(params, naive);
  const auto cf = fast.run_block(key, 5, 0).stats.total_cycles;
  const auto cs = slow.run_block(key, 5, 0).stats.total_cycles;
  const double ratio = static_cast<double>(cs) / static_cast<double>(cf);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(Accelerator, PermutationCountNearPaperEstimate) {
  const auto params4 = pasta4();
  Xoshiro256 rng(4);
  const auto key4 = PastaCipher::random_key(params4, rng);
  const auto r4 = AcceleratorSim(params4).run_block(key4, 0, 0);
  EXPECT_GE(r4.stats.permutations, 55u);  // paper: ~60
  EXPECT_LE(r4.stats.permutations, 68u);

  const auto params3 = pasta3();
  const auto key3 = PastaCipher::random_key(params3, rng);
  const auto r3 = AcceleratorSim(params3).run_block(key3, 0, 0);
  EXPECT_GE(r3.stats.permutations, 180u);  // paper: ~186
  EXPECT_LE(r3.stats.permutations, 210u);
}

TEST(Accelerator, EncryptMatchesSoftwareAndAccumulatesCycles) {
  const auto params = pasta4();
  Xoshiro256 rng(5);
  const auto key = PastaCipher::random_key(params, rng);
  std::vector<std::uint64_t> msg(params.t * 2 + 7);
  for (auto& m : msg) m = rng.below(params.p);

  AcceleratorSim sim(params);
  const auto hw_result = sim.encrypt(key, msg, 99);
  PastaCipher sw(params, key);
  EXPECT_EQ(hw_result.ciphertext, sw.encrypt(msg, 99));
  EXPECT_EQ(hw_result.per_block.size(), 3u);
  std::uint64_t sum = 0;
  for (const auto& b : hw_result.per_block) sum += b.total_cycles;
  EXPECT_EQ(hw_result.total_cycles, sum);
}

TEST(Accelerator, CyclesVaryWithNonce) {
  // §IV-B: "the number of clock cycles upon experimentation varies with a
  // small deviation based on the initiating nonce and counter".
  const auto params = pasta4();
  Xoshiro256 rng(6);
  const auto key = PastaCipher::random_key(params, rng);
  AcceleratorSim sim(params);
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (int i = 0; i < 30; ++i) {
    const auto c = sim.run_block(key, i, 0).stats.total_cycles;
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_GT(hi, lo);                       // varies
  EXPECT_LT(hi - lo, lo / 10);             // ...with small deviation
}

TEST(Accelerator, BitlengthPerformanceScalesWithRejectionRate) {
  // §IV-A claims "the performance stays the same for different bit
  // lengths". Measured refinement (recorded in EXPERIMENTS.md): the
  // XOF-bound cycle count is invariant *per accepted-word demand* — the
  // datapath itself is width-independent — but the demand depends on the
  // prime's rejection rate. The Fermat prime 65537 rejects ~half the
  // words (mask 2^17-1); the PASTA reference 33/60-bit moduli sit just
  // below a power of two and reject almost nothing, so those blocks are
  // ~1.8x FASTER. Cycles normalised by expected XOF words must be flat.
  std::vector<double> normalised;
  for (unsigned omega : {17u, 33u, 54u, 60u}) {
    const auto params = pasta4(pasta::pasta_prime(omega));
    Xoshiro256 rng(60);
    const auto key = PastaCipher::random_key(params, rng);
    AcceleratorSim sim(params);
    std::uint64_t sum = 0;
    for (int i = 0; i < 12; ++i)
      sum += sim.run_block(key, 500 + i, 0).stats.total_cycles;
    const double mean = static_cast<double>(sum) / 12.0;
    // Expected XOF words for the block at this prime's rejection rate;
    // subtract the width-independent start-up (26cc) and final-Mix (t cc)
    // overheads before normalising.
    const double words = static_cast<double>(params.xof_elements_per_block()) *
                         params.expected_words_per_element();
    normalised.push_back((mean - 26.0 - static_cast<double>(params.t)) /
                         words);
  }
  for (std::size_t i = 1; i < normalised.size(); ++i) {
    EXPECT_NEAR(normalised[i] / normalised[0], 1.0, 0.06)
        << "omega index " << i;
  }
}

TEST(AreaModel, AreaTimeProductGrowsWithBitlength) {
  // §IV-A: "The area-time product increases as the area is more than
  // doubled when the bit length is doubled" — cycles are flat, area grows.
  AreaModel model;
  double prev_at = 0;
  for (unsigned omega : {17u, 33u, 54u}) {
    const auto params = pasta4(pasta::pasta_prime(omega));
    const double at = static_cast<double>(model.fpga(params).lut);
    EXPECT_GT(at, prev_at) << "omega " << omega;
    prev_at = at;
  }
  // 17 -> 33 bits (~2x width): LUT area grows by ~1.8x or more.
  EXPECT_GT(static_cast<double>(
                model.fpga(pasta4(pasta::pasta_prime(33))).lut) /
                static_cast<double>(model.fpga(pasta4()).lut),
            1.7);
}

TEST(Accelerator, GoldenCycleCounts) {
  // Pinned cycle counts for fixed (key-independent timing) nonces — any
  // change to the XOF cadence, sampler or scheduler shows up here.
  const std::uint64_t nonce = 0xBEEF;
  {
    const auto params = pasta4();
    std::vector<std::uint64_t> key(params.key_size(), 1);
    const auto r = AcceleratorSim(params).run_block(key, nonce, 7);
    EXPECT_EQ(r.stats.total_cycles,
              AcceleratorSim(params).run_block(key, nonce, 7)
                  .stats.total_cycles);  // deterministic
    EXPECT_GT(r.stats.total_cycles, 1450u);
    EXPECT_LT(r.stats.total_cycles, 1800u);
  }
  {
    const auto params = pasta3();
    std::vector<std::uint64_t> key(params.key_size(), 2);
    const auto r = AcceleratorSim(params).run_block(key, nonce, 7);
    EXPECT_GT(r.stats.total_cycles, 4700u);
    EXPECT_LT(r.stats.total_cycles, 5600u);
  }
}

TEST(Accelerator, RejectsWrongKeySize) {
  AcceleratorSim sim(pasta4());
  EXPECT_THROW(sim.run_block(std::vector<std::uint64_t>(3), 0, 0), poe::Error);
}

TEST(Platforms, CycleToMicrosecondConversion) {
  EXPECT_NEAR(fpga_artix7().cycles_to_us(4955), 66.1, 0.1);   // Table II
  EXPECT_NEAR(asic_1ghz().cycles_to_us(4955), 4.96, 0.01);    // Table II
  EXPECT_NEAR(riscv_soc_100mhz().cycles_to_us(1591), 15.9, 0.05);
}

TEST(AreaModel, ReproducesTable1Anchors) {
  AreaModel model;
  for (const auto& row : paper_table1()) {
    const auto params = row.t == 128 ? pasta3(pasta::pasta_prime(row.omega))
                                     : pasta4(pasta::pasta_prime(row.omega));
    const auto r = model.fpga(params);
    EXPECT_NEAR(static_cast<double>(r.lut), static_cast<double>(row.lut),
                row.lut * 0.002)
        << row.scheme << " w=" << row.omega;
    EXPECT_NEAR(static_cast<double>(r.ff), static_cast<double>(row.ff),
                row.ff * 0.002);
    EXPECT_EQ(r.dsp, row.dsp);
    EXPECT_EQ(r.bram, 0u);
  }
}

TEST(AreaModel, DspIsStructural) {
  EXPECT_EQ(AreaModel::dsp_per_multiplier(17), 1u);
  EXPECT_EQ(AreaModel::dsp_per_multiplier(18), 1u);
  EXPECT_EQ(AreaModel::dsp_per_multiplier(33), 4u);
  EXPECT_EQ(AreaModel::dsp_per_multiplier(54), 9u);
  EXPECT_EQ(AreaModel::dsp_per_multiplier(60), 16u);
}

TEST(AreaModel, AsicAnchorsAndScaling) {
  AreaModel model;
  const auto p17 = pasta4();
  EXPECT_NEAR(model.asic_mm2(p17, 28), 0.24, 0.005);
  EXPECT_NEAR(model.asic_mm2(p17, 7), 0.03, 0.001);
  // §IV-A ②: area x2.1 at omega=33, x4.3 at omega=54.
  EXPECT_NEAR(model.asic_mm2(pasta4(pasta::pasta_prime(33)), 28) / 0.24, 2.1,
              0.05);
  EXPECT_NEAR(model.asic_mm2(pasta4(pasta::pasta_prime(54)), 28) / 0.24, 4.3,
              0.05);
  EXPECT_THROW(model.asic_mm2(p17, 12), poe::Error);
}

TEST(AreaModel, PowerBounded) {
  AreaModel model;
  double max_power = 0;
  for (unsigned omega : {17u, 33u, 54u}) {
    for (auto params : {pasta3(pasta::pasta_prime(omega)),
                        pasta4(pasta::pasta_prime(omega))}) {
      max_power = std::max(max_power, model.asic_power_w(params, 28));
    }
  }
  EXPECT_NEAR(max_power, 1.2, 0.01);  // §IV-A ②: "maximum power ... 1.2W"
}

TEST(AreaModel, BreakdownSumsToOneAndMatGenDominates) {
  AreaModel model;
  for (const std::string platform : {"fpga", "asic"}) {
    const auto shares = model.breakdown(pasta3(), platform);
    double sum = 0;
    double matgen = 0, largest = 0;
    for (const auto& s : shares) {
      sum += s.fraction;
      largest = std::max(largest, s.fraction);
      if (s.module.find("MatGen") != std::string::npos) matgen = s.fraction;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // Fig. 7: MatGen is the largest module (33.3% on FPGA).
    EXPECT_EQ(matgen, largest);
    EXPECT_GT(matgen, 0.25);
  }
}

TEST(AreaModel, Pasta3VsPasta4AreaRatio) {
  // §IV-C ①: "PASTA-3 consumes approximately 3x more area than PASTA-4".
  AreaModel model;
  const double r_lut =
      static_cast<double>(model.fpga(pasta3()).lut) /
      static_cast<double>(model.fpga(pasta4()).lut);
  EXPECT_GT(r_lut, 2.5);
  EXPECT_LT(r_lut, 3.5);
}

TEST(AreaModel, FitsWithinArtix7) {
  // Table I reports utilisation <= 78% on every resource.
  AreaModel model;
  FpgaDevice device;
  for (const auto& row : paper_table1()) {
    const auto params = row.t == 128 ? pasta3(pasta::pasta_prime(row.omega))
                                     : pasta4(pasta::pasta_prime(row.omega));
    const auto r = model.fpga(params);
    EXPECT_LE(r.lut, device.lut);
    EXPECT_LE(r.ff, device.ff);
    EXPECT_LE(r.dsp, device.dsp);
  }
}

TEST(Trace, RecordsScheduleAndMatchesStats) {
  const auto params = pasta4();
  Xoshiro256 rng(40);
  const auto key = PastaCipher::random_key(params, rng);
  AcceleratorSim sim(params);
  ScheduleTrace trace;
  const auto r = sim.run_block(key, 2, 0, nullptr, &trace);

  // 4 vectors per affine layer, 5 layers.
  std::size_t xof_events = 0, mat_events = 0;
  for (const auto& e : trace.events()) {
    if (e.unit == Unit::kXof) ++xof_events;
    if (e.unit == Unit::kMatEngine) ++mat_events;
    EXPECT_LE(e.end, r.stats.total_cycles + 8) << e.label;
  }
  EXPECT_EQ(xof_events, 4 * params.affine_layers());
  EXPECT_EQ(mat_events, 2 * params.affine_layers());
  // Trace busy counts match the scheduler's own accounting.
  EXPECT_EQ(trace.busy_cycles(Unit::kMatEngine), r.stats.mat_engine_busy);
  // The XOF is the bottleneck: it is busy most of the block (§III).
  EXPECT_GT(trace.utilisation(Unit::kXof, r.stats.total_cycles), 0.7);
  EXPECT_LT(trace.utilisation(Unit::kVecAdd, r.stats.total_cycles), 0.1);
}

TEST(Trace, TimelineAndVcdRender) {
  const auto params = pasta4();
  Xoshiro256 rng(41);
  const auto key = PastaCipher::random_key(params, rng);
  AcceleratorSim sim(params);
  ScheduleTrace trace;
  const auto r = sim.run_block(key, 3, 0, nullptr, &trace);

  std::ostringstream timeline;
  trace.print_timeline(timeline, r.stats.total_cycles, 80);
  const std::string tl = timeline.str();
  EXPECT_NE(tl.find("xof"), std::string::npos);
  EXPECT_NE(tl.find("mat_engine"), std::string::npos);
  EXPECT_NE(tl.find('#'), std::string::npos);

  std::ostringstream vcd;
  trace.write_vcd(vcd, r.stats.total_cycles);
  const std::string v = vcd.str();
  EXPECT_EQ(v.find("$timescale"), v.find("$timescale"));
  EXPECT_NE(v.find("$var wire 1"), std::string::npos);
  EXPECT_NE(v.find("xof_busy"), std::string::npos);
  EXPECT_NE(v.find("$enddefinitions"), std::string::npos);
  // Signals toggle: there is at least one rising edge per unit.
  EXPECT_NE(v.find("b1 !"), std::string::npos);
  EXPECT_NE(v.find("b1 \""), std::string::npos);
}

TEST(Trace, RejectsBadEvents) {
  ScheduleTrace trace;
  EXPECT_THROW(trace.add(Unit::kXof, 10, 5, "backwards"), poe::Error);
  std::ostringstream os;
  EXPECT_THROW(trace.print_timeline(os, 100, 2), poe::Error);
}

TEST(Fault, InjectedFaultCorruptsKeystream) {
  const auto params = pasta4();
  Xoshiro256 rng(20);
  const auto key = PastaCipher::random_key(params, rng);
  AcceleratorSim sim(params);
  const auto clean = sim.run_block(key, 9, 0);
  FaultInjection fault{.affine_layer = 1, .left_half = true, .element = 3,
                       .delta = 5};
  const auto faulty = sim.run_block(key, 9, 0, &fault);
  EXPECT_NE(faulty.keystream, clean.keystream)
      << "a single datapath fault must propagate (SASTA attack surface)";
  // Same timing — faults do not change the schedule.
  EXPECT_EQ(faulty.stats.total_cycles, clean.stats.total_cycles);
}

TEST(Fault, FaultInFinalLayerDiffusesViaMixOnly) {
  // A fault after the last affine layer touches the output through the
  // final Mix; earlier faults diffuse through S-boxes and matrices.
  const auto params = pasta4();
  Xoshiro256 rng(21);
  const auto key = PastaCipher::random_key(params, rng);
  AcceleratorSim sim(params);
  const auto clean = sim.run_block(key, 10, 0);
  FaultInjection late{.affine_layer = params.rounds, .left_half = true,
                      .element = 0, .delta = 1};
  const auto faulty = sim.run_block(key, 10, 0, &late);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < params.t; ++i) {
    if (faulty.keystream[i] != clean.keystream[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);  // only the faulted lane (Mix is elementwise)

  FaultInjection early{.affine_layer = 0, .left_half = true, .element = 0,
                       .delta = 1};
  const auto faulty_early = sim.run_block(key, 10, 0, &early);
  diffs = 0;
  for (std::size_t i = 0; i < params.t; ++i) {
    if (faulty_early.keystream[i] != clean.keystream[i]) ++diffs;
  }
  EXPECT_GT(diffs, params.t / 2);  // full diffusion
}

TEST(Countermeasures, TemporalRedundancyDetectsTransients) {
  const auto params = pasta4();
  Xoshiro256 rng(22);
  const auto key = PastaCipher::random_key(params, rng);
  AcceleratorSim sim(params);

  const auto clean = run_with_temporal_redundancy(sim, key, 1, 0);
  EXPECT_FALSE(clean.detected);
  EXPECT_FALSE(clean.fault_injected);

  FaultInjection fault{.affine_layer = 2, .left_half = false, .element = 7,
                       .delta = 123};
  const auto faulty = run_with_temporal_redundancy(sim, key, 1, 0, &fault);
  EXPECT_TRUE(faulty.detected);
  // The reported keystream (clean pass) is still correct.
  EXPECT_EQ(faulty.keystream, clean.keystream);
  // Both runs pay the same ~2x redundant-pass cost.
  EXPECT_EQ(faulty.cycles, clean.cycles);
  AcceleratorSim plain(params);
  const auto single = plain.run_block(key, 1, 0).stats.total_cycles;
  EXPECT_GT(clean.cycles, 2 * single - 4);
}

TEST(Countermeasures, CostModelShape) {
  AreaModel model;
  const auto params = pasta4();
  const auto base = model.fpga(params);

  for (auto cm : {Countermeasure::kTemporalRedundancy,
                  Countermeasure::kSpatialRedundancy,
                  Countermeasure::kMasking}) {
    const auto cost = countermeasure_cost(cm);
    const auto prot = protected_fpga(model, params, cm);
    EXPECT_GE(prot.lut, base.lut) << to_string(cm);
    EXPECT_GE(protected_cycles(1591, cm), 1591u) << to_string(cm);
    EXPECT_TRUE(cost.cycle_factor > 1.0 || cost.var_area_factor > 1.0)
        << to_string(cm);
  }
  // Temporal redundancy trades time; spatial trades area.
  EXPECT_GT(protected_cycles(1591, Countermeasure::kTemporalRedundancy),
            protected_cycles(1591, Countermeasure::kSpatialRedundancy));
  EXPECT_GT(protected_fpga(model, params, Countermeasure::kSpatialRedundancy)
                .lut,
            protected_fpga(model, params, Countermeasure::kTemporalRedundancy)
                .lut);
  // Masking doubles-plus the DSP arrays.
  EXPECT_GE(protected_fpga(model, params, Countermeasure::kMasking).dsp,
            2 * base.dsp);
}

}  // namespace
}  // namespace poe::hw
