#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "modular/modulus.hpp"
#include "modular/primes.hpp"
#include "pasta/params.hpp"

namespace poe::mod {
namespace {

TEST(Modulus, BasicOps) {
  Modulus m(17);
  EXPECT_EQ(m.add(9, 9), 1u);
  EXPECT_EQ(m.sub(3, 5), 15u);
  EXPECT_EQ(m.neg(0), 0u);
  EXPECT_EQ(m.neg(5), 12u);
  EXPECT_EQ(m.mul(4, 5), 3u);
  EXPECT_EQ(m.mac(4, 5, 2), 5u);
  EXPECT_EQ(m.pow(2, 4), 16u);
  EXPECT_EQ(m.pow(3, 0), 1u);
}

TEST(Modulus, InverseIsInverse) {
  Modulus m(65537);
  Xoshiro256 rng(1);
  for (int i = 0; i < 200; ++i) {
    u64 a = 1 + rng.below(65536);
    EXPECT_EQ(m.mul(a, m.inv(a)), 1u);
  }
}

TEST(Modulus, InverseOfZeroThrows) {
  Modulus m(65537);
  EXPECT_THROW(m.inv(0), poe::Error);
  EXPECT_THROW(m.inv(65537), poe::Error);
}

TEST(Modulus, RangeChecked) {
  EXPECT_THROW(Modulus(1), poe::Error);
  EXPECT_THROW(Modulus(1ull << 62), poe::Error);
  EXPECT_NO_THROW(Modulus((1ull << 62) - 1));
}

TEST(Modulus, Reduce128BarrettMatchesSlowPath) {
  // The lazy key-switch inner product feeds FULL-RANGE u128 sums (not just
  // single products) into reduce128_barrett, so the cross-check must cover
  // arbitrary 128-bit inputs across small, Fermat and near-2^62 moduli.
  Xoshiro256 rng(11);
  const std::vector<u64> moduli = {2,
                                   3,
                                   17,
                                   65537,
                                   poe::pasta::pasta_prime(60),
                                   (1ull << 62) - 57,
                                   (1ull << 62) - 1};
  for (const u64 p : moduli) {
    Modulus m(p);
    EXPECT_EQ(m.reduce128_barrett(0), 0u) << "p=" << p;
    EXPECT_EQ(m.reduce128_barrett(p), 0u) << "p=" << p;
    EXPECT_EQ(m.reduce128_barrett(p - 1), p - 1) << "p=" << p;
    const u128 max_prod = static_cast<u128>(p - 1) * (p - 1);
    EXPECT_EQ(m.reduce128_barrett(max_prod), m.reduce128(max_prod))
        << "p=" << p;
    const u128 all_ones = ~static_cast<u128>(0);
    EXPECT_EQ(m.reduce128_barrett(all_ones), m.reduce128(all_ones))
        << "p=" << p;
    for (int i = 0; i < 2000; ++i) {
      const u64 hi = rng.next();
      const u64 lo = rng.next();
      const u128 x = (static_cast<u128>(hi) << 64) | lo;
      ASSERT_EQ(m.reduce128_barrett(x), m.reduce128(x))
          << "p=" << p << " hi=" << hi << " lo=" << lo;
    }
  }
}

TEST(FermatReduce, MatchesGenericReduction) {
  const unsigned k = 16;
  const u64 p = 65537;
  Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) {
    u64 a = rng.below(p), b = rng.below(p);
    u128 x = static_cast<u128>(a) * b;
    EXPECT_EQ(fermat_reduce(x, k, p), static_cast<u64>(x % p))
        << "a=" << a << " b=" << b;
  }
}

TEST(FermatReduce, EdgeValues) {
  const u64 p = 65537;
  EXPECT_EQ(fermat_reduce(0, 16, p), 0u);
  EXPECT_EQ(fermat_reduce(p, 16, p), 0u);
  EXPECT_EQ(fermat_reduce(p - 1, 16, p), p - 1);
  u128 max_prod = static_cast<u128>(p - 1) * (p - 1);
  EXPECT_EQ(fermat_reduce(max_prod, 16, p),
            static_cast<u64>(max_prod % p));
}

TEST(Primes, KnownPrimesAndComposites) {
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_TRUE(is_prime(65537));
  EXPECT_TRUE(is_prime(0xFFFFFFFFFFFFFFC5ull));  // largest 64-bit prime
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_FALSE(is_prime(65536));
  EXPECT_FALSE(is_prime(3215031751ull));  // strong pseudoprime to small bases
}

TEST(Primes, PastaPresetPrimesAreNttFriendly) {
  for (unsigned omega : {17u, 33u, 54u, 60u}) {
    const u64 p = poe::pasta::pasta_prime(omega);
    EXPECT_TRUE(is_prime(p)) << "omega=" << omega << " p=" << p;
    EXPECT_EQ(poe::bit_width_u64(p), omega) << "p=" << p;
    // NTT/batching-friendliness: 2N | p-1 for N up to 2^15.
    EXPECT_EQ((p - 1) % (1ull << 16), 0u) << "p=" << p;
  }
}

TEST(Primes, NttPrimeChain) {
  auto chain = ntt_prime_chain(4, 50, 8192);
  EXPECT_EQ(chain.size(), 4u);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_TRUE(is_prime(chain[i]));
    EXPECT_EQ((chain[i] - 1) % (2 * 8192), 0u);
    if (i > 0) {
      EXPECT_LT(chain[i], chain[i - 1]);
    }
  }
}

TEST(Primes, PrimitiveRootHasFullOrder) {
  for (u64 p : {17ull, 65537ull, 7681ull}) {
    const u64 g = primitive_root(p);
    Modulus m(p);
    // g^((p-1)/f) != 1 for every prime factor f — spot-check f = 2.
    EXPECT_NE(m.pow(g, (p - 1) / 2), 1u);
    EXPECT_EQ(m.pow(g, p - 1), 1u);
  }
}

TEST(Primes, RootOfUnityOrders) {
  const u64 p = 65537;
  Modulus m(p);
  for (u64 order : {2ull, 4ull, 256ull, 65536ull}) {
    const u64 w = root_of_unity(p, order);
    EXPECT_EQ(m.pow(w, order), 1u);
    EXPECT_EQ(m.pow(w, order / 2), p - 1);
  }
  EXPECT_THROW(root_of_unity(p, 3), poe::Error);  // 3 does not divide p-1
}

}  // namespace
}  // namespace poe::mod
