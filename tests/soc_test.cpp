#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pasta/cipher.hpp"
#include "soc/driver.hpp"
#include "soc/pasta_peripheral.hpp"
#include "soc/soc.hpp"

namespace poe::soc {
namespace {

using pasta::pasta3;
using pasta::pasta4;
using pasta::PastaCipher;

class SocEncrypt : public ::testing::TestWithParam<std::tuple<int, unsigned>> {
};

TEST_P(SocEncrypt, DriverProducesReferenceCiphertext) {
  const auto [variant, omega] = GetParam();
  const auto params = variant == 3 ? pasta3(pasta::pasta_prime(omega))
                                   : pasta4(pasta::pasta_prime(omega));
  SocConfig cfg{.params = params};
  Soc soc(cfg);
  const unsigned stride = soc.peripheral().element_stride();

  Xoshiro256 rng(17 + variant + omega);
  const auto key = PastaCipher::random_key(params, rng);
  DriverLayout layout;
  layout.num_blocks = 2;
  layout.nonce = 0xDEADBEEFCAFE0001ull;
  std::vector<std::uint64_t> msg(params.t * layout.num_blocks);
  for (auto& m : msg) m = rng.below(params.p);

  store_elements(soc.ram(), layout.key_addr, key, stride);
  store_elements(soc.ram(), layout.src_addr, msg, stride);

  const auto program =
      build_encrypt_driver(params, cfg.periph_base, layout);
  const auto reason = soc.run_program(program);
  ASSERT_EQ(reason, rv::StopReason::kEcall);

  const auto ct =
      load_elements(soc.ram(), layout.dst_addr, msg.size(), stride);
  PastaCipher sw(params, key);
  EXPECT_EQ(ct, sw.encrypt(msg, layout.nonce));
}

INSTANTIATE_TEST_SUITE_P(Variants, SocEncrypt,
                         ::testing::Values(std::tuple{4, 17u},
                                           std::tuple{4, 33u},
                                           std::tuple{4, 54u},
                                           std::tuple{3, 17u}));

TEST(Soc, PerBlockLatencyNearAcceleratorCycles) {
  // Table II: the SoC's per-block time is dominated by the accelerator
  // (paper: 15.9us = 1,590 cycles at 100 MHz for PASTA-4); the slave-bus
  // driver adds readout overhead on top.
  const auto params = pasta4();
  SocConfig cfg{.params = params};
  Soc soc(cfg);
  Xoshiro256 rng(5);
  const auto key = PastaCipher::random_key(params, rng);
  DriverLayout layout;
  layout.num_blocks = 4;
  std::vector<std::uint64_t> msg(params.t * layout.num_blocks);
  for (auto& m : msg) m = rng.below(params.p);
  store_elements(soc.ram(), layout.key_addr, key, 4);
  store_elements(soc.ram(), layout.src_addr, msg, 4);

  soc.run_program(build_encrypt_driver(params, cfg.periph_base, layout));

  const auto start = soc.ram().load_word(layout.cycles_addr);
  const auto end = soc.ram().load_word(layout.cycles_addr + 4);
  const double per_block =
      static_cast<double>(end - start) / layout.num_blocks;
  const double accel_mean =
      static_cast<double>(soc.peripheral().stats().accelerator_cycles) /
      layout.num_blocks;
  EXPECT_GT(per_block, accel_mean);             // bus overhead exists
  EXPECT_LT(per_block, accel_mean * 1.5);       // ...but does not dominate
  EXPECT_EQ(soc.peripheral().stats().blocks_processed, 4u);
}

TEST(Soc, BlocksAreSerialised) {
  // The paper: one block must complete before the next can start. Starting a
  // new block while busy is a programming error the model rejects.
  const auto params = pasta4();
  SocConfig cfg{.params = params};
  Soc soc(cfg);
  auto& periph = soc.peripheral();
  // Program registers directly through the bus.
  const auto base = cfg.periph_base;
  auto& bus = soc.bus();
  for (std::size_t i = 0; i < params.key_size(); ++i) {
    bus.write32(base + kKeyLoBase + static_cast<rv::u32>(i) * 4, 1, 0);
  }
  store_elements(soc.ram(), 0x20000, std::vector<std::uint64_t>(params.t, 0),
                 4);
  bus.write32(base + kRegSrcAddr, 0x20000, 0);
  bus.write32(base + kRegCtrl, 1, /*now=*/100);
  // Still busy shortly after: status busy bit set, restart rejected.
  EXPECT_EQ(bus.read32(base + kRegStatus, 101) & 1u, 1u);
  EXPECT_THROW(bus.write32(base + kRegCtrl, 1, 102), poe::Error);
  // After the block completes: done bit set, busy clear.
  const rv::u64 after = 100 + 5000;
  EXPECT_EQ(bus.read32(base + kRegStatus, after), 2u);
  EXPECT_NO_THROW(bus.write32(base + kRegCtrl, 1, after));
  (void)periph;
}

TEST(Soc, ReadoutWhileBusyRejected) {
  const auto params = pasta4();
  SocConfig cfg{.params = params};
  Soc soc(cfg);
  auto& bus = soc.bus();
  const auto base = cfg.periph_base;
  for (std::size_t i = 0; i < params.key_size(); ++i) {
    bus.write32(base + kKeyLoBase + static_cast<rv::u32>(i) * 4, 1, 0);
  }
  store_elements(soc.ram(), 0x20000, std::vector<std::uint64_t>(params.t, 0),
                 4);
  bus.write32(base + kRegSrcAddr, 0x20000, 0);
  bus.write32(base + kRegCtrl, 1, 0);
  EXPECT_THROW(bus.read32(base + kOutLoBase, 1), poe::Error);
}

TEST(Soc, OutOfRangePlaintextRejected) {
  const auto params = pasta4();
  SocConfig cfg{.params = params};
  Soc soc(cfg);
  auto& bus = soc.bus();
  const auto base = cfg.periph_base;
  soc.ram().store_word(0x20000, static_cast<rv::u32>(params.p));  // == p
  bus.write32(base + kRegSrcAddr, 0x20000, 0);
  EXPECT_THROW(bus.write32(base + kRegCtrl, 1, 0), poe::Error);
}

TEST(Soc, InvalidPeripheralOffsetRejected) {
  const auto params = pasta4();
  SocConfig cfg{.params = params};
  Soc soc(cfg);
  EXPECT_THROW(soc.bus().read32(cfg.periph_base + 0x3F0, 0), poe::Error);
  EXPECT_THROW(soc.bus().write32(cfg.periph_base + 0x3F0, 1, 0), poe::Error);
}

TEST(Soc, WideElementsRoundTripInRam) {
  rv::Ram ram(4096);
  std::vector<std::uint64_t> values{0x1FFFFFFFFull, 0, 42,
                                    0x0FFFFFFFFFFFFFFull};
  store_elements(ram, 128, values, 8);
  EXPECT_EQ(load_elements(ram, 128, values.size(), 8), values);
  // Narrow strides reject wide values.
  EXPECT_THROW(store_elements(ram, 0, values, 4), poe::Error);
}

TEST(Soc, DmaWritebackMatchesReadoutPath) {
  const auto params = pasta4();
  Xoshiro256 rng(77);
  const auto key = PastaCipher::random_key(params, rng);
  DriverLayout layout;
  layout.num_blocks = 3;
  layout.nonce = 5150;
  std::vector<std::uint64_t> msg(params.t * layout.num_blocks);
  for (auto& m : msg) m = rng.below(params.p);

  auto run = [&](bool dma) {
    SocConfig cfg{.params = params};
    Soc soc(cfg);
    DriverLayout l = layout;
    l.dma_writeback = dma;
    store_elements(soc.ram(), l.key_addr, key, 4);
    store_elements(soc.ram(), l.src_addr, msg, 4);
    soc.run_program(build_encrypt_driver(params, cfg.periph_base, l));
    const auto ct = load_elements(soc.ram(), l.dst_addr, msg.size(), 4);
    const auto cycles = soc.ram().load_word(l.cycles_addr + 4) -
                        soc.ram().load_word(l.cycles_addr);
    return std::pair{ct, cycles};
  };

  const auto [ct_readout, cycles_readout] = run(false);
  const auto [ct_dma, cycles_dma] = run(true);
  PastaCipher sw(params, key);
  const auto expect = sw.encrypt(msg, layout.nonce);
  EXPECT_EQ(ct_readout, expect);
  EXPECT_EQ(ct_dma, expect);
  // DMA write-back removes the per-element slave readout loop.
  EXPECT_LT(cycles_dma, cycles_readout);
  EXPECT_LT(static_cast<double>(cycles_dma),
            0.95 * static_cast<double>(cycles_readout));
}

TEST(Soc, DmaWritebackWideElements) {
  const auto params = pasta4(pasta::pasta_prime(54));
  Xoshiro256 rng(78);
  const auto key = PastaCipher::random_key(params, rng);
  SocConfig cfg{.params = params};
  Soc soc(cfg);
  DriverLayout layout;
  layout.num_blocks = 1;
  layout.dma_writeback = true;
  const unsigned stride = soc.peripheral().element_stride();
  std::vector<std::uint64_t> msg(params.t);
  for (auto& m : msg) m = rng.below(params.p);
  store_elements(soc.ram(), layout.key_addr, key, stride);
  store_elements(soc.ram(), layout.src_addr, msg, stride);
  soc.run_program(build_encrypt_driver(params, cfg.periph_base, layout));
  const auto ct = load_elements(soc.ram(), layout.dst_addr, msg.size(), stride);
  PastaCipher sw(params, key);
  EXPECT_EQ(ct, sw.encrypt(msg, layout.nonce));
}

TEST(Soc, NonceRegistersReadBack) {
  const auto params = pasta4();
  SocConfig cfg{.params = params};
  Soc soc(cfg);
  auto& bus = soc.bus();
  const auto base = cfg.periph_base;
  bus.write32(base + kRegNonceLo, 0x11223344, 0);
  bus.write32(base + kRegNonceHi, 0x55667788, 0);
  EXPECT_EQ(bus.read32(base + kRegNonceLo, 0), 0x11223344u);
  EXPECT_EQ(bus.read32(base + kRegNonceHi, 0), 0x55667788u);
}

}  // namespace
}  // namespace poe::soc
