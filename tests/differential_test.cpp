// Cross-layer differential suite (ctest label: diff).
//
// The repo has four implementations of the PASTA keystream that must agree
// bit-for-bit: the reference software cipher, the cycle-accurate hardware
// model, and the homomorphic evaluations of the coefficient-wise, batched
// and SIMD-batch servers (where "agree" means the transciphered BGV
// plaintext recovers exactly the message the software cipher encrypted).
// These tests pin all of them against each other over seeded configurations;
// the nightly randomized sweep lives in differential_slow_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "fhe/bgv.hpp"
#include "kernels/backend.hpp"
#include "hhe/batched_server.hpp"
#include "hhe/protocol.hpp"
#include "hhe/simd_batch.hpp"
#include "hw/accelerator.hpp"
#include "pasta/cipher.hpp"
#include "service/service.hpp"

namespace poe {
namespace {

using u64 = std::uint64_t;

// Building a BGV evaluator (and rotation keys) dominates the suite runtime,
// so each parameter set is constructed once per binary.
struct CoeffStack {
  hhe::HheConfig config = hhe::HheConfig::test();
  fhe::Bgv bgv{config.bgv};
};

CoeffStack& coeff() {
  static CoeffStack s;
  return s;
}

struct BatchedStack {
  hhe::HheConfig config = hhe::HheConfig::batched_test();
  fhe::Bgv bgv{config.bgv};
  fhe::BatchEncoder encoder{config.bgv.n, config.bgv.t};
  fhe::SlotLayout layout{config.bgv.n, config.bgv.t};
  std::shared_ptr<const fhe::GaloisKeys> server_keys =
      hhe::BatchedHheServer::make_shared_rotation_keys(config, bgv);
  std::shared_ptr<const fhe::GaloisKeys> simd_keys =
      hhe::SimdBatchEngine::make_shared_rotation_keys(config, bgv);
};

BatchedStack& batched() {
  static BatchedStack s;
  return s;
}

std::vector<u64> random_msg(Xoshiro256& rng, u64 p, std::size_t len) {
  std::vector<u64> msg(len);
  for (auto& m : msg) m = rng.below(p);
  return msg;
}

// ---------------------------------------------------------------- sw == hw

class SwHwKeystream : public ::testing::TestWithParam<int> {};

TEST_P(SwHwKeystream, KeystreamAndEncryptMatch) {
  const int seed = GetParam();
  // Alternate between the full PASTA-4 instance and the reduced test
  // instance so both parameterizations stay pinned.
  const pasta::PastaParams params =
      seed % 2 == 0 ? pasta::pasta4() : hhe::HheConfig::test().pasta;
  Xoshiro256 rng(static_cast<u64>(seed) * 1009 + 7);
  const auto key = pasta::PastaCipher::random_key(params, rng);
  pasta::PastaCipher sw(params, key);
  hw::AcceleratorSim hw_sim(params);
  const u64 nonce = rng.next();

  for (const u64 counter : {u64{0}, u64{1}, u64{5}}) {
    const auto hw_block = hw_sim.run_block(key, nonce, counter);
    EXPECT_EQ(hw_block.keystream, sw.keystream(nonce, counter))
        << "seed=" << seed << " counter=" << counter;
  }

  const auto msg = random_msg(rng, params.p, 2 * params.t + 3);
  const auto hw_ct = hw_sim.encrypt(key, msg, nonce).ciphertext;
  EXPECT_EQ(hw_ct, sw.encrypt(msg, nonce)) << "seed=" << seed;
  EXPECT_EQ(sw.decrypt(hw_ct, nonce), msg) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwHwKeystream, ::testing::Range(1, 21));

// ------------------------------------------- sw == hw == coefficient-wise

class CoeffServerDifferential : public ::testing::TestWithParam<int> {};

TEST_P(CoeffServerDifferential, HwCiphertextRecoversThroughServer) {
  auto& s = coeff();
  const int seed = GetParam();
  Xoshiro256 rng(static_cast<u64>(seed) * 31 + 5);
  const auto key = pasta::PastaCipher::random_key(s.config.pasta, rng);
  hhe::HheClient client(s.config, s.bgv, key);
  hhe::HheServer server(s.config, s.bgv, client.encrypt_key());

  const auto msg = random_msg(rng, s.config.pasta.p, s.config.pasta.t);
  const u64 nonce = 1000 + static_cast<u64>(seed);
  const auto sym_ct = client.encrypt(msg, nonce);

  // The hardware model must produce the very bytes the server consumes.
  hw::AcceleratorSim hw_sim(s.config.pasta);
  EXPECT_EQ(hw_sim.encrypt(key, msg, nonce).ciphertext, sym_ct);

  hhe::ServerReport report;
  const auto fhe_cts = server.transcipher_block(sym_ct, nonce, 0, &report);
  EXPECT_EQ(client.decrypt_result(fhe_cts), msg) << "seed=" << seed;
  EXPECT_GT(report.min_noise_budget_bits, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoeffServerDifferential,
                         ::testing::Values(1, 2, 3));

TEST(CoeffServerDifferential2, PreparedBlockMatchesDirectPath) {
  auto& s = coeff();
  Xoshiro256 rng(777);
  const auto key = pasta::PastaCipher::random_key(s.config.pasta, rng);
  hhe::HheClient client(s.config, s.bgv, key);
  hhe::HheServer server(s.config, s.bgv, client.encrypt_key());

  const auto msg = random_msg(rng, s.config.pasta.p, s.config.pasta.t);
  const u64 nonce = 4242, counter = 3;
  const auto sym_ct = client.encrypt(msg, nonce);
  // encrypt() numbers blocks from counter 0; re-derive block 0's stream for
  // a custom counter via the raw keystream.
  const auto ks = client.cipher().keystream(nonce, counter);
  std::vector<u64> sym_at_counter(msg.size());
  for (std::size_t i = 0; i < msg.size(); ++i) {
    sym_at_counter[i] = (msg[i] + ks[i]) % s.config.pasta.p;
  }
  (void)sym_ct;

  const auto direct = server.transcipher_block(sym_at_counter, nonce, counter);
  const auto prep = hhe::prepare_block(s.config.pasta, nonce, counter);
  EXPECT_EQ(prep.nonce, nonce);
  EXPECT_EQ(prep.counter, counter);
  EXPECT_EQ(prep.mat_l.size(), s.config.pasta.rounds + 1);
  const auto prepared = server.transcipher_block(sym_at_counter, prep);
  EXPECT_EQ(client.decrypt_result(direct), msg);
  EXPECT_EQ(client.decrypt_result(prepared), msg);
}

// --------------------------------------------------- sw == batched server

class BatchedServerDifferential : public ::testing::TestWithParam<int> {};

TEST_P(BatchedServerDifferential, RoundTripThroughSharedKeys) {
  auto& s = batched();
  const int seed = GetParam();
  Xoshiro256 rng(static_cast<u64>(seed) * 127 + 1);
  const auto key = pasta::PastaCipher::random_key(s.config.pasta, rng);
  pasta::PastaCipher sw(s.config.pasta, key);
  hhe::BatchedHheServer server(
      s.config, s.bgv,
      hhe::encrypt_key_batched(s.config, s.bgv, s.encoder, s.layout, key),
      s.server_keys);

  const auto msg = random_msg(rng, s.config.pasta.p, s.config.pasta.t);
  const u64 nonce = 2000 + static_cast<u64>(seed);
  const auto sym_ct = sw.encrypt(msg, nonce);
  const auto ct = server.transcipher_block(sym_ct, nonce, 0);
  EXPECT_EQ(
      hhe::BatchedHheServer::decode_block(s.config, s.bgv, ct, msg.size()),
      msg)
      << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedServerDifferential,
                         ::testing::Values(1, 2));

// ------------------------------------------------------ sw == SIMD batches

TEST(SimdBatchDifferential, SingleBlockMatchesBatchedServer) {
  auto& s = batched();
  Xoshiro256 rng(31337);
  const auto key = pasta::PastaCipher::random_key(s.config.pasta, rng);
  pasta::PastaCipher sw(s.config.pasta, key);
  const auto key_ct =
      hhe::encrypt_key_batched(s.config, s.bgv, s.encoder, s.layout, key);

  const auto msg = random_msg(rng, s.config.pasta.p, s.config.pasta.t);
  const u64 nonce = 555, counter = 2;
  const auto ks = sw.keystream(nonce, counter);
  std::vector<u64> sym_ct(msg.size());
  for (std::size_t i = 0; i < msg.size(); ++i) {
    sym_ct[i] = (msg[i] + ks[i]) % s.config.pasta.p;
  }

  hhe::BatchedHheServer server(s.config, s.bgv, key_ct, s.server_keys);
  const auto single = server.transcipher_block(sym_ct, nonce, counter);

  hhe::SimdBatchEngine engine(s.config, s.bgv, s.simd_keys);
  const std::vector<hhe::SimdBlockRequest> reqs{
      {.nonce = nonce, .counter = counter, .symmetric_ct = sym_ct}};
  const auto batch = engine.prepare(reqs);
  const auto simd = engine.evaluate(key_ct, batch);

  const auto expect =
      hhe::BatchedHheServer::decode_block(s.config, s.bgv, single, msg.size());
  EXPECT_EQ(expect, msg);
  EXPECT_EQ(hhe::SimdBatchEngine::decode_block(s.config, s.bgv, simd, 0,
                                               msg.size()),
            msg);
}

TEST(SimdBatchDifferential, MultiBlockMixedNoncesRoundTrip) {
  auto& s = batched();
  Xoshiro256 rng(90210);
  const auto key = pasta::PastaCipher::random_key(s.config.pasta, rng);
  pasta::PastaCipher sw(s.config.pasta, key);
  const auto key_ct =
      hhe::encrypt_key_batched(s.config, s.bgv, s.encoder, s.layout, key);
  hhe::SimdBatchEngine engine(s.config, s.bgv, s.simd_keys);

  const std::size_t blocks = 5;
  std::vector<hhe::SimdBlockRequest> reqs(blocks);
  std::vector<std::vector<u64>> msgs(blocks);
  for (std::size_t m = 0; m < blocks; ++m) {
    const std::size_t len = m == 3 ? 2 : s.config.pasta.t;  // one short block
    msgs[m] = random_msg(rng, s.config.pasta.p, len);
    reqs[m].nonce = 10 * m + 1;
    reqs[m].counter = m % 3;
    const auto ks = sw.keystream(reqs[m].nonce, reqs[m].counter);
    reqs[m].symmetric_ct.resize(len);
    for (std::size_t i = 0; i < len; ++i) {
      reqs[m].symmetric_ct[i] = (msgs[m][i] + ks[i]) % s.config.pasta.p;
    }
  }

  hhe::ServerReport report;
  const auto ct = engine.evaluate(key_ct, engine.prepare(reqs), &report);
  EXPECT_GT(report.min_noise_budget_bits, 0.0);
  // Same multiplicative depth as the single-block batched circuit.
  EXPECT_EQ(report.ct_ct_multiplications, s.config.pasta.rounds + 1);
  for (std::size_t m = 0; m < blocks; ++m) {
    EXPECT_EQ(hhe::SimdBatchEngine::decode_block(s.config, s.bgv, ct, m,
                                                 msgs[m].size()),
              msgs[m])
        << "tile " << m;
  }
}

TEST(SimdBatchDifferential, FullCapacityRoundTrip) {
  auto& s = batched();
  Xoshiro256 rng(8086);
  const auto key = pasta::PastaCipher::random_key(s.config.pasta, rng);
  pasta::PastaCipher sw(s.config.pasta, key);
  const auto key_ct =
      hhe::encrypt_key_batched(s.config, s.bgv, s.encoder, s.layout, key);
  hhe::SimdBatchEngine engine(s.config, s.bgv, s.simd_keys);

  const std::size_t blocks = engine.capacity();
  std::vector<hhe::SimdBlockRequest> reqs(blocks);
  std::vector<std::vector<u64>> msgs(blocks);
  for (std::size_t m = 0; m < blocks; ++m) {
    msgs[m] = random_msg(rng, s.config.pasta.p, s.config.pasta.t);
    reqs[m].nonce = 7;
    reqs[m].counter = m;  // one long message split across every tile
    const auto ks = sw.keystream(reqs[m].nonce, reqs[m].counter);
    reqs[m].symmetric_ct.resize(msgs[m].size());
    for (std::size_t i = 0; i < msgs[m].size(); ++i) {
      reqs[m].symmetric_ct[i] = (msgs[m][i] + ks[i]) % s.config.pasta.p;
    }
  }

  const auto ct = engine.evaluate(key_ct, engine.prepare(reqs));
  for (std::size_t m = 0; m < blocks; ++m) {
    ASSERT_EQ(hhe::SimdBatchEngine::decode_block(s.config, s.bgv, ct, m,
                                                 msgs[m].size()),
              msgs[m])
        << "tile " << m;
  }
}

// ------------------------------------- hoisted == unhoisted rotation path

TEST(HoistedRotationDifferential, AgreesWithUnhoistedAcrossStepsAndLevels) {
  auto& s = batched();
  Xoshiro256 rng(424242);
  const auto logical = random_msg(rng, s.config.bgv.t, s.config.bgv.n);
  auto ct = s.bgv.encrypt(s.encoder.encode(s.layout.to_slots(logical)));

  for (int drop = 0; drop < 2; ++drop) {
    if (drop == 1) s.bgv.mod_switch_inplace(ct);
    const fhe::HoistedCt hoisted = s.bgv.hoist(ct);
    for (const long step : hhe::BatchedHheServer::rotation_steps(s.config)) {
      fhe::Ciphertext unhoisted = ct;
      s.bgv.rotate_columns_inplace(unhoisted, step, *s.server_keys);
      const fhe::Ciphertext via_hoist =
          s.bgv.rotate_hoisted(hoisted, step, *s.server_keys);
      // The two paths produce DIFFERENT ciphertext bits for the same
      // plaintext (digit decomposition does not commute with the
      // automorphism), so agreement is on decryptions, not parts.
      EXPECT_EQ(s.bgv.decrypt(via_hoist).coeffs,
                s.bgv.decrypt(unhoisted).coeffs)
          << "step " << step << " drop " << drop;
      EXPECT_GT(s.bgv.noise_budget_bits(via_hoist), 0.0) << "step " << step;
    }
  }
}

// -------------------------------- in-place == allocating hoisted rotation

namespace {
::testing::AssertionResult ciphertext_bits_equal(const fhe::Ciphertext& a,
                                                 const fhe::Ciphertext& b) {
  if (a.level != b.level || a.parts.size() != b.parts.size()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: level " << a.level << " vs " << b.level
           << ", parts " << a.parts.size() << " vs " << b.parts.size();
  }
  for (std::size_t p = 0; p < a.parts.size(); ++p) {
    if (a.parts[p].is_ntt() != b.parts[p].is_ntt()) {
      return ::testing::AssertionFailure() << "NTT-form mismatch in part " << p;
    }
    for (std::size_t i = 0; i < a.level; ++i) {
      const auto ra = a.parts[p].rns(i);
      const auto rb = b.parts[p].rns(i);
      for (std::size_t j = 0; j < ra.size(); ++j) {
        if (ra[j] != rb[j]) {
          return ::testing::AssertionFailure()
                 << "part " << p << " component " << i << " word " << j << ": "
                 << ra[j] << " != " << rb[j];
        }
      }
    }
  }
  return ::testing::AssertionSuccess();
}
}  // namespace

// Unlike hoisted-vs-unhoisted (which only agree on decryptions), the
// in-place path MUST be bit-identical to the allocating one: it runs the
// same digit inner product, just into leased scratch with the closing
// permutation fused. Agreement here is on raw ciphertext words.
TEST(HoistedRotationDifferential, InPlaceMatchesAllocatingBitForBit) {
  auto& s = batched();
  Xoshiro256 rng(515151);
  const auto logical = random_msg(rng, s.config.bgv.t, s.config.bgv.n);
  auto ct = s.bgv.encrypt(s.encoder.encode(s.layout.to_slots(logical)));

  for (int drop = 0; drop < 2; ++drop) {
    if (drop == 1) s.bgv.mod_switch_inplace(ct);
    const fhe::HoistedCt hoisted = s.bgv.hoist(ct);
    // ONE output ciphertext reused across every step, exactly like the
    // serving loops reuse theirs across diagonals.
    fhe::Ciphertext out;
    for (const long step : hhe::BatchedHheServer::rotation_steps(s.config)) {
      const fhe::Ciphertext want =
          s.bgv.rotate_hoisted(hoisted, step, *s.server_keys);
      s.bgv.rotate_hoisted_into(hoisted, step, *s.server_keys, out);
      EXPECT_TRUE(ciphertext_bits_equal(out, want))
          << "step " << step << " drop " << drop;
    }
  }
}

// Ragged diagonal-loop lengths: a serving loop that touches 1, s-1 or s
// diagonals (k = 0 never rotates) must leave the reused output correct on
// every iteration it does run, regardless of what shape the previous loop
// left behind in it.
TEST(HoistedRotationDifferential, ReusedOutputSurvivesRaggedDiagonalCounts) {
  auto& s = batched();
  Xoshiro256 rng(626262);
  const std::size_t sdim = 2 * s.config.pasta.t;
  const auto logical = random_msg(rng, s.config.bgv.t, s.config.bgv.n);
  const auto ct = s.bgv.encrypt(s.encoder.encode(s.layout.to_slots(logical)));
  const fhe::HoistedCt hoisted = s.bgv.hoist(ct);

  fhe::Ciphertext out;  // deliberately shared across the ragged loops
  for (const std::size_t count : {std::size_t{1}, sdim - 1, sdim}) {
    for (std::size_t k = 1; k < count; ++k) {
      const long step = static_cast<long>(k);
      const fhe::Ciphertext want =
          s.bgv.rotate_hoisted(hoisted, step, *s.server_keys);
      s.bgv.rotate_hoisted_into(hoisted, step, *s.server_keys, out);
      EXPECT_TRUE(ciphertext_bits_equal(out, want))
          << "count " << count << " step " << step;
    }
  }
}

// Per kernel backend: the scratch path must match the allocating path on
// that backend bit-for-bit, and both must decrypt to the same rotation the
// non-hoisted reference computes. Uses the smaller coefficient-config ring
// so three keygens stay cheap.
TEST(HoistedRotationDifferential, InPlaceMatchesAllocatingOnEveryBackend) {
  const hhe::HheConfig config = hhe::HheConfig::test();
  for (const kernels::Backend* backend : kernels::available_backends()) {
    SCOPED_TRACE(backend->name());
    ExecContext exec(nullptr, backend);
    fhe::Bgv bgv(config.bgv, &exec);
    fhe::BatchEncoder encoder(config.bgv.n, config.bgv.t);
    fhe::SlotLayout layout(config.bgv.n, config.bgv.t);
    const std::vector<long> steps{1, 7};
    const fhe::GaloisKeys keys = bgv.make_rotation_keys(steps);

    Xoshiro256 rng(737373);
    const auto logical = random_msg(rng, config.bgv.t, config.bgv.n);
    const auto ct = bgv.encrypt(encoder.encode(layout.to_slots(logical)));
    const fhe::HoistedCt hoisted = bgv.hoist(ct);

    fhe::Ciphertext out;
    for (const long step : steps) {
      const fhe::Ciphertext want = bgv.rotate_hoisted(hoisted, step, keys);
      bgv.rotate_hoisted_into(hoisted, step, keys, out);
      EXPECT_TRUE(ciphertext_bits_equal(out, want)) << "step " << step;

      fhe::Ciphertext unhoisted = ct;
      bgv.rotate_columns_inplace(unhoisted, step, keys);
      EXPECT_EQ(bgv.decrypt(out).coeffs, bgv.decrypt(unhoisted).coeffs)
          << "step " << step;
    }
  }
}

// ------------------------------------------------- service == direct path

TEST(ServiceDifferential, ServiceAgreesWithCoefficientWiseServer) {
  auto& sb = batched();
  auto& sc = coeff();
  Xoshiro256 rng(112233);
  // Same PASTA instance in both stacks: transcipher the same message
  // through the service (SIMD path) and the coefficient-wise server, and
  // require identical recovered plaintexts.
  ASSERT_EQ(sb.config.pasta.t, sc.config.pasta.t);
  const auto key = pasta::PastaCipher::random_key(sb.config.pasta, rng);
  const auto msg = random_msg(rng, sb.config.pasta.p, sb.config.pasta.t);
  const u64 nonce = 31415;

  service::TranscipherService svc(sb.config, sb.bgv, {}, sb.simd_keys);
  pasta::PastaCipher sw(sb.config.pasta, key);
  svc.open_session(
      1, hhe::encrypt_key_batched(sb.config, sb.bgv, sb.encoder, sb.layout,
                                  key));
  const auto results = svc.process(std::vector{service::TranscipherRequest{
      .client_id = 1, .nonce = nonce, .symmetric_ct = sw.encrypt(msg, nonce)}});
  const auto via_service = service::TranscipherService::decode_block(
      sb.config, sb.bgv, results[0].blocks[0]);

  hhe::HheClient client(sc.config, sc.bgv, key);
  hhe::HheServer server(sc.config, sc.bgv, client.encrypt_key());
  const auto via_coeff = client.decrypt_result(
      server.transcipher_block(client.encrypt(msg, nonce), nonce, 0));

  EXPECT_EQ(via_service, msg);
  EXPECT_EQ(via_coeff, msg);
  EXPECT_EQ(via_service, via_coeff);
}

// ------------------------------------------- cross-tenant packed batches

// Satellite of the cross-tenant packing PR: one packed batch holding THREE
// tenants with distinct PASTA keys and ragged fills (1, 3 and 7 blocks)
// must decode bit-identical per tenant to (a) the per-client-batched
// service path and (b) the coefficient-wise server — the same transcipher
// answer through three entirely different evaluation shapes.
TEST(TenantIsolationDifferential, PackedMatchesPerClientAndCoeffRaggedFills) {
  auto& sb = batched();
  auto& sc = coeff();
  ASSERT_EQ(sb.config.pasta.t, sc.config.pasta.t);
  const std::size_t t = sb.config.pasta.t;
  Xoshiro256 rng(20260808);

  const std::size_t kTenants = 3;
  const std::size_t kBlocksOf[kTenants] = {1, 3, 7};
  std::vector<std::vector<u64>> keys(kTenants), msgs(kTenants);
  std::vector<service::TranscipherRequest> reqs;
  for (std::size_t c = 0; c < kTenants; ++c) {
    keys[c] = pasta::PastaCipher::random_key(sb.config.pasta, rng);
    // Ragged: the tenant's LAST block is also partially filled.
    msgs[c] = random_msg(rng, sb.config.pasta.p, kBlocksOf[c] * t - 2);
    pasta::PastaCipher sw(sb.config.pasta, keys[c]);
    reqs.push_back(service::TranscipherRequest{
        .client_id = c + 1,
        .nonce = 900 + c,
        .symmetric_ct = sw.encrypt(msgs[c], 900 + c)});
  }

  // Path 1: one packed cross-tenant batch (1 + 3 + 7 = 11 of 32 tiles).
  service::ServiceReport packed_rep;
  std::vector<std::vector<u64>> via_packed(kTenants);
  {
    service::TranscipherService svc(sb.config, sb.bgv, {}, sb.simd_keys);
    for (std::size_t c = 0; c < kTenants; ++c) {
      svc.open_session(c + 1, hhe::encrypt_key_batched(sb.config, sb.bgv,
                                                       sb.encoder, sb.layout,
                                                       keys[c]));
    }
    const auto results = svc.process(reqs, &packed_rep);
    ASSERT_EQ(packed_rep.batches, 1u);
    ASSERT_EQ(packed_rep.cross_tenant_batches, 1u);
    for (std::size_t c = 0; c < kTenants; ++c) {
      ASSERT_TRUE(results[c].ok()) << results[c].error;
      ASSERT_EQ(results[c].blocks.size(), kBlocksOf[c]);
      for (const auto& block : results[c].blocks) {
        const auto vals = service::TranscipherService::decode_block(
            sb.config, sb.bgv, block);
        via_packed[c].insert(via_packed[c].end(), vals.begin(), vals.end());
      }
    }
  }

  // Path 2: the per-client-batched reference (packing disabled).
  std::vector<std::vector<u64>> via_per_client(kTenants);
  {
    service::TranscipherService svc(
        sb.config, sb.bgv,
        service::ServiceConfig{.cross_tenant_packing = false}, sb.simd_keys);
    for (std::size_t c = 0; c < kTenants; ++c) {
      svc.open_session(c + 1, hhe::encrypt_key_batched(sb.config, sb.bgv,
                                                       sb.encoder, sb.layout,
                                                       keys[c]));
    }
    service::ServiceReport rep;
    const auto results = svc.process(reqs, &rep);
    ASSERT_EQ(rep.batches, kTenants);  // one batch per tenant
    EXPECT_EQ(rep.cross_tenant_batches, 0u);
    for (std::size_t c = 0; c < kTenants; ++c) {
      ASSERT_TRUE(results[c].ok()) << results[c].error;
      for (const auto& block : results[c].blocks) {
        const auto vals = service::TranscipherService::decode_block(
            sb.config, sb.bgv, block);
        via_per_client[c].insert(via_per_client[c].end(), vals.begin(),
                                 vals.end());
      }
    }
  }

  // Path 3: the coefficient-wise server (multi-block, ragged tail).
  for (std::size_t c = 0; c < kTenants; ++c) {
    hhe::HheClient client(sc.config, sc.bgv, keys[c]);
    hhe::HheServer server(sc.config, sc.bgv, client.encrypt_key());
    const auto via_coeff = client.decrypt_result(
        server.transcipher(reqs[c].symmetric_ct, reqs[c].nonce));

    EXPECT_EQ(via_packed[c], msgs[c]) << "tenant " << c;
    EXPECT_EQ(via_per_client[c], msgs[c]) << "tenant " << c;
    EXPECT_EQ(via_coeff, msgs[c]) << "tenant " << c;
    EXPECT_EQ(via_packed[c], via_per_client[c]) << "tenant " << c;
    EXPECT_EQ(via_packed[c], via_coeff) << "tenant " << c;
  }
}

// Key-switch-on-ingest: a tenant with its OWN BGV secret (same ring)
// uploads a key encrypted in its own domain; the service switches it into
// the shared evaluation domain and packs it with a native tenant. Both
// must transcipher exactly.
TEST(TenantIsolationDifferential, IngestSwitchedTenantPacksWithNativeTenant) {
  auto& sb = batched();
  Xoshiro256 rng(606060);

  // The foreign tenant's evaluator: identical ring, different secret.
  fhe::BgvParams foreign_params = sb.config.bgv;
  foreign_params.seed = sb.config.bgv.seed + 17;
  fhe::Bgv foreign_bgv(foreign_params);
  const fhe::KswKey ingest_key = sb.bgv.make_ingest_key(foreign_bgv);

  const auto foreign_key =
      pasta::PastaCipher::random_key(sb.config.pasta, rng);
  const auto native_key =
      pasta::PastaCipher::random_key(sb.config.pasta, rng);
  const auto msg_f = random_msg(rng, sb.config.pasta.p, sb.config.pasta.t);
  const auto msg_n =
      random_msg(rng, sb.config.pasta.p, sb.config.pasta.t + 2);

  service::TranscipherService svc(sb.config, sb.bgv, {}, sb.simd_keys);
  // The foreign upload is tiled with the foreign evaluator (same encoder
  // and layout: both are parameter-only), then switched on ingest.
  svc.open_session_switched(
      1,
      hhe::encrypt_key_batched(sb.config, foreign_bgv, sb.encoder, sb.layout,
                               foreign_key),
      ingest_key);
  svc.open_session(2, hhe::encrypt_key_batched(sb.config, sb.bgv, sb.encoder,
                                               sb.layout, native_key));

  pasta::PastaCipher sw_f(sb.config.pasta, foreign_key);
  pasta::PastaCipher sw_n(sb.config.pasta, native_key);
  service::ServiceReport rep;
  const auto results = svc.process(
      std::vector{
          service::TranscipherRequest{.client_id = 1,
                                      .nonce = 71,
                                      .symmetric_ct = sw_f.encrypt(msg_f, 71)},
          service::TranscipherRequest{.client_id = 2,
                                      .nonce = 72,
                                      .symmetric_ct =
                                          sw_n.encrypt(msg_n, 72)}},
      &rep);

  ASSERT_EQ(rep.batches, 1u);
  EXPECT_EQ(rep.cross_tenant_batches, 1u);
  EXPECT_GT(rep.min_noise_budget_bits, 0.0);
  for (const auto& res : results) ASSERT_TRUE(res.ok()) << res.error;
  std::vector<u64> via_f, via_n;
  for (const auto& block : results[0].blocks) {
    const auto vals =
        service::TranscipherService::decode_block(sb.config, sb.bgv, block);
    via_f.insert(via_f.end(), vals.begin(), vals.end());
  }
  for (const auto& block : results[1].blocks) {
    const auto vals =
        service::TranscipherService::decode_block(sb.config, sb.bgv, block);
    via_n.insert(via_n.end(), vals.begin(), vals.end());
  }
  EXPECT_EQ(via_f, msg_f);
  EXPECT_EQ(via_n, msg_n);
}

}  // namespace
}  // namespace poe
