// Differential suite for the kernel backend layer: every SIMD backend must
// be bit-identical to ScalarBackend through the poe::kernels::Backend
// interface (the contract documented in kernels/backend.hpp), including the
// adversarial corners — coefficients at the lazy 4q-1 bound, moduli just
// under 2^62, and lengths that are not multiples of the vector width.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <vector>

#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "fhe/bgv.hpp"
#include "fhe/ntt.hpp"
#include "kernels/backend.hpp"
#include "modular/modulus.hpp"
#include "modular/primes.hpp"
#include "pasta/params.hpp"

namespace poe::kernels {
namespace {

using poe::mod::Modulus;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using u128 = unsigned __int128;

/// SIMD backends present on this build+machine (may be empty on plain
/// scalar hosts; every differential test then degenerates to a no-op, which
/// is the correct behaviour — the scalar reference defines the semantics).
std::vector<const Backend*> simd_backends() {
  std::vector<const Backend*> out;
  for (const Backend* b : available_backends()) {
    if (b != &scalar_backend()) out.push_back(b);
  }
  return out;
}

/// Moduli exercising the full legal range: tiny, Fermat-structured, the
/// PASTA 60-bit prime's neighbourhood, and primes just under the 2^62
/// Harvey bound. All ≡ 1 (mod 2n) so they double as NTT moduli.
std::vector<u64> test_moduli(std::size_t n) {
  std::vector<u64> out;
  for (unsigned bits : {20u, 30u, 45u, 60u}) {
    out.push_back(mod::ntt_prime_chain(1, bits, n)[0]);
  }
  // Largest NTT-friendly prime below the q < 2^62 representation bound.
  out.push_back(mod::previous_congruent_prime((u64{1} << 62) - 1, 2 * n));
  return out;
}

TEST(KernelRegistry, ScalarAlwaysFirstAndNamed) {
  const auto backends = available_backends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends[0], &scalar_backend());
  EXPECT_EQ(scalar_backend().name(), "scalar");
  for (const Backend* b : backends) {
    EXPECT_EQ(backend_by_name(b->name()), b) << b->name();
  }
  EXPECT_EQ(backend_by_name("no-such-backend"), nullptr);
  if (avx2_backend() != nullptr) {
    EXPECT_EQ(avx2_backend()->name(), "avx2");
  }
  if (avx512_backend() != nullptr) {
    EXPECT_EQ(avx512_backend()->name(), "avx512");
  }
}

TEST(KernelRegistry, EnvOverrideDispatch) {
  // select_backend() re-reads the environment on every call, so the
  // override can be exercised in-process.
  ASSERT_EQ(setenv("POE_KERNEL_BACKEND", "scalar", 1), 0);
  EXPECT_EQ(&select_backend(), &scalar_backend());
  ASSERT_EQ(setenv("POE_KERNEL_BACKEND", "bogus", 1), 0);
  EXPECT_THROW(select_backend(), poe::Error);
  ASSERT_EQ(unsetenv("POE_KERNEL_BACKEND"), 0);
  // Default policy: the widest available implementation.
  const Backend& picked = select_backend();
  if (avx512_backend() != nullptr) {
    EXPECT_EQ(&picked, avx512_backend());
  } else if (avx2_backend() != nullptr) {
    EXPECT_EQ(&picked, avx2_backend());
  } else {
    EXPECT_EQ(&picked, &scalar_backend());
  }
}

TEST(KernelNtt, ForwardBitIdentityIncludingLazyBound) {
  Xoshiro256 rng(101);
  for (const std::size_t n : {8u, 16u, 64u, 512u, 4096u}) {
    for (const u64 q : test_moduli(n)) {
      const fhe::Ntt ntt(q, n);
      const NttTables t = ntt.tables();
      // Random lazily-reduced inputs (< 4q, the documented acceptance
      // bound) plus the all-(4q-1) adversarial vector.
      for (int rep = 0; rep < 3; ++rep) {
        std::vector<u64> ref(n);
        for (auto& x : ref) {
          x = rep == 2 ? 4 * q - 1 : rng.below(4 * q);
        }
        std::vector<u64> expect = ref;
        scalar_backend().ntt_inplace(expect.data(), t);
        for (const u64 x : expect) {
          ASSERT_LT(x, q) << "scalar forward output not fully reduced";
        }
        for (const Backend* b : simd_backends()) {
          std::vector<u64> got = ref;
          b->ntt_inplace(got.data(), t);
          ASSERT_EQ(got, expect)
              << b->name() << " n=" << n << " q=" << q << " rep=" << rep;
        }
      }
    }
  }
}

TEST(KernelNtt, InverseBitIdentityAndRoundTrip) {
  Xoshiro256 rng(102);
  for (const std::size_t n : {8u, 16u, 64u, 512u, 4096u}) {
    for (const u64 q : test_moduli(n)) {
      const fhe::Ntt ntt(q, n);
      const NttTables t = ntt.tables();
      // Inverse accepts inputs < 2q; include the all-(2q-1) corner.
      for (int rep = 0; rep < 3; ++rep) {
        std::vector<u64> ref(n);
        for (auto& x : ref) {
          x = rep == 2 ? 2 * q - 1 : rng.below(2 * q);
        }
        std::vector<u64> expect = ref;
        scalar_backend().intt_inplace(expect.data(), t);
        for (const Backend* b : simd_backends()) {
          std::vector<u64> got = ref;
          b->intt_inplace(got.data(), t);
          ASSERT_EQ(got, expect)
              << b->name() << " n=" << n << " q=" << q << " rep=" << rep;
        }
      }
      // Round trip per backend: intt(ntt(x)) == x for reduced x.
      std::vector<u64> orig(n);
      for (auto& x : orig) x = rng.below(q);
      for (const Backend* b : available_backends()) {
        std::vector<u64> a = orig;
        b->ntt_inplace(a.data(), t);
        b->intt_inplace(a.data(), t);
        for (auto& x : a) x = x >= q ? x - q : x;  // intt is 2q-lazy
        ASSERT_EQ(a, orig) << b->name() << " n=" << n << " q=" << q;
      }
    }
  }
}

TEST(KernelPointwise, BitIdentityAtAwkwardLengths) {
  Xoshiro256 rng(103);
  // Lengths straddling the 4- and 8-lane widths, with ragged tails.
  const std::size_t lengths[] = {1, 3, 7, 8, 9, 33, 1000, 4095};
  for (const u64 q : test_moduli(4096)) {
    const Modulus m(q);
    for (const std::size_t n : lengths) {
      std::vector<u64> a(n), b(n), c(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Bias toward the boundary values where a reduction step flips.
        a[i] = i % 5 == 0 ? q - 1 : rng.below(q);
        b[i] = i % 7 == 0 ? q - 1 : rng.below(q);
        c[i] = rng.below(q);
      }
      const u64 w = q - 1;  // worst-case Shoup multiplier
      const u64 w_shoup = shoup_precompute(w, q);

      std::vector<u64> e_add = a, e_sub = a, e_mul = a, e_am = a, e_sh(n);
      scalar_backend().add(e_add.data(), b.data(), n, m);
      scalar_backend().sub(e_sub.data(), b.data(), n, m);
      scalar_backend().mul(e_mul.data(), b.data(), n, m);
      scalar_backend().add_mul(e_am.data(), b.data(), c.data(), n, m);
      scalar_backend().mul_shoup(e_sh.data(), a.data(), n, w, w_shoup, q);
      // Independent ground truth for the scalar reference itself.
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(e_add[i], (a[i] + b[i]) % q);
        ASSERT_EQ(e_sub[i], (a[i] + q - b[i]) % q);
        ASSERT_EQ(e_mul[i], static_cast<u64>(u128{a[i]} * b[i] % q));
        ASSERT_EQ(e_am[i], static_cast<u64>(
                               (u128{a[i]} + u128{b[i]} * c[i]) % q));
        ASSERT_EQ(e_sh[i] % q, static_cast<u64>(u128{a[i]} * w % q));
      }

      for (const Backend* bk : simd_backends()) {
        std::vector<u64> g = a;
        bk->add(g.data(), b.data(), n, m);
        ASSERT_EQ(g, e_add) << bk->name() << " add n=" << n << " q=" << q;
        g = a;
        bk->sub(g.data(), b.data(), n, m);
        ASSERT_EQ(g, e_sub) << bk->name() << " sub n=" << n << " q=" << q;
        g = a;
        bk->mul(g.data(), b.data(), n, m);
        ASSERT_EQ(g, e_mul) << bk->name() << " mul n=" << n << " q=" << q;
        g = a;
        bk->add_mul(g.data(), b.data(), c.data(), n, m);
        ASSERT_EQ(g, e_am) << bk->name() << " add_mul n=" << n << " q=" << q;
        std::vector<u64> gs(n);
        bk->mul_shoup(gs.data(), a.data(), n, w, w_shoup, q);
        ASSERT_EQ(gs, e_sh) << bk->name() << " mul_shoup n=" << n
                            << " q=" << q;
        // w == 0 (mul_scalar by 0 mod anything) must also agree.
        bk->mul_shoup(gs.data(), a.data(), n, 0, 0, q);
        std::vector<u64> es(n);
        scalar_backend().mul_shoup(es.data(), a.data(), n, 0, 0, q);
        ASSERT_EQ(gs, es) << bk->name() << " mul_shoup w=0";
      }
    }
  }
}

TEST(KernelReduce128, SimdMatchesSlowPathSweep) {
  // Mirrors Modulus.Reduce128BarrettMatchesSlowPath (modular_test.cpp) at
  // the backend boundary: FULL-RANGE 128-bit inputs, not just products.
  Xoshiro256 rng(104);
  const std::vector<u64> moduli = {2,
                                   3,
                                   17,
                                   65537,
                                   poe::pasta::pasta_prime(60),
                                   (u64{1} << 62) - 57,
                                   (u64{1} << 62) - 1};
  for (const u64 p : moduli) {
    const Modulus m(p);
    const std::size_t n = 1000;  // not a multiple of 4 or 8
    std::vector<u64> lo(n), hi(n), expect(n);
    for (std::size_t i = 0; i < n; ++i) {
      lo[i] = rng.next();
      hi[i] = rng.next();
    }
    // Pin the documented edge values in the first slots.
    lo[0] = 0, hi[0] = 0;
    lo[1] = p, hi[1] = 0;
    lo[2] = p - 1, hi[2] = 0;
    const auto max_prod = static_cast<u128>(p - 1) * (p - 1);
    lo[3] = static_cast<u64>(max_prod), hi[3] = static_cast<u64>(max_prod >> 64);
    lo[4] = ~u64{0}, hi[4] = ~u64{0};
    for (std::size_t i = 0; i < n; ++i) {
      const u128 x = (static_cast<u128>(hi[i]) << 64) | lo[i];
      expect[i] = m.reduce128(x);  // the slow, obviously-correct path
    }
    for (const Backend* b : available_backends()) {
      std::vector<u64> got(n);
      b->reduce128(got.data(), lo.data(), hi.data(), n, m);
      ASSERT_EQ(got, expect) << b->name() << " p=" << p;
    }
  }
}

TEST(KernelKsw, AccumulateMatchesNaiveWithAndWithoutPerm) {
  Xoshiro256 rng(105);
  for (const u64 q : test_moduli(256)) {
    const Modulus m(q);
    for (const std::size_t n : {8u, 60u, 256u}) {
      for (const std::size_t nd : {1u, 5u, 22u}) {
        std::vector<std::vector<u64>> dig(nd), kb(nd), ka(nd);
        std::vector<const u64*> dig_p(nd), kb_p(nd), ka_p(nd);
        for (std::size_t w = 0; w < nd; ++w) {
          dig[w].resize(n), kb[w].resize(n), ka[w].resize(n);
          for (std::size_t i = 0; i < n; ++i) {
            // q-1 everywhere in the first digit stresses the lazy
            // accumulator's flush schedule hardest.
            dig[w][i] = w == 0 ? q - 1 : rng.below(q);
            kb[w][i] = w == 0 ? q - 1 : rng.below(q);
            ka[w][i] = rng.below(q);
          }
          dig_p[w] = dig[w].data(), kb_p[w] = kb[w].data(),
          ka_p[w] = ka[w].data();
        }
        std::vector<u32> perm(n);
        std::iota(perm.begin(), perm.end(), 0u);
        for (std::size_t i = n; i > 1; --i) {  // Fisher–Yates
          std::swap(perm[i - 1], perm[rng.below(i)]);
        }
        std::vector<u64> init0(n), init1(n);
        for (std::size_t i = 0; i < n; ++i) {
          init0[i] = rng.below(q);
          init1[i] = rng.below(q);
        }
        for (const u32* p : {static_cast<const u32*>(nullptr),
                             static_cast<const u32*>(perm.data())}) {
          // Naive ground truth: per-term modular reduction, no laziness.
          std::vector<u64> want0 = init0, want1 = init1;
          for (std::size_t i = 0; i < n; ++i) {
            const std::size_t j = p != nullptr ? p[i] : i;
            for (std::size_t w = 0; w < nd; ++w) {
              want0[i] = static_cast<u64>(
                  (u128{want0[i]} + u128{dig[w][j]} * kb[w][i]) % q);
              want1[i] = static_cast<u64>(
                  (u128{want1[i]} + u128{dig[w][j]} * ka[w][i]) % q);
            }
          }
          for (const Backend* b : available_backends()) {
            std::vector<u64> d0 = init0, d1 = init1;
            b->ksw_accumulate(d0.data(), d1.data(), dig_p.data(),
                              kb_p.data(), ka_p.data(), nd, n, p, m);
            ASSERT_EQ(d0, want0) << b->name() << " q=" << q << " n=" << n
                                 << " nd=" << nd << " perm=" << (p != nullptr);
            ASSERT_EQ(d1, want1) << b->name() << " q=" << q << " n=" << n
                                 << " nd=" << nd << " perm=" << (p != nullptr);
          }
        }
      }
    }
  }
}

TEST(KernelKsw, OverwriteModeIgnoresDestinationGarbage) {
  // seedX=false must produce exactly the accumulate-into-zero result no
  // matter what bits dst held before the call — the overwrite-mode ksw in
  // the hoisted-rotation hot path writes into UNINITIALISED leased scratch.
  Xoshiro256 rng(107);
  for (const u64 q : test_moduli(64)) {
    const Modulus m(q);
    const std::size_t n = 256, nd = 5;
    std::vector<std::vector<u64>> dig(nd), kb(nd), ka(nd);
    std::vector<const u64*> dig_p(nd), kb_p(nd), ka_p(nd);
    for (std::size_t w = 0; w < nd; ++w) {
      dig[w].resize(n), kb[w].resize(n), ka[w].resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        dig[w][i] = rng.below(q);
        kb[w][i] = rng.below(q);
        ka[w][i] = rng.below(q);
      }
      dig_p[w] = dig[w].data(), kb_p[w] = kb[w].data(),
      ka_p[w] = ka[w].data();
    }
    std::vector<u32> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::size_t i = n; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }
    std::vector<u64> seed0(n), seed1(n);
    for (std::size_t i = 0; i < n; ++i) {
      seed0[i] = rng.below(q);
      seed1[i] = rng.below(q);
    }
    for (const u32* p : {static_cast<const u32*>(nullptr),
                         static_cast<const u32*>(perm.data())}) {
      // Ground truth per lane: accumulate-mode over a zero (overwrite) or
      // given (accumulate) seed, with per-term reduction.
      auto want_lane = [&](const std::vector<std::vector<u64>>& k,
                           const std::vector<u64>* init) {
        std::vector<u64> want(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t j = p != nullptr ? p[i] : i;
          u128 acc = init != nullptr ? (*init)[i] : u128{0};
          for (std::size_t w = 0; w < nd; ++w) {
            acc = (acc + u128{dig[w][j]} * k[w][i]) % q;
          }
          want[i] = static_cast<u64>(acc);
        }
        return want;
      };
      for (const Backend* b : available_backends()) {
        // Full overwrite: both lanes start as garbage, both must come out
        // as if seeded with zero.
        std::vector<u64> d0(n), d1(n);
        for (std::size_t i = 0; i < n; ++i) d0[i] = rng.next(), d1[i] = rng.next();
        b->ksw_accumulate(d0.data(), d1.data(), dig_p.data(), kb_p.data(),
                          ka_p.data(), nd, n, p, m, /*acc0=*/false,
                          /*acc1=*/false);
        ASSERT_EQ(d0, want_lane(kb, nullptr))
            << b->name() << " q=" << q << " perm=" << (p != nullptr);
        ASSERT_EQ(d1, want_lane(ka, nullptr))
            << b->name() << " q=" << q << " perm=" << (p != nullptr);

        // Mixed flags: lane 0 accumulates onto its seed, lane 1 is
        // overwritten (the apply_galois/ingest shape).
        d0 = seed0;
        for (std::size_t i = 0; i < n; ++i) d1[i] = rng.next();
        b->ksw_accumulate(d0.data(), d1.data(), dig_p.data(), kb_p.data(),
                          ka_p.data(), nd, n, p, m, /*acc0=*/true,
                          /*acc1=*/false);
        ASSERT_EQ(d0, want_lane(kb, &seed0))
            << b->name() << " q=" << q << " perm=" << (p != nullptr);
        ASSERT_EQ(d1, want_lane(ka, nullptr))
            << b->name() << " q=" << q << " perm=" << (p != nullptr);
      }
    }
  }
}

TEST(KernelPermute, PermuteAddBitIdentity) {
  // permute_add fuses the closing automorphism of a hoisted rotation with
  // the c0 addition: dst[i] = a[perm[i]] + b[perm[i]] mod q.
  Xoshiro256 rng(108);
  for (const u64 q : test_moduli(16)) {
    const Modulus m(q);
    for (const std::size_t n : {8u, 33u, 1024u}) {
      std::vector<u64> a(n), b(n);
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.below(q);
        b[i] = rng.below(q);
      }
      std::vector<u32> perm(n);
      std::iota(perm.begin(), perm.end(), 0u);
      for (std::size_t i = n; i > 1; --i) {
        std::swap(perm[i - 1], perm[rng.below(i)]);
      }
      for (const Backend* be : available_backends()) {
        std::vector<u64> got(n);
        be->permute_add(got.data(), a.data(), b.data(), perm.data(), n, m);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(got[i], (a[perm[i]] + b[perm[i]]) % q)
              << be->name() << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(KernelPermute, BitIdentity) {
  Xoshiro256 rng(106);
  for (const std::size_t n : {8u, 33u, 4096u}) {
    std::vector<u64> src(n);
    for (auto& x : src) x = rng.next();
    std::vector<u32> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::size_t i = n; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }
    std::vector<u64> expect(n);
    scalar_backend().permute(expect.data(), src.data(), perm.data(), n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(expect[i], src[perm[i]]);
    for (const Backend* b : simd_backends()) {
      std::vector<u64> got(n);
      b->permute(got.data(), src.data(), perm.data(), n);
      ASSERT_EQ(got, expect) << b->name() << " n=" << n;
    }
  }
}

#ifndef NDEBUG
TEST(KernelDebugChecks, LazyBoundViolationsAreCaught) {
  const std::size_t n = 64;
  const u64 q = mod::ntt_prime_chain(1, 30, n)[0];
  const fhe::Ntt ntt(q, n);
  const NttTables t = ntt.tables();
  std::vector<u64> x(n, 0);
  x[n / 2] = 4 * q;  // >= 4q: illegal forward input
  EXPECT_THROW(scalar_backend().ntt_inplace(x.data(), t), poe::Error);
  x[n / 2] = 2 * q;  // >= 2q: illegal inverse input
  EXPECT_THROW(scalar_backend().intt_inplace(x.data(), t), poe::Error);
  x[n / 2] = 4 * q - 1;  // legal again
  EXPECT_NO_THROW(scalar_backend().ntt_inplace(x.data(), t));
}
#endif

/// End-to-end: two complete BGV instances that differ ONLY in kernel
/// backend must produce bit-identical ciphertexts through encrypt,
/// tensor/relinearise (exercises the lazy ksw accumulate), and a hoisted
/// rotation (exercises the fused permutation path).
TEST(KernelEndToEnd, BgvCiphertextsBitIdenticalAcrossBackends) {
  const auto simd = simd_backends();
  if (simd.empty()) GTEST_SKIP() << "no SIMD backend on this host";

  const auto params = fhe::BgvParams::toy();
  ExecContext scalar_exec(nullptr, &scalar_backend());
  const fhe::Bgv ref(params, &scalar_exec);

  fhe::Plaintext pt;
  pt.coeffs.assign(params.n, 0);
  for (std::size_t i = 0; i < params.n; ++i) {
    pt.coeffs[i] = (i * 7 + 3) % params.t;
  }
  const auto ref_ct = ref.encrypt(pt);
  const auto ref_prod = ref.multiply_relin(ref_ct, ref_ct);
  const auto ref_keys = ref.make_rotation_keys({1});
  const auto ref_rot = ref.rotate_hoisted(ref.hoist(ref_ct), 1, ref_keys);

  const auto expect_bits = [&](const fhe::Ciphertext& a,
                               const fhe::Ciphertext& b, const char* what,
                               std::string_view backend) {
    ASSERT_EQ(a.size(), b.size()) << what << " " << backend;
    ASSERT_EQ(a.level, b.level) << what << " " << backend;
    for (std::size_t p = 0; p < a.size(); ++p) {
      for (std::size_t i = 0; i < a.level; ++i) {
        const auto lhs = a.parts[p].rns(i);
        const auto rhs = b.parts[p].rns(i);
        ASSERT_TRUE(std::equal(lhs.begin(), lhs.end(), rhs.begin()))
            << what << " part " << p << " rns " << i << " " << backend;
      }
    }
  };

  for (const Backend* b : simd) {
    ExecContext exec(nullptr, b);
    const fhe::Bgv bgv(params, &exec);  // same seed => same keys
    const auto ct = bgv.encrypt(pt);
    expect_bits(ct, ref_ct, "encrypt", b->name());
    expect_bits(bgv.multiply_relin(ct, ct), ref_prod, "multiply_relin",
                b->name());
    const auto keys = bgv.make_rotation_keys({1});
    expect_bits(bgv.rotate_hoisted(bgv.hoist(ct), 1, keys), ref_rot,
                "rotate_hoisted", b->name());
    const auto dec = bgv.decrypt(ct);
    ASSERT_EQ(dec.coeffs, ref.decrypt(ref_ct).coeffs) << b->name();
  }
}

}  // namespace
}  // namespace poe::kernels
