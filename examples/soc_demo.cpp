// Boot the RV32IM SoC, program the PASTA peripheral over the memory-mapped
// slave interface with a generated RISC-V driver, and encrypt data straight
// out of RAM — the paper's §IV-A ③ system, end to end.
#include <iostream>

#include "common/table.hpp"
#include "core/poe.hpp"
#include "riscv/disasm.hpp"
#include "soc/driver.hpp"
#include "soc/soc.hpp"

int main() {
  using namespace poe;

  const auto params = pasta::pasta4();
  soc::SocConfig cfg{.params = params};
  soc::Soc machine(cfg);
  std::cout << "SoC: RV32IM core + " << params.name
            << " peripheral at 0x40000000, 1 MiB RAM, 100 MHz target\n";

  // Stage key and plaintext in RAM.
  Xoshiro256 rng(123);
  const auto key = pasta::PastaCipher::random_key(params, rng);
  soc::DriverLayout layout;
  layout.num_blocks = 3;
  layout.nonce = 0x1234;
  std::vector<std::uint64_t> msg(params.t * layout.num_blocks);
  for (auto& m : msg) m = rng.below(params.p);
  const unsigned stride = machine.peripheral().element_stride();
  soc::store_elements(machine.ram(), layout.key_addr, key, stride);
  soc::store_elements(machine.ram(), layout.src_addr, msg, stride);

  // Generate and run the driver program.
  const auto program = soc::build_encrypt_driver(params, cfg.periph_base, layout);
  std::cout << "Driver: " << program.size() << " RV32IM instructions "
            << "(key upload, per-block start/poll/readout); first ten:\n";
  const auto listing = rv::disassemble_program(program, cfg.reset_pc);
  for (std::size_t i = 0; i < 10 && i < listing.size(); ++i) {
    std::cout << "  " << listing[i] << "\n";
  }
  const auto reason = machine.run_program(program);
  if (reason != rv::StopReason::kEcall) {
    std::cerr << "driver did not reach ecall\n";
    return 1;
  }

  // Verify against the reference cipher.
  const auto ct = soc::load_elements(machine.ram(), layout.dst_addr,
                                     msg.size(), stride);
  pasta::PastaCipher reference(params, key);
  const bool ok = ct == reference.encrypt(msg, layout.nonce);

  const auto t0 = machine.ram().load_word(layout.cycles_addr);
  const auto t1 = machine.ram().load_word(layout.cycles_addr + 4);
  const auto& stats = machine.peripheral().stats();

  TextTable t;
  t.header({"Metric", "Value"});
  t.row({"Blocks encrypted", std::to_string(stats.blocks_processed)});
  t.row({"Instructions retired",
         with_commas(machine.cpu().instructions_retired())});
  t.row({"SoC cycles (driver-measured)", with_commas(t1 - t0)});
  t.row({"Peripheral accelerator cycles",
         with_commas(stats.accelerator_cycles)});
  t.row({"Per block @100 MHz",
         fixed(hw::riscv_soc_100mhz().cycles_to_us((t1 - t0) /
                                                   stats.blocks_processed),
               1) +
             " us (paper Table II: 15.9 us)"});
  t.row({"Ciphertext matches reference", ok ? "yes" : "NO"});
  t.print(std::cout);
  return ok ? 0 : 1;
}
