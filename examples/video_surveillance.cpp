// The paper's §V application: a surveillance camera encrypts video frames
// with PASTA and streams them to a cloud over a 5G uplink. Runs real frames
// through the cycle-accurate accelerator model and reports the achievable
// frame rate at the paper's bandwidth bounds.
#include <iostream>

#include "app/video.hpp"
#include "common/table.hpp"
#include "core/poe.hpp"

int main() {
  using namespace poe;

  // 33-bit prime: 4 grayscale pixels per field element (as in §V's 132 B
  // block size), PASTA-4 blocks of 32 elements.
  const auto params = pasta::pasta4(pasta::pasta_prime(33));
  Xoshiro256 rng(7);
  app::FrameEncryptor encryptor(
      params, pasta::PastaCipher::random_key(params, rng),
      /*pixels_per_element=*/4);

  TextTable t("Encrypted video streaming over 5G (PASTA-4, w=33)");
  t.header({"Resolution", "bytes/frame", "cycles/frame", "fps @1GHz chip",
            "fps @12.5MBps", "fps @112.5MBps"});

  for (const auto& res :
       {analytics::qqvga(), analytics::qvga(), analytics::vga()}) {
    app::SyntheticCamera camera(res);
    const auto frame = camera.next_frame();
    const auto enc = encryptor.encrypt(frame, /*nonce=*/res.pixels());

    // Verify the roundtrip before reporting numbers.
    const auto back = encryptor.decrypt(enc, res, res.pixels());
    if (back.pixels != frame.pixels) {
      std::cerr << "frame roundtrip failed for " << res.name << "\n";
      return 1;
    }

    const double us_per_frame = hw::asic_1ghz().cycles_to_us(enc.cycles);
    const double compute_fps = 1e6 / us_per_frame;
    const double fps_min = std::min(
        compute_fps, analytics::kMinBandwidthBps / enc.bytes_on_wire);
    const double fps_max = std::min(
        compute_fps, analytics::kMaxBandwidthBps / enc.bytes_on_wire);
    t.row({res.name, with_commas(enc.bytes_on_wire),
           with_commas(enc.cycles), fixed(compute_fps, 0), fixed(fps_min, 0),
           fixed(fps_max, 0)});
  }
  t.print(std::cout);

  std::cout << "RISE [19] for comparison sends a 1.56 MB ciphertext per "
               "16,384 pixels: ~70 QQVGA fps at 112.5 MBps and no VGA at "
               "12.5 MBps (Fig. 8).\n";
  return 0;
}
