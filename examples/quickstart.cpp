// Quickstart: encrypt and decrypt with PASTA-4 through the public
// poe::Accelerator API, and read the latency a client device would see on
// each of the paper's platforms.
//
//   $ ./examples/quickstart
#include <iostream>
#include <vector>

#include "core/poe.hpp"

int main() {
  using namespace poe;

  // PASTA-4 over the 17-bit Fermat prime 65537 — the paper's headline
  // configuration. pasta3() and pasta_prime(33/54/60) are also available.
  const auto params = pasta::pasta4();

  // A cryptoprocessor instance with a (seeded) random 64-element key. The
  // kCycleSim backend runs the cycle-accurate hardware model, so encrypt()
  // also reports clock cycles.
  auto accel = Accelerator::with_random_key(params, /*seed=*/2024);

  // Any message length works; elements must be < p. One block is t = 32.
  std::vector<std::uint64_t> message;
  for (std::uint64_t i = 0; i < 80; ++i) message.push_back((i * 7919) % params.p);

  EncryptStats stats;
  const std::uint64_t nonce = 0x5EED;
  const auto ciphertext = accel.encrypt(message, nonce, &stats);

  std::cout << "PASTA-4: encrypted " << message.size() << " elements in "
            << stats.blocks << " blocks, " << stats.cycles
            << " accelerator cycles total\n"
            << "  Artix-7 FPGA @75MHz : " << stats.fpga_us << " us\n"
            << "  ASIC @1GHz          : " << stats.asic_us << " us\n"
            << "  (per block: ~" << stats.cycles / stats.blocks
            << " cycles; paper Table II: 1,591)\n";

  std::cout << "Ciphertext on the wire: "
            << pasta::ciphertext_bytes(params, ciphertext.size())
            << " bytes — same element count as the plaintext, no FHE "
               "expansion.\n";

  const auto decrypted = accel.decrypt(ciphertext, nonce);
  std::cout << "Decrypt roundtrip: "
            << (decrypted == message ? "OK" : "FAILED") << "\n";

  // Bonus: what one block looks like inside the cryptoprocessor (the
  // paper's Fig.-3 schedule, reconstructed from the cycle model).
  hw::AcceleratorSim sim(params);
  hw::ScheduleTrace trace;
  const auto block = sim.run_block(accel.key(), nonce, 0, nullptr, &trace);
  std::cout << "\nOne block through the datapath ("
            << block.stats.total_cycles << " cycles):\n";
  trace.print_timeline(std::cout, block.stats.total_cycles, 72);
  return decrypted == message ? 0 : 1;
}
