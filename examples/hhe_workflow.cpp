// The full hybrid-homomorphic-encryption workflow of the paper's Fig. 1:
//
//   client                           server
//   ------                           ------
//   FHE-encrypt PASTA key  ───────►  (stored once)
//   PASTA-encrypt message  ───────►  homomorphic PASTA decryption
//                                    = BGV ciphertexts of the message
//                                    ... homomorphic computation ...
//   FHE-decrypt result     ◄───────  encrypted result
//
// Runs a reduced PASTA instance (t = 8, same 4-round circuit) by default so
// it finishes in seconds; pass --full for real PASTA-4 (t = 32, ~a minute).
#include <cstring>
#include <iostream>

#include "core/poe.hpp"
#include "hhe/protocol.hpp"

int main(int argc, char** argv) {
  using namespace poe;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  const auto config = full ? hhe::HheConfig::demo() : hhe::HheConfig::test();
  std::cout << "HHE workflow with " << config.pasta.name << " (t = "
            << config.pasta.t << ") over BGV (n = " << config.bgv.n << ")\n";

  fhe::Bgv bgv(config.bgv);

  // --- Client side.
  Xoshiro256 rng(99);
  const auto key = pasta::PastaCipher::random_key(config.pasta, rng);
  hhe::HheClient client(config, bgv, key);

  std::cout << "[client] uploading FHE-encrypted PASTA key ("
            << config.pasta.key_size() << " ciphertexts, once)...\n";
  hhe::HheServer server(config, bgv, client.encrypt_key());

  std::vector<std::uint64_t> message(config.pasta.t);
  for (std::size_t i = 0; i < message.size(); ++i) {
    message[i] = (1000 + 17 * i) % config.pasta.p;
  }
  const std::uint64_t nonce = 42;
  const auto sym_ct = client.encrypt(message, nonce);
  std::cout << "[client] sent " << pasta::ciphertext_bytes(config.pasta,
                                                           sym_ct.size())
            << " B of PASTA ciphertext (vs "
            << 2 * config.bgv.num_primes * config.bgv.n * 8
            << " B for a direct FHE upload)\n";

  // --- Server side: transcipher, then compute on the encrypted data.
  std::cout << "[server] evaluating the homomorphic PASTA decryption "
               "circuit...\n";
  hhe::ServerReport report;
  auto data = server.transcipher_block(sym_ct, nonce, 0, &report);
  std::cout << "[server] done — noise budget left: "
            << report.min_noise_budget_bits << " bits\n";

  // Example computation: sum of the first four elements, times 3.
  fhe::Ciphertext result = data[0];
  for (int i = 1; i < 4; ++i) bgv.add_inplace(result, data[i]);
  bgv.mul_scalar_inplace(result, 3);

  // --- Client side: decrypt the computed result.
  const auto got = client.decrypt_result({result})[0];
  const mod::Modulus pm(config.pasta.p);
  std::uint64_t expect = 0;
  for (int i = 0; i < 4; ++i) expect = pm.add(expect, message[i]);
  expect = pm.mul(expect, 3);

  std::cout << "[client] 3 * (m0+m1+m2+m3) = " << got << " (expected "
            << expect << ") -> " << (got == expect ? "OK" : "FAILED") << "\n";
  return got == expect ? 0 : 1;
}
