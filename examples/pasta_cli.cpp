// pasta_cli — a small command-line tool around the library: encrypt or
// decrypt arbitrary bytes from stdin to stdout with PASTA-4, demonstrating
// the byte <-> field-element packing and the bit-packed wire format.
//
//   echo -n "attack at dawn" | ./pasta_cli encrypt 00112233 1 > msg.pasta
//   ./pasta_cli decrypt 00112233 1 < msg.pasta
//
// Arguments: mode (encrypt|decrypt), hex key seed, decimal nonce. The
// 64-element PASTA key is derived from the seed with SHAKE128 (so both
// sides can reconstruct it); a real deployment would provision the key.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/poe.hpp"
#include "keccak/shake.hpp"
#include "pasta/serialize.hpp"

namespace {

using namespace poe;

std::vector<std::uint64_t> derive_key(const pasta::PastaParams& params,
                                      const std::string& hex_seed) {
  keccak::Shake xof = keccak::Shake::shake128();
  std::vector<std::uint8_t> seed(hex_seed.begin(), hex_seed.end());
  xof.absorb(seed);
  std::vector<std::uint64_t> key(params.key_size());
  const std::uint64_t mask = params.sample_mask();
  for (auto& k : key) {
    do {
      k = xof.squeeze_u64() & mask;
    } while (k >= params.p);
  }
  return key;
}

// 2 bytes per element for the 17-bit prime (values < 2^16 < p).
std::vector<std::uint64_t> bytes_to_elements(
    const std::vector<std::uint8_t>& data) {
  std::vector<std::uint64_t> out((data.size() + 1) / 2);
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i / 2] |= static_cast<std::uint64_t>(data[i]) << (8 * (i % 2));
  }
  return out;
}

std::vector<std::uint8_t> elements_to_bytes(
    const std::vector<std::uint64_t>& elems, std::size_t byte_count) {
  std::vector<std::uint8_t> out(byte_count);
  for (std::size_t i = 0; i < byte_count; ++i) {
    out[i] = static_cast<std::uint8_t>(elems[i / 2] >> (8 * (i % 2)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    std::cerr << "usage: pasta_cli <encrypt|decrypt> <hex-key-seed> <nonce>\n";
    return 2;
  }
  const bool encrypting = std::strcmp(argv[1], "encrypt") == 0;
  if (!encrypting && std::strcmp(argv[1], "decrypt") != 0) {
    std::cerr << "mode must be encrypt or decrypt\n";
    return 2;
  }
  const auto params = pasta::pasta4();
  const auto key = derive_key(params, argv[2]);
  const std::uint64_t nonce = std::stoull(argv[3]);
  Accelerator accel(params, key, Backend::kReference);

  std::vector<std::uint8_t> input(std::istreambuf_iterator<char>(std::cin),
                                  {});
  if (encrypting) {
    const auto elements = bytes_to_elements(input);
    const auto ct = accel.encrypt(elements, nonce);
    // Wire format: 8-byte original length, then bit-packed elements.
    std::uint8_t header[8];
    store_le64(header, input.size());
    std::cout.write(reinterpret_cast<const char*>(header), 8);
    const auto packed = pasta::pack_elements(params, ct);
    std::cout.write(reinterpret_cast<const char*>(packed.data()),
                    static_cast<std::streamsize>(packed.size()));
    std::cerr << "encrypted " << input.size() << " bytes -> "
              << 8 + packed.size() << " on the wire\n";
  } else {
    if (input.size() < 8) {
      std::cerr << "truncated input\n";
      return 1;
    }
    const std::uint64_t byte_count = load_le64(input.data());
    const std::size_t element_count = (byte_count + 1) / 2;
    const auto ct = pasta::unpack_elements(
        params, std::span(input).subspan(8), element_count);
    const auto elements = accel.decrypt(ct, nonce);
    const auto bytes = elements_to_bytes(elements, byte_count);
    std::cout.write(reinterpret_cast<const char*>(bytes.data()),
                    static_cast<std::streamsize>(bytes.size()));
  }
  return 0;
}
