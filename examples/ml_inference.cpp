// Privacy-preserving ML inference — the application class the paper's
// comparisons highlight (§IV-C ①: "For ML inference applications encrypting
// low amounts of data (e.g., 32 coefficients), we deliver much better
// performance").
//
// The client PASTA-encrypts a 32-feature vector (one block, 68 bytes on the
// wire). The server homomorphically decrypts it into BGV ciphertexts and
// evaluates a small linear classifier (integer weights, mod-p arithmetic)
// entirely on encrypted data; only the client can read the scores.
//
// Uses the reduced 8-feature instance by default so it finishes in seconds;
// pass --full for the real 32-feature PASTA-4 block.
#include <cstring>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "core/poe.hpp"
#include "hhe/protocol.hpp"

int main(int argc, char** argv) {
  using namespace poe;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  const auto config = full ? hhe::HheConfig::demo() : hhe::HheConfig::test();
  const std::size_t features = config.pasta.t;
  const mod::Modulus pm(config.pasta.p);

  std::cout << "Encrypted inference: " << features << "-feature vector, "
            << config.pasta.name << " client + BGV server\n";

  fhe::Bgv bgv(config.bgv);
  Xoshiro256 rng(2026);
  const auto key = pasta::PastaCipher::random_key(config.pasta, rng);
  hhe::HheClient client(config, bgv, key);
  hhe::HheServer server(config, bgv, client.encrypt_key());

  // The client's private feature vector (quantised to integers).
  std::vector<std::uint64_t> x(features);
  for (std::size_t i = 0; i < features; ++i) x[i] = 10 + 3 * i;

  // The server's model: 3 classes, integer weights + bias.
  const std::size_t classes = 3;
  std::vector<std::vector<std::uint64_t>> w(
      classes, std::vector<std::uint64_t>(features));
  std::vector<std::uint64_t> b(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    b[c] = 100 * (c + 1);
    for (std::size_t i = 0; i < features; ++i) {
      w[c][i] = (7 * c + 2 * i + 1) % 50;
    }
  }

  // Client -> server: one PASTA block. No RLWE expansion.
  const std::uint64_t nonce = 0x31337;
  const auto sym_ct = client.encrypt(x, nonce);
  std::cout << "[client] uploaded "
            << pasta::ciphertext_bytes(config.pasta, sym_ct.size())
            << " B (an RLWE upload at N=2^13 would be ~200 KB)\n";

  // Server: transcipher, then evaluate scores[c] = <w_c, x> + b_c.
  const auto enc_x = server.transcipher_block(sym_ct, nonce, 0);
  std::vector<fhe::Ciphertext> scores;
  for (std::size_t c = 0; c < classes; ++c) {
    fhe::Ciphertext acc = enc_x[0];
    bgv.mul_scalar_inplace(acc, w[c][0]);
    for (std::size_t i = 1; i < features; ++i) {
      fhe::Ciphertext term = enc_x[i];
      bgv.mul_scalar_inplace(term, w[c][i]);
      bgv.add_inplace(acc, term);
    }
    bgv.add_scalar_inplace(acc, b[c]);
    scores.push_back(std::move(acc));
  }
  std::cout << "[server] evaluated " << classes
            << " encrypted dot products on transciphered data\n";

  // Client: decrypt the scores and check against the plaintext model.
  const auto got = client.decrypt_result(scores);
  TextTable t;
  t.header({"class", "encrypted score", "plaintext score", "match"});
  bool all_ok = true;
  for (std::size_t c = 0; c < classes; ++c) {
    std::uint64_t expect = b[c];
    for (std::size_t i = 0; i < features; ++i) {
      expect = pm.add(expect, pm.mul(w[c][i], x[i]));
    }
    const bool ok = got[c] == expect;
    all_ok &= ok;
    t.row({std::to_string(c), std::to_string(got[c]),
           std::to_string(expect), ok ? "yes" : "NO"});
  }
  t.print(std::cout);
  return all_ok ? 0 : 1;
}
