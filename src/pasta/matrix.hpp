// Invertible matrices for the PASTA affine layer.
//
// Following the PHOTON/LED sequential construction (paper eq. (1)): the
// matrix is defined by its first row α; every subsequent row is the previous
// row multiplied by the companion matrix of α:
//
//   next[0]   = prev[t-1] * α[0]
//   next[j]   = prev[j-1] + prev[t-1] * α[j]      (j >= 1)
//
// The hardware never materialises the matrix — it streams rows straight into
// the matrix-vector product, storing only (α, current row). RowStream mirrors
// that; Matrix is the materialised form used by tests and the HHE server.
#pragma once

#include <cstdint>
#include <vector>

#include "modular/modulus.hpp"

namespace poe::pasta {

/// Dense row-major matrix over F_p.
struct Matrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint64_t> data;

  Matrix() = default;
  Matrix(std::size_t r, std::size_t c) : rows(r), cols(c), data(r * c, 0) {}

  std::uint64_t& at(std::size_t r, std::size_t c) { return data[r * cols + c]; }
  std::uint64_t at(std::size_t r, std::size_t c) const {
    return data[r * cols + c];
  }
};

/// Streams the rows of the sequential invertible matrix generated from first
/// row alpha, using O(t) state — exactly what the hardware MatGen unit keeps.
class RowStream {
 public:
  RowStream(const mod::Modulus& mod, std::vector<std::uint64_t> alpha);

  /// Row 0 is alpha itself; each call returns the next row.
  const std::vector<std::uint64_t>& next_row();

  std::size_t t() const { return alpha_.size(); }

 private:
  mod::Modulus mod_;
  std::vector<std::uint64_t> alpha_;
  std::vector<std::uint64_t> row_;
  bool first_ = true;
};

/// Materialise the full t x t sequential matrix from its first row.
Matrix sequential_matrix(const mod::Modulus& mod,
                         const std::vector<std::uint64_t>& alpha);

/// y = M * x over F_p.
std::vector<std::uint64_t> mat_vec(const mod::Modulus& mod, const Matrix& m,
                                   const std::vector<std::uint64_t>& x);

/// Rank test by Gaussian elimination (test/diagnostic utility).
bool is_invertible(const mod::Modulus& mod, Matrix m);

}  // namespace poe::pasta
