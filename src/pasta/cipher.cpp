#include "pasta/cipher.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace poe::pasta {

Block affine(const mod::Modulus& mod, const std::vector<std::uint64_t>& alpha,
             const std::vector<std::uint64_t>& rc, const Block& x) {
  const std::size_t t = x.size();
  POE_ENSURE(alpha.size() == t && rc.size() == t, "affine size mismatch");
  RowStream rows(mod, alpha);
  Block y(t);
  for (std::size_t r = 0; r < t; ++r) {
    const auto& row = rows.next_row();
    mod::u128 acc = rc[r];
    for (std::size_t c = 0; c < t; ++c) {
      acc += static_cast<mod::u128>(row[c]) * x[c];
      if ((c & 3) == 3) acc %= mod.value();
    }
    y[r] = mod.reduce128(acc);
  }
  return y;
}

void mix(const mod::Modulus& mod, Block& l, Block& r) {
  POE_ENSURE(l.size() == r.size(), "mix size mismatch");
  for (std::size_t i = 0; i < l.size(); ++i) {
    const std::uint64_t sum = mod.add(l[i], r[i]);
    l[i] = mod.add(l[i], sum);
    r[i] = mod.add(r[i], sum);
  }
}

void sbox_feistel(const mod::Modulus& mod, Block& x) {
  for (std::size_t j = x.size(); j-- > 1;) {
    x[j] = mod.add(x[j], mod.mul(x[j - 1], x[j - 1]));
  }
}

void sbox_cube(const mod::Modulus& mod, Block& x) {
  for (auto& v : x) {
    v = mod.mul(mod.mul(v, v), v);
  }
}

BlockRandomness derive_block_randomness(const PastaParams& params,
                                        std::uint64_t nonce,
                                        std::uint64_t counter) {
  FieldSampler sampler(params, nonce, counter);
  BlockRandomness out;
  out.layers.reserve(params.affine_layers());
  for (std::size_t layer = 0; layer < params.affine_layers(); ++layer) {
    AffineLayerData d;
    d.alpha_l = sampler.next_vector(/*allow_zero=*/false);
    d.alpha_r = sampler.next_vector(/*allow_zero=*/false);
    d.rc_l = sampler.next_vector(/*allow_zero=*/true);
    d.rc_r = sampler.next_vector(/*allow_zero=*/true);
    out.layers.push_back(std::move(d));
  }
  out.stats = sampler.stats();
  return out;
}

PastaCipher::PastaCipher(const PastaParams& params,
                         std::vector<std::uint64_t> key)
    : params_(params), mod_(params.p), key_(std::move(key)) {
  POE_ENSURE(key_.size() == params_.key_size(),
             params_.name << " key must have " << params_.key_size()
                          << " elements, got " << key_.size());
  POE_ENSURE(std::all_of(key_.begin(), key_.end(),
                         [&](std::uint64_t k) { return k < params_.p; }),
             "key element out of field range");
}

std::vector<std::uint64_t> PastaCipher::random_key(const PastaParams& params,
                                                   Xoshiro256& rng) {
  std::vector<std::uint64_t> key(params.key_size());
  for (auto& k : key) k = rng.below(params.p);
  return key;
}

Block PastaCipher::keystream(std::uint64_t nonce, std::uint64_t counter,
                             SamplerStats* stats) const {
  FieldSampler sampler(params_, nonce, counter);
  const std::size_t t = params_.t;

  Block left(key_.begin(), key_.begin() + static_cast<std::ptrdiff_t>(t));
  Block right(key_.begin() + static_cast<std::ptrdiff_t>(t), key_.end());

  auto affine_layer = [&](Block& l, Block& r) {
    const auto alpha_l = sampler.next_vector(false);
    const auto alpha_r = sampler.next_vector(false);
    const auto rc_l = sampler.next_vector(true);
    const auto rc_r = sampler.next_vector(true);
    l = affine(mod_, alpha_l, rc_l, l);
    r = affine(mod_, alpha_r, rc_r, r);
  };

  for (std::size_t round = 0; round < params_.rounds; ++round) {
    affine_layer(left, right);
    mix(mod_, left, right);
    if (round == params_.rounds - 1) {
      sbox_cube(mod_, left);
      sbox_cube(mod_, right);
    } else {
      sbox_feistel(mod_, left);
      sbox_feistel(mod_, right);
    }
  }
  // Final affine layer + Mix, then truncate to the left half.
  affine_layer(left, right);
  mix(mod_, left, right);

  if (stats != nullptr) *stats = sampler.stats();
  return left;
}

std::vector<std::uint64_t> PastaCipher::add_keystream(
    std::span<const std::uint64_t> in, std::uint64_t nonce,
    bool subtract) const {
  POE_ENSURE(std::all_of(in.begin(), in.end(),
                         [&](std::uint64_t v) { return v < params_.p; }),
             "message/ciphertext element out of field range");
  std::vector<std::uint64_t> out(in.size());
  const std::size_t t = params_.t;
  for (std::size_t block = 0; block * t < in.size(); ++block) {
    const Block ks = keystream(nonce, block);
    const std::size_t begin = block * t;
    const std::size_t end = std::min(in.size(), begin + t);
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = subtract ? mod_.sub(in[i], ks[i - begin])
                        : mod_.add(in[i], ks[i - begin]);
    }
  }
  return out;
}

std::vector<std::uint64_t> PastaCipher::encrypt(
    std::span<const std::uint64_t> msg, std::uint64_t nonce) const {
  return add_keystream(msg, nonce, /*subtract=*/false);
}

std::vector<std::uint64_t> PastaCipher::decrypt(
    std::span<const std::uint64_t> ct, std::uint64_t nonce) const {
  return add_keystream(ct, nonce, /*subtract=*/true);
}

std::uint64_t ciphertext_bytes(const PastaParams& params,
                               std::size_t num_elements) {
  const std::uint64_t bits =
      static_cast<std::uint64_t>(num_elements) * params.prime_bits();
  return ceil_div(bits, 8);
}

}  // namespace poe::pasta
