// Bit-packed wire format for PASTA ciphertexts and keys.
//
// The paper's communication numbers (§V: "132 Bytes (2^5 · 33 bits)")
// assume elements are packed at exactly ceil(log2 p) bits each; this module
// implements that format so `ciphertext_bytes` is not just a model but the
// size of real serialised bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pasta/params.hpp"

namespace poe::pasta {

/// Pack field elements at omega = ceil(log2 p) bits each, little-endian bit
/// order, zero-padded to a byte boundary.
std::vector<std::uint8_t> pack_elements(const PastaParams& params,
                                        std::span<const std::uint64_t> elems);

/// Inverse of pack_elements; `count` elements are read.
std::vector<std::uint64_t> unpack_elements(const PastaParams& params,
                                           std::span<const std::uint8_t> bytes,
                                           std::size_t count);

}  // namespace poe::pasta
