#include "pasta/params.hpp"

#include "common/error.hpp"
#include "modular/primes.hpp"

namespace poe::pasta {

std::uint64_t pasta_prime(unsigned omega_bits) {
  switch (omega_bits) {
    case 17:
      return kPrime17;
    case 33:
      // PASTA reference 33-bit modulus (≡ 1 mod 2^17).
      return 8088322049ull;
    case 60:
      // PASTA reference 60-bit modulus (≡ 1 mod 2^19).
      return 1096486890805657601ull;
    case 54: {
      // The paper additionally places a 54-bit configuration (Table I); the
      // exact prime is not stated, so pick the largest 54-bit prime
      // ≡ 1 (mod 2^17) deterministically.
      static const std::uint64_t p =
          mod::previous_congruent_prime((1ull << 54) - 1, 1ull << 17);
      return p;
    }
    default:
      throw Error("unsupported PASTA prime width: " +
                  std::to_string(omega_bits));
  }
}

PastaParams pasta3(std::uint64_t p) {
  return PastaParams{.t = 128, .rounds = 3, .p = p, .name = "PASTA-3"};
}

PastaParams pasta4(std::uint64_t p) {
  return PastaParams{.t = 32, .rounds = 4, .p = p, .name = "PASTA-4"};
}

}  // namespace poe::pasta
