// XOF-driven rejection sampler producing uniform field elements, exactly as
// the PASTA reference: SHAKE128 seeded with nonce‖counter (big-endian),
// 64-bit words masked to ceil(log2 p) bits, rejected if >= p (or zero where
// zeros are disallowed, e.g. matrix first rows).
//
// The sampler records consumption statistics so the hardware cycle model's
// XOF schedule can be cross-checked against software (§IV-B of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "keccak/shake.hpp"
#include "pasta/params.hpp"

namespace poe::pasta {

struct SamplerStats {
  std::uint64_t words_drawn = 0;     ///< 64-bit XOF words consumed
  std::uint64_t words_rejected = 0;  ///< words discarded by rejection
  std::uint64_t permutations = 0;    ///< Keccak-f executions
};

class FieldSampler {
 public:
  FieldSampler(const PastaParams& params, std::uint64_t nonce,
               std::uint64_t counter);

  /// Next uniform element of [0, p) (or [1, p) when allow_zero is false).
  std::uint64_t next(bool allow_zero);

  /// Next t-element vector.
  std::vector<std::uint64_t> next_vector(bool allow_zero);

  SamplerStats stats() const;

 private:
  PastaParams params_;
  keccak::Shake xof_;
  std::uint64_t mask_;
  SamplerStats stats_;
};

}  // namespace poe::pasta
