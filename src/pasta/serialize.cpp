#include "pasta/serialize.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace poe::pasta {

std::vector<std::uint8_t> pack_elements(
    const PastaParams& params, std::span<const std::uint64_t> elems) {
  const unsigned bits = params.prime_bits();
  std::vector<std::uint8_t> out(
      ceil_div(static_cast<std::uint64_t>(elems.size()) * bits, 8), 0);
  std::size_t bit_pos = 0;
  for (const std::uint64_t e : elems) {
    POE_ENSURE(e < params.p, "element out of field range");
    for (unsigned b = 0; b < bits; ++b) {
      if ((e >> b) & 1) {
        out[bit_pos / 8] |= static_cast<std::uint8_t>(1u << (bit_pos % 8));
      }
      ++bit_pos;
    }
  }
  return out;
}

std::vector<std::uint64_t> unpack_elements(
    const PastaParams& params, std::span<const std::uint8_t> bytes,
    std::size_t count) {
  const unsigned bits = params.prime_bits();
  POE_ENSURE(bytes.size() * 8 >= count * bits, "byte buffer too short");
  std::vector<std::uint64_t> out(count, 0);
  std::size_t bit_pos = 0;
  for (auto& e : out) {
    for (unsigned b = 0; b < bits; ++b) {
      if ((bytes[bit_pos / 8] >> (bit_pos % 8)) & 1) {
        e |= std::uint64_t{1} << b;
      }
      ++bit_pos;
    }
    POE_ENSURE(e < params.p, "decoded element out of field range");
  }
  return out;
}

}  // namespace poe::pasta
