#include "pasta/serialize.hpp"

#include <limits>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace poe::pasta {

std::vector<std::uint8_t> pack_elements(
    const PastaParams& params, std::span<const std::uint64_t> elems) {
  const unsigned bits = params.prime_bits();
  std::vector<std::uint8_t> out(
      ceil_div(static_cast<std::uint64_t>(elems.size()) * bits, 8), 0);
  std::size_t bit_pos = 0;
  for (const std::uint64_t e : elems) {
    POE_ENSURE(e < params.p, "element out of field range");
    for (unsigned b = 0; b < bits; ++b) {
      if ((e >> b) & 1) {
        out[bit_pos / 8] |= static_cast<std::uint8_t>(1u << (bit_pos % 8));
      }
      ++bit_pos;
    }
  }
  return out;
}

std::vector<std::uint64_t> unpack_elements(
    const PastaParams& params, std::span<const std::uint8_t> bytes,
    std::size_t count) {
  const unsigned bits = params.prime_bits();
  // Overflow-safe length check: `count * bits` (and `bytes.size() * 8`) can
  // wrap for adversarial counts, which would pass a naive comparison and
  // read past the end of the buffer.
  POE_ENSURE(count <= (std::numeric_limits<std::size_t>::max() - 7) / bits,
             "element count out of range");
  POE_ENSURE(bytes.size() >= ceil_div(std::uint64_t{count} * bits, 8),
             "byte buffer too short");
  std::vector<std::uint64_t> out(count, 0);
  std::size_t bit_pos = 0;
  for (auto& e : out) {
    for (unsigned b = 0; b < bits; ++b) {
      if ((bytes[bit_pos / 8] >> (bit_pos % 8)) & 1) {
        e |= std::uint64_t{1} << b;
      }
      ++bit_pos;
    }
    POE_ENSURE(e < params.p, "decoded element out of field range");
  }
  return out;
}

}  // namespace poe::pasta
