#include "pasta/sampler.hpp"

#include "common/bits.hpp"

namespace poe::pasta {

FieldSampler::FieldSampler(const PastaParams& params, std::uint64_t nonce,
                           std::uint64_t counter)
    : params_(params),
      xof_(keccak::Shake::shake128()),
      mask_(params.sample_mask()) {
  std::uint8_t seed[16];
  store_be64(seed, nonce);
  store_be64(seed + 8, counter);
  xof_.absorb(seed);
}

std::uint64_t FieldSampler::next(bool allow_zero) {
  for (;;) {
    std::uint64_t word = xof_.squeeze_u64() & mask_;
    ++stats_.words_drawn;
    if (word < params_.p && (allow_zero || word != 0)) return word;
    ++stats_.words_rejected;
  }
}

std::vector<std::uint64_t> FieldSampler::next_vector(bool allow_zero) {
  std::vector<std::uint64_t> out(params_.t);
  for (auto& x : out) x = next(allow_zero);
  return out;
}

SamplerStats FieldSampler::stats() const {
  SamplerStats s = stats_;
  s.permutations = xof_.permutation_count();
  return s;
}

}  // namespace poe::pasta
