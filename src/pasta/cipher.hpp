// The PASTA stream cipher (reference software implementation).
//
// Keystream block generation (paper Fig. 2 / §II-B):
//   state (X_L, X_R) <- key halves
//   for r in 0..R-1:  affine both halves -> Mix -> S-box (Feistel; cube in
//                     the last round)
//   final affine -> Mix -> truncate to X_L
//   ciphertext = message + keystream  (mod p)
//
// All randomness (matrix first rows, round constants) comes from SHAKE128
// seeded with nonce‖block-counter and is *public*; only the key is secret.
// XOF consumption order per affine layer follows the paper's Fig. 3:
// M_L first row, M_R first row, RC_L, RC_R (matrix rows sampled without
// zeros, round constants with zeros allowed).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "modular/modulus.hpp"
#include "pasta/matrix.hpp"
#include "pasta/params.hpp"
#include "pasta/sampler.hpp"

namespace poe::pasta {

using Block = std::vector<std::uint64_t>;

// --- Layer primitives (shared with the hardware model and the HHE server's
// --- homomorphic circuit; operating on one t-element state half).

/// y = M(alpha) * x + rc, streaming matrix rows (O(t) memory).
Block affine(const mod::Modulus& mod, const std::vector<std::uint64_t>& alpha,
             const std::vector<std::uint64_t>& rc, const Block& x);

/// (l, r) <- (2l + r, l + 2r).
void mix(const mod::Modulus& mod, Block& l, Block& r);

/// Feistel S-box: x[j] += x[j-1]^2 (x[0] unchanged).
void sbox_feistel(const mod::Modulus& mod, Block& x);

/// Cube S-box: x[j] = x[j]^3.
void sbox_cube(const mod::Modulus& mod, Block& x);

// --- Public per-block data (known to client and server).

/// Randomness of one affine layer: matrix first rows and round constants.
struct AffineLayerData {
  std::vector<std::uint64_t> alpha_l, alpha_r;  ///< matrix first rows
  std::vector<std::uint64_t> rc_l, rc_r;        ///< round constants
};

/// All public randomness of one keystream block.
struct BlockRandomness {
  std::vector<AffineLayerData> layers;  ///< rounds + 1 entries
  SamplerStats stats;
};

/// Derive the public randomness for block `counter` under `nonce` — used by
/// the HHE server to build the homomorphic decryption circuit.
BlockRandomness derive_block_randomness(const PastaParams& params,
                                        std::uint64_t nonce,
                                        std::uint64_t counter);

// --- The cipher.

class PastaCipher {
 public:
  /// key must contain 2t elements of [0, p).
  PastaCipher(const PastaParams& params, std::vector<std::uint64_t> key);

  /// Uniform random key for tests/examples (not XOF-derived).
  static std::vector<std::uint64_t> random_key(const PastaParams& params,
                                               Xoshiro256& rng);

  /// Generate one t-element keystream block; optionally report XOF stats.
  Block keystream(std::uint64_t nonce, std::uint64_t counter,
                  SamplerStats* stats = nullptr) const;

  /// Encrypt/decrypt a message of arbitrary length (elements of [0, p));
  /// block i uses counter = i.
  std::vector<std::uint64_t> encrypt(std::span<const std::uint64_t> msg,
                                     std::uint64_t nonce) const;
  std::vector<std::uint64_t> decrypt(std::span<const std::uint64_t> ct,
                                     std::uint64_t nonce) const;

  const PastaParams& params() const { return params_; }
  const std::vector<std::uint64_t>& key() const { return key_; }
  const mod::Modulus& modulus() const { return mod_; }

 private:
  std::vector<std::uint64_t> add_keystream(std::span<const std::uint64_t> in,
                                           std::uint64_t nonce,
                                           bool subtract) const;

  PastaParams params_;
  mod::Modulus mod_;
  std::vector<std::uint64_t> key_;
};

/// Ciphertext size in bytes when serialised at ceil(log2 p) bits per element
/// (the communication model of §V).
std::uint64_t ciphertext_bytes(const PastaParams& params,
                               std::size_t num_elements);

}  // namespace poe::pasta
