// PASTA instantiation parameters.
//
// PASTA-3: t = 128 (state 2t = 256), 3 S-box rounds, 4 affine layers.
// PASTA-4: t =  32 (state 2t =  64), 4 S-box rounds, 5 affine layers.
// The field prime p can be 17–60 bits; the paper evaluates Mersenne/Fermat
// structured primes (ω = 17, 33, 54 bits on FPGA; 17/33/54 on ASIC).
//
// Note (§II-B of the paper vs its own §I-A/Table II): the paper's background
// section once states "for PASTA-3, 2t = 128"; the PASTA specification and
// the rest of the paper use t = 128. We follow t = 128.
#pragma once

#include <cstdint>
#include <string>

#include "common/bits.hpp"

namespace poe::pasta {

struct PastaParams {
  std::size_t t = 0;        ///< block size (elements per keystream block)
  std::size_t rounds = 0;   ///< number of S-box rounds (3 or 4)
  std::uint64_t p = 0;      ///< field prime
  std::string name;

  std::size_t state_size() const { return 2 * t; }
  std::size_t key_size() const { return 2 * t; }
  std::size_t affine_layers() const { return rounds + 1; }
  /// Field elements drawn from the XOF per block:
  /// affine_layers * (2 matrix rows + 2 round constants) * t.
  std::size_t xof_elements_per_block() const {
    return affine_layers() * 4 * t;
  }
  unsigned prime_bits() const { return bit_width_u64(p); }
  /// Rejection-sampling mask (2^ceil(log2 p) - 1), as in the PASTA reference.
  std::uint64_t sample_mask() const {
    return (std::uint64_t{1} << ceil_log2(p)) - 1;
  }
  /// Expected XOF words needed per accepted field element.
  double expected_words_per_element() const {
    return static_cast<double>(sample_mask() + 1) / static_cast<double>(p);
  }
};

/// Field primes evaluated in the paper (ω = bit width). The 17-bit prime is
/// the Fermat prime 2^16+1 used for headline numbers; 33/60-bit values are
/// the PASTA reference moduli; the 54-bit one is found deterministically.
/// All are ≡ 1 (mod 2^17), keeping them NTT/batching-friendly for BGV.
std::uint64_t pasta_prime(unsigned omega_bits);

inline constexpr std::uint64_t kPrime17 = 65537;  // 2^16 + 1

/// PASTA-3 with t = 128, 3 rounds over prime p.
PastaParams pasta3(std::uint64_t p = kPrime17);
/// PASTA-4 with t = 32, 4 rounds over prime p.
PastaParams pasta4(std::uint64_t p = kPrime17);

}  // namespace poe::pasta
