#include "pasta/matrix.hpp"

#include "common/error.hpp"

namespace poe::pasta {

RowStream::RowStream(const mod::Modulus& mod, std::vector<std::uint64_t> alpha)
    : mod_(mod), alpha_(std::move(alpha)), row_(alpha_) {
  POE_ENSURE(!alpha_.empty(), "empty matrix row");
}

const std::vector<std::uint64_t>& RowStream::next_row() {
  if (first_) {
    first_ = false;
    return row_;  // row 0 is alpha itself
  }
  const std::size_t t = alpha_.size();
  const std::uint64_t last = row_[t - 1];
  std::uint64_t prev = row_[0];
  row_[0] = mod_.mul(last, alpha_[0]);
  for (std::size_t j = 1; j < t; ++j) {
    std::uint64_t cur = row_[j];
    row_[j] = mod_.mac(last, alpha_[j], prev);
    prev = cur;
  }
  return row_;
}

Matrix sequential_matrix(const mod::Modulus& mod,
                         const std::vector<std::uint64_t>& alpha) {
  const std::size_t t = alpha.size();
  Matrix m(t, t);
  RowStream stream(mod, alpha);
  for (std::size_t r = 0; r < t; ++r) {
    const auto& row = stream.next_row();
    for (std::size_t c = 0; c < t; ++c) m.at(r, c) = row[c];
  }
  return m;
}

std::vector<std::uint64_t> mat_vec(const mod::Modulus& mod, const Matrix& m,
                                   const std::vector<std::uint64_t>& x) {
  POE_ENSURE(m.cols == x.size(), "matrix/vector size mismatch");
  std::vector<std::uint64_t> y(m.rows, 0);
  for (std::size_t r = 0; r < m.rows; ++r) {
    mod::u128 acc = 0;
    for (std::size_t c = 0; c < m.cols; ++c) {
      acc += static_cast<mod::u128>(m.at(r, c)) * x[c];
      // Partial reduction every few terms keeps the accumulator in range:
      // with p < 2^62, 4 products fit comfortably in 128 bits.
      if ((c & 3) == 3) acc %= mod.value();
    }
    y[r] = mod.reduce128(acc);
  }
  return y;
}

bool is_invertible(const mod::Modulus& mod, Matrix m) {
  POE_ENSURE(m.rows == m.cols, "invertibility needs a square matrix");
  const std::size_t n = m.rows;
  for (std::size_t col = 0; col < n; ++col) {
    // Find pivot.
    std::size_t pivot = col;
    while (pivot < n && m.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(m.at(pivot, c), m.at(col, c));
    }
    const std::uint64_t inv = mod.inv(m.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (m.at(r, col) == 0) continue;
      const std::uint64_t factor = mod.mul(m.at(r, col), inv);
      for (std::size_t c = col; c < n; ++c) {
        m.at(r, c) = mod.sub(m.at(r, c), mod.mul(factor, m.at(col, c)));
      }
    }
  }
  return true;
}

}  // namespace poe::pasta
