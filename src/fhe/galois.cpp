#include "fhe/galois.hpp"

#include <unordered_map>

#include "common/error.hpp"
#include "modular/primes.hpp"

namespace poe::fhe {

SlotLayout::SlotLayout(std::size_t n, std::uint64_t t) : n_(n) {
  POE_ENSURE((t - 1) % (2 * n) == 0, "t must be ≡ 1 (mod 2n)");
  // Decode the monomial X: slot i holds psi^{e_i}. Recover e_i by discrete
  // log against a table of psi powers.
  BatchEncoder encoder(n, t);
  Plaintext x;
  x.coeffs.assign(n, 0);
  x.coeffs[1] = 1;
  const auto slot_values = encoder.decode(x);

  const mod::Modulus mt(t);
  const std::uint64_t psi = mod::root_of_unity(t, 2 * n);
  std::unordered_map<std::uint64_t, std::uint64_t> dlog;
  std::uint64_t pw = 1;
  for (std::uint64_t e = 0; e < 2 * n; ++e) {
    dlog.emplace(pw, e);
    pw = mt.mul(pw, psi);
  }
  // exponent -> slot index
  std::vector<std::size_t> slot_of_exponent(2 * n, SIZE_MAX);
  for (std::size_t i = 0; i < n; ++i) {
    const auto it = dlog.find(slot_values[i]);
    POE_ENSURE(it != dlog.end(), "slot value is not a root power");
    POE_ENSURE((it->second & 1) == 1, "slot exponent must be odd");
    slot_of_exponent[it->second] = i;
  }

  // Orbit coordinates: (row 0, col j) -> exponent 3^j; (row 1, col j) ->
  // exponent -3^j (mod 2n).
  const std::size_t cols = n / 2;
  slot_of_logical_.assign(2 * cols, SIZE_MAX);
  std::uint64_t e = 1;
  for (std::size_t j = 0; j < cols; ++j) {
    const std::uint64_t neg = 2 * n - e;
    POE_ENSURE(slot_of_exponent[e] != SIZE_MAX, "missing exponent");
    POE_ENSURE(slot_of_exponent[neg] != SIZE_MAX, "missing exponent");
    slot_of_logical_[j] = slot_of_exponent[e];
    slot_of_logical_[cols + j] = slot_of_exponent[neg];
    e = (e * 3) % (2 * n);
  }
  POE_ENSURE(e == 1, "3 does not have order n/2 mod 2n");
}

std::size_t SlotLayout::slot_index(std::size_t row, std::size_t col) const {
  POE_ENSURE(row < 2 && col < cols(), "logical position out of range");
  return slot_of_logical_[row * cols() + col];
}

std::vector<std::uint64_t> SlotLayout::to_slots(
    const std::vector<std::uint64_t>& logical) const {
  POE_ENSURE(logical.size() <= n_, "too many values");
  std::vector<std::uint64_t> slots(n_, 0);
  for (std::size_t i = 0; i < logical.size(); ++i) {
    slots[slot_of_logical_[i]] = logical[i];
  }
  return slots;
}

std::vector<std::uint64_t> SlotLayout::from_slots(
    const std::vector<std::uint64_t>& slots) const {
  POE_ENSURE(slots.size() == n_, "slot vector size mismatch");
  std::vector<std::uint64_t> logical(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    logical[i] = slots[slot_of_logical_[i]];
  }
  return logical;
}

std::vector<std::uint64_t> SlotLayout::rotate_columns(
    const std::vector<std::uint64_t>& logical, long step) const {
  POE_ENSURE(logical.size() == n_, "logical vector size mismatch");
  const long c = static_cast<long>(cols());
  const long s = ((step % c) + c) % c;
  std::vector<std::uint64_t> out(n_);
  for (std::size_t row = 0; row < 2; ++row) {
    for (long j = 0; j < c; ++j) {
      out[row * cols() + j] = logical[row * cols() + ((j + s) % c)];
    }
  }
  return out;
}

std::vector<std::uint64_t> SlotLayout::swap_rows(
    const std::vector<std::uint64_t>& logical) const {
  POE_ENSURE(logical.size() == n_, "logical vector size mismatch");
  std::vector<std::uint64_t> out(n_);
  for (std::size_t col = 0; col < cols(); ++col) {
    out[col] = logical[cols() + col];
    out[cols() + col] = logical[col];
  }
  return out;
}

std::uint64_t SlotLayout::galois_element(long step) const {
  return galois_elt_for_step(n_, step);
}

}  // namespace poe::fhe
