// Negacyclic number-theoretic transform over Z_q[X]/(X^n + 1).
//
// Standard Longa–Naehrig formulation: the forward transform folds the
// twisting by psi (a primitive 2n-th root of unity) into the butterflies, so
// pointwise multiplication of two transformed polynomials corresponds to
// multiplication modulo X^n + 1.
//
// This class owns the twiddle tables; the butterfly loops themselves live in
// src/kernels/ behind poe::kernels::Backend (scalar reference + SIMD). The
// overloads taking a Backend are what RnsPoly uses — the ExecContext picked
// the backend once at construction; the no-argument overloads run on the
// process-wide kernels::default_backend() for standalone callers
// (BatchEncoder, tests, diagnostics).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/backend.hpp"
#include "modular/modulus.hpp"

namespace poe::fhe {

class Ntt {
 public:
  /// q must be prime with 2n | q-1; n a power of two.
  Ntt(std::uint64_t q, std::size_t n);

  void forward(std::span<std::uint64_t> a) const;
  void inverse(std::span<std::uint64_t> a) const;
  void forward(std::span<std::uint64_t> a, const kernels::Backend& b) const;
  void inverse(std::span<std::uint64_t> a, const kernels::Backend& b) const;

  /// Non-owning view of the twiddle tables in the form the kernel layer
  /// consumes. Valid only while this Ntt is alive and unmoved.
  kernels::NttTables tables() const;

  std::size_t n() const { return n_; }
  const mod::Modulus& modulus() const { return mod_; }

  /// Negacyclic convolution via NTT (test/diagnostic convenience).
  std::vector<std::uint64_t> multiply(std::span<const std::uint64_t> a,
                                      std::span<const std::uint64_t> b) const;

 private:
  mod::Modulus mod_;
  std::size_t n_;
  unsigned log_n_;
  std::vector<std::uint64_t> psi_;      ///< psi^brv(i), bit-reversed order
  std::vector<std::uint64_t> psi_inv_;  ///< psi^-brv(i)
  // Shoup precomputation (floor(w * 2^64 / q) per twiddle): turns the
  // butterfly's modular multiplication into one mulhi + one mullo + a
  // conditional subtract — the standard software-NTT optimisation.
  std::vector<std::uint64_t> psi_shoup_;
  std::vector<std::uint64_t> psi_inv_shoup_;
  std::uint64_t n_inv_;
  std::uint64_t n_inv_shoup_;
};

}  // namespace poe::fhe
