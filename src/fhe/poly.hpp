// Polynomials in RNS representation over R_q = Z_q[X]/(X^n + 1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "fhe/context.hpp"

namespace poe::fhe {

/// One element of R_q at a given level, stored per-prime. `ntt_form`
/// distinguishes evaluation representation (pointwise multiplication) from
/// coefficient representation.
class RnsPoly {
 public:
  RnsPoly() = default;
  RnsPoly(const RnsContext* ctx, std::size_t level, bool ntt_form);

  const RnsContext* context() const { return ctx_; }
  std::size_t level() const { return level_; }
  bool is_ntt() const { return ntt_form_; }

  std::span<std::uint64_t> rns(std::size_t i) { return comps_[i]; }
  std::span<const std::uint64_t> rns(std::size_t i) const { return comps_[i]; }

  void to_ntt();
  void from_ntt();

  RnsPoly& add_inplace(const RnsPoly& o);
  RnsPoly& sub_inplace(const RnsPoly& o);
  RnsPoly& negate_inplace();
  /// Pointwise product; both operands must be in NTT form.
  RnsPoly& mul_inplace(const RnsPoly& o);
  /// Multiply by an integer scalar (given mod t as a centered lift).
  RnsPoly& mul_scalar_inplace(std::uint64_t scalar_mod_t);

  /// Drop the last RNS component (used by modulus switching after the
  /// correction has been applied).
  void drop_last_component();

  /// Galois automorphism X -> X^g (g odd, coefficient form): coefficient i
  /// moves to i*g mod 2n with a sign flip when it wraps past n.
  RnsPoly apply_automorphism(std::uint64_t g) const;

  /// m -> centered lift of (coeffs mod t) into every RNS component.
  static RnsPoly from_plaintext(const RnsContext* ctx, std::size_t level,
                                std::span<const std::uint64_t> coeffs_mod_t,
                                bool to_ntt_form);

  /// Uniform element of R_q (per-prime uniform == CRT uniform).
  static RnsPoly sample_uniform(const RnsContext* ctx, std::size_t level,
                                Xoshiro256& rng, bool ntt_form);
  /// Ternary {-1, 0, 1} secret / encryption randomness.
  static RnsPoly sample_ternary(const RnsContext* ctx, std::size_t level,
                                Xoshiro256& rng);
  /// Centered binomial eta=2 noise (sigma ~ 1; stands in for a discrete
  /// Gaussian of comparable width).
  static RnsPoly sample_noise(const RnsContext* ctx, std::size_t level,
                              Xoshiro256& rng);

  /// Lift a small signed polynomial (given per-coefficient) to RNS.
  static RnsPoly from_signed_coeffs(const RnsContext* ctx, std::size_t level,
                                    std::span<const std::int64_t> coeffs);

 private:
  void check_compatible(const RnsPoly& o) const;

  const RnsContext* ctx_ = nullptr;
  std::size_t level_ = 0;
  bool ntt_form_ = false;
  std::vector<std::vector<std::uint64_t>> comps_;
};

}  // namespace poe::fhe
