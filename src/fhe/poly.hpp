// Polynomials in RNS representation over R_q = Z_q[X]/(X^n + 1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/pool.hpp"
#include "common/rng.hpp"
#include "fhe/context.hpp"

namespace poe::fhe {

/// One element of R_q at a given level. Storage is ONE contiguous flat slab
/// (level * n words, component i at offset i*n) drawn from the context's
/// BufferPool and returned to it on destruction — a warmed-up circuit
/// evaluation allocates nothing. `ntt_form` distinguishes evaluation
/// representation (pointwise multiplication) from coefficient
/// representation.
class RnsPoly {
 public:
  RnsPoly() = default;
  RnsPoly(const RnsContext* ctx, std::size_t level, bool ntt_form);
  RnsPoly(const RnsPoly& o);
  RnsPoly& operator=(const RnsPoly& o);
  RnsPoly(RnsPoly&&) noexcept = default;
  RnsPoly& operator=(RnsPoly&&) noexcept = default;
  ~RnsPoly() = default;

  const RnsContext* context() const { return ctx_; }
  std::size_t level() const { return level_; }
  bool is_ntt() const { return ntt_form_; }

  /// Span over RNS component i (n coefficients mod q_i).
  std::span<std::uint64_t> rns(std::size_t i) {
    return {buf_.data() + i * ctx_->n(), ctx_->n()};
  }
  std::span<const std::uint64_t> rns(std::size_t i) const {
    return {buf_.data() + i * ctx_->n(), ctx_->n()};
  }

  void to_ntt();
  void from_ntt();

  RnsPoly& add_inplace(const RnsPoly& o);
  RnsPoly& sub_inplace(const RnsPoly& o);
  RnsPoly& negate_inplace();
  /// Pointwise product; both operands must be in NTT form. `o` may live at
  /// a HIGHER level (e.g. top-level key material); only the first level()
  /// components are read.
  RnsPoly& mul_inplace(const RnsPoly& o);
  /// this += a * b pointwise (all NTT form) in a single fused pass — the
  /// key-switching/tensoring accumulation without a temporary. `a` and `b`
  /// may live at higher levels.
  RnsPoly& add_mul_inplace(const RnsPoly& a, const RnsPoly& b);
  /// Multiply by an integer scalar (given mod t as a centered lift).
  RnsPoly& mul_scalar_inplace(std::uint64_t scalar_mod_t);

  /// Drop the last RNS component (used by modulus switching after the
  /// correction has been applied). The slab keeps its size class.
  void drop_last_component();

  /// Galois automorphism X -> X^g (g odd, coefficient form): coefficient i
  /// moves to i*g mod 2n with a sign flip when it wraps past n.
  RnsPoly apply_automorphism(std::uint64_t g) const;

  /// The same automorphism applied directly to NTT (evaluation) form: a pure
  /// slot permutation taken from RnsContext::galois_ntt_perm, so it costs a
  /// gather per component instead of an inverse+forward transform pair.
  RnsPoly apply_automorphism_ntt(std::uint64_t g) const;

  /// m -> centered lift of (coeffs mod t) into every RNS component.
  static RnsPoly from_plaintext(const RnsContext* ctx, std::size_t level,
                                std::span<const std::uint64_t> coeffs_mod_t,
                                bool to_ntt_form);

  /// Uniform element of R_q (per-prime uniform == CRT uniform).
  static RnsPoly sample_uniform(const RnsContext* ctx, std::size_t level,
                                Xoshiro256& rng, bool ntt_form);
  /// Ternary {-1, 0, 1} secret / encryption randomness.
  static RnsPoly sample_ternary(const RnsContext* ctx, std::size_t level,
                                Xoshiro256& rng);
  /// Centered binomial eta=2 noise (sigma ~ 1; stands in for a discrete
  /// Gaussian of comparable width).
  static RnsPoly sample_noise(const RnsContext* ctx, std::size_t level,
                              Xoshiro256& rng);

  /// Lift a small signed polynomial (given per-coefficient) to RNS.
  static RnsPoly from_signed_coeffs(const RnsContext* ctx, std::size_t level,
                                    std::span<const std::int64_t> coeffs);

  /// Slab with UNINITIALISED coefficients — for hot-loop temporaries that
  /// overwrite every word before reading (skips the zeroing memset the
  /// public constructor performs).
  static RnsPoly uninit(const RnsContext* ctx, std::size_t level,
                        bool ntt_form);

  /// Re-point this poly at (ctx, level, ntt_form) with UNINITIALISED
  /// contents, reusing the current slab whenever it is big enough (the
  /// copy-assignment rule). The backbone of per-context rotation scratch:
  /// after one warm-up pass at a level, reshaping at that level or below
  /// touches the pool zero times. Every word must be written before read.
  RnsPoly& reshape_uninit(const RnsContext* ctx, std::size_t level,
                          bool ntt_form);

  /// Zero the active level_ * n words in place (no pool traffic) — turns a
  /// reshaped scratch poly into a fresh accumulator.
  void set_zero();

 private:
  void check_compatible(const RnsPoly& o) const;
  /// Like check_compatible but allows `o` at a higher level (key material
  /// generated at the top of the chain restricts to any level).
  void check_operand(const RnsPoly& o) const;

  const RnsContext* ctx_ = nullptr;
  std::size_t level_ = 0;
  bool ntt_form_ = false;
  PolyBuffer buf_;  ///< flat slab: level_ * n words, component i at i*n
};

}  // namespace poe::fhe
