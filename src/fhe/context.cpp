#include "fhe/context.hpp"

#include <unordered_map>

#include "common/error.hpp"
#include "modular/primes.hpp"

namespace poe::fhe {

RnsContext::RnsContext(std::size_t n, std::uint64_t t,
                       std::vector<std::uint64_t> primes, ExecContext* exec)
    : exec_(exec != nullptr ? exec : &ExecContext::global()),
      n_(n),
      t_(t),
      t_mod_(t),
      primes_(std::move(primes)) {
  POE_ENSURE(!primes_.empty(), "empty RNS basis");
  POE_ENSURE(mod::is_prime(t_), "plaintext modulus must be prime");
  for (std::uint64_t q : primes_) {
    POE_ENSURE(mod::is_prime(q), "RNS modulus " << q << " is not prime");
    POE_ENSURE(q % t_ != 0 && q != t_, "RNS modulus shares a factor with t");
    mods_.emplace_back(q);
    ntts_.push_back(std::make_unique<Ntt>(q, n));
  }
  for (std::size_t i = 0; i < primes_.size(); ++i) {
    for (std::size_t j = i + 1; j < primes_.size(); ++j) {
      POE_ENSURE(primes_[i] != primes_[j], "duplicate RNS prime");
    }
  }

  levels_.resize(primes_.size());
  for (std::size_t lvl = 1; lvl <= primes_.size(); ++lvl) {
    LevelData& d = levels_[lvl - 1];
    d.num_primes = lvl;
    d.q = UBig::product({primes_.begin(),
                         primes_.begin() + static_cast<std::ptrdiff_t>(lvl)});
    d.q_half = d.q;
    d.q_half.shr1();
    d.q_hat.resize(lvl);
    d.q_hat_inv.resize(lvl);
    d.q_tilde.assign(lvl, std::vector<std::uint64_t>(lvl, 0));
    for (std::size_t j = 0; j < lvl; ++j) {
      UBig hat = UBig::one();
      for (std::size_t i = 0; i < lvl; ++i) {
        if (i != j) hat.mul_u64(primes_[i]);
      }
      const std::uint64_t hat_mod_qj = hat.mod_u64(primes_[j]);
      d.q_hat_inv[j] = mods_[j].inv(hat_mod_qj);
      d.q_hat[j] = hat;
      // q_tilde_j = q_hat_j * q_hat_inv_j (an integer < q); its RNS image is
      // (1 at j, 0 elsewhere) but relin keygen needs it mod each q_i, which
      // is exactly that idempotent pattern.
      for (std::size_t i = 0; i < lvl; ++i) {
        d.q_tilde[j][i] = (i == j) ? 1 : 0;
      }
    }
    if (lvl >= 2) {
      const std::uint64_t qlast = primes_[lvl - 1];
      d.qlast_inv.resize(lvl - 1);
      for (std::size_t i = 0; i + 1 < lvl; ++i) {
        d.qlast_inv[i] = mods_[i].inv(qlast % primes_[i]);
      }
    }
    d.t_inv_mod_qlast = mods_[lvl - 1].inv(t_ % primes_[lvl - 1]);
  }
}

const LevelData& RnsContext::level(std::size_t num_active) const {
  POE_ENSURE(num_active >= 1 && num_active <= levels_.size(),
             "invalid level " << num_active);
  return levels_[num_active - 1];
}

void RnsContext::build_exponent_table() const {
  // Forward-transform the monomial X in the first RNS component: slot i then
  // holds psi^{e_i}, the root the butterflies routed there. The exponent map
  // is structural — it depends only on n and the bit-reversed butterfly
  // schedule — so discovering it against prime 0 is valid for every
  // component.
  std::vector<std::uint64_t> x(n_, 0);
  x[1] = 1;
  ntts_[0]->forward(x);
  const mod::Modulus& m = mods_[0];
  const std::uint64_t psi = mod::root_of_unity(primes_[0], 2 * n_);
  std::unordered_map<std::uint64_t, std::uint32_t> dlog;
  dlog.reserve(2 * n_);
  std::uint64_t pw = 1;
  for (std::uint32_t e = 0; e < 2 * n_; ++e) {
    dlog.emplace(pw, e);
    pw = m.mul(pw, psi);
  }
  ntt_exponent_.resize(n_);
  index_of_exponent_.assign(2 * n_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    const auto it = dlog.find(x[i]);
    POE_ENSURE(it != dlog.end() && it->second % 2 == 1,
               "NTT slot value is not an odd power of psi");
    ntt_exponent_[i] = it->second;
    index_of_exponent_[it->second] = static_cast<std::uint32_t>(i);
  }
}

std::span<const std::uint32_t> RnsContext::galois_ntt_perm(
    std::uint64_t g) const {
  const std::uint64_t two_n = 2 * n_;
  g %= two_n;
  POE_ENSURE(g % 2 == 1, "Galois element must be odd: " << g);
  std::lock_guard<std::mutex> lock(perm_mu_);
  const auto it = galois_perms_.find(g);
  if (it != galois_perms_.end()) return it->second;
  if (ntt_exponent_.empty()) build_exponent_table();
  // tau_g maps slot value f(psi^e) to f(psi^{e*g}), so the slot that held
  // exponent e*g before the automorphism supplies slot i after it.
  std::vector<std::uint32_t> perm(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint64_t e = (ntt_exponent_[i] * g) % two_n;
    perm[i] = index_of_exponent_[e];
  }
  // Map nodes are stable and entries immutable once inserted, so the span
  // survives the unlock.
  return galois_perms_.emplace(g, std::move(perm)).first->second;
}

}  // namespace poe::fhe
