#include "fhe/context.hpp"

#include "common/error.hpp"
#include "modular/primes.hpp"

namespace poe::fhe {

RnsContext::RnsContext(std::size_t n, std::uint64_t t,
                       std::vector<std::uint64_t> primes, ExecContext* exec)
    : exec_(exec != nullptr ? exec : &ExecContext::global()),
      n_(n),
      t_(t),
      t_mod_(t),
      primes_(std::move(primes)) {
  POE_ENSURE(!primes_.empty(), "empty RNS basis");
  POE_ENSURE(mod::is_prime(t_), "plaintext modulus must be prime");
  for (std::uint64_t q : primes_) {
    POE_ENSURE(mod::is_prime(q), "RNS modulus " << q << " is not prime");
    POE_ENSURE(q % t_ != 0 && q != t_, "RNS modulus shares a factor with t");
    mods_.emplace_back(q);
    ntts_.push_back(std::make_unique<Ntt>(q, n));
  }
  for (std::size_t i = 0; i < primes_.size(); ++i) {
    for (std::size_t j = i + 1; j < primes_.size(); ++j) {
      POE_ENSURE(primes_[i] != primes_[j], "duplicate RNS prime");
    }
  }

  levels_.resize(primes_.size());
  for (std::size_t lvl = 1; lvl <= primes_.size(); ++lvl) {
    LevelData& d = levels_[lvl - 1];
    d.num_primes = lvl;
    d.q = UBig::product({primes_.begin(),
                         primes_.begin() + static_cast<std::ptrdiff_t>(lvl)});
    d.q_half = d.q;
    d.q_half.shr1();
    d.q_hat.resize(lvl);
    d.q_hat_inv.resize(lvl);
    d.q_tilde.assign(lvl, std::vector<std::uint64_t>(lvl, 0));
    for (std::size_t j = 0; j < lvl; ++j) {
      UBig hat = UBig::one();
      for (std::size_t i = 0; i < lvl; ++i) {
        if (i != j) hat.mul_u64(primes_[i]);
      }
      const std::uint64_t hat_mod_qj = hat.mod_u64(primes_[j]);
      d.q_hat_inv[j] = mods_[j].inv(hat_mod_qj);
      d.q_hat[j] = hat;
      // q_tilde_j = q_hat_j * q_hat_inv_j (an integer < q); its RNS image is
      // (1 at j, 0 elsewhere) but relin keygen needs it mod each q_i, which
      // is exactly that idempotent pattern.
      for (std::size_t i = 0; i < lvl; ++i) {
        d.q_tilde[j][i] = (i == j) ? 1 : 0;
      }
    }
    if (lvl >= 2) {
      const std::uint64_t qlast = primes_[lvl - 1];
      d.qlast_inv.resize(lvl - 1);
      for (std::size_t i = 0; i + 1 < lvl; ++i) {
        d.qlast_inv[i] = mods_[i].inv(qlast % primes_[i]);
      }
    }
    d.t_inv_mod_qlast = mods_[lvl - 1].inv(t_ % primes_[lvl - 1]);
  }
}

const LevelData& RnsContext::level(std::size_t num_active) const {
  POE_ENSURE(num_active >= 1 && num_active <= levels_.size(),
             "invalid level " << num_active);
  return levels_[num_active - 1];
}

}  // namespace poe::fhe
