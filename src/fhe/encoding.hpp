// Batching encoder: packs n integers mod t into the n CRT slots of
// R_t = Z_t[X]/(X^n + 1), available because t = 65537 ≡ 1 (mod 2n) for
// n <= 2^15. Slot-wise, homomorphic add/mul act componentwise (SIMD).
#pragma once

#include <cstdint>
#include <vector>

#include "common/exec_context.hpp"
#include "fhe/bgv.hpp"
#include "fhe/ntt.hpp"

namespace poe::fhe {

class BatchEncoder {
 public:
  /// Encodes report to `exec`'s op counters; nullptr means the process-wide
  /// ExecContext::global().
  BatchEncoder(std::size_t n, std::uint64_t t, ExecContext* exec = nullptr);

  std::size_t slot_count() const { return ntt_.n(); }

  /// values (mod t, up to n of them; the rest zero-filled) -> plaintext.
  Plaintext encode(const std::vector<std::uint64_t>& values) const;
  std::vector<std::uint64_t> decode(const Plaintext& pt) const;

 private:
  ExecContext* exec_;
  Ntt ntt_;
};

}  // namespace poe::fhe
