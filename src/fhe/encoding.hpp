// Batching encoder: packs n integers mod t into the n CRT slots of
// R_t = Z_t[X]/(X^n + 1), available because t = 65537 ≡ 1 (mod 2n) for
// n <= 2^15. Slot-wise, homomorphic add/mul act componentwise (SIMD).
#pragma once

#include <cstdint>
#include <vector>

#include "fhe/bgv.hpp"
#include "fhe/ntt.hpp"

namespace poe::fhe {

class BatchEncoder {
 public:
  BatchEncoder(std::size_t n, std::uint64_t t);

  std::size_t slot_count() const { return ntt_.n(); }

  /// values (mod t, up to n of them; the rest zero-filled) -> plaintext.
  Plaintext encode(const std::vector<std::uint64_t>& values) const;
  std::vector<std::uint64_t> decode(const Plaintext& pt) const;

 private:
  Ntt ntt_;
};

}  // namespace poe::fhe
