#include "fhe/serialize.hpp"

#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace poe::fhe {

namespace {

constexpr std::uint32_t kMagic = 0x42475631;  // "BGV1"

// Append `bits` low bits of `value` to the stream.
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void write(std::uint64_t value, unsigned bits) {
    for (unsigned b = 0; b < bits; ++b) {
      if (bit_pos_ % 8 == 0) out_.push_back(0);
      if ((value >> b) & 1) {
        out_[bit_pos_ / 8] |= static_cast<std::uint8_t>(1u << (bit_pos_ % 8));
      }
      ++bit_pos_;
    }
  }

  void align_byte() { bit_pos_ = (bit_pos_ + 7) & ~std::size_t{7}; }

 private:
  std::vector<std::uint8_t>& out_;
  std::size_t bit_pos_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> in) : in_(in) {}

  std::uint64_t read(unsigned bits) {
    std::uint64_t value = 0;
    for (unsigned b = 0; b < bits; ++b) {
      POE_ENSURE(bit_pos_ / 8 < in_.size(), "truncated ciphertext stream");
      if ((in_[bit_pos_ / 8] >> (bit_pos_ % 8)) & 1) {
        value |= std::uint64_t{1} << b;
      }
      ++bit_pos_;
    }
    return value;
  }

  void align_byte() { bit_pos_ = (bit_pos_ + 7) & ~std::size_t{7}; }

 private:
  std::span<const std::uint8_t> in_;
  std::size_t bit_pos_ = 0;
};

}  // namespace

std::uint64_t ciphertext_wire_bytes(const RnsContext& ctx, std::size_t level,
                                    std::size_t parts) {
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < level; ++i) {
    bits += ceil_div(static_cast<std::uint64_t>(ctx.n()) *
                         bit_width_u64(ctx.prime(i)),
                     8) *
            8;  // each component is byte-aligned
  }
  return 16 + parts * bits / 8;  // 16-byte header
}

std::optional<std::string> validate_ciphertext(const RnsContext& ctx,
                                               const Ciphertext& ct) {
  std::ostringstream os;
  if (ct.size() < 2 || ct.size() > 3) {
    os << "bad part count " << ct.size();
    return os.str();
  }
  if (ct.level < 1 || ct.level > ctx.num_primes()) {
    os << "level " << ct.level << " outside chain of "
       << ctx.num_primes();
    return os.str();
  }
  for (std::size_t p = 0; p < ct.size(); ++p) {
    const RnsPoly& part = ct.parts[p];
    if (part.context() != &ctx) {
      os << "part " << p << " bound to a different context";
      return os.str();
    }
    if (!part.is_ntt()) {
      os << "part " << p << " not in NTT form";
      return os.str();
    }
    if (part.level() < ct.level) {
      os << "part " << p << " at level " << part.level()
         << " below ciphertext level " << ct.level;
      return os.str();
    }
    for (std::size_t i = 0; i < ct.level; ++i) {
      const std::uint64_t q = ctx.prime(i);
      for (const std::uint64_t c : part.rns(i)) {
        if (c >= q) {
          os << "part " << p << " component " << i
             << " coefficient out of range (" << c << " >= " << q << ")";
          return os.str();
        }
      }
    }
  }
  // The serialized form must have a sane, exactly-determined size — the
  // same arithmetic a wire ingest path would use to pre-check an upload.
  const std::uint64_t wire = ciphertext_wire_bytes(ctx, ct.level, ct.size());
  if (wire < 16) return std::string("implausible wire size");
  return std::nullopt;
}

std::vector<std::uint8_t> serialize_ciphertext(const RnsContext& ctx,
                                               const Ciphertext& ct) {
  POE_ENSURE(ct.size() >= 2 && ct.level >= 1, "malformed ciphertext");
  std::vector<std::uint8_t> out;
  BitWriter w(out);
  w.write(kMagic, 32);
  w.write(ctx.n(), 32);
  w.write(ct.level, 32);
  w.write(ct.size(), 32);
  for (const auto& part : ct.parts) {
    POE_ENSURE(part.is_ntt(), "serialisation expects NTT form");
    for (std::size_t i = 0; i < ct.level; ++i) {
      const unsigned bits = bit_width_u64(ctx.prime(i));
      for (const std::uint64_t c : part.rns(i)) w.write(c, bits);
      w.align_byte();
    }
  }
  return out;
}

Ciphertext deserialize_ciphertext(const RnsContext& ctx,
                                  std::span<const std::uint8_t> bytes) {
  BitReader r(bytes);
  POE_ENSURE(r.read(32) == kMagic, "bad ciphertext magic");
  POE_ENSURE(r.read(32) == ctx.n(), "ring size mismatch");
  const std::size_t level = r.read(32);
  POE_ENSURE(level >= 1 && level <= ctx.num_primes(), "bad level");
  const std::size_t parts = r.read(32);
  POE_ENSURE(parts >= 2 && parts <= 3, "bad part count");

  Ciphertext ct;
  ct.level = level;
  for (std::size_t p = 0; p < parts; ++p) {
    RnsPoly poly(&ctx, level, /*ntt_form=*/true);
    for (std::size_t i = 0; i < level; ++i) {
      const unsigned bits = bit_width_u64(ctx.prime(i));
      auto comp = poly.rns(i);
      for (auto& c : comp) {
        c = r.read(bits);
        POE_ENSURE(c < ctx.prime(i), "coefficient out of range");
      }
      r.align_byte();
    }
    ct.parts.push_back(std::move(poly));
  }
  // The wire format does not carry a noise bound; re-seed the tracked bound
  // with the fresh-encryption estimate (uploads — the serving use of this
  // path — are always fresh). A re-ingested server RESULT would carry more
  // noise than this; such ciphertexts are decrypted client-side, never fed
  // back into the scheduler.
  ct.noise_bits = std::log2(static_cast<double>(ctx.t())) + std::log2(3.0) +
                  std::log2(static_cast<double>(ctx.n())) + 2.0;
  return ct;
}

}  // namespace poe::fhe
