#include "fhe/ntt.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"
#include "modular/primes.hpp"

namespace poe::fhe {

namespace {
std::uint64_t bit_reverse(std::uint64_t x, unsigned bits) {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < bits; ++i) {
    out = (out << 1) | ((x >> i) & 1);
  }
  return out;
}
}  // namespace

Ntt::Ntt(std::uint64_t q, std::size_t n) : mod_(q), n_(n) {
  POE_ENSURE(n >= 2 && (n & (n - 1)) == 0, "n must be a power of two: " << n);
  POE_ENSURE((q - 1) % (2 * n) == 0, "q-1 must be divisible by 2n");
  log_n_ = ceil_log2(n);

  const std::uint64_t psi = mod::root_of_unity(q, 2 * n);
  const std::uint64_t psi_inv = mod_.inv(psi);
  psi_.resize(n);
  psi_inv_.resize(n);
  psi_shoup_.resize(n);
  psi_inv_shoup_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t e = bit_reverse(i, log_n_);
    psi_[i] = mod_.pow(psi, e);
    psi_inv_[i] = mod_.pow(psi_inv, e);
    psi_shoup_[i] = kernels::shoup_precompute(psi_[i], q);
    psi_inv_shoup_[i] = kernels::shoup_precompute(psi_inv_[i], q);
  }
  n_inv_ = mod_.inv(n);
  n_inv_shoup_ = kernels::shoup_precompute(n_inv_, q);
}

kernels::NttTables Ntt::tables() const {
  kernels::NttTables t;
  t.n = n_;
  t.q = mod_.value();
  t.psi = psi_.data();
  t.psi_shoup = psi_shoup_.data();
  t.psi_inv = psi_inv_.data();
  t.psi_inv_shoup = psi_inv_shoup_.data();
  t.n_inv = n_inv_;
  t.n_inv_shoup = n_inv_shoup_;
  return t;
}

void Ntt::forward(std::span<std::uint64_t> a,
                  const kernels::Backend& b) const {
  POE_ENSURE(a.size() == n_, "size mismatch");
  b.ntt_inplace(a.data(), tables());
}

void Ntt::inverse(std::span<std::uint64_t> a,
                  const kernels::Backend& b) const {
  POE_ENSURE(a.size() == n_, "size mismatch");
  b.intt_inplace(a.data(), tables());
}

void Ntt::forward(std::span<std::uint64_t> a) const {
  forward(a, kernels::default_backend());
}

void Ntt::inverse(std::span<std::uint64_t> a) const {
  inverse(a, kernels::default_backend());
}

std::vector<std::uint64_t> Ntt::multiply(
    std::span<const std::uint64_t> a, std::span<const std::uint64_t> b) const {
  POE_ENSURE(a.size() == n_ && b.size() == n_, "size mismatch");
  std::vector<std::uint64_t> fa(a.begin(), a.end());
  std::vector<std::uint64_t> fb(b.begin(), b.end());
  forward(fa);
  forward(fb);
  for (std::size_t i = 0; i < n_; ++i) fa[i] = mod_.mul(fa[i], fb[i]);
  inverse(fa);
  return fa;
}

}  // namespace poe::fhe
