#include "fhe/ntt.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"
#include "modular/primes.hpp"

namespace poe::fhe {

namespace {
std::uint64_t bit_reverse(std::uint64_t x, unsigned bits) {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < bits; ++i) {
    out = (out << 1) | ((x >> i) & 1);
  }
  return out;
}

std::uint64_t shoup_precompute(std::uint64_t w, std::uint64_t q) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(w) << 64) / q);
}

// Lazy Shoup multiplication: r ≡ x * w (mod q) with r < 2q, for any x and
// precomputed w' = floor(w 2^64 / q). Skipping the final conditional
// subtract (Harvey's trick) shortens the butterfly's dependency chain; the
// transform keeps coefficients in [0, 4q) and reduces once at the end.
inline std::uint64_t mul_shoup_lazy(std::uint64_t x, std::uint64_t w,
                                    std::uint64_t w_shoup, std::uint64_t q) {
  const std::uint64_t hi = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(x) * w_shoup) >> 64);
  return x * w - hi * q;
}
}  // namespace

Ntt::Ntt(std::uint64_t q, std::size_t n) : mod_(q), n_(n) {
  POE_ENSURE(n >= 2 && (n & (n - 1)) == 0, "n must be a power of two: " << n);
  POE_ENSURE((q - 1) % (2 * n) == 0, "q-1 must be divisible by 2n");
  log_n_ = ceil_log2(n);

  const std::uint64_t psi = mod::root_of_unity(q, 2 * n);
  const std::uint64_t psi_inv = mod_.inv(psi);
  psi_.resize(n);
  psi_inv_.resize(n);
  psi_shoup_.resize(n);
  psi_inv_shoup_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t e = bit_reverse(i, log_n_);
    psi_[i] = mod_.pow(psi, e);
    psi_inv_[i] = mod_.pow(psi_inv, e);
    psi_shoup_[i] = shoup_precompute(psi_[i], q);
    psi_inv_shoup_[i] = shoup_precompute(psi_inv_[i], q);
  }
  n_inv_ = mod_.inv(n);
  n_inv_shoup_ = shoup_precompute(n_inv_, q);
}

void Ntt::forward(std::span<std::uint64_t> a) const {
  POE_ENSURE(a.size() == n_, "size mismatch");
  // Harvey lazy butterflies: coefficients ride in [0, 4q) (q < 2^62, so no
  // overflow), with one reduction sweep at the end instead of two
  // conditional corrections per butterfly.
  const std::uint64_t q = mod_.value();
  const std::uint64_t two_q = 2 * q;
  std::uint64_t* __restrict x = a.data();
  const std::uint64_t* __restrict w = psi_.data();
  const std::uint64_t* __restrict ws = psi_shoup_.data();
  std::size_t t = n_;
  for (std::size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j1 = 2 * i * t;
      const std::uint64_t s = w[m + i];
      const std::uint64_t s_shoup = ws[m + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        std::uint64_t u = x[j];
        if (u >= two_q) u -= two_q;  // < 2q
        const std::uint64_t v = mul_shoup_lazy(x[j + t], s, s_shoup, q);
        x[j] = u + v;                // < 4q
        x[j + t] = u - v + two_q;    // < 4q
      }
    }
  }
  for (std::size_t j = 0; j < n_; ++j) {
    std::uint64_t v = x[j];
    if (v >= two_q) v -= two_q;
    if (v >= q) v -= q;
    x[j] = v;
  }
}

void Ntt::inverse(std::span<std::uint64_t> a) const {
  POE_ENSURE(a.size() == n_, "size mismatch");
  // Lazy Gentleman–Sande butterflies: coefficients stay in [0, 2q); the
  // final n^{-1} scaling pass completes the reduction to [0, q).
  const std::uint64_t q = mod_.value();
  const std::uint64_t two_q = 2 * q;
  std::uint64_t* __restrict x = a.data();
  const std::uint64_t* __restrict w = psi_inv_.data();
  const std::uint64_t* __restrict ws = psi_inv_shoup_.data();
  std::size_t t = 1;
  for (std::size_t m = n_; m > 1; m >>= 1) {
    std::size_t j1 = 0;
    const std::size_t h = m >> 1;
    for (std::size_t i = 0; i < h; ++i) {
      const std::uint64_t s = w[h + i];
      const std::uint64_t s_shoup = ws[h + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const std::uint64_t u = x[j];
        const std::uint64_t v = x[j + t];
        const std::uint64_t sum = u + v;  // < 4q
        x[j] = sum >= two_q ? sum - two_q : sum;
        x[j + t] = mul_shoup_lazy(u - v + two_q, s, s_shoup, q);
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  for (std::size_t j = 0; j < n_; ++j) {
    std::uint64_t r = mul_shoup_lazy(x[j], n_inv_, n_inv_shoup_, q);
    if (r >= q) r -= q;
    x[j] = r;
  }
}

std::vector<std::uint64_t> Ntt::multiply(
    std::span<const std::uint64_t> a, std::span<const std::uint64_t> b) const {
  POE_ENSURE(a.size() == n_ && b.size() == n_, "size mismatch");
  std::vector<std::uint64_t> fa(a.begin(), a.end());
  std::vector<std::uint64_t> fb(b.begin(), b.end());
  forward(fa);
  forward(fb);
  for (std::size_t i = 0; i < n_; ++i) fa[i] = mod_.mul(fa[i], fb[i]);
  inverse(fa);
  return fa;
}

}  // namespace poe::fhe
