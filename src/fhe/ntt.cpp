#include "fhe/ntt.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"
#include "modular/primes.hpp"

namespace poe::fhe {

namespace {
std::uint64_t bit_reverse(std::uint64_t x, unsigned bits) {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < bits; ++i) {
    out = (out << 1) | ((x >> i) & 1);
  }
  return out;
}

std::uint64_t shoup_precompute(std::uint64_t w, std::uint64_t q) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(w) << 64) / q);
}

// x * w mod q with precomputed w' = floor(w 2^64 / q); requires q < 2^63.
inline std::uint64_t mul_shoup(std::uint64_t x, std::uint64_t w,
                               std::uint64_t w_shoup, std::uint64_t q) {
  const std::uint64_t hi = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(x) * w_shoup) >> 64);
  std::uint64_t r = x * w - hi * q;
  if (r >= q) r -= q;
  return r;
}
}  // namespace

Ntt::Ntt(std::uint64_t q, std::size_t n) : mod_(q), n_(n) {
  POE_ENSURE(n >= 2 && (n & (n - 1)) == 0, "n must be a power of two: " << n);
  POE_ENSURE((q - 1) % (2 * n) == 0, "q-1 must be divisible by 2n");
  log_n_ = ceil_log2(n);

  const std::uint64_t psi = mod::root_of_unity(q, 2 * n);
  const std::uint64_t psi_inv = mod_.inv(psi);
  psi_.resize(n);
  psi_inv_.resize(n);
  psi_shoup_.resize(n);
  psi_inv_shoup_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t e = bit_reverse(i, log_n_);
    psi_[i] = mod_.pow(psi, e);
    psi_inv_[i] = mod_.pow(psi_inv, e);
    psi_shoup_[i] = shoup_precompute(psi_[i], q);
    psi_inv_shoup_[i] = shoup_precompute(psi_inv_[i], q);
  }
  n_inv_ = mod_.inv(n);
  n_inv_shoup_ = shoup_precompute(n_inv_, q);
}

void Ntt::forward(std::span<std::uint64_t> a) const {
  POE_ENSURE(a.size() == n_, "size mismatch");
  std::size_t t = n_;
  for (std::size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j1 = 2 * i * t;
      const std::uint64_t s = psi_[m + i];
      const std::uint64_t s_shoup = psi_shoup_[m + i];
      const std::uint64_t q = mod_.value();
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const std::uint64_t u = a[j];
        const std::uint64_t v = mul_shoup(a[j + t], s, s_shoup, q);
        a[j] = mod_.add(u, v);
        a[j + t] = mod_.sub(u, v);
      }
    }
  }
}

void Ntt::inverse(std::span<std::uint64_t> a) const {
  POE_ENSURE(a.size() == n_, "size mismatch");
  std::size_t t = 1;
  for (std::size_t m = n_; m > 1; m >>= 1) {
    std::size_t j1 = 0;
    const std::size_t h = m >> 1;
    for (std::size_t i = 0; i < h; ++i) {
      const std::uint64_t s = psi_inv_[h + i];
      const std::uint64_t s_shoup = psi_inv_shoup_[h + i];
      const std::uint64_t q = mod_.value();
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const std::uint64_t u = a[j];
        const std::uint64_t v = a[j + t];
        a[j] = mod_.add(u, v);
        a[j + t] = mul_shoup(mod_.sub(u, v), s, s_shoup, q);
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  const std::uint64_t q = mod_.value();
  for (auto& x : a) x = mul_shoup(x, n_inv_, n_inv_shoup_, q);
}

std::vector<std::uint64_t> Ntt::multiply(
    std::span<const std::uint64_t> a, std::span<const std::uint64_t> b) const {
  POE_ENSURE(a.size() == n_ && b.size() == n_, "size mismatch");
  std::vector<std::uint64_t> fa(a.begin(), a.end());
  std::vector<std::uint64_t> fb(b.begin(), b.end());
  forward(fa);
  forward(fb);
  for (std::size_t i = 0; i < n_; ++i) fa[i] = mod_.mul(fa[i], fb[i]);
  inverse(fa);
  return fa;
}

}  // namespace poe::fhe
