// Circuit-profile-driven BGV parameter right-sizing.
//
// The pipeline has three stages:
//
//   1. RECORD. A dry run of the transcipher circuit under any working
//      parameter set appends one TapeNode per noise-relevant operation to a
//      NoiseTape (Bgv::begin_recording). The tape is an SSA-style flattened
//      DAG — node ids are operand references — and is deliberately
//      PARAMETER-INDEPENDENT: modulus switches are never recorded (the
//      replay schedules its own) and no node carries n, t, prime counts or
//      digit sizes. Together with the ExecContext counter delta this forms
//      a CircuitProfile.
//
//   2. REPLAY. simulate() re-evaluates the tape's NoiseEstimator bounds
//      under a *candidate* BgvParams, applying the same greedy
//      drop-as-early-as-the-bound-allows policy Bgv::auto_switch_inplace
//      uses live, and reports the worst budget seen anywhere plus a
//      relative work estimate (limb-weighted op costs).
//
//   3. SEARCH. search_params() sweeps (n, num_primes, prime_bits,
//      relin_digit_bits) under a security ceiling on log2(q) (HE-standard
//      style table checked in below), keeps candidates whose replayed
//      budget clears the requested band, and returns the cheapest by the
//      work model. The chosen configs are pasted into protocol.cpp and a
//      fixed-point test re-derives them so they cannot drift.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/exec_context.hpp"
#include "fhe/bgv.hpp"

namespace poe::fhe {

/// Operation kinds mirrored by the noise replay. kFusedAffine covers the
/// servers' raw-slab diagonal loops (terms plaintext-times-rotation
/// products accumulated into one ciphertext); kIngest is the cross-domain
/// key switch.
enum class NoiseOp : std::uint8_t {
  kFresh,
  kAdd,
  kAddPlain,
  kAddScalar,
  kMulScalar,
  kMulPlain,
  kMultiply,
  kRelinearize,
  kRotate,
  kIngest,
  kFusedAffine,
};

struct TapeNode {
  NoiseOp op = NoiseOp::kFresh;
  std::int32_t a = -1;      ///< first operand node id (-1 = none)
  std::int32_t b = -1;      ///< second operand node id (-1 = none)
  std::uint64_t scalar = 0; ///< kMulScalar: the scalar (mod t)
  std::uint32_t terms = 0;  ///< kFusedAffine: accumulated diagonal count
};

/// Append-only op recorder. Thread-safe: the servers evaluate rows in
/// parallel_for, so concurrent appends take a mutex (recording is a dry-run
/// diagnostic mode, never the serving hot path).
class NoiseTape {
 public:
  std::int32_t append(const TapeNode& node) {
    std::lock_guard<std::mutex> lock(mu_);
    nodes_.push_back(node);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  }
  const std::vector<TapeNode>& nodes() const { return nodes_; }

 private:
  std::mutex mu_;
  std::vector<TapeNode> nodes_;
};

/// Everything the parameter search needs from one instrumented dry run.
struct CircuitProfile {
  std::string name;
  std::vector<TapeNode> tape;
  /// Node ids of the ciphertexts handed back to clients — their replayed
  /// budget must clear the safety band (interior nodes only need to stay
  /// decryptable).
  std::vector<std::int32_t> outputs;
  /// ExecContext counter delta over the dry run (NTTs, key switches,
  /// rotations, ...), for reports and bench emission.
  CounterSnapshot ops;
};

/// The greedy scheduler knob shared by replay and the live evaluator: a
/// prime is dropped as soon as noise - prime_bits >= floor - margin, i.e.
/// each switch may sacrifice at most `margin` bits of budget to the
/// rounding floor (see NoiseEstimator::auto_drop_target for why the
/// tolerance makes the schedule robust to sub-bit bound differences).
struct ModSwitchPolicy {
  double margin = 2.0;
};

struct SimResult {
  bool feasible = false;        ///< every node decryptable, outputs clear band_low
  double min_budget = 0.0;      ///< worst bound-derived budget at any node
  double min_output_budget = 0.0;
  std::size_t final_level = 0;  ///< level of the last output node
  std::size_t mod_switches = 0; ///< prime drops the scheduler inserted
  double work = 0.0;            ///< relative cost (limb-weighted op model)
};

/// Replay `profile` under `params`: NoiseEstimator bounds per node, greedy
/// mod-switch policy after every node, operand levels aligned like
/// match_levels. band_low is the budget the output nodes must clear.
SimResult simulate(const CircuitProfile& profile, const BgvParams& params,
                   const ModSwitchPolicy& policy, double band_low);

enum class SecurityLevel {
  /// The repo's documented demo posture (EXPERIMENTS.md): rings sized for
  /// speed, not security. The ceiling only enforces "no more modulus than
  /// the legacy demo configs already shipped", so right-sizing can shrink q
  /// (strictly improving security at fixed n) but never grow past the
  /// documented baseline.
  kDemo,
  /// HE-standard-style 128-bit classical ceiling (ternary secret).
  k128Classical,
};

/// Maximum log2(q) admissible at ring size n for the given level.
double max_log_q(std::size_t n, SecurityLevel level);

struct SearchConstraints {
  SecurityLevel security = SecurityLevel::kDemo;
  ModSwitchPolicy policy;
  /// Safety band for the steady-state output budget: the search requires
  /// predicted output budget >= band_low; band_high is not a search input
  /// (the CI smoke enforces measured budget <= band_high to catch surplus
  /// regressions) but is carried into reports.
  double band_low = 8.0;
  double band_high = 40.0;
  std::uint64_t t = 65537;      ///< plaintext modulus (must match the cipher)
  std::size_t min_n = 1024;     ///< slot-layout floor: 2t_pasta | n/2
  std::size_t max_n = 32768;    ///< batch-encoder ceiling: 2n | t-1
  std::uint64_t seed = 11;      ///< copied into the emitted BgvParams
};

struct SearchResult {
  bool found = false;
  BgvParams params;
  SimResult sim;
  double log_q = 0.0;
  double security_cap = 0.0;  ///< max_log_q at the chosen n
  std::size_t candidates_tried = 0;
};

/// Exhaustive sweep of (n, num_primes, prime_bits, relin_digit_bits) under
/// the constraints; returns the feasible candidate with the least replayed
/// work. Deterministic: ties break toward smaller (n, log_q, digit bits).
SearchResult search_params(const CircuitProfile& profile,
                           const SearchConstraints& constraints);

}  // namespace poe::fhe
