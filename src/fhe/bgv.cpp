#include "fhe/bgv.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "fhe/noise.hpp"
#include "fhe/param_search.hpp"
#include "modular/primes.hpp"

namespace poe::fhe {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;
}

// ---------------------------------------------------------- noise tracking

std::int32_t Bgv::record_node(std::uint8_t op, std::int32_t a,
                              std::int32_t b, std::uint64_t scalar,
                              std::uint32_t terms) const {
  NoiseTape* tape = tape_.load(std::memory_order_acquire);
  if (tape == nullptr) return -1;
  TapeNode node;
  node.op = static_cast<NoiseOp>(op);
  node.a = a;
  node.b = b;
  node.scalar = scalar;
  node.terms = terms;
  return tape->append(node);
}

std::int32_t Bgv::record_operand(std::int32_t trace_id) const {
  if (trace_id >= 0) return trace_id;
  // Ciphertext created before recording started: model it as a fresh
  // encryption (the conservative leaf — uploads are always fresh).
  return record_node(static_cast<std::uint8_t>(NoiseOp::kFresh), -1, -1);
}

void Bgv::begin_recording(NoiseTape* tape) const {
  POE_ENSURE(tape != nullptr, "begin_recording requires a tape");
  tape_.store(tape, std::memory_order_release);
}

void Bgv::end_recording() const {
  tape_.store(nullptr, std::memory_order_release);
}

double Bgv::predicted_budget_bits(const Ciphertext& ct) const {
  return NoiseEstimator(params_).budget(ct.noise_bits, ct.level);
}

void Bgv::auto_switch_inplace(Ciphertext& a, double margin) const {
  const NoiseEstimator est(params_);
  const std::size_t target =
      est.auto_drop_target(a.noise_bits, a.level, a.size(), margin);
  if (target < a.level) mod_switch_to(a, target);
}

void Bgv::trim_output_inplace(Ciphertext& a, double keep_bits) const {
  const NoiseEstimator est(params_);
  const std::size_t target =
      est.trim_target(a.noise_bits, a.level, a.size(), keep_bits);
  if (target < a.level) mod_switch_to(a, target);
}

void Bgv::note_fused_affine(Ciphertext& acc, const Ciphertext& src,
                            std::size_t terms) const {
  acc.noise_bits =
      NoiseEstimator(params_).fused_affine(src.noise_bits, acc.level, terms);
  acc.trace_id = record_node(static_cast<std::uint8_t>(NoiseOp::kFusedAffine),
                             record_operand(src.trace_id), -1, 0,
                             static_cast<std::uint32_t>(terms));
}

void Bgv::note_mask_mul(Ciphertext& a) const {
  a.noise_bits = NoiseEstimator(params_).mul_plain(a.noise_bits);
  a.trace_id = record_node(static_cast<std::uint8_t>(NoiseOp::kMulPlain),
                           record_operand(a.trace_id), -1);
}

u64 galois_elt_for_step(std::size_t n, long step) {
  const long c = static_cast<long>(n / 2);
  u64 e = static_cast<u64>(((step % c) + c) % c);
  const u64 two_n = 2 * n;
  u64 g = 1;
  u64 base = 3 % two_n;
  while (e != 0) {
    if (e & 1) g = g * base % two_n;  // operands < 2n << 2^32: no overflow
    base = base * base % two_n;
    e >>= 1;
  }
  return g;
}

BgvParams BgvParams::toy() {
  return BgvParams{.n = 1024,
                   .t = 65537,
                   .num_primes = 3,
                   .prime_bits = 40,
                   .relin_digit_bits = 14,
                   .seed = 7};
}

BgvParams BgvParams::demo() {
  return BgvParams{.n = 4096,
                   .t = 65537,
                   .num_primes = 11,
                   .prime_bits = 45,
                   .relin_digit_bits = 16,
                   .seed = 7};
}

BgvParams BgvParams::secure() {
  return BgvParams{.n = 32768,
                   .t = 65537,
                   .num_primes = 11,
                   .prime_bits = 45,
                   .relin_digit_bits = 16,
                   .seed = 7};
}

RnsPoly restrict_to_level(const RnsPoly& p, std::size_t level) {
  POE_ENSURE(level <= p.level(), "cannot extend a polynomial");
  RnsPoly out = RnsPoly::uninit(p.context(), level, p.is_ntt());
  for (std::size_t i = 0; i < level; ++i) {
    auto dst = out.rns(i);
    auto src = p.rns(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

Bgv::Bgv(const BgvParams& params) : Bgv(params, nullptr) {}

Bgv::Bgv(const BgvParams& params, ExecContext* exec)
    : params_(params),
      ctx_(params.n, params.t,
           mod::bgv_prime_chain(params.num_primes, params.prime_bits,
                                params.n, params.t),
           exec),
      rng_(params.seed) {
  const std::size_t top = ctx_.num_primes();

  // Secret key and its square.
  RnsPoly s = RnsPoly::sample_ternary(&ctx_, top, rng_);
  s.to_ntt();
  s_ntt_ = s;
  s_sq_ntt_ = s;
  s_sq_ntt_.mul_inplace(s_ntt_);

  // Public key: b = -(a s) + t e.
  pk_a_ = RnsPoly::sample_uniform(&ctx_, top, rng_, /*ntt_form=*/true);
  pk_b_ = pk_a_;
  pk_b_.mul_inplace(s_ntt_).negate_inplace();
  pk_b_.add_inplace(sample_t_noise());

  // Relinearisation keys switch the s^2 component onto s.
  rlk_ = make_ksw_key(s_sq_ntt_);
}

RnsPoly Bgv::sample_t_noise() const {
  const std::size_t top = ctx_.num_primes();
  RnsPoly te = RnsPoly::sample_noise(&ctx_, top, rng_);
  te.to_ntt();
  for (std::size_t i = 0; i < top; ++i) {
    const auto& m = ctx_.mod(i);
    auto span = te.rns(i);
    for (auto& x : span) x = m.mul(x, params_.t % m.value());
  }
  return te;
}

KswKey Bgv::make_ksw_key(const RnsPoly& target_ntt) const {
  // For each prime j and digit d: b = -(a s) + t e + B^d q~_j target, where
  // q~_j's RNS image is the idempotent delta_ij — the target term only
  // appears in component j, scaled by B^d.
  const std::size_t top = ctx_.num_primes();
  const unsigned dbits = params_.relin_digit_bits;
  KswKey out;
  out.digits.resize(top);
  for (std::size_t j = 0; j < top; ++j) {
    const unsigned qbits = bit_width_u64(ctx_.prime(j));
    const unsigned digits = (qbits + dbits - 1) / dbits;
    for (unsigned d = 0; d < digits; ++d) {
      KswKey::DigitKey key;
      key.a = RnsPoly::sample_uniform(&ctx_, top, rng_, true);
      key.b = key.a;
      key.b.mul_inplace(s_ntt_).negate_inplace();
      key.b.add_inplace(sample_t_noise());
      {
        const auto& m = ctx_.mod(j);
        const u64 factor = m.pow(2, d * dbits);
        auto dst = key.b.rns(j);
        auto src = target_ntt.rns(j);
        for (std::size_t idx = 0; idx < dst.size(); ++idx) {
          dst[idx] = m.add(dst[idx], m.mul(factor, src[idx]));
        }
      }
      out.digits[j].push_back(std::move(key));
    }
  }
  return out;
}

void Bgv::decompose(
    const RnsPoly& input_coeff, std::vector<RnsPoly>& digits,
    std::vector<std::pair<std::uint32_t, std::uint32_t>>& which) const {
  POE_ENSURE(!input_coeff.is_ntt(), "ksw input must be in coefficient form");
  const std::size_t level = input_coeff.level();
  const unsigned dbits = params_.relin_digit_bits;
  const u64 mask = (u64{1} << dbits) - 1;
  which.clear();
  for (std::size_t j = 0; j < level; ++j) {
    const unsigned qbits = bit_width_u64(ctx_.prime(j));
    const unsigned nd = (qbits + dbits - 1) / dbits;
    for (unsigned d = 0; d < nd; ++d) {
      which.emplace_back(static_cast<std::uint32_t>(j), d);
    }
  }
  digits.assign(which.size(), RnsPoly{});
  // Each digit is extracted and forward-transformed independently — this is
  // the dominant key-switch cost (2 NTTs per prime per level), so fan it out
  // over the thread pool. Each task writes only its own slot.
  parallel_for(which.size(), [&](std::size_t w) {
    const auto [j, d] = which[w];
    const auto src = input_coeff.rns(j);
    // Digit polynomial: ((input mod q_j) >> (d*dbits)) & mask, lifted to
    // all active primes. The digit is < 2^dbits; when that is below every
    // active prime (always, for the shipped parameter sets) the lift is
    // the identity, so component 0 is computed once and copied.
    RnsPoly dig = RnsPoly::uninit(&ctx_, level, false);
    auto first = dig.rns(0);
    for (std::size_t idx = 0; idx < first.size(); ++idx) {
      first[idx] = (src[idx] >> (d * dbits)) & mask;
    }
    const bool first_exact = mask < ctx_.mod(0).value();
    for (std::size_t i = 0; i < level; ++i) {
      const auto& m = ctx_.mod(i);
      auto dst = dig.rns(i);
      if (mask < m.value() && first_exact) {
        if (i > 0) std::copy(first.begin(), first.end(), dst.begin());
      } else {
        for (std::size_t idx = 0; idx < dst.size(); ++idx) {
          dst[idx] = ((src[idx] >> (d * dbits)) & mask) % m.value();
        }
      }
    }
    dig.to_ntt();
    digits[w] = std::move(dig);
  });
}

void Bgv::ksw_accumulate(
    Ciphertext& ct, std::span<const RnsPoly> digits,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> which,
    const KswKey& key, const std::uint32_t* perm) const {
  ksw_accumulate(ct.parts[0], ct.parts[1], ct.level, digits, which, key,
                 perm, /*acc0=*/true, /*acc1=*/true);
}

void Bgv::ksw_accumulate(
    RnsPoly& out0, RnsPoly& out1, std::size_t level,
    std::span<const RnsPoly> digits,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> which,
    const KswKey& key, const std::uint32_t* perm, bool acc0,
    bool acc1) const {
  const std::size_t n = ctx_.n();
  const std::size_t nd = digits.size();
  auto& counters = ctx_.exec().counters();
  counters.bump(counters.key_switch);
  for (const auto& [j, d] : which) {
    POE_ENSURE(j < key.digits.size() && d < key.digits[j].size(),
               "missing ksw digits");
  }
  const auto& kern = ctx_.exec().kernels();
  parallel_for(level, [&](std::size_t i) {
    // The lazy 128-bit inner product (raw digit*key sums, one Barrett flush
    // per slot) lives in the kernel backend. Key components live at the top
    // level; only the first `level` of them are read. Hoist the per-digit
    // span lookups out of the slot loop.
    std::vector<const u64*> dig_ptr(nd), kb_ptr(nd), ka_ptr(nd);
    for (std::size_t w = 0; w < nd; ++w) {
      dig_ptr[w] = digits[w].rns(i).data();
      const auto& dk = key.digits[which[w].first][which[w].second];
      kb_ptr[w] = dk.b.rns(i).data();
      ka_ptr[w] = dk.a.rns(i).data();
    }
    kern.ksw_accumulate(out0.rns(i).data(), out1.rns(i).data(),
                        dig_ptr.data(), kb_ptr.data(), ka_ptr.data(), nd, n,
                        perm, ctx_.mod(i), acc0, acc1);
  });
}

void Bgv::apply_ksw(Ciphertext& ct, const RnsPoly& input_coeff,
                    const KswKey& key) const {
  POE_ENSURE(input_coeff.level() == ct.level, "ksw input level mismatch");
  std::vector<RnsPoly> digits;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> which;
  decompose(input_coeff, digits, which);
  ksw_accumulate(ct, digits, which, key, nullptr);
}

namespace {
// g^-1 mod 2n (g odd, 2n a power of two, so the inverse exists). Keygen
// only — a few Newton iterations beat carrying an extended-gcd helper.
std::uint64_t inverse_mod_2n(std::uint64_t g, std::size_t n) {
  const std::uint64_t mask = 2 * static_cast<std::uint64_t>(n) - 1;
  std::uint64_t inv = g;  // correct mod 8 for odd g
  for (int it = 0; it < 6; ++it) inv = (inv * (2 - g * inv)) & mask;
  POE_ENSURE(((g * inv) & mask) == 1, "automorphism element not invertible");
  return inv;
}
}  // namespace

KswKey Bgv::make_galois_key(u64 galois_element,
                            const RnsPoly& s_coeff) const {
  // Key switches tau_g(s) onto s. The key is stored PRE-PERMUTED by
  // tau_g^-1: since the eventual inner product pairs digit slot perm_g(i)
  // with key slot i, storing k'[j] = k[perm_g^-1(j)] lets the hot path run
  // the inner product contiguously (full SIMD width, no gathers) and apply
  // tau_g once to the two output polys instead of to every digit row:
  //   sum_w d_w[perm_g(i)] * k_w[i]  ==  perm_g( sum_w d_w[j] * k'_w[j] ).
  // Slot-for-slot the same products and the same lazy-flush schedule, so
  // rotation outputs are bit-identical to the permuted-digit formulation.
  RnsPoly tau_s = s_coeff.apply_automorphism(galois_element);
  tau_s.to_ntt();
  KswKey key = make_ksw_key(tau_s);
  const u64 g_inv = inverse_mod_2n(galois_element, ctx_.n());
  for (auto& prime_digits : key.digits) {
    for (auto& dk : prime_digits) {
      dk.b = dk.b.apply_automorphism_ntt(g_inv);
      dk.a = dk.a.apply_automorphism_ntt(g_inv);
    }
  }
  return key;
}

void Bgv::apply_galois_inplace(Ciphertext& a, u64 galois_element,
                               const KswKey& key) const {
  POE_ENSURE(a.size() == 2, "automorphism requires a 2-part ciphertext");
  auto& counters = ctx_.exec().counters();
  counters.bump(counters.automorphism);
  // tau(ct) decrypts under tau(s); key-switch the c1 part back to s. tau
  // distributes over the digit decomposition (the scale factors B^d q~_j
  // are integers, fixed by tau), and the galois key is stored tau^-1
  // -permuted, so the whole switch runs on the UNPERMUTED digits and tau is
  // applied once to each finished output part (see make_galois_key).
  RnsPoly c1 = std::move(a.parts[1]);
  c1.from_ntt();
  // c1's replacement is written in overwrite mode by the key switch (the
  // decomposition sums into it with a zero seed), so skip the zero-fill.
  a.parts[1] = RnsPoly::uninit(&ctx_, a.level, /*ntt_form=*/true);
  std::vector<RnsPoly> digits;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> which;
  decompose(c1, digits, which);
  ksw_accumulate(a.parts[0], a.parts[1], a.level, digits, which, key,
                 nullptr, /*acc0=*/true, /*acc1=*/false);
  a.parts[0] = a.parts[0].apply_automorphism_ntt(galois_element);
  a.parts[1] = a.parts[1].apply_automorphism_ntt(galois_element);
  a.noise_bits = NoiseEstimator(params_).rotate(a.noise_bits, a.level);
  a.trace_id = record_node(static_cast<std::uint8_t>(NoiseOp::kRotate),
                           record_operand(a.trace_id), -1);
}

KswKey Bgv::make_ingest_key(const Bgv& tenant) const {
  POE_ENSURE(tenant.ctx_.n() == ctx_.n(), "ingest requires matching rings");
  POE_ENSURE(tenant.ctx_.num_primes() == ctx_.num_primes(),
             "ingest requires matching RNS chains");
  POE_ENSURE(tenant.params_.t == params_.t,
             "ingest requires matching plaintext moduli");
  for (std::size_t j = 0; j < ctx_.num_primes(); ++j) {
    POE_ENSURE(tenant.ctx_.prime(j) == ctx_.prime(j),
               "ingest requires identical RNS primes");
  }
  // Same ring + same primes => identical NTT tables, so the tenant's secret
  // (NTT form, foreign context) is read span-for-span.
  return make_ksw_key(tenant.s_ntt_);
}

Ciphertext Bgv::ingest_switch(const Ciphertext& ct,
                              const KswKey& ingest_key) const {
  POE_ENSURE(ct.size() == 2, "ingest switch requires a 2-part ciphertext");
  const std::size_t level = ct.level;
  POE_ENSURE(level >= 1 && level <= ctx_.num_primes(),
             "ingest switch: bad level");
  // Rebind both parts into this evaluator's context (the upload was built
  // over the same ring by the tenant's own Bgv, so the raw RNS data carries
  // over verbatim); then c0 stays, c1 is key-switched from the tenant's
  // secret onto ours — the exact shape of apply_galois_inplace with the
  // identity automorphism.
  RnsPoly c1 = RnsPoly::uninit(&ctx_, level, /*ntt_form=*/true);
  Ciphertext out;
  out.level = level;
  out.parts.push_back(RnsPoly::uninit(&ctx_, level, /*ntt_form=*/true));
  for (std::size_t i = 0; i < level; ++i) {
    const auto s0 = ct.parts[0].rns(i);
    const auto s1 = ct.parts[1].rns(i);
    auto d0 = out.parts[0].rns(i);
    auto d1 = c1.rns(i);
    std::copy(s0.begin(), s0.end(), d0.begin());
    std::copy(s1.begin(), s1.end(), d1.begin());
  }
  c1.from_ntt();
  out.parts.push_back(
      RnsPoly::uninit(&ctx_, level, /*ntt_form=*/true));  // ksw overwrites
  std::vector<RnsPoly> digits;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> which;
  decompose(c1, digits, which);
  ksw_accumulate(out.parts[0], out.parts[1], level, digits, which,
                 ingest_key, nullptr, /*acc0=*/true, /*acc1=*/false);
  out.noise_bits = NoiseEstimator(params_).relinearize(ct.noise_bits, level);
  out.trace_id = record_node(static_cast<std::uint8_t>(NoiseOp::kIngest),
                             record_operand(ct.trace_id), -1);
  return out;
}

HoistedCt Bgv::hoist(const Ciphertext& ct) const {
  POE_ENSURE(ct.size() == 2, "hoisting requires a 2-part ciphertext");
  HoistedCt h;
  h.level = ct.level;
  h.noise_bits = ct.noise_bits;
  h.trace_id = ct.trace_id;
  h.c0 = ct.parts[0];
  RnsPoly c1 = ct.parts[1];
  c1.from_ntt();
  decompose(c1, h.digits, h.digit_of);
  return h;
}

Ciphertext Bgv::rotate_hoisted(const HoistedCt& hoisted, long step,
                               const GaloisKeys& keys) const {
  const std::size_t n = ctx_.n();
  const long c = static_cast<long>(n / 2);
  const long s = ((step % c) + c) % c;
  POE_ENSURE(s != 0, "rotate_hoisted requires a nonzero step");
  const auto it = keys.keys.find(s);
  POE_ENSURE(it != keys.keys.end(), "no rotation key for step " << s);
  const u64 g = galois_elt_for_step(n, s);
  auto& counters = ctx_.exec().counters();
  counters.bump(counters.automorphism);
  counters.bump(counters.hoisted_rotation);
  // tau distributes over the decomposition (the B^d q~_j scale factors are
  // integers, fixed by tau), so rotating the shared NTT-form digits inside
  // the inner product yields a valid encryption of the rotated plaintext —
  // without a single forward NTT. The galois key is stored tau^-1-permuted
  // (make_galois_key), which moves the permutation off the nd digit rows
  // and onto the two finished output parts: the inner product itself runs
  // contiguously at full SIMD width, and tau folds over c0 for free
  // (perm(c0 + sum) == perm(c0) + perm(sum)).
  Ciphertext out;
  out.level = hoisted.level;
  out.parts.resize(2);
  out.parts[0] = hoisted.c0;
  out.parts[1] = RnsPoly(&ctx_, hoisted.level, /*ntt_form=*/true);
  ksw_accumulate(out, hoisted.digits, hoisted.digit_of, it->second, nullptr);
  out.parts[0] = out.parts[0].apply_automorphism_ntt(g);
  out.parts[1] = out.parts[1].apply_automorphism_ntt(g);
  out.noise_bits =
      NoiseEstimator(params_).rotate(hoisted.noise_bits, hoisted.level);
  out.trace_id = record_node(static_cast<std::uint8_t>(NoiseOp::kRotate),
                             record_operand(hoisted.trace_id), -1);
  return out;
}

Bgv::HoistScratch& Bgv::lease_hoist_scratch() const {
  // Chaos site: simulated scratch-acquisition failure, typed like any other
  // allocation fault so the service retry path absorbs it organically.
  fault_point(ctx_.exec(), "fhe.hoist.scratch.alloc_fail");
  std::lock_guard<std::mutex> lock(hoist_mu_);
  for (auto& sc : hoist_scratch_) {
    bool expected = false;
    if (sc->in_use.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      return *sc;
    }
  }
  hoist_scratch_.push_back(std::make_unique<HoistScratch>());
  HoistScratch& sc = *hoist_scratch_.back();
  sc.in_use.store(true, std::memory_order_release);
  return sc;
}

void Bgv::release_hoist_scratch(HoistScratch& sc) const noexcept {
  const bool was_leased = sc.in_use.exchange(false, std::memory_order_acq_rel);
  POE_DCHECK(was_leased, "HoistScratch released without a lease");
  (void)was_leased;
}

/// RAII lease over one HoistScratch. In debug builds the `active` counter
/// doubles as a concurrent-aliasing detector: if two workers ever operate
/// on the same scratch (a bug in the lease discipline), the second entrant
/// observes a nonzero count and fails loudly instead of corrupting both
/// rotations silently.
class Bgv::ScratchLease {
 public:
  explicit ScratchLease(const Bgv& bgv)
      : bgv_(bgv), sc_(&bgv.lease_hoist_scratch()) {
#ifndef NDEBUG
    const int prev = sc_->active.fetch_add(1, std::memory_order_acq_rel);
    POE_DCHECK(prev == 0, "HoistScratch aliased by two concurrent workers");
#endif
  }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;
  ~ScratchLease() {
#ifndef NDEBUG
    sc_->active.fetch_sub(1, std::memory_order_acq_rel);
#endif
    bgv_.release_hoist_scratch(*sc_);
  }
  HoistScratch& operator*() const { return *sc_; }

 private:
  const Bgv& bgv_;
  HoistScratch* sc_;
};

void Bgv::rotate_hoisted_into(const HoistedCt& hoisted, long step,
                              const GaloisKeys& keys, Ciphertext& out) const {
  const std::size_t n = ctx_.n();
  const long c = static_cast<long>(n / 2);
  const long s = ((step % c) + c) % c;
  POE_ENSURE(s != 0, "rotate_hoisted requires a nonzero step");
  const auto it = keys.keys.find(s);
  POE_ENSURE(it != keys.keys.end(), "no rotation key for step " << s);
  const u64 g = galois_elt_for_step(n, s);
  auto& counters = ctx_.exec().counters();
  counters.bump(counters.automorphism);
  counters.bump(counters.hoisted_rotation);
  // Same formulation as rotate_hoisted, with the allocation/copy traffic
  // squeezed out: the inner product runs in overwrite mode into leased
  // scratch (no c0 copy, no zero-fill of c1), and the closing tau is a
  // fused permute(-add) straight into out's reshaped slabs. Residues are
  // exact at every hand-off — reduce128(c0 + sum) == add(c0,
  // reduce128(sum)) — so the two paths are bit-identical, which the
  // differential suite pins per backend.
  const std::size_t level = hoisted.level;
  ScratchLease lease(*this);
  HoistScratch& sc = *lease;
  sc.acc0.reshape_uninit(&ctx_, level, /*ntt_form=*/true);
  sc.acc1.reshape_uninit(&ctx_, level, /*ntt_form=*/true);
  ksw_accumulate(sc.acc0, sc.acc1, level, hoisted.digits, hoisted.digit_of,
                 it->second, nullptr, /*acc0=*/false, /*acc1=*/false);
  out.level = level;
  out.parts.resize(2);
  out.parts[0].reshape_uninit(&ctx_, level, /*ntt_form=*/true);
  out.parts[1].reshape_uninit(&ctx_, level, /*ntt_form=*/true);
  const auto perm = ctx_.galois_ntt_perm(g);
  const auto& kern = ctx_.exec().kernels();
  parallel_for(level, [&](std::size_t i) {
    kern.permute_add(out.parts[0].rns(i).data(), hoisted.c0.rns(i).data(),
                     sc.acc0.rns(i).data(), perm.data(), n, ctx_.mod(i));
    kern.permute(out.parts[1].rns(i).data(), sc.acc1.rns(i).data(),
                 perm.data(), n);
  });
  out.noise_bits =
      NoiseEstimator(params_).rotate(hoisted.noise_bits, hoisted.level);
  out.trace_id = record_node(static_cast<std::uint8_t>(NoiseOp::kRotate),
                             record_operand(hoisted.trace_id), -1);
}

GaloisKeys Bgv::make_rotation_keys(const std::vector<long>& steps) const {
  const std::size_t n = ctx_.n();
  GaloisKeys out;
  RnsPoly s_coeff = s_ntt_;
  s_coeff.from_ntt();
  for (long step : steps) {
    if (step == GaloisKeys::kRowSwap) {
      if (out.keys.count(GaloisKeys::kRowSwap) == 0) {
        out.keys.emplace(GaloisKeys::kRowSwap,
                         make_galois_key(2 * n - 1, s_coeff));
      }
      continue;
    }
    const long c = static_cast<long>(n / 2);
    const long s = ((step % c) + c) % c;
    if (out.keys.count(s) != 0 || s == 0) continue;
    out.keys.emplace(s, make_galois_key(galois_elt_for_step(n, s), s_coeff));
  }
  return out;
}

void Bgv::rotate_columns_inplace(Ciphertext& a, long step,
                                 const GaloisKeys& keys) const {
  const std::size_t n = ctx_.n();
  const long c = static_cast<long>(n / 2);
  const long s = ((step % c) + c) % c;
  if (s == 0) return;
  const auto it = keys.keys.find(s);
  POE_ENSURE(it != keys.keys.end(), "no rotation key for step " << s);
  apply_galois_inplace(a, galois_elt_for_step(n, s), it->second);
}

void Bgv::swap_rows_inplace(Ciphertext& a, const GaloisKeys& keys) const {
  const auto it = keys.keys.find(GaloisKeys::kRowSwap);
  POE_ENSURE(it != keys.keys.end(), "no row-swap key");
  apply_galois_inplace(a, 2 * ctx_.n() - 1, it->second);
}

Ciphertext Bgv::encrypt(const Plaintext& pt) const {
  const std::size_t top = ctx_.num_primes();
  RnsPoly u = RnsPoly::sample_ternary(&ctx_, top, rng_);
  u.to_ntt();

  Ciphertext ct;
  ct.level = top;
  ct.parts.resize(2);

  ct.parts[0] = pk_b_;
  ct.parts[0].mul_inplace(u);
  ct.parts[1] = pk_a_;
  ct.parts[1].mul_inplace(u);

  for (int which = 0; which < 2; ++which) {
    RnsPoly e = RnsPoly::sample_noise(&ctx_, top, rng_);
    e.to_ntt();
    for (std::size_t i = 0; i < top; ++i) {
      const auto& m = ctx_.mod(i);
      auto span = e.rns(i);
      for (auto& x : span) x = m.mul(x, params_.t % m.value());
    }
    ct.parts[which].add_inplace(e);
  }

  RnsPoly m = RnsPoly::from_plaintext(&ctx_, top, pt.coeffs, true);
  ct.parts[0].add_inplace(m);
  ct.noise_bits = NoiseEstimator(params_).fresh();
  ct.trace_id = record_node(static_cast<std::uint8_t>(NoiseOp::kFresh), -1, -1);
  return ct;
}

RnsPoly Bgv::decrypt_core(const Ciphertext& ct) const {
  POE_ENSURE(ct.size() >= 2 && ct.size() <= 3, "unsupported ciphertext size");
  // The secret (and its square) live at the top level; the fused accumulate
  // reads only the ciphertext's active components.
  RnsPoly v = ct.parts[0];
  v.add_mul_inplace(ct.parts[1], s_ntt_);
  if (ct.size() == 3) {
    v.add_mul_inplace(ct.parts[2], s_sq_ntt_);
  }
  v.from_ntt();
  return v;
}

Plaintext Bgv::decrypt(const Ciphertext& ct) const {
  RnsPoly v = decrypt_core(ct);
  const LevelData& lvl = ctx_.level(ct.level);
  const std::size_t n = ctx_.n();
  Plaintext out;
  out.coeffs.resize(n);
  for (std::size_t idx = 0; idx < n; ++idx) {
    // CRT reconstruction: sum [v_i * q_hat_inv_i]_{q_i} * q_hat_i mod q.
    UBig acc;
    for (std::size_t i = 0; i < ct.level; ++i) {
      const auto& m = ctx_.mod(i);
      const u64 term = m.mul(v.rns(i)[idx], lvl.q_hat_inv[i]);
      UBig contrib = lvl.q_hat[i];
      contrib.mul_u64(term);
      acc.add(contrib);
    }
    acc.mod_by_subtraction(lvl.q);
    // Centered reduction, then mod t.
    const bool negative = acc > lvl.q_half;
    if (negative) {
      UBig tmp = lvl.q;
      tmp.sub(acc);
      acc = std::move(tmp);
    }
    const u64 r = acc.mod_u64(params_.t);
    out.coeffs[idx] = negative ? (r == 0 ? 0 : params_.t - r) : r;
  }
  return out;
}

double Bgv::noise_budget_bits(const Ciphertext& ct) const {
  RnsPoly v = decrypt_core(ct);
  const LevelData& lvl = ctx_.level(ct.level);
  unsigned max_bits = 0;
  for (std::size_t idx = 0; idx < ctx_.n(); ++idx) {
    UBig acc;
    for (std::size_t i = 0; i < ct.level; ++i) {
      const auto& m = ctx_.mod(i);
      const u64 term = m.mul(v.rns(i)[idx], lvl.q_hat_inv[i]);
      UBig contrib = lvl.q_hat[i];
      contrib.mul_u64(term);
      acc.add(contrib);
    }
    acc.mod_by_subtraction(lvl.q);
    if (acc > lvl.q_half) {
      UBig tmp = lvl.q;
      tmp.sub(acc);
      acc = std::move(tmp);
    }
    max_bits = std::max(max_bits, acc.bit_length());
  }
  return static_cast<double>(lvl.q.bit_length()) - 1.0 -
         static_cast<double>(max_bits);
}

void Bgv::add_inplace(Ciphertext& a, const Ciphertext& b) const {
  POE_ENSURE(a.level == b.level, "level mismatch (use match_levels)");
  POE_ENSURE(a.size() == b.size(), "ciphertext size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.parts[i].add_inplace(b.parts[i]);
  }
  a.noise_bits = NoiseEstimator(params_).add(a.noise_bits, b.noise_bits);
  a.trace_id = record_node(static_cast<std::uint8_t>(NoiseOp::kAdd),
                           record_operand(a.trace_id),
                           record_operand(b.trace_id));
}

void Bgv::sub_inplace(Ciphertext& a, const Ciphertext& b) const {
  POE_ENSURE(a.level == b.level, "level mismatch (use match_levels)");
  POE_ENSURE(a.size() == b.size(), "ciphertext size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.parts[i].sub_inplace(b.parts[i]);
  }
  a.noise_bits = NoiseEstimator(params_).add(a.noise_bits, b.noise_bits);
  a.trace_id = record_node(static_cast<std::uint8_t>(NoiseOp::kAdd),
                           record_operand(a.trace_id),
                           record_operand(b.trace_id));
}

void Bgv::negate_inplace(Ciphertext& a) const {
  for (auto& part : a.parts) part.negate_inplace();
}

void Bgv::add_plain_inplace(Ciphertext& a, const Plaintext& pt) const {
  RnsPoly m = RnsPoly::from_plaintext(&ctx_, a.level, pt.coeffs, true);
  a.parts[0].add_inplace(m);
  a.noise_bits = NoiseEstimator(params_).add_plain(a.noise_bits);
  a.trace_id = record_node(static_cast<std::uint8_t>(NoiseOp::kAddPlain),
                           record_operand(a.trace_id), -1);
}

void Bgv::sub_plain_inplace(Ciphertext& a, const Plaintext& pt) const {
  RnsPoly m = RnsPoly::from_plaintext(&ctx_, a.level, pt.coeffs, true);
  a.parts[0].sub_inplace(m);
  a.noise_bits = NoiseEstimator(params_).add_plain(a.noise_bits);
  a.trace_id = record_node(static_cast<std::uint8_t>(NoiseOp::kAddPlain),
                           record_operand(a.trace_id), -1);
}

void Bgv::mul_plain_inplace(Ciphertext& a, const Plaintext& pt) const {
  RnsPoly m = RnsPoly::from_plaintext(&ctx_, a.level, pt.coeffs, true);
  for (auto& part : a.parts) part.mul_inplace(m);
  a.noise_bits = NoiseEstimator(params_).mul_plain(a.noise_bits);
  a.trace_id = record_node(static_cast<std::uint8_t>(NoiseOp::kMulPlain),
                           record_operand(a.trace_id), -1);
}

void Bgv::mul_scalar_inplace(Ciphertext& a, u64 scalar) const {
  for (auto& part : a.parts) part.mul_scalar_inplace(scalar);
  a.noise_bits = NoiseEstimator(params_).mul_scalar(a.noise_bits, scalar);
  a.trace_id = record_node(static_cast<std::uint8_t>(NoiseOp::kMulScalar),
                           record_operand(a.trace_id), -1, scalar);
}

void Bgv::add_scalar_inplace(Ciphertext& a, u64 scalar) const {
  POE_ENSURE(scalar < params_.t, "scalar out of range");
  // The NTT of a constant polynomial is that constant in every slot.
  const bool negative = scalar > params_.t / 2;
  const u64 magnitude = negative ? params_.t - scalar : scalar;
  for (std::size_t i = 0; i < a.level; ++i) {
    const auto& m = ctx_.mod(i);
    const u64 lifted = negative ? m.neg(magnitude) : magnitude;
    auto span = a.parts[0].rns(i);
    for (auto& x : span) x = m.add(x, lifted);
  }
  a.noise_bits = NoiseEstimator(params_).add_scalar(a.noise_bits);
  a.trace_id = record_node(static_cast<std::uint8_t>(NoiseOp::kAddScalar),
                           record_operand(a.trace_id), -1);
}

Ciphertext Bgv::multiply(const Ciphertext& a, const Ciphertext& b) const {
  POE_ENSURE(a.level == b.level, "level mismatch (use match_levels)");
  POE_ENSURE(a.size() == 2 && b.size() == 2,
             "multiply requires relinearised inputs");
  auto& counters = ctx_.exec().counters();
  counters.bump(counters.ct_ct_mul);
  Ciphertext out;
  out.level = a.level;
  out.parts.resize(3);
  // (a0 b0, a0 b1 + a1 b0, a1 b1)
  out.parts[0] = a.parts[0];
  out.parts[0].mul_inplace(b.parts[0]);
  RnsPoly cross = a.parts[0];
  cross.mul_inplace(b.parts[1]);
  cross.add_mul_inplace(a.parts[1], b.parts[0]);
  out.parts[1] = std::move(cross);
  out.parts[2] = a.parts[1];
  out.parts[2].mul_inplace(b.parts[1]);
  out.noise_bits = NoiseEstimator(params_).multiply(a.noise_bits, b.noise_bits);
  out.trace_id = record_node(static_cast<std::uint8_t>(NoiseOp::kMultiply),
                             record_operand(a.trace_id),
                             record_operand(b.trace_id));
  return out;
}

Ciphertext Bgv::multiply_relin(const Ciphertext& a,
                               const Ciphertext& b) const {
  Ciphertext out = multiply(a, b);
  relinearize_inplace(out);
  mod_switch_inplace(out);
  return out;
}

void Bgv::relinearize_inplace(Ciphertext& a) const {
  if (a.size() == 2) return;
  POE_ENSURE(a.size() == 3, "unexpected ciphertext size");
  RnsPoly c2 = a.parts[2];
  c2.from_ntt();
  a.parts.pop_back();
  apply_ksw(a, c2, rlk_);
  a.noise_bits = NoiseEstimator(params_).relinearize(a.noise_bits, a.level);
  a.trace_id = record_node(static_cast<std::uint8_t>(NoiseOp::kRelinearize),
                           record_operand(a.trace_id), -1);
}

void Bgv::mod_switch_inplace(Ciphertext& a) const {
  POE_ENSURE(a.level >= 2, "cannot switch below the last prime");
  mod_switch_to(a, a.level - 1);
}

void Bgv::mod_switch_to(Ciphertext& a, std::size_t level) const {
  POE_ENSURE(level >= 1 && level <= a.level, "invalid target level");
  if (level == a.level) return;
  auto& counters = ctx_.exec().counters();
  counters.bump(counters.mod_switch, a.level - level);
  // The whole chain of prime drops runs in coefficient form, so a k-level
  // switch costs ONE inverse/forward transform pair per part instead of k —
  // bit-identical to sequential switching, since the NTT round trips between
  // drops are exact identities.
  for (auto& part : a.parts) {
    part.from_ntt();
    for (std::size_t cur = a.level; cur > level; --cur) {
      const LevelData& lvl = ctx_.level(cur);
      const std::size_t last = cur - 1;
      const u64 qlast = ctx_.prime(last);
      const u64 qlast_half = qlast / 2;
      const auto clast = part.rns(last);
      for (std::size_t i = 0; i < last; ++i) {
        const auto& m = ctx_.mod(i);
        const u64 t_mod = params_.t % m.value();
        const u64 t_qlast_mod = m.mul(t_mod, qlast % m.value());
        auto ci = part.rns(i);
        for (std::size_t idx = 0; idx < ci.size(); ++idx) {
          // u = [c * t^{-1}]_{q_last}, centered; delta = t * u.
          const u64 u = ctx_.mod(last).mul(clast[idx], lvl.t_inv_mod_qlast);
          u64 delta = m.mul(t_mod, u % m.value());
          if (u > qlast_half) delta = m.sub(delta, t_qlast_mod);
          // c' = (c - delta) / q_last.
          ci[idx] = m.mul(m.sub(ci[idx], delta), lvl.qlast_inv[i]);
        }
      }
      part.drop_last_component();
    }
    part.to_ntt();
  }
  // One estimator step per dropped prime; the tape deliberately records
  // nothing (the parameter-search replay schedules its own switches).
  const NoiseEstimator est(params_);
  for (std::size_t cur = a.level; cur > level; --cur) {
    a.noise_bits = est.mod_switch(a.noise_bits, a.size());
  }
  a.level = level;
}

void Bgv::match_levels(Ciphertext& a, Ciphertext& b) const {
  const std::size_t target = std::min(a.level, b.level);
  mod_switch_to(a, target);
  mod_switch_to(b, target);
}

}  // namespace poe::fhe
