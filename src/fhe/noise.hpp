// Static noise-bound tracking for BGV ciphertexts.
//
// The server cannot measure noise (that needs the secret key); it must
// *bound* it. NoiseEstimator mirrors every homomorphic operation with a
// conservative bound in log2 — the invariant, checked by property tests, is
// that the estimated budget is never larger than the true (secret-key
// measured) budget. Circuit designers use it to place modulus switches
// without oracle access.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "fhe/bgv.hpp"

namespace poe::fhe {

class NoiseEstimator {
 public:
  explicit NoiseEstimator(const BgvParams& params)
      : params_(params),
        log_n_(std::log2(static_cast<double>(params.n))),
        log_t_(std::log2(static_cast<double>(params.t))) {}

  /// Bound (bits) on a fresh encryption's invariant |c0 + c1 s|.
  double fresh() const {
    // t * (e0 + u*e_pk + s*e1) + m: eta=2 noise, ternary u/s.
    return log_t_ + std::log2(3.0) + log_n_ + 2.0;
  }

  double add(double a, double b) const { return std::max(a, b) + 1.0; }

  double add_scalar(double a) const { return std::max(a, log_t_) + 1.0; }

  double mul_scalar(double a, std::uint64_t scalar) const {
    const std::uint64_t t = params_.t;
    const std::uint64_t mag = scalar > t / 2 ? t - scalar : scalar;
    return a + std::log2(static_cast<double>(mag) + 1.0);
  }

  /// Multiply by an arbitrary plaintext polynomial (coefficients < t).
  double mul_plain(double a) const { return a + log_t_ + log_n_; }

  double multiply(double a, double b) const { return a + b + log_n_ + 1.0; }

  /// Key-switching additive term (relinearisation or rotation).
  double ksw_bound(std::size_t level) const {
    const double digits = std::ceil(
        static_cast<double>(params_.prime_bits) / params_.relin_digit_bits);
    return log_t_ + params_.relin_digit_bits + log_n_ +
           std::log2(static_cast<double>(level) * digits) + 3.0;
  }

  double relinearize(double a, std::size_t level) const {
    return std::max(a, ksw_bound(level)) + 1.0;
  }

  double rotate(double a, std::size_t level) const {
    return relinearize(a, level);
  }

  double mod_switch(double a) const {
    const double floor = log_t_ + log_n_ + 2.0;
    return std::max(a - params_.prime_bits, floor);
  }

  /// Budget (bits) left at `level` given a noise bound.
  double budget(double noise_bits, std::size_t level) const {
    return static_cast<double>(level) * params_.prime_bits - 1.0 -
           noise_bits;
  }

 private:
  BgvParams params_;
  double log_n_;
  double log_t_;
};

}  // namespace poe::fhe
