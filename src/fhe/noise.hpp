// Static noise-bound tracking for BGV ciphertexts.
//
// The server cannot measure noise (that needs the secret key); it must
// *bound* it. NoiseEstimator mirrors every homomorphic operation with a
// conservative bound in log2 — the invariant, checked by property tests, is
// that the estimated budget is never larger than the true (secret-key
// measured) budget. Circuit designers use it to place modulus switches
// without oracle access; Bgv maintains one bound per ciphertext
// (Ciphertext::noise_bits) and the automatic mod-switch scheduler
// (Bgv::auto_switch_inplace) consults it to drop primes as early as the
// bound allows.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "fhe/bgv.hpp"

namespace poe::fhe {

class NoiseEstimator {
 public:
  explicit NoiseEstimator(const BgvParams& params)
      : params_(params),
        log_n_(std::log2(static_cast<double>(params.n))),
        log_t_(std::log2(static_cast<double>(params.t))) {}

  /// Bound (bits) on a fresh encryption's invariant |c0 + c1 s|.
  double fresh() const {
    // t * (e0 + u*e_pk + s*e1) + m: eta=2 noise, ternary u/s.
    return log_t_ + std::log2(3.0) + log_n_ + 2.0;
  }

  double add(double a, double b) const { return std::max(a, b) + 1.0; }

  double add_scalar(double a) const { return std::max(a, log_t_) + 1.0; }

  /// Add a plaintext polynomial (coefficients < t, centered <= t/2).
  double add_plain(double a) const { return std::max(a, log_t_) + 1.0; }

  double mul_scalar(double a, std::uint64_t scalar) const {
    const std::uint64_t t = params_.t;
    const std::uint64_t mag = scalar > t / 2 ? t - scalar : scalar;
    return a + std::log2(static_cast<double>(mag) + 1.0);
  }

  /// Multiply by an arbitrary plaintext polynomial (coefficients < t).
  double mul_plain(double a) const { return a + log_t_ + log_n_; }

  double multiply(double a, double b) const { return a + b + log_n_ + 1.0; }

  /// Key-switching additive term (relinearisation or rotation): the digit
  /// decomposition contributes sum_w digit_w * (t e_w) with |digit_w| <
  /// 2^{bits_w} and |e_w| <= 2 (eta=2 key noise), so the coefficient bound
  /// is 2 t n sum_w 2^{bits_w} over the digits actually present at `level`
  /// — the top digit of each prime carries only prime_bits mod digit_bits
  /// bits, which this sum accounts for exactly. (The former bound charged a
  /// full 2^{digit_bits} to every digit plus 2 extra slack bits; that
  /// uniform conservatism forced mod-switches later than necessary.)
  double ksw_bound(std::size_t level) const {
    const unsigned dbits = params_.relin_digit_bits;
    const unsigned qbits = params_.prime_bits;
    double per_prime = 0.0;
    for (unsigned consumed = 0; consumed < qbits; consumed += dbits) {
      per_prime += std::exp2(static_cast<double>(
          std::min(dbits, qbits - consumed)));
    }
    return log_t_ + 1.0 + log_n_ +
           std::log2(static_cast<double>(level) * per_prime);
  }

  double relinearize(double a, std::size_t level) const {
    return std::max(a, ksw_bound(level)) + 1.0;
  }

  double rotate(double a, std::size_t level) const {
    return relinearize(a, level);
  }

  /// Bound after one fused diagonal accumulation: `terms` plaintext-times-
  /// rotation products summed into one accumulator, every source served
  /// from the same hoisted state (the unrotated k=0 term is dominated by
  /// the rotated bound).
  double fused_affine(double state_noise, std::size_t level,
                      std::size_t terms) const {
    return mul_plain(rotate(state_noise, level)) +
           std::log2(static_cast<double>(terms));
  }

  /// Rounding floor of a modulus switch on a ciphertext with `parts`
  /// components: the correction delta_i = t [c_i t^{-1}]_{q_last} adds
  /// (delta_0 + delta_1 s + delta_2 s^2) / q_last to the invariant, so a
  /// 3-part (pre-relinearisation) switch pays an extra ||s^2||_1 <= n
  /// factor on its floor.
  double mod_switch_floor(std::size_t parts) const {
    return parts >= 3 ? log_t_ + 2.0 * log_n_ + 2.0 : log_t_ + log_n_ + 2.0;
  }

  double mod_switch(double a, std::size_t parts) const {
    return std::max(a - params_.prime_bits, mod_switch_floor(parts));
  }

  /// 2-part convenience overload (the post-relinearisation common case).
  double mod_switch(double a) const { return mod_switch(a, 2); }

  /// Greedy scheduler core: the lowest level reachable from (noise_bits,
  /// level) by switches that each sacrifice at most `margin` bits of budget
  /// to the rounding floor — i.e. while noise - prime_bits >= floor -
  /// margin. The tolerance makes the policy CONTRACTING: two runs whose
  /// bounds differ slightly (different nonce scalars, the SIMD vs
  /// single-block batched circuit) drop at the same points and both clamp
  /// to the floor, instead of bifurcating into different schedules when one
  /// of them misses a strict budget-free threshold by a fraction of a bit.
  /// One policy, three users: Bgv::auto_switch_inplace, the servers'
  /// row-aligned vector variant, and the parameter-search replay
  /// (simulate).
  std::size_t auto_drop_target(double noise_bits, std::size_t level,
                               std::size_t parts, double margin) const {
    const double floor = mod_switch_floor(parts);
    while (level > 1 &&
           noise_bits - params_.prime_bits >= floor - margin) {
      noise_bits = mod_switch(noise_bits, parts);
      --level;
    }
    return level;
  }

  /// Terminal right-sizing for ciphertexts leaving the server: the lowest
  /// level reachable while the bound-derived budget stays >= keep_bits.
  /// Unlike auto_drop_target (which only takes near-free switches mid-
  /// circuit), the trim deliberately SPENDS surplus budget — once no more
  /// noise-heavy ops follow, any level beyond the safety band is wasted
  /// modulus: larger download, slower decryption, and the very parameter
  /// surplus the search exists to eliminate.
  std::size_t trim_target(double noise_bits, std::size_t level,
                          std::size_t parts, double keep_bits) const {
    while (level > 1) {
      const double dropped = mod_switch(noise_bits, parts);
      if (budget(dropped, level - 1) < keep_bits) break;
      noise_bits = dropped;
      --level;
    }
    return level;
  }

  /// Budget (bits) left at `level` given a noise bound.
  double budget(double noise_bits, std::size_t level) const {
    return static_cast<double>(level) * params_.prime_bits - 1.0 -
           noise_bits;
  }

 private:
  BgvParams params_;
  double log_n_;
  double log_t_;
};

}  // namespace poe::fhe
