// Wire format for BGV ciphertexts: a small header followed by every RNS
// component bit-packed at its prime's width. Used by the HHE protocol's
// communication accounting (the key-upload and result-download sizes in the
// Fig.-1 workflow are real serialised bytes, not estimates).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fhe/bgv.hpp"

namespace poe::fhe {

/// Exact wire size of a ciphertext at the given level/part count.
std::uint64_t ciphertext_wire_bytes(const RnsContext& ctx, std::size_t level,
                                    std::size_t parts);

/// Decrypt-free plausibility check of a ciphertext against its context:
/// shape (2-3 NTT-form parts at a level within the chain, each part at the
/// ciphertext's level), every RNS coefficient in range for its prime, and a
/// finite wire size per ciphertext_wire_bytes. Catches truncated uploads
/// and corrupted ciphertext words without touching any secret material —
/// the service's poison-pill quarantine gate. Returns std::nullopt when
/// plausible, else a description of the first violation.
std::optional<std::string> validate_ciphertext(const RnsContext& ctx,
                                               const Ciphertext& ct);

std::vector<std::uint8_t> serialize_ciphertext(const RnsContext& ctx,
                                               const Ciphertext& ct);

/// Inverse of serialize_ciphertext; validates the header against `ctx`.
Ciphertext deserialize_ciphertext(const RnsContext& ctx,
                                  std::span<const std::uint8_t> bytes);

}  // namespace poe::fhe
