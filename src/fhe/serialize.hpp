// Wire format for BGV ciphertexts: a small header followed by every RNS
// component bit-packed at its prime's width. Used by the HHE protocol's
// communication accounting (the key-upload and result-download sizes in the
// Fig.-1 workflow are real serialised bytes, not estimates).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fhe/bgv.hpp"

namespace poe::fhe {

/// Exact wire size of a ciphertext at the given level/part count.
std::uint64_t ciphertext_wire_bytes(const RnsContext& ctx, std::size_t level,
                                    std::size_t parts);

std::vector<std::uint8_t> serialize_ciphertext(const RnsContext& ctx,
                                               const Ciphertext& ct);

/// Inverse of serialize_ciphertext; validates the header against `ctx`.
Ciphertext deserialize_ciphertext(const RnsContext& ctx,
                                  std::span<const std::uint8_t> bytes);

}  // namespace poe::fhe
