#include "fhe/encoding.hpp"

#include "common/error.hpp"

namespace poe::fhe {

BatchEncoder::BatchEncoder(std::size_t n, std::uint64_t t, ExecContext* exec)
    : exec_(exec != nullptr ? exec : &ExecContext::global()), ntt_(t, n) {}

Plaintext BatchEncoder::encode(
    const std::vector<std::uint64_t>& values) const {
  POE_ENSURE(values.size() <= ntt_.n(), "too many values to encode");
  Plaintext pt;
  pt.coeffs.assign(ntt_.n(), 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    POE_ENSURE(values[i] < ntt_.modulus().value(), "value out of range");
    pt.coeffs[i] = values[i];
  }
  // Slots are the evaluations; encoding is the inverse transform.
  ntt_.inverse(pt.coeffs);
  auto& c = exec_->counters();
  c.bump(c.encode);
  return pt;
}

std::vector<std::uint64_t> BatchEncoder::decode(const Plaintext& pt) const {
  POE_ENSURE(pt.coeffs.size() == ntt_.n(), "plaintext size mismatch");
  std::vector<std::uint64_t> slots = pt.coeffs;
  ntt_.forward(slots);
  return slots;
}

}  // namespace poe::fhe
