#include "fhe/param_search.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "fhe/noise.hpp"

namespace poe::fhe {

namespace {

/// Per-node replay state.
struct NodeState {
  double noise = 0.0;
  std::size_t level = 0;
  std::size_t parts = 2;
};

/// Relative cost model, in "coefficient visits" weighted by how many RNS
/// limbs each visit touches. Only the RANKING across candidate parameter
/// sets matters; absolute values are meaningless. NTT-bearing ops carry an
/// extra log2(n) factor.
struct WorkModel {
  double n, log_n, digits_per_prime;

  explicit WorkModel(const BgvParams& p)
      : n(static_cast<double>(p.n)),
        log_n(std::log2(static_cast<double>(p.n))),
        digits_per_prime(std::ceil(static_cast<double>(p.prime_bits) /
                                   p.relin_digit_bits)) {}

  double ntt(double level) const { return level * n * log_n; }
  /// Digit decomposition: level*D digit polys, each lifted to `level` limbs
  /// and forward-transformed.
  double decompose(double level) const {
    return level * digits_per_prime * ntt(level);
  }
  /// Key inner product over the decomposed digits.
  double inner_product(double level) const {
    return level * digits_per_prime * level * n;
  }
  double key_switch(double level) const {
    return decompose(level) + inner_product(level) + ntt(level);
  }
  double mod_switch(double level, double parts) const {
    return parts * ntt(level);
  }
};

}  // namespace

SimResult simulate(const CircuitProfile& profile, const BgvParams& params,
                   const ModSwitchPolicy& policy, double band_low) {
  const NoiseEstimator est(params);
  const WorkModel wm(params);
  const std::size_t top = params.num_primes;

  SimResult r;
  r.min_budget = 1e9;
  r.min_output_budget = 1e9;
  bool ok = true;

  std::vector<NodeState> st(profile.tape.size());

  auto drop_once = [&](NodeState& s) {
    s.noise = est.mod_switch(s.noise, s.parts);
    s.level -= 1;
    r.work += wm.mod_switch(static_cast<double>(s.level),
                            static_cast<double>(s.parts));
    r.mod_switches += 1;
  };
  auto align_to = [&](NodeState& s, std::size_t target) {
    while (s.level > target) drop_once(s);
  };

  for (std::size_t i = 0; i < profile.tape.size(); ++i) {
    const TapeNode& node = profile.tape[i];
    NodeState s;
    // Operand levels are aligned exactly like the live match_levels /
    // mod_switch_to calls the evaluator issues before a binary op.
    NodeState* a = node.a >= 0 ? &st[static_cast<std::size_t>(node.a)]
                               : nullptr;
    NodeState* b = node.b >= 0 ? &st[static_cast<std::size_t>(node.b)]
                               : nullptr;
    if (a != nullptr && b != nullptr) {
      const std::size_t target = std::min(a->level, b->level);
      align_to(*a, target);
      align_to(*b, target);
    }
    const double lvl = a != nullptr ? static_cast<double>(a->level) : 0.0;

    switch (node.op) {
      case NoiseOp::kFresh:
        s.noise = est.fresh();
        s.level = top;
        r.work += 2.0 * wm.ntt(static_cast<double>(top));
        break;
      case NoiseOp::kAdd:
        s.noise = est.add(a->noise, b->noise);
        s.level = a->level;
        s.parts = std::max(a->parts, b->parts);
        r.work += s.parts * lvl * wm.n;
        break;
      case NoiseOp::kAddPlain:
        s.noise = est.add_plain(a->noise);
        s.level = a->level;
        s.parts = a->parts;
        r.work += wm.ntt(lvl);
        break;
      case NoiseOp::kAddScalar:
        s.noise = est.add_scalar(a->noise);
        s.level = a->level;
        s.parts = a->parts;
        r.work += lvl * wm.n;
        break;
      case NoiseOp::kMulScalar:
        // Deliberately worst-case (|scalar| <= t/2) rather than the recorded
        // value: the scalars are nonce-derived, and the search result must
        // stay feasible for every nonce, not just the profiled one.
        s.noise = est.mul_scalar(a->noise, params.t / 2);
        s.level = a->level;
        s.parts = a->parts;
        r.work += a->parts * lvl * wm.n;
        break;
      case NoiseOp::kMulPlain:
        s.noise = est.mul_plain(a->noise);
        s.level = a->level;
        s.parts = a->parts;
        r.work += a->parts * lvl * wm.n + wm.ntt(lvl);
        break;
      case NoiseOp::kMultiply:
        s.noise = est.multiply(a->noise, b->noise);
        s.level = a->level;
        s.parts = 3;
        r.work += 4.0 * lvl * wm.n;
        break;
      case NoiseOp::kRelinearize:
        s.noise = est.relinearize(a->noise, a->level);
        s.level = a->level;
        s.parts = 2;
        r.work += wm.key_switch(lvl);
        break;
      case NoiseOp::kRotate:
      case NoiseOp::kIngest:
        s.noise = est.rotate(a->noise, a->level);
        s.level = a->level;
        s.parts = 2;
        r.work += wm.key_switch(lvl);
        break;
      case NoiseOp::kFusedAffine:
        s.noise = est.fused_affine(a->noise, a->level, node.terms);
        s.level = a->level;
        s.parts = 2;
        // One shared hoist decomposition, then per-diagonal inner product +
        // fused accumulate + diagonal encode.
        r.work += wm.decompose(lvl) +
                  node.terms *
                      (wm.inner_product(lvl) + 2.0 * lvl * wm.n + wm.ntt(lvl));
        break;
    }

    // Greedy scheduler: drop while the switch is budget-free with `margin`
    // bits to spare — the same auto_drop_target policy as
    // Bgv::auto_switch_inplace.
    align_to(s, est.auto_drop_target(s.noise, s.level, s.parts,
                                     policy.margin));

    const double budget = est.budget(s.noise, s.level);
    r.min_budget = std::min(r.min_budget, budget);
    if (budget < 1.0) ok = false;  // bound says decryption may already fail
    st[i] = s;
  }

  for (const std::int32_t out : profile.outputs) {
    POE_ENSURE(out >= 0 && static_cast<std::size_t>(out) < st.size(),
               "profile output id out of range");
    NodeState s = st[static_cast<std::size_t>(out)];
    // Terminal output trim, mirroring the servers' trim_output_inplace:
    // surplus levels on a result leaving the server are spent down to the
    // band floor (they are pure waste — larger download, bigger q than the
    // circuit needs).
    align_to(s, est.trim_target(s.noise, s.level, s.parts, band_low));
    const double budget = est.budget(s.noise, s.level);
    r.min_output_budget = std::min(r.min_output_budget, budget);
    r.final_level = s.level;
    if (budget < band_low) ok = false;
  }
  if (profile.outputs.empty()) ok = false;
  r.feasible = ok;
  return r;
}

double max_log_q(std::size_t n, SecurityLevel level) {
  if (level == SecurityLevel::kDemo) {
    // Documented demo posture (EXPERIMENTS.md): the ceiling is the largest
    // modulus the legacy demo configs ever shipped (18 x 55-bit primes).
    // Right-sizing under it can only SHRINK q at fixed n — security is
    // monotonically no worse than the documented baseline.
    return 990.0;
  }
  // HE-standard-style maximum log2(q) at 128-bit classical security with a
  // ternary secret.
  switch (n) {
    case 1024:  return 27.0;
    case 2048:  return 54.0;
    case 4096:  return 109.0;
    case 8192:  return 218.0;
    case 16384: return 438.0;
    case 32768: return 881.0;
    default:    return 0.0;
  }
}

SearchResult search_params(const CircuitProfile& profile,
                           const SearchConstraints& c) {
  POE_ENSURE(!profile.tape.empty(), "cannot search an empty profile");
  SearchResult best;

  for (std::size_t n = 1024; n <= c.max_n; n *= 2) {
    if (n < c.min_n) continue;
    if ((c.t - 1) % (2 * n) != 0) continue;  // batch encoder needs 2n | t-1
    const double cap = max_log_q(n, c.security);

    // Smallest admissible prime width: the congruence step 2nt must fit
    // below 2^(prime_bits - 1) (bgv_prime_chain), and the chain generator
    // accepts 20..61 bits.
    const unsigned pb_min = std::max(
        20u, bit_width_u64(2 * static_cast<std::uint64_t>(n) * c.t) + 1);

    for (unsigned pb = pb_min; pb <= 61; ++pb) {
      if (2.0 * pb > cap) break;  // not even a 2-prime chain fits
      const unsigned db_max = std::min(pb, 40u);
      for (unsigned db = 4; db <= db_max; db += 2) {
        // Feasibility is monotone in the prime count (more modulus, same
        // circuit), so take the SMALLEST feasible chain for this shape —
        // it is also the cheapest.
        const auto np_cap = static_cast<std::size_t>(cap / pb);
        for (std::size_t np = 2; np <= std::min<std::size_t>(np_cap, 40);
             ++np) {
          BgvParams cand{.n = n,
                         .t = c.t,
                         .num_primes = np,
                         .prime_bits = pb,
                         .relin_digit_bits = db,
                         .seed = c.seed};
          const SimResult sim = simulate(profile, cand, c.policy, c.band_low);
          best.candidates_tried += 1;
          if (!sim.feasible) continue;
          const double log_q = static_cast<double>(np) * pb;
          const bool better =
              !best.found || sim.work < best.sim.work ||
              (sim.work == best.sim.work &&
               (log_q < best.log_q ||
                (log_q == best.log_q && db < best.params.relin_digit_bits)));
          if (better) {
            best.found = true;
            best.params = cand;
            best.sim = sim;
            best.log_q = log_q;
            best.security_cap = cap;
          }
          break;  // larger chains at this shape only cost more
        }
      }
    }
    // Every per-limb kernel scales with n (and the noise formulas only move
    // by log2(n)), so once any ring admits a feasible config no larger ring
    // can win the work comparison — stop at the smallest feasible n.
    if (best.found) break;
  }
  return best;
}

}  // namespace poe::fhe
