#include "fhe/poly.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace poe::fhe {

RnsPoly::RnsPoly(const RnsContext* ctx, std::size_t level, bool ntt_form)
    : ctx_(ctx), level_(level), ntt_form_(ntt_form) {
  POE_ENSURE(ctx != nullptr, "null context");
  POE_ENSURE(level >= 1 && level <= ctx->num_primes(), "bad level " << level);
  buf_ = ctx->exec().pool().acquire(level * ctx->n(), /*zero=*/true);
}

RnsPoly::RnsPoly(const RnsPoly& o)
    : ctx_(o.ctx_), level_(o.level_), ntt_form_(o.ntt_form_) {
  if (ctx_ != nullptr) {
    const std::size_t words = level_ * ctx_->n();
    buf_ = ctx_->exec().pool().acquire(words, /*zero=*/false);
    std::copy_n(o.buf_.data(), words, buf_.data());
    auto& c = ctx_->exec().counters();
    c.bump(c.bytes_copied, words * sizeof(std::uint64_t));
  }
}

RnsPoly& RnsPoly::operator=(const RnsPoly& o) {
  if (this == &o) return *this;
  ctx_ = o.ctx_;
  level_ = o.level_;
  ntt_form_ = o.ntt_form_;
  if (ctx_ == nullptr) {
    buf_.reset();
    return *this;
  }
  const std::size_t words = level_ * ctx_->n();
  // Reuse the slab in place when it is big enough; otherwise swap it for
  // one from the pool.
  if (buf_.size() < words) {
    buf_ = ctx_->exec().pool().acquire(words, /*zero=*/false);
  }
  std::copy_n(o.buf_.data(), words, buf_.data());
  auto& c = ctx_->exec().counters();
  c.bump(c.bytes_copied, words * sizeof(std::uint64_t));
  return *this;
}

RnsPoly& RnsPoly::reshape_uninit(const RnsContext* ctx, std::size_t level,
                                 bool ntt_form) {
  POE_ENSURE(ctx != nullptr, "null context");
  POE_ENSURE(level >= 1 && level <= ctx->num_primes(), "bad level " << level);
  const std::size_t words = level * ctx->n();
  // Same slab-reuse rule as copy assignment: an already-leased slab big
  // enough for the request never goes back to the pool, so a warmed
  // scratch poly reshapes with zero pool traffic.
  if (ctx_ != ctx || buf_.size() < words) {
    buf_ = ctx->exec().pool().acquire(words, /*zero=*/false);
  }
  ctx_ = ctx;
  level_ = level;
  ntt_form_ = ntt_form;
  return *this;
}

void RnsPoly::set_zero() {
  if (ctx_ == nullptr) return;
  std::fill_n(buf_.data(), level_ * ctx_->n(), std::uint64_t{0});
}

void RnsPoly::check_compatible(const RnsPoly& o) const {
  POE_ENSURE(ctx_ == o.ctx_, "polynomials from different contexts");
  POE_ENSURE(level_ == o.level_, "level mismatch: " << level_ << " vs "
                                                    << o.level_);
  POE_ENSURE(ntt_form_ == o.ntt_form_, "representation mismatch");
}

void RnsPoly::check_operand(const RnsPoly& o) const {
  POE_ENSURE(ctx_ == o.ctx_, "polynomials from different contexts");
  POE_ENSURE(level_ <= o.level_, "operand level " << o.level_
                                                  << " below " << level_);
  POE_ENSURE(ntt_form_ == o.ntt_form_, "representation mismatch");
}

void RnsPoly::to_ntt() {
  POE_ENSURE(!ntt_form_, "already in NTT form");
  const auto& k = ctx_->exec().kernels();
  for (std::size_t i = 0; i < level_; ++i) ctx_->ntt(i).forward(rns(i), k);
  auto& c = ctx_->exec().counters();
  c.bump(c.ntt_forward, level_);
  ntt_form_ = true;
}

void RnsPoly::from_ntt() {
  POE_ENSURE(ntt_form_, "already in coefficient form");
  const auto& k = ctx_->exec().kernels();
  for (std::size_t i = 0; i < level_; ++i) ctx_->ntt(i).inverse(rns(i), k);
  auto& c = ctx_->exec().counters();
  c.bump(c.ntt_inverse, level_);
  ntt_form_ = false;
}

RnsPoly& RnsPoly::add_inplace(const RnsPoly& o) {
  check_compatible(o);
  const auto& k = ctx_->exec().kernels();
  for (std::size_t i = 0; i < level_; ++i) {
    auto dst = rns(i);
    k.add(dst.data(), o.rns(i).data(), dst.size(), ctx_->mod(i));
  }
  return *this;
}

RnsPoly& RnsPoly::sub_inplace(const RnsPoly& o) {
  check_compatible(o);
  const auto& k = ctx_->exec().kernels();
  for (std::size_t i = 0; i < level_; ++i) {
    auto dst = rns(i);
    k.sub(dst.data(), o.rns(i).data(), dst.size(), ctx_->mod(i));
  }
  return *this;
}

RnsPoly& RnsPoly::negate_inplace() {
  for (std::size_t i = 0; i < level_; ++i) {
    const auto& m = ctx_->mod(i);
    for (auto& x : rns(i)) x = m.neg(x);
  }
  return *this;
}

RnsPoly& RnsPoly::mul_inplace(const RnsPoly& o) {
  check_operand(o);
  POE_ENSURE(ntt_form_, "pointwise multiply requires NTT form");
  const auto& k = ctx_->exec().kernels();
  for (std::size_t i = 0; i < level_; ++i) {
    auto dst = rns(i);
    k.mul(dst.data(), o.rns(i).data(), dst.size(), ctx_->mod(i));
  }
  return *this;
}

RnsPoly& RnsPoly::add_mul_inplace(const RnsPoly& a, const RnsPoly& b) {
  check_operand(a);
  check_operand(b);
  POE_ENSURE(ntt_form_, "pointwise multiply requires NTT form");
  const auto& k = ctx_->exec().kernels();
  for (std::size_t i = 0; i < level_; ++i) {
    auto dst = rns(i);
    k.add_mul(dst.data(), a.rns(i).data(), b.rns(i).data(), dst.size(),
              ctx_->mod(i));
  }
  return *this;
}

RnsPoly& RnsPoly::mul_scalar_inplace(std::uint64_t scalar_mod_t) {
  const std::uint64_t t = ctx_->t();
  POE_ENSURE(scalar_mod_t < t, "scalar out of plaintext range");
  // Centered lift keeps the noise growth proportional to |scalar|.
  const bool negative = scalar_mod_t > t / 2;
  const std::uint64_t magnitude = negative ? t - scalar_mod_t : scalar_mod_t;
  const auto& k = ctx_->exec().kernels();
  for (std::size_t i = 0; i < level_; ++i) {
    const auto& m = ctx_->mod(i);
    const std::uint64_t s =
        negative ? m.neg(magnitude % m.value()) : magnitude % m.value();
    auto dst = rns(i);
    // Broadcast scalar multiply via Shoup — exact residues, so identical
    // to the Barrett formulation it replaces.
    k.mul_shoup(dst.data(), dst.data(), dst.size(), s,
                kernels::shoup_precompute(s, m.value()), m.value());
  }
  return *this;
}

RnsPoly RnsPoly::apply_automorphism(std::uint64_t g) const {
  POE_ENSURE(!ntt_form_, "automorphism operates on coefficient form");
  POE_ENSURE(g % 2 == 1, "Galois element must be odd");
  const std::size_t n = ctx_->n();
  RnsPoly out(ctx_, level_, false);
  for (std::size_t i = 0; i < level_; ++i) {
    const auto& m = ctx_->mod(i);
    const auto src = rns(i);
    auto dst = out.rns(i);
    for (std::size_t idx = 0; idx < n; ++idx) {
      const std::uint64_t j = (idx * g) % (2 * n);
      if (j < n) {
        dst[j] = src[idx];
      } else {
        dst[j - n] = m.neg(src[idx]);
      }
    }
  }
  return out;
}

RnsPoly RnsPoly::apply_automorphism_ntt(std::uint64_t g) const {
  POE_ENSURE(ntt_form_, "apply_automorphism_ntt operates on NTT form");
  const std::size_t n = ctx_->n();
  const auto perm = ctx_->galois_ntt_perm(g);
  RnsPoly out = uninit(ctx_, level_, true);
  const auto& k = ctx_->exec().kernels();
  for (std::size_t i = 0; i < level_; ++i) {
    k.permute(out.rns(i).data(), rns(i).data(), perm.data(), n);
  }
  return out;
}

void RnsPoly::drop_last_component() {
  POE_ENSURE(level_ >= 2, "cannot drop below one prime");
  --level_;
}

RnsPoly RnsPoly::from_plaintext(const RnsContext* ctx, std::size_t level,
                                std::span<const std::uint64_t> coeffs_mod_t,
                                bool to_ntt_form) {
  POE_ENSURE(coeffs_mod_t.size() <= ctx->n(), "plaintext too long");
  RnsPoly p(ctx, level, false);
  const std::uint64_t t = ctx->t();
  for (std::size_t j = 0; j < coeffs_mod_t.size(); ++j) {
    const std::uint64_t c = coeffs_mod_t[j];
    POE_ENSURE(c < t, "plaintext coefficient out of range");
    const bool negative = c > t / 2;
    const std::uint64_t magnitude = negative ? t - c : c;
    for (std::size_t i = 0; i < level; ++i) {
      const auto& m = ctx->mod(i);
      p.rns(i)[j] = negative ? m.neg(magnitude) : magnitude;
    }
  }
  if (to_ntt_form) p.to_ntt();
  return p;
}

RnsPoly RnsPoly::sample_uniform(const RnsContext* ctx, std::size_t level,
                                Xoshiro256& rng, bool ntt_form) {
  RnsPoly p(ctx, level, ntt_form);
  for (std::size_t i = 0; i < level; ++i) {
    const std::uint64_t q = ctx->prime(i);
    for (auto& x : p.rns(i)) x = rng.below(q);
  }
  return p;
}

RnsPoly RnsPoly::from_signed_coeffs(const RnsContext* ctx, std::size_t level,
                                    std::span<const std::int64_t> coeffs) {
  POE_ENSURE(coeffs.size() == ctx->n(), "size mismatch");
  RnsPoly p(ctx, level, false);
  for (std::size_t i = 0; i < level; ++i) {
    const auto& m = ctx->mod(i);
    auto dst = p.rns(i);
    for (std::size_t j = 0; j < coeffs.size(); ++j) {
      const std::int64_t c = coeffs[j];
      dst[j] = c >= 0 ? static_cast<std::uint64_t>(c) % m.value()
                      : m.neg(static_cast<std::uint64_t>(-c) % m.value());
    }
  }
  return p;
}

RnsPoly RnsPoly::sample_ternary(const RnsContext* ctx, std::size_t level,
                                Xoshiro256& rng) {
  std::vector<std::int64_t> coeffs(ctx->n());
  for (auto& c : coeffs) c = static_cast<std::int64_t>(rng.below(3)) - 1;
  return from_signed_coeffs(ctx, level, coeffs);
}

RnsPoly RnsPoly::uninit(const RnsContext* ctx, std::size_t level,
                        bool ntt_form) {
  RnsPoly p;
  p.ctx_ = ctx;
  p.level_ = level;
  p.ntt_form_ = ntt_form;
  POE_ENSURE(ctx != nullptr, "null context");
  POE_ENSURE(level >= 1 && level <= ctx->num_primes(), "bad level " << level);
  p.buf_ = ctx->exec().pool().acquire(level * ctx->n(), /*zero=*/false);
  return p;
}

RnsPoly RnsPoly::sample_noise(const RnsContext* ctx, std::size_t level,
                              Xoshiro256& rng) {
  // Centered binomial with eta = 2: sum of 2 bits minus sum of 2 bits,
  // values in [-2, 2], variance 1.
  std::vector<std::int64_t> coeffs(ctx->n());
  for (auto& c : coeffs) {
    const std::uint64_t bits = rng.next();
    const int a = static_cast<int>(bits & 1) + static_cast<int>((bits >> 1) & 1);
    const int b =
        static_cast<int>((bits >> 2) & 1) + static_cast<int>((bits >> 3) & 1);
    c = a - b;
  }
  return from_signed_coeffs(ctx, level, coeffs);
}

}  // namespace poe::fhe
