// RNS-BGV: the FHE substrate used by the HHE server to evaluate PASTA's
// decryption circuit homomorphically (paper Fig. 1).
//
// Scheme summary (plaintext modulus t, ciphertext modulus q = prod q_i):
//   sk:  ternary s.            pk: (b = -(a s) + t e, a), a uniform.
//   enc: c = (b u + t e0 + m, a u + t e1)   with ternary u.
//   dec: m = [[c0 + c1 s (+ c2 s^2)]_q]_t   (centered reduction mod q).
//   mul: tensor product; relinearisation via per-prime, per-digit
//        key-switching keys (the RNS idempotent q~_j has image delta_ij, so
//        one key set generated at the top level restricts to every level).
//   modulus switching: divide by the last prime with the t-divisibility
//        correction delta = t [c t^{-1}]_{q_last} (centered), preserving the
//        plaintext while shrinking noise.
//
// This is an exact-arithmetic BGV sufficient for transciphering; it is not a
// hardened implementation (no constant-time sampling, seeded randomness) —
// see DESIGN.md for the substitution rationale.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "fhe/poly.hpp"

namespace poe::fhe {

struct BgvParams {
  std::size_t n = 4096;
  std::uint64_t t = 65537;
  std::size_t num_primes = 10;
  unsigned prime_bits = 45;
  unsigned relin_digit_bits = 20;
  std::uint64_t seed = 1;  ///< deterministic randomness for reproducibility

  /// Tiny parameters for fast unit tests (depth ~2).
  static BgvParams toy();
  /// Parameters deep enough for homomorphic PASTA-4 decryption. NOTE:
  /// demo-grade security (documented in EXPERIMENTS.md); use secure() for a
  /// production-sized ring.
  static BgvParams demo();
  /// Ring large enough to support the demo modulus at a conservative
  /// security margin (slower; used by the opt-in e2e bench).
  static BgvParams secure();
};

struct Plaintext {
  std::vector<std::uint64_t> coeffs;  ///< mod t, length <= n
};

struct Ciphertext {
  std::vector<RnsPoly> parts;  ///< NTT form, 2 (fresh) or 3 (post-tensor)
  std::size_t level = 0;       ///< active primes
  /// Static log2 bound on the invariant noise |c0 + c1 s (+ c2 s^2)|,
  /// maintained by every Bgv operation (NoiseEstimator formulas). The
  /// server-side analogue of the secret-key-measured noise_budget_bits; the
  /// automatic mod-switch scheduler consults it.
  double noise_bits = 0.0;
  /// Node id on the active NoiseTape (circuit-profile recording); -1 when
  /// not recorded. Only meaningful for ciphertexts produced while the
  /// creating Bgv's recording mode is on.
  std::int32_t trace_id = -1;

  std::size_t size() const { return parts.size(); }
};

/// A key-switching key: for each RNS prime j and digit d, a pair
/// (b, a) with b = -(a s) + t e + B^d q~_j target. Switches a ciphertext
/// component known to multiply `target` onto the secret s. Generated at the
/// top level; restricts to any lower level (the RNS idempotent q~_j has the
/// level-independent image delta_ij).
struct KswKey {
  struct DigitKey {
    RnsPoly b, a;  // top level, NTT form
  };
  std::vector<std::vector<DigitKey>> digits;  // [prime][digit]
};

/// Rotation keys: column-rotation step -> key for tau_{3^step}(s); step -1
/// denotes the row swap (tau_{2n-1}, the conjugation). Each key's NTT-form
/// components are stored tau^-1-permuted (see make_galois_key) so rotations
/// run the key inner product contiguously and permute only the outputs.
struct GaloisKeys {
  std::map<long, KswKey> keys;
  static constexpr long kRowSwap = -1;
};

/// The reusable (expensive) half of a rotation — Halevi–Shoup hoisting. The
/// digit decomposition of c1 (digit extraction + one forward NTT per digit)
/// dominates rotation cost; it is also rotation-independent: the per-digit
/// scale factors B^d q~_j are integers, hence fixed by every automorphism,
/// so tau(c1) = sum_d tau(digit_d) * B^d q~_j for ANY tau. Decompose once
/// with Bgv::hoist, then serve each step with Bgv::rotate_hoisted, which
/// only permutes the already-NTT digits and closes the key inner product.
struct HoistedCt {
  RnsPoly c0;                   ///< NTT form, at `level`
  std::vector<RnsPoly> digits;  ///< NTT form, flattened over (prime, digit)
  /// digit_of[w] = (prime j, digit d) identifying digits[w] and the matching
  /// key-switching key entry.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> digit_of;
  std::size_t level = 0;
  double noise_bits = 0.0;     ///< carried over from the hoisted ciphertext
  std::int32_t trace_id = -1;  ///< carried over (profile recording)
};

class NoiseTape;  // fhe/param_search.hpp

class Bgv {
 public:
  explicit Bgv(const BgvParams& params);
  /// Same, but pinned to a caller-owned ExecContext (nullptr = the
  /// process-wide one). Tests use this to run otherwise-identical schemes
  /// on different kernel backends side by side.
  Bgv(const BgvParams& params, ExecContext* exec);

  const BgvParams& params() const { return params_; }
  const RnsContext& rns() const { return ctx_; }
  std::size_t top_level() const { return ctx_.num_primes(); }

  // --- Encryption / decryption.
  Ciphertext encrypt(const Plaintext& pt) const;
  Plaintext decrypt(const Ciphertext& ct) const;

  // --- Homomorphic operations (operands must share a level; use
  // --- match_levels / mod_switch_to to align).
  void add_inplace(Ciphertext& a, const Ciphertext& b) const;
  void sub_inplace(Ciphertext& a, const Ciphertext& b) const;
  void negate_inplace(Ciphertext& a) const;
  void add_plain_inplace(Ciphertext& a, const Plaintext& pt) const;
  void sub_plain_inplace(Ciphertext& a, const Plaintext& pt) const;
  /// Multiply by the plaintext polynomial (NTT product).
  void mul_plain_inplace(Ciphertext& a, const Plaintext& pt) const;
  /// Multiply by an integer constant mod t (no NTT, cheap).
  void mul_scalar_inplace(Ciphertext& a, std::uint64_t scalar) const;
  /// Add an integer constant mod t.
  void add_scalar_inplace(Ciphertext& a, std::uint64_t scalar) const;

  /// Tensor product; result has 3 parts until relinearised.
  Ciphertext multiply(const Ciphertext& a, const Ciphertext& b) const;
  /// multiply + relinearise + one modulus switch (the common idiom).
  Ciphertext multiply_relin(const Ciphertext& a, const Ciphertext& b) const;
  void relinearize_inplace(Ciphertext& a) const;

  // --- Slot rotations (for SIMD/batched evaluation).
  /// Keys for the given column-rotation steps (see fhe/galois.hpp for the
  /// slot-grid semantics).
  GaloisKeys make_rotation_keys(const std::vector<long>& steps) const;
  /// new(row, col) = old(row, col + step): applies tau_{3^step} and
  /// key-switches back to s. Requires a relinearised (2-part) ciphertext.
  void rotate_columns_inplace(Ciphertext& a, long step,
                              const GaloisKeys& keys) const;
  /// Swap the two slot rows (tau_{2n-1}); requires a key made with
  /// make_rotation_keys including GaloisKeys::kRowSwap.
  void swap_rows_inplace(Ciphertext& a, const GaloisKeys& keys) const;

  /// Digit-decompose a 2-part ciphertext once, so that any number of
  /// rotations of it can be served by rotate_hoisted at a fraction of the
  /// usual cost. NOTE: a hoisted rotation is a different (equally valid)
  /// encryption of the rotated plaintext than rotate_columns_inplace
  /// produces — digit extraction does not commute with the automorphism's
  /// coefficient sign flips — so compare decryptions, not ciphertext bits.
  HoistedCt hoist(const Ciphertext& ct) const;
  /// Rotated copy from a hoisted decomposition (step != 0 mod n/2): one NTT
  /// slot permutation of c0 + a permuted key inner product over the shared
  /// digits. No forward NTTs at all.
  Ciphertext rotate_hoisted(const HoistedCt& hoisted, long step,
                            const GaloisKeys& keys) const;
  /// Allocation-free variant of rotate_hoisted: the key inner product runs
  /// in overwrite mode into a leased per-evaluator HoistScratch, and the
  /// closing automorphism is a fused permute(-add) straight into `out`,
  /// whose slabs are reshaped in place — a warmed-up diagonal loop touches
  /// the pool zero times and copies zero bytes. Bit-identical to
  /// rotate_hoisted (the preserved allocating reference): both compute the
  /// exact residues reduce128(c0 + sum) == add(c0, reduce128(sum)), then
  /// the same slot permutation. `out` may be empty or any previous result;
  /// it must not alias a live operand. Thread-safe: concurrent callers
  /// lease distinct scratches.
  void rotate_hoisted_into(const HoistedCt& hoisted, long step,
                           const GaloisKeys& keys, Ciphertext& out) const;

  // --- Cross-domain ingest (multi-tenant serving).
  /// Key-switching key that moves a 2-part ciphertext encrypted under
  /// `tenant`'s secret onto THIS evaluator's secret ("key-switch on
  /// ingest"). Both instances must share the ring exactly (n and the RNS
  /// prime chain); the plaintext modulus t must match too. In the real
  /// protocol the tenant derives this from the evaluator's public key-switch
  /// material; here the tenant Bgv carries its secret, so the helper reads
  /// it directly — the same trust shape as decrypt living on Bgv.
  KswKey make_ingest_key(const Bgv& tenant) const;
  /// Re-encrypt `ct` (2 parts, any level) from the tenant's domain into this
  /// evaluator's domain without decrypting: the result decrypts under THIS
  /// secret. Costs one key switch of noise; the plaintext is unchanged.
  Ciphertext ingest_switch(const Ciphertext& ct, const KswKey& ingest_key)
      const;

  /// Drop the last active prime (noise /= q_last).
  void mod_switch_inplace(Ciphertext& a) const;
  void mod_switch_to(Ciphertext& a, std::size_t level) const;
  /// Bring both to the lower of the two levels.
  void match_levels(Ciphertext& a, Ciphertext& b) const;

  // --- Diagnostics.
  /// log2 of the remaining noise budget (decryption fails below ~0).
  double noise_budget_bits(const Ciphertext& ct) const;
  /// Budget implied by the tracked static bound (ct.noise_bits) — no secret
  /// key involved, so the server can report it. Sound lower bound on
  /// noise_budget_bits (property-tested).
  double predicted_budget_bits(const Ciphertext& ct) const;

  // --- Noise-aware scheduling / circuit profiling.
  /// Automatic mod-switch scheduler: drop primes (one fused mod_switch_to)
  /// while the tracked bound says each switch sacrifices at most `margin`
  /// bits to the rounding floor — i.e. noise_bits - prime_bits >= floor -
  /// margin, where the floor accounts for the part count (a 3-part tensor
  /// switch pays an extra ||s^2||_1 on its rounding term). Replaces
  /// hand-placed switches; simulate() in fhe/param_search.hpp replays the
  /// identical policy (NoiseEstimator::auto_drop_target).
  void auto_switch_inplace(Ciphertext& a, double margin = 2.0) const;
  /// Terminal output trim: drop primes while the tracked bound keeps at
  /// least `keep_bits` of budget at the reduced level. Applied once to
  /// ciphertexts leaving the server (no further noise-heavy ops), where
  /// surplus levels are pure waste (NoiseEstimator::trim_target).
  void trim_output_inplace(Ciphertext& a, double keep_bits) const;
  /// Start/stop appending this evaluator's operations to `tape` (SSA node
  /// per op; ciphertexts carry their node id in trace_id). Operands created
  /// before recording started appear as fresh-encryption leaves. Modulus
  /// switches are deliberately NOT recorded — the parameter-search replay
  /// schedules its own.
  void begin_recording(NoiseTape* tape) const;
  void end_recording() const;
  /// Accounting hooks for server loops that accumulate on raw RnsPoly parts
  /// (bypassing the Ciphertext API). note_fused_affine: `acc` holds `terms`
  /// plaintext-diagonal x rotation products of `src` (all rotations served
  /// from one hoisted decomposition of src). note_mask_mul: `a` was
  /// multiplied part-wise by an encoded plaintext mask.
  void note_fused_affine(Ciphertext& acc, const Ciphertext& src,
                         std::size_t terms) const;
  void note_mask_mul(Ciphertext& a) const;

 private:
  /// Append one node to the active tape (no-op when not recording);
  /// returns the node id (-1 when not recording).
  std::int32_t record_node(std::uint8_t op, std::int32_t a, std::int32_t b,
                           std::uint64_t scalar = 0,
                           std::uint32_t terms = 0) const;
  /// Operand id for recording: the ciphertext's own node if it has one, a
  /// conservative fresh leaf otherwise.
  std::int32_t record_operand(std::int32_t trace_id) const;

  /// c0 + c1 s (+ c2 s^2) in coefficient form.
  RnsPoly decrypt_core(const Ciphertext& ct) const;
  /// t * fresh-noise polynomial in NTT form at the top level.
  RnsPoly sample_t_noise() const;
  /// Key-switching key for an arbitrary target polynomial (NTT, top level).
  KswKey make_ksw_key(const RnsPoly& target_ntt) const;
  /// `s_coeff` is the secret in coefficient form (callers generating many
  /// keys convert it once).
  KswKey make_galois_key(std::uint64_t galois_element,
                         const RnsPoly& s_coeff) const;
  void apply_galois_inplace(Ciphertext& a, std::uint64_t galois_element,
                            const KswKey& key) const;
  /// parts[0] += sum_d digit_d(input) * b_d, parts[1] += ... * a_d, with
  /// `input` in coefficient form at the ciphertext's level.
  void apply_ksw(Ciphertext& ct, const RnsPoly& input_coeff,
                 const KswKey& key) const;
  /// Digit decomposition of `input_coeff`: digits[w] is the w-th digit
  /// polynomial lifted to all active primes and forward-transformed;
  /// which[w] = (prime, digit) names the matching key entry.
  void decompose(const RnsPoly& input_coeff, std::vector<RnsPoly>& digits,
                 std::vector<std::pair<std::uint32_t, std::uint32_t>>& which)
      const;
  /// The key inner product: parts[0/1] += sum_w perm(digits[w]) * key_w,
  /// accumulated lazily in 128 bits (one Barrett reduction per slot instead
  /// of per digit) and parallelised over RNS components. `perm` (nullable)
  /// applies an NTT-slot permutation to the digits on the fly — this is how
  /// a hoisted rotation rotates the shared decomposition for free.
  void ksw_accumulate(
      Ciphertext& ct, std::span<const RnsPoly> digits,
      std::span<const std::pair<std::uint32_t, std::uint32_t>> which,
      const KswKey& key, const std::uint32_t* perm) const;
  /// Poly-level core of the above. `acc0`/`acc1` select accumulate vs
  /// overwrite mode per output (overwrite never reads the destination, so
  /// reshaped-uninitialised scratch is a valid target).
  void ksw_accumulate(
      RnsPoly& out0, RnsPoly& out1, std::size_t level,
      std::span<const RnsPoly> digits,
      std::span<const std::pair<std::uint32_t, std::uint32_t>> which,
      const KswKey& key, const std::uint32_t* perm, bool acc0,
      bool acc1) const;

  /// Reusable rotation scratch: the overwrite-mode key-switch outputs that
  /// rotate_hoisted_into flushes into before the closing permute. Leased
  /// (never shared) per call; the bank grows to the peak number of
  /// concurrent rotations and then stops touching the pool.
  struct HoistScratch {
    RnsPoly acc0, acc1;
    std::atomic<bool> in_use{false};
#ifndef NDEBUG
    std::atomic<int> active{0};  ///< concurrent-aliasing detector
#endif
  };
  class ScratchLease;
  HoistScratch& lease_hoist_scratch() const;
  void release_hoist_scratch(HoistScratch& sc) const noexcept;

  BgvParams params_;
  RnsContext ctx_;
  mutable Xoshiro256 rng_;
  RnsPoly s_ntt_;    // top level
  RnsPoly s_sq_ntt_;
  RnsPoly pk_a_;     // NTT
  RnsPoly pk_b_;
  KswKey rlk_;
  mutable std::mutex hoist_mu_;  // guards the scratch bank's vector only
  mutable std::vector<std::unique_ptr<HoistScratch>> hoist_scratch_;
  /// Active circuit-profile recorder (nullptr = off). Atomic so the
  /// parallel_for server loops read it without tearing; appends themselves
  /// are serialized inside NoiseTape.
  mutable std::atomic<NoiseTape*> tape_{nullptr};
};

/// Restrict an NTT-form polynomial to its first `level` RNS components.
RnsPoly restrict_to_level(const RnsPoly& p, std::size_t level);

/// Galois element 3^step mod 2n for a column rotation by `step` (normalised
/// to [0, n/2)). One modpow — shared by key generation, rotation, and the
/// slot layout, replacing the former O(step) repeated-multiplication loops.
std::uint64_t galois_elt_for_step(std::size_t n, long step);

}  // namespace poe::fhe
