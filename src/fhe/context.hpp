// RNS context for the BGV substrate: the prime chain, per-prime NTTs, and
// the CRT / modulus-switching precomputations for every level.
//
// A ciphertext at *level* L uses the first L primes of the chain
// (q = q_0 * ... * q_{L-1}); modulus switching drops the last active prime.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/bignum.hpp"
#include "common/exec_context.hpp"
#include "fhe/ntt.hpp"
#include "modular/modulus.hpp"

namespace poe::fhe {

/// Precomputations for one level (L = number of active primes).
struct LevelData {
  std::size_t num_primes = 0;
  UBig q;       ///< product of active primes
  UBig q_half;  ///< floor(q / 2), centering threshold
  std::vector<UBig> q_hat;                ///< q / q_i
  std::vector<std::uint64_t> q_hat_inv;   ///< (q/q_i)^{-1} mod q_i
  /// q_tilde[j][i] = (q_hat[j] * q_hat_inv[j]) mod q_i — the CRT idempotent
  /// used by relinearisation key generation.
  std::vector<std::vector<std::uint64_t>> q_tilde;
  /// Modulus switching from this level (dropping q_{L-1}):
  std::vector<std::uint64_t> qlast_inv;  ///< q_{L-1}^{-1} mod q_i, i < L-1
  std::uint64_t t_inv_mod_qlast = 0;     ///< t^{-1} mod q_{L-1}
};

class RnsContext {
 public:
  /// n: ring degree (power of two); t: plaintext modulus; primes: the RNS
  /// chain, each ≡ 1 (mod 2n) and coprime to t. Polynomials built on this
  /// context draw their slabs from (and report their operations to) `exec`;
  /// nullptr means the process-wide ExecContext::global().
  RnsContext(std::size_t n, std::uint64_t t, std::vector<std::uint64_t> primes,
             ExecContext* exec = nullptr);

  /// Execution resources (slab pool, thread pool, op counters).
  ExecContext& exec() const { return *exec_; }

  std::size_t n() const { return n_; }
  std::size_t num_primes() const { return primes_.size(); }
  std::uint64_t prime(std::size_t i) const { return primes_[i]; }
  const mod::Modulus& mod(std::size_t i) const { return mods_[i]; }
  const Ntt& ntt(std::size_t i) const { return *ntts_[i]; }
  std::uint64_t t() const { return t_; }
  const mod::Modulus& t_mod() const { return t_mod_; }

  /// Level data for L active primes (1 <= L <= num_primes).
  const LevelData& level(std::size_t num_active) const;

  /// The Galois automorphism X -> X^g (g odd, taken mod 2n) as a permutation
  /// of NTT slots: applying tau_g to a polynomial in evaluation form is
  /// out[i] = in[perm[i]], identically in every RNS component — the
  /// negacyclic NTT evaluates at the odd powers of a 2n-th root of unity, so
  /// tau_g only relabels which root each slot holds, and the butterfly
  /// ordering of those roots is structural (prime-independent). Permutations
  /// are built lazily, cached per g, and immutable once published, so the
  /// returned span stays valid for the context's lifetime and calls are
  /// thread-safe.
  std::span<const std::uint32_t> galois_ntt_perm(std::uint64_t g) const;

 private:
  /// Maps NTT slot i to the exponent e_i with slot value f(psi^{e_i});
  /// discovered empirically by transforming the monomial X and taking
  /// discrete logs base psi (the same trick SlotLayout uses for the
  /// plaintext slot order). Caller must hold perm_mu_.
  void build_exponent_table() const;

  ExecContext* exec_;
  std::size_t n_;
  std::uint64_t t_;
  mod::Modulus t_mod_;
  std::vector<std::uint64_t> primes_;
  std::vector<mod::Modulus> mods_;
  std::vector<std::unique_ptr<Ntt>> ntts_;
  std::vector<LevelData> levels_;  // index L-1

  mutable std::mutex perm_mu_;
  mutable std::vector<std::uint32_t> ntt_exponent_;       // slot -> exponent
  mutable std::vector<std::uint32_t> index_of_exponent_;  // exponent -> slot
  mutable std::map<std::uint64_t, std::vector<std::uint32_t>> galois_perms_;
};

}  // namespace poe::fhe
