// Keccak-f[1600] permutation (FIPS 202). The 1600-bit state is 25 lanes of
// 64 bits, indexed state[x + 5*y].
#pragma once

#include <array>
#include <cstdint>

namespace poe::keccak {

inline constexpr int kNumRounds = 24;

using State = std::array<std::uint64_t, 25>;

/// Apply all 24 rounds of Keccak-f[1600] in place.
void f1600(State& state);

/// Apply a single round (round index in [0, 24)). Exposed so the hardware
/// model can step the permutation cycle by cycle.
void f1600_round(State& state, int round);

}  // namespace poe::keccak
