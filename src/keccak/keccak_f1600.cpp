#include "keccak/keccak_f1600.hpp"

#include "common/bits.hpp"

namespace poe::keccak {

namespace {

constexpr std::uint64_t kRoundConstants[kNumRounds] = {
    0x0000000000000001ull, 0x0000000000008082ull, 0x800000000000808aull,
    0x8000000080008000ull, 0x000000000000808bull, 0x0000000080000001ull,
    0x8000000080008081ull, 0x8000000000008009ull, 0x000000000000008aull,
    0x0000000000000088ull, 0x0000000080008009ull, 0x000000008000000aull,
    0x000000008000808bull, 0x800000000000008bull, 0x8000000000008089ull,
    0x8000000000008003ull, 0x8000000000008002ull, 0x8000000000000080ull,
    0x000000000000800aull, 0x800000008000000aull, 0x8000000080008081ull,
    0x8000000000008080ull, 0x0000000080000001ull, 0x8000000080008008ull,
};

// rho rotation offsets, indexed x + 5*y.
constexpr unsigned kRho[25] = {
    0,  1,  62, 28, 27,  //
    36, 44, 6,  55, 20,  //
    3,  10, 43, 25, 39,  //
    41, 45, 15, 21, 8,   //
    18, 2,  61, 56, 14,
};

}  // namespace

void f1600_round(State& a, int round) {
  // theta
  std::uint64_t c[5];
  for (int x = 0; x < 5; ++x)
    c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
  std::uint64_t d[5];
  for (int x = 0; x < 5; ++x)
    d[x] = c[(x + 4) % 5] ^ rotl64(c[(x + 1) % 5], 1);
  for (int i = 0; i < 25; ++i) a[i] ^= d[i % 5];

  // rho + pi
  State b;
  for (int x = 0; x < 5; ++x) {
    for (int y = 0; y < 5; ++y) {
      // pi: B[y, 2x+3y] = rot(A[x, y])
      b[y + 5 * ((2 * x + 3 * y) % 5)] = rotl64(a[x + 5 * y], kRho[x + 5 * y]);
    }
  }

  // chi
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) {
      a[x + 5 * y] =
          b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
    }
  }

  // iota
  a[0] ^= kRoundConstants[round];
}

void f1600(State& state) {
  for (int r = 0; r < kNumRounds; ++r) f1600_round(state, r);
}

}  // namespace poe::keccak
