#include "keccak/shake.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace poe::keccak {

Shake::Shake(std::size_t rate_bytes) : rate_(rate_bytes) {
  POE_ENSURE(rate_bytes > 0 && rate_bytes < 200 && rate_bytes % 8 == 0,
             "invalid sponge rate " << rate_bytes);
}

void Shake::permute() {
  f1600(state_);
  ++permutation_count_;
}

void Shake::absorb(std::span<const std::uint8_t> data) {
  POE_ENSURE(!squeezing_, "absorb after squeeze is not allowed");
  for (std::uint8_t byte : data) {
    state_[offset_ / 8] ^= static_cast<std::uint64_t>(byte)
                           << (8 * (offset_ % 8));
    if (++offset_ == rate_) {
      permute();
      offset_ = 0;
    }
  }
}

void Shake::pad_and_switch_to_squeeze() {
  // Domain separation byte for SHAKE (0x1F) and final bit of pad10*1.
  state_[offset_ / 8] ^= 0x1Full << (8 * (offset_ % 8));
  state_[(rate_ - 1) / 8] ^= 0x80ull << (8 * ((rate_ - 1) % 8));
  permute();
  offset_ = 0;
  squeezing_ = true;
}

void Shake::squeeze(std::span<std::uint8_t> out) {
  if (!squeezing_) pad_and_switch_to_squeeze();
  for (auto& byte : out) {
    if (offset_ == rate_) {
      permute();
      offset_ = 0;
    }
    byte = static_cast<std::uint8_t>(state_[offset_ / 8] >>
                                     (8 * (offset_ % 8)));
    ++offset_;
  }
}

std::uint64_t Shake::squeeze_u64() {
  std::uint8_t bytes[8];
  squeeze(bytes);
  return load_le64(bytes);
}

std::vector<std::uint8_t> shake128(std::span<const std::uint8_t> input,
                                   std::size_t out_len) {
  Shake xof = Shake::shake128();
  xof.absorb(input);
  std::vector<std::uint8_t> out(out_len);
  xof.squeeze(out);
  return out;
}

std::array<std::uint8_t, 32> sha3_256(std::span<const std::uint8_t> input) {
  // SHA3-256: rate 136 bytes, domain separation 0x06 (vs SHAKE's 0x1F).
  State state{};
  std::size_t offset = 0;
  const std::size_t rate = 136;
  auto absorb_byte = [&](std::uint8_t byte) {
    state[offset / 8] ^= static_cast<std::uint64_t>(byte)
                         << (8 * (offset % 8));
    if (++offset == rate) {
      f1600(state);
      offset = 0;
    }
  };
  for (std::uint8_t b : input) absorb_byte(b);
  state[offset / 8] ^= 0x06ull << (8 * (offset % 8));
  state[(rate - 1) / 8] ^= 0x80ull << (8 * ((rate - 1) % 8));
  f1600(state);

  std::array<std::uint8_t, 32> out{};
  for (std::size_t i = 0; i < 32; ++i) {
    out[i] = static_cast<std::uint8_t>(state[i / 8] >> (8 * (i % 8)));
  }
  return out;
}

}  // namespace poe::keccak
