// SHAKE128/SHAKE256 extendable-output functions (FIPS 202) built on
// Keccak-f[1600]. Supports incremental absorb and incremental squeeze, plus
// 64-bit-word squeezing as consumed by the PASTA rejection sampler.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "keccak/keccak_f1600.hpp"

namespace poe::keccak {

/// Sponge-based XOF. Construct, absorb any number of times, then squeeze any
/// number of times. Absorbing after the first squeeze is a usage error.
class Shake {
 public:
  /// rate_bytes: 168 for SHAKE128, 136 for SHAKE256.
  explicit Shake(std::size_t rate_bytes);

  static Shake shake128() { return Shake(168); }
  static Shake shake256() { return Shake(136); }

  void absorb(std::span<const std::uint8_t> data);
  void squeeze(std::span<std::uint8_t> out);

  /// Squeeze the next 8 output bytes as a little-endian 64-bit word.
  std::uint64_t squeeze_u64();

  /// Number of Keccak-f permutations executed so far (used to cross-check the
  /// hardware cycle model against the reference software).
  std::uint64_t permutation_count() const { return permutation_count_; }

  std::size_t rate_bytes() const { return rate_; }

 private:
  void pad_and_switch_to_squeeze();
  void permute();

  State state_{};
  std::size_t rate_;
  std::size_t offset_ = 0;  // byte offset within the current rate block
  bool squeezing_ = false;
  std::uint64_t permutation_count_ = 0;
};

/// One-shot convenience: SHAKE128(input) -> out.size() bytes.
std::vector<std::uint8_t> shake128(std::span<const std::uint8_t> input,
                                   std::size_t out_len);

/// SHA3-256 (fixed-output sponge, domain byte 0x06). Included so the Keccak
/// core is a complete FIPS 202 implementation; the accelerator itself only
/// uses SHAKE128.
std::array<std::uint8_t, 32> sha3_256(std::span<const std::uint8_t> input);

}  // namespace poe::keccak
