#include "modular/primes.hpp"

#include "common/error.hpp"
#include "modular/modulus.hpp"

namespace poe::mod {

namespace {

u64 mulmod(u64 a, u64 b, u64 m) {
  return static_cast<u64>(static_cast<u128>(a) * b % m);
}

u64 powmod(u64 base, u64 exp, u64 m) {
  u64 acc = 1 % m;
  base %= m;
  while (exp) {
    if (exp & 1) acc = mulmod(acc, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return acc;
}

bool miller_rabin_witness(u64 n, u64 a, u64 d, unsigned r) {
  u64 x = powmod(a, d, n);
  if (x == 1 || x == n - 1) return false;
  for (unsigned i = 1; i < r; ++i) {
    x = mulmod(x, x, n);
    if (x == n - 1) return false;
  }
  return true;  // composite witness found
}

}  // namespace

bool is_prime(u64 n) {
  if (n < 2) return false;
  for (u64 p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull,
                29ull, 31ull, 37ull}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  u64 d = n - 1;
  unsigned r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This base set is deterministic for all n < 2^64 (Sinclair, 2011).
  for (u64 a : {2ull, 325ull, 9375ull, 28178ull, 450775ull, 9780504ull,
                1795265022ull}) {
    if (a % n == 0) continue;
    if (miller_rabin_witness(n, a, d, r)) return false;
  }
  return true;
}

u64 previous_congruent_prime(u64 upper, u64 factor) {
  POE_ENSURE(factor >= 1, "factor must be positive");
  u64 candidate = upper - ((upper - 1) % factor);  // largest c <= upper, c ≡ 1
  while (candidate > factor) {
    if (is_prime(candidate)) return candidate;
    candidate -= factor;
  }
  throw Error("no prime ≡ 1 (mod " + std::to_string(factor) + ") below " +
              std::to_string(upper));
}

namespace {
std::vector<u64> prime_chain_with_step(std::size_t count, unsigned bit_size,
                                       u64 step) {
  POE_ENSURE(bit_size >= 20 && bit_size <= 61, "bit_size out of range");
  std::vector<u64> out;
  u64 upper = (1ull << bit_size) - 1;
  while (out.size() < count) {
    u64 p = previous_congruent_prime(upper, step);
    out.push_back(p);
    upper = p - 1;
  }
  return out;
}
}  // namespace

std::vector<u64> ntt_prime_chain(std::size_t count, unsigned bit_size,
                                 std::size_t n) {
  return prime_chain_with_step(count, bit_size, 2 * static_cast<u64>(n));
}

std::vector<u64> bgv_prime_chain(std::size_t count, unsigned bit_size,
                                 std::size_t n, u64 t) {
  // t is an odd prime and 2n a power of two, so lcm(2n, t) = 2n * t.
  POE_ENSURE(t % 2 == 1, "t must be odd");
  const u64 step = 2 * static_cast<u64>(n) * t;
  POE_ENSURE(step < (1ull << (bit_size - 1)),
             "bit_size too small for step " << step);
  return prime_chain_with_step(count, bit_size, step);
}

u64 primitive_root(u64 p) {
  POE_ENSURE(is_prime(p), p << " is not prime");
  // Factor p-1 by trial division (fine for the sizes we use at setup time).
  u64 phi = p - 1;
  std::vector<u64> factors;
  u64 m = phi;
  for (u64 f = 2; f * f <= m; ++f) {
    if (m % f == 0) {
      factors.push_back(f);
      while (m % f == 0) m /= f;
    }
  }
  if (m > 1) factors.push_back(m);
  for (u64 g = 2; g < p; ++g) {
    bool ok = true;
    for (u64 f : factors) {
      if (powmod(g, phi / f, p) == 1) {
        ok = false;
        break;
      }
    }
    if (ok) return g;
  }
  throw Error("no primitive root found for " + std::to_string(p));
}

u64 root_of_unity(u64 p, u64 order) {
  POE_ENSURE((p - 1) % order == 0,
             "order " << order << " does not divide p-1 for p=" << p);
  u64 g = primitive_root(p);
  u64 w = powmod(g, (p - 1) / order, p);
  POE_ENSURE(powmod(w, order, p) == 1, "root order check failed");
  POE_ENSURE(powmod(w, order / 2, p) == p - 1, "root is not primitive");
  return w;
}

}  // namespace poe::mod
