// Primality testing and prime search.
//
// PASTA instantiations use Mersenne/Fermat-structured primes between 17 and
// 60 bits; the BGV substrate needs NTT-friendly primes q ≡ 1 (mod 2N). Both
// are found/validated here with a deterministic Miller-Rabin for 64-bit
// inputs.
#pragma once

#include <cstdint>
#include <vector>

namespace poe::mod {

/// Deterministic Miller-Rabin primality test, exact for all 64-bit inputs.
bool is_prime(std::uint64_t n);

/// Largest prime p <= upper with p ≡ 1 (mod factor). Throws if none exists
/// above lower_bound.
std::uint64_t previous_congruent_prime(std::uint64_t upper,
                                       std::uint64_t factor);

/// A chain of `count` distinct primes just below `upper`, each ≡ 1 (mod 2N),
/// suitable as an RNS basis for negacyclic NTT of size N.
std::vector<std::uint64_t> ntt_prime_chain(std::size_t count,
                                           unsigned bit_size, std::size_t n);

/// NTT-friendly primes that are additionally ≡ 1 (mod t). BGV modulus
/// switching divides ciphertexts by the dropped prime, which scales the
/// plaintext by q_last^{-1} mod t — choosing q_i ≡ 1 (mod t) makes that
/// scaling the identity.
std::vector<std::uint64_t> bgv_prime_chain(std::size_t count,
                                           unsigned bit_size, std::size_t n,
                                           std::uint64_t t);

/// Smallest primitive root modulo prime p (for NTT twiddle generation).
std::uint64_t primitive_root(std::uint64_t p);

/// A primitive 2n-th root of unity modulo prime p (requires 2n | p-1).
std::uint64_t root_of_unity(std::uint64_t p, std::uint64_t order);

}  // namespace poe::mod
