// Modular arithmetic over a runtime prime p < 2^62.
//
// PASTA works over prime fields F_p with p between 17 and 60 bits; the paper
// exploits the Mersenne/Fermat structure of the chosen primes (e.g.
// p = 2^16 + 1 = 65537) for add-shift reduction in hardware. In software we
// use 128-bit products; `fermat_reduce` mirrors the hardware's add-shift unit
// and is cross-checked against the generic path in tests.
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace poe::mod {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

/// A runtime modulus with the handful of operations the library needs.
/// Cheap to copy; all members are immutable after construction.
class Modulus {
 public:
  explicit Modulus(u64 p) : p_(p) {
    POE_ENSURE(p >= 2 && p < (1ull << 62), "modulus out of range: " << p);
    unsigned k = 0;
    for (u64 v = p; v != 0; v >>= 1) ++k;
    k_ = k;
    // Barrett constant floor(2^(2k+1) / p); fits 64 bits since p >= 2^(k-1).
    mu_ = static_cast<u64>((static_cast<u128>(1) << (2 * k_ + 1)) / p);
    // Wide Barrett constant floor(2^128 / p), split into two 64-bit words.
    // 2^128 = (2^128 - 1) + 1, so the quotient is (2^128-1)/p, plus one
    // exactly when p divides 2^128 (never, p >= 2).
    const u128 all_ones = ~static_cast<u128>(0);
    u128 wide = all_ones / p;
    if (all_ones % p == p - 1) ++wide;
    ratio_lo_ = static_cast<u64>(wide);
    ratio_hi_ = static_cast<u64>(wide >> 64);
  }

  u64 value() const { return p_; }

  u64 reduce(u64 x) const { return x % p_; }
  u64 reduce128(u128 x) const { return static_cast<u64>(x % p_); }

  /// Full 128-bit Barrett reduction: x mod p for ANY 128-bit x (unlike
  /// `mul`, whose estimate is only valid for products of reduced operands).
  /// This is what lets the key-switch inner product accumulate many
  /// digit*key products into a raw 128-bit sum and reduce once per slot
  /// instead of once per digit. Estimates q = floor(x * ratio / 2^128)
  /// with ratio = floor(2^128/p); the estimate undershoots the true
  /// quotient by at most 3 (one from each truncated cross product, one
  /// from ratio itself), so the remainder lands below 4p < 2^64.
  u64 reduce128_barrett(u128 x) const {
    const u64 xlo = static_cast<u64>(x);
    const u64 xhi = static_cast<u64>(x >> 64);
    const u64 c1 = static_cast<u64>(
        (static_cast<u128>(xlo) * ratio_lo_) >> 64);
    const u128 mid = static_cast<u128>(xlo) * ratio_hi_ +
                     static_cast<u128>(xhi) * ratio_lo_ + c1;
    const u64 q = xhi * ratio_hi_ + static_cast<u64>(mid >> 64);
    u64 r = xlo - q * p_;  // exact value of x - q*p, since it is < 2^64
    while (r >= p_) r -= p_;
    return r;
  }

  u64 add(u64 a, u64 b) const {
    u64 s = a + b;
    if (s >= p_ || s < a) s -= p_;
    return s;
  }

  u64 sub(u64 a, u64 b) const { return a >= b ? a - b : a + p_ - b; }

  u64 neg(u64 a) const { return a == 0 ? 0 : p_ - a; }

  /// a * b mod p for a, b < p, via Barrett reduction (the 128-by-64-bit
  /// division the naive formulation emits costs ~10x more than these two
  /// multiplications on every pointwise product in the FHE hot path).
  u64 mul(u64 a, u64 b) const {
    POE_DCHECK(a < p_ && b < p_, "Barrett operands must be reduced");
    const u128 z = static_cast<u128>(a) * b;
    // Estimate the quotient from the top bits: t in [z/p - 3, z/p].
    const u64 t =
        static_cast<u64>(((z >> (k_ - 1)) * static_cast<u128>(mu_)) >>
                         (k_ + 2));
    u64 r = static_cast<u64>(z) - t * p_;  // < 3p < 2^64
    if (r >= 2 * p_) r -= 2 * p_;
    if (r >= p_) r -= p_;
    return r;
  }

  /// a*b + c mod p (the hardware MAC primitive).
  u64 mac(u64 a, u64 b, u64 c) const {
    return static_cast<u64>((static_cast<u128>(a) * b + c) % p_);
  }

  u64 pow(u64 base, u64 exp) const {
    u64 acc = 1;
    u64 cur = base % p_;
    while (exp != 0) {
      if (exp & 1) acc = mul(acc, cur);
      cur = mul(cur, cur);
      exp >>= 1;
    }
    return acc;
  }

  /// Multiplicative inverse (requires p prime and a != 0 mod p).
  u64 inv(u64 a) const {
    POE_ENSURE(a % p_ != 0, "inverse of zero mod " << p_);
    return pow(a, p_ - 2);
  }

  bool operator==(const Modulus& o) const { return p_ == o.p_; }

  // Precomputed-constant accessors for vectorized reimplementations of
  // `mul` / `reduce128_barrett` (src/kernels/): a SIMD lane must use the
  // exact same mu/ratio/k to stay bit-identical with the scalar formulas.
  u64 barrett_mu() const { return mu_; }
  u64 ratio_lo() const { return ratio_lo_; }
  u64 ratio_hi() const { return ratio_hi_; }
  unsigned bit_width() const { return k_; }

 private:
  u64 p_;
  u64 mu_;        ///< Barrett constant floor(2^(2k+1) / p)
  u64 ratio_lo_;  ///< low word of floor(2^128 / p)
  u64 ratio_hi_;  ///< high word of floor(2^128 / p)
  unsigned k_;    ///< bit width of p
};

/// Add-shift reduction for Fermat-structured primes p = 2^k + 1, mirroring
/// the hardware reduction unit the paper uses for its Mersenne-structured
/// moduli. Input x < p^2; returns x mod p.
///
/// Decompose x = hi * 2^k + lo with lo < 2^k; since 2^k = -1 (mod p),
/// x = lo - hi (mod p). hi < p, so one conditional add fixes the range; the
/// result of (lo - hi) needs a second fold because hi can itself be >= 2^k
/// only when x is close to p^2 — handled by iterating once more.
inline u64 fermat_reduce(u128 x, unsigned k, u64 p) {
  POE_DCHECK(p == (1ull << k) + 1, "p must be 2^k + 1");
  const u128 mask = (static_cast<u128>(1) << k) - 1;
  // Fold twice: after the first pass the value fits in ~k+2 bits, after the
  // second it is below 2p; a conditional subtract finishes the job.
  for (int pass = 0; pass < 2; ++pass) {
    const u64 lo = static_cast<u64>(x & mask);
    const u64 hi = static_cast<u64>((x >> k) % p);
    x = lo >= hi ? lo - hi : lo + p - hi;
  }
  u64 r = static_cast<u64>(x);
  if (r >= p) r -= p;
  return r;
}

}  // namespace poe::mod
