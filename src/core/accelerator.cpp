#include "core/accelerator.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"
#include "hw/accelerator.hpp"
#include "soc/driver.hpp"
#include "soc/soc.hpp"

namespace poe {

Accelerator::Accelerator(const pasta::PastaParams& params,
                         std::vector<std::uint64_t> key, Backend backend)
    : params_(params),
      key_(std::move(key)),
      backend_(backend),
      reference_(params_, key_) {}

Accelerator Accelerator::with_random_key(const pasta::PastaParams& params,
                                         std::uint64_t seed, Backend backend) {
  Xoshiro256 rng(seed);
  return Accelerator(params, pasta::PastaCipher::random_key(params, rng),
                     backend);
}

std::vector<std::uint64_t> Accelerator::encrypt(
    std::span<const std::uint64_t> msg, std::uint64_t nonce,
    EncryptStats* stats) const {
  if (stats != nullptr) {
    *stats = EncryptStats{};
    stats->blocks = ceil_div(msg.size(), params_.t);
  }
  switch (backend_) {
    case Backend::kReference:
      return reference_.encrypt(msg, nonce);
    case Backend::kCycleSim: {
      hw::AcceleratorSim sim(params_);
      auto result = sim.encrypt(key_, msg, nonce);
      if (stats != nullptr) {
        stats->cycles = result.total_cycles;
        stats->fpga_us = hw::fpga_artix7().cycles_to_us(result.total_cycles);
        stats->asic_us = hw::asic_1ghz().cycles_to_us(result.total_cycles);
        stats->soc_us =
            hw::riscv_soc_100mhz().cycles_to_us(result.total_cycles);
      }
      return result.ciphertext;
    }
    case Backend::kSoc:
      return encrypt_soc(msg, nonce, stats);
  }
  throw Error("unreachable backend");
}

std::vector<std::uint64_t> Accelerator::encrypt_soc(
    std::span<const std::uint64_t> msg, std::uint64_t nonce,
    EncryptStats* stats) const {
  // The peripheral processes whole blocks; pad the tail with zeros and trim
  // after readout (the driver is oblivious to partial blocks).
  const std::size_t blocks = ceil_div(msg.size(), params_.t);
  POE_ENSURE(blocks >= 1, "empty message");
  std::vector<std::uint64_t> padded(msg.begin(), msg.end());
  padded.resize(blocks * params_.t, 0);

  soc::SocConfig cfg{.params = params_};
  soc::Soc machine(cfg);
  const unsigned stride = machine.peripheral().element_stride();

  soc::DriverLayout layout;
  layout.num_blocks = blocks;
  layout.nonce = nonce;
  soc::store_elements(machine.ram(), layout.key_addr, key_, stride);
  soc::store_elements(machine.ram(), layout.src_addr, padded, stride);

  const auto reason = machine.run_program(
      soc::build_encrypt_driver(params_, cfg.periph_base, layout));
  POE_ENSURE(reason == rv::StopReason::kEcall, "SoC driver did not complete");

  auto ct = soc::load_elements(machine.ram(), layout.dst_addr, padded.size(),
                               stride);
  ct.resize(msg.size());
  if (stats != nullptr) {
    const auto start = machine.ram().load_word(layout.cycles_addr);
    const auto end = machine.ram().load_word(layout.cycles_addr + 4);
    stats->cycles = end - start;
    stats->soc_us = hw::riscv_soc_100mhz().cycles_to_us(stats->cycles);
  }
  return ct;
}

std::vector<std::uint64_t> Accelerator::decrypt(
    std::span<const std::uint64_t> ct, std::uint64_t nonce) const {
  return reference_.decrypt(ct, nonce);
}

}  // namespace poe
