// Public facade of the PASTA cryptoprocessor library.
//
// One object, three execution backends:
//   kReference — portable software PASTA (the CPU baseline),
//   kCycleSim  — the cycle-accurate accelerator model (FPGA/ASIC numbers),
//   kSoc       — the full RV32IM SoC with the accelerator as a peripheral.
// All backends produce bit-identical ciphertexts; they differ in the timing
// statistics they report.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/exec_context.hpp"
#include "hw/platforms.hpp"
#include "pasta/cipher.hpp"
#include "pasta/params.hpp"

namespace poe {

enum class Backend {
  kReference,
  kCycleSim,
  kSoc,
};

struct EncryptStats {
  std::uint64_t cycles = 0;  ///< accelerator (or SoC) cycles, 0 for reference
  std::size_t blocks = 0;
  double fpga_us = 0;  ///< at 75 MHz (Artix-7 target)
  double asic_us = 0;  ///< at 1 GHz (28nm / 7nm target)
  double soc_us = 0;   ///< at 100 MHz (130nm / 65nm SoC target)
};

class Accelerator {
 public:
  Accelerator(const pasta::PastaParams& params, std::vector<std::uint64_t> key,
              Backend backend = Backend::kCycleSim);

  /// Convenience constructor with a seeded random key.
  static Accelerator with_random_key(const pasta::PastaParams& params,
                                     std::uint64_t seed,
                                     Backend backend = Backend::kCycleSim);

  std::vector<std::uint64_t> encrypt(std::span<const std::uint64_t> msg,
                                     std::uint64_t nonce,
                                     EncryptStats* stats = nullptr) const;
  std::vector<std::uint64_t> decrypt(std::span<const std::uint64_t> ct,
                                     std::uint64_t nonce) const;

  const pasta::PastaParams& params() const { return params_; }
  Backend backend() const { return backend_; }
  const std::vector<std::uint64_t>& key() const { return key_; }

  /// The process-wide execution context the software FHE/HHE layers run on:
  /// slab pool, thread pool, and operation counters (NTTs, key switches,
  /// pool hit rate). Counters accumulate across every evaluator that did
  /// not get a private ExecContext.
  static ExecContext& exec() { return ExecContext::global(); }

 private:
  std::vector<std::uint64_t> encrypt_soc(std::span<const std::uint64_t> msg,
                                         std::uint64_t nonce,
                                         EncryptStats* stats) const;

  pasta::PastaParams params_;
  std::vector<std::uint64_t> key_;
  Backend backend_;
  pasta::PastaCipher reference_;
};

}  // namespace poe
