// Umbrella header for the PASTA-on-Edge library.
//
//   #include "core/poe.hpp"
//
//   auto accel = poe::Accelerator::with_random_key(poe::pasta::pasta4(), 1);
//   poe::EncryptStats stats;
//   auto ct = accel.encrypt(message, nonce, &stats);
#pragma once

#include "analytics/pke_model.hpp"      // IWYU pragma: export
#include "analytics/prior_works.hpp"    // IWYU pragma: export
#include "analytics/video_model.hpp"    // IWYU pragma: export
#include "common/exec_context.hpp"      // IWYU pragma: export
#include "core/accelerator.hpp"         // IWYU pragma: export
#include "hw/accelerator.hpp"           // IWYU pragma: export
#include "hw/area_model.hpp"            // IWYU pragma: export
#include "hw/platforms.hpp"             // IWYU pragma: export
#include "pasta/cipher.hpp"             // IWYU pragma: export
#include "pasta/params.hpp"             // IWYU pragma: export
#include "service/service.hpp"          // IWYU pragma: export
