#include "riscv/compressed.hpp"

#include "common/error.hpp"

namespace poe::rv {

namespace {

using u16 = std::uint16_t;
using u32 = std::uint32_t;

constexpr u32 bits(u16 x, int hi, int lo) {
  return (static_cast<u32>(x) >> lo) & ((1u << (hi - lo + 1)) - 1);
}

// 32-bit encoders (mirroring the assembler's, local to keep this
// self-contained).
u32 enc_i(std::int32_t imm, u32 rs1, u32 funct3, u32 rd, u32 op) {
  return (static_cast<u32>(imm & 0xfff) << 20) | (rs1 << 15) | (funct3 << 12) |
         (rd << 7) | op;
}
u32 enc_r(u32 funct7, u32 rs2, u32 rs1, u32 funct3, u32 rd, u32 op) {
  return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
         (rd << 7) | op;
}
u32 enc_s(std::int32_t imm, u32 rs2, u32 rs1, u32 funct3) {
  const u32 u = static_cast<u32>(imm & 0xfff);
  return ((u >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
         ((u & 0x1f) << 7) | 0x23;
}
u32 enc_b(std::int32_t offset, u32 rs1, u32 rs2, u32 funct3) {
  const u32 u = static_cast<u32>(offset);
  u32 insn = 0x63;
  insn |= funct3 << 12;
  insn |= rs1 << 15;
  insn |= rs2 << 20;
  insn |= ((u >> 11) & 1) << 7;
  insn |= ((u >> 1) & 0xf) << 8;
  insn |= ((u >> 5) & 0x3f) << 25;
  insn |= ((u >> 12) & 1) << 31;
  return insn;
}
u32 enc_j(std::int32_t offset, u32 rd) {
  const u32 u = static_cast<u32>(offset);
  u32 insn = 0x6f;
  insn |= rd << 7;
  insn |= ((u >> 12) & 0xff) << 12;
  insn |= ((u >> 11) & 1) << 20;
  insn |= ((u >> 1) & 0x3ff) << 21;
  insn |= ((u >> 20) & 1) << 31;
  return insn;
}

std::int32_t sign_extend(u32 value, unsigned bits_count) {
  const u32 shift = 32 - bits_count;
  return static_cast<std::int32_t>(value << shift) >> shift;
}

}  // namespace

std::uint32_t expand_compressed(u16 insn) {
  POE_ENSURE(insn != 0, "illegal compressed instruction 0x0000");
  const u32 op = insn & 3;
  const u32 funct3 = bits(insn, 15, 13);
  const u32 rd = bits(insn, 11, 7);
  const u32 rs2 = bits(insn, 6, 2);
  const u32 rdp = 8 + bits(insn, 9, 7);   // rd'/rs1'
  const u32 rs2p = 8 + bits(insn, 4, 2);  // rs2'

  switch (op) {
    case 0:  // quadrant 0
      switch (funct3) {
        case 0b000: {  // c.addi4spn
          const u32 imm = (bits(insn, 10, 7) << 6) | (bits(insn, 12, 11) << 4) |
                          (bits(insn, 5, 5) << 3) | (bits(insn, 6, 6) << 2);
          POE_ENSURE(imm != 0, "reserved c.addi4spn with zero immediate");
          return enc_i(static_cast<std::int32_t>(imm), 2, 0, rs2p, 0x13);
        }
        case 0b010: {  // c.lw
          const u32 imm = (bits(insn, 5, 5) << 6) | (bits(insn, 12, 10) << 3) |
                          (bits(insn, 6, 6) << 2);
          return enc_i(static_cast<std::int32_t>(imm), rdp, 2, rs2p, 0x03);
        }
        case 0b110: {  // c.sw
          const u32 imm = (bits(insn, 5, 5) << 6) | (bits(insn, 12, 10) << 3) |
                          (bits(insn, 6, 6) << 2);
          return enc_s(static_cast<std::int32_t>(imm), rs2p, rdp, 2);
        }
        default:
          throw Error("unsupported compressed instruction (quadrant 0)");
      }
    case 1:  // quadrant 1
      switch (funct3) {
        case 0b000: {  // c.nop / c.addi
          const std::int32_t imm =
              sign_extend((bits(insn, 12, 12) << 5) | rs2, 6);
          return enc_i(imm, rd, 0, rd, 0x13);
        }
        case 0b001: {  // c.jal (RV32)
          const u32 raw = (bits(insn, 12, 12) << 11) |
                          (bits(insn, 8, 8) << 10) | (bits(insn, 10, 9) << 8) |
                          (bits(insn, 6, 6) << 7) | (bits(insn, 7, 7) << 6) |
                          (bits(insn, 2, 2) << 5) | (bits(insn, 11, 11) << 4) |
                          (bits(insn, 5, 3) << 1);
          return enc_j(sign_extend(raw, 12), 1);
        }
        case 0b010: {  // c.li
          const std::int32_t imm =
              sign_extend((bits(insn, 12, 12) << 5) | rs2, 6);
          return enc_i(imm, 0, 0, rd, 0x13);
        }
        case 0b011: {
          if (rd == 2) {  // c.addi16sp
            const u32 raw = (bits(insn, 12, 12) << 9) |
                            (bits(insn, 4, 3) << 7) | (bits(insn, 5, 5) << 6) |
                            (bits(insn, 2, 2) << 5) | (bits(insn, 6, 6) << 4);
            const std::int32_t imm = sign_extend(raw, 10);
            POE_ENSURE(imm != 0, "reserved c.addi16sp with zero immediate");
            return enc_i(imm, 2, 0, 2, 0x13);
          }
          // c.lui
          const std::int32_t imm =
              sign_extend((bits(insn, 12, 12) << 5) | rs2, 6);
          POE_ENSURE(imm != 0, "reserved c.lui with zero immediate");
          return (static_cast<u32>(imm & 0xfffff) << 12) | (rd << 7) | 0x37;
        }
        case 0b100: {  // misc-alu on rd'
          const u32 funct2 = bits(insn, 11, 10);
          const u32 shamt = (bits(insn, 12, 12) << 5) | rs2;
          switch (funct2) {
            case 0b00:  // c.srli
              POE_ENSURE(shamt < 32, "RV32 shift amount");
              return enc_i(static_cast<std::int32_t>(shamt), rdp, 5, rdp,
                           0x13);
            case 0b01:  // c.srai
              POE_ENSURE(shamt < 32, "RV32 shift amount");
              return enc_i(static_cast<std::int32_t>(shamt | 0x400), rdp, 5,
                           rdp, 0x13);
            case 0b10:  // c.andi
              return enc_i(sign_extend((bits(insn, 12, 12) << 5) | rs2, 6),
                           rdp, 7, rdp, 0x13);
            case 0b11: {
              POE_ENSURE(bits(insn, 12, 12) == 0,
                         "reserved compressed ALU encoding");
              switch (bits(insn, 6, 5)) {
                case 0b00: return enc_r(0x20, rs2p, rdp, 0, rdp, 0x33);  // sub
                case 0b01: return enc_r(0, rs2p, rdp, 4, rdp, 0x33);     // xor
                case 0b10: return enc_r(0, rs2p, rdp, 6, rdp, 0x33);     // or
                case 0b11: return enc_r(0, rs2p, rdp, 7, rdp, 0x33);     // and
              }
              break;
            }
          }
          throw Error("unsupported compressed ALU instruction");
        }
        case 0b101: {  // c.j
          const u32 raw = (bits(insn, 12, 12) << 11) |
                          (bits(insn, 8, 8) << 10) | (bits(insn, 10, 9) << 8) |
                          (bits(insn, 6, 6) << 7) | (bits(insn, 7, 7) << 6) |
                          (bits(insn, 2, 2) << 5) | (bits(insn, 11, 11) << 4) |
                          (bits(insn, 5, 3) << 1);
          return enc_j(sign_extend(raw, 12), 0);
        }
        case 0b110:    // c.beqz
        case 0b111: {  // c.bnez
          const u32 raw = (bits(insn, 12, 12) << 8) | (bits(insn, 6, 5) << 6) |
                          (bits(insn, 2, 2) << 5) | (bits(insn, 11, 10) << 3) |
                          (bits(insn, 4, 3) << 1);
          const std::int32_t off = sign_extend(raw, 9);
          return enc_b(off, rdp, 0, funct3 == 0b110 ? 0 : 1);
        }
        default:
          throw Error("unsupported compressed instruction (quadrant 1)");
      }
    case 2:  // quadrant 2
      switch (funct3) {
        case 0b000: {  // c.slli
          const u32 shamt = (bits(insn, 12, 12) << 5) | rs2;
          POE_ENSURE(shamt < 32, "RV32 shift amount");
          return enc_i(static_cast<std::int32_t>(shamt), rd, 1, rd, 0x13);
        }
        case 0b010: {  // c.lwsp
          POE_ENSURE(rd != 0, "reserved c.lwsp rd=0");
          const u32 imm = (bits(insn, 3, 2) << 6) | (bits(insn, 12, 12) << 5) |
                          (bits(insn, 6, 4) << 2);
          return enc_i(static_cast<std::int32_t>(imm), 2, 2, rd, 0x03);
        }
        case 0b100: {
          const bool bit12 = bits(insn, 12, 12) != 0;
          if (!bit12) {
            if (rs2 == 0) {  // c.jr
              POE_ENSURE(rd != 0, "reserved c.jr rs1=0");
              return enc_i(0, rd, 0, 0, 0x67);
            }
            return enc_r(0, rs2, 0, 0, rd, 0x33);  // c.mv
          }
          if (rd == 0 && rs2 == 0) return 0x00100073;  // c.ebreak
          if (rs2 == 0) return enc_i(0, rd, 0, 1, 0x67);  // c.jalr
          return enc_r(0, rs2, rd, 0, rd, 0x33);          // c.add
        }
        case 0b110: {  // c.swsp
          const u32 imm = (bits(insn, 8, 7) << 6) | (bits(insn, 12, 9) << 2);
          return enc_s(static_cast<std::int32_t>(imm), rs2, 2, 2);
        }
        default:
          throw Error("unsupported compressed instruction (quadrant 2)");
      }
    default:
      throw Error("not a compressed instruction");
  }
}

}  // namespace poe::rv
