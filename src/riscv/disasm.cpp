#include "riscv/disasm.hpp"

#include <cstdarg>
#include <cstdio>

#include "riscv/compressed.hpp"

namespace poe::rv {

namespace {

using u32 = std::uint32_t;

const char* kRegNames[32] = {
    "x0", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1", "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

const char* reg(u32 index) { return kRegNames[index & 31]; }

std::string fmt(const char* format, ...) {
  char buf[96];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

constexpr u32 rd(u32 i) { return (i >> 7) & 0x1f; }
constexpr u32 funct3(u32 i) { return (i >> 12) & 0x7; }
constexpr u32 rs1(u32 i) { return (i >> 15) & 0x1f; }
constexpr u32 rs2(u32 i) { return (i >> 20) & 0x1f; }
constexpr u32 funct7(u32 i) { return i >> 25; }

constexpr std::int32_t imm_i(u32 i) {
  return static_cast<std::int32_t>(i) >> 20;
}
constexpr std::int32_t imm_s(u32 i) {
  return (static_cast<std::int32_t>(i & 0xfe000000u) >> 20) |
         static_cast<std::int32_t>((i >> 7) & 0x1f);
}
constexpr std::int32_t imm_b(u32 i) {
  std::int32_t imm = 0;
  imm |= static_cast<std::int32_t>((i >> 31) & 1) << 12;
  imm |= static_cast<std::int32_t>((i >> 7) & 1) << 11;
  imm |= static_cast<std::int32_t>((i >> 25) & 0x3f) << 5;
  imm |= static_cast<std::int32_t>((i >> 8) & 0xf) << 1;
  return (imm << 19) >> 19;
}
constexpr std::int32_t imm_j(u32 i) {
  std::int32_t imm = 0;
  imm |= static_cast<std::int32_t>((i >> 31) & 1) << 20;
  imm |= static_cast<std::int32_t>((i >> 12) & 0xff) << 12;
  imm |= static_cast<std::int32_t>((i >> 20) & 1) << 11;
  imm |= static_cast<std::int32_t>((i >> 21) & 0x3ff) << 1;
  return (imm << 11) >> 11;
}

std::string disasm_op(u32 i) {
  static const char* kAlu[8] = {"add", "sll", "slt",  "sltu",
                                "xor", "srl", "or",   "and"};
  static const char* kMul[8] = {"mul",  "mulh", "mulhsu", "mulhu",
                                "div",  "divu", "rem",    "remu"};
  const u32 f3 = funct3(i);
  if (funct7(i) == 1) {
    return fmt("%s %s, %s, %s", kMul[f3], reg(rd(i)), reg(rs1(i)),
               reg(rs2(i)));
  }
  const char* name = kAlu[f3];
  if (funct7(i) == 0x20) {
    if (f3 == 0) name = "sub";
    if (f3 == 5) name = "sra";
  }
  return fmt("%s %s, %s, %s", name, reg(rd(i)), reg(rs1(i)), reg(rs2(i)));
}

std::string disasm_opimm(u32 i) {
  static const char* kAlu[8] = {"addi", "slli", "slti", "sltiu",
                                "xori", "srli", "ori",  "andi"};
  const u32 f3 = funct3(i);
  if (f3 == 1 || f3 == 5) {
    const char* name = f3 == 1 ? "slli" : (funct7(i) == 0x20 ? "srai" : "srli");
    return fmt("%s %s, %s, %u", name, reg(rd(i)), reg(rs1(i)),
               static_cast<unsigned>(imm_i(i)) & 0x1f);
  }
  return fmt("%s %s, %s, %d", kAlu[f3], reg(rd(i)), reg(rs1(i)), imm_i(i));
}

}  // namespace

std::string disassemble(u32 i) {
  switch (i & 0x7f) {
    case 0x37: return fmt("lui %s, 0x%x", reg(rd(i)), i >> 12);
    case 0x17: return fmt("auipc %s, 0x%x", reg(rd(i)), i >> 12);
    case 0x6f:
      if (rd(i) == 0) return fmt("j %+d", imm_j(i));
      return fmt("jal %s, %+d", reg(rd(i)), imm_j(i));
    case 0x67:
      if (rd(i) == 0 && imm_i(i) == 0 && rs1(i) == 1) return "ret";
      return fmt("jalr %s, %d(%s)", reg(rd(i)), imm_i(i), reg(rs1(i)));
    case 0x63: {
      static const char* kBr[8] = {"beq", "bne", "?",    "?",
                                   "blt", "bge", "bltu", "bgeu"};
      return fmt("%s %s, %s, %+d", kBr[funct3(i)], reg(rs1(i)), reg(rs2(i)),
                 imm_b(i));
    }
    case 0x03: {
      static const char* kLd[8] = {"lb", "lh", "lw", "?", "lbu", "lhu"};
      if (funct3(i) > 5 || funct3(i) == 3) break;
      return fmt("%s %s, %d(%s)", kLd[funct3(i)], reg(rd(i)), imm_i(i),
                 reg(rs1(i)));
    }
    case 0x23: {
      static const char* kSt[8] = {"sb", "sh", "sw"};
      if (funct3(i) > 2) break;
      return fmt("%s %s, %d(%s)", kSt[funct3(i)], reg(rs2(i)), imm_s(i),
                 reg(rs1(i)));
    }
    case 0x13: return disasm_opimm(i);
    case 0x33: return disasm_op(i);
    case 0x0f: return "fence";
    case 0x73: {
      if (i == 0x00000073) return "ecall";
      if (i == 0x00100073) return "ebreak";
      const u32 csr = i >> 20;
      if (funct3(i) == 2 && rs1(i) == 0) {
        const char* name = csr == 0xC00   ? "cycle"
                           : csr == 0xC80 ? "cycleh"
                           : csr == 0xC02 ? "instret"
                           : csr == 0xC82 ? "instreth"
                           : csr == 0xB00 ? "mcycle"
                                          : nullptr;
        if (name != nullptr) return fmt("csrr %s, %s", reg(rd(i)), name);
      }
      return fmt("csr* %s, 0x%x", reg(rd(i)), csr);
    }
    default: break;
  }
  return fmt(".word 0x%08x", i);
}

std::vector<std::string> disassemble_program(const std::vector<u32>& words,
                                             u32 base_address) {
  std::vector<std::string> out;
  // The assembler emits 32-bit words; compressed instructions would be
  // packed two per word. Walk halfword-wise to handle both.
  std::size_t half = 0;
  const std::size_t total_halves = words.size() * 2;
  while (half < total_halves) {
    const u32 addr = base_address + static_cast<u32>(half) * 2;
    const u32 word = words[half / 2];
    const u32 lo16 = (half % 2 == 0) ? (word & 0xFFFF) : (word >> 16);
    if (is_compressed(lo16)) {
      std::string text;
      try {
        text = disassemble(expand_compressed(static_cast<std::uint16_t>(lo16)));
        text = "c." + text;
      } catch (...) {
        text = fmt(".half 0x%04x", lo16);
      }
      out.push_back(fmt("%4x:  %04x      %s", addr, lo16, text.c_str()));
      half += 1;
    } else {
      u32 insn = lo16;
      if (half + 1 < total_halves) {
        const u32 word2 = words[(half + 1) / 2];
        const u32 hi16 =
            ((half + 1) % 2 == 0) ? (word2 & 0xFFFF) : (word2 >> 16);
        insn |= hi16 << 16;
      }
      out.push_back(fmt("%4x:  %08x  %s", addr, insn,
                        disassemble(insn).c_str()));
      half += 2;
    }
  }
  return out;
}

}  // namespace poe::rv
