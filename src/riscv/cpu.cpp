#include "riscv/cpu.hpp"

#include "riscv/compressed.hpp"

namespace poe::rv {

namespace {

// Instruction field extractors.
constexpr u32 opcode(u32 i) { return i & 0x7f; }
constexpr u32 rd(u32 i) { return (i >> 7) & 0x1f; }
constexpr u32 funct3(u32 i) { return (i >> 12) & 0x7; }
constexpr u32 rs1(u32 i) { return (i >> 15) & 0x1f; }
constexpr u32 rs2(u32 i) { return (i >> 20) & 0x1f; }
constexpr u32 funct7(u32 i) { return i >> 25; }

constexpr std::int32_t imm_i(u32 i) {
  return static_cast<std::int32_t>(i) >> 20;
}
constexpr std::int32_t imm_s(u32 i) {
  return (static_cast<std::int32_t>(i & 0xfe000000u) >> 20) |
         static_cast<std::int32_t>((i >> 7) & 0x1f);
}
constexpr std::int32_t imm_b(u32 i) {
  std::int32_t imm = 0;
  imm |= static_cast<std::int32_t>((i >> 31) & 1) << 12;
  imm |= static_cast<std::int32_t>((i >> 7) & 1) << 11;
  imm |= static_cast<std::int32_t>((i >> 25) & 0x3f) << 5;
  imm |= static_cast<std::int32_t>((i >> 8) & 0xf) << 1;
  return (imm << 19) >> 19;  // sign-extend from bit 12
}
constexpr std::int32_t imm_u(u32 i) {
  return static_cast<std::int32_t>(i & 0xfffff000u);
}
constexpr std::int32_t imm_j(u32 i) {
  std::int32_t imm = 0;
  imm |= static_cast<std::int32_t>((i >> 31) & 1) << 20;
  imm |= static_cast<std::int32_t>((i >> 12) & 0xff) << 12;
  imm |= static_cast<std::int32_t>((i >> 20) & 1) << 11;
  imm |= static_cast<std::int32_t>((i >> 21) & 0x3ff) << 1;
  return (imm << 11) >> 11;  // sign-extend from bit 20
}

constexpr u32 kCsrCycle = 0xC00, kCsrCycleH = 0xC80;
constexpr u32 kCsrMcycle = 0xB00, kCsrMcycleH = 0xB80;
constexpr u32 kCsrInstret = 0xC02, kCsrInstretH = 0xC82;

}  // namespace

Cpu::Cpu(Bus& bus, u32 reset_pc, CpuTiming timing)
    : bus_(bus), timing_(timing), pc_(reset_pc) {}

void Cpu::write_rd(u32 insn, u32 value) { set_reg(rd(insn), value); }

bool Cpu::step() {
  POE_ENSURE((pc_ & 1u) == 0, "misaligned instruction fetch at 0x"
                                  << std::hex << pc_);
  const u32 low = bus_.read16(pc_, cycles_);
  u32 insn;
  unsigned length;
  if ((low & 3u) == 3u) {
    insn = low | (bus_.read16(pc_ + 2, cycles_) << 16);
    length = 4;
  } else {
    insn = expand_compressed(static_cast<std::uint16_t>(low));
    length = 2;
  }
  cycles_ += timing_.base;
  exec(insn, length);
  ++instret_;
  return !stopped_;
}

StopReason Cpu::run(u64 max_instructions) {
  stopped_ = false;
  stop_reason_ = StopReason::kMaxInstructions;
  for (u64 i = 0; i < max_instructions; ++i) {
    if (!step()) break;
  }
  return stop_reason_;
}

void Cpu::exec(u32 insn, unsigned length) {
  const u32 op = opcode(insn);
  u32 next_pc = pc_ + length;

  switch (op) {
    case 0x37:  // LUI
      write_rd(insn, static_cast<u32>(imm_u(insn)));
      break;
    case 0x17:  // AUIPC
      write_rd(insn, pc_ + static_cast<u32>(imm_u(insn)));
      break;
    case 0x6f:  // JAL
      write_rd(insn, pc_ + length);
      next_pc = pc_ + static_cast<u32>(imm_j(insn));
      cycles_ += timing_.jump_penalty;
      break;
    case 0x67: {  // JALR
      const u32 target =
          (regs_[rs1(insn)] + static_cast<u32>(imm_i(insn))) & ~1u;
      write_rd(insn, pc_ + length);
      next_pc = target;
      cycles_ += timing_.taken_branch_penalty;
      break;
    }
    case 0x63: {  // branches
      const u32 a = regs_[rs1(insn)], b = regs_[rs2(insn)];
      bool taken = false;
      switch (funct3(insn)) {
        case 0: taken = a == b; break;                                // BEQ
        case 1: taken = a != b; break;                                // BNE
        case 4: taken = static_cast<std::int32_t>(a) <
                        static_cast<std::int32_t>(b); break;          // BLT
        case 5: taken = static_cast<std::int32_t>(a) >=
                        static_cast<std::int32_t>(b); break;          // BGE
        case 6: taken = a < b; break;                                 // BLTU
        case 7: taken = a >= b; break;                                // BGEU
        default: throw Error("illegal branch funct3");
      }
      if (taken) {
        next_pc = pc_ + static_cast<u32>(imm_b(insn));
        cycles_ += timing_.taken_branch_penalty;
      }
      break;
    }
    case 0x03: {  // loads
      const u32 addr = regs_[rs1(insn)] + static_cast<u32>(imm_i(insn));
      cycles_ += bus_.access_latency(addr);
      u32 value = 0;
      switch (funct3(insn)) {
        case 0:  // LB
          value = static_cast<u32>(
              static_cast<std::int32_t>(static_cast<std::int8_t>(
                  bus_.read8(addr, cycles_))));
          break;
        case 1:  // LH
          value = static_cast<u32>(static_cast<std::int32_t>(
              static_cast<std::int16_t>(bus_.read16(addr, cycles_))));
          break;
        case 2:  // LW
          POE_ENSURE((addr & 3u) == 0, "misaligned LW");
          value = bus_.read32(addr, cycles_);
          break;
        case 4: value = bus_.read8(addr, cycles_); break;   // LBU
        case 5: value = bus_.read16(addr, cycles_); break;  // LHU
        default: throw Error("illegal load funct3");
      }
      write_rd(insn, value);
      break;
    }
    case 0x23: {  // stores
      const u32 addr = regs_[rs1(insn)] + static_cast<u32>(imm_s(insn));
      cycles_ += bus_.access_latency(addr);
      const u32 value = regs_[rs2(insn)];
      switch (funct3(insn)) {
        case 0: bus_.write8(addr, static_cast<u8>(value), cycles_); break;
        case 1: bus_.write16(addr, value, cycles_); break;
        case 2:
          POE_ENSURE((addr & 3u) == 0, "misaligned SW");
          bus_.write32(addr, value, cycles_);
          break;
        default: throw Error("illegal store funct3");
      }
      break;
    }
    case 0x13: {  // OP-IMM
      const u32 a = regs_[rs1(insn)];
      const std::int32_t imm = imm_i(insn);
      const u32 shamt = static_cast<u32>(imm) & 0x1f;
      u32 value = 0;
      switch (funct3(insn)) {
        case 0: value = a + static_cast<u32>(imm); break;  // ADDI
        case 2: value = static_cast<std::int32_t>(a) < imm ? 1 : 0; break;
        case 3: value = a < static_cast<u32>(imm) ? 1 : 0; break;
        case 4: value = a ^ static_cast<u32>(imm); break;
        case 6: value = a | static_cast<u32>(imm); break;
        case 7: value = a & static_cast<u32>(imm); break;
        case 1:  // SLLI
          POE_ENSURE(funct7(insn) == 0, "illegal SLLI");
          value = a << shamt;
          break;
        case 5:  // SRLI / SRAI
          if (funct7(insn) == 0x20) {
            value = static_cast<u32>(static_cast<std::int32_t>(a) >>
                                     static_cast<int>(shamt));
          } else {
            POE_ENSURE(funct7(insn) == 0, "illegal SRLI");
            value = a >> shamt;
          }
          break;
        default: throw Error("illegal OP-IMM funct3");
      }
      write_rd(insn, value);
      break;
    }
    case 0x33: {  // OP
      const u32 a = regs_[rs1(insn)], b = regs_[rs2(insn)];
      u32 value = 0;
      if (funct7(insn) == 1) {  // M extension
        const std::int64_t sa = static_cast<std::int32_t>(a);
        const std::int64_t sb = static_cast<std::int32_t>(b);
        switch (funct3(insn)) {
          case 0: value = a * b; cycles_ += timing_.mul_extra; break;  // MUL
          case 1:  // MULH
            value = static_cast<u32>(static_cast<std::uint64_t>(sa * sb) >> 32);
            cycles_ += timing_.mul_extra;
            break;
          case 2:  // MULHSU
            value = static_cast<u32>(
                static_cast<std::uint64_t>(sa * static_cast<std::int64_t>(b)) >>
                32);
            cycles_ += timing_.mul_extra;
            break;
          case 3:  // MULHU
            value = static_cast<u32>(
                (static_cast<std::uint64_t>(a) * b) >> 32);
            cycles_ += timing_.mul_extra;
            break;
          case 4:  // DIV
            cycles_ += timing_.div_extra;
            if (b == 0) {
              value = 0xFFFFFFFFu;
            } else if (a == 0x80000000u && b == 0xFFFFFFFFu) {
              value = 0x80000000u;  // overflow
            } else {
              value = static_cast<u32>(static_cast<std::int32_t>(a) /
                                       static_cast<std::int32_t>(b));
            }
            break;
          case 5:  // DIVU
            cycles_ += timing_.div_extra;
            value = b == 0 ? 0xFFFFFFFFu : a / b;
            break;
          case 6:  // REM
            cycles_ += timing_.div_extra;
            if (b == 0) {
              value = a;
            } else if (a == 0x80000000u && b == 0xFFFFFFFFu) {
              value = 0;
            } else {
              value = static_cast<u32>(static_cast<std::int32_t>(a) %
                                       static_cast<std::int32_t>(b));
            }
            break;
          case 7:  // REMU
            cycles_ += timing_.div_extra;
            value = b == 0 ? a : a % b;
            break;
          default: throw Error("illegal M funct3");
        }
      } else {
        switch (funct3(insn)) {
          case 0:
            value = funct7(insn) == 0x20 ? a - b : a + b;  // SUB / ADD
            break;
          case 1: value = a << (b & 0x1f); break;  // SLL
          case 2:
            value = static_cast<std::int32_t>(a) <
                            static_cast<std::int32_t>(b)
                        ? 1
                        : 0;
            break;  // SLT
          case 3: value = a < b ? 1 : 0; break;  // SLTU
          case 4: value = a ^ b; break;
          case 5:  // SRL / SRA
            value = funct7(insn) == 0x20
                        ? static_cast<u32>(static_cast<std::int32_t>(a) >>
                                           static_cast<int>(b & 0x1f))
                        : a >> (b & 0x1f);
            break;
          case 6: value = a | b; break;
          case 7: value = a & b; break;
          default: throw Error("illegal OP funct3");
        }
      }
      write_rd(insn, value);
      break;
    }
    case 0x0f:  // FENCE — no-op in this model
      break;
    case 0x73: {  // SYSTEM
      if (funct3(insn) == 0) {
        stopped_ = true;
        stop_reason_ =
            imm_i(insn) == 1 ? StopReason::kEbreak : StopReason::kEcall;
        break;
      }
      // Zicsr: cycle/instret counters are the only CSRs the model exposes.
      const u32 csr = static_cast<u32>(imm_i(insn)) & 0xfff;
      u32 value = 0;
      switch (csr) {
        case kCsrCycle:
        case kCsrMcycle: value = static_cast<u32>(cycles_); break;
        case kCsrCycleH:
        case kCsrMcycleH: value = static_cast<u32>(cycles_ >> 32); break;
        case kCsrInstret: value = static_cast<u32>(instret_); break;
        case kCsrInstretH: value = static_cast<u32>(instret_ >> 32); break;
        default: throw Error("unsupported CSR " + std::to_string(csr));
      }
      // Only pure reads are legal on the counter CSRs: CSRRS/CSRRC with
      // rs1 = x0. CSRRW always writes and is rejected.
      POE_ENSURE((funct3(insn) == 2 || funct3(insn) == 3) && rs1(insn) == 0,
                 "write to read-only CSR");
      write_rd(insn, value);
      break;
    }
    default:
      throw Error("illegal instruction opcode " + std::to_string(op) +
                  " at pc " + std::to_string(pc_));
  }

  if (!stopped_) pc_ = next_pc;
}

}  // namespace poe::rv
