// Disassembler for the ISS's RV32IMC subset — used by tests, debugging and
// the SoC demo to show the generated driver programs in readable form.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace poe::rv {

/// Disassemble one 32-bit instruction word. Unknown encodings come back as
/// ".word 0x…" rather than throwing (a disassembler must not die on data).
std::string disassemble(std::uint32_t insn);

/// Disassemble an instruction stream (handling compressed encodings), one
/// line per instruction: "  1c:  00500093  addi ra, x0, 5".
std::vector<std::string> disassemble_program(
    const std::vector<std::uint32_t>& words, std::uint32_t base_address = 0);

}  // namespace poe::rv
