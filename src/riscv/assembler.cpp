#include "riscv/assembler.hpp"

namespace poe::rv {

namespace {

constexpr u32 r(Reg reg) { return static_cast<u32>(reg); }

u32 encode_r(u32 funct7, Reg rs2, Reg rs1, u32 funct3, Reg rd, u32 op) {
  return (funct7 << 25) | (r(rs2) << 20) | (r(rs1) << 15) | (funct3 << 12) |
         (r(rd) << 7) | op;
}

u32 encode_i(std::int32_t imm, Reg rs1, u32 funct3, Reg rd, u32 op) {
  POE_ENSURE(imm >= -2048 && imm <= 2047, "I-immediate out of range: " << imm);
  return (static_cast<u32>(imm & 0xfff) << 20) | (r(rs1) << 15) |
         (funct3 << 12) | (r(rd) << 7) | op;
}

u32 encode_s(std::int32_t imm, Reg rs2, Reg rs1, u32 funct3, u32 op) {
  POE_ENSURE(imm >= -2048 && imm <= 2047, "S-immediate out of range: " << imm);
  const u32 u = static_cast<u32>(imm & 0xfff);
  return ((u >> 5) << 25) | (r(rs2) << 20) | (r(rs1) << 15) | (funct3 << 12) |
         ((u & 0x1f) << 7) | op;
}

u32 encode_b(std::int32_t offset, Reg rs1, Reg rs2, u32 funct3) {
  POE_ENSURE(offset >= -4096 && offset <= 4094 && (offset & 1) == 0,
             "branch offset out of range: " << offset);
  const u32 u = static_cast<u32>(offset);
  u32 insn = 0x63;
  insn |= funct3 << 12;
  insn |= r(rs1) << 15;
  insn |= r(rs2) << 20;
  insn |= ((u >> 11) & 1) << 7;
  insn |= ((u >> 1) & 0xf) << 8;
  insn |= ((u >> 5) & 0x3f) << 25;
  insn |= ((u >> 12) & 1) << 31;
  return insn;
}

u32 encode_j(std::int32_t offset, Reg rd) {
  POE_ENSURE(offset >= -(1 << 20) && offset < (1 << 20) && (offset & 1) == 0,
             "jump offset out of range: " << offset);
  const u32 u = static_cast<u32>(offset);
  u32 insn = 0x6f;
  insn |= r(rd) << 7;
  insn |= ((u >> 12) & 0xff) << 12;
  insn |= ((u >> 11) & 1) << 20;
  insn |= ((u >> 1) & 0x3ff) << 21;
  insn |= ((u >> 20) & 1) << 31;
  return insn;
}

}  // namespace

Program::Label Program::make_label() {
  label_offsets_.push_back(-1);
  return Label{label_offsets_.size() - 1};
}

void Program::bind(Label label) {
  POE_ENSURE(label.id < label_offsets_.size(), "unknown label");
  POE_ENSURE(label_offsets_[label.id] == -1, "label bound twice");
  label_offsets_[label.id] = static_cast<std::int64_t>(here());
}

void Program::lui(Reg rd, u32 imm20) {
  emit((imm20 << 12) | (r(rd) << 7) | 0x37);
}
void Program::auipc(Reg rd, u32 imm20) {
  emit((imm20 << 12) | (r(rd) << 7) | 0x17);
}

void Program::jal(Reg rd, Label target) {
  fixups_.push_back({words_.size(), target.id, Fixup::Kind::kJal});
  emit((r(rd) << 7) | 0x6f);  // offset patched later
}

void Program::jalr(Reg rd, Reg rs1, std::int32_t offset) {
  emit(encode_i(offset, rs1, 0, rd, 0x67));
}

void Program::emit_branch(u32 funct3, Reg rs1, Reg rs2, Label target) {
  fixups_.push_back({words_.size(), target.id, Fixup::Kind::kBranch});
  emit(encode_b(0, rs1, rs2, funct3));
}

void Program::beq(Reg a, Reg b, Label l) { emit_branch(0, a, b, l); }
void Program::bne(Reg a, Reg b, Label l) { emit_branch(1, a, b, l); }
void Program::blt(Reg a, Reg b, Label l) { emit_branch(4, a, b, l); }
void Program::bge(Reg a, Reg b, Label l) { emit_branch(5, a, b, l); }
void Program::bltu(Reg a, Reg b, Label l) { emit_branch(6, a, b, l); }
void Program::bgeu(Reg a, Reg b, Label l) { emit_branch(7, a, b, l); }

void Program::lb(Reg rd, Reg rs1, std::int32_t off) {
  emit(encode_i(off, rs1, 0, rd, 0x03));
}
void Program::lh(Reg rd, Reg rs1, std::int32_t off) {
  emit(encode_i(off, rs1, 1, rd, 0x03));
}
void Program::lw(Reg rd, Reg rs1, std::int32_t off) {
  emit(encode_i(off, rs1, 2, rd, 0x03));
}
void Program::lbu(Reg rd, Reg rs1, std::int32_t off) {
  emit(encode_i(off, rs1, 4, rd, 0x03));
}
void Program::lhu(Reg rd, Reg rs1, std::int32_t off) {
  emit(encode_i(off, rs1, 5, rd, 0x03));
}
void Program::sb(Reg rs2, Reg rs1, std::int32_t off) {
  emit(encode_s(off, rs2, rs1, 0, 0x23));
}
void Program::sh(Reg rs2, Reg rs1, std::int32_t off) {
  emit(encode_s(off, rs2, rs1, 1, 0x23));
}
void Program::sw(Reg rs2, Reg rs1, std::int32_t off) {
  emit(encode_s(off, rs2, rs1, 2, 0x23));
}

void Program::addi(Reg rd, Reg rs1, std::int32_t imm) {
  emit(encode_i(imm, rs1, 0, rd, 0x13));
}
void Program::slti(Reg rd, Reg rs1, std::int32_t imm) {
  emit(encode_i(imm, rs1, 2, rd, 0x13));
}
void Program::sltiu(Reg rd, Reg rs1, std::int32_t imm) {
  emit(encode_i(imm, rs1, 3, rd, 0x13));
}
void Program::xori(Reg rd, Reg rs1, std::int32_t imm) {
  emit(encode_i(imm, rs1, 4, rd, 0x13));
}
void Program::ori(Reg rd, Reg rs1, std::int32_t imm) {
  emit(encode_i(imm, rs1, 6, rd, 0x13));
}
void Program::andi(Reg rd, Reg rs1, std::int32_t imm) {
  emit(encode_i(imm, rs1, 7, rd, 0x13));
}
void Program::slli(Reg rd, Reg rs1, unsigned shamt) {
  POE_ENSURE(shamt < 32, "shift amount");
  emit(encode_i(static_cast<std::int32_t>(shamt), rs1, 1, rd, 0x13));
}
void Program::srli(Reg rd, Reg rs1, unsigned shamt) {
  POE_ENSURE(shamt < 32, "shift amount");
  emit(encode_i(static_cast<std::int32_t>(shamt), rs1, 5, rd, 0x13));
}
void Program::srai(Reg rd, Reg rs1, unsigned shamt) {
  POE_ENSURE(shamt < 32, "shift amount");
  emit(encode_i(static_cast<std::int32_t>(shamt | 0x400), rs1, 5, rd, 0x13));
}

void Program::add(Reg rd, Reg a, Reg b) { emit(encode_r(0, b, a, 0, rd, 0x33)); }
void Program::sub(Reg rd, Reg a, Reg b) {
  emit(encode_r(0x20, b, a, 0, rd, 0x33));
}
void Program::sll(Reg rd, Reg a, Reg b) { emit(encode_r(0, b, a, 1, rd, 0x33)); }
void Program::slt(Reg rd, Reg a, Reg b) { emit(encode_r(0, b, a, 2, rd, 0x33)); }
void Program::sltu(Reg rd, Reg a, Reg b) {
  emit(encode_r(0, b, a, 3, rd, 0x33));
}
void Program::xor_(Reg rd, Reg a, Reg b) {
  emit(encode_r(0, b, a, 4, rd, 0x33));
}
void Program::srl(Reg rd, Reg a, Reg b) { emit(encode_r(0, b, a, 5, rd, 0x33)); }
void Program::sra(Reg rd, Reg a, Reg b) {
  emit(encode_r(0x20, b, a, 5, rd, 0x33));
}
void Program::or_(Reg rd, Reg a, Reg b) { emit(encode_r(0, b, a, 6, rd, 0x33)); }
void Program::and_(Reg rd, Reg a, Reg b) {
  emit(encode_r(0, b, a, 7, rd, 0x33));
}

void Program::ecall() { emit(0x73); }
void Program::ebreak() { emit(0x00100073); }

void Program::mul(Reg rd, Reg a, Reg b) { emit(encode_r(1, b, a, 0, rd, 0x33)); }
void Program::mulh(Reg rd, Reg a, Reg b) {
  emit(encode_r(1, b, a, 1, rd, 0x33));
}
void Program::mulhsu(Reg rd, Reg a, Reg b) {
  emit(encode_r(1, b, a, 2, rd, 0x33));
}
void Program::mulhu(Reg rd, Reg a, Reg b) {
  emit(encode_r(1, b, a, 3, rd, 0x33));
}
void Program::div(Reg rd, Reg a, Reg b) { emit(encode_r(1, b, a, 4, rd, 0x33)); }
void Program::divu(Reg rd, Reg a, Reg b) {
  emit(encode_r(1, b, a, 5, rd, 0x33));
}
void Program::rem(Reg rd, Reg a, Reg b) { emit(encode_r(1, b, a, 6, rd, 0x33)); }
void Program::remu(Reg rd, Reg a, Reg b) {
  emit(encode_r(1, b, a, 7, rd, 0x33));
}

void Program::csrr_cycle(Reg rd) {
  // csrrs rd, cycle, x0
  emit((0xC00u << 20) | (0u << 15) | (2u << 12) | (r(rd) << 7) | 0x73);
}
void Program::csrr_cycleh(Reg rd) {
  emit((0xC80u << 20) | (0u << 15) | (2u << 12) | (r(rd) << 7) | 0x73);
}

void Program::li(Reg rd, u32 value) {
  const std::int32_t sv = static_cast<std::int32_t>(value);
  if (sv >= -2048 && sv <= 2047) {
    addi(rd, Reg::x0, sv);
    return;
  }
  // lui loads the upper 20 bits; addi's sign extension requires rounding the
  // upper part when bit 11 is set.
  u32 upper = value >> 12;
  const std::int32_t lower = static_cast<std::int32_t>(value << 20) >> 20;
  if (lower < 0) upper = (upper + 1) & 0xfffff;
  lui(rd, upper);
  if (lower != 0) addi(rd, rd, lower);
}

std::vector<u32> Program::assemble() {
  for (const auto& fix : fixups_) {
    POE_ENSURE(label_offsets_[fix.label_id] >= 0, "unbound label used");
    const std::int64_t target = label_offsets_[fix.label_id];
    const std::int64_t source = static_cast<std::int64_t>(fix.word_index) * 4;
    const std::int32_t offset = static_cast<std::int32_t>(target - source);
    u32& word = words_[fix.word_index];
    if (fix.kind == Fixup::Kind::kJal) {
      const Reg rd = static_cast<Reg>((word >> 7) & 0x1f);
      word = encode_j(offset, rd);
    } else {
      const u32 funct3 = (word >> 12) & 7;
      const Reg rs1 = static_cast<Reg>((word >> 15) & 0x1f);
      const Reg rs2 = static_cast<Reg>((word >> 20) & 0x1f);
      word = encode_b(offset, rs1, rs2, funct3);
    }
  }
  fixups_.clear();
  return words_;
}

void Program::load(Ram& ram, u32 base, const std::vector<u32>& words) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    ram.store_word(base + static_cast<u32>(i) * 4, words[i]);
  }
}

}  // namespace poe::rv
