// RV32C compressed-instruction expansion (Ibex executes RV32IMC; the ISS
// supports it by expanding each 16-bit instruction to its 32-bit
// equivalent before execution — the standard decoder-frontend approach).
#pragma once

#include <cstdint>

namespace poe::rv {

/// True if the low two bits mark a compressed (16-bit) encoding.
constexpr bool is_compressed(std::uint32_t word) { return (word & 3) != 3; }

/// Expand a 16-bit RV32C instruction to the equivalent 32-bit RV32I/M
/// encoding. Throws poe::Error for reserved/illegal encodings. Note that
/// link registers written by expanded C.JAL/C.JALR must still record pc+2 —
/// the CPU passes the instruction length separately.
std::uint32_t expand_compressed(std::uint16_t insn);

}  // namespace poe::rv
