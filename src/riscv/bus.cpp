#include "riscv/bus.hpp"

#include <cstdio>
#include <string>

namespace poe::rv {

u32 Ram::read32(u32 offset, u64 /*now*/) { return load_word(offset); }

void Ram::write32(u32 offset, u32 value, u64 /*now*/) {
  store_word(offset, value);
}

u8 Ram::read8(u32 offset) const {
  POE_ENSURE(offset < mem_.size(), "RAM read out of range: " << offset);
  return mem_[offset];
}

void Ram::write8(u32 offset, u8 value) {
  POE_ENSURE(offset < mem_.size(), "RAM write out of range: " << offset);
  mem_[offset] = value;
}

u32 Ram::load_word(u32 offset) const {
  POE_ENSURE(offset + 3 < mem_.size(), "RAM word read out of range: " << offset);
  return static_cast<u32>(mem_[offset]) |
         (static_cast<u32>(mem_[offset + 1]) << 8) |
         (static_cast<u32>(mem_[offset + 2]) << 16) |
         (static_cast<u32>(mem_[offset + 3]) << 24);
}

void Ram::store_word(u32 offset, u32 value) {
  POE_ENSURE(offset + 3 < mem_.size(),
             "RAM word write out of range: " << offset);
  mem_[offset] = static_cast<u8>(value);
  mem_[offset + 1] = static_cast<u8>(value >> 8);
  mem_[offset + 2] = static_cast<u8>(value >> 16);
  mem_[offset + 3] = static_cast<u8>(value >> 24);
}

void Bus::map(u32 base, u32 size, BusDevice* device) {
  POE_ENSURE(device != nullptr, "null device");
  for (const auto& w : windows_) {
    const bool overlap = base < w.base + w.size && w.base < base + size;
    POE_ENSURE(!overlap, "bus window overlap at 0x" << std::hex << base);
  }
  windows_.push_back(Window{base, size, device});
}

const Bus::Window& Bus::resolve(u32 addr) const {
  for (const auto& w : windows_) {
    if (addr >= w.base && addr - w.base < w.size) return w;
  }
  throw Error("bus access to unmapped address 0x" +
              [](u32 a) {
                char buf[16];
                std::snprintf(buf, sizeof buf, "%08x", a);
                return std::string(buf);
              }(addr));
}

u32 Bus::read32(u32 addr, u64 now) {
  const auto& w = resolve(addr);
  return w.device->read32(addr - w.base, now);
}

void Bus::write32(u32 addr, u32 value, u64 now) {
  const auto& w = resolve(addr);
  w.device->write32(addr - w.base, value, now);
}

u8 Bus::read8(u32 addr, u64 now) {
  const u32 word = read32(addr & ~3u, now);
  return static_cast<u8>(word >> (8 * (addr & 3u)));
}

void Bus::write8(u32 addr, u8 value, u64 now) {
  const u32 aligned = addr & ~3u;
  u32 word = read32(aligned, now);
  const unsigned shift = 8 * (addr & 3u);
  word = (word & ~(0xFFu << shift)) | (static_cast<u32>(value) << shift);
  write32(aligned, word, now);
}

u32 Bus::read16(u32 addr, u64 now) {
  POE_ENSURE((addr & 1u) == 0, "misaligned halfword read");
  const u32 word = read32(addr & ~3u, now);
  return (word >> (8 * (addr & 3u))) & 0xFFFFu;
}

void Bus::write16(u32 addr, u32 value, u64 now) {
  POE_ENSURE((addr & 1u) == 0, "misaligned halfword write");
  const u32 aligned = addr & ~3u;
  u32 word = read32(aligned, now);
  const unsigned shift = 8 * (addr & 3u);
  word = (word & ~(0xFFFFu << shift)) | ((value & 0xFFFFu) << shift);
  write32(aligned, word, now);
}

unsigned Bus::access_latency(u32 addr) const {
  return resolve(addr).device->access_latency();
}

}  // namespace poe::rv
