// RV32IMC instruction-set simulator with an Ibex-class timing model.
//
// The SoC evaluation (paper §IV-A ③) attaches the PASTA peripheral to a
// 32-bit Ibex core's data bus. This ISS executes the RV32I base set, the M
// extension, the C (compressed) extension — expanded to 32-bit equivalents
// in the decode frontend, as Ibex does — and the Zicsr cycle counters, with
// a simple in-order timing model: 1 cycle per instruction, +2 for taken
// control transfers, memory accesses pay the bus wait-states, multiplies
// take 2 cycles and divisions 37 (Ibex's iterative divider).
#pragma once

#include <array>
#include <cstdint>

#include "riscv/bus.hpp"

namespace poe::rv {

struct CpuTiming {
  unsigned base = 1;
  unsigned taken_branch_penalty = 2;
  unsigned jump_penalty = 1;
  unsigned mul_extra = 1;
  unsigned div_extra = 36;
};

/// Why run() returned.
enum class StopReason {
  kEcall,
  kEbreak,
  kMaxInstructions,
};

class Cpu {
 public:
  Cpu(Bus& bus, u32 reset_pc, CpuTiming timing = {});

  /// Execute one instruction. Returns false if it was ECALL/EBREAK.
  bool step();

  /// Run until ECALL/EBREAK or the instruction limit.
  StopReason run(u64 max_instructions = 100'000'000);

  u32 pc() const { return pc_; }
  void set_pc(u32 pc) { pc_ = pc; }
  u32 reg(unsigned index) const { return regs_[index]; }
  void set_reg(unsigned index, u32 value) {
    if (index != 0) regs_[index] = value;
  }
  u64 cycles() const { return cycles_; }
  u64 instructions_retired() const { return instret_; }
  StopReason stop_reason() const { return stop_reason_; }

 private:
  void exec(u32 insn, unsigned length);
  void write_rd(u32 insn, u32 value);

  Bus& bus_;
  CpuTiming timing_;
  u32 pc_;
  std::array<u32, 32> regs_{};
  u64 cycles_ = 0;
  u64 instret_ = 0;
  StopReason stop_reason_ = StopReason::kMaxInstructions;
  bool stopped_ = false;
};

}  // namespace poe::rv
