// Builder-style RV32IM assembler used to author SoC driver programs in C++
// (no text parsing): emit instructions through typed methods, use labels for
// control flow, then assemble() to resolve fixups.
//
//   Program p;
//   auto loop = p.make_label();
//   p.li(Reg::t0, 10);
//   p.bind(loop);
//   p.addi(Reg::t0, Reg::t0, -1);
//   p.bne(Reg::t0, Reg::x0, loop);
//   p.ecall();
//   std::vector<u32> words = p.assemble();
#pragma once

#include <cstdint>
#include <vector>

#include "riscv/bus.hpp"

namespace poe::rv {

/// ABI register names.
enum class Reg : unsigned {
  x0 = 0, ra, sp, gp, tp, t0, t1, t2, s0, s1,
  a0, a1, a2, a3, a4, a5, a6, a7,
  s2, s3, s4, s5, s6, s7, s8, s9, s10, s11,
  t3, t4, t5, t6,
};

class Program {
 public:
  struct Label {
    std::size_t id;
  };

  Label make_label();
  /// Bind a label to the current position.
  void bind(Label label);

  /// Current byte offset from program start.
  u32 here() const { return static_cast<u32>(words_.size() * 4); }

  // RV32I
  void lui(Reg rd, u32 imm20);
  void auipc(Reg rd, u32 imm20);
  void jal(Reg rd, Label target);
  void jalr(Reg rd, Reg rs1, std::int32_t offset);
  void beq(Reg rs1, Reg rs2, Label target);
  void bne(Reg rs1, Reg rs2, Label target);
  void blt(Reg rs1, Reg rs2, Label target);
  void bge(Reg rs1, Reg rs2, Label target);
  void bltu(Reg rs1, Reg rs2, Label target);
  void bgeu(Reg rs1, Reg rs2, Label target);
  void lb(Reg rd, Reg rs1, std::int32_t offset);
  void lh(Reg rd, Reg rs1, std::int32_t offset);
  void lw(Reg rd, Reg rs1, std::int32_t offset);
  void lbu(Reg rd, Reg rs1, std::int32_t offset);
  void lhu(Reg rd, Reg rs1, std::int32_t offset);
  void sb(Reg rs2, Reg rs1, std::int32_t offset);
  void sh(Reg rs2, Reg rs1, std::int32_t offset);
  void sw(Reg rs2, Reg rs1, std::int32_t offset);
  void addi(Reg rd, Reg rs1, std::int32_t imm);
  void slti(Reg rd, Reg rs1, std::int32_t imm);
  void sltiu(Reg rd, Reg rs1, std::int32_t imm);
  void xori(Reg rd, Reg rs1, std::int32_t imm);
  void ori(Reg rd, Reg rs1, std::int32_t imm);
  void andi(Reg rd, Reg rs1, std::int32_t imm);
  void slli(Reg rd, Reg rs1, unsigned shamt);
  void srli(Reg rd, Reg rs1, unsigned shamt);
  void srai(Reg rd, Reg rs1, unsigned shamt);
  void add(Reg rd, Reg rs1, Reg rs2);
  void sub(Reg rd, Reg rs1, Reg rs2);
  void sll(Reg rd, Reg rs1, Reg rs2);
  void slt(Reg rd, Reg rs1, Reg rs2);
  void sltu(Reg rd, Reg rs1, Reg rs2);
  void xor_(Reg rd, Reg rs1, Reg rs2);
  void srl(Reg rd, Reg rs1, Reg rs2);
  void sra(Reg rd, Reg rs1, Reg rs2);
  void or_(Reg rd, Reg rs1, Reg rs2);
  void and_(Reg rd, Reg rs1, Reg rs2);
  void ecall();
  void ebreak();

  // M extension
  void mul(Reg rd, Reg rs1, Reg rs2);
  void mulh(Reg rd, Reg rs1, Reg rs2);
  void mulhsu(Reg rd, Reg rs1, Reg rs2);
  void mulhu(Reg rd, Reg rs1, Reg rs2);
  void div(Reg rd, Reg rs1, Reg rs2);
  void divu(Reg rd, Reg rs1, Reg rs2);
  void rem(Reg rd, Reg rs1, Reg rs2);
  void remu(Reg rd, Reg rs1, Reg rs2);

  // Zicsr reads (counter CSRs only)
  void csrr_cycle(Reg rd);
  void csrr_cycleh(Reg rd);

  // Pseudo-instructions
  void li(Reg rd, u32 value);       ///< lui+addi (or addi alone)
  void mv(Reg rd, Reg rs) { addi(rd, rs, 0); }
  void nop() { addi(Reg::x0, Reg::x0, 0); }
  void j(Label target) { jal(Reg::x0, target); }

  /// Resolve all label fixups and return the instruction words.
  std::vector<u32> assemble();

  /// Load assembled words into RAM at byte offset `base`.
  static void load(Ram& ram, u32 base, const std::vector<u32>& words);

 private:
  void emit(u32 word) { words_.push_back(word); }
  void emit_branch(u32 funct3, Reg rs1, Reg rs2, Label target);

  std::vector<u32> words_;
  std::vector<std::int64_t> label_offsets_;  // -1 = unbound
  struct Fixup {
    std::size_t word_index;
    std::size_t label_id;
    enum class Kind { kBranch, kJal } kind;
  };
  std::vector<Fixup> fixups_;
};

}  // namespace poe::rv
