// Memory bus for the RISC-V SoC model.
//
// A single shared data bus connects the Ibex-class core to RAM and to the
// PASTA peripheral's slave interface (the paper's "single bus" that
// serialises key/nonce writes, start signals and ciphertext readout). The
// peripheral additionally owns a private master port into RAM (paper §IV-A
// ③) which is modelled directly in the peripheral.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/error.hpp"

namespace poe::rv {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

/// A device mapped on the bus. `now` is the current core cycle, letting
/// devices with internal timing (the PASTA peripheral) answer status queries.
class BusDevice {
 public:
  virtual ~BusDevice() = default;
  virtual u32 read32(u32 offset, u64 now) = 0;
  virtual void write32(u32 offset, u32 value, u64 now) = 0;
  /// Extra bus wait-states for an access to this device.
  virtual unsigned access_latency() const { return 1; }
};

/// Simple little-endian RAM.
class Ram : public BusDevice {
 public:
  explicit Ram(std::size_t size_bytes) : mem_(size_bytes, 0) {}

  u32 read32(u32 offset, u64 now) override;
  void write32(u32 offset, u32 value, u64 now) override;

  u8 read8(u32 offset) const;
  void write8(u32 offset, u8 value);

  /// Direct (non-bus) accessors for loaders and the peripheral master port.
  u32 load_word(u32 offset) const;
  void store_word(u32 offset, u32 value);

  std::size_t size() const { return mem_.size(); }

 private:
  std::vector<u8> mem_;
};

/// Address-decoded bus with device windows.
class Bus {
 public:
  void map(u32 base, u32 size, BusDevice* device);

  u32 read32(u32 addr, u64 now);
  void write32(u32 addr, u32 value, u64 now);
  u8 read8(u32 addr, u64 now);
  void write8(u32 addr, u8 value, u64 now);
  u32 read16(u32 addr, u64 now);
  void write16(u32 addr, u32 value, u64 now);

  /// Wait-states of the device behind addr.
  unsigned access_latency(u32 addr) const;

 private:
  struct Window {
    u32 base;
    u32 size;
    BusDevice* device;
  };
  const Window& resolve(u32 addr) const;
  std::vector<Window> windows_;
};

}  // namespace poe::rv
