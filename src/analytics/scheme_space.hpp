// Design-space study across HHE-enabling SE schemes (the paper's first
// future-work direction, §VI: "implement the other HHE enabling SE schemes
// and show the impact of the changes across these schemes post-hardware
// realization").
//
// The schemes differ structurally in (i) how much XOF data they consume per
// block — the accelerator's bottleneck — and (ii) whether they need the
// invertible-matrix generator at all (HERA/RUBATO use a *fixed* MDS matrix
// and only draw round keys from the XOF, eliminating the MatGen array that
// dominates the PASTA design's area).
//
// Profiles marked "-like" are structural approximations built from the
// published state sizes and round counts, not bit-exact reimplementations;
// they exercise this design's datapath model, which is the point of the
// study.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace poe::analytics {

struct SchemeProfile {
  std::string name;
  std::size_t state_elements = 0;  ///< total field elements in the state
  std::size_t block_elements = 0;  ///< keystream elements per block
  std::size_t rounds = 0;
  std::size_t xof_elements = 0;    ///< field elements drawn per block
  bool needs_matgen = true;        ///< random invertible matrices?
  double rejection_rate = 2.0;     ///< XOF words per accepted element
};

/// The evaluated design points: PASTA-3/4 (exact) plus MASTA-, HERA- and
/// RUBATO-like profiles.
std::vector<SchemeProfile> scheme_profiles();

/// Cycle estimate on this paper's datapath: the XOF stream (21 words per
/// 26-cycle squeeze window after a 26-cycle start-up) is the bottleneck; a
/// state-sized Mix/output tail follows.
std::uint64_t estimated_cycles(const SchemeProfile& s);

/// Relative area estimate (PASTA-4 = 1.0): removing MatGen drops the MAC
/// array (the largest module); XOF/DataGen stay.
double estimated_area_factor(const SchemeProfile& s);

}  // namespace poe::analytics
