#include "analytics/scheme_space.hpp"

#include "common/bits.hpp"

namespace poe::analytics {

std::vector<SchemeProfile> scheme_profiles() {
  return {
      // PASTA (exact structural numbers, §III-A).
      {.name = "PASTA-3",
       .state_elements = 256,
       .block_elements = 128,
       .rounds = 3,
       .xof_elements = 2048,
       .needs_matgen = true},
      {.name = "PASTA-4",
       .state_elements = 64,
       .block_elements = 32,
       .rounds = 4,
       .xof_elements = 640,
       .needs_matgen = true},
      // MASTA-like: single (un-split) state, affine layers from the XOF as
      // in PASTA, chi-type S-box (1 mult/element, no extra XOF).
      {.name = "MASTA-like",
       .state_elements = 64,
       .block_elements = 64,
       .rounds = 4,
       .xof_elements = (4 + 1) * 2 * 64,  // matrix row + RC per layer
       .needs_matgen = true},
      // HERA-like: fixed MDS matrix; the XOF only produces multiplicative
      // round-key randomisers (state-size per round + initial/final).
      {.name = "HERA-like",
       .state_elements = 16,
       .block_elements = 16,
       .rounds = 5,
       .xof_elements = 16 * (5 + 1),
       .needs_matgen = false},
      // RUBATO-like: HERA plus added noise; slightly smaller round count,
      // bigger state, one extra noise vector per block.
      {.name = "RUBATO-like",
       .state_elements = 36,
       .block_elements = 36,
       .rounds = 3,
       .xof_elements = 36 * (3 + 1) + 36,
       .needs_matgen = false},
  };
}

std::uint64_t estimated_cycles(const SchemeProfile& s) {
  const double words =
      static_cast<double>(s.xof_elements) * s.rejection_rate;
  const std::uint64_t batches =
      ceil_div(static_cast<std::uint64_t>(words), 21);
  // 26-cycle start-up (seed absorb + first permutation), 26 cycles per
  // 21-word squeeze window, state-sized Mix/output tail.
  return 26 + batches * 26 + s.block_elements;
}

double estimated_area_factor(const SchemeProfile& s) {
  // Variable area scales with the number of parallel lanes (half the state
  // for split designs == multiplier count t); MatGen-free designs drop the
  // MAC array (~38% of the variable part) and half the DataGen buffering.
  const double lanes = static_cast<double>(s.state_elements) / 2.0;
  const double pasta4_lanes = 32.0;
  double variable = lanes / pasta4_lanes;
  if (!s.needs_matgen) variable *= 1.0 - 0.38 - 0.06;
  // PASTA-4 split: ~59% variable, ~41% fixed (SHAKE + control) of its LUTs.
  return 0.41 + 0.59 * variable;
}

}  // namespace poe::analytics
