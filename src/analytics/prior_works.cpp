#include "analytics/prior_works.hpp"

#include "common/error.hpp"

namespace poe::analytics {

const std::vector<PriorWork>& table3_prior_works() {
  static const std::vector<PriorWork> works = {
      {.citation = "[21] Di Matteo et al.",
       .platform = "Zynq US+",
       .is_asic = false,
       .is_riscv_soc = false,
       .klut_x10 = 0,  // not reported in the paper's table
       .kff_x10 = 0,
       .dsp = 0,
       .bram = 0,
       .area_mm2 = std::nullopt,
       .encrypt_us = 7790,
       .elements = 1ull << 12},
      {.citation = "[22] Lee et al.",
       .platform = "AlveoU250",
       .is_asic = false,
       .is_riscv_soc = false,
       .klut_x10 = 11790,
       .kff_x10 = 10360,
       .dsp = 12288,
       .bram = 828.5,
       .area_mm2 = std::nullopt,
       .encrypt_us = 16900,
       .elements = 1ull << 15},
      {.citation = "[18] Aloha-HE",
       .platform = "Kintex-7",
       .is_asic = false,
       .is_riscv_soc = false,
       .klut_x10 = 207,
       .kff_x10 = 176,
       .dsp = 100,
       .bram = 82.5,
       .area_mm2 = std::nullopt,
       .encrypt_us = 1870,
       .elements = 1ull << 12},
      {.citation = "[20] RACE",
       .platform = "12nm",
       .is_asic = true,
       .is_riscv_soc = false,
       .area_mm2 = std::nullopt,
       .encrypt_us = 110000,
       .elements = 1ull << 12},
      {.citation = "[19] RISE",
       .platform = "12nm (RISC-V SoC)",
       .is_asic = true,
       .is_riscv_soc = true,
       .area_mm2 = 0.11,
       .encrypt_us = 20000,
       .elements = 1ull << 12},
  };
  return works;
}

double normalize_area_mm2(double area_mm2, unsigned from_nm, unsigned to_nm) {
  POE_ENSURE(from_nm > 0 && to_nm > 0, "invalid technology node");
  const double scale = static_cast<double>(to_nm) / from_nm;
  return area_mm2 * scale * scale;
}

double fhe_client_us_for_elements(const PriorWork& work,
                                  std::uint64_t elements) {
  // A PKE encryption always processes a full polynomial: the latency is the
  // same for 1 element or 2^12 (§IV-C ①). Payloads beyond one packing incur
  // proportionally more encryptions.
  const std::uint64_t encryptions =
      (elements + work.elements - 1) / work.elements;
  return work.encrypt_us * static_cast<double>(encryptions);
}

}  // namespace poe::analytics
