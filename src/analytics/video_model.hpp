// Communication model for the video-frame encryption application (paper §V,
// Fig. 8): frames per second achievable when encrypted frames are streamed
// over a 5G uplink, for this work (PASTA ciphertexts, zero expansion beyond
// the field-element packing) versus RISE [19] (RLWE ciphertexts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pasta/params.hpp"

namespace poe::analytics {

struct Resolution {
  std::string name;
  unsigned width = 0;
  unsigned height = 0;

  std::uint64_t pixels() const {
    return static_cast<std::uint64_t>(width) * height;
  }
};

Resolution qqvga();  ///< 160 x 120
Resolution qvga();   ///< 320 x 240
Resolution vga();    ///< 640 x 480

/// Mid-band 5G uplink bounds used by the paper (§V).
inline constexpr double kMinBandwidthBps = 12.5e6;   // 12.5 MB/s
inline constexpr double kMaxBandwidthBps = 112.5e6;  // 112.5 MB/s

/// RISE's ciphertext model: N = 2^14 slots, log Q = 390, one 8-bit grayscale
/// pixel per slot; ciphertext size 2N log Q bits (paper: ~1.5 MB).
struct RiseCommModel {
  std::uint64_t n = 1ull << 14;
  unsigned log_q = 390;
  double encrypt_us_per_ct = 20000;  ///< RISE encryption latency [19]

  std::uint64_t ciphertext_bytes() const;
  std::uint64_t ciphertexts_per_frame(const Resolution& r) const;
  std::uint64_t frame_bytes(const Resolution& r) const;
  /// Bandwidth-limited frame rate.
  double frames_per_second(const Resolution& r, double bandwidth_bps) const;
  /// Compute-limited frame rate (encryption throughput).
  double encode_frames_per_second(const Resolution& r) const;
};

/// This work's model: pixels packed into PASTA field elements (8-bit pixels;
/// pixels_per_element of them fit when 8*pixels_per_element < omega), blocks
/// of t elements, each element serialised at omega bits.
struct PastaCommModel {
  pasta::PastaParams params;
  unsigned pixels_per_element = 1;
  double encrypt_us_per_block = 21.2;  ///< FPGA PASTA-4 block latency
                                       ///< (Artix-7 @75 MHz, Table II)

  std::uint64_t elements_per_frame(const Resolution& r) const;
  std::uint64_t blocks_per_frame(const Resolution& r) const;
  std::uint64_t frame_bytes(const Resolution& r) const;
  double frames_per_second(const Resolution& r, double bandwidth_bps) const;
  double encode_frames_per_second(const Resolution& r) const;
};

/// One bar of Fig. 8.
struct Fig8Point {
  std::string resolution;
  double bandwidth_bps = 0;
  double rise_fps = 0;
  double this_work_fps = 0;
  double ratio = 0;
};

/// All 6 bars (3 resolutions x 2 bandwidths).
std::vector<Fig8Point> fig8_series(const RiseCommModel& rise,
                                   const PastaCommModel& tw);

}  // namespace poe::analytics
