// Published numbers for the prior FHE client-side accelerators the paper
// compares against (Table III), carried as constants exactly as cited, plus
// helpers for per-element normalisation and technology scaling.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace poe::analytics {

struct PriorWork {
  std::string citation;   ///< e.g. "[18] Aloha-HE"
  std::string platform;   ///< FPGA family or ASIC node
  bool is_asic = false;
  bool is_riscv_soc = false;
  // FPGA resources (0 = not reported).
  std::uint64_t klut_x10 = 0;  ///< kLUT * 10 (to carry one decimal)
  std::uint64_t kff_x10 = 0;
  std::uint64_t dsp = 0;
  double bram = 0;
  // ASIC area (mm^2), if reported.
  std::optional<double> area_mm2;
  // Encryption latency and batch size.
  double encrypt_us = 0;        ///< one encryption
  std::uint64_t elements = 0;   ///< elements packed per encryption

  double us_per_element() const {
    return encrypt_us / static_cast<double>(elements);
  }
};

/// The prior-work rows of Table III.
const std::vector<PriorWork>& table3_prior_works();

/// Normalise ASIC area across nodes (first-order quadratic scaling), used
/// for the paper's "similar area post-technology normalization" claim.
double normalize_area_mm2(double area_mm2, unsigned from_nm, unsigned to_nm);

/// Direct-FHE client encryption latency on FPGA for small payloads
/// (§IV-C ①: FHE pays the full 2^12-element cost for any payload size).
double fhe_client_us_for_elements(const PriorWork& work,
                                  std::uint64_t elements);

}  // namespace poe::analytics
