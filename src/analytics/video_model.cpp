#include "analytics/video_model.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace poe::analytics {

Resolution qqvga() { return {"QQVGA", 160, 120}; }
Resolution qvga() { return {"QVGA", 320, 240}; }
Resolution vga() { return {"VGA", 640, 480}; }

std::uint64_t RiseCommModel::ciphertext_bytes() const {
  return 2 * n * log_q / 8;
}

std::uint64_t RiseCommModel::ciphertexts_per_frame(const Resolution& r) const {
  return ceil_div(r.pixels(), n);
}

std::uint64_t RiseCommModel::frame_bytes(const Resolution& r) const {
  return ciphertexts_per_frame(r) * ciphertext_bytes();
}

double RiseCommModel::frames_per_second(const Resolution& r,
                                        double bandwidth_bps) const {
  return bandwidth_bps / static_cast<double>(frame_bytes(r));
}

double RiseCommModel::encode_frames_per_second(const Resolution& r) const {
  const double us_per_frame =
      encrypt_us_per_ct * static_cast<double>(ciphertexts_per_frame(r));
  return 1e6 / us_per_frame;
}

std::uint64_t PastaCommModel::elements_per_frame(const Resolution& r) const {
  POE_ENSURE(8u * pixels_per_element < params.prime_bits(),
             "pixels do not fit the field element");
  return ceil_div(r.pixels(), pixels_per_element);
}

std::uint64_t PastaCommModel::blocks_per_frame(const Resolution& r) const {
  return ceil_div(elements_per_frame(r), params.t);
}

std::uint64_t PastaCommModel::frame_bytes(const Resolution& r) const {
  // Each block of t elements serialises to t * omega bits (paper §V: 132 B
  // for t = 32 at omega = 33).
  return blocks_per_frame(r) *
         ceil_div(static_cast<std::uint64_t>(params.t) * params.prime_bits(),
                  8);
}

double PastaCommModel::frames_per_second(const Resolution& r,
                                         double bandwidth_bps) const {
  return bandwidth_bps / static_cast<double>(frame_bytes(r));
}

double PastaCommModel::encode_frames_per_second(const Resolution& r) const {
  const double us_per_frame =
      encrypt_us_per_block * static_cast<double>(blocks_per_frame(r));
  return 1e6 / us_per_frame;
}

std::vector<Fig8Point> fig8_series(const RiseCommModel& rise,
                                   const PastaCommModel& tw) {
  std::vector<Fig8Point> out;
  for (const double bw : {kMaxBandwidthBps, kMinBandwidthBps}) {
    for (const auto& res : {qqvga(), qvga(), vga()}) {
      Fig8Point p;
      p.resolution = res.name;
      p.bandwidth_bps = bw;
      // Achievable rate is the min of link-limited and compute-limited.
      p.rise_fps = std::min(rise.frames_per_second(res, bw),
                            rise.encode_frames_per_second(res));
      p.this_work_fps = std::min(tw.frames_per_second(res, bw),
                                 tw.encode_frames_per_second(res));
      p.ratio = p.this_work_fps / p.rise_fps;
      out.push_back(p);
    }
  }
  return out;
}

}  // namespace poe::analytics
