#include "analytics/pke_model.hpp"

#include "common/bits.hpp"

namespace poe::analytics {

std::uint64_t PkeEncryptModel::ntt_mults() const {
  const std::uint64_t per_ntt = n / 2 * ceil_log2(n);
  return per_ntt * transforms_per_modulus * num_moduli;
}

double PkeEncryptModel::mults_per_element() const {
  return static_cast<double>(total_mults()) /
         static_cast<double>(elements_packed);
}

std::uint64_t PastaCostModel::affine_mults() const {
  const std::uint64_t t = params.t;
  // 2 halves * (R+1) layers, each: t^2 (matrix generation MACs) + t^2
  // (matrix-vector product).
  return 2 * params.affine_layers() * 2 * t * t;
}

std::uint64_t PastaCostModel::sbox_mults() const {
  const std::uint64_t t = params.t;
  // Feistel rounds: one squaring for t-1 elements per half; the final cube
  // round: two multiplications per element per half.
  const std::uint64_t feistel = 2 * (params.rounds - 1) * (t - 1);
  const std::uint64_t cube = 2 * 2 * t;
  return feistel + cube;
}

double PastaCostModel::mults_per_element() const {
  return static_cast<double>(total_mults()) / static_cast<double>(params.t);
}

double pasta_vs_pke_throughput_ratio(const PastaCostModel& pasta_model,
                                     const PkeEncryptModel& pke,
                                     std::uint64_t elements) {
  const std::uint64_t blocks = ceil_div(elements, pasta_model.params.t);
  const std::uint64_t encryptions = ceil_div(elements, pke.elements_packed);
  const double pasta_cost =
      static_cast<double>(blocks) *
      static_cast<double>(pasta_model.total_mults());
  const double pke_cost = static_cast<double>(encryptions) *
                          static_cast<double>(pke.total_mults());
  return pasta_cost / pke_cost;
}

}  // namespace poe::analytics
