// Multiplicative-complexity models for the paper's research-gap analysis
// (§I-A): the modular-multiplication count of an FHE public-key client
// encryption versus a PASTA block encryption.
#pragma once

#include <cstdint>

#include "pasta/params.hpp"

namespace poe::analytics {

/// NTT-based PKE client encryption cost model:
/// transforms_per_modulus NTTs of size N, each N/2 * log2(N) multiplications,
/// over num_moduli RNS moduli. Defaults are the paper's (§I-A): N = 2^13,
/// 3 transforms, 3 moduli -> ~2^19 multiplications.
struct PkeEncryptModel {
  std::uint64_t n = 1ull << 13;
  unsigned transforms_per_modulus = 3;
  unsigned num_moduli = 3;
  std::uint64_t elements_packed = 1ull << 12;

  std::uint64_t ntt_mults() const;
  std::uint64_t total_mults() const { return ntt_mults(); }
  double mults_per_element() const;
};

/// PASTA multiplicative cost: each affine computation costs t^2 for the
/// invertible matrix generation plus t^2 for the matrix-vector product;
/// there are 2(R+1) affine computations (two halves, R+1 layers). S-box
/// multiplications are counted too (lower-order).
struct PastaCostModel {
  pasta::PastaParams params;

  std::uint64_t affine_mults() const;
  std::uint64_t sbox_mults() const;
  std::uint64_t total_mults() const { return affine_mults() + sbox_mults(); }
  double mults_per_element() const;
};

/// §I-A's punchline: encrypting `elements` values with PASTA vs one FHE
/// encryption packing 2^12 — the factor by which PASTA is slower for
/// data-intensive workloads (paper: 32x for PASTA-3).
double pasta_vs_pke_throughput_ratio(const PastaCostModel& pasta_model,
                                     const PkeEncryptModel& pke,
                                     std::uint64_t elements);

}  // namespace poe::analytics
