#include "soc/pasta_peripheral.hpp"

#include "modular/modulus.hpp"

namespace poe::soc {

namespace {
constexpr unsigned kMasterReadLatency = 2;   ///< private bus RAM read, cycles
constexpr unsigned kMasterWriteLatency = 2;  ///< private bus RAM write
}

PastaPeripheral::PastaPeripheral(const pasta::PastaParams& params,
                                 rv::Ram& ram)
    : params_(params),
      ram_(ram),
      accel_(params),
      key_(params.key_size(), 0),
      out_(params.t, 0) {}

rv::u32 PastaPeripheral::read32(rv::u32 offset, rv::u64 now) {
  if (offset >= kOutLoBase && offset < kOutLoBase + params_.t * 4) {
    POE_ENSURE(!busy(now), "ciphertext readout while busy");
    return static_cast<rv::u32>(out_[(offset - kOutLoBase) / 4]);
  }
  if (offset >= kOutHiBase && offset < kOutHiBase + params_.t * 4) {
    POE_ENSURE(!busy(now), "ciphertext readout while busy");
    return static_cast<rv::u32>(out_[(offset - kOutHiBase) / 4] >> 32);
  }
  switch (offset) {
    case kRegStatus: {
      const bool b = busy(now);
      return (b ? 1u : 0u) | ((done_ && !b) ? 2u : 0u);
    }
    case kRegNonceLo: return static_cast<rv::u32>(nonce_);
    case kRegNonceHi: return static_cast<rv::u32>(nonce_ >> 32);
    case kRegCtrLo: return static_cast<rv::u32>(counter_);
    case kRegCtrHi: return static_cast<rv::u32>(counter_ >> 32);
    case kRegSrcAddr: return src_addr_;
    case kRegDstAddr: return dst_addr_;
    case kRegCyclesLo: return static_cast<rv::u32>(last_block_cycles_);
    case kRegCtrl: return 0;
    default:
      throw Error("PASTA peripheral: read from invalid offset " +
                  std::to_string(offset));
  }
}

void PastaPeripheral::write32(rv::u32 offset, rv::u32 value, rv::u64 now) {
  POE_ENSURE(!busy(now),
             "PASTA peripheral: register write while a block is in flight");
  if (offset >= kKeyLoBase && offset < kKeyLoBase + params_.key_size() * 4) {
    auto& slot = key_[(offset - kKeyLoBase) / 4];
    slot = (slot & ~0xFFFFFFFFull) | value;
    return;
  }
  if (offset >= kKeyHiBase && offset < kKeyHiBase + params_.key_size() * 4) {
    auto& slot = key_[(offset - kKeyHiBase) / 4];
    slot = (slot & 0xFFFFFFFFull) | (static_cast<std::uint64_t>(value) << 32);
    return;
  }
  switch (offset) {
    case kRegCtrl:
      if (value & 1u) start_block(now, (value & 2u) != 0);
      return;
    case kRegNonceLo:
      nonce_ = (nonce_ & ~0xFFFFFFFFull) | value;
      return;
    case kRegNonceHi:
      nonce_ = (nonce_ & 0xFFFFFFFFull) |
               (static_cast<std::uint64_t>(value) << 32);
      return;
    case kRegCtrLo:
      counter_ = (counter_ & ~0xFFFFFFFFull) | value;
      return;
    case kRegCtrHi:
      counter_ = (counter_ & 0xFFFFFFFFull) |
                 (static_cast<std::uint64_t>(value) << 32);
      return;
    case kRegSrcAddr:
      src_addr_ = value;
      return;
    case kRegDstAddr:
      dst_addr_ = value;
      return;
    default:
      throw Error("PASTA peripheral: write to invalid offset " +
                  std::to_string(offset));
  }
}

void PastaPeripheral::start_block(rv::u64 now, bool dma_writeback) {
  // Fetch the plaintext block over the private master port.
  const unsigned stride = element_stride();
  std::vector<std::uint64_t> msg(params_.t);
  for (std::size_t i = 0; i < params_.t; ++i) {
    const rv::u32 addr = src_addr_ + static_cast<rv::u32>(i) * stride;
    std::uint64_t v = ram_.load_word(addr);
    if (stride == 8) {
      v |= static_cast<std::uint64_t>(ram_.load_word(addr + 4)) << 32;
    }
    POE_ENSURE(v < params_.p, "plaintext element out of field range");
    msg[i] = v;
  }
  const std::uint64_t fetch_cycles =
      params_.t * kMasterReadLatency * (stride / 4);

  // Keystream generation overlaps the fetch; the message addition streams
  // with the final Mix, so the visible latency is the accelerator's.
  const auto result = accel_.run_block(key_, nonce_, counter_);
  const mod::Modulus mod(params_.p);
  for (std::size_t i = 0; i < params_.t; ++i) {
    out_[i] = mod.add(msg[i], result.keystream[i]);
  }
  last_block_cycles_ = result.stats.total_cycles;
  std::uint64_t busy_cycles = std::max<std::uint64_t>(
      result.stats.total_cycles, fetch_cycles + 4);
  if (dma_writeback) {
    // Stream the ciphertext straight to RAM over the master port; the core
    // only polls STATUS (no per-element slave readout).
    for (std::size_t i = 0; i < params_.t; ++i) {
      const rv::u32 addr = dst_addr_ + static_cast<rv::u32>(i) * stride;
      ram_.store_word(addr, static_cast<rv::u32>(out_[i]));
      if (stride == 8) {
        ram_.store_word(addr + 4, static_cast<rv::u32>(out_[i] >> 32));
      }
    }
    busy_cycles += params_.t * kMasterWriteLatency * (stride / 4);
  }
  busy_until_ = now + busy_cycles;
  done_ = true;

  stats_.blocks_processed += 1;
  stats_.accelerator_cycles += result.stats.total_cycles;
  stats_.fetch_cycles += fetch_cycles;
}

}  // namespace poe::soc
