// The RISC-V SoC: Ibex-class RV32IM core + RAM + PASTA peripheral on a
// shared data bus (paper §IV-A ③, Fig. 6 context).
#pragma once

#include <cstdint>
#include <memory>

#include "pasta/params.hpp"
#include "riscv/bus.hpp"
#include "riscv/cpu.hpp"
#include "soc/pasta_peripheral.hpp"

namespace poe::soc {

struct SocConfig {
  pasta::PastaParams params;
  std::size_t ram_bytes = 1u << 20;
  rv::u32 ram_base = 0x00000000;
  rv::u32 periph_base = 0x40000000;
  rv::u32 reset_pc = 0x00000000;
};

class Soc {
 public:
  explicit Soc(const SocConfig& config);

  rv::Ram& ram() { return ram_; }
  PastaPeripheral& peripheral() { return periph_; }
  rv::Cpu& cpu() { return cpu_; }
  rv::Bus& bus() { return bus_; }
  const SocConfig& config() const { return config_; }

  /// Load a program at the reset PC and run it to completion.
  rv::StopReason run_program(const std::vector<rv::u32>& words,
                             rv::u64 max_instructions = 500'000'000);

 private:
  rv::Bus& map_devices();  ///< wires RAM + peripheral; returns the bus

  SocConfig config_;
  rv::Ram ram_;
  PastaPeripheral periph_;
  rv::Bus bus_;
  rv::Cpu cpu_;
};

}  // namespace poe::soc
