// Builds the RISC-V driver program that exercises the PASTA peripheral:
// upload key + nonce over the slave bus, then per block set the counter and
// source address, pulse start, poll the status register, and read the
// ciphertext back out — the exact block-serial flow the paper describes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pasta/params.hpp"
#include "riscv/assembler.hpp"
#include "riscv/bus.hpp"

namespace poe::soc {

struct DriverLayout {
  rv::u32 key_addr = 0x10000;     ///< 2t elements
  rv::u32 src_addr = 0x20000;     ///< num_blocks * t plaintext elements
  rv::u32 dst_addr = 0x30000;     ///< ciphertext destination
  rv::u32 cycles_addr = 0x40000;  ///< [0]: start mcycle, [4]: end mcycle
  std::size_t num_blocks = 1;
  std::uint64_t nonce = 0;
  /// Use the peripheral's DMA write-back (CTRL bit 1): the ciphertext goes
  /// to RAM over the master port and the core skips the per-element slave
  /// readout loop.
  bool dma_writeback = false;
};

/// Assemble the encryption driver for the given PASTA configuration.
std::vector<rv::u32> build_encrypt_driver(const pasta::PastaParams& params,
                                          rv::u32 periph_base,
                                          const DriverLayout& layout);

/// Store field elements into RAM with the peripheral's element stride
/// (4 bytes for omega <= 32, else 8).
void store_elements(rv::Ram& ram, rv::u32 addr,
                    std::span<const std::uint64_t> elements, unsigned stride);

/// Load field elements back from RAM.
std::vector<std::uint64_t> load_elements(const rv::Ram& ram, rv::u32 addr,
                                         std::size_t count, unsigned stride);

}  // namespace poe::soc
