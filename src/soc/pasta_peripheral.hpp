// The PASTA encryption peripheral of the RISC-V SoC (paper §IV-A ③).
//
// Loosely coupled design: the peripheral sits on the core's data bus as a
// slave (start signal, nonce/counter/key writes, status polling, ciphertext
// readout) and owns a private master port into RAM for fetching plaintext
// blocks. As in the paper, the single slave bus serialises control and data
// movement, so "the processing of one block must be completed before the
// next block can be started".
//
// Register map (word offsets within the 4 KiB window):
//   0x000 CTRL       bit0: start one block; bit1: DMA write-back (the
//                    peripheral stores the ciphertext to DST_ADDR through
//                    its master port instead of the core reading OUT_*)
//   0x004 STATUS     bit0 = busy, bit1 = done (result valid)
//   0x008 NONCE_LO   0x00C NONCE_HI
//   0x010 CTR_LO     0x014 CTR_HI
//   0x018 SRC_ADDR   RAM byte address of the plaintext block
//   0x01C CYCLES_LO  accelerator cycles of the last block (diagnostic)
//   0x020 DST_ADDR   RAM byte address for DMA write-back
//   0x400 KEY_LO[2t] 0x800 KEY_HI[2t]   (HI used when omega > 32)
//   0xC00 OUT_LO[t]  0xE00 OUT_HI[t]
//
// Elements in RAM are stored little-endian using 4 bytes when omega <= 32
// and 8 bytes otherwise.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/accelerator.hpp"
#include "pasta/params.hpp"
#include "riscv/bus.hpp"

namespace poe::soc {

inline constexpr rv::u32 kRegCtrl = 0x000;
inline constexpr rv::u32 kRegStatus = 0x004;
inline constexpr rv::u32 kRegNonceLo = 0x008;
inline constexpr rv::u32 kRegNonceHi = 0x00C;
inline constexpr rv::u32 kRegCtrLo = 0x010;
inline constexpr rv::u32 kRegCtrHi = 0x014;
inline constexpr rv::u32 kRegSrcAddr = 0x018;
inline constexpr rv::u32 kRegCyclesLo = 0x01C;
inline constexpr rv::u32 kRegDstAddr = 0x020;
inline constexpr rv::u32 kKeyLoBase = 0x400;
inline constexpr rv::u32 kKeyHiBase = 0x800;
inline constexpr rv::u32 kOutLoBase = 0xC00;
inline constexpr rv::u32 kOutHiBase = 0xE00;
inline constexpr rv::u32 kWindowSize = 0x1000;

struct PeripheralStats {
  std::uint64_t blocks_processed = 0;
  std::uint64_t accelerator_cycles = 0;  ///< sum over blocks
  std::uint64_t fetch_cycles = 0;        ///< master-port RAM reads
};

class PastaPeripheral : public rv::BusDevice {
 public:
  /// `ram` is the target of the private master port.
  PastaPeripheral(const pasta::PastaParams& params, rv::Ram& ram);

  rv::u32 read32(rv::u32 offset, rv::u64 now) override;
  void write32(rv::u32 offset, rv::u32 value, rv::u64 now) override;
  unsigned access_latency() const override { return 1; }

  /// Bytes one field element occupies in RAM.
  unsigned element_stride() const { return params_.prime_bits() <= 32 ? 4 : 8; }

  const PeripheralStats& stats() const { return stats_; }
  const pasta::PastaParams& params() const { return params_; }

 private:
  bool busy(rv::u64 now) const { return now < busy_until_; }
  void start_block(rv::u64 now, bool dma_writeback);

  pasta::PastaParams params_;
  rv::Ram& ram_;
  hw::AcceleratorSim accel_;
  std::vector<std::uint64_t> key_;
  std::uint64_t nonce_ = 0;
  std::uint64_t counter_ = 0;
  rv::u32 src_addr_ = 0;
  rv::u32 dst_addr_ = 0;
  std::vector<std::uint64_t> out_;
  rv::u64 busy_until_ = 0;
  bool done_ = false;
  std::uint64_t last_block_cycles_ = 0;
  PeripheralStats stats_;
};

}  // namespace poe::soc
