#include "soc/soc.hpp"

#include "riscv/assembler.hpp"

namespace poe::soc {

rv::Bus& Soc::map_devices() {
  bus_.map(config_.ram_base, static_cast<rv::u32>(config_.ram_bytes), &ram_);
  bus_.map(config_.periph_base, kWindowSize, &periph_);
  return bus_;
}

Soc::Soc(const SocConfig& config)
    : config_(config),
      ram_(config.ram_bytes),
      periph_(config.params, ram_),
      bus_(),
      cpu_(map_devices(), config.reset_pc) {}

rv::StopReason Soc::run_program(const std::vector<rv::u32>& words,
                                rv::u64 max_instructions) {
  rv::Program::load(ram_, config_.reset_pc - config_.ram_base, words);
  cpu_.set_pc(config_.reset_pc);
  return cpu_.run(max_instructions);
}

}  // namespace poe::soc
