#include "soc/driver.hpp"

#include "common/error.hpp"
#include "soc/pasta_peripheral.hpp"

namespace poe::soc {

using rv::Program;
using rv::Reg;

std::vector<rv::u32> build_encrypt_driver(const pasta::PastaParams& params,
                                          rv::u32 periph_base,
                                          const DriverLayout& layout) {
  const unsigned stride = params.prime_bits() <= 32 ? 4 : 8;
  const bool wide = stride == 8;
  const auto t = static_cast<rv::u32>(params.t);

  Program p;

  // Record the start cycle.
  p.li(Reg::s11, layout.cycles_addr);
  p.csrr_cycle(Reg::t0);
  p.sw(Reg::t0, Reg::s11, 0);

  // --- Upload the key through the slave window.
  p.li(Reg::s1, layout.key_addr);
  p.li(Reg::s2, periph_base + kKeyLoBase);
  p.li(Reg::t0, static_cast<rv::u32>(params.key_size()));
  auto key_loop = p.make_label();
  p.bind(key_loop);
  p.lw(Reg::t1, Reg::s1, 0);
  p.sw(Reg::t1, Reg::s2, 0);
  if (wide) {
    p.lw(Reg::t2, Reg::s1, 4);
    p.sw(Reg::t2, Reg::s2,
         static_cast<std::int32_t>(kKeyHiBase - kKeyLoBase));
  }
  p.addi(Reg::s1, Reg::s1, static_cast<std::int32_t>(stride));
  p.addi(Reg::s2, Reg::s2, 4);
  p.addi(Reg::t0, Reg::t0, -1);
  p.bne(Reg::t0, Reg::x0, key_loop);

  // --- Nonce.
  p.li(Reg::s3, periph_base);
  p.li(Reg::t1, static_cast<rv::u32>(layout.nonce));
  p.sw(Reg::t1, Reg::s3, kRegNonceLo);
  p.li(Reg::t1, static_cast<rv::u32>(layout.nonce >> 32));
  p.sw(Reg::t1, Reg::s3, kRegNonceHi);

  // --- Per-block loop.
  p.li(Reg::s4, 0);  // block counter
  p.li(Reg::s5, layout.src_addr);
  p.li(Reg::s6, layout.dst_addr);
  auto block_loop = p.make_label();
  p.bind(block_loop);
  p.sw(Reg::s4, Reg::s3, kRegCtrLo);
  p.sw(Reg::x0, Reg::s3, kRegCtrHi);
  p.sw(Reg::s5, Reg::s3, kRegSrcAddr);
  if (layout.dma_writeback) {
    p.sw(Reg::s6, Reg::s3, kRegDstAddr);
  }
  p.li(Reg::t1, layout.dma_writeback ? 3 : 1);
  p.sw(Reg::t1, Reg::s3, kRegCtrl);

  // Poll the done bit. The block stays in flight until the peripheral's
  // busy_until cycle passes — the single slave bus serialises everything.
  auto poll = p.make_label();
  p.bind(poll);
  p.lw(Reg::t1, Reg::s3, kRegStatus);
  p.andi(Reg::t1, Reg::t1, 2);
  p.beq(Reg::t1, Reg::x0, poll);

  if (layout.dma_writeback) {
    // The peripheral already streamed the ciphertext to RAM; just advance
    // the destination pointer.
    p.li(Reg::t1, t * stride);
    p.add(Reg::s6, Reg::s6, Reg::t1);
  } else {
    // Read the ciphertext block out over the slave bus.
    p.li(Reg::s7, periph_base + kOutLoBase);
    p.li(Reg::t0, t);
    auto out_loop = p.make_label();
    p.bind(out_loop);
    p.lw(Reg::t1, Reg::s7, 0);
    p.sw(Reg::t1, Reg::s6, 0);
    if (wide) {
      p.lw(Reg::t2, Reg::s7,
           static_cast<std::int32_t>(kOutHiBase - kOutLoBase));
      p.sw(Reg::t2, Reg::s6, 4);
    }
    p.addi(Reg::s7, Reg::s7, 4);
    p.addi(Reg::s6, Reg::s6, static_cast<std::int32_t>(stride));
    p.addi(Reg::t0, Reg::t0, -1);
    p.bne(Reg::t0, Reg::x0, out_loop);
  }

  // Advance the source pointer and loop over blocks.
  p.li(Reg::t1, t * stride);
  p.add(Reg::s5, Reg::s5, Reg::t1);
  p.addi(Reg::s4, Reg::s4, 1);
  p.li(Reg::t1, static_cast<rv::u32>(layout.num_blocks));
  p.bne(Reg::s4, Reg::t1, block_loop);

  // Record the end cycle and stop.
  p.csrr_cycle(Reg::t0);
  p.sw(Reg::t0, Reg::s11, 4);
  p.ecall();

  return p.assemble();
}

void store_elements(rv::Ram& ram, rv::u32 addr,
                    std::span<const std::uint64_t> elements, unsigned stride) {
  POE_ENSURE(stride == 4 || stride == 8, "stride must be 4 or 8");
  for (std::size_t i = 0; i < elements.size(); ++i) {
    const rv::u32 a = addr + static_cast<rv::u32>(i) * stride;
    ram.store_word(a, static_cast<rv::u32>(elements[i]));
    if (stride == 8) {
      ram.store_word(a + 4, static_cast<rv::u32>(elements[i] >> 32));
    } else {
      POE_ENSURE(elements[i] <= 0xFFFFFFFFull,
                 "element does not fit a 4-byte stride");
    }
  }
}

std::vector<std::uint64_t> load_elements(const rv::Ram& ram, rv::u32 addr,
                                         std::size_t count, unsigned stride) {
  POE_ENSURE(stride == 4 || stride == 8, "stride must be 4 or 8");
  std::vector<std::uint64_t> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    const rv::u32 a = addr + static_cast<rv::u32>(i) * stride;
    out[i] = ram.load_word(a);
    if (stride == 8) {
      out[i] |= static_cast<std::uint64_t>(ram.load_word(a + 4)) << 32;
    }
  }
  return out;
}

}  // namespace poe::soc
