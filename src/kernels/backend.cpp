#include "kernels/backend.hpp"

#include <cstdlib>

#include "kernels/backend_impl.hpp"

namespace poe::kernels {

const Backend* avx2_backend() {
  static const Backend* const b = []() -> const Backend* {
    const Backend* impl = detail::avx2_backend_impl();
    if (impl == nullptr) return nullptr;  // toolchain lacked -mavx2
    if (!__builtin_cpu_supports("avx2")) return nullptr;
    return impl;
  }();
  return b;
}

const Backend* avx512_backend() {
  static const Backend* const b = []() -> const Backend* {
    const Backend* impl = detail::avx512_backend_impl();
    if (impl == nullptr) return nullptr;
    if (!__builtin_cpu_supports("avx512f") ||
        !__builtin_cpu_supports("avx512dq") ||
        !__builtin_cpu_supports("avx512vl")) {
      return nullptr;
    }
    return impl;
  }();
  return b;
}

std::vector<const Backend*> available_backends() {
  std::vector<const Backend*> out{&scalar_backend()};
  if (const Backend* b = avx2_backend()) out.push_back(b);
  if (const Backend* b = avx512_backend()) out.push_back(b);
  return out;
}

const Backend* backend_by_name(std::string_view name) {
  if (name == "scalar") return &scalar_backend();
  if (name == "avx2") return avx2_backend();
  if (name == "avx512") return avx512_backend();
  return nullptr;
}

const Backend& select_backend() {
  if (const char* env = std::getenv("POE_KERNEL_BACKEND");
      env != nullptr && *env != '\0') {
    const Backend* b = backend_by_name(env);
    POE_ENSURE(b != nullptr,
               "POE_KERNEL_BACKEND=" << env
                                     << " is unknown or unavailable on this "
                                        "machine (choices: scalar, avx2, "
                                        "avx512)");
    return *b;
  }
  // Widest first: the AVX-512 path does 8 lanes with native 64-bit
  // multiply/min, AVX2 does 4 with emulated mulhi, scalar is always there.
  if (const Backend* b = avx512_backend()) return *b;
  if (const Backend* b = avx2_backend()) return *b;
  return scalar_backend();
}

const Backend& default_backend() {
  static const Backend& b = select_backend();
  return b;
}

}  // namespace poe::kernels
