// Internal seam between the dispatcher (backend.cpp) and the per-ISA
// translation units. avx2.cpp / avx512.cpp are ALWAYS compiled; when the
// toolchain rejects the ISA flags (CMake leaves POE_HAVE_AVX2/POE_HAVE_AVX512
// unset on that source) they compile to a stub returning nullptr. Runtime
// CPU capability is the dispatcher's problem, not these factories'.
#pragma once

namespace poe::kernels {

class Backend;

namespace detail {

/// The compiled AVX2 implementation, or nullptr when the build lacks it.
/// Does NOT check CPU support — calling into the returned backend on a
/// non-AVX2 CPU is illegal.
const Backend* avx2_backend_impl();

/// Likewise for AVX-512 (F + DQ + VL).
const Backend* avx512_backend_impl();

}  // namespace detail
}  // namespace poe::kernels
