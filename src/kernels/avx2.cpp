// Avx2Backend — 4 coefficients per lane group.
//
// AVX2 has no 64-bit unsigned compare, no 64-bit mullo, and no 64x64->128
// multiply, so everything is composed:
//   * full/hi/lo 64-bit products from four _mm256_mul_epu32 partials
//     (schoolbook on 32-bit halves),
//   * unsigned compares via the sign-bit-flip trick over _mm256_cmpgt_epi64,
//   * conditional subtraction as subtract-then-masked-add-back (coefficients
//     ride up to 4q < 2^64, so signed compares would be wrong).
// Every routine evaluates the scalar backend's exact integer formula — same
// Barrett estimates, same Shoup products, same flush schedule — so outputs
// are bit-identical by construction, and the differential suite checks it.
//
// The NTT vectorizes stages with butterfly span t >= 4 directly (one
// broadcast twiddle per group); the two tail stages re-tile 8 coefficients
// across two registers:
//   t == 2: 128-bit-lane swaps (_mm256_permute2x128_si256 0x20/0x31), a
//           self-inverse scramble, twiddles widened [s0 s1] -> [s0 s0 s1 s1]
//           with _mm256_permute4x64_epi64 imm 0x50;
//   t == 1: unpacklo/hi_epi64 (also self-inverse, pair order [0,2,1,3]),
//           twiddles matched with _mm256_permute4x64_epi64 imm 0xD8.
#include "kernels/backend_impl.hpp"

#ifdef POE_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>
#include <vector>

#include "kernels/backend.hpp"

namespace poe::kernels {
namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

inline __m256i load4(const u64* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void store4(u64* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}
inline __m256i bcast(u64 v) {
  return _mm256_set1_epi64x(static_cast<long long>(v));
}

/// a > b, unsigned: flip sign bits, then the signed compare is correct.
inline __m256i cmpgt_epu64(__m256i a, __m256i b) {
  const __m256i sign = bcast(0x8000000000000000ULL);
  return _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign),
                            _mm256_xor_si256(b, sign));
}

/// a >= m ? a - m : a — subtract, then add m back in lanes that wrapped.
inline __m256i csub_epu64(__m256i a, __m256i m) {
  const __m256i t = _mm256_sub_epi64(a, m);
  return _mm256_add_epi64(t, _mm256_and_si256(m, cmpgt_epu64(m, a)));
}

/// Low 64 bits of a*b (3 partial products; the hi*hi term never reaches
/// the low word).
inline __m256i mullo_epu64(__m256i a, __m256i b) {
  const __m256i lh = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
  const __m256i hl = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  const __m256i ll = _mm256_mul_epu32(a, b);
  return _mm256_add_epi64(ll,
                          _mm256_slli_epi64(_mm256_add_epi64(lh, hl), 32));
}

/// Full 64x64 -> 128 product, schoolbook on 32-bit halves. The carry
/// chain is the standard one: t = hl + (ll >> 32) and t2 = lh + (t & m32)
/// cannot overflow because each partial is <= (2^32-1)^2.
inline void mul_epu64_full(__m256i a, __m256i b, __m256i& hi, __m256i& lo) {
  const __m256i m32 = bcast(0xFFFFFFFFULL);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i lh = _mm256_mul_epu32(a, b_hi);
  const __m256i hl = _mm256_mul_epu32(a_hi, b);
  const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i t = _mm256_add_epi64(hl, _mm256_srli_epi64(ll, 32));
  const __m256i t2 = _mm256_add_epi64(lh, _mm256_and_si256(t, m32));
  hi = _mm256_add_epi64(hh, _mm256_add_epi64(_mm256_srli_epi64(t, 32),
                                             _mm256_srli_epi64(t2, 32)));
  lo = _mm256_add_epi64(_mm256_slli_epi64(t2, 32),
                        _mm256_and_si256(ll, m32));
}

inline __m256i mulhi_epu64(__m256i a, __m256i b) {
  __m256i hi, lo;
  mul_epu64_full(a, b, hi, lo);
  return hi;
}

/// Lazy Shoup product: x*w - floor(x*w'/2^64)*q, result in [0, 2q).
inline __m256i mul_shoup_lazy4(__m256i x, __m256i w, __m256i w_shoup,
                               __m256i q) {
  const __m256i hi = mulhi_epu64(x, w_shoup);
  return _mm256_sub_epi64(mullo_epu64(x, w), mullo_epu64(hi, q));
}

/// Vector transliteration of Modulus::mul — identical quotient estimate
/// t = ((z >> (k-1)) * mu) >> (k+2), so identical results lane for lane.
/// Shift counts are runtime (k = bit width of p); _mm256_srl/sll_epi64
/// return 0 for counts >= 64, which makes the k == 62 corner (k+2 == 64,
/// the high word carries the whole estimate) fall out correctly.
struct BarrettVec {
  __m256i p, two_p, mu;
  __m128i sh_z_lo, sh_z_hi, sh_t_lo, sh_t_hi;

  explicit BarrettVec(const mod::Modulus& m)
      : p(bcast(m.value())),
        two_p(bcast(2 * m.value())),
        mu(bcast(m.barrett_mu())),
        sh_z_lo(_mm_cvtsi32_si128(static_cast<int>(m.bit_width() - 1))),
        sh_z_hi(_mm_cvtsi32_si128(static_cast<int>(65 - m.bit_width()))),
        sh_t_lo(_mm_cvtsi32_si128(static_cast<int>(m.bit_width() + 2))),
        sh_t_hi(_mm_cvtsi32_si128(static_cast<int>(62 - m.bit_width()))) {}

  __m256i mul(__m256i a, __m256i b) const {
    __m256i zhi, zlo;
    mul_epu64_full(a, b, zhi, zlo);
    // z >> (k-1): fits 64 bits since z < p^2 < 2^(2k).
    const __m256i zshift = _mm256_or_si256(_mm256_srl_epi64(zlo, sh_z_lo),
                                           _mm256_sll_epi64(zhi, sh_z_hi));
    __m256i phi, plo;
    mul_epu64_full(zshift, mu, phi, plo);
    const __m256i t = _mm256_or_si256(_mm256_srl_epi64(plo, sh_t_lo),
                                      _mm256_sll_epi64(phi, sh_t_hi));
    __m256i r = _mm256_sub_epi64(zlo, mullo_epu64(t, p));  // < 3p
    r = csub_epu64(r, two_p);
    return csub_epu64(r, p);
  }
};

/// Vector transliteration of Modulus::reduce128_barrett: same ratio words,
/// same truncated-cross-product quotient estimate, remainder < 4p closed
/// with three conditional subtracts (== the scalar while loop).
struct Reduce128Vec {
  __m256i p, rlo, rhi;

  explicit Reduce128Vec(const mod::Modulus& m)
      : p(bcast(m.value())),
        rlo(bcast(m.ratio_lo())),
        rhi(bcast(m.ratio_hi())) {}

  __m256i reduce(__m256i xlo, __m256i xhi) const {
    const __m256i c1 = mulhi_epu64(xlo, rlo);
    __m256i mlhi, mllo, hlhi, hllo;
    mul_epu64_full(xlo, rhi, mlhi, mllo);
    mul_epu64_full(xhi, rlo, hlhi, hllo);
    // mid = xlo*rhi + xhi*rlo + c1 as a 128-bit sum; carries detected by
    // wrap (mask is all-ones == -1, so subtracting it adds the carry).
    const __m256i s1 = _mm256_add_epi64(mllo, hllo);
    const __m256i carry1 = cmpgt_epu64(mllo, s1);
    const __m256i s2 = _mm256_add_epi64(s1, c1);
    const __m256i carry2 = cmpgt_epu64(s1, s2);
    __m256i mid_hi = _mm256_add_epi64(mlhi, hlhi);
    mid_hi = _mm256_sub_epi64(mid_hi, carry1);
    mid_hi = _mm256_sub_epi64(mid_hi, carry2);
    const __m256i qest = _mm256_add_epi64(mullo_epu64(xhi, rhi), mid_hi);
    __m256i r = _mm256_sub_epi64(xlo, mullo_epu64(qest, p));  // < 4p
    r = csub_epu64(r, p);
    r = csub_epu64(r, p);
    return csub_epu64(r, p);
  }
};

/// 128-bit lane-accumulator add: acc += (phi:plo), carry by wrap detection.
inline void acc128_add(__m256i& acc_lo, __m256i& acc_hi, __m256i plo,
                       __m256i phi) {
  const __m256i nlo = _mm256_add_epi64(acc_lo, plo);
  const __m256i carry = cmpgt_epu64(acc_lo, nlo);
  acc_hi = _mm256_sub_epi64(_mm256_add_epi64(acc_hi, phi), carry);
  acc_lo = nlo;
}

class Avx2Backend final : public Backend {
 public:
  std::string_view name() const override { return "avx2"; }

  void add(u64* dst, const u64* src, std::size_t n,
           const mod::Modulus& m) const override {
    const __m256i p = bcast(m.value());
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      // Reduced operands: the sum stays below 2p < 2^63, no wrap.
      store4(dst + j,
             csub_epu64(_mm256_add_epi64(load4(dst + j), load4(src + j)), p));
    }
    for (; j < n; ++j) dst[j] = m.add(dst[j], src[j]);
  }

  void sub(u64* dst, const u64* src, std::size_t n,
           const mod::Modulus& m) const override {
    const __m256i p = bcast(m.value());
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m256i a = load4(dst + j);
      const __m256i b = load4(src + j);
      const __m256i t = _mm256_sub_epi64(a, b);
      store4(dst + j,
             _mm256_add_epi64(t, _mm256_and_si256(p, cmpgt_epu64(b, a))));
    }
    for (; j < n; ++j) dst[j] = m.sub(dst[j], src[j]);
  }

  void mul(u64* dst, const u64* src, std::size_t n,
           const mod::Modulus& m) const override {
    const BarrettVec bv(m);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      store4(dst + j, bv.mul(load4(dst + j), load4(src + j)));
    }
    for (; j < n; ++j) dst[j] = m.mul(dst[j], src[j]);
  }

  void add_mul(u64* dst, const u64* a, const u64* b, std::size_t n,
               const mod::Modulus& m) const override {
    const BarrettVec bv(m);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m256i prod = bv.mul(load4(a + j), load4(b + j));
      store4(dst + j,
             csub_epu64(_mm256_add_epi64(load4(dst + j), prod), bv.p));
    }
    for (; j < n; ++j) dst[j] = m.add(dst[j], m.mul(a[j], b[j]));
  }

  void mul_shoup(u64* dst, const u64* src, std::size_t n, u64 w, u64 w_shoup,
                 u64 q) const override {
    const __m256i wv = bcast(w), wsv = bcast(w_shoup), qv = bcast(q);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      store4(dst + j, csub_epu64(mul_shoup_lazy4(load4(src + j), wv, wsv, qv),
                                 qv));
    }
    for (; j < n; ++j) {
      const u64 hi = static_cast<u64>((static_cast<u128>(src[j]) * w_shoup)
                                      >> 64);
      u64 r = src[j] * w - hi * q;
      if (r >= q) r -= q;
      dst[j] = r;
    }
  }

  void reduce128(u64* out, const u64* lo, const u64* hi, std::size_t n,
                 const mod::Modulus& m) const override {
    const Reduce128Vec rv(m);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      store4(out + j, rv.reduce(load4(lo + j), load4(hi + j)));
    }
    for (; j < n; ++j) {
      out[j] = m.reduce128_barrett((static_cast<u128>(hi[j]) << 64) | lo[j]);
    }
  }

  void ksw_accumulate(u64* dst0, u64* dst1, const u64* const* dig,
                      const u64* const* kb, const u64* const* ka,
                      std::size_t nd, std::size_t n, const std::uint32_t* perm,
                      const mod::Modulus& m, bool seed0,
                      bool seed1) const override {
    // Hoisted rotations permute the digit reads. Per-lane gathers turned
    // out to cost the entire vector win on real silicon, so the shared
    // permutation is materialized once per digit row into a reusable
    // scratch slab and the inner product always runs contiguous. Reads
    // and the flush schedule are unchanged, so outputs stay bit-identical.
    if (perm != nullptr) {
      static thread_local std::vector<u64> scratch;
      static thread_local std::vector<const u64*> rows;
      scratch.resize(nd * n);
      rows.resize(nd);
      for (std::size_t w = 0; w < nd; ++w) {
        u64* dst = scratch.data() + w * n;
        const u64* src = dig[w];
        for (std::size_t i = 0; i < n; ++i) dst[i] = src[perm[i]];
        rows[w] = dst;
      }
      ksw_accumulate(dst0, dst1, rows.data(), kb, ka, nd, n, nullptr, m,
                     seed0, seed1);
      return;
    }
    // Same flush interval as the scalar backend — the schedule is uniform
    // across slots, so one counter covers all four lanes.
    const u128 term_max = static_cast<u128>(m.value() - 1) * (m.value() - 1);
    const std::size_t flush = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::min<u128>(~static_cast<u128>(0) / term_max - 1,
                              ~std::size_t{0})));
    const Reduce128Vec rv(m);
    const __m256i zero = _mm256_setzero_si256();
    std::size_t idx = 0;
    for (; idx + 4 <= n; idx += 4) {
      __m256i acc0_lo = seed0 ? load4(dst0 + idx) : zero, acc0_hi = zero;
      __m256i acc1_lo = seed1 ? load4(dst1 + idx) : zero, acc1_hi = zero;
      std::size_t since = 0;
      for (std::size_t w = 0; w < nd; ++w) {
        const __m256i v = load4(dig[w] + idx);
        __m256i phi, plo;
        mul_epu64_full(v, load4(kb[w] + idx), phi, plo);
        acc128_add(acc0_lo, acc0_hi, plo, phi);
        mul_epu64_full(v, load4(ka[w] + idx), phi, plo);
        acc128_add(acc1_lo, acc1_hi, plo, phi);
        if (++since == flush) {
          acc0_lo = rv.reduce(acc0_lo, acc0_hi);
          acc1_lo = rv.reduce(acc1_lo, acc1_hi);
          acc0_hi = acc1_hi = zero;
          since = 0;
        }
      }
      store4(dst0 + idx, rv.reduce(acc0_lo, acc0_hi));
      store4(dst1 + idx, rv.reduce(acc1_lo, acc1_hi));
    }
    for (; idx < n; ++idx) {  // scalar tail, same schedule
      u128 acc0 = seed0 ? dst0[idx] : 0;
      u128 acc1 = seed1 ? dst1[idx] : 0;
      std::size_t since = 0;
      for (std::size_t w = 0; w < nd; ++w) {
        const u128 v = dig[w][idx];
        acc0 += v * kb[w][idx];
        acc1 += v * ka[w][idx];
        if (++since == flush) {
          acc0 = m.reduce128_barrett(acc0);
          acc1 = m.reduce128_barrett(acc1);
          since = 0;
        }
      }
      dst0[idx] = m.reduce128_barrett(acc0);
      dst1[idx] = m.reduce128_barrett(acc1);
    }
  }

  void permute(u64* dst, const u64* src, const std::uint32_t* perm,
               std::size_t n) const override {
    // Gather-free: the sequential stores dominate, and hardware gathers
    // lose to scalar loads on this access pattern.
    for (std::size_t idx = 0; idx < n; ++idx) dst[idx] = src[perm[idx]];
  }

 protected:
  void ntt_impl(u64* x, const NttTables& tb) const override {
    if (tb.n < 8) {  // too small to tile; the reference loop is fine
      scalar_backend().ntt_inplace(x, tb);
      return;
    }
    const __m256i qv = bcast(tb.q), two_qv = bcast(2 * tb.q);
    const u64* w = tb.psi;
    const u64* ws = tb.psi_shoup;
    std::size_t t = tb.n;
    for (std::size_t m = 1; m < tb.n; m <<= 1) {
      t >>= 1;
      if (t >= 4) {
        for (std::size_t i = 0; i < m; ++i) {
          const std::size_t j1 = 2 * i * t;
          const __m256i s = bcast(w[m + i]);
          const __m256i ss = bcast(ws[m + i]);
          for (std::size_t j = j1; j < j1 + t; j += 4) {
            const __m256i u = csub_epu64(load4(x + j), two_qv);
            const __m256i v = mul_shoup_lazy4(load4(x + j + t), s, ss, qv);
            store4(x + j, _mm256_add_epi64(u, v));
            store4(x + j + t,
                   _mm256_add_epi64(_mm256_sub_epi64(u, v), two_qv));
          }
        }
      } else if (t == 2) {
        // Two 4-wide groups per iteration; u/v live in opposite 128-bit
        // halves, so the swap is permute2x128 (self-inverse).
        for (std::size_t k = 0; k < m; k += 2) {
          const __m256i y0 = load4(x + 4 * k);
          const __m256i y1 = load4(x + 4 * k + 4);
          const __m256i u0 = _mm256_permute2x128_si256(y0, y1, 0x20);
          const __m256i vin = _mm256_permute2x128_si256(y0, y1, 0x31);
          const __m256i tw = _mm256_permute4x64_epi64(
              _mm256_zextsi128_si256(_mm_loadu_si128(
                  reinterpret_cast<const __m128i*>(w + m + k))),
              0x50);
          const __m256i tws = _mm256_permute4x64_epi64(
              _mm256_zextsi128_si256(_mm_loadu_si128(
                  reinterpret_cast<const __m128i*>(ws + m + k))),
              0x50);
          const __m256i u = csub_epu64(u0, two_qv);
          const __m256i v = mul_shoup_lazy4(vin, tw, tws, qv);
          const __m256i nu = _mm256_add_epi64(u, v);
          const __m256i nv = _mm256_add_epi64(_mm256_sub_epi64(u, v), two_qv);
          store4(x + 4 * k, _mm256_permute2x128_si256(nu, nv, 0x20));
          store4(x + 4 * k + 4, _mm256_permute2x128_si256(nu, nv, 0x31));
        }
      } else {  // t == 1
        // Four adjacent pairs per iteration; unpacklo/hi interleave is
        // self-inverse with pair order [0,2,1,3], twiddles matched by
        // permute4x64 imm 0xD8 (= selectors 0,2,1,3).
        for (std::size_t k = 0; k < m; k += 4) {
          const __m256i y0 = load4(x + 2 * k);
          const __m256i y1 = load4(x + 2 * k + 4);
          const __m256i u0 = _mm256_unpacklo_epi64(y0, y1);
          const __m256i vin = _mm256_unpackhi_epi64(y0, y1);
          const __m256i tw =
              _mm256_permute4x64_epi64(load4(w + m + k), 0xD8);
          const __m256i tws =
              _mm256_permute4x64_epi64(load4(ws + m + k), 0xD8);
          const __m256i u = csub_epu64(u0, two_qv);
          const __m256i v = mul_shoup_lazy4(vin, tw, tws, qv);
          const __m256i nu = _mm256_add_epi64(u, v);
          const __m256i nv = _mm256_add_epi64(_mm256_sub_epi64(u, v), two_qv);
          store4(x + 2 * k, _mm256_unpacklo_epi64(nu, nv));
          store4(x + 2 * k + 4, _mm256_unpackhi_epi64(nu, nv));
        }
      }
    }
    for (std::size_t j = 0; j < tb.n; j += 4) {
      store4(x + j, csub_epu64(csub_epu64(load4(x + j), two_qv), qv));
    }
  }

  void intt_impl(u64* x, const NttTables& tb) const override {
    if (tb.n < 8) {
      scalar_backend().intt_inplace(x, tb);
      return;
    }
    const __m256i qv = bcast(tb.q), two_qv = bcast(2 * tb.q);
    const u64* w = tb.psi_inv;
    const u64* ws = tb.psi_inv_shoup;
    std::size_t t = 1;
    for (std::size_t m = tb.n; m > 1; m >>= 1) {
      const std::size_t h = m >> 1;
      if (t == 1) {
        for (std::size_t k = 0; k < h; k += 4) {
          const __m256i y0 = load4(x + 2 * k);
          const __m256i y1 = load4(x + 2 * k + 4);
          const __m256i u = _mm256_unpacklo_epi64(y0, y1);
          const __m256i v = _mm256_unpackhi_epi64(y0, y1);
          const __m256i tw =
              _mm256_permute4x64_epi64(load4(w + h + k), 0xD8);
          const __m256i tws =
              _mm256_permute4x64_epi64(load4(ws + h + k), 0xD8);
          const __m256i nu = csub_epu64(_mm256_add_epi64(u, v), two_qv);
          const __m256i diff =
              _mm256_add_epi64(_mm256_sub_epi64(u, v), two_qv);
          const __m256i nv = mul_shoup_lazy4(diff, tw, tws, qv);
          store4(x + 2 * k, _mm256_unpacklo_epi64(nu, nv));
          store4(x + 2 * k + 4, _mm256_unpackhi_epi64(nu, nv));
        }
      } else if (t == 2) {
        for (std::size_t k = 0; k < h; k += 2) {
          const __m256i y0 = load4(x + 4 * k);
          const __m256i y1 = load4(x + 4 * k + 4);
          const __m256i u = _mm256_permute2x128_si256(y0, y1, 0x20);
          const __m256i v = _mm256_permute2x128_si256(y0, y1, 0x31);
          const __m256i tw = _mm256_permute4x64_epi64(
              _mm256_zextsi128_si256(_mm_loadu_si128(
                  reinterpret_cast<const __m128i*>(w + h + k))),
              0x50);
          const __m256i tws = _mm256_permute4x64_epi64(
              _mm256_zextsi128_si256(_mm_loadu_si128(
                  reinterpret_cast<const __m128i*>(ws + h + k))),
              0x50);
          const __m256i nu = csub_epu64(_mm256_add_epi64(u, v), two_qv);
          const __m256i diff =
              _mm256_add_epi64(_mm256_sub_epi64(u, v), two_qv);
          const __m256i nv = mul_shoup_lazy4(diff, tw, tws, qv);
          store4(x + 4 * k, _mm256_permute2x128_si256(nu, nv, 0x20));
          store4(x + 4 * k + 4, _mm256_permute2x128_si256(nu, nv, 0x31));
        }
      } else {
        std::size_t j1 = 0;
        for (std::size_t i = 0; i < h; ++i) {
          const __m256i s = bcast(w[h + i]);
          const __m256i ss = bcast(ws[h + i]);
          for (std::size_t j = j1; j < j1 + t; j += 4) {
            const __m256i u = load4(x + j);
            const __m256i v = load4(x + j + t);
            store4(x + j, csub_epu64(_mm256_add_epi64(u, v), two_qv));
            const __m256i diff =
                _mm256_add_epi64(_mm256_sub_epi64(u, v), two_qv);
            store4(x + j + t, mul_shoup_lazy4(diff, s, ss, qv));
          }
          j1 += 2 * t;
        }
      }
      t <<= 1;
    }
    const __m256i ni = bcast(tb.n_inv), nis = bcast(tb.n_inv_shoup);
    for (std::size_t j = 0; j < tb.n; j += 4) {
      store4(x + j,
             csub_epu64(mul_shoup_lazy4(load4(x + j), ni, nis, qv), qv));
    }
  }
};

}  // namespace

namespace detail {
const Backend* avx2_backend_impl() {
  static const Avx2Backend backend;
  return &backend;
}
}  // namespace detail

}  // namespace poe::kernels

#else  // !POE_HAVE_AVX2

namespace poe::kernels::detail {
const Backend* avx2_backend_impl() { return nullptr; }
}  // namespace poe::kernels::detail

#endif  // POE_HAVE_AVX2
