// ScalarBackend — the bit-exact reference implementation.
//
// These are the original hand-written hot loops, moved here verbatim from
// src/fhe/ntt.cpp (Harvey lazy-Shoup butterflies), src/fhe/poly.cpp (the
// Barrett pointwise family and the automorphism slot permutation), and
// src/fhe/bgv.cpp (the lazy 128-bit key-switch inner product). Every SIMD
// backend is differentially tested against this one; change it only with
// the bit-identity suite in hand.
#include <algorithm>
#include <vector>

#include "kernels/backend.hpp"

namespace poe::kernels {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// Lazy Shoup multiplication: r ≡ x * w (mod q) with r < 2q, for any x and
// precomputed w' = floor(w 2^64 / q). Skipping the final conditional
// subtract (Harvey's trick) shortens the butterfly's dependency chain; the
// transform keeps coefficients in [0, 4q) and reduces once at the end.
inline u64 mul_shoup_lazy(u64 x, u64 w, u64 w_shoup, u64 q) {
  const u64 hi = static_cast<u64>((static_cast<u128>(x) * w_shoup) >> 64);
  return x * w - hi * q;
}

class ScalarBackend final : public Backend {
 public:
  std::string_view name() const override { return "scalar"; }

  void add(u64* dst, const u64* src, std::size_t n,
           const mod::Modulus& m) const override {
    for (std::size_t j = 0; j < n; ++j) dst[j] = m.add(dst[j], src[j]);
  }

  void sub(u64* dst, const u64* src, std::size_t n,
           const mod::Modulus& m) const override {
    for (std::size_t j = 0; j < n; ++j) dst[j] = m.sub(dst[j], src[j]);
  }

  void mul(u64* dst, const u64* src, std::size_t n,
           const mod::Modulus& m) const override {
    for (std::size_t j = 0; j < n; ++j) dst[j] = m.mul(dst[j], src[j]);
  }

  void add_mul(u64* dst, const u64* a, const u64* b, std::size_t n,
               const mod::Modulus& m) const override {
    for (std::size_t j = 0; j < n; ++j) {
      dst[j] = m.add(dst[j], m.mul(a[j], b[j]));
    }
  }

  void mul_shoup(u64* dst, const u64* src, std::size_t n, u64 w, u64 w_shoup,
                 u64 q) const override {
    for (std::size_t j = 0; j < n; ++j) {
      u64 r = mul_shoup_lazy(src[j], w, w_shoup, q);
      if (r >= q) r -= q;
      dst[j] = r;
    }
  }

  void reduce128(u64* out, const u64* lo, const u64* hi, std::size_t n,
                 const mod::Modulus& m) const override {
    for (std::size_t j = 0; j < n; ++j) {
      out[j] = m.reduce128_barrett((static_cast<u128>(hi[j]) << 64) | lo[j]);
    }
  }

  void ksw_accumulate(u64* dst0, u64* dst1, const u64* const* dig,
                      const u64* const* kb, const u64* const* ka,
                      std::size_t nd, std::size_t n, const std::uint32_t* perm,
                      const mod::Modulus& m, bool seed0,
                      bool seed1) const override {
    // Lazy accumulation: sum the raw 128-bit digit*key products and Barrett-
    // reduce once per slot instead of once per digit. The flush interval
    // keeps the accumulators below wrap-around for pathological (huge-prime,
    // many-digit) parameter sets; for the shipped sets it never triggers.
    const u128 term_max = static_cast<u128>(m.value() - 1) * (m.value() - 1);
    const std::size_t flush = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::min<u128>(~static_cast<u128>(0) / term_max - 1,
                              ~std::size_t{0})));
    for (std::size_t idx = 0; idx < n; ++idx) {
      const std::size_t src = perm != nullptr ? perm[idx] : idx;
      u128 acc0 = seed0 ? dst0[idx] : 0;  // overwrite mode never reads dst
      u128 acc1 = seed1 ? dst1[idx] : 0;
      std::size_t since = 0;
      for (std::size_t w = 0; w < nd; ++w) {
        const u128 v = dig[w][src];
        acc0 += v * kb[w][idx];
        acc1 += v * ka[w][idx];
        if (++since == flush) {
          acc0 = m.reduce128_barrett(acc0);
          acc1 = m.reduce128_barrett(acc1);
          since = 0;
        }
      }
      dst0[idx] = m.reduce128_barrett(acc0);
      dst1[idx] = m.reduce128_barrett(acc1);
    }
  }

  void permute(u64* dst, const u64* src, const std::uint32_t* perm,
               std::size_t n) const override {
    for (std::size_t idx = 0; idx < n; ++idx) dst[idx] = src[perm[idx]];
  }

 protected:
  void ntt_impl(u64* x, const NttTables& t) const override {
    // Harvey lazy butterflies: coefficients ride in [0, 4q) (q < 2^62, so no
    // overflow), with one reduction sweep at the end instead of two
    // conditional corrections per butterfly.
    const u64 q = t.q;
    const u64 two_q = 2 * q;
    const u64* __restrict w = t.psi;
    const u64* __restrict ws = t.psi_shoup;
    const std::size_t n = t.n;
    std::size_t tt = n;
    for (std::size_t m = 1; m < n; m <<= 1) {
      tt >>= 1;
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t j1 = 2 * i * tt;
        const u64 s = w[m + i];
        const u64 s_shoup = ws[m + i];
        for (std::size_t j = j1; j < j1 + tt; ++j) {
          u64 u = x[j];
          if (u >= two_q) u -= two_q;  // < 2q
          const u64 v = mul_shoup_lazy(x[j + tt], s, s_shoup, q);
          x[j] = u + v;                 // < 4q
          x[j + tt] = u - v + two_q;    // < 4q
        }
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      u64 v = x[j];
      if (v >= two_q) v -= two_q;
      if (v >= q) v -= q;
      x[j] = v;
    }
  }

  void intt_impl(u64* x, const NttTables& t) const override {
    // Lazy Gentleman–Sande butterflies: coefficients stay in [0, 2q); the
    // final n^{-1} scaling pass completes the reduction to [0, q).
    const u64 q = t.q;
    const u64 two_q = 2 * q;
    const u64* __restrict w = t.psi_inv;
    const u64* __restrict ws = t.psi_inv_shoup;
    const std::size_t n = t.n;
    std::size_t tt = 1;
    for (std::size_t m = n; m > 1; m >>= 1) {
      std::size_t j1 = 0;
      const std::size_t h = m >> 1;
      for (std::size_t i = 0; i < h; ++i) {
        const u64 s = w[h + i];
        const u64 s_shoup = ws[h + i];
        for (std::size_t j = j1; j < j1 + tt; ++j) {
          const u64 u = x[j];
          const u64 v = x[j + tt];
          const u64 sum = u + v;  // < 4q
          x[j] = sum >= two_q ? sum - two_q : sum;
          x[j + tt] = mul_shoup_lazy(u - v + two_q, s, s_shoup, q);
        }
        j1 += 2 * tt;
      }
      tt <<= 1;
    }
    for (std::size_t j = 0; j < n; ++j) {
      u64 r = mul_shoup_lazy(x[j], t.n_inv, t.n_inv_shoup, q);
      if (r >= q) r -= q;
      x[j] = r;
    }
  }
};

}  // namespace

const Backend& scalar_backend() {
  static const ScalarBackend backend;
  return backend;
}

}  // namespace poe::kernels
