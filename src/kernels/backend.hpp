// Runtime-dispatched kernel backends for the per-coefficient hot loops.
//
// Every inner loop that touches RNS coefficients — the negacyclic NTT
// butterflies, the Barrett pointwise family, the lazy 128-bit key-switch
// inner product with its Barrett flush, and the NTT-domain automorphism
// permutation — lives behind this interface, in the style of ngraph's
// runtime/{reference,...} backend split:
//
//   ScalarBackend  — the original hand-written loops, moved here verbatim;
//                    the bit-exact reference every other backend must match.
//   Avx2Backend    — 4 lanes per op via _mm256_mul_epu32-composed 64-bit
//                    mulhi/mullo (compiled only where -mavx2 is accepted).
//   Avx512Backend  — 8 lanes, native 64-bit mullo/min/compares
//                    (__AVX512DQ__ + F + VL).
//
// The contract that makes dispatch safe: all public entry points take and
// return FULLY REDUCED coefficients except where the Harvey lazy bounds are
// documented, and every backend computes the exact same residues — so any
// two backends are bit-identical observed through this interface, which the
// differential suite (tests/kernels_test.cpp) pins.
//
// Selection happens once per ExecContext construction: CPUID probing picks
// the widest available implementation, POE_KERNEL_BACKEND={scalar,avx2,
// avx512} overrides it (an unavailable choice throws rather than silently
// degrading).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "modular/modulus.hpp"

namespace poe::kernels {

/// Non-owning view of one prime's NTT twiddle tables (bit-reversed order,
/// with Shoup companions) — assembled by fhe::Ntt, consumed by backends.
struct NttTables {
  std::size_t n = 0;       ///< ring degree, power of two
  std::uint64_t q = 0;     ///< prime modulus, q < 2^62 (Harvey headroom)
  const std::uint64_t* psi = nullptr;            ///< psi^brv(i)
  const std::uint64_t* psi_shoup = nullptr;      ///< floor(psi^brv(i) 2^64/q)
  const std::uint64_t* psi_inv = nullptr;        ///< psi^-brv(i)
  const std::uint64_t* psi_inv_shoup = nullptr;
  std::uint64_t n_inv = 0;        ///< n^{-1} mod q (final intt scaling)
  std::uint64_t n_inv_shoup = 0;
};

/// Shoup precomputation floor(w * 2^64 / q) for w < q — one mulhi plus one
/// mullo replaces the 128-bit division in every subsequent product by w.
inline std::uint64_t shoup_precompute(std::uint64_t w, std::uint64_t q) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(w) << 64) / q);
}

class Backend {
 public:
  virtual ~Backend() = default;

  /// Stable identifier: "scalar", "avx2", "avx512" — threaded into
  /// ServiceReport and the BENCH json emitters.
  virtual std::string_view name() const = 0;

  // --- Negacyclic NTT over ONE RNS component (n = t.n coefficients). -----
  // Harvey lazy-reduction contract, asserted in debug builds at this
  // boundary so a SIMD lane can never silently violate what the scalar
  // comments promise:
  //   * q < 2^62 (so 4q fits a word and u+v cannot overflow),
  //   * ntt_inplace accepts lazily-reduced inputs < 4q; output is < q,
  //   * intt_inplace accepts inputs < 2q; output is < 2q (in fact < q).
  void ntt_inplace(std::uint64_t* x, const NttTables& t) const {
    debug_check_bounds(x, t, /*forward=*/true);
    ntt_impl(x, t);
  }
  void intt_inplace(std::uint64_t* x, const NttTables& t) const {
    debug_check_bounds(x, t, /*forward=*/false);
    intt_impl(x, t);
    debug_check_output(x, t);
  }

  // --- Barrett pointwise family (operands reduced < m, outputs < m). -----
  /// dst[i] = dst[i] + src[i] mod m
  virtual void add(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n, const mod::Modulus& m) const = 0;
  /// dst[i] = dst[i] - src[i] mod m
  virtual void sub(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n, const mod::Modulus& m) const = 0;
  /// dst[i] = dst[i] * src[i] mod m (Barrett)
  virtual void mul(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n, const mod::Modulus& m) const = 0;
  /// dst[i] = dst[i] + a[i] * b[i] mod m — the fused tensoring/decrypt
  /// accumulation without a temporary.
  virtual void add_mul(std::uint64_t* dst, const std::uint64_t* a,
                       const std::uint64_t* b, std::size_t n,
                       const mod::Modulus& m) const = 0;
  /// dst[i] = src[i] * w mod q via Shoup (w < q, w_shoup from
  /// shoup_precompute) — broadcast scalar multiplication.
  virtual void mul_shoup(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t n, std::uint64_t w,
                         std::uint64_t w_shoup, std::uint64_t q) const = 0;

  /// out[i] = (hi[i]·2^64 + lo[i]) mod m for ANY 128-bit value — the wide
  /// Barrett flush of the lazy key-switch accumulator, exposed standalone
  /// so the SIMD path can be swept against the slow path in tests.
  virtual void reduce128(std::uint64_t* out, const std::uint64_t* lo,
                         const std::uint64_t* hi, std::size_t n,
                         const mod::Modulus& m) const = 0;

  /// Lazy 128-bit key-switch inner product over one RNS component:
  ///   dst0[i] = reduce128(seed0[i] + sum_w dig[w][perm?[i]] * kb[w][i])
  ///   dst1[i] = reduce128(seed1[i] + sum_w dig[w][perm?[i]] * ka[w][i])
  /// where seedX[i] is dst[i] when accX is true (accumulate mode) and zero
  /// when accX is false (overwrite mode — dst may hold uninitialised words
  /// and is never read). perm == nullptr means the identity (plain
  /// relinearisation/ksw); otherwise it is the Galois NTT-slot permutation
  /// fused into the accumulate (hoisted rotations). Accumulators are flushed
  /// with the wide Barrett reduction before they can wrap — the flush
  /// schedule is an implementation detail; outputs are exact residues either
  /// way, so accumulate(dst=c) == add(c, overwrite()) bit-for-bit.
  virtual void ksw_accumulate(std::uint64_t* dst0, std::uint64_t* dst1,
                              const std::uint64_t* const* dig,
                              const std::uint64_t* const* kb,
                              const std::uint64_t* const* ka,
                              std::size_t num_digits, std::size_t n,
                              const std::uint32_t* perm,
                              const mod::Modulus& m, bool acc0 = true,
                              bool acc1 = true) const = 0;

  /// NTT-domain automorphism slot permutation: dst[i] = src[perm[i]]
  /// (dst and src must not alias).
  virtual void permute(std::uint64_t* dst, const std::uint64_t* src,
                       const std::uint32_t* perm, std::size_t n) const = 0;

  /// Fused permute-and-add: dst[i] = (a[perm[i]] + b[perm[i]]) mod m, with
  /// dst aliasing neither input. This is the whole output side of an
  /// in-place hoisted rotation (c0 plus the flushed accumulator, permuted
  /// once); permutes are gather-bound, so the shared scalar loop is already
  /// the right implementation for every backend.
  void permute_add(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, const std::uint32_t* perm,
                   std::size_t n, const mod::Modulus& m) const {
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = m.add(a[perm[i]], b[perm[i]]);
    }
  }

 protected:
  virtual void ntt_impl(std::uint64_t* x, const NttTables& t) const = 0;
  virtual void intt_impl(std::uint64_t* x, const NttTables& t) const = 0;

 private:
#ifdef NDEBUG
  static void debug_check_bounds(const std::uint64_t*, const NttTables&,
                                 bool) {}
  static void debug_check_output(const std::uint64_t*, const NttTables&) {}
#else
  static void debug_check_bounds(const std::uint64_t* x, const NttTables& t,
                                 bool forward) {
    POE_DCHECK(t.q < (std::uint64_t{1} << 62),
               "Harvey lazy reduction needs q < 2^62, got " << t.q);
    const std::uint64_t bound = forward ? 4 * t.q : 2 * t.q;
    for (std::size_t i = 0; i < t.n; ++i) {
      POE_DCHECK(x[i] < bound, "lazy-reduction input bound violated: x["
                                   << i << "] = " << x[i] << " >= "
                                   << (forward ? "4q" : "2q") << " = "
                                   << bound);
    }
  }
  static void debug_check_output(const std::uint64_t* x, const NttTables& t) {
    for (std::size_t i = 0; i < t.n; ++i) {
      POE_DCHECK(x[i] < 2 * t.q,
                 "intt output bound violated: x[" << i << "] = " << x[i]
                                                  << " >= 2q");
    }
  }
#endif
};

/// The bit-exact reference implementation; always available.
const Backend& scalar_backend();

/// SIMD implementations, or nullptr when the build or the CPU lacks them.
const Backend* avx2_backend();
const Backend* avx512_backend();

/// Every backend usable on this machine (scalar first) — for differential
/// tests and the bench_micro backend-comparison section.
std::vector<const Backend*> available_backends();

/// Lookup by stable name; nullptr when unknown or unavailable.
const Backend* backend_by_name(std::string_view name);

/// Dispatch policy: POE_KERNEL_BACKEND={scalar,avx2,avx512} if set (throws
/// when the named backend is unavailable), else the widest CPU-supported
/// implementation. Read afresh on every call — ExecContext construction is
/// the intended call site.
const Backend& select_backend();

/// Process-wide default (select_backend() cached at first use) — what
/// standalone fhe::Ntt objects use when no ExecContext is in play.
const Backend& default_backend();

}  // namespace poe::kernels
