// Avx512Backend — 8 coefficients per lane group.
//
// AVX-512DQ gives the two primitives AVX2 had to emulate: a native 64-bit
// mullo (_mm512_mullo_epi64) and unsigned 64-bit compares (mask registers),
// plus _mm512_min_epu64 which turns the conditional subtract into a single
// instruction: min(a, a-b) is a-b exactly when a >= b (no wrap) and a
// otherwise (wrapped huge). Only the 64-bit mulhi is still composed from
// _mm512_mul_epu32 partials.
//
// The NTT vectorizes stages with butterfly span t >= 8 directly and
// re-tiles the three tail stages (t = 4, 2, 1) across two 512-bit
// registers with _mm512_permutex2var_epi64 — the index vectors below are
// their own inverses under the store-side permutes, mirroring the AVX2
// scheme one level up.
#include "kernels/backend_impl.hpp"

#ifdef POE_HAVE_AVX512

#include <immintrin.h>

#include <algorithm>
#include <vector>

#include "kernels/backend.hpp"

namespace poe::kernels {
namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

inline __m512i load8(const u64* p) { return _mm512_loadu_si512(p); }
inline void store8(u64* p, __m512i v) { _mm512_storeu_si512(p, v); }
inline __m512i bcast(u64 v) {
  return _mm512_set1_epi64(static_cast<long long>(v));
}

/// a >= m ? a - m : a — min picks a-m when it didn't wrap, a when it did.
inline __m512i csub_epu64(__m512i a, __m512i m) {
  return _mm512_min_epu64(a, _mm512_sub_epi64(a, m));
}

/// High 64 bits of a*b from four 32x32 partials (no native 64-bit mulhi
/// even in AVX-512).
inline __m512i mulhi_epu64(__m512i a, __m512i b) {
  const __m512i m32 = bcast(0xFFFFFFFFULL);
  const __m512i a_hi = _mm512_srli_epi64(a, 32);
  const __m512i b_hi = _mm512_srli_epi64(b, 32);
  const __m512i ll = _mm512_mul_epu32(a, b);
  const __m512i lh = _mm512_mul_epu32(a, b_hi);
  const __m512i hl = _mm512_mul_epu32(a_hi, b);
  const __m512i hh = _mm512_mul_epu32(a_hi, b_hi);
  const __m512i t = _mm512_add_epi64(hl, _mm512_srli_epi64(ll, 32));
  const __m512i t2 = _mm512_add_epi64(lh, _mm512_and_si512(t, m32));
  return _mm512_add_epi64(hh, _mm512_add_epi64(_mm512_srli_epi64(t, 32),
                                               _mm512_srli_epi64(t2, 32)));
}

inline void mul_epu64_full(__m512i a, __m512i b, __m512i& hi, __m512i& lo) {
  hi = mulhi_epu64(a, b);
  lo = _mm512_mullo_epi64(a, b);
}

/// Lazy Shoup product: x*w - floor(x*w'/2^64)*q, result in [0, 2q).
inline __m512i mul_shoup_lazy8(__m512i x, __m512i w, __m512i w_shoup,
                               __m512i q) {
  const __m512i hi = mulhi_epu64(x, w_shoup);
  return _mm512_sub_epi64(_mm512_mullo_epi64(x, w),
                          _mm512_mullo_epi64(hi, q));
}

/// Vector transliteration of Modulus::mul (see the AVX2 twin for the
/// shift-count analysis; _mm512_srl/sll_epi64 also zero at counts >= 64).
struct BarrettVec {
  __m512i p, two_p, mu;
  __m128i sh_z_lo, sh_z_hi, sh_t_lo, sh_t_hi;

  explicit BarrettVec(const mod::Modulus& m)
      : p(bcast(m.value())),
        two_p(bcast(2 * m.value())),
        mu(bcast(m.barrett_mu())),
        sh_z_lo(_mm_cvtsi32_si128(static_cast<int>(m.bit_width() - 1))),
        sh_z_hi(_mm_cvtsi32_si128(static_cast<int>(65 - m.bit_width()))),
        sh_t_lo(_mm_cvtsi32_si128(static_cast<int>(m.bit_width() + 2))),
        sh_t_hi(_mm_cvtsi32_si128(static_cast<int>(62 - m.bit_width()))) {}

  __m512i mul(__m512i a, __m512i b) const {
    __m512i zhi, zlo;
    mul_epu64_full(a, b, zhi, zlo);
    const __m512i zshift = _mm512_or_si512(_mm512_srl_epi64(zlo, sh_z_lo),
                                           _mm512_sll_epi64(zhi, sh_z_hi));
    __m512i phi, plo;
    mul_epu64_full(zshift, mu, phi, plo);
    const __m512i t = _mm512_or_si512(_mm512_srl_epi64(plo, sh_t_lo),
                                      _mm512_sll_epi64(phi, sh_t_hi));
    __m512i r = _mm512_sub_epi64(zlo, _mm512_mullo_epi64(t, p));  // < 3p
    r = csub_epu64(r, two_p);
    return csub_epu64(r, p);
  }
};

/// Vector transliteration of Modulus::reduce128_barrett.
struct Reduce128Vec {
  __m512i p, rlo, rhi, one;

  explicit Reduce128Vec(const mod::Modulus& m)
      : p(bcast(m.value())),
        rlo(bcast(m.ratio_lo())),
        rhi(bcast(m.ratio_hi())),
        one(bcast(1)) {}

  __m512i reduce(__m512i xlo, __m512i xhi) const {
    const __m512i c1 = mulhi_epu64(xlo, rlo);
    __m512i mlhi, mllo, hlhi, hllo;
    mul_epu64_full(xlo, rhi, mlhi, mllo);
    mul_epu64_full(xhi, rlo, hlhi, hllo);
    const __m512i s1 = _mm512_add_epi64(mllo, hllo);
    const __mmask8 carry1 = _mm512_cmplt_epu64_mask(s1, mllo);
    const __m512i s2 = _mm512_add_epi64(s1, c1);
    const __mmask8 carry2 = _mm512_cmplt_epu64_mask(s2, s1);
    __m512i mid_hi = _mm512_add_epi64(mlhi, hlhi);
    mid_hi = _mm512_mask_add_epi64(mid_hi, carry1, mid_hi, one);
    mid_hi = _mm512_mask_add_epi64(mid_hi, carry2, mid_hi, one);
    const __m512i qest =
        _mm512_add_epi64(_mm512_mullo_epi64(xhi, rhi), mid_hi);
    __m512i r = _mm512_sub_epi64(xlo, _mm512_mullo_epi64(qest, p));  // < 4p
    r = csub_epu64(r, p);
    r = csub_epu64(r, p);
    return csub_epu64(r, p);
  }
};

/// 128-bit lane-accumulator add: acc += (phi:plo), carry via mask add.
inline void acc128_add(__m512i& acc_lo, __m512i& acc_hi, __m512i plo,
                       __m512i phi, __m512i one) {
  const __m512i nlo = _mm512_add_epi64(acc_lo, plo);
  const __mmask8 carry = _mm512_cmplt_epu64_mask(nlo, acc_lo);
  __m512i nhi = _mm512_add_epi64(acc_hi, phi);
  acc_hi = _mm512_mask_add_epi64(nhi, carry, nhi, one);
  acc_lo = nlo;
}

class Avx512Backend final : public Backend {
 public:
  std::string_view name() const override { return "avx512"; }

  void add(u64* dst, const u64* src, std::size_t n,
           const mod::Modulus& m) const override {
    const __m512i p = bcast(m.value());
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      store8(dst + j,
             csub_epu64(_mm512_add_epi64(load8(dst + j), load8(src + j)), p));
    }
    for (; j < n; ++j) dst[j] = m.add(dst[j], src[j]);
  }

  void sub(u64* dst, const u64* src, std::size_t n,
           const mod::Modulus& m) const override {
    const __m512i p = bcast(m.value());
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m512i a = load8(dst + j);
      const __m512i b = load8(src + j);
      const __m512i t = _mm512_sub_epi64(a, b);
      const __mmask8 wrap = _mm512_cmplt_epu64_mask(a, b);
      store8(dst + j, _mm512_mask_add_epi64(t, wrap, t, p));
    }
    for (; j < n; ++j) dst[j] = m.sub(dst[j], src[j]);
  }

  void mul(u64* dst, const u64* src, std::size_t n,
           const mod::Modulus& m) const override {
    const BarrettVec bv(m);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      store8(dst + j, bv.mul(load8(dst + j), load8(src + j)));
    }
    for (; j < n; ++j) dst[j] = m.mul(dst[j], src[j]);
  }

  void add_mul(u64* dst, const u64* a, const u64* b, std::size_t n,
               const mod::Modulus& m) const override {
    const BarrettVec bv(m);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m512i prod = bv.mul(load8(a + j), load8(b + j));
      store8(dst + j,
             csub_epu64(_mm512_add_epi64(load8(dst + j), prod), bv.p));
    }
    for (; j < n; ++j) dst[j] = m.add(dst[j], m.mul(a[j], b[j]));
  }

  void mul_shoup(u64* dst, const u64* src, std::size_t n, u64 w, u64 w_shoup,
                 u64 q) const override {
    const __m512i wv = bcast(w), wsv = bcast(w_shoup), qv = bcast(q);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      store8(dst + j, csub_epu64(mul_shoup_lazy8(load8(src + j), wv, wsv, qv),
                                 qv));
    }
    for (; j < n; ++j) {
      const u64 hi = static_cast<u64>((static_cast<u128>(src[j]) * w_shoup)
                                      >> 64);
      u64 r = src[j] * w - hi * q;
      if (r >= q) r -= q;
      dst[j] = r;
    }
  }

  void reduce128(u64* out, const u64* lo, const u64* hi, std::size_t n,
                 const mod::Modulus& m) const override {
    const Reduce128Vec rv(m);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      store8(out + j, rv.reduce(load8(lo + j), load8(hi + j)));
    }
    for (; j < n; ++j) {
      out[j] = m.reduce128_barrett((static_cast<u128>(hi[j]) << 64) | lo[j]);
    }
  }

  void ksw_accumulate(u64* dst0, u64* dst1, const u64* const* dig,
                      const u64* const* kb, const u64* const* ka,
                      std::size_t nd, std::size_t n, const std::uint32_t* perm,
                      const mod::Modulus& m, bool seed0,
                      bool seed1) const override {
    // Hoisted rotations permute the digit reads. Per-lane gathers turned
    // out to cost the entire vector win on real silicon, so the shared
    // permutation is materialized once per digit row into a reusable
    // scratch slab and the inner product always runs contiguous. Reads
    // and the flush schedule are unchanged, so outputs stay bit-identical.
    if (perm != nullptr) {
      static thread_local std::vector<u64> scratch;
      static thread_local std::vector<const u64*> rows;
      scratch.resize(nd * n);
      rows.resize(nd);
      for (std::size_t w = 0; w < nd; ++w) {
        u64* dst = scratch.data() + w * n;
        const u64* src = dig[w];
        for (std::size_t i = 0; i < n; ++i) dst[i] = src[perm[i]];
        rows[w] = dst;
      }
      ksw_accumulate(dst0, dst1, rows.data(), kb, ka, nd, n, nullptr, m,
                     seed0, seed1);
      return;
    }
    const u128 term_max = static_cast<u128>(m.value() - 1) * (m.value() - 1);
    const std::size_t flush = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::min<u128>(~static_cast<u128>(0) / term_max - 1,
                              ~std::size_t{0})));
    const Reduce128Vec rv(m);
    const __m512i zero = _mm512_setzero_si512();
    const __m512i one = bcast(1);
    std::size_t idx = 0;
    for (; idx + 8 <= n; idx += 8) {
      __m512i acc0_lo = seed0 ? load8(dst0 + idx) : zero, acc0_hi = zero;
      __m512i acc1_lo = seed1 ? load8(dst1 + idx) : zero, acc1_hi = zero;
      std::size_t since = 0;
      for (std::size_t w = 0; w < nd; ++w) {
        const __m512i v = load8(dig[w] + idx);
        __m512i phi, plo;
        mul_epu64_full(v, load8(kb[w] + idx), phi, plo);
        acc128_add(acc0_lo, acc0_hi, plo, phi, one);
        mul_epu64_full(v, load8(ka[w] + idx), phi, plo);
        acc128_add(acc1_lo, acc1_hi, plo, phi, one);
        if (++since == flush) {
          acc0_lo = rv.reduce(acc0_lo, acc0_hi);
          acc1_lo = rv.reduce(acc1_lo, acc1_hi);
          acc0_hi = acc1_hi = zero;
          since = 0;
        }
      }
      store8(dst0 + idx, rv.reduce(acc0_lo, acc0_hi));
      store8(dst1 + idx, rv.reduce(acc1_lo, acc1_hi));
    }
    for (; idx < n; ++idx) {  // scalar tail, same schedule
      u128 acc0 = seed0 ? dst0[idx] : 0;
      u128 acc1 = seed1 ? dst1[idx] : 0;
      std::size_t since = 0;
      for (std::size_t w = 0; w < nd; ++w) {
        const u128 v = dig[w][idx];
        acc0 += v * kb[w][idx];
        acc1 += v * ka[w][idx];
        if (++since == flush) {
          acc0 = m.reduce128_barrett(acc0);
          acc1 = m.reduce128_barrett(acc1);
          since = 0;
        }
      }
      dst0[idx] = m.reduce128_barrett(acc0);
      dst1[idx] = m.reduce128_barrett(acc1);
    }
  }

  void permute(u64* dst, const u64* src, const std::uint32_t* perm,
               std::size_t n) const override {
    for (std::size_t idx = 0; idx < n; ++idx) dst[idx] = src[perm[idx]];
  }

 protected:
  void ntt_impl(u64* x, const NttTables& tb) const override {
    if (tb.n < 16) {
      scalar_backend().ntt_inplace(x, tb);
      return;
    }
    const __m512i qv = bcast(tb.q), two_qv = bcast(2 * tb.q);
    const u64* w = tb.psi;
    const u64* ws = tb.psi_shoup;
    // Tail-stage retiling indices (a:lane of first arg, 8+b:lane of second).
    const __m512i t4_u = _mm512_setr_epi64(0, 1, 2, 3, 8, 9, 10, 11);
    const __m512i t4_v = _mm512_setr_epi64(4, 5, 6, 7, 12, 13, 14, 15);
    const __m512i t4_tw = _mm512_setr_epi64(0, 0, 0, 0, 1, 1, 1, 1);
    const __m512i t2_u = _mm512_setr_epi64(0, 1, 4, 5, 8, 9, 12, 13);
    const __m512i t2_v = _mm512_setr_epi64(2, 3, 6, 7, 10, 11, 14, 15);
    const __m512i t2_y0 = _mm512_setr_epi64(0, 1, 8, 9, 2, 3, 10, 11);
    const __m512i t2_y1 = _mm512_setr_epi64(4, 5, 12, 13, 6, 7, 14, 15);
    const __m512i t2_tw = _mm512_setr_epi64(0, 0, 1, 1, 2, 2, 3, 3);
    const __m512i t1_u = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
    const __m512i t1_v = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
    const __m512i t1_y0 = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
    const __m512i t1_y1 = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
    std::size_t t = tb.n;
    for (std::size_t m = 1; m < tb.n; m <<= 1) {
      t >>= 1;
      if (t >= 8) {
        for (std::size_t i = 0; i < m; ++i) {
          const std::size_t j1 = 2 * i * t;
          const __m512i s = bcast(w[m + i]);
          const __m512i ss = bcast(ws[m + i]);
          for (std::size_t j = j1; j < j1 + t; j += 8) {
            const __m512i u = csub_epu64(load8(x + j), two_qv);
            const __m512i v = mul_shoup_lazy8(load8(x + j + t), s, ss, qv);
            store8(x + j, _mm512_add_epi64(u, v));
            store8(x + j + t,
                   _mm512_add_epi64(_mm512_sub_epi64(u, v), two_qv));
          }
        }
      } else {
        // t in {4, 2, 1}: two loads cover 16/n-of-a-kind coefficients;
        // permutex2var splits them into u/v halves and recombines.
        const __m512i* iu;
        const __m512i* iv;
        const __m512i* iy0;
        const __m512i* iy1;
        if (t == 4) {
          iu = &t4_u, iv = &t4_v, iy0 = &t4_u, iy1 = &t4_v;
        } else if (t == 2) {
          iu = &t2_u, iv = &t2_v, iy0 = &t2_y0, iy1 = &t2_y1;
        } else {
          iu = &t1_u, iv = &t1_v, iy0 = &t1_y0, iy1 = &t1_y1;
        }
        const std::size_t groups_per_iter = 8 / t;
        for (std::size_t k = 0; k < m; k += groups_per_iter) {
          const std::size_t base = 2 * k * t;
          const __m512i y0 = load8(x + base);
          const __m512i y1 = load8(x + base + 8);
          const __m512i u0 = _mm512_permutex2var_epi64(y0, *iu, y1);
          const __m512i vin = _mm512_permutex2var_epi64(y0, *iv, y1);
          __m512i tw, tws;
          if (t == 4) {
            tw = _mm512_permutexvar_epi64(
                t4_tw, _mm512_zextsi128_si512(_mm_loadu_si128(
                           reinterpret_cast<const __m128i*>(w + m + k))));
            tws = _mm512_permutexvar_epi64(
                t4_tw, _mm512_zextsi128_si512(_mm_loadu_si128(
                           reinterpret_cast<const __m128i*>(ws + m + k))));
          } else if (t == 2) {
            tw = _mm512_permutexvar_epi64(
                t2_tw, _mm512_zextsi256_si512(_mm256_loadu_si256(
                           reinterpret_cast<const __m256i*>(w + m + k))));
            tws = _mm512_permutexvar_epi64(
                t2_tw, _mm512_zextsi256_si512(_mm256_loadu_si256(
                           reinterpret_cast<const __m256i*>(ws + m + k))));
          } else {
            tw = load8(w + m + k);
            tws = load8(ws + m + k);
          }
          const __m512i u = csub_epu64(u0, two_qv);
          const __m512i v = mul_shoup_lazy8(vin, tw, tws, qv);
          const __m512i nu = _mm512_add_epi64(u, v);
          const __m512i nv = _mm512_add_epi64(_mm512_sub_epi64(u, v), two_qv);
          store8(x + base, _mm512_permutex2var_epi64(nu, *iy0, nv));
          store8(x + base + 8, _mm512_permutex2var_epi64(nu, *iy1, nv));
        }
      }
    }
    for (std::size_t j = 0; j < tb.n; j += 8) {
      store8(x + j, csub_epu64(csub_epu64(load8(x + j), two_qv), qv));
    }
  }

  void intt_impl(u64* x, const NttTables& tb) const override {
    if (tb.n < 16) {
      scalar_backend().intt_inplace(x, tb);
      return;
    }
    const __m512i qv = bcast(tb.q), two_qv = bcast(2 * tb.q);
    const u64* w = tb.psi_inv;
    const u64* ws = tb.psi_inv_shoup;
    const __m512i t4_u = _mm512_setr_epi64(0, 1, 2, 3, 8, 9, 10, 11);
    const __m512i t4_v = _mm512_setr_epi64(4, 5, 6, 7, 12, 13, 14, 15);
    const __m512i t4_tw = _mm512_setr_epi64(0, 0, 0, 0, 1, 1, 1, 1);
    const __m512i t2_u = _mm512_setr_epi64(0, 1, 4, 5, 8, 9, 12, 13);
    const __m512i t2_v = _mm512_setr_epi64(2, 3, 6, 7, 10, 11, 14, 15);
    const __m512i t2_y0 = _mm512_setr_epi64(0, 1, 8, 9, 2, 3, 10, 11);
    const __m512i t2_y1 = _mm512_setr_epi64(4, 5, 12, 13, 6, 7, 14, 15);
    const __m512i t2_tw = _mm512_setr_epi64(0, 0, 1, 1, 2, 2, 3, 3);
    const __m512i t1_u = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
    const __m512i t1_v = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
    const __m512i t1_y0 = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
    const __m512i t1_y1 = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
    std::size_t t = 1;
    for (std::size_t m = tb.n; m > 1; m >>= 1) {
      const std::size_t h = m >> 1;
      if (t <= 4) {
        const __m512i* iu;
        const __m512i* iv;
        const __m512i* iy0;
        const __m512i* iy1;
        if (t == 4) {
          iu = &t4_u, iv = &t4_v, iy0 = &t4_u, iy1 = &t4_v;
        } else if (t == 2) {
          iu = &t2_u, iv = &t2_v, iy0 = &t2_y0, iy1 = &t2_y1;
        } else {
          iu = &t1_u, iv = &t1_v, iy0 = &t1_y0, iy1 = &t1_y1;
        }
        const std::size_t groups_per_iter = 8 / t;
        for (std::size_t k = 0; k < h; k += groups_per_iter) {
          const std::size_t base = 2 * k * t;
          const __m512i y0 = load8(x + base);
          const __m512i y1 = load8(x + base + 8);
          const __m512i u = _mm512_permutex2var_epi64(y0, *iu, y1);
          const __m512i v = _mm512_permutex2var_epi64(y0, *iv, y1);
          __m512i tw, tws;
          if (t == 4) {
            tw = _mm512_permutexvar_epi64(
                t4_tw, _mm512_zextsi128_si512(_mm_loadu_si128(
                           reinterpret_cast<const __m128i*>(w + h + k))));
            tws = _mm512_permutexvar_epi64(
                t4_tw, _mm512_zextsi128_si512(_mm_loadu_si128(
                           reinterpret_cast<const __m128i*>(ws + h + k))));
          } else if (t == 2) {
            tw = _mm512_permutexvar_epi64(
                t2_tw, _mm512_zextsi256_si512(_mm256_loadu_si256(
                           reinterpret_cast<const __m256i*>(w + h + k))));
            tws = _mm512_permutexvar_epi64(
                t2_tw, _mm512_zextsi256_si512(_mm256_loadu_si256(
                           reinterpret_cast<const __m256i*>(ws + h + k))));
          } else {
            tw = load8(w + h + k);
            tws = load8(ws + h + k);
          }
          const __m512i nu = csub_epu64(_mm512_add_epi64(u, v), two_qv);
          const __m512i diff =
              _mm512_add_epi64(_mm512_sub_epi64(u, v), two_qv);
          const __m512i nv = mul_shoup_lazy8(diff, tw, tws, qv);
          store8(x + base, _mm512_permutex2var_epi64(nu, *iy0, nv));
          store8(x + base + 8, _mm512_permutex2var_epi64(nu, *iy1, nv));
        }
      } else {
        std::size_t j1 = 0;
        for (std::size_t i = 0; i < h; ++i) {
          const __m512i s = bcast(w[h + i]);
          const __m512i ss = bcast(ws[h + i]);
          for (std::size_t j = j1; j < j1 + t; j += 8) {
            const __m512i u = load8(x + j);
            const __m512i v = load8(x + j + t);
            store8(x + j, csub_epu64(_mm512_add_epi64(u, v), two_qv));
            const __m512i diff =
                _mm512_add_epi64(_mm512_sub_epi64(u, v), two_qv);
            store8(x + j + t, mul_shoup_lazy8(diff, s, ss, qv));
          }
          j1 += 2 * t;
        }
      }
      t <<= 1;
    }
    const __m512i ni = bcast(tb.n_inv), nis = bcast(tb.n_inv_shoup);
    for (std::size_t j = 0; j < tb.n; j += 8) {
      store8(x + j,
             csub_epu64(mul_shoup_lazy8(load8(x + j), ni, nis, qv), qv));
    }
  }
};

}  // namespace

namespace detail {
const Backend* avx512_backend_impl() {
  static const Avx512Backend backend;
  return &backend;
}
}  // namespace detail

}  // namespace poe::kernels

#else  // !POE_HAVE_AVX512

namespace poe::kernels::detail {
const Backend* avx512_backend_impl() { return nullptr; }
}  // namespace poe::kernels::detail

#endif  // POE_HAVE_AVX512
