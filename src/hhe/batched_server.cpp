#include "hhe/batched_server.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace poe::hhe {

namespace {
using fhe::Ciphertext;
using u64 = std::uint64_t;

// Tile a 2t-element vector periodically along the columns of both rows.
std::vector<u64> tile_state(const fhe::SlotLayout& layout,
                            std::span<const u64> state) {
  const std::size_t s = state.size();
  const std::size_t cols = layout.cols();
  POE_ENSURE(cols % s == 0, "state size must divide the column count");
  std::vector<u64> logical(2 * cols);
  for (std::size_t row = 0; row < 2; ++row) {
    for (std::size_t col = 0; col < cols; ++col) {
      logical[row * cols + col] = state[col % s];
    }
  }
  return logical;
}

}  // namespace

fhe::Ciphertext encrypt_key_batched(const HheConfig& config,
                                    const fhe::Bgv& bgv,
                                    const fhe::BatchEncoder& encoder,
                                    const fhe::SlotLayout& layout,
                                    std::span<const u64> key) {
  POE_ENSURE(key.size() == config.pasta.key_size(), "wrong key size");
  return bgv.encrypt(encoder.encode(layout.to_slots(tile_state(layout, key))));
}

BsgsSplit bsgs_split(std::size_t state_size) {
  BsgsSplit split;
  split.baby =
      static_cast<std::size_t>(std::lround(std::sqrt(double(state_size))));
  while (state_size % split.baby != 0) ++split.baby;
  split.giant = state_size / split.baby;
  return split;
}

std::vector<long> BatchedHheServer::rotation_steps(const HheConfig& config) {
  const std::size_t s = config.pasta.state_size();
  const auto split = bsgs_split(s);
  std::vector<long> steps;
  for (std::size_t b = 1; b < split.baby; ++b) {
    steps.push_back(static_cast<long>(b));
  }
  for (std::size_t g = 1; g < split.giant; ++g) {
    steps.push_back(static_cast<long>(g * split.baby));
  }
  steps.push_back(static_cast<long>(config.pasta.t));  // Mix half swap
  steps.push_back(static_cast<long>(s - 1));           // Feistel shift
  return steps;
}

std::shared_ptr<const fhe::GaloisKeys>
BatchedHheServer::make_shared_rotation_keys(const HheConfig& config,
                                            const fhe::Bgv& bgv) {
  return std::make_shared<const fhe::GaloisKeys>(
      bgv.make_rotation_keys(rotation_steps(config)));
}

BatchedHheServer::BatchedHheServer(const HheConfig& config,
                                   const fhe::Bgv& bgv,
                                   fhe::Ciphertext encrypted_key)
    : BatchedHheServer(config, bgv, std::move(encrypted_key),
                       make_shared_rotation_keys(config, bgv)) {}

BatchedHheServer::BatchedHheServer(
    const HheConfig& config, const fhe::Bgv& bgv, fhe::Ciphertext encrypted_key,
    std::shared_ptr<const fhe::GaloisKeys> shared_keys)
    : config_(config),
      bgv_(bgv),
      encoder_(config.bgv.n, config.bgv.t),
      layout_(config.bgv.n, config.bgv.t),
      rotation_keys_(std::move(shared_keys)),
      key_ct_(std::move(encrypted_key)) {
  const std::size_t s = config_.pasta.state_size();
  POE_ENSURE(layout_.cols() % s == 0,
             "ring too small: 2t must divide n/2 (2t=" << s
                                                       << ", n=" << config.bgv.n
                                                       << ")");
  POE_ENSURE(rotation_keys_ != nullptr, "rotation keys must be non-null");
  const auto split = bsgs_split(s);
  baby_ = split.baby;
  giant_ = split.giant;
}

fhe::Plaintext BatchedHheServer::tiled_plain(std::span<const u64> values) const {
  return encoder_.encode(layout_.to_slots(tile_state(layout_, values)));
}

fhe::Ciphertext BatchedHheServer::keystream_circuit(u64 nonce, u64 counter,
                                                    ServerReport* report) const {
  const auto& params = config_.pasta;
  const std::size_t t = params.t;
  const std::size_t s = 2 * t;
  const mod::Modulus pm(params.p);
  const auto rnd = pasta::derive_block_randomness(params, nonce, counter);

  ServerReport local;
  ServerReport& rep = report != nullptr ? *report : local;
  rep = ServerReport{};
  const CounterSnapshot before = bgv_.rns().exec().snapshot();

  Ciphertext state = key_ct_;

  // Affine layer: y = diag(M_L, M_R) x + (rc_l || rc_r), BSGS diagonals.
  auto affine = [&](const pasta::AffineLayerData& d) {
    const auto mat_l = pasta::sequential_matrix(pm, d.alpha_l);
    const auto mat_r = pasta::sequential_matrix(pm, d.alpha_r);
    // Block-matrix entry (i, j) of diag(M_L, M_R).
    auto entry = [&](std::size_t i, std::size_t j) -> u64 {
      if (i < t && j < t) return mat_l.at(i, j);
      if (i >= t && j >= t) return mat_r.at(i - t, j - t);
      return 0;
    };

    // Baby rotations of the state.
    std::vector<Ciphertext> rotated(baby_);
    rotated[0] = state;
    for (std::size_t b = 1; b < baby_; ++b) {
      rotated[b] = state;
      bgv_.rotate_columns_inplace(rotated[b], static_cast<long>(b),
                                  *rotation_keys_);
    }

    Ciphertext acc;
    bool acc_init = false;
    for (std::size_t g = 0; g < giant_; ++g) {
      Ciphertext inner;
      bool inner_init = false;
      for (std::size_t b = 0; b < baby_; ++b) {
        const std::size_t k = g * baby_ + b;
        // Diagonal d_k[i] = entry(i, (i + k) mod s), pre-rotated by -g*baby
        // (u ⊙ rot_r(z) == rot_r(rot_{-r}(u) ⊙ z)) so it can be applied
        // before the giant rotation.
        std::vector<u64> diag(s);
        for (std::size_t i = 0; i < s; ++i) {
          const std::size_t ii = (i + s - (g * baby_) % s) % s;
          diag[i] = entry(ii, (ii + k) % s);
        }
        Ciphertext term = rotated[b];
        bgv_.mul_plain_inplace(term, tiled_plain(diag));
        rep.scalar_multiplications += s;
        if (!inner_init) {
          inner = std::move(term);
          inner_init = true;
        } else {
          bgv_.add_inplace(inner, term);
        }
      }
      if (g != 0) {
        bgv_.rotate_columns_inplace(inner, static_cast<long>(g * baby_),
                                    *rotation_keys_);
      }
      if (!acc_init) {
        acc = std::move(inner);
        acc_init = true;
      } else {
        bgv_.add_inplace(acc, inner);
      }
    }

    // Round constants.
    std::vector<u64> rc(s);
    std::copy(d.rc_l.begin(), d.rc_l.end(), rc.begin());
    std::copy(d.rc_r.begin(), d.rc_r.end(), rc.begin() + static_cast<long>(t));
    bgv_.add_plain_inplace(acc, tiled_plain(rc));
    state = std::move(acc);
  };

  auto mix = [&] {
    // new = 2*state + rotate_by_t(state)  ==  (2L+R || L+2R).
    Ciphertext swapped = state;
    bgv_.rotate_columns_inplace(swapped, static_cast<long>(t),
                                *rotation_keys_);
    bgv_.mul_scalar_inplace(state, 2);
    bgv_.add_inplace(state, swapped);
  };

  // Dense-diagonal plaintext multiplications inflate the noise by
  // ~||pt|| * n per affine layer on top of the squaring, so each ct-ct
  // multiplication must shed THREE primes to clamp the noise back to the
  // floor (the coefficient-wise server only needs two).
  auto square_reduced = [&](const Ciphertext& x) {
    Ciphertext sq = bgv_.multiply_relin(x, x);
    bgv_.mod_switch_inplace(sq);
    bgv_.mod_switch_inplace(sq);
    ++rep.ct_ct_multiplications;
    return sq;
  };

  auto feistel = [&] {
    Ciphertext sq = square_reduced(state);
    bgv_.rotate_columns_inplace(sq, static_cast<long>(s - 1), *rotation_keys_);
    // Mask out the wrap positions 0 (head of L) and t (head of R).
    std::vector<u64> mask(s, 1);
    mask[0] = 0;
    mask[t] = 0;
    bgv_.mul_plain_inplace(sq, tiled_plain(mask));
    bgv_.mod_switch_to(state, sq.level);
    bgv_.add_inplace(state, sq);
  };

  auto cube = [&] {
    Ciphertext sq = square_reduced(state);
    bgv_.mod_switch_to(state, sq.level);
    state = bgv_.multiply_relin(sq, state);
    bgv_.mod_switch_inplace(state);
    bgv_.mod_switch_inplace(state);
    ++rep.ct_ct_multiplications;
  };

  for (std::size_t round = 0; round < params.rounds; ++round) {
    affine(rnd.layers[round]);
    mix();
    if (round == params.rounds - 1) {
      cube();
    } else {
      feistel();
    }
  }
  affine(rnd.layers.back());
  mix();

  rep.final_level = state.level;
  rep.exec_ops = bgv_.rns().exec().snapshot() - before;
  rep.min_noise_budget_bits = bgv_.noise_budget_bits(state);
  return state;
}

fhe::Ciphertext BatchedHheServer::transcipher_block(
    std::span<const u64> symmetric_ct, u64 nonce, u64 counter,
    ServerReport* report) const {
  const std::size_t t = config_.pasta.t;
  POE_ENSURE(!symmetric_ct.empty() && symmetric_ct.size() <= t,
             "block must have 1.." << t << " elements");
  Ciphertext ks = keystream_circuit(nonce, counter, report);
  bgv_.negate_inplace(ks);
  // Add the symmetric ciphertext at logical positions 0..len-1 (every tile
  // sees the same values; only the first tile is read back).
  std::vector<u64> c(2 * t, 0);
  std::copy(symmetric_ct.begin(), symmetric_ct.end(), c.begin());
  bgv_.add_plain_inplace(ks, tiled_plain(c));
  return ks;
}

std::vector<std::uint64_t> BatchedHheServer::decode_block(
    const HheConfig& config, const fhe::Bgv& bgv, const fhe::Ciphertext& ct,
    std::size_t len) {
  fhe::BatchEncoder encoder(config.bgv.n, config.bgv.t);
  fhe::SlotLayout layout(config.bgv.n, config.bgv.t);
  const auto logical = layout.from_slots(encoder.decode(bgv.decrypt(ct)));
  return {logical.begin(), logical.begin() + static_cast<long>(len)};
}

}  // namespace poe::hhe
