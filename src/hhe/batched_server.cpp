#include "hhe/batched_server.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace poe::hhe {

namespace {
using fhe::Ciphertext;
using u64 = std::uint64_t;

// Tile a 2t-element vector periodically along the columns of both rows.
std::vector<u64> tile_state(const fhe::SlotLayout& layout,
                            std::span<const u64> state) {
  const std::size_t s = state.size();
  const std::size_t cols = layout.cols();
  POE_ENSURE(cols % s == 0, "state size must divide the column count");
  std::vector<u64> logical(2 * cols);
  for (std::size_t row = 0; row < 2; ++row) {
    for (std::size_t col = 0; col < cols; ++col) {
      logical[row * cols + col] = state[col % s];
    }
  }
  return logical;
}

}  // namespace

fhe::Ciphertext encrypt_key_batched(const HheConfig& config,
                                    const fhe::Bgv& bgv,
                                    const fhe::BatchEncoder& encoder,
                                    const fhe::SlotLayout& layout,
                                    std::span<const u64> key) {
  POE_ENSURE(key.size() == config.pasta.key_size(), "wrong key size");
  return bgv.encrypt(encoder.encode(layout.to_slots(tile_state(layout, key))));
}

std::vector<long> BatchedHheServer::rotation_steps(const HheConfig& config) {
  const std::size_t s = config.pasta.state_size();
  std::vector<long> steps;
  for (std::size_t k = 1; k < s; ++k) {
    steps.push_back(static_cast<long>(k));
  }
  return steps;
}

std::shared_ptr<const fhe::GaloisKeys>
BatchedHheServer::make_shared_rotation_keys(const HheConfig& config,
                                            const fhe::Bgv& bgv) {
  return std::make_shared<const fhe::GaloisKeys>(
      bgv.make_rotation_keys(rotation_steps(config)));
}

BatchedHheServer::BatchedHheServer(const HheConfig& config,
                                   const fhe::Bgv& bgv,
                                   fhe::Ciphertext encrypted_key)
    : BatchedHheServer(config, bgv, std::move(encrypted_key),
                       make_shared_rotation_keys(config, bgv)) {}

BatchedHheServer::BatchedHheServer(
    const HheConfig& config, const fhe::Bgv& bgv, fhe::Ciphertext encrypted_key,
    std::shared_ptr<const fhe::GaloisKeys> shared_keys)
    : config_(config),
      bgv_(bgv),
      encoder_(config.bgv.n, config.bgv.t),
      layout_(config.bgv.n, config.bgv.t),
      rotation_keys_(std::move(shared_keys)),
      key_ct_(std::move(encrypted_key)) {
  const std::size_t s = config_.pasta.state_size();
  POE_ENSURE(layout_.cols() % s == 0,
             "ring too small: 2t must divide n/2 (2t=" << s
                                                       << ", n=" << config.bgv.n
                                                       << ")");
  POE_ENSURE(rotation_keys_ != nullptr, "rotation keys must be non-null");
  // Feistel wrap mask (zeros at the head of each half), encoded once here
  // so the per-round multiplication skips the encode + forward NTT.
  const std::size_t t = config_.pasta.t;
  std::vector<u64> mask(s, 1);
  mask[0] = 0;
  mask[t] = 0;
  feistel_mask_ntt_ = fhe::RnsPoly::from_plaintext(
      &bgv_.rns(), bgv_.top_level(), tiled_plain(mask).coeffs,
      /*to_ntt_form=*/true);
}

fhe::Plaintext BatchedHheServer::tiled_plain(std::span<const u64> values) const {
  return encoder_.encode(layout_.to_slots(tile_state(layout_, values)));
}

fhe::Ciphertext BatchedHheServer::keystream_circuit(u64 nonce, u64 counter,
                                                    ServerReport* report) const {
  const auto& params = config_.pasta;
  const std::size_t t = params.t;
  const std::size_t s = 2 * t;
  const mod::Modulus pm(params.p);
  const auto rnd = pasta::derive_block_randomness(params, nonce, counter);

  ServerReport local;
  ServerReport& rep = report != nullptr ? *report : local;
  rep = ServerReport{};
  const CounterSnapshot before = bgv_.rns().exec().snapshot();

  Ciphertext state = key_ct_;
  // Rotation output reused across every diagonal of every layer — the
  // in-place hoisted rotation reshapes these slabs rather than allocating.
  Ciphertext rot;

  // Affine layer with Mix folded in: Mix(diag(M_L, M_R) x + rc) =
  // (Mix ∘ diag(M_L, M_R)) x + Mix(rc) — one dense matrix, applied with the
  // full diagonal method on a HOISTED state: the digit decomposition of
  // `state` is computed once and every diagonal rotation is served from it
  // as a slot permutation + key inner product, with zero forward NTTs.
  auto affine_mix = [&](const pasta::AffineLayerData& d) {
    const auto mat_l = pasta::sequential_matrix(pm, d.alpha_l);
    const auto mat_r = pasta::sequential_matrix(pm, d.alpha_r);
    // Entry (i, j) of Mix * diag(M_L, M_R): Mix = (2I I / I 2I), so the top
    // rows read 2*M_L | M_R and the bottom rows M_L | 2*M_R.
    auto entry = [&](std::size_t i, std::size_t j) -> u64 {
      if (i < t) {
        return j < t ? pm.add(mat_l.at(i, j), mat_l.at(i, j))
                     : mat_r.at(i, j - t);
      }
      return j < t ? mat_l.at(i - t, j)
                   : pm.add(mat_r.at(i - t, j - t), mat_r.at(i - t, j - t));
    };

    const fhe::HoistedCt hoisted = bgv_.hoist(state);
    // Zero-seeded accumulator + fused add_mul per diagonal: no per-diagonal
    // ciphertext temporary, and the shared `rot` output absorbs every
    // rotation (add_mul into a zero slot is the plain multiply
    // bit-for-bit, so outputs match the old copy-then-accumulate loop).
    Ciphertext acc;
    acc.level = state.level;
    acc.parts.emplace_back(&bgv_.rns(), state.level, /*ntt_form=*/true);
    acc.parts.emplace_back(&bgv_.rns(), state.level, /*ntt_form=*/true);
    for (std::size_t k = 0; k < s; ++k) {
      // Diagonal d_k[i] = entry(i, (i + k) mod s).
      std::vector<u64> diag(s);
      for (std::size_t i = 0; i < s; ++i) {
        diag[i] = entry(i, (i + k) % s);
      }
      const Ciphertext* src = &state;
      if (k != 0) {
        bgv_.rotate_hoisted_into(hoisted, static_cast<long>(k),
                                 *rotation_keys_, rot);
        src = &rot;
      }
      const fhe::RnsPoly diag_ntt =
          fhe::RnsPoly::from_plaintext(&bgv_.rns(), state.level,
                                       tiled_plain(diag).coeffs,
                                       /*to_ntt_form=*/true);
      rep.scalar_multiplications += s;
      for (std::size_t p = 0; p < 2; ++p) {
        acc.parts[p].add_mul_inplace(src->parts[p], diag_ntt);
      }
    }

    // The raw add_mul loop bypassed the tracked bound; account for the s
    // fused diagonal products before the ciphertext re-enters the API.
    bgv_.note_fused_affine(acc, state, s);

    // Mix-composed round constants: 2*rc_l + rc_r || rc_l + 2*rc_r.
    std::vector<u64> rc(s);
    for (std::size_t i = 0; i < t; ++i) {
      rc[i] = pm.add(pm.add(d.rc_l[i], d.rc_l[i]), d.rc_r[i]);
      rc[t + i] = pm.add(d.rc_l[i], pm.add(d.rc_r[i], d.rc_r[i]));
    }
    bgv_.add_plain_inplace(acc, tiled_plain(rc));
    state = std::move(acc);
    if (config_.auto_mod_switch) {
      bgv_.auto_switch_inplace(state, config_.switch_margin);
    }
  };

  // Dense-diagonal plaintext multiplications inflate the noise by
  // ~||pt|| * n per affine layer on top of the squaring, so each ct-ct
  // multiplication must shed primes to clamp the noise back to the floor.
  // The drops happen BEFORE relinearisation: a fused switch on the 3-part
  // tensor, so the relin digit decomposition runs at the lower level. The
  // legacy schedule hard-codes three drops (sized for the oversized 18x55
  // chain); auto mode lets the tracked bound place them.
  auto square_reduced = [&](const Ciphertext& x) {
    Ciphertext sq = bgv_.multiply(x, x);
    if (config_.auto_mod_switch) {
      bgv_.auto_switch_inplace(sq, config_.switch_margin);
    } else {
      bgv_.mod_switch_to(sq, sq.level - 3);
    }
    bgv_.relinearize_inplace(sq);
    if (config_.auto_mod_switch) {
      bgv_.auto_switch_inplace(sq, config_.switch_margin);
    }
    ++rep.ct_ct_multiplications;
    return sq;
  };

  auto feistel = [&] {
    Ciphertext sq = square_reduced(state);
    bgv_.rotate_columns_inplace(sq, static_cast<long>(s - 1), *rotation_keys_);
    // Mask out the wrap positions 0 (head of L) and t (head of R); the mask
    // was encoded once at construction, mul_inplace restricts it.
    for (auto& part : sq.parts) part.mul_inplace(feistel_mask_ntt_);
    bgv_.note_mask_mul(sq);
    // The mask multiply is a full plaintext product (~log2(t) + log2(n)
    // bits); on an elevated trajectory (e.g. an ingest-switched tenant key)
    // that can cross a drop threshold mid-feistel, and the replayed
    // schedule drops here — the live path must offer the same drop point.
    if (config_.auto_mod_switch) {
      bgv_.auto_switch_inplace(sq, config_.switch_margin);
    }
    bgv_.mod_switch_to(state, sq.level);
    bgv_.add_inplace(state, sq);
  };

  auto cube = [&] {
    Ciphertext sq = square_reduced(state);
    bgv_.mod_switch_to(state, sq.level);
    Ciphertext prod = bgv_.multiply(sq, state);
    if (config_.auto_mod_switch) {
      bgv_.auto_switch_inplace(prod, config_.switch_margin);
    } else {
      bgv_.mod_switch_to(prod, prod.level - 3);
    }
    bgv_.relinearize_inplace(prod);
    if (config_.auto_mod_switch) {
      bgv_.auto_switch_inplace(prod, config_.switch_margin);
    }
    state = std::move(prod);
    ++rep.ct_ct_multiplications;
  };

  for (std::size_t round = 0; round < params.rounds; ++round) {
    affine_mix(rnd.layers[round]);
    if (round == params.rounds - 1) {
      cube();
    } else {
      feistel();
    }
  }
  affine_mix(rnd.layers.back());

  // The keystream leaves the server next (after one add): spend surplus
  // levels down to the safety band — anything above it is wasted modulus.
  if (config_.auto_mod_switch) {
    bgv_.trim_output_inplace(state, config_.output_budget_bits);
  }

  rep.final_level = state.level;
  rep.exec_ops = bgv_.rns().exec().snapshot() - before;
  rep.min_noise_budget_bits = bgv_.noise_budget_bits(state);
  rep.predicted_min_budget_bits = bgv_.predicted_budget_bits(state);
  return state;
}

fhe::Ciphertext BatchedHheServer::transcipher_block(
    std::span<const u64> symmetric_ct, u64 nonce, u64 counter,
    ServerReport* report) const {
  const std::size_t t = config_.pasta.t;
  POE_ENSURE(!symmetric_ct.empty() && symmetric_ct.size() <= t,
             "block must have 1.." << t << " elements");
  Ciphertext ks = keystream_circuit(nonce, counter, report);
  bgv_.negate_inplace(ks);
  // Add the symmetric ciphertext at logical positions 0..len-1 (every tile
  // sees the same values; only the first tile is read back).
  std::vector<u64> c(2 * t, 0);
  std::copy(symmetric_ct.begin(), symmetric_ct.end(), c.begin());
  bgv_.add_plain_inplace(ks, tiled_plain(c));
  return ks;
}

std::vector<std::uint64_t> BatchedHheServer::decode_block(
    const HheConfig& config, const fhe::Bgv& bgv, const fhe::Ciphertext& ct,
    std::size_t len) {
  fhe::BatchEncoder encoder(config.bgv.n, config.bgv.t);
  fhe::SlotLayout layout(config.bgv.n, config.bgv.t);
  const auto logical = layout.from_slots(encoder.decode(bgv.decrypt(ct)));
  return {logical.begin(), logical.begin() + static_cast<long>(len)};
}

}  // namespace poe::hhe
