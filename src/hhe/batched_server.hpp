// Batched (SIMD) homomorphic PASTA evaluation — the packing strategy the
// original HHE framework [9] uses on the server.
//
// The whole 2t-element PASTA state lives in ONE ciphertext: the state is
// tiled periodically across the columns of the 2 x (n/2) slot grid, so a
// column rotation by k acts as a cyclic rotation of the state vector by k.
// Per round, Mix is folded into the affine matrix (one dense 2t x 2t matrix
// per layer) and the product is evaluated with the full diagonal method on
// a HOISTED state: the digit decomposition of the state ciphertext is
// computed once (Bgv::hoist) and every one of the 2t-1 diagonal rotations
// is served from it as a slot permutation + key inner product
// (Bgv::rotate_hoisted). With hoisting, 2t cheap rotations beat the
// baby-step/giant-step split — BSGS's giant rotations would each need a
// fresh decomposition, which is the cost hoisting exists to amortise. The
// Feistel S-box is ONE ciphertext squaring for the whole state plus a
// rotate-by-(2t-1) and a mask — 5 ct-ct multiplications for all of PASTA-4
// instead of 250 in the coefficient-wise evaluation.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fhe/encoding.hpp"
#include "fhe/galois.hpp"
#include "hhe/protocol.hpp"

namespace poe::hhe {

/// Client-side helper: the PASTA key tiled into a single BGV ciphertext.
fhe::Ciphertext encrypt_key_batched(const HheConfig& config,
                                    const fhe::Bgv& bgv,
                                    const fhe::BatchEncoder& encoder,
                                    const fhe::SlotLayout& layout,
                                    std::span<const std::uint64_t> key);

class BatchedHheServer {
 public:
  /// Generates the rotation keys it needs (all 2t-1 diagonal steps, which
  /// cover the Feistel shift) via the evaluator.
  BatchedHheServer(const HheConfig& config, const fhe::Bgv& bgv,
                   fhe::Ciphertext encrypted_key);

  /// Multi-tenant variant: rotation keys depend only on (config, bgv), not
  /// on the client key, so a serving layer constructs them ONCE via
  /// make_shared_rotation_keys and shares them across every session.
  BatchedHheServer(const HheConfig& config, const fhe::Bgv& bgv,
                   fhe::Ciphertext encrypted_key,
                   std::shared_ptr<const fhe::GaloisKeys> shared_keys);

  /// The rotation steps the batched circuit uses: 1 .. 2t-1 (every hoisted
  /// diagonal of the Mix-composed affine matrices; 2t-1 doubles as the
  /// Feistel shift).
  static std::vector<long> rotation_steps(const HheConfig& config);
  static std::shared_ptr<const fhe::GaloisKeys> make_shared_rotation_keys(
      const HheConfig& config, const fhe::Bgv& bgv);

  /// Homomorphically decrypt one PASTA block; returns ONE ciphertext whose
  /// logical slots 0..len-1 hold the message elements.
  fhe::Ciphertext transcipher_block(
      std::span<const std::uint64_t> symmetric_ct, std::uint64_t nonce,
      std::uint64_t counter, ServerReport* report = nullptr) const;

  /// Client-side: read the message back out of a transciphered ciphertext.
  static std::vector<std::uint64_t> decode_block(
      const HheConfig& config, const fhe::Bgv& bgv,
      const fhe::Ciphertext& ct, std::size_t len);

  const fhe::SlotLayout& layout() const { return layout_; }

 private:
  fhe::Ciphertext keystream_circuit(std::uint64_t nonce,
                                    std::uint64_t counter,
                                    ServerReport* report) const;
  /// Plaintext with `values` (length 2t) tiled across the slot grid.
  fhe::Plaintext tiled_plain(std::span<const std::uint64_t> values) const;

  const HheConfig& config_;
  const fhe::Bgv& bgv_;
  fhe::BatchEncoder encoder_;
  fhe::SlotLayout layout_;
  std::shared_ptr<const fhe::GaloisKeys> rotation_keys_;
  fhe::Ciphertext key_ct_;
  /// Feistel wrap mask (zeros at logical 0 and t), encoded once at the top
  /// level; mul_inplace restricts it to whatever level the round runs at.
  fhe::RnsPoly feistel_mask_ntt_;
};

}  // namespace poe::hhe
