#include "hhe/protocol.hpp"

#include <algorithm>
#include <cstdlib>
#include <span>
#include <string_view>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "fhe/noise.hpp"

namespace poe::hhe {

namespace {
using fhe::Ciphertext;
using u64 = std::uint64_t;

// POE_HHE_PROFILE={rightsized (default), legacy}: makes the default config
// accessors hand back the legacy oversized parameter sets instead of the
// search-derived ones — an A/B knob for benches and bisection, no rebuild
// needed. Read per call (config construction is cold), so tests can flip
// it with setenv. Anything else than the two known values throws rather
// than silently picking a profile.
bool use_legacy_profile() {
  const char* profile = std::getenv("POE_HHE_PROFILE");
  if (profile == nullptr || std::string_view(profile) == "rightsized") {
    return false;
  }
  POE_ENSURE(std::string_view(profile) == "legacy",
             "POE_HHE_PROFILE must be 'rightsized' or 'legacy', got '"
                 << profile << "'");
  return true;
}
}  // namespace

// The hand-chosen legacy parameter sets. Kept verbatim: they are the
// hand-placed mod-switch reference configs for the differential suite and
// the baseline the right-sizing speedup benches compare against.
HheConfig HheConfig::demo_legacy() {
  HheConfig cfg;
  cfg.pasta = pasta::pasta4();  // t = 32, 4 rounds, p = 65537
  cfg.bgv = fhe::BgvParams{.n = 2048,
                           .t = cfg.pasta.p,
                           .num_primes = 12,
                           .prime_bits = 45,
                           .relin_digit_bits = 23,
                           .seed = 11};
  return cfg;
}

HheConfig HheConfig::test_legacy() {
  HheConfig cfg;
  cfg.pasta = pasta::PastaParams{
      .t = 8, .rounds = 4, .p = 65537, .name = "PASTA-mini"};
  cfg.bgv = fhe::BgvParams{.n = 1024,
                           .t = cfg.pasta.p,
                           .num_primes = 12,
                           .prime_bits = 40,
                           .relin_digit_bits = 20,
                           .seed = 11};
  return cfg;
}

// The batched server multiplies by *dense* encoded diagonals and masks, so
// each round inflates the noise by ~||pt|| * n (about 2^27..2^33) on top of
// the squaring. The legacy chains clamp that with a fixed
// 3-drops-per-squaring schedule over 18 x 55-bit primes.
HheConfig HheConfig::batched_demo_legacy() {
  HheConfig cfg = demo_legacy();
  cfg.bgv.num_primes = 18;
  cfg.bgv.prime_bits = 55;
  cfg.bgv.relin_digit_bits = 28;
  return cfg;
}

HheConfig HheConfig::batched_test_legacy() {
  HheConfig cfg = test_legacy();
  cfg.bgv.num_primes = 18;
  cfg.bgv.prime_bits = 55;
  cfg.bgv.relin_digit_bits = 28;
  return cfg;
}

// Right-sized configs: the BgvParams below are pasted from the output of
// the circuit-profile parameter search (build/bench/bench_param_search —
// record the circuit, replay it under candidates, pick the cheapest chain
// whose predicted output budget clears the safety band under the security
// table). A fixed-point test re-runs profile + search and EXPECT_EQs these
// numbers, so they cannot drift from the search tool or the table. All four
// run the automatic mod-switch scheduler — their chains are too short for
// the legacy hand placement.
HheConfig HheConfig::demo() {
  HheConfig cfg = demo_legacy();
  if (use_legacy_profile()) return cfg;
  cfg.bgv = fhe::BgvParams{.n = 1024,
                           .t = cfg.pasta.p,
                           .num_primes = 11,
                           .prime_bits = 48,
                           .relin_digit_bits = 24,
                           .seed = 11};
  cfg.auto_mod_switch = true;
  return cfg;
}

HheConfig HheConfig::test() {
  HheConfig cfg = test_legacy();
  if (use_legacy_profile()) return cfg;
  cfg.bgv = fhe::BgvParams{.n = 1024,
                           .t = cfg.pasta.p,
                           .num_primes = 8,
                           .prime_bits = 57,
                           .relin_digit_bits = 30,
                           .seed = 11};
  cfg.auto_mod_switch = true;
  return cfg;
}

HheConfig HheConfig::batched_demo() {
  if (use_legacy_profile()) return batched_demo_legacy();
  HheConfig cfg = demo();
  cfg.bgv = fhe::BgvParams{.n = 1024,
                           .t = cfg.pasta.p,
                           .num_primes = 12,
                           .prime_bits = 61,
                           .relin_digit_bits = 22,
                           .seed = 11};
  return cfg;
}

HheConfig HheConfig::batched_test() {
  if (use_legacy_profile()) return batched_test_legacy();
  HheConfig cfg = test();
  cfg.bgv = fhe::BgvParams{.n = 1024,
                           .t = cfg.pasta.p,
                           .num_primes = 12,
                           .prime_bits = 57,
                           .relin_digit_bits = 20,
                           .seed = 11};
  return cfg;
}

HheClient::HheClient(const HheConfig& config, const fhe::Bgv& bgv,
                     std::vector<u64> pasta_key)
    : config_(config), bgv_(bgv), cipher_(config.pasta, std::move(pasta_key)) {
  POE_ENSURE(config.bgv.t == config.pasta.p,
             "BGV plaintext modulus must equal the PASTA prime");
}

std::vector<Ciphertext> HheClient::encrypt_key() const {
  std::vector<Ciphertext> out;
  out.reserve(cipher_.key().size());
  for (const u64 k : cipher_.key()) {
    fhe::Plaintext pt;
    pt.coeffs.assign(1, k);  // constant polynomial
    out.push_back(bgv_.encrypt(pt));
  }
  return out;
}

std::vector<u64> HheClient::encrypt(std::span<const u64> msg,
                                    u64 nonce) const {
  return cipher_.encrypt(msg, nonce);
}

std::vector<u64> HheClient::decrypt_result(
    const std::vector<Ciphertext>& cts) const {
  std::vector<u64> out;
  out.reserve(cts.size());
  for (const auto& ct : cts) {
    const auto pt = bgv_.decrypt(ct);
    out.push_back(pt.coeffs.empty() ? 0 : pt.coeffs[0]);
  }
  return out;
}

PreparedBlock prepare_block(const pasta::PastaParams& params, u64 nonce,
                            u64 counter) {
  const mod::Modulus pm(params.p);
  PreparedBlock prep;
  prep.nonce = nonce;
  prep.counter = counter;
  prep.rnd = pasta::derive_block_randomness(params, nonce, counter);
  prep.mat_l.reserve(prep.rnd.layers.size());
  prep.mat_r.reserve(prep.rnd.layers.size());
  for (const auto& d : prep.rnd.layers) {
    prep.mat_l.push_back(pasta::sequential_matrix(pm, d.alpha_l));
    prep.mat_r.push_back(pasta::sequential_matrix(pm, d.alpha_r));
  }
  return prep;
}

HheServer::HheServer(const HheConfig& config, const fhe::Bgv& bgv,
                     std::vector<Ciphertext> encrypted_key)
    : config_(config), bgv_(bgv), key_cts_(std::move(encrypted_key)) {
  POE_ENSURE(key_cts_.size() == config_.pasta.key_size(),
             "encrypted key must have " << config_.pasta.key_size()
                                        << " ciphertexts");
}

std::vector<Ciphertext> HheServer::keystream_circuit(
    const PreparedBlock& prep, ServerReport* report) const {
  const auto& params = config_.pasta;
  const std::size_t t = params.t;
  const auto& rnd = prep.rnd;

  ServerReport local;
  ServerReport& rep = report != nullptr ? *report : local;
  rep = ServerReport{};
  const CounterSnapshot before = bgv_.rns().exec().snapshot();

  std::vector<Ciphertext> left(key_cts_.begin(),
                               key_cts_.begin() + static_cast<long>(t));
  std::vector<Ciphertext> right(key_cts_.begin() + static_cast<long>(t),
                                key_cts_.end());

  const bool auto_sched = config_.auto_mod_switch;
  const fhe::NoiseEstimator est(config_.bgv);
  // Auto mode drops whole state vectors to one collectively-safe target
  // (greedy on the worst tracked bound, the shared auto_drop_target policy)
  // instead of per-ciphertext: rows carry slightly different bounds (the
  // mul_scalar term depends on the coefficient magnitude), and a uniform
  // target keeps them level-aligned for the cross-row additions of mix and
  // the affine layers.
  auto auto_drop2 = [&](std::span<Ciphertext> a, std::span<Ciphertext> b) {
    if (!auto_sched || a.empty()) return;
    double worst = 0.0;
    for (const auto& ct : a) worst = std::max(worst, ct.noise_bits);
    for (const auto& ct : b) worst = std::max(worst, ct.noise_bits);
    const std::size_t target = est.auto_drop_target(
        worst, a.front().level, a.front().size(), config_.switch_margin);
    if (target == a.front().level) return;
    for (auto& ct : a) bgv_.mod_switch_to(ct, target);
    for (auto& ct : b) bgv_.mod_switch_to(ct, target);
  };
  auto auto_drop = [&](std::span<Ciphertext> a) { auto_drop2(a, {}); };

  // y_i = sum_j M_ij x_j + rc_i; rows are independent, so they are
  // evaluated in parallel (the Bgv evaluator's const methods only read
  // shared key material).
  //
  // In auto mode the accumulator must be allowed to drop primes MID-row:
  // one affine layer inflates the bound by ~log2(t/2) + log2(t) bits, which
  // on a short right-sized chain can exceed a whole prime — waiting for the
  // end-of-layer barrier piles noise past what the last primes can absorb.
  // Rows still have to stay level-aligned, so the drop positions are
  // planned once per layer from worst-case bounds (|scalar| <= t/2, worst
  // input row) — nonce- and row-independent, and the same recurrence the
  // parameter-search replay (simulate) runs, so live levels track the
  // replayed schedule term for term.
  auto affine_half = [&](std::vector<Ciphertext>& x, const pasta::Matrix& mat,
                         const std::vector<u64>& rc) {
    const std::size_t start_level = x[0].level;
    std::vector<std::size_t> lvl_after(t, start_level);
    if (auto_sched) {
      double worst_in = 0.0;
      for (const auto& ct : x) worst_in = std::max(worst_in, ct.noise_bits);
      const double term = est.mul_scalar(worst_in, config_.bgv.t / 2);
      double acc = term;
      std::size_t lvl = start_level;
      for (std::size_t j = 0; j < t; ++j) {
        if (j > 0) {
          double tj = term;
          for (std::size_t l = start_level; l > lvl; --l) {
            tj = est.mod_switch(tj);
          }
          acc = est.add(acc, tj);
        }
        const std::size_t target =
            est.auto_drop_target(acc, lvl, 2, config_.switch_margin);
        while (lvl > target) {
          acc = est.mod_switch(acc);
          --lvl;
        }
        lvl_after[j] = lvl;
      }
    }
    std::vector<Ciphertext> out(t);
    parallel_for(t, [&](std::size_t i) {
      Ciphertext acc = x[0];
      bgv_.mul_scalar_inplace(acc, mat.at(i, 0));
      if (acc.level > lvl_after[0]) bgv_.mod_switch_to(acc, lvl_after[0]);
      for (std::size_t j = 1; j < t; ++j) {
        Ciphertext term = x[j];
        bgv_.mul_scalar_inplace(term, mat.at(i, j));
        if (term.level > acc.level) bgv_.mod_switch_to(term, acc.level);
        bgv_.add_inplace(acc, term);
        if (acc.level > lvl_after[j]) bgv_.mod_switch_to(acc, lvl_after[j]);
      }
      bgv_.add_scalar_inplace(acc, rc[i]);
      out[i] = std::move(acc);
    });
    rep.scalar_multiplications += t * t;
    x = std::move(out);
  };

  auto mix = [&] {
    for (std::size_t i = 0; i < t; ++i) {
      // (l, r) <- (2l + r, l + 2r) == (l + s, r + s) with s = l + r.
      Ciphertext sum = left[i];
      bgv_.add_inplace(sum, right[i]);
      bgv_.add_inplace(left[i], sum);
      bgv_.add_inplace(right[i], sum);
    }
    // Post-mix is the noisiest point of the linear layer; in auto mode
    // drop both halves together here.
    auto_drop2(left, right);
  };

  // Square with a fixed 2-level schedule: multiply_relin drops one prime;
  // one more switch returns the noise to the floor.
  // NOTE: square_reduced runs inside parallel_for; the report counters are
  // updated by the caller afterwards to avoid data races.
  auto square_reduced = [&](const Ciphertext& x) {
    Ciphertext sq = bgv_.multiply_relin(x, x);
    bgv_.mod_switch_inplace(sq);
    return sq;
  };

  // Auto-scheduled squaring of a whole vector: tensor in parallel, drop the
  // 3-part results while the shrink is cheapest (before relinearisation's
  // per-prime digit work), relinearise, drop again. Each drop is collective
  // so the vector stays level-aligned.
  auto square_vec_auto = [&](const std::vector<Ciphertext>& x,
                             std::size_t count) {
    std::vector<Ciphertext> sq(count);
    parallel_for(count,
                 [&](std::size_t j) { sq[j] = bgv_.multiply(x[j], x[j]); });
    auto_drop(sq);
    parallel_for(count,
                 [&](std::size_t j) { bgv_.relinearize_inplace(sq[j]); });
    auto_drop(sq);
    return sq;
  };

  auto feistel = [&](std::vector<Ciphertext>& x) {
    std::vector<Ciphertext> sq;
    if (auto_sched) {
      sq = square_vec_auto(x, t - 1);
    } else {
      sq.resize(t - 1);
      parallel_for(t - 1,
                   [&](std::size_t j) { sq[j] = square_reduced(x[j]); });
    }
    rep.ct_ct_multiplications += t - 1;
    const std::size_t level = sq.front().level;
    for (std::size_t j = t; j-- > 1;) {
      bgv_.mod_switch_to(x[j], level);
      bgv_.add_inplace(x[j], sq[j - 1]);
    }
    bgv_.mod_switch_to(x[0], level);
  };

  auto cube = [&](std::vector<Ciphertext>& x) {
    if (auto_sched) {
      std::vector<Ciphertext> sq = square_vec_auto(x, t);
      parallel_for(t, [&](std::size_t j) {
        bgv_.mod_switch_to(x[j], sq[j].level);
        x[j] = bgv_.multiply(sq[j], x[j]);
      });
      auto_drop(x);
      parallel_for(t, [&](std::size_t j) { bgv_.relinearize_inplace(x[j]); });
      auto_drop(x);
    } else {
      parallel_for(t, [&](std::size_t j) {
        Ciphertext sq = square_reduced(x[j]);
        bgv_.mod_switch_to(x[j], sq.level);
        x[j] = bgv_.multiply_relin(sq, x[j]);
        bgv_.mod_switch_inplace(x[j]);
      });
    }
    rep.ct_ct_multiplications += 2 * t;  // square + final multiplication
  };

  for (std::size_t round = 0; round < params.rounds; ++round) {
    const auto& d = rnd.layers[round];
    affine_half(left, prep.mat_l[round], d.rc_l);
    affine_half(right, prep.mat_r[round], d.rc_r);
    mix();
    if (round == params.rounds - 1) {
      cube(left);
      cube(right);
    } else {
      feistel(left);
      feistel(right);
    }
  }
  const auto& fin = rnd.layers.back();
  affine_half(left, prep.mat_l.back(), fin.rc_l);
  affine_half(right, prep.mat_r.back(), fin.rc_r);
  mix();

  // The keystream rows leave the server next: spend surplus levels down to
  // the safety band. One collective target (worst row bound) keeps the rows
  // level-aligned for the caller's final add.
  if (auto_sched) {
    double worst = 0.0;
    for (const auto& ct : left) worst = std::max(worst, ct.noise_bits);
    const std::size_t target =
        est.trim_target(worst, left.front().level, left.front().size(),
                        config_.output_budget_bits);
    if (target < left.front().level) {
      for (auto& ct : left) bgv_.mod_switch_to(ct, target);
    }
  }

  rep.final_level = left.front().level;
  rep.exec_ops = bgv_.rns().exec().snapshot() - before;
  rep.min_noise_budget_bits = 1e9;
  rep.predicted_min_budget_bits = 1e9;
  for (const auto& ct : left) {
    rep.min_noise_budget_bits =
        std::min(rep.min_noise_budget_bits, bgv_.noise_budget_bits(ct));
    rep.predicted_min_budget_bits =
        std::min(rep.predicted_min_budget_bits, bgv_.predicted_budget_bits(ct));
  }
  return left;  // truncation layer
}

std::vector<Ciphertext> HheServer::transcipher_block(
    std::span<const u64> symmetric_ct, u64 nonce, u64 counter,
    ServerReport* report) const {
  return transcipher_block(symmetric_ct,
                           prepare_block(config_.pasta, nonce, counter),
                           report);
}

std::vector<Ciphertext> HheServer::transcipher_block(
    std::span<const u64> symmetric_ct, const PreparedBlock& prep,
    ServerReport* report) const {
  const std::size_t t = config_.pasta.t;
  POE_ENSURE(symmetric_ct.size() <= t && !symmetric_ct.empty(),
             "block must have 1.." << t << " elements");
  auto ks = keystream_circuit(prep, report);
  std::vector<Ciphertext> out;
  out.reserve(symmetric_ct.size());
  for (std::size_t i = 0; i < symmetric_ct.size(); ++i) {
    // enc(m_i) = c_i - KS_i.
    Ciphertext m = std::move(ks[i]);
    bgv_.negate_inplace(m);
    bgv_.add_scalar_inplace(m, symmetric_ct[i]);
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<Ciphertext> HheServer::transcipher(
    std::span<const u64> symmetric_ct, u64 nonce, ServerReport* report) const {
  const std::size_t t = config_.pasta.t;
  std::vector<Ciphertext> out;
  out.reserve(symmetric_ct.size());
  for (std::size_t block = 0; block * t < symmetric_ct.size(); ++block) {
    const std::size_t begin = block * t;
    const std::size_t len = std::min(t, symmetric_ct.size() - begin);
    auto cts = transcipher_block(symmetric_ct.subspan(begin, len), nonce,
                                 block, report);
    for (auto& ct : cts) out.push_back(std::move(ct));
  }
  return out;
}

}  // namespace poe::hhe
