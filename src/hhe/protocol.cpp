#include "hhe/protocol.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace poe::hhe {

namespace {
using fhe::Ciphertext;
using u64 = std::uint64_t;
}  // namespace

HheConfig HheConfig::demo() {
  HheConfig cfg;
  cfg.pasta = pasta::pasta4();  // t = 32, 4 rounds, p = 65537
  cfg.bgv = fhe::BgvParams{.n = 2048,
                           .t = cfg.pasta.p,
                           .num_primes = 12,
                           .prime_bits = 45,
                           .relin_digit_bits = 23,
                           .seed = 11};
  return cfg;
}

HheConfig HheConfig::test() {
  HheConfig cfg;
  cfg.pasta = pasta::PastaParams{
      .t = 8, .rounds = 4, .p = 65537, .name = "PASTA-mini"};
  cfg.bgv = fhe::BgvParams{.n = 1024,
                           .t = cfg.pasta.p,
                           .num_primes = 12,
                           .prime_bits = 40,
                           .relin_digit_bits = 20,
                           .seed = 11};
  return cfg;
}

// The batched server multiplies by *dense* encoded diagonals and masks, so
// each round inflates the noise by ~||pt|| * n (about 2^27..2^33) on top of
// the squaring. The two modulus switches per S-box must clamp that growth
// back to the floor, which needs wider primes than the coefficient-wise
// evaluation: 2 x 55 bits >= the ~100-bit per-round growth.
HheConfig HheConfig::batched_demo() {
  HheConfig cfg = demo();
  cfg.bgv.num_primes = 18;
  cfg.bgv.prime_bits = 55;
  cfg.bgv.relin_digit_bits = 28;
  return cfg;
}

HheConfig HheConfig::batched_test() {
  HheConfig cfg = test();
  cfg.bgv.num_primes = 18;
  cfg.bgv.prime_bits = 55;
  cfg.bgv.relin_digit_bits = 28;
  return cfg;
}

HheClient::HheClient(const HheConfig& config, const fhe::Bgv& bgv,
                     std::vector<u64> pasta_key)
    : config_(config), bgv_(bgv), cipher_(config.pasta, std::move(pasta_key)) {
  POE_ENSURE(config.bgv.t == config.pasta.p,
             "BGV plaintext modulus must equal the PASTA prime");
}

std::vector<Ciphertext> HheClient::encrypt_key() const {
  std::vector<Ciphertext> out;
  out.reserve(cipher_.key().size());
  for (const u64 k : cipher_.key()) {
    fhe::Plaintext pt;
    pt.coeffs.assign(1, k);  // constant polynomial
    out.push_back(bgv_.encrypt(pt));
  }
  return out;
}

std::vector<u64> HheClient::encrypt(std::span<const u64> msg,
                                    u64 nonce) const {
  return cipher_.encrypt(msg, nonce);
}

std::vector<u64> HheClient::decrypt_result(
    const std::vector<Ciphertext>& cts) const {
  std::vector<u64> out;
  out.reserve(cts.size());
  for (const auto& ct : cts) {
    const auto pt = bgv_.decrypt(ct);
    out.push_back(pt.coeffs.empty() ? 0 : pt.coeffs[0]);
  }
  return out;
}

PreparedBlock prepare_block(const pasta::PastaParams& params, u64 nonce,
                            u64 counter) {
  const mod::Modulus pm(params.p);
  PreparedBlock prep;
  prep.nonce = nonce;
  prep.counter = counter;
  prep.rnd = pasta::derive_block_randomness(params, nonce, counter);
  prep.mat_l.reserve(prep.rnd.layers.size());
  prep.mat_r.reserve(prep.rnd.layers.size());
  for (const auto& d : prep.rnd.layers) {
    prep.mat_l.push_back(pasta::sequential_matrix(pm, d.alpha_l));
    prep.mat_r.push_back(pasta::sequential_matrix(pm, d.alpha_r));
  }
  return prep;
}

HheServer::HheServer(const HheConfig& config, const fhe::Bgv& bgv,
                     std::vector<Ciphertext> encrypted_key)
    : config_(config), bgv_(bgv), key_cts_(std::move(encrypted_key)) {
  POE_ENSURE(key_cts_.size() == config_.pasta.key_size(),
             "encrypted key must have " << config_.pasta.key_size()
                                        << " ciphertexts");
}

std::vector<Ciphertext> HheServer::keystream_circuit(
    const PreparedBlock& prep, ServerReport* report) const {
  const auto& params = config_.pasta;
  const std::size_t t = params.t;
  const auto& rnd = prep.rnd;

  ServerReport local;
  ServerReport& rep = report != nullptr ? *report : local;
  rep = ServerReport{};
  const CounterSnapshot before = bgv_.rns().exec().snapshot();

  std::vector<Ciphertext> left(key_cts_.begin(),
                               key_cts_.begin() + static_cast<long>(t));
  std::vector<Ciphertext> right(key_cts_.begin() + static_cast<long>(t),
                                key_cts_.end());

  // y_i = sum_j M_ij x_j + rc_i; rows are independent, so they are
  // evaluated in parallel (the Bgv evaluator's const methods only read
  // shared key material).
  auto affine_half = [&](std::vector<Ciphertext>& x, const pasta::Matrix& mat,
                         const std::vector<u64>& rc) {
    std::vector<Ciphertext> out(t);
    parallel_for(t, [&](std::size_t i) {
      Ciphertext acc = x[0];
      bgv_.mul_scalar_inplace(acc, mat.at(i, 0));
      for (std::size_t j = 1; j < t; ++j) {
        Ciphertext term = x[j];
        bgv_.mul_scalar_inplace(term, mat.at(i, j));
        bgv_.add_inplace(acc, term);
      }
      bgv_.add_scalar_inplace(acc, rc[i]);
      out[i] = std::move(acc);
    });
    rep.scalar_multiplications += t * t;
    x = std::move(out);
  };

  auto mix = [&] {
    for (std::size_t i = 0; i < t; ++i) {
      // (l, r) <- (2l + r, l + 2r) == (l + s, r + s) with s = l + r.
      Ciphertext sum = left[i];
      bgv_.add_inplace(sum, right[i]);
      bgv_.add_inplace(left[i], sum);
      bgv_.add_inplace(right[i], sum);
    }
  };

  // Square with a fixed 2-level schedule: multiply_relin drops one prime;
  // one more switch returns the noise to the floor.
  // NOTE: square_reduced runs inside parallel_for; the report counters are
  // updated by the caller afterwards to avoid data races.
  auto square_reduced = [&](const Ciphertext& x) {
    Ciphertext sq = bgv_.multiply_relin(x, x);
    bgv_.mod_switch_inplace(sq);
    return sq;
  };

  auto feistel = [&](std::vector<Ciphertext>& x) {
    std::vector<Ciphertext> sq(t - 1);
    parallel_for(t - 1, [&](std::size_t j) { sq[j] = square_reduced(x[j]); });
    rep.ct_ct_multiplications += t - 1;
    const std::size_t level = sq.front().level;
    for (std::size_t j = t; j-- > 1;) {
      bgv_.mod_switch_to(x[j], level);
      bgv_.add_inplace(x[j], sq[j - 1]);
    }
    bgv_.mod_switch_to(x[0], level);
  };

  auto cube = [&](std::vector<Ciphertext>& x) {
    parallel_for(t, [&](std::size_t j) {
      Ciphertext sq = square_reduced(x[j]);
      bgv_.mod_switch_to(x[j], sq.level);
      x[j] = bgv_.multiply_relin(sq, x[j]);
      bgv_.mod_switch_inplace(x[j]);
    });
    rep.ct_ct_multiplications += 2 * t;  // square + final multiplication
  };

  for (std::size_t round = 0; round < params.rounds; ++round) {
    const auto& d = rnd.layers[round];
    affine_half(left, prep.mat_l[round], d.rc_l);
    affine_half(right, prep.mat_r[round], d.rc_r);
    mix();
    if (round == params.rounds - 1) {
      cube(left);
      cube(right);
    } else {
      feistel(left);
      feistel(right);
    }
  }
  const auto& fin = rnd.layers.back();
  affine_half(left, prep.mat_l.back(), fin.rc_l);
  affine_half(right, prep.mat_r.back(), fin.rc_r);
  mix();

  rep.final_level = left.front().level;
  rep.exec_ops = bgv_.rns().exec().snapshot() - before;
  rep.min_noise_budget_bits = 1e9;
  for (const auto& ct : left) {
    rep.min_noise_budget_bits =
        std::min(rep.min_noise_budget_bits, bgv_.noise_budget_bits(ct));
  }
  return left;  // truncation layer
}

std::vector<Ciphertext> HheServer::transcipher_block(
    std::span<const u64> symmetric_ct, u64 nonce, u64 counter,
    ServerReport* report) const {
  return transcipher_block(symmetric_ct,
                           prepare_block(config_.pasta, nonce, counter),
                           report);
}

std::vector<Ciphertext> HheServer::transcipher_block(
    std::span<const u64> symmetric_ct, const PreparedBlock& prep,
    ServerReport* report) const {
  const std::size_t t = config_.pasta.t;
  POE_ENSURE(symmetric_ct.size() <= t && !symmetric_ct.empty(),
             "block must have 1.." << t << " elements");
  auto ks = keystream_circuit(prep, report);
  std::vector<Ciphertext> out;
  out.reserve(symmetric_ct.size());
  for (std::size_t i = 0; i < symmetric_ct.size(); ++i) {
    // enc(m_i) = c_i - KS_i.
    Ciphertext m = std::move(ks[i]);
    bgv_.negate_inplace(m);
    bgv_.add_scalar_inplace(m, symmetric_ct[i]);
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<Ciphertext> HheServer::transcipher(
    std::span<const u64> symmetric_ct, u64 nonce, ServerReport* report) const {
  const std::size_t t = config_.pasta.t;
  std::vector<Ciphertext> out;
  out.reserve(symmetric_ct.size());
  for (std::size_t block = 0; block * t < symmetric_ct.size(); ++block) {
    const std::size_t begin = block * t;
    const std::size_t len = std::min(t, symmetric_ct.size() - begin);
    auto cts = transcipher_block(symmetric_ct.subspan(begin, len), nonce,
                                 block, report);
    for (auto& ct : cts) out.push_back(std::move(ct));
  }
  return out;
}

}  // namespace poe::hhe
