#include "hhe/simd_batch.hpp"

#include <set>

#include "common/error.hpp"
#include "hhe/batched_server.hpp"
#include "modular/modulus.hpp"

namespace poe::hhe {

namespace {
using fhe::Ciphertext;
using u64 = std::uint64_t;
}  // namespace

std::vector<long> SimdBatchEngine::rotation_steps(const HheConfig& config) {
  const std::size_t s = config.pasta.state_size();
  const std::size_t cols = config.bgv.n / 2;
  std::set<long> steps;
  for (std::size_t k = 1; k < s; ++k) {
    steps.insert(static_cast<long>(k));  // hoisted diagonal rotations
  }
  // Closing rotation of the wrap accumulator: rot_{-s} == rot_{cols - s}.
  const std::size_t wrap = (cols - s) % cols;
  if (wrap != 0) steps.insert(static_cast<long>(wrap));
  steps.insert(static_cast<long>(cols - 1));  // Feistel shift rot_{-1}
  return {steps.begin(), steps.end()};
}

std::shared_ptr<const fhe::GaloisKeys> SimdBatchEngine::make_shared_rotation_keys(
    const HheConfig& config, const fhe::Bgv& bgv) {
  return std::make_shared<const fhe::GaloisKeys>(
      bgv.make_rotation_keys(rotation_steps(config)));
}

SimdBatchEngine::SimdBatchEngine(const HheConfig& config, const fhe::Bgv& bgv)
    : SimdBatchEngine(config, bgv, make_shared_rotation_keys(config, bgv)) {}

SimdBatchEngine::SimdBatchEngine(
    const HheConfig& config, const fhe::Bgv& bgv,
    std::shared_ptr<const fhe::GaloisKeys> shared_keys)
    : config_(config),
      bgv_(bgv),
      encoder_(config.bgv.n, config.bgv.t),
      layout_(config.bgv.n, config.bgv.t) {
  const std::size_t s = config_.pasta.state_size();
  POE_ENSURE(layout_.cols() % s == 0,
             "ring too small: 2t must divide n/2 (2t=" << s
                                                       << ", n=" << config.bgv.n
                                                       << ")");
  POE_ENSURE(shared_keys != nullptr, "rotation keys must be non-null");
  rotation_keys_ = std::move(shared_keys);
  capacity_ = layout_.cols() / s;
}

fhe::Plaintext SimdBatchEngine::encode_cols(
    const std::vector<u64>& per_col) const {
  const std::size_t cols = layout_.cols();
  POE_ENSURE(per_col.size() == cols, "per-column vector has wrong size");
  std::vector<u64> logical(2 * cols);
  for (std::size_t col = 0; col < cols; ++col) {
    logical[col] = per_col[col];
    logical[cols + col] = per_col[col];
  }
  return encoder_.encode(layout_.to_slots(logical));
}

PreparedSimdBatch SimdBatchEngine::prepare(
    std::span<const SimdBlockRequest> requests) const {
  const auto& params = config_.pasta;
  const std::size_t t = params.t;
  const std::size_t s = 2 * t;
  const std::size_t cols = layout_.cols();
  const std::size_t layers = params.rounds + 1;
  const std::size_t blocks = requests.size();
  POE_ENSURE(blocks >= 1 && blocks <= capacity_,
             "batch must have 1.." << capacity_ << " blocks");
  const mod::Modulus pm(params.p);

  PreparedSimdBatch batch;
  batch.blocks = blocks;
  for (const auto& req : requests) {
    POE_ENSURE(!req.symmetric_ct.empty() && req.symmetric_ct.size() <= t,
               "block must have 1.." << t << " elements");
    batch.lens.push_back(req.symmetric_ct.size());
    batch.nonces.push_back(req.nonce);
    batch.counters.push_back(req.counter);
  }

  // Per block and affine layer: the Mix-composed matrix
  //   M = Mix * diag(M_L, M_R)   (top: 2*M_L | M_R, bottom: M_L | 2*M_R)
  // and round constants rc = Mix(rc_l || rc_r), all s x s / s dense.
  std::vector<std::vector<std::vector<u64>>> comp(blocks), crc(blocks);
  for (std::size_t m = 0; m < blocks; ++m) {
    const PreparedBlock pb =
        prepare_block(params, requests[m].nonce, requests[m].counter);
    comp[m].resize(layers);
    crc[m].resize(layers);
    for (std::size_t l = 0; l < layers; ++l) {
      const pasta::Matrix& ml = pb.mat_l[l];
      const pasta::Matrix& mr = pb.mat_r[l];
      const auto& d = pb.rnd.layers[l];
      auto& M = comp[m][l];
      M.assign(s * s, 0);
      for (std::size_t i = 0; i < t; ++i) {
        for (std::size_t j = 0; j < t; ++j) {
          M[i * s + j] = pm.add(ml.at(i, j), ml.at(i, j));
          M[i * s + t + j] = mr.at(i, j);
          M[(t + i) * s + j] = ml.at(i, j);
          M[(t + i) * s + t + j] = pm.add(mr.at(i, j), mr.at(i, j));
        }
      }
      auto& rcv = crc[m][l];
      rcv.resize(s);
      for (std::size_t i = 0; i < t; ++i) {
        rcv[i] = pm.add(pm.add(d.rc_l[i], d.rc_l[i]), d.rc_r[i]);
        rcv[t + i] = pm.add(d.rc_l[i], pm.add(d.rc_r[i], d.rc_r[i]));
      }
    }
  }

  // Mask-folded diagonals. Diagonal k of the tile-local matrix product
  // (D_k(col) = M^{(tile)}(off, (off+k) mod s)) splits into the in-tile part
  // A (off < s-k, read directly off rot_k(state)) and the wrap part B
  // (off >= s-k, logically read via rot_{k-s}); the wrap parts are
  // pre-rotated by +s (uB(col) = (D_k*B_k)(col + s)) so every one of them
  // applies to the SAME hoisted rot_k output and the whole wrap accumulator
  // takes a single closing rotation by cols - s.
  batch.diags.resize(layers);
  batch.rc.resize(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    batch.diags[l].resize(s);
    for (std::size_t k = 0; k < s; ++k) {
      std::vector<u64> ua(cols, 0), ub(cols, 0);
      bool any_a = false, any_b = false;
      for (std::size_t col = 0; col < cols; ++col) {
        {
          const std::size_t m = col / s, off = col % s;
          if (m < blocks && off + k < s) {
            const u64 v = comp[m][l][off * s + off + k];
            ua[col] = v;
            any_a = any_a || v != 0;
          }
        }
        {
          const std::size_t src = (col + s) % cols;
          const std::size_t m = src / s, off = src % s;
          if (m < blocks && off + k >= s) {
            const u64 v = comp[m][l][off * s + off + k - s];
            ub[col] = v;
            any_b = any_b || v != 0;
          }
        }
      }
      auto& pair = batch.diags[l][k];
      if (any_a) pair[0] = encode_cols(ua);
      if (any_b) pair[1] = encode_cols(ub);
    }
    std::vector<u64> rcv(cols, 0);
    for (std::size_t col = 0; col < cols; ++col) {
      const std::size_t m = col / s, off = col % s;
      if (m < blocks) rcv[col] = crc[m][l][off];
    }
    batch.rc[l] = encode_cols(rcv);
  }

  // Feistel mask: kill the tile heads (offsets 0 and t — those state
  // elements take no shifted addend) and every unoccupied tile.
  std::vector<u64> mask(cols, 0);
  std::vector<u64> msg(cols, 0);
  for (std::size_t col = 0; col < cols; ++col) {
    const std::size_t m = col / s, off = col % s;
    if (m >= blocks) continue;
    if (off != 0 && off != t) mask[col] = 1;
    if (off < batch.lens[m]) msg[col] = requests[m].symmetric_ct[off];
  }
  batch.feistel_mask_ntt = fhe::RnsPoly::from_plaintext(
      &bgv_.rns(), bgv_.top_level(), encode_cols(mask).coeffs,
      /*to_ntt_form=*/true);
  batch.message_plain = encode_cols(msg);
  return batch;
}

Ciphertext SimdBatchEngine::evaluate(const Ciphertext& key_ct,
                                     const PreparedSimdBatch& batch,
                                     ServerReport* report) const {
  const auto& params = config_.pasta;
  const std::size_t s = 2 * params.t;
  const std::size_t cols = layout_.cols();
  POE_ENSURE(batch.blocks >= 1 && batch.blocks <= capacity_,
             "batch must have 1.." << capacity_ << " blocks");
  POE_ENSURE(batch.diags.size() == params.rounds + 1,
             "batch was prepared for a different cipher");

  ServerReport local;
  ServerReport& rep = report != nullptr ? *report : local;
  rep = ServerReport{};
  const CounterSnapshot before = bgv_.rns().exec().snapshot();

  Ciphertext state = key_ct;
  // One rotation output reused across every diagonal of every layer: the
  // in-place hoisted rotation reshapes these slabs instead of allocating,
  // so after the first layer the whole diagonal loop runs pool-silent.
  Ciphertext rot;

  // One Mix-composed affine layer: full diagonal method over a hoisted
  // state. The in-tile parts accumulate directly; the wrap parts (already
  // pre-rotated by +s in prepare()) accumulate separately and take ONE
  // closing rotation by cols - s. Each diagonal is fused into its
  // accumulator with add_mul (zero-seeded accumulators make term 1 a plain
  // multiply bit-for-bit), so no per-diagonal ciphertext temporary exists.
  auto affine = [&](std::size_t l) {
    const fhe::HoistedCt hoisted = bgv_.hoist(state);
    Ciphertext inner_a, inner_b;
    bool init_a = false, init_b = false;
    std::size_t terms_a = 0, terms_b = 0;
    for (std::size_t k = 0; k < s; ++k) {
      const auto& pair = batch.diags[l][k];
      const bool have_a = !pair[0].coeffs.empty();
      const bool have_b = !pair[1].coeffs.empty();
      if (!have_a && !have_b) continue;
      const Ciphertext* src = &state;
      if (k != 0) {
        bgv_.rotate_hoisted_into(hoisted, static_cast<long>(k),
                                 *rotation_keys_, rot);
        src = &rot;
      }
      for (int variant = 0; variant < 2; ++variant) {
        if (pair[variant].coeffs.empty()) continue;
        const fhe::RnsPoly diag_ntt =
            fhe::RnsPoly::from_plaintext(&bgv_.rns(), state.level,
                                         pair[variant].coeffs,
                                         /*to_ntt_form=*/true);
        rep.scalar_multiplications += s;
        Ciphertext& inner = variant == 0 ? inner_a : inner_b;
        bool& init = variant == 0 ? init_a : init_b;
        ++(variant == 0 ? terms_a : terms_b);
        if (!init) {
          inner.level = state.level;
          inner.parts.emplace_back(&bgv_.rns(), state.level,
                                   /*ntt_form=*/true);
          inner.parts.emplace_back(&bgv_.rns(), state.level,
                                   /*ntt_form=*/true);
          init = true;
        }
        for (std::size_t p = 0; p < 2; ++p) {
          inner.parts[p].add_mul_inplace(src->parts[p], diag_ntt);
        }
      }
    }
    POE_ENSURE(init_a || init_b, "affine layer produced no terms");
    // The raw add_mul loops bypassed the tracked bound; account for the
    // fused diagonal products before the accumulators re-enter the API.
    if (init_a) bgv_.note_fused_affine(inner_a, state, terms_a);
    if (init_b) bgv_.note_fused_affine(inner_b, state, terms_b);
    Ciphertext acc;
    bool acc_init = false;
    if (init_a) {
      acc = std::move(inner_a);
      acc_init = true;
    }
    if (init_b) {
      const std::size_t wrap = (cols - s) % cols;
      if (wrap != 0) {
        bgv_.rotate_columns_inplace(inner_b, static_cast<long>(wrap),
                                    *rotation_keys_);
      }
      if (!acc_init) {
        acc = std::move(inner_b);
      } else {
        bgv_.add_inplace(acc, inner_b);
      }
    }
    bgv_.add_plain_inplace(acc, batch.rc[l]);
    state = std::move(acc);
    if (config_.auto_mod_switch) {
      bgv_.auto_switch_inplace(state, config_.switch_margin);
    }
  };

  // Same squaring schedule as the single-block batched server: the dense
  // diagonals inflate the noise by ~||pt|| * n per layer. The drops run
  // fused on the 3-part tensor BEFORE relinearising, so the relin digit
  // decomposition works at the lower level; auto mode lets the tracked
  // bound place them instead of the legacy hard-coded three.
  auto square_reduced = [&](const Ciphertext& x) {
    Ciphertext sq = bgv_.multiply(x, x);
    if (config_.auto_mod_switch) {
      bgv_.auto_switch_inplace(sq, config_.switch_margin);
    } else {
      bgv_.mod_switch_to(sq, sq.level - 3);
    }
    bgv_.relinearize_inplace(sq);
    if (config_.auto_mod_switch) {
      bgv_.auto_switch_inplace(sq, config_.switch_margin);
    }
    ++rep.ct_ct_multiplications;
    return sq;
  };

  auto feistel = [&] {
    Ciphertext sq = square_reduced(state);
    // Tile-local shift by -1; the cross-tile leak at offset 0 is masked.
    bgv_.rotate_columns_inplace(sq, static_cast<long>(cols - 1),
                                *rotation_keys_);
    for (auto& part : sq.parts) part.mul_inplace(batch.feistel_mask_ntt);
    bgv_.note_mask_mul(sq);
    // The mask multiply is a full plaintext product (~log2(t) + log2(n)
    // bits); on an elevated trajectory (e.g. an ingest-switched tenant key)
    // that can cross a drop threshold mid-feistel, and the replayed
    // schedule drops here — the live path must offer the same drop point.
    if (config_.auto_mod_switch) {
      bgv_.auto_switch_inplace(sq, config_.switch_margin);
    }
    bgv_.mod_switch_to(state, sq.level);
    bgv_.add_inplace(state, sq);
  };

  auto cube = [&] {
    Ciphertext sq = square_reduced(state);
    bgv_.mod_switch_to(state, sq.level);
    Ciphertext prod = bgv_.multiply(sq, state);
    if (config_.auto_mod_switch) {
      bgv_.auto_switch_inplace(prod, config_.switch_margin);
    } else {
      bgv_.mod_switch_to(prod, prod.level - 3);
    }
    bgv_.relinearize_inplace(prod);
    if (config_.auto_mod_switch) {
      bgv_.auto_switch_inplace(prod, config_.switch_margin);
    }
    state = std::move(prod);
    ++rep.ct_ct_multiplications;
  };

  for (std::size_t round = 0; round < params.rounds; ++round) {
    affine(round);
    if (round == params.rounds - 1) {
      cube();
    } else {
      feistel();
    }
  }
  affine(params.rounds);  // final affine layer (Mix folded in)

  // enc(m) = c - KS, all tiles at once.
  bgv_.negate_inplace(state);
  bgv_.add_plain_inplace(state, batch.message_plain);

  rep.final_level = state.level;
  rep.exec_ops = bgv_.rns().exec().snapshot() - before;
  rep.min_noise_budget_bits = bgv_.noise_budget_bits(state);
  rep.predicted_min_budget_bits = bgv_.predicted_budget_bits(state);
  return state;
}

fhe::Plaintext SimdBatchEngine::tile_mask(
    std::span<const std::size_t> tiles) const {
  const std::size_t s = config_.pasta.state_size();
  std::vector<u64> mask(layout_.cols(), 0);
  for (const std::size_t tile : tiles) {
    POE_ENSURE((tile + 1) * s <= layout_.cols(), "tile out of range");
    for (std::size_t off = 0; off < s; ++off) mask[tile * s + off] = 1;
  }
  return encode_cols(mask);
}

Ciphertext SimdBatchEngine::merge_tenant_keys(
    std::span<const TenantTiles> tenants) const {
  POE_ENSURE(!tenants.empty(), "merge requires at least one tenant");
  Ciphertext merged;
  bool first = true;
  for (const auto& tenant : tenants) {
    POE_ENSURE(tenant.key_ct != nullptr, "merge: null tenant key");
    POE_ENSURE(!tenant.tiles.empty(), "merge: tenant owns no tiles");
    Ciphertext masked = *tenant.key_ct;
    bgv_.mul_plain_inplace(masked, tile_mask(tenant.tiles));
    if (first) {
      merged = std::move(masked);
      first = false;
    } else {
      bgv_.match_levels(merged, masked);
      bgv_.add_inplace(merged, masked);
    }
  }
  return merged;
}

Ciphertext SimdBatchEngine::extract_tiles(
    const Ciphertext& ct, std::span<const std::size_t> tiles) const {
  Ciphertext out = ct;
  bgv_.mul_plain_inplace(out, tile_mask(tiles));
  // Per-tenant results leave the service here — trim surplus levels so the
  // download is no larger than the safety band requires.
  if (config_.auto_mod_switch) {
    bgv_.trim_output_inplace(out, config_.output_budget_bits);
  }
  return out;
}

std::vector<u64> SimdBatchEngine::decode_block(const HheConfig& config,
                                               const fhe::Bgv& bgv,
                                               const Ciphertext& ct,
                                               std::size_t tile,
                                               std::size_t len) {
  const std::size_t s = config.pasta.state_size();
  fhe::BatchEncoder encoder(config.bgv.n, config.bgv.t);
  fhe::SlotLayout layout(config.bgv.n, config.bgv.t);
  POE_ENSURE((tile + 1) * s <= layout.cols(), "tile out of range");
  POE_ENSURE(len <= config.pasta.t, "len out of range");
  const auto logical = layout.from_slots(encoder.decode(bgv.decrypt(ct)));
  const auto begin = logical.begin() + static_cast<long>(tile * s);
  return {begin, begin + static_cast<long>(len)};
}

}  // namespace poe::hhe
