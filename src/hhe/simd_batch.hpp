// Multi-block SIMD transciphering: several PASTA blocks of ONE session in a
// single BGV ciphertext.
//
// The 2 x (n/2) slot grid is cut into cols/2t tiles of 2t columns each; tile
// m carries the PASTA state of block m. Because every tile holds the SAME
// key (encrypt_key_batched tiles the key periodically), one evaluation of
// the keystream circuit produces cols/2t independent keystream blocks, each
// under its own (nonce, counter) randomness — the diagonal values are
// per-slot, so tile m simply uses block m's matrices and round constants.
//
// Two algebraic folds keep the circuit depth and noise IDENTICAL to the
// single-block batched server:
//
//  * Block-local rotations. A global column rotation by k leaks across tile
//    boundaries; the tile-local rotation decomposes as
//      rho_k(x) = A_k ⊙ rot_k(x) + B_k ⊙ rot_{k-2t}(x)
//    with complementary masks A_k(col) = [off(col) < 2t-k]. Both masks are
//    FOLDED INTO the diagonals (u ⊙ rot_r(z) = rot_r(rot_{-r}(u) ⊙ z)): the
//    in-tile parts apply directly to rot_k(state), the wrap parts collect
//    into one accumulator that takes a single closing rotation by cols-2t.
//
// Like the single-block batched server, the affine layer runs the FULL
// diagonal method on a hoisted state: Bgv::hoist digit-decomposes the state
// once and all 2t-1 rotations are served from it by Bgv::rotate_hoisted
// (slot permutation + key inner product, no forward NTTs) — with hoisting,
// 2t shared-decomposition rotations are cheaper than a baby/giant split
// whose giant steps would each redo the decomposition.
//  * The linear Mix layer is folded into the preceding affine matrix
//    (M = Mix · diag(M_L, M_R), rc = Mix(rc_l || rc_r)), removing the
//    rotate-by-t half swap entirely.
//
// The Feistel S-box keeps its one-squaring shape: the shifted addend is
// rot_{-1}(x^2) with a mask killing the tile heads (offsets 0 and t) — the
// across-tile leak at offset 0 lands exactly on a masked slot.
//
// prepare() is pure plaintext-side CPU work (SHAKE squeeze, rejection
// sampling, matrix generation, diagonal encoding); evaluate() is pure BGV
// work. The serving layer overlaps prepare(batch N+1) with
// evaluate(batch N) — the software analogue of the paper's Fig. 3 schedule.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fhe/encoding.hpp"
#include "fhe/galois.hpp"
#include "hhe/protocol.hpp"

namespace poe::hhe {

/// One PASTA block to transcipher: its keystream coordinates plus the
/// symmetric ciphertext elements (1..t of them).
struct SimdBlockRequest {
  std::uint64_t nonce = 0;
  std::uint64_t counter = 0;
  std::vector<std::uint64_t> symmetric_ct;
};

/// Everything evaluate() needs, built ahead of time by prepare(): the
/// mask-folded diagonals and round constants of every affine layer
/// (Mix pre-composed), the Feistel tile-head mask and the symmetric
/// ciphertext values, all encoded as slot plaintexts.
struct PreparedSimdBatch {
  std::size_t blocks = 0;                    ///< occupied tiles
  std::vector<std::size_t> lens;             ///< message length per block
  std::vector<std::uint64_t> nonces, counters;
  /// diags[layer][k] = {uA, uB}: in-tile and wrap mask-folded parts of
  /// diagonal k. A Plaintext with empty coeffs means "identically zero —
  /// skip".
  std::vector<std::vector<std::array<fhe::Plaintext, 2>>> diags;
  std::vector<fhe::Plaintext> rc;            ///< per affine layer
  /// Feistel mask pre-encoded in NTT form at the top level (it is reused in
  /// every round; mul_inplace restricts it to the round's level), shifting
  /// that encode work onto the prepare thread.
  fhe::RnsPoly feistel_mask_ntt;
  fhe::Plaintext message_plain;              ///< symmetric ct, tile-wise
};

/// One tenant's contribution to a cross-tenant packed batch: its tiled key
/// ciphertext (encrypt_key_batched puts the key in EVERY tile, so any tile
/// subset works) and the tiles the scheduler assigned to it. Tiles need not
/// be contiguous — interleaved submissions produce scattered ownership.
struct TenantTiles {
  const fhe::Ciphertext* key_ct = nullptr;
  std::vector<std::size_t> tiles;
};

class SimdBatchEngine {
 public:
  SimdBatchEngine(const HheConfig& config, const fhe::Bgv& bgv);
  /// Rotation keys depend only on (config, bgv): a serving layer builds
  /// them once and shares them across sessions.
  SimdBatchEngine(const HheConfig& config, const fhe::Bgv& bgv,
                  std::shared_ptr<const fhe::GaloisKeys> shared_keys);

  /// All 2t-1 hoisted diagonal steps, the wrap closing step (cols - 2t) and
  /// the Feistel shift (cols - 1).
  static std::vector<long> rotation_steps(const HheConfig& config);
  static std::shared_ptr<const fhe::GaloisKeys> make_shared_rotation_keys(
      const HheConfig& config, const fhe::Bgv& bgv);

  /// Blocks per batch = cols / 2t.
  std::size_t capacity() const { return capacity_; }
  const fhe::SlotLayout& layout() const { return layout_; }

  /// Plaintext-side precomputation (XOF, sampling, matrices, encoding) for
  /// up to capacity() blocks. No ciphertext operations; safe to run on a
  /// separate thread while evaluate() works on a previous batch.
  PreparedSimdBatch prepare(std::span<const SimdBlockRequest> requests) const;

  /// Homomorphically decrypt all blocks of the batch against the session's
  /// tiled key ciphertext; tile m of the result holds message m.
  fhe::Ciphertext evaluate(const fhe::Ciphertext& key_ct,
                           const PreparedSimdBatch& batch,
                           ServerReport* report = nullptr) const;

  /// Cross-tenant slot packing: restrict each tenant's tiled key to its
  /// assigned tiles with a 0/1 column mask and sum, so tile m of the merged
  /// ciphertext holds exactly the key of the tenant owning tile m. Tiles
  /// owned by nobody end up with an all-zero key (their output tiles carry
  /// well-defined garbage that extract_tiles discards). Because the whole
  /// keystream circuit is tile-local, tenant A's output slots are
  /// independent of what any other tile's key is — dropping (quarantining)
  /// a tenant from the merge cannot perturb co-packed tenants.
  fhe::Ciphertext merge_tenant_keys(std::span<const TenantTiles> tenants)
      const;

  /// Masked extraction on output: zero every slot outside `tiles`, so the
  /// ciphertext returned to one tenant carries no other tenant's plaintext.
  /// Costs one plaintext multiplication of noise at the output level.
  fhe::Ciphertext extract_tiles(const fhe::Ciphertext& ct,
                                std::span<const std::size_t> tiles) const;

  /// Client-side: read block `tile`'s message back out.
  static std::vector<std::uint64_t> decode_block(const HheConfig& config,
                                                 const fhe::Bgv& bgv,
                                                 const fhe::Ciphertext& ct,
                                                 std::size_t tile,
                                                 std::size_t len);

 private:
  /// Encode a per-column vector (duplicated into both slot-grid rows).
  fhe::Plaintext encode_cols(const std::vector<std::uint64_t>& per_col) const;
  /// 0/1 column mask selecting exactly the slots of `tiles`.
  fhe::Plaintext tile_mask(std::span<const std::size_t> tiles) const;

  const HheConfig& config_;
  const fhe::Bgv& bgv_;
  fhe::BatchEncoder encoder_;
  fhe::SlotLayout layout_;
  std::shared_ptr<const fhe::GaloisKeys> rotation_keys_;
  std::size_t capacity_ = 0;
};

}  // namespace poe::hhe
