// The hybrid homomorphic encryption protocol of the paper's Fig. 1.
//
//   1. The client FHE-encrypts its PASTA key K (once) and ships it.
//   2. The client symmetric-encrypts messages with PASTA — ciphertexts have
//      zero expansion (t field elements per block).
//   3. The server evaluates PASTA's *keystream generation* homomorphically
//      (matrices and round constants are public, derived from nonce‖counter)
//      and subtracts it from the received symmetric ciphertext, obtaining a
//      BGV encryption of the plaintext it can then compute on.
//   4. The client decrypts any FHE result with its secret key.
//
// The key is encrypted coefficient-wise: one BGV ciphertext per key element,
// each a constant polynomial. All circuit operations are then scalar
// multiplications/additions (affine layers, Mix) and ciphertext-ciphertext
// multiplications (S-boxes), keeping plaintexts constant polynomials
// throughout.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/exec_context.hpp"
#include "fhe/bgv.hpp"
#include "pasta/cipher.hpp"
#include "pasta/matrix.hpp"

namespace poe::hhe {

struct HheConfig {
  pasta::PastaParams pasta;
  fhe::BgvParams bgv;
  /// Let the servers schedule modulus switches automatically from the
  /// tracked noise bound (Bgv::auto_switch_inplace) instead of the
  /// hand-placed drop schedule. The right-sized configs below require this:
  /// their chains are too short for the legacy fixed 3-drops-per-squaring
  /// placement.
  bool auto_mod_switch = false;
  double switch_margin = 2.0;  ///< headroom bits for the greedy scheduler
  /// Safety-band floor for ciphertexts handed back to clients: with
  /// auto_mod_switch the servers trim surplus levels off their outputs
  /// (Bgv::trim_output_inplace) while the tracked bound keeps at least
  /// this much budget. Matches SearchConstraints::band_low.
  double output_budget_bits = 8.0;

  /// PASTA-4 over p = 65537 with a BGV ring deep enough for the full
  /// 4-round decryption circuit. NOTE: ring dimension is sized for speed,
  /// not security — see EXPERIMENTS.md. The BgvParams of all four configs
  /// below are the OUTPUT of the circuit-profile parameter search
  /// (bench/bench_param_search.cpp); a fixed-point test re-derives them so
  /// they cannot drift from the security table in fhe/param_search.cpp.
  /// POE_HHE_PROFILE=legacy makes these four accessors return the *_legacy
  /// configs instead (A/B and bisection knob; no rebuild needed).
  static HheConfig demo();
  /// A reduced PASTA-like instance (t = 8, 4 rounds) for fast tests; the
  /// circuit structure is identical.
  static HheConfig test();
  /// Parameters for the batched (SIMD) server: same ciphers, wider chain
  /// for the dense-diagonal noise growth.
  static HheConfig batched_demo();
  static HheConfig batched_test();

  /// The pre-right-sizing parameter sets (hand-chosen, uniformly oversized
  /// — every run ended with a ~91-bit budget surplus), kept as the
  /// hand-placed-schedule reference for the differential suite and as the
  /// baseline for the right-sizing speedup benches.
  static HheConfig demo_legacy();
  static HheConfig test_legacy();
  static HheConfig batched_demo_legacy();
  static HheConfig batched_test_legacy();
};

/// Plaintext-side precomputation for one keystream block: the public
/// randomness (SHAKE squeeze + rejection sampling) with the affine matrices
/// materialised. Building one touches only the XOF and CPU-side modular
/// arithmetic — no ciphertext operations — so a serving layer can overlap it
/// with the BGV evaluation of the *previous* block, the software analogue of
/// the paper's Fig. 3 schedule (MatGen hidden behind the other units).
struct PreparedBlock {
  std::uint64_t nonce = 0;
  std::uint64_t counter = 0;
  pasta::BlockRandomness rnd;
  std::vector<pasta::Matrix> mat_l, mat_r;  ///< one per affine layer
};

/// Derive and materialise everything the keystream circuit needs for block
/// (nonce, counter) — pure CPU work, usable by both servers.
PreparedBlock prepare_block(const pasta::PastaParams& params,
                            std::uint64_t nonce, std::uint64_t counter);

/// Diagnostics from a homomorphic decryption.
struct ServerReport {
  double min_noise_budget_bits = 0;  ///< worst output ciphertext (secret key)
  /// Budget implied by the server-side tracked bound for the same worst
  /// output — no secret key involved. Soundness invariant (CI-enforced):
  /// predicted <= measured.
  double predicted_min_budget_bits = 0;
  std::size_t final_level = 0;
  std::size_t ct_ct_multiplications = 0;
  std::size_t scalar_multiplications = 0;
  /// Delta of the evaluator's ExecContext counters over the keystream
  /// circuit (NTTs, key switches, pool hits/misses, ...).
  CounterSnapshot exec_ops;
};

class HheClient {
 public:
  HheClient(const HheConfig& config, const fhe::Bgv& bgv,
            std::vector<std::uint64_t> pasta_key);

  /// One-time upload: the PASTA key under BGV, coefficient-wise.
  std::vector<fhe::Ciphertext> encrypt_key() const;

  /// Symmetric encryption (what actually travels for every message).
  std::vector<std::uint64_t> encrypt(std::span<const std::uint64_t> msg,
                                     std::uint64_t nonce) const;

  /// Decrypt a server-side FHE result (one element per ciphertext).
  std::vector<std::uint64_t> decrypt_result(
      const std::vector<fhe::Ciphertext>& cts) const;

  const pasta::PastaCipher& cipher() const { return cipher_; }

 private:
  const HheConfig& config_;
  const fhe::Bgv& bgv_;
  pasta::PastaCipher cipher_;
};

class HheServer {
 public:
  /// The server holds only public material: the evaluator and the encrypted
  /// key. (The Bgv object also carries the secret key in this simulation;
  /// the server code path never calls decrypt.)
  HheServer(const HheConfig& config, const fhe::Bgv& bgv,
            std::vector<fhe::Ciphertext> encrypted_key);

  /// Homomorphically decrypt one PASTA block: returns t BGV ciphertexts,
  /// the i-th encrypting message element i as a constant polynomial.
  std::vector<fhe::Ciphertext> transcipher_block(
      std::span<const std::uint64_t> symmetric_ct, std::uint64_t nonce,
      std::uint64_t counter, ServerReport* report = nullptr) const;

  /// Same, from a PreparedBlock built ahead of time (pipelined serving).
  std::vector<fhe::Ciphertext> transcipher_block(
      std::span<const std::uint64_t> symmetric_ct, const PreparedBlock& prep,
      ServerReport* report = nullptr) const;

  /// Transcipher a multi-block message (block i uses counter i).
  std::vector<fhe::Ciphertext> transcipher(
      std::span<const std::uint64_t> symmetric_ct, std::uint64_t nonce,
      ServerReport* report = nullptr) const;

 private:
  /// Evaluate the keystream circuit on the encrypted key.
  std::vector<fhe::Ciphertext> keystream_circuit(const PreparedBlock& prep,
                                                 ServerReport* report) const;

  const HheConfig& config_;
  const fhe::Bgv& bgv_;
  std::vector<fhe::Ciphertext> key_cts_;
};

}  // namespace poe::hhe
