// Instrumented dry runs of the transcipher servers, producing the
// CircuitProfiles the parameter search replays (fhe/param_search.hpp).
//
// Each recorder builds a throwaway Bgv under the given (known-working,
// normally *_legacy) config, turns on Bgv::begin_recording, runs the real
// server code path end to end, and packages the tape, the output node ids
// and the ExecContext counter delta. The tape is parameter-independent —
// replaying it under candidate BgvParams is how search_params right-sizes
// the chain — so recording under the oversized legacy config is fine.
#pragma once

#include "fhe/param_search.hpp"
#include "hhe/protocol.hpp"

namespace poe::hhe {

/// Coefficient-wise server: encrypt_key + one full transcipher_block
/// (keystream circuit, negate, symmetric add). Outputs = the t message
/// ciphertexts handed back to the client.
fhe::CircuitProfile record_coefficient_profile(const HheConfig& config);

/// Packed SIMD engine at full capacity, in its worst-case serving shape:
/// cross-tenant key merge (mask multiply + add), evaluate over a
/// completely filled batch, then masked tile extraction. Outputs = the
/// extracted per-tenant ciphertexts. Strictly dominates the single-block
/// BatchedHheServer's noise, so one profile covers both batched paths.
fhe::CircuitProfile record_batched_profile(const HheConfig& config);

}  // namespace poe::hhe
