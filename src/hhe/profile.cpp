#include "hhe/profile.hpp"

#include <algorithm>
#include <utility>

#include "fhe/encoding.hpp"
#include "hhe/batched_server.hpp"
#include "hhe/simd_batch.hpp"

namespace poe::hhe {

namespace {
using u64 = std::uint64_t;

// Deterministic nonzero key material mod p (the tape's structure does not
// depend on the values, only the mul_scalar magnitudes do — fixing them
// keeps the recorded profile, and hence the search result, reproducible).
std::vector<u64> profile_key(const pasta::PastaParams& params) {
  std::vector<u64> key(params.key_size());
  u64 x = 0x9e3779b97f4a7c15ull;
  for (auto& k : key) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    k = 1 + (x >> 11) % (params.p - 1);
  }
  return key;
}

}  // namespace

fhe::CircuitProfile record_coefficient_profile(const HheConfig& config) {
  fhe::Bgv bgv(config.bgv);
  HheClient client(config, bgv, profile_key(config.pasta));

  fhe::NoiseTape tape;
  const CounterSnapshot before = bgv.rns().exec().snapshot();
  bgv.begin_recording(&tape);
  HheServer server(config, bgv, client.encrypt_key());
  const std::vector<u64> sym(config.pasta.t, 1);
  const auto outs = server.transcipher_block(sym, /*nonce=*/0, /*counter=*/0);
  bgv.end_recording();

  fhe::CircuitProfile profile;
  profile.name = "hhe/coefficient/" + config.pasta.name;
  profile.tape = tape.nodes();
  for (const auto& ct : outs) profile.outputs.push_back(ct.trace_id);
  profile.ops = bgv.rns().exec().snapshot() - before;
  return profile;
}

fhe::CircuitProfile record_batched_profile(const HheConfig& config) {
  fhe::Bgv bgv(config.bgv);
  const fhe::BatchEncoder encoder(config.bgv.n, config.bgv.t);
  SimdBatchEngine engine(config, bgv);
  const std::size_t capacity = engine.capacity();
  const std::size_t t = config.pasta.t;

  // Two tenants splitting the tile space (one if the ring only fits one
  // block), so the merge's match_levels + add path is on the tape. Tenant B
  // uploads from its OWN BGV domain and is switched on ingest — the
  // noisiest admissible key ciphertext (fresh + one key switch), so the
  // search provisions for ingest-switched tenants too, not just native
  // ones.
  const auto key_a = profile_key(config.pasta);
  auto key_b = key_a;
  std::reverse(key_b.begin(), key_b.end());
  fhe::BgvParams foreign_params = config.bgv;
  foreign_params.seed = config.bgv.seed + 17;
  const fhe::Bgv foreign_bgv(foreign_params);
  std::vector<std::size_t> tiles_a, tiles_b;
  for (std::size_t m = 0; m < capacity; ++m) {
    (m % 2 == 0 ? tiles_a : tiles_b).push_back(m);
  }

  fhe::NoiseTape tape;
  const CounterSnapshot before = bgv.rns().exec().snapshot();
  bgv.begin_recording(&tape);

  const fhe::Ciphertext key_ct_a =
      encrypt_key_batched(config, bgv, encoder, engine.layout(), key_a);
  const fhe::Ciphertext key_ct_b = bgv.ingest_switch(
      encrypt_key_batched(config, foreign_bgv, encoder, engine.layout(),
                          key_b),
      bgv.make_ingest_key(foreign_bgv));
  std::vector<TenantTiles> tenants;
  tenants.push_back({&key_ct_a, tiles_a});
  if (!tiles_b.empty()) tenants.push_back({&key_ct_b, tiles_b});
  const fhe::Ciphertext merged = engine.merge_tenant_keys(tenants);

  std::vector<SimdBlockRequest> requests(capacity);
  for (std::size_t m = 0; m < capacity; ++m) {
    requests[m].nonce = 1;
    requests[m].counter = m;
    requests[m].symmetric_ct.assign(t, 1);
  }
  const PreparedSimdBatch batch = engine.prepare(requests);
  const fhe::Ciphertext out = engine.evaluate(merged, batch);

  fhe::CircuitProfile profile;
  const fhe::Ciphertext extracted_a = engine.extract_tiles(out, tiles_a);
  profile.outputs.push_back(extracted_a.trace_id);
  if (!tiles_b.empty()) {
    const fhe::Ciphertext extracted_b = engine.extract_tiles(out, tiles_b);
    profile.outputs.push_back(extracted_b.trace_id);
  }
  bgv.end_recording();
  profile.ops = bgv.rns().exec().snapshot() - before;

  // Also tape the single-block BatchedHheServer circuit (same ops, subtly
  // different bound trajectory: un-merged key, one fused accumulator). The
  // search then has to satisfy both batched paths, not just the SIMD one.
  {
    fhe::Bgv single(config.bgv);
    single.begin_recording(&tape);
    BatchedHheServer server(
        config, single,
        encrypt_key_batched(config, single, encoder, engine.layout(), key_a));
    const std::vector<u64> sym(t, 1);
    const fhe::Ciphertext block =
        server.transcipher_block(sym, /*nonce=*/1, /*counter=*/0);
    single.end_recording();
    profile.outputs.push_back(block.trace_id);
  }

  profile.name = "hhe/batched/" + config.pasta.name;
  profile.tape = tape.nodes();
  return profile;
}

}  // namespace poe::hhe
