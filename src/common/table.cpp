#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace poe {

TextTable& TextTable::header(std::vector<std::string> columns) {
  header_ = std::move(columns);
  return *this;
}

TextTable& TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
  return *this;
}

TextTable& TextTable::separator() {
  pending_separator_ = true;
  return *this;
}

void TextTable::print(std::ostream& os) const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> width(ncols, 0);
  auto grow = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r.cells);

  auto hline = [&] {
    os << '+';
    for (std::size_t i = 0; i < ncols; ++i)
      os << std::string(width[i] + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << c << std::string(width[i] - c.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  hline();
  if (!header_.empty()) {
    line(header_);
    hline();
  }
  for (const auto& r : rows_) {
    if (r.separator_before) hline();
    line(r.cells);
  }
  hline();
}

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string fixed(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string percent(double fraction, int decimals) {
  return fixed(fraction * 100.0, decimals) + "%";
}

}  // namespace poe
