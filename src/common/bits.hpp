// Small bit-manipulation helpers used across the Keccak core, samplers and
// the hardware model.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>

namespace poe {

/// Rotate a 64-bit word left by n (n in [0,63]).
constexpr std::uint64_t rotl64(std::uint64_t x, unsigned n) {
  return std::rotl(x, static_cast<int>(n));
}

/// Number of bits needed to represent x (bit_width(0) == 0).
constexpr unsigned bit_width_u64(std::uint64_t x) {
  return static_cast<unsigned>(std::bit_width(x));
}

/// ceil(log2(x)) for x >= 1.
constexpr unsigned ceil_log2(std::uint64_t x) {
  return x <= 1 ? 0u : static_cast<unsigned>(std::bit_width(x - 1));
}

/// Integer ceil division.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Load a little-endian 64-bit word from 8 bytes.
constexpr std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t x = 0;
  for (int i = 7; i >= 0; --i) x = (x << 8) | p[i];
  return x;
}

/// Store a 64-bit word as 8 little-endian bytes.
constexpr void store_le64(std::uint8_t* p, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(x & 0xff);
    x >>= 8;
  }
}

/// Store a 64-bit word as 8 big-endian bytes (PASTA seeds nonce/counter
/// big-endian, following the reference implementation).
constexpr void store_be64(std::uint8_t* p, std::uint64_t x) {
  for (int i = 7; i >= 0; --i) {
    p[i] = static_cast<std::uint8_t>(x & 0xff);
    x >>= 8;
  }
}

}  // namespace poe
