#include "common/pool.hpp"

#include <cstring>
#include <new>

#include "common/fault.hpp"

namespace poe {

namespace {
constexpr std::size_t kAlign = 64;  // cache line

std::uint64_t* allocate_slab(std::size_t words) {
  return static_cast<std::uint64_t*>(
      ::operator new(words * sizeof(std::uint64_t), std::align_val_t{kAlign}));
}

void free_slab(std::uint64_t* p) noexcept {
  ::operator delete(p, std::align_val_t{kAlign});
}
}  // namespace

PolyBuffer& PolyBuffer::operator=(PolyBuffer&& o) noexcept {
  if (this != &o) {
    reset();
    pool_ = o.pool_;
    data_ = o.data_;
    words_ = o.words_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
    o.words_ = 0;
  }
  return *this;
}

void PolyBuffer::reset() {
  if (data_ != nullptr) {
    pool_->release(data_, words_);
    pool_ = nullptr;
    data_ = nullptr;
    words_ = 0;
  }
}

BufferPool::~BufferPool() { trim(); }

PolyBuffer BufferPool::acquire(std::size_t words, bool zero) {
#ifndef POE_NO_FAULT_INJECTION
  if (FaultInjector* f = fault_.load(std::memory_order_acquire))
      [[unlikely]] {
    f->visit("pool.acquire");  // simulated allocation failure
  }
#endif
  std::uint64_t* slab = nullptr;
  std::size_t capacity = words;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Smallest cached slab that fits; slabs keep their original capacity as
    // their size class, so a recycled big slab can serve smaller requests.
    auto it = free_.lower_bound(words);
    if (it != free_.end()) {
      slab = it->second.back();
      capacity = it->first;
      it->second.pop_back();
      if (it->second.empty()) free_.erase(it);
    }
  }
  if (slab != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    slab = allocate_slab(words);
    capacity = words;
  }
  const std::uint64_t live =
      outstanding_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (live > peak &&
         !peak_.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
  if (zero) std::memset(slab, 0, words * sizeof(std::uint64_t));
  return PolyBuffer(this, slab, capacity);
}

void BufferPool::release(std::uint64_t* data, std::size_t words) noexcept {
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  try {
    std::lock_guard<std::mutex> lock(mu_);
    free_[words].push_back(data);
  } catch (...) {
    free_slab(data);  // never propagate from a destructor path
  }
}

std::size_t BufferPool::cached_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t bytes = 0;
  for (const auto& [words, slabs] : free_) {
    bytes += words * sizeof(std::uint64_t) * slabs.size();
  }
  return bytes;
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [words, slabs] : free_) {
    for (auto* slab : slabs) free_slab(slab);
  }
  free_.clear();
}

}  // namespace poe
