// Error handling primitives shared by all poe_* libraries.
//
// Library code signals contract violations and unrecoverable configuration
// errors with exceptions (poe::Error). Hot inner loops use POE_DCHECK, which
// compiles away in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace poe {

/// Base exception for all errors raised by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* cond, const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed (" << cond << ')';
  if (!msg.empty()) os << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace poe

/// Always-on invariant check; throws poe::Error on failure.
#define POE_ENSURE(cond, msg)                                  \
  do {                                                         \
    if (!(cond)) {                                             \
      std::ostringstream poe_os_;                              \
      poe_os_ << msg;                                          \
      ::poe::detail::raise(#cond, __FILE__, __LINE__, poe_os_.str()); \
    }                                                          \
  } while (0)

/// Debug-only check for hot paths.
#ifdef NDEBUG
#define POE_DCHECK(cond, msg) ((void)0)
#else
#define POE_DCHECK(cond, msg) POE_ENSURE(cond, msg)
#endif
