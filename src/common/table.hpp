// Plain-text table renderer used by the benchmark harness to print
// paper-vs-measured rows in a shape matching the paper's tables.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace poe {

class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  TextTable& header(std::vector<std::string> columns);
  TextTable& row(std::vector<std::string> cells);
  /// Insert a horizontal separator before the next row.
  TextTable& separator();

  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

/// 1234567 -> "1,234,567".
std::string with_commas(std::uint64_t v);

/// Fixed-point formatting with the given number of decimals.
std::string fixed(double v, int decimals);

/// "12.3%" style formatting.
std::string percent(double fraction, int decimals = 1);

}  // namespace poe
