#include "common/bignum.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace poe {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

void UBig::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

int UBig::cmp(const UBig& o) const {
  if (limbs_.size() != o.limbs_.size())
    return limbs_.size() < o.limbs_.size() ? -1 : 1;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i] ? -1 : 1;
  }
  return 0;
}

UBig& UBig::add(const UBig& o) {
  limbs_.resize(std::max(limbs_.size(), o.limbs_.size()), 0);
  unsigned carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 rhs = i < o.limbs_.size() ? o.limbs_[i] : 0;
    u64 sum = limbs_[i] + rhs;
    unsigned c1 = sum < rhs ? 1u : 0u;
    u64 sum2 = sum + carry;
    unsigned c2 = sum2 < sum ? 1u : 0u;
    limbs_[i] = sum2;
    carry = c1 + c2;
  }
  if (carry) limbs_.push_back(carry);
  return *this;
}

UBig& UBig::sub(const UBig& o) {
  POE_ENSURE(cmp(o) >= 0, "UBig::sub would underflow");
  unsigned borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 rhs = i < o.limbs_.size() ? o.limbs_[i] : 0;
    u64 d = limbs_[i] - rhs;
    unsigned b1 = limbs_[i] < rhs ? 1u : 0u;
    u64 d2 = d - borrow;
    unsigned b2 = d < borrow ? 1u : 0u;
    limbs_[i] = d2;
    borrow = b1 + b2;
  }
  POE_ENSURE(borrow == 0, "UBig::sub borrow out");
  trim();
  return *this;
}

UBig& UBig::mul_u64(u64 m) {
  if (m == 0 || is_zero()) {
    limbs_.clear();
    return *this;
  }
  u64 carry = 0;
  for (auto& limb : limbs_) {
    u128 prod = static_cast<u128>(limb) * m + carry;
    limb = static_cast<u64>(prod);
    carry = static_cast<u64>(prod >> 64);
  }
  if (carry) limbs_.push_back(carry);
  return *this;
}

UBig& UBig::add_u64(u64 v) {
  UBig t(v);
  return add(t);
}

u64 UBig::divmod_u64(u64 d) {
  POE_ENSURE(d != 0, "division by zero");
  u64 rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    u128 cur = (static_cast<u128>(rem) << 64) | limbs_[i];
    limbs_[i] = static_cast<u64>(cur / d);
    rem = static_cast<u64>(cur % d);
  }
  trim();
  return rem;
}

u64 UBig::mod_u64(u64 d) const {
  POE_ENSURE(d != 0, "division by zero");
  u64 rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    u128 cur = (static_cast<u128>(rem) << 64) | limbs_[i];
    rem = static_cast<u64>(cur % d);
  }
  return rem;
}

UBig& UBig::mod_by_subtraction(const UBig& m) {
  POE_ENSURE(!m.is_zero(), "modulus is zero");
  while (cmp(m) >= 0) sub(m);
  return *this;
}

unsigned UBig::bit_length() const {
  if (limbs_.empty()) return 0;
  return static_cast<unsigned>((limbs_.size() - 1) * 64) +
         bit_width_u64(limbs_.back());
}

UBig& UBig::shr1() {
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    limbs_[i] >>= 1;
    if (i + 1 < limbs_.size() && (limbs_[i + 1] & 1))
      limbs_[i] |= (1ull << 63);
  }
  trim();
  return *this;
}

std::string UBig::to_string() const {
  if (is_zero()) return "0";
  UBig tmp = *this;
  std::string out;
  while (!tmp.is_zero()) {
    u64 digit = tmp.divmod_u64(10);
    out.push_back(static_cast<char>('0' + digit));
  }
  std::reverse(out.begin(), out.end());
  return out;
}

UBig UBig::mul(const UBig& a, const UBig& b) {
  if (a.is_zero() || b.is_zero()) return UBig{};
  UBig out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      u128 cur = static_cast<u128>(a.limbs_[i]) * b.limbs_[j] +
                 out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out.limbs_[i + b.limbs_.size()] += carry;
  }
  out.trim();
  return out;
}

UBig UBig::product(const std::vector<u64>& factors) {
  UBig out = UBig::one();
  for (u64 f : factors) out.mul_u64(f);
  return out;
}

}  // namespace poe
