// Deterministic fault injection for chaos testing the serving stack.
//
// A FaultInjector holds a seeded schedule of site-addressable faults: each
// FaultSpec names an instrumented code location ("service.prepare",
// "pool.acquire", ...), a fault class (throw, allocation failure, stalled
// stage, corrupted ciphertext words, forced saturation/truncation) and the
// arrival window in which it fires. Instrumented code consults the injector
// through the free helpers in exec_context.hpp, which reduce to a single
// relaxed null-pointer load when nothing is armed — and compile away
// entirely under POE_NO_FAULT_INJECTION. Arrival counters are per site, so
// a schedule is reproducible from its seed alone as long as each site is
// visited from one thread (the only multi-thread site, pool.acquire, is
// exercised by the invariant-based chaos sweep, not by exact-outcome tests).
//
// Naming convention for sites: <layer>.<point>[.<aspect>], e.g.
//   pool.acquire            allocation of a polynomial slab
//   fhe.hoist.scratch.alloc_fail  lease of a hoisted-rotation scratch pair
//   service.prepare         the service's batch-preparation stage
//   service.prepare.stall   virtual-time stall charged to that stage
//   service.evaluate        the BGV evaluation stage
//   service.evaluate.stall
//   service.queue.full      forced pipeline-queue saturation
//   service.key.corrupt     corruption of a session's key ciphertext words
//   service.wire.truncate   truncation of key-upload wire bytes
//   net.frame.torn          (kForce) a peer dies mid-write: half a frame is
//                           sent and the connection is wrecked
//   net.peer.stall          (kStall) virtual peer slowness charged at frame
//                           receive; shards echo it so the router's
//                           slow-peer timeout runs on virtual time
//   shard.kill              (kForce) a worker-shard process dies between
//                           receiving a request and responding; its session
//                           partition is lost and must rebalance
// docs/TESTING.md lists the armed sites and how to replay a failed seed.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace poe {

enum class FaultClass : std::uint8_t {
  kThrow = 0,   ///< the site throws FaultInjectedError
  kAllocFail,   ///< allocation site throws (same mechanics, own accounting)
  kStall,       ///< charge `arg_ms` of virtual stage time (bounded real sleep)
  kCorrupt,     ///< mangle words presented at the site
  kForce,       ///< boolean site (queue saturation, wire truncation) reports true
};

const char* to_string(FaultClass c);

/// One armed fault: fire at site `site` on arrival indices
/// [after, after + count), with `arg` as the class-specific parameter
/// (milliseconds to charge for kStall, words to mangle for kCorrupt).
struct FaultSpec {
  std::string site;
  FaultClass kind = FaultClass::kThrow;
  std::uint64_t after = 0;
  std::uint64_t count = 1;
  std::uint64_t arg = 0;
};

/// Thrown by armed kThrow/kAllocFail sites; derived from poe::Error so the
/// service's retry machinery treats injected and organic failures alike.
class FaultInjectedError : public Error {
 public:
  using Error::Error;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0) : rng_(seed), seed_(seed) {}

  void arm(FaultSpec spec);
  std::uint64_t seed() const { return seed_; }

  /// A deterministic schedule of `n` faults drawn from `seed` over the given
  /// site menu. Arrival indices are kept small (< 8) so every fault lands
  /// inside a short workload; stall charges are sized to trip a ~2 s stage
  /// timeout.
  struct MenuEntry {
    std::string_view site;
    FaultClass kind;
  };
  static std::vector<FaultSpec> random_schedule(
      std::uint64_t seed, std::span<const MenuEntry> menu, std::size_t n);

  // --- Hooks called by instrumented code (via exec_context.hpp helpers). --
  /// kThrow/kAllocFail sites: counts the arrival, throws when armed.
  void visit(std::string_view site);
  /// kStall sites: seconds of virtual stage time to charge (0 when idle).
  /// Sleeps a bounded real slice (<= 50 ms) so thread interleavings are
  /// genuinely perturbed without making chaos runs wall-clock slow.
  double stall_s(std::string_view site);
  /// kForce sites: true when the armed fault fires on this arrival.
  bool forced(std::string_view site);
  /// kCorrupt sites: mangles up to `arg` words (seeded, with the top bit set
  /// so structural validation is guaranteed to notice). Returns true when it
  /// corrupted anything.
  bool corrupt(std::string_view site, std::span<std::uint64_t> words);

  // --- Accounting. --------------------------------------------------------
  std::uint64_t fired(FaultClass c) const;
  std::uint64_t fired_total() const;
  std::uint64_t arrivals(std::string_view site) const;
  /// site -> times a fault actually fired there.
  std::map<std::string, std::uint64_t> fired_by_site() const;

 private:
  struct SiteState {
    std::uint64_t arrivals = 0;
    std::uint64_t fired = 0;
    std::vector<FaultSpec> armed;
  };

  /// Counts the arrival and returns the armed spec of one of the accepted
  /// classes firing on it (nullptr when none). Caller holds mu_.
  const FaultSpec* step(std::string_view site,
                        std::initializer_list<FaultClass> kinds);

  mutable std::mutex mu_;
  std::map<std::string, SiteState, std::less<>> sites_;
  std::uint64_t fired_by_class_[5] = {0, 0, 0, 0, 0};
  Xoshiro256 rng_;
  std::uint64_t seed_ = 0;
};

}  // namespace poe
