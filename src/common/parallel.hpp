// Data-parallel helper: run f(i) for i in [0, count) across the persistent
// worker threads of the global ThreadPool (see thread_pool.hpp). Used by the
// HHE servers, whose per-element homomorphic operations are independent (the
// Bgv evaluator's const methods only read shared key material).
// Deterministic: each index writes its own slot.
//
// Exception semantics: the first exception thrown by f is rethrown to the
// caller; once a failure has been observed no NEW f(i) invocation begins
// (the cancellation flag is checked before every call), while invocations
// already in flight on other workers run to completion.
//
// Thread count: POE_THREADS when set (0 or unset = hardware_concurrency);
// POE_THREADS=1 forces serial execution.
#pragma once

#include "common/thread_pool.hpp"  // IWYU pragma: export (parallel_for)
