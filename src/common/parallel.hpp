// Minimal data-parallel helper: run f(i) for i in [0, count) across a few
// worker threads. Used by the HHE server, whose per-element homomorphic
// operations are independent (the Bgv evaluator's const methods only read
// shared key material). Deterministic: each index writes its own slot.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace poe {

template <typename Fn>
void parallel_for(std::size_t count, Fn&& f, unsigned max_threads = 0) {
  if (count == 0) return;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  const unsigned threads = static_cast<unsigned>(
      std::min<std::size_t>(count, max_threads == 0 ? hw : max_threads));
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) f(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::atomic<bool> failed{false};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count || failed.load()) return;
      try {
        f(i);
      } catch (...) {
        if (!failed.exchange(true)) error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (failed.load() && error) std::rethrow_exception(error);
}

}  // namespace poe
