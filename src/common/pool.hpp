// Recyclable flat-buffer arena for RNS polynomial storage.
//
// Every RnsPoly in the FHE layer is one contiguous slab of uint64_t words
// (level * n coefficients); the hot homomorphic path (key switching,
// tensoring, rotations) churns through dozens of such temporaries per
// operation. BufferPool keeps returned slabs in per-size-class free lists so
// a warmed-up circuit evaluation runs allocation-free — the software
// analogue of the fixed on-chip buffer organisation the accelerator
// literature (Presto, Medha) relies on for throughput.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace poe {

class BufferPool;
class FaultInjector;

/// Move-only RAII handle to a 64-byte-aligned uint64_t slab drawn from a
/// BufferPool. Returns its storage to the owning pool on destruction, so a
/// slab's lifetime tracks the polynomial that holds it.
class PolyBuffer {
 public:
  PolyBuffer() = default;
  PolyBuffer(PolyBuffer&& o) noexcept
      : pool_(o.pool_), data_(o.data_), words_(o.words_) {
    o.pool_ = nullptr;
    o.data_ = nullptr;
    o.words_ = 0;
  }
  PolyBuffer& operator=(PolyBuffer&& o) noexcept;
  PolyBuffer(const PolyBuffer&) = delete;
  PolyBuffer& operator=(const PolyBuffer&) = delete;
  ~PolyBuffer() { reset(); }

  std::uint64_t* data() { return data_; }
  const std::uint64_t* data() const { return data_; }
  /// Capacity in words — the slab's size class, not the caller's request.
  std::size_t size() const { return words_; }
  bool empty() const { return data_ == nullptr; }

  /// Return the slab to the pool immediately (no-op when empty).
  void reset();

 private:
  friend class BufferPool;
  PolyBuffer(BufferPool* pool, std::uint64_t* data, std::size_t words)
      : pool_(pool), data_(data), words_(words) {}

  BufferPool* pool_ = nullptr;
  std::uint64_t* data_ = nullptr;
  std::size_t words_ = 0;
};

/// Thread-safe pool of cache-aligned slabs keyed by word count. Acquire
/// prefers the smallest cached slab that fits (size classes are n * level
/// multiples in practice, so a slab freed at one level serves any smaller
/// request). Hit/miss counters expose the allocation discipline to benches
/// and tests.
class BufferPool {
 public:
  BufferPool() = default;
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Hand out a slab of at least `words` words. `zero` clears the first
  /// `words` words (recycled slabs hold stale coefficients).
  PolyBuffer acquire(std::size_t words, bool zero = true);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Slabs currently lent out (live polynomials).
  std::uint64_t outstanding() const {
    return outstanding_.load(std::memory_order_relaxed);
  }
  /// High-water mark of outstanding slabs over the pool's lifetime. A
  /// warmed-up serving loop must leave this flat: any rise means a new slab
  /// joined the working set (the allocation regression tests pin it).
  std::uint64_t peak_outstanding() const {
    return peak_.load(std::memory_order_relaxed);
  }
  /// Bytes parked in the free lists.
  std::size_t cached_bytes() const;

  /// Free every cached slab (outstanding slabs are unaffected).
  void trim();

  /// Chaos testing: acquire() consults the injector's "pool.acquire" site
  /// and throws FaultInjectedError when an allocation-failure fault fires.
  /// Wired by ExecContext::set_fault_injector; nullptr (the default) keeps
  /// the check to a single relaxed pointer load.
  void set_fault_injector(FaultInjector* f) {
    fault_.store(f, std::memory_order_release);
  }

 private:
  friend class PolyBuffer;
  void release(std::uint64_t* data, std::size_t words) noexcept;

  std::atomic<FaultInjector*> fault_{nullptr};
  mutable std::mutex mu_;
  std::map<std::size_t, std::vector<std::uint64_t*>> free_;  // by word count
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<std::uint64_t> peak_{0};
};

}  // namespace poe
