#include "common/fault.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

namespace poe {

namespace {
// Real sleep cap for kStall: long enough to shuffle thread interleavings,
// short enough that a chaos sweep stays fast. The full arg_ms is charged as
// virtual stage time regardless (see TranscipherService's stage runner).
constexpr std::uint64_t kMaxRealStallMs = 50;
}  // namespace

const char* to_string(FaultClass c) {
  switch (c) {
    case FaultClass::kThrow: return "throw";
    case FaultClass::kAllocFail: return "alloc_fail";
    case FaultClass::kStall: return "stall";
    case FaultClass::kCorrupt: return "corrupt";
    case FaultClass::kForce: return "force";
  }
  return "?";
}

void FaultInjector::arm(FaultSpec spec) {
  POE_ENSURE(!spec.site.empty(), "fault site must be named");
  POE_ENSURE(spec.count >= 1, "fault count must be >= 1");
  std::lock_guard lock(mu_);
  sites_[spec.site].armed.push_back(std::move(spec));
}

const FaultSpec* FaultInjector::step(std::string_view site,
                                     std::initializer_list<FaultClass> kinds) {
  // Arrivals are counted even at unarmed sites so schedules composed later
  // can target "the k-th arrival" meaningfully.
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(site), SiteState{}).first;
  }
  SiteState& state = it->second;
  const std::uint64_t index = state.arrivals++;
  for (const FaultSpec& spec : state.armed) {
    if (std::find(kinds.begin(), kinds.end(), spec.kind) == kinds.end()) {
      continue;
    }
    if (index >= spec.after && index < spec.after + spec.count) {
      ++state.fired;
      ++fired_by_class_[static_cast<std::size_t>(spec.kind)];
      return &spec;
    }
  }
  return nullptr;
}

void FaultInjector::visit(std::string_view site) {
  const FaultSpec* spec = nullptr;
  {
    std::lock_guard lock(mu_);
    spec = step(site, {FaultClass::kThrow, FaultClass::kAllocFail});
  }
  if (spec != nullptr) {
    std::ostringstream os;
    os << "injected " << to_string(spec->kind) << " fault at " << site;
    throw FaultInjectedError(os.str());
  }
}

double FaultInjector::stall_s(std::string_view site) {
  std::uint64_t charge_ms = 0;
  {
    std::lock_guard lock(mu_);
    if (const FaultSpec* spec = step(site, {FaultClass::kStall})) {
      charge_ms = spec->arg;
    }
  }
  if (charge_ms == 0) return 0;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(std::min(charge_ms, kMaxRealStallMs)));
  return static_cast<double>(charge_ms) / 1000.0;
}

bool FaultInjector::forced(std::string_view site) {
  std::lock_guard lock(mu_);
  return step(site, {FaultClass::kForce}) != nullptr;
}

bool FaultInjector::corrupt(std::string_view site,
                            std::span<std::uint64_t> words) {
  std::lock_guard lock(mu_);
  const FaultSpec* spec = step(site, {FaultClass::kCorrupt});
  if (spec == nullptr || words.empty()) return spec != nullptr;
  const std::uint64_t n = std::max<std::uint64_t>(1, spec->arg);
  for (std::uint64_t i = 0; i < n; ++i) {
    // Seeded positions; the top bit guarantees the word leaves the RNS
    // coefficient range of every supported prime (q < 2^62), so the
    // decrypt-free plausibility check is certain to flag it.
    words[rng_.below(words.size())] =
        rng_.next() | (std::uint64_t{1} << 63);
  }
  return true;
}

std::uint64_t FaultInjector::fired(FaultClass c) const {
  std::lock_guard lock(mu_);
  return fired_by_class_[static_cast<std::size_t>(c)];
}

std::uint64_t FaultInjector::fired_total() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const std::uint64_t f : fired_by_class_) total += f;
  return total;
}

std::uint64_t FaultInjector::arrivals(std::string_view site) const {
  std::lock_guard lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.arrivals;
}

std::map<std::string, std::uint64_t> FaultInjector::fired_by_site() const {
  std::lock_guard lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [site, state] : sites_) {
    if (state.fired > 0) out[site] = state.fired;
  }
  return out;
}

std::vector<FaultSpec> FaultInjector::random_schedule(
    std::uint64_t seed, std::span<const MenuEntry> menu, std::size_t n) {
  POE_ENSURE(!menu.empty(), "empty fault menu");
  Xoshiro256 rng(seed);
  std::vector<FaultSpec> schedule;
  schedule.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const MenuEntry& entry = menu[rng.below(menu.size())];
    FaultSpec spec;
    spec.site = std::string(entry.site);
    spec.kind = entry.kind;
    spec.after = rng.below(8);
    spec.count = 1 + rng.below(2);
    switch (entry.kind) {
      case FaultClass::kStall:
        spec.arg = 2500 + rng.below(2000);  // ms; trips a ~2 s stage timeout
        break;
      case FaultClass::kCorrupt:
        spec.arg = 1 + rng.below(4);  // words to mangle
        break;
      default:
        spec.arg = 0;
    }
    schedule.push_back(std::move(spec));
  }
  return schedule;
}

}  // namespace poe
