// Long-lived worker threads behind parallel_for.
//
// The HHE servers issue a data-parallel loop per cipher round; spawning and
// joining OS threads per call costs more than the loop body for the small
// per-round batches. ThreadPool keeps the workers alive across calls: a run()
// posts one job (an index range plus a type-erased body), the calling thread
// participates as one executor, and the workers go back to sleep afterwards.
//
// Worker count: POE_THREADS environment variable when set (0 or unset means
// hardware_concurrency), read once at first use. POE_THREADS=1 forces the
// serial path — useful for reproducible benches on small CI runners.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace poe {

class ThreadPool {
 public:
  /// Type-erased loop body: fn(ctx, index).
  using IndexFn = void (*)(void*, std::size_t);

  /// `workers` owned threads (the caller of run() is an extra executor).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool with default_parallelism() - 1 workers.
  static ThreadPool& global();

  /// Total executors to use by default: POE_THREADS if set and nonzero,
  /// otherwise hardware_concurrency (minimum 1).
  static unsigned default_parallelism();
  /// Parse a POE_THREADS-style value (nullptr/empty/"0" -> hardware).
  /// Exposed for tests.
  static unsigned parse_threads_env(const char* value);

  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  /// Run fn(ctx, i) for every i in [0, count). Up to `max_threads` executors
  /// (0 = workers + caller); the calling thread always participates.
  ///
  /// Exception semantics: the first exception thrown by the body is
  /// rethrown to the caller. Once a failure has been observed, no NEW
  /// invocation of the body begins (the cancellation flag is checked before
  /// every call); invocations already in flight on other executors run to
  /// completion. Nested run() calls from inside a pool worker execute
  /// serially inline to avoid deadlock.
  void run(std::size_t count, void* ctx, IndexFn fn, unsigned max_threads = 0);

 private:
  void worker_main();
  /// Claim-and-execute loop shared by workers and the calling thread;
  /// checks the cancellation flag before invoking the body.
  void execute_indices(std::size_t count, void* ctx, IndexFn fn);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a job
  std::condition_variable done_cv_;  // run() waits for joined workers
  bool stop_ = false;
  // Current job, all guarded by mu_ (the index counter and failure flag are
  // atomics shared with the lock-free claim loop).
  std::uint64_t job_id_ = 0;
  std::size_t job_count_ = 0;
  void* job_ctx_ = nullptr;
  IndexFn job_fn_ = nullptr;
  unsigned job_limit_ = 0;    // workers still allowed to join
  unsigned job_running_ = 0;  // workers currently executing the job
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;

  std::mutex run_mu_;  // serialises concurrent top-level run() calls
};

/// Minimal data-parallel helper: run f(i) for i in [0, count) on the global
/// ThreadPool. Deterministic: each index writes its own slot. See
/// ThreadPool::run for the exception/cancellation semantics.
template <typename Fn>
void parallel_for(std::size_t count, Fn&& f, unsigned max_threads = 0) {
  using Body = std::remove_reference_t<Fn>;
  ThreadPool::global().run(
      count, const_cast<Body*>(std::addressof(f)),
      [](void* ctx, std::size_t i) { (*static_cast<Body*>(ctx))(i); },
      max_threads);
}

}  // namespace poe
