#include "common/exec_context.hpp"

namespace poe {

ExecContext& ExecContext::global() {
  // Function-local static: constructed on first use (before any static
  // object that allocates polynomials), destroyed after them, so slabs can
  // always find their way home.
  static ExecContext ctx;
  return ctx;
}

}  // namespace poe
