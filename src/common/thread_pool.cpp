#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace poe {

namespace {
// Set while a pool worker executes job indices, so nested parallel loops
// fall back to the serial path instead of deadlocking on the pool.
thread_local bool t_in_pool_worker = false;

void run_serial(std::size_t count, void* ctx, ThreadPool::IndexFn fn) {
  // An exception stops the loop; remaining indices never start (matching
  // the documented cancellation semantics).
  for (std::size_t i = 0; i < count; ++i) fn(ctx, i);
}
}  // namespace

unsigned ThreadPool::parse_threads_env(const char* value) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (value == nullptr || *value == '\0') return hw;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 0) return hw;
  return parsed == 0 ? hw : static_cast<unsigned>(parsed);
}

unsigned ThreadPool::default_parallelism() {
  static const unsigned cached = parse_threads_env(std::getenv("POE_THREADS"));
  return cached;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_parallelism() - 1);
  return pool;
}

ThreadPool::ThreadPool(unsigned workers) {
  threads_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& th : threads_) th.join();
}

void ThreadPool::execute_indices(std::size_t count, void* ctx, IndexFn fn) {
  for (;;) {
    // Cancellation check BEFORE claiming and invoking: once a failure has
    // been observed, no new body invocation begins.
    if (failed_.load(std::memory_order_acquire)) return;
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    if (failed_.load(std::memory_order_acquire)) return;
    try {
      fn(ctx, i);
    } catch (...) {
      if (!failed_.exchange(true, std::memory_order_acq_rel)) {
        error_ = std::current_exception();
      }
      return;
    }
  }
}

void ThreadPool::worker_main() {
  t_in_pool_worker = true;
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (job_id_ != seen && job_limit_ > 0);
    });
    if (stop_) return;
    seen = job_id_;
    --job_limit_;
    ++job_running_;
    const std::size_t count = job_count_;
    void* ctx = job_ctx_;
    const IndexFn fn = job_fn_;
    lock.unlock();
    execute_indices(count, ctx, fn);
    lock.lock();
    if (--job_running_ == 0) done_cv_.notify_one();
  }
}

void ThreadPool::run(std::size_t count, void* ctx, IndexFn fn,
                     unsigned max_threads) {
  if (count == 0) return;
  const unsigned executors = static_cast<unsigned>(std::min<std::size_t>(
      count, max_threads == 0 ? workers() + 1 : max_threads));
  if (executors <= 1 || workers() == 0 || t_in_pool_worker) {
    run_serial(count, ctx, fn);
    return;
  }

  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    job_count_ = count;
    job_ctx_ = ctx;
    job_fn_ = fn;
    job_limit_ = executors - 1;  // the caller is the remaining executor
    job_running_ = 0;
    ++job_id_;
  }
  work_cv_.notify_all();
  execute_indices(count, ctx, fn);
  {
    std::unique_lock<std::mutex> lock(mu_);
    job_limit_ = 0;  // close the job: late wakers must not join it
    done_cv_.wait(lock, [&] { return job_running_ == 0; });
  }
  if (failed_.load(std::memory_order_acquire) && error_) {
    std::rethrow_exception(error_);
  }
}

}  // namespace poe
