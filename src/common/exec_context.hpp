// Shared execution resources for the FHE/HHE hot path.
//
// ExecContext bundles the three things every layer of the homomorphic stack
// needs but none should own privately:
//   * a BufferPool — recyclable flat slabs backing every RnsPoly, so a
//     warmed-up circuit evaluation is allocation-free,
//   * the persistent ThreadPool behind parallel_for,
//   * atomic operation counters (NTTs, ct-ct multiplications, key switches,
//     modulus switches, batch encodes) that, together with the pool's
//     hit/miss counters, make every performance PR measurable.
//
// RnsContext (and therefore Bgv, the HHE servers, and poe::Accelerator)
// holds a pointer to an ExecContext; the process-wide ExecContext::global()
// is the default, and tests/benches snapshot its counters for deltas.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/pool.hpp"
#include "common/thread_pool.hpp"

namespace poe {

/// Plain-value snapshot of an ExecContext's counters; subtract two to get
/// the cost of a code region.
struct CounterSnapshot {
  std::uint64_t ntt_forward = 0;
  std::uint64_t ntt_inverse = 0;
  std::uint64_t ct_ct_mul = 0;
  std::uint64_t key_switch = 0;
  std::uint64_t mod_switch = 0;
  std::uint64_t encode = 0;
  std::uint64_t automorphisms = 0;
  std::uint64_t hoisted_rotations = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;

  CounterSnapshot operator-(const CounterSnapshot& o) const {
    return CounterSnapshot{ntt_forward - o.ntt_forward,
                           ntt_inverse - o.ntt_inverse,
                           ct_ct_mul - o.ct_ct_mul,
                           key_switch - o.key_switch,
                           mod_switch - o.mod_switch,
                           encode - o.encode,
                           automorphisms - o.automorphisms,
                           hoisted_rotations - o.hoisted_rotations,
                           pool_hits - o.pool_hits,
                           pool_misses - o.pool_misses};
  }

  std::uint64_t ntts() const { return ntt_forward + ntt_inverse; }
  /// Fraction of slab requests served from the pool's free lists.
  double pool_hit_rate() const {
    const std::uint64_t total = pool_hits + pool_misses;
    return total == 0 ? 1.0 : static_cast<double>(pool_hits) / total;
  }
};

/// Atomic operation counters. Increments use relaxed ordering — they are
/// statistics, not synchronisation.
struct OpCounters {
  std::atomic<std::uint64_t> ntt_forward{0};  ///< per RNS component
  std::atomic<std::uint64_t> ntt_inverse{0};
  std::atomic<std::uint64_t> ct_ct_mul{0};   ///< tensor products
  std::atomic<std::uint64_t> key_switch{0};  ///< relin + Galois switches
  std::atomic<std::uint64_t> mod_switch{0};  ///< per ciphertext
  std::atomic<std::uint64_t> encode{0};      ///< batch encodes/decodes
  std::atomic<std::uint64_t> automorphism{0};       ///< Galois applications
  std::atomic<std::uint64_t> hoisted_rotation{0};   ///< rotations served from
                                                    ///< a shared decomposition

  void bump(std::atomic<std::uint64_t>& c, std::uint64_t by = 1) {
    c.fetch_add(by, std::memory_order_relaxed);
  }
};

class ExecContext {
 public:
  /// Owns a fresh BufferPool and counters; runs loops on `threads`
  /// (defaults to the process-wide pool — worker threads are expensive,
  /// slabs are not).
  explicit ExecContext(ThreadPool* threads = nullptr)
      : threads_(threads != nullptr ? threads : &ThreadPool::global()) {}
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Process-wide default context (what RnsContext uses unless told
  /// otherwise).
  static ExecContext& global();

  BufferPool& pool() { return pool_; }
  const BufferPool& pool() const { return pool_; }
  ThreadPool& threads() { return *threads_; }
  OpCounters& counters() { return counters_; }

  CounterSnapshot snapshot() const {
    CounterSnapshot s;
    s.ntt_forward = counters_.ntt_forward.load(std::memory_order_relaxed);
    s.ntt_inverse = counters_.ntt_inverse.load(std::memory_order_relaxed);
    s.ct_ct_mul = counters_.ct_ct_mul.load(std::memory_order_relaxed);
    s.key_switch = counters_.key_switch.load(std::memory_order_relaxed);
    s.mod_switch = counters_.mod_switch.load(std::memory_order_relaxed);
    s.encode = counters_.encode.load(std::memory_order_relaxed);
    s.automorphisms =
        counters_.automorphism.load(std::memory_order_relaxed);
    s.hoisted_rotations =
        counters_.hoisted_rotation.load(std::memory_order_relaxed);
    s.pool_hits = pool_.hits();
    s.pool_misses = pool_.misses();
    return s;
  }

 private:
  BufferPool pool_;
  ThreadPool* threads_;
  mutable OpCounters counters_;
};

}  // namespace poe
