// Shared execution resources for the FHE/HHE hot path.
//
// ExecContext bundles the three things every layer of the homomorphic stack
// needs but none should own privately:
//   * a BufferPool — recyclable flat slabs backing every RnsPoly, so a
//     warmed-up circuit evaluation is allocation-free,
//   * the persistent ThreadPool behind parallel_for,
//   * atomic operation counters (NTTs, ct-ct multiplications, key switches,
//     modulus switches, batch encodes) that, together with the pool's
//     hit/miss counters, make every performance PR measurable.
//
// RnsContext (and therefore Bgv, the HHE servers, and poe::Accelerator)
// holds a pointer to an ExecContext; the process-wide ExecContext::global()
// is the default, and tests/benches snapshot its counters for deltas.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string_view>

#include "common/fault.hpp"
#include "common/pool.hpp"
#include "common/thread_pool.hpp"
#include "kernels/backend.hpp"

namespace poe {

/// Plain-value snapshot of an ExecContext's counters; subtract two to get
/// the cost of a code region.
struct CounterSnapshot {
  std::uint64_t ntt_forward = 0;
  std::uint64_t ntt_inverse = 0;
  std::uint64_t ct_ct_mul = 0;
  std::uint64_t key_switch = 0;
  std::uint64_t mod_switch = 0;
  std::uint64_t encode = 0;
  std::uint64_t automorphisms = 0;
  std::uint64_t hoisted_rotations = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t bytes_copied = 0;

  CounterSnapshot operator-(const CounterSnapshot& o) const {
    return CounterSnapshot{ntt_forward - o.ntt_forward,
                           ntt_inverse - o.ntt_inverse,
                           ct_ct_mul - o.ct_ct_mul,
                           key_switch - o.key_switch,
                           mod_switch - o.mod_switch,
                           encode - o.encode,
                           automorphisms - o.automorphisms,
                           hoisted_rotations - o.hoisted_rotations,
                           pool_hits - o.pool_hits,
                           pool_misses - o.pool_misses,
                           bytes_copied - o.bytes_copied};
  }

  std::uint64_t ntts() const { return ntt_forward + ntt_inverse; }
  /// Fraction of slab requests served from the pool's free lists.
  double pool_hit_rate() const {
    const std::uint64_t total = pool_hits + pool_misses;
    return total == 0 ? 1.0 : static_cast<double>(pool_hits) / total;
  }
};

/// Atomic operation counters. Increments use relaxed ordering — they are
/// statistics, not synchronisation.
struct OpCounters {
  std::atomic<std::uint64_t> ntt_forward{0};  ///< per RNS component
  std::atomic<std::uint64_t> ntt_inverse{0};
  std::atomic<std::uint64_t> ct_ct_mul{0};   ///< tensor products
  std::atomic<std::uint64_t> key_switch{0};  ///< relin + Galois switches
  std::atomic<std::uint64_t> mod_switch{0};  ///< per ciphertext
  std::atomic<std::uint64_t> encode{0};      ///< batch encodes/decodes
  std::atomic<std::uint64_t> automorphism{0};       ///< Galois applications
  std::atomic<std::uint64_t> hoisted_rotation{0};   ///< rotations served from
                                                    ///< a shared decomposition
  std::atomic<std::uint64_t> bytes_copied{0};  ///< whole-poly copy traffic
                                               ///< (RnsPoly copy ctor/assign)

  void bump(std::atomic<std::uint64_t>& c, std::uint64_t by = 1) {
    c.fetch_add(by, std::memory_order_relaxed);
  }
};

class ExecContext {
 public:
  /// Owns a fresh BufferPool and counters; runs loops on `threads`
  /// (defaults to the process-wide pool — worker threads are expensive,
  /// slabs are not). Kernel dispatch happens here, once: `backend` pins a
  /// specific kernel backend (tests use this to compare implementations);
  /// nullptr reads POE_KERNEL_BACKEND / probes CPUID via
  /// kernels::select_backend().
  explicit ExecContext(ThreadPool* threads = nullptr,
                       const kernels::Backend* backend = nullptr)
      : threads_(threads != nullptr ? threads : &ThreadPool::global()),
        kernels_(backend != nullptr ? backend : &kernels::select_backend()) {}
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Process-wide default context (what RnsContext uses unless told
  /// otherwise).
  static ExecContext& global();

  BufferPool& pool() { return pool_; }
  const BufferPool& pool() const { return pool_; }
  ThreadPool& threads() { return *threads_; }
  OpCounters& counters() { return counters_; }

  /// The kernel backend every hot loop under this context runs on.
  const kernels::Backend& kernels() const { return *kernels_; }
  /// Convenience for reports/benches: "scalar", "avx2", "avx512".
  std::string_view kernel_backend_name() const { return kernels_->name(); }

  /// Register (or clear, with nullptr) a chaos-test fault injector. The
  /// injector is also handed to the pool so allocation sites can fail.
  /// Unarmed (the default), every fault point reduces to one relaxed
  /// null-pointer load — see the free helpers below.
  void set_fault_injector(FaultInjector* f) {
    fault_.store(f, std::memory_order_release);
    pool_.set_fault_injector(f);
  }
  FaultInjector* fault_injector() const {
    return fault_.load(std::memory_order_acquire);
  }

  CounterSnapshot snapshot() const {
    CounterSnapshot s;
    s.ntt_forward = counters_.ntt_forward.load(std::memory_order_relaxed);
    s.ntt_inverse = counters_.ntt_inverse.load(std::memory_order_relaxed);
    s.ct_ct_mul = counters_.ct_ct_mul.load(std::memory_order_relaxed);
    s.key_switch = counters_.key_switch.load(std::memory_order_relaxed);
    s.mod_switch = counters_.mod_switch.load(std::memory_order_relaxed);
    s.encode = counters_.encode.load(std::memory_order_relaxed);
    s.automorphisms =
        counters_.automorphism.load(std::memory_order_relaxed);
    s.hoisted_rotations =
        counters_.hoisted_rotation.load(std::memory_order_relaxed);
    s.pool_hits = pool_.hits();
    s.pool_misses = pool_.misses();
    s.bytes_copied = counters_.bytes_copied.load(std::memory_order_relaxed);
    return s;
  }

 private:
  BufferPool pool_;
  ThreadPool* threads_;
  const kernels::Backend* kernels_;
  mutable OpCounters counters_;
  std::atomic<FaultInjector*> fault_{nullptr};
};

// --- Fault-point helpers -----------------------------------------------
// The instrumentation the serving stack sprinkles through its hot path.
// Unarmed they cost one predictable-branch pointer load; defining
// POE_NO_FAULT_INJECTION (CMake -DPOE_FAULT_INJECTION=OFF) compiles them
// out entirely.

#ifdef POE_NO_FAULT_INJECTION

inline void fault_point(const ExecContext&, std::string_view) {}
inline double fault_stall_s(const ExecContext&, std::string_view) {
  return 0;
}
inline bool fault_forced(const ExecContext&, std::string_view) {
  return false;
}
inline bool fault_corrupt(const ExecContext&, std::string_view,
                          std::span<std::uint64_t>) {
  return false;
}

#else

/// Throws FaultInjectedError when a kThrow/kAllocFail fault is armed here.
inline void fault_point(const ExecContext& exec, std::string_view site) {
  if (FaultInjector* f = exec.fault_injector()) [[unlikely]] {
    f->visit(site);
  }
}

/// Seconds of injected virtual stall to charge to the current stage.
inline double fault_stall_s(const ExecContext& exec, std::string_view site) {
  if (FaultInjector* f = exec.fault_injector()) [[unlikely]] {
    return f->stall_s(site);
  }
  return 0;
}

/// True when a kForce fault (saturation/truncation) fires here.
inline bool fault_forced(const ExecContext& exec, std::string_view site) {
  if (FaultInjector* f = exec.fault_injector()) [[unlikely]] {
    return f->forced(site);
  }
  return false;
}

/// Mangles words when a kCorrupt fault fires here; returns true if it did.
inline bool fault_corrupt(const ExecContext& exec, std::string_view site,
                          std::span<std::uint64_t> words) {
  if (FaultInjector* f = exec.fault_injector()) [[unlikely]] {
    return f->corrupt(site, words);
  }
  return false;
}

#endif  // POE_NO_FAULT_INJECTION

}  // namespace poe
