// Deterministic, fast pseudo-random generator for tests, workload
// generation and key sampling in examples. Not used for any cryptographic
// sampling inside the PASTA cipher itself (that uses SHAKE128).
#pragma once

#include <cstdint>

#include "common/bits.hpp"

namespace poe {

/// xoshiro256** by Blackman & Vigna — tiny, fast, reproducible.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& si : s_) {
      z += 0x9E3779B97F4A7C15ull;
      std::uint64_t w = z;
      w = (w ^ (w >> 30)) * 0xBF58476D1CE4E5B9ull;
      w = (w ^ (w >> 27)) * 0x94D049BB133111EBull;
      si = w ^ (w >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl64(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl64(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound) via rejection-free multiply-shift
  /// (negligible bias for bound << 2^64; fine for test data).
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace poe
