// Minimal arbitrary-precision *unsigned* integer used only on cold paths of
// the FHE substrate: CRT reconstruction during BGV decryption and noise
// measurement, and setup-time constants. All operations are O(#limbs) or
// O(#limbs^2); none sit on a per-ciphertext-coefficient hot loop except the
// linear-time ones (mul_u64 / add / conditional subtract / mod_u64).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace poe {

class UBig {
 public:
  UBig() = default;
  explicit UBig(std::uint64_t v) {
    if (v != 0) limbs_.push_back(v);
  }

  static UBig one() { return UBig(1); }

  bool is_zero() const { return limbs_.empty(); }

  /// -1 / 0 / +1 comparison.
  int cmp(const UBig& o) const;

  bool operator==(const UBig& o) const { return cmp(o) == 0; }
  bool operator<(const UBig& o) const { return cmp(o) < 0; }
  bool operator<=(const UBig& o) const { return cmp(o) <= 0; }
  bool operator>(const UBig& o) const { return cmp(o) > 0; }
  bool operator>=(const UBig& o) const { return cmp(o) >= 0; }

  UBig& add(const UBig& o);
  /// Subtract o from *this; requires *this >= o.
  UBig& sub(const UBig& o);
  UBig& mul_u64(std::uint64_t m);
  UBig& add_u64(std::uint64_t v);

  /// Divide in place by d (d != 0); returns the remainder.
  std::uint64_t divmod_u64(std::uint64_t d);

  /// Remainder modulo d without modifying *this.
  std::uint64_t mod_u64(std::uint64_t d) const;

  /// Reduce *this modulo m by conditional subtraction. Intended for values
  /// bounded by a small multiple of m (e.g. CRT sums < k*m).
  UBig& mod_by_subtraction(const UBig& m);

  /// Number of significant bits (0 for zero).
  unsigned bit_length() const;

  /// Right shift by one bit (used to build m/2 thresholds).
  UBig& shr1();

  /// Value as decimal string (testing/diagnostics).
  std::string to_string() const;

  /// Low 64 bits.
  std::uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  const std::vector<std::uint64_t>& limbs() const { return limbs_; }

  /// a * b (schoolbook); setup-time only.
  static UBig mul(const UBig& a, const UBig& b);

  /// Product of a list of 64-bit factors (e.g. an RNS modulus q).
  static UBig product(const std::vector<std::uint64_t>& factors);

 private:
  void trim();
  // Little-endian 64-bit limbs, no trailing zero limbs; empty == 0.
  std::vector<std::uint64_t> limbs_;
};

}  // namespace poe
