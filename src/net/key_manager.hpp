// The standalone key service: clients onboard their BGV-encrypted PASTA key
// (enc(K)) here — never at a worker shard — and the router pulls validated
// key bytes when it installs a session on a shard. Mirrors the Key_Manager
// process of the DecisionFramework HHE split: workers see only evaluation
// traffic, onboarding (upload, validation, storage) is isolated in one
// small process whose only secret-adjacent material is ciphertext.
//
// Uploads pass the same hardened gate as TranscipherService's wire ingest:
// deserialize against the evaluation context + a decrypt-free plausibility
// check (fhe::validate_ciphertext) before the bytes are stored. The store
// is mutex-guarded so one KeyManager can serve concurrent connections
// (clients onboarding while the router fetches).
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "fhe/context.hpp"
#include "net/frame.hpp"

namespace poe::net {

class KeyManager {
 public:
  explicit KeyManager(const fhe::RnsContext& ctx) : ctx_(ctx) {}

  /// Serve one connection until it ends. Returns false after an orderly
  /// kShutdown frame (stop accepting), true otherwise (accept the next
  /// connection).
  bool serve(FrameChannel& ch);

  bool has_key(std::uint64_t client_id) const;
  std::size_t key_count() const;

 private:
  const fhe::RnsContext& ctx_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> keys_;
};

}  // namespace poe::net
