#include "net/wire.hpp"

#include <array>

namespace poe::net {

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void WireWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void WireWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void WireWriter::blob(std::span<const std::uint8_t> bytes) {
  POE_ENSURE(bytes.size() <= UINT32_MAX, "blob exceeds u32 length prefix");
  u32(static_cast<std::uint32_t>(bytes.size()));
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

void WireWriter::str(std::string_view s) {
  blob({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

std::span<const std::uint8_t> WireReader::need(std::size_t n) {
  if (n > remaining()) {
    throw WireError("truncated wire message: need " + std::to_string(n) +
                    " bytes, have " + std::to_string(remaining()));
  }
  auto view = bytes_.subspan(pos_, n);
  pos_ += n;
  return view;
}

std::uint8_t WireReader::u8() { return need(1)[0]; }

std::uint16_t WireReader::u16() {
  auto b = need(2);
  return static_cast<std::uint16_t>(b[0] | (std::uint16_t{b[1]} << 8));
}

std::uint32_t WireReader::u32() {
  auto b = need(4);
  return std::uint32_t{b[0]} | (std::uint32_t{b[1]} << 8) |
         (std::uint32_t{b[2]} << 16) | (std::uint32_t{b[3]} << 24);
}

std::uint64_t WireReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

std::span<const std::uint8_t> WireReader::blob() {
  const std::uint32_t len = u32();
  // The length field is untrusted: bound it by the bytes actually present
  // before it can size an allocation.
  if (len > remaining()) {
    throw WireError("blob length " + std::to_string(len) +
                    " exceeds the remaining " + std::to_string(remaining()) +
                    " bytes");
  }
  return need(len);
}

std::string WireReader::str() {
  auto b = blob();
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

void WireReader::expect_done(std::string_view what) const {
  if (remaining() != 0) {
    throw WireError(std::string(what) + ": " + std::to_string(remaining()) +
                    " undeclared trailing bytes");
  }
}

}  // namespace poe::net
