#include "net/ring.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace poe::net {

namespace {
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace

HashRing::HashRing(std::size_t shards, std::size_t vnodes) {
  POE_ENSURE(shards >= 1, "ring needs at least one shard");
  POE_ENSURE(vnodes >= 1, "ring needs at least one vnode per shard");
  alive_.assign(shards, true);
  alive_count_ = shards;
  points_.reserve(shards * vnodes);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      // Distinct stream per (shard, vnode); the odd multipliers keep the
      // two coordinates from aliasing.
      const std::uint64_t at =
          splitmix64(static_cast<std::uint64_t>(s) * 0x2545F4914F6CDD1Dull +
                     static_cast<std::uint64_t>(v) * 2 + 1);
      points_.push_back(Point{at, static_cast<std::uint32_t>(s)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) { return a.at < b.at; });
}

std::size_t HashRing::owner(std::uint64_t client) const {
  POE_ENSURE(alive_count_ > 0, "every shard of the ring is dead");
  const std::uint64_t h = splitmix64(client ^ 0xC2B2AE3D27D4EB4Full);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.at < v; });
  // First live point clockwise, wrapping at most once past the whole ring.
  for (std::size_t step = 0; step < points_.size(); ++step) {
    if (it == points_.end()) it = points_.begin();
    if (alive_[it->shard]) return it->shard;
    ++it;
  }
  throw Error("every shard of the ring is dead");
}

void HashRing::mark_dead(std::size_t shard) {
  if (alive_[shard]) {
    alive_[shard] = false;
    --alive_count_;
  }
}

void HashRing::revive(std::size_t shard) {
  if (!alive_[shard]) {
    alive_[shard] = true;
    ++alive_count_;
  }
}

}  // namespace poe::net
