#include "net/key_manager.hpp"

#include "fhe/serialize.hpp"
#include "net/messages.hpp"

namespace poe::net {

bool KeyManager::serve(FrameChannel& ch) {
  for (;;) {
    std::optional<FrameChannel::Received> msg;
    try {
      msg = ch.recv();
    } catch (const WireError&) {
      return true;  // damaged connection; keep accepting others
    }
    if (!msg) return true;  // peer closed cleanly
    try {
      switch (msg->type) {
        case MsgType::kPing:
          ch.send(MsgType::kPong, {});
          break;
        case MsgType::kOnboardKey: {
          AckMsg ack;
          try {
            OnboardKeyMsg upload = decode_onboard_key(msg->payload);
            // Same untrusted-bytes gate as the in-process wire ingest:
            // deserialize + decrypt-free plausibility check before the
            // bytes can ever reach a shard.
            const fhe::Ciphertext ct =
                fhe::deserialize_ciphertext(ctx_, upload.key_bytes);
            if (auto why = fhe::validate_ciphertext(ctx_, ct)) {
              ack.error = "implausible key upload: " + *why;
            } else {
              std::lock_guard<std::mutex> lock(mu_);
              keys_[upload.client_id] = std::move(upload.key_bytes);
              ack.ok = true;
            }
          } catch (const poe::Error& e) {
            ack.error = e.what();
          }
          ch.send(MsgType::kOnboardAck, encode_ack(ack));
          break;
        }
        case MsgType::kFetchKey: {
          const FetchKeyMsg fetch = decode_fetch_key(msg->payload);
          KeyStateMsg state;
          {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = keys_.find(fetch.client_id);
            if (it != keys_.end()) {
              state.found = true;
              state.key_bytes = it->second;
            }
          }
          ch.send(MsgType::kKeyState, encode_key_state(state));
          break;
        }
        case MsgType::kShutdown:
          return false;
        default:
          ch.send(MsgType::kError,
                  encode_ack(AckMsg{
                      false, std::string("unexpected frame type: ") +
                                 to_string(msg->type)}));
          break;
      }
    } catch (const WireError&) {
      return true;  // response send failed; connection is gone
    }
  }
}

bool KeyManager::has_key(std::uint64_t client_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return keys_.contains(client_id);
}

std::size_t KeyManager::key_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return keys_.size();
}

}  // namespace poe::net
