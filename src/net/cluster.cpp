#include "net/cluster.hpp"

#include "net/messages.hpp"

namespace poe::net {

LocalCluster::LocalCluster(const hhe::HheConfig& config,
                           const fhe::RnsContext& client_ctx,
                           ClusterConfig cluster_config)
    : config_(config),
      client_ctx_(client_ctx),
      cluster_config_(cluster_config) {
  POE_ENSURE(cluster_config_.shards >= 1, "cluster needs at least one shard");

  km_ = std::make_unique<KeyManager>(client_ctx_);
  km_listen_ = ListenSocket::loopback();
  km_accept_thread_ = std::thread([this] { km_main(); });

  shards_.reserve(cluster_config_.shards);
  for (std::size_t s = 0; s < cluster_config_.shards; ++s) {
    auto host = std::make_unique<ShardHost>();
    host->exec = std::make_unique<ExecContext>();
    // Bgv construction then rotation keys IMMEDIATELY: with the
    // deterministic seed this consumes the key-material randomness in
    // exactly the order the client-side evaluator did, so every shard's
    // keys (secret, public, relin, Galois) are bit-identical to the
    // client's — the property the bit-identity differential axis rests on.
    host->bgv = std::make_unique<fhe::Bgv>(config_.bgv, host->exec.get());
    host->keys =
        hhe::SimdBatchEngine::make_shared_rotation_keys(config_, *host->bgv);
    host->listen = ListenSocket::loopback();
    ShardHost& ref = *host;
    host->thread = std::thread([this, &ref] { shard_main(ref); });
    shards_.push_back(std::move(host));
  }

  std::vector<FrameChannel> channels;
  channels.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    channels.push_back(connect_shard(s));
  }
  FrameChannel km_channel(connect_loopback(km_listen_.port()));
  router_ = std::make_unique<Router>(client_ctx_, std::move(channels),
                                     std::move(km_channel),
                                     cluster_config_.router);
}

LocalCluster::~LocalCluster() {
  // Destroying the router closes every channel: serving loops see EOF and
  // fall back to accept(), which the aborts below then break out of.
  router_.reset();
  km_listen_.abort();
  for (auto& host : shards_) host->listen.abort();
  if (km_accept_thread_.joinable()) km_accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(km_mu_);
    for (std::thread& t : km_conn_threads_) {
      if (t.joinable()) t.join();
    }
  }
  for (auto& host : shards_) {
    if (host->thread.joinable()) host->thread.join();
  }
}

void LocalCluster::shard_main(ShardHost& host) {
  std::optional<ShardServer> server;
  server.emplace(config_, *host.bgv, cluster_config_.service, host.keys);
  for (;;) {
    Socket sock;
    try {
      sock = host.listen.accept();
    } catch (const WireError&) {
      return;  // listener aborted: cluster shutting down
    }
    FrameChannel ch(std::move(sock), host.exec.get());
    const ShardServer::Exit exit = server->serve(ch);
    if (exit == ShardServer::Exit::kShutdown) return;
    if (exit == ShardServer::Exit::kKilled) {
      // The "process" died: its session partition is gone. The supervisor
      // restarts it — same deterministic key material, empty service.
      server.emplace(config_, *host.bgv, cluster_config_.service, host.keys);
    }
    // kConnectionLost keeps the server (state survives a torn link); either
    // way, wait for the router to reconnect.
  }
}

void LocalCluster::km_main() {
  for (;;) {
    Socket sock;
    try {
      sock = km_listen_.accept();
    } catch (const WireError&) {
      return;  // aborted
    }
    std::lock_guard<std::mutex> lock(km_mu_);
    km_conn_threads_.emplace_back([this, s = std::move(sock)]() mutable {
      FrameChannel ch(std::move(s));
      if (!km_->serve(ch)) km_listen_.abort();  // orderly shutdown frame
    });
  }
}

FrameChannel LocalCluster::connect_shard(std::size_t i) {
  // The router side of the channel carries no injector: the chaos sites
  // model faults in the WORKERS and their links, and fire from shard
  // contexts (see set_fault_injector).
  return FrameChannel(connect_loopback(shards_[i]->listen.port()));
}

bool LocalCluster::onboard(std::uint64_t client_id,
                           std::span<const std::uint8_t> key_bytes,
                           std::string* error) {
  FrameChannel ch(connect_loopback(km_listen_.port()));
  OnboardKeyMsg msg;
  msg.client_id = client_id;
  msg.key_bytes.assign(key_bytes.begin(), key_bytes.end());
  ch.send(MsgType::kOnboardKey, encode_onboard_key(msg));
  auto resp = ch.recv();
  if (!resp || resp->type != MsgType::kOnboardAck) {
    if (error != nullptr) *error = "key manager connection lost";
    return false;
  }
  const AckMsg ack = decode_ack(resp->payload);
  if (!ack.ok && error != nullptr) *error = ack.error;
  return ack.ok;
}

void LocalCluster::set_fault_injector(FaultInjector* injector) {
  for (auto& host : shards_) host->exec->set_fault_injector(injector);
}

void LocalCluster::revive_dead_shards() {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!router_->shard_alive(s)) {
      router_->revive_shard(s, connect_shard(s));
    }
  }
}

}  // namespace poe::net
