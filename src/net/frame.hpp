// The length-prefixed binary framing every process boundary speaks.
//
// Frame layout (little endian; 16-byte header, then the payload):
//
//   offset  0  u32  magic    0x464F4550 ("POEF")
//           4  u16  version  kFrameVersion
//           6  u16  type     MsgType
//           8  u32  length   payload bytes, <= kMaxFramePayload
//          12  u32  crc      CRC-32 of the payload
//
// Receivers validate the header (magic, version, known type, length bound)
// BEFORE reading or allocating for the payload, and the CRC after — a
// hostile or damaged length field can never size an allocation, the same
// overflow discipline fhe/serialize.cpp applies to ciphertext bytes.
//
// FrameChannel is the transport binding: one frame per send/recv over a
// connected socket, instrumented for the chaos harness (net.frame.torn
// models a peer dying mid-write, net.peer.stall a slow peer — see
// common/fault.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/exec_context.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace poe::net {

inline constexpr std::uint32_t kFrameMagic = 0x464F4550;  // "POEF"
inline constexpr std::uint16_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Generous bound for one message (a packed batch of serialized ciphertexts
/// stays well under it) — anything larger is protocol damage, rejected
/// before allocation.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 26;  // 64 MiB

/// Every message the router, shards and key manager exchange. Values are
/// wire-stable: append new types, never renumber.
enum class MsgType : std::uint16_t {
  kPing = 1,
  kPong = 2,
  kError = 3,           ///< payload: str reason (unexpected frame, ...)
  kOnboardKey = 4,      ///< client -> key manager: enc(K) upload
  kOnboardAck = 5,
  kFetchKey = 6,        ///< router -> key manager
  kKeyState = 7,
  kInstallSession = 8,  ///< router -> shard: serialized SessionState
  kInstallAck = 9,
  kProcessBatch = 10,   ///< router -> shard: transcipher requests
  kProcessResult = 11,
  kShutdown = 12,       ///< orderly stop, no reply
};

bool known_msg_type(std::uint16_t raw);
const char* to_string(MsgType t);

struct FrameHeader {
  std::uint16_t version = 0;
  MsgType type = MsgType::kPing;
  std::uint32_t length = 0;
  std::uint32_t crc = 0;
};

/// Header + payload + CRC, ready to write to a socket.
std::vector<std::uint8_t> encode_frame(MsgType type,
                                       std::span<const std::uint8_t> payload);

/// Validates magic, version, known type and the length bound from the first
/// kFrameHeaderBytes of `bytes`. Does NOT check the CRC (the payload may not
/// have been read yet). Throws WireError.
FrameHeader parse_frame_header(std::span<const std::uint8_t> bytes);

struct Frame {
  MsgType type = MsgType::kPing;
  std::vector<std::uint8_t> payload;
};

/// Whole-buffer decode (the fuzz/property suite's entry point): header
/// validation, exact length match against the buffer, then the payload CRC.
Frame decode_frame(std::span<const std::uint8_t> bytes);

/// One-frame-per-message transport over a connected socket.
class FrameChannel {
 public:
  FrameChannel() = default;
  /// `exec` (nullable) supplies the FaultInjector consulted by the chaos
  /// sites; pass the owning component's context so injected network faults
  /// are attributed to the right process.
  explicit FrameChannel(Socket sock, ExecContext* exec = nullptr)
      : sock_(std::move(sock)), exec_(exec) {}

  bool valid() const { return sock_.valid(); }

  /// Writes one frame. Chaos site `net.frame.torn` (kForce) models this
  /// endpoint dying mid-write: only the first half of the frame is sent,
  /// the connection is wrecked, and a WireError is thrown — the peer sees
  /// a torn frame, this side sees a dead channel.
  void send(MsgType type, std::span<const std::uint8_t> payload);

  struct Received {
    MsgType type = MsgType::kPing;
    std::vector<std::uint8_t> payload;
    /// Virtual seconds of injected peer slowness charged by the
    /// `net.peer.stall` chaos site (bounded real sleep — see FaultInjector).
    double stall_s = 0;
  };

  /// Blocking read of one frame. Returns std::nullopt on a clean close at a
  /// frame boundary; throws WireError on a mid-frame close (torn frame) or
  /// any header/CRC violation.
  std::optional<Received> recv();

  /// Wreck the connection (both directions); the peer observes EOF.
  void shutdown() { sock_.shutdown_both(); }

 private:
  Socket sock_;
  ExecContext* exec_ = nullptr;
};

}  // namespace poe::net
