// One worker shard: a TranscipherService behind a FrameChannel. The shard
// owns its session-LRU partition and (in a real deployment) its own process
// with its own ExecContext; the deterministic BgvParams seed means every
// shard derives bit-identical evaluation key material independently, so no
// secret ever crosses the wire. Shards never see onboarding traffic — the
// router installs sessions from key-manager-validated enc(K) bytes via
// kInstallSession, and every kProcessBatch response piggybacks key-less
// SessionState snapshots of the sessions it touched so the router can
// rebalance them to a survivor if this shard dies.
#pragma once

#include <memory>

#include "fhe/bgv.hpp"
#include "hhe/protocol.hpp"
#include "net/frame.hpp"
#include "service/service.hpp"

namespace poe::net {

class ShardServer {
 public:
  ShardServer(const hhe::HheConfig& config, const fhe::Bgv& bgv,
              service::ServiceConfig service_config = {},
              std::shared_ptr<const fhe::GaloisKeys> shared_keys = nullptr);

  /// Why serve() returned — what a supervisor (the cluster harness, or a
  /// real process manager) acts on.
  enum class Exit {
    kShutdown,        ///< orderly kShutdown frame
    kKilled,          ///< chaos site `shard.kill` fired: the "process" died
    kConnectionLost,  ///< peer EOF / torn frame; shard state survives
  };

  /// Serve one router connection until it ends. A fired `shard.kill` wrecks
  /// the connection without a response and reports kKilled — the supervisor
  /// must then discard this ShardServer (session state is lost, exactly
  /// like a real process death) and construct a fresh one.
  Exit serve(FrameChannel& ch);

  service::TranscipherService& service() { return service_; }
  const fhe::Bgv& bgv() const { return bgv_; }

 private:
  void handle_process_batch(FrameChannel& ch,
                            std::span<const std::uint8_t> payload,
                            double recv_stall_s);

  const hhe::HheConfig& config_;
  const fhe::Bgv& bgv_;
  service::TranscipherService service_;
};

}  // namespace poe::net
