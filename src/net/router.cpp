#include "net/router.hpp"

#include <algorithm>

#include "fhe/serialize.hpp"

namespace poe::net {

using service::RequestStatus;
using service::SessionState;
using service::TranscipherResult;

Router::Router(const fhe::RnsContext& ctx, std::vector<FrameChannel> shards,
               FrameChannel key_manager, RouterConfig config)
    : ctx_(ctx),
      shards_(std::move(shards)),
      km_(std::move(key_manager)),
      config_(config),
      ring_(shards_.size(), config.ring_vnodes),
      installed_(shards_.size()) {}

void Router::apply_session_update(std::span<const std::uint8_t> bytes) {
  SessionState incoming = service::deserialize_session_state(bytes);
  SessionState& cached = cache_[incoming.client_id];
  cached.client_id = incoming.client_id;
  // Union, preserving first-seen order — mirrors the merge semantics of
  // TranscipherService::import_session, so cache and shard windows agree.
  std::unordered_set<std::uint64_t> seen(cached.nonces.begin(),
                                         cached.nonces.end());
  for (const std::uint64_t nonce : incoming.nonces) {
    if (seen.insert(nonce).second) cached.nonces.push_back(nonce);
  }
  cached.requests_served =
      std::max(cached.requests_served, incoming.requests_served);
  cached.blocks_served = std::max(cached.blocks_served, incoming.blocks_served);
}

bool Router::ensure_session(std::uint64_t client, std::string* error) {
  // The install may chase ownership across successive shard deaths, but
  // each death permanently shrinks the live set, so shard_count() attempts
  // always suffice.
  for (std::size_t attempt = 0; attempt <= shards_.size(); ++attempt) {
    if (ring_.alive_count() == 0) {
      if (error != nullptr) *error = "no live shard";
      return false;
    }
    const std::size_t owner = ring_.owner(client);
    if (installed_[owner].contains(client)) return true;

    // enc(K) comes from the key manager on every install — the router
    // never holds key bytes beyond this scope. A dead key-manager channel
    // is a control-plane failure and propagates as WireError.
    km_.send(MsgType::kFetchKey, encode_fetch_key(FetchKeyMsg{client}));
    auto km_resp = km_.recv();
    if (!km_resp || km_resp->type != MsgType::kKeyState) {
      throw WireError("key manager connection lost");
    }
    KeyStateMsg key_state = decode_key_state(km_resp->payload);
    if (!key_state.found) {
      if (error != nullptr) {
        *error = "client has not onboarded a key";
      }
      return false;
    }

    SessionState state;
    state.client_id = client;
    state.has_key = true;
    state.key_bytes = std::move(key_state.key_bytes);
    if (auto it = cache_.find(client); it != cache_.end()) {
      state.nonces = it->second.nonces;
      state.requests_served = it->second.requests_served;
      state.blocks_served = it->second.blocks_served;
    }
    try {
      shards_[owner].send(MsgType::kInstallSession,
                          service::serialize_session_state(state));
      auto ack_resp = shards_[owner].recv();
      if (!ack_resp || ack_resp->type != MsgType::kInstallAck) {
        throw WireError("shard closed during session install");
      }
      const AckMsg ack = decode_ack(ack_resp->payload);
      if (!ack.ok) {
        if (error != nullptr) *error = "session install rejected: " + ack.error;
        return false;
      }
      installed_[owner].insert(client);
      return true;
    } catch (const WireError&) {
      handle_shard_death(owner);  // then retry against the new owner
    }
  }
  if (error != nullptr) *error = "no live shard";
  return false;
}

void Router::handle_shard_death(std::size_t i) {
  if (!ring_.alive(i)) return;
  ring_.mark_dead(i);
  ++shards_lost_;
  shards_[i].shutdown();
  // Ownership just moved: every install mark is stale (a survivor may now
  // own clients whose freshest nonces it never saw), so drop them all and
  // reinstall from the cache. The reinstall itself is DEFERRED: a death
  // noticed mid-collect must not push install frames at survivors that
  // still owe a kProcessResult for the in-flight wave — the install's
  // reply read would swallow the pending result frame and cascade the
  // failure. rebalance_dead_sessions() runs once the wave is quiesced.
  for (auto& marks : installed_) marks.clear();
  rebalance_pending_ = true;
}

void Router::rebalance_dead_sessions() {
  if (!rebalance_pending_ || ring_.alive_count() == 0) return;
  rebalance_pending_ = false;
  // Restore every known session onto the new owners from its serialized
  // state: enc(K) refetched from the key manager, the nonce window from the
  // piggyback cache. Failures (another death mid-loop) are retried lazily
  // by the next ensure_session.
  for (const auto& [client, state] : cache_) {
    if (ensure_session(client, nullptr)) ++sessions_rebalanced_;
  }
}

void Router::revive_shard(std::size_t i, FrameChannel fresh) {
  shards_[i] = std::move(fresh);
  ring_.revive(i);
  // Same staleness argument as on death: ownership moved back, reinstall
  // lazily everywhere.
  for (auto& marks : installed_) marks.clear();
}

std::vector<TranscipherResult> Router::process(
    std::span<const service::TranscipherRequest> requests,
    RouterReport* report) {
  RouterReport local;
  RouterReport& rep = report != nullptr ? *report : local;
  rep = RouterReport{};
  rep.requests = requests.size();

  std::vector<TranscipherResult> results(requests.size());
  for (std::size_t r = 0; r < requests.size(); ++r) {
    results[r].client_id = requests[r].client_id;
    results[r].nonce = requests[r].nonce;
  }

  // ---- Session placement: one ensure per distinct client. Clients the key
  // ---- manager has never seen degrade to kUnknownSession right here; an
  // ---- install that failed because every shard is gone is kFailed (the
  // ---- client's standing is fine, the cluster's is not).
  struct PlacementFailure {
    RequestStatus status;
    std::string error;
  };
  std::unordered_map<std::uint64_t, PlacementFailure> unplaced;
  std::unordered_set<std::uint64_t> placed;
  for (const auto& req : requests) {
    if (placed.contains(req.client_id) || unplaced.contains(req.client_id)) {
      continue;
    }
    std::string error;
    if (ensure_session(req.client_id, &error)) {
      placed.insert(req.client_id);
    } else {
      unplaced.emplace(req.client_id,
                       PlacementFailure{ring_.alive_count() == 0
                                            ? RequestStatus::kFailed
                                            : RequestStatus::kUnknownSession,
                                        std::move(error)});
    }
  }

  // ---- Group by owning shard. Order within a group is request order, so a
  // ---- single-shard deployment reproduces the in-process batch
  // ---- composition exactly (the bit-identity axis of the differential
  // ---- suite).
  std::vector<std::vector<std::size_t>> group(shards_.size());
  for (std::size_t r = 0; r < requests.size(); ++r) {
    if (auto it = unplaced.find(requests[r].client_id); it != unplaced.end()) {
      results[r].status = it->second.status;
      results[r].error = it->second.error;
      continue;
    }
    if (ring_.alive_count() == 0) {
      results[r].status = RequestStatus::kFailed;
      results[r].error = "no live shard";
      continue;
    }
    group[ring_.owner(requests[r].client_id)].push_back(r);
  }

  auto degrade_group = [&](std::size_t shard, RequestStatus status,
                           const std::string& why) {
    for (const std::size_t r : group[shard]) {
      if (results[r].status == RequestStatus::kOk &&
          results[r].blocks.empty()) {
        results[r].status = status;
        results[r].error = why;
      }
    }
  };

  // ---- Send phase: every shard gets its whole wave in one frame before
  // ---- any response is read, so shards compute concurrently.
  std::vector<bool> sent(shards_.size(), false);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (group[s].empty() || !ring_.alive(s)) continue;
    ProcessBatchMsg batch;
    batch.requests.reserve(group[s].size());
    for (const std::size_t r : group[s]) batch.requests.push_back(requests[r]);
    try {
      shards_[s].send(MsgType::kProcessBatch, encode_process_batch(batch));
      sent[s] = true;
    } catch (const WireError& e) {
      handle_shard_death(s);
      degrade_group(s, RequestStatus::kFailed,
                    std::string("shard connection lost: ") + e.what());
    }
  }

  // ---- Collect phase. A dead shard degrades its wave to kFailed (nonces
  // ---- unrecorded — safe to retry); a stalled one to kTimedOut (nonces
  // ---- recorded — a retry replays).
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!sent[s]) continue;
    try {
      auto resp = shards_[s].recv();
      if (!resp) throw WireError("shard closed before responding");
      if (resp->type == MsgType::kError) {
        const AckMsg err = decode_ack(resp->payload);
        throw WireError("shard rejected the wave: " + err.error);
      }
      if (resp->type != MsgType::kProcessResult) {
        throw WireError(std::string("unexpected response frame: ") +
                        to_string(resp->type));
      }
      ProcessResultMsg out = decode_process_result(resp->payload);
      if (out.results.size() != group[s].size()) {
        throw WireError("shard answered " + std::to_string(out.results.size()) +
                        " results for " + std::to_string(group[s].size()) +
                        " requests");
      }
      // The piggybacked windows are applied unconditionally — even on a
      // timed-out wave the shard DID record those nonces, and the cache
      // must know before any client could retry.
      for (const auto& update : out.session_updates) {
        apply_session_update(update);
      }
      rep.shard_reports.push_back(out.report);

      std::vector<std::shared_ptr<const fhe::Ciphertext>> cts;
      cts.reserve(out.cts.size());
      for (const auto& bytes : out.cts) {
        cts.push_back(std::make_shared<const fhe::Ciphertext>(
            fhe::deserialize_ciphertext(ctx_, bytes)));
      }
      const double stall = out.stall_s + resp->stall_s;
      const bool timed_out =
          config_.peer_timeout_s > 0 && stall > config_.peer_timeout_s;
      for (std::size_t k = 0; k < group[s].size(); ++k) {
        const std::size_t r = group[s][k];
        const WireResult& wire = out.results[k];
        if (wire.client_id != results[r].client_id ||
            wire.nonce != results[r].nonce) {
          throw WireError("shard results out of order");
        }
        if (timed_out) {
          results[r].status = RequestStatus::kTimedOut;
          results[r].error = "peer stall exceeded the router timeout";
          continue;
        }
        results[r].status = wire.status;
        results[r].error = wire.error;
        results[r].blocks.reserve(wire.blocks.size());
        for (const WireBlockRef& b : wire.blocks) {
          results[r].blocks.push_back(
              service::PlacedBlock{cts[b.ct_index], b.tile, b.len});
        }
      }
    } catch (const poe::Error& e) {
      // WireError or a ciphertext that failed deserialization: either way
      // the shard (or its link) is not trustworthy — fail the wave over to
      // the survivors.
      handle_shard_death(s);
      degrade_group(s, RequestStatus::kFailed,
                    std::string("shard connection lost: ") + e.what());
    }
  }

  // ---- Every channel is quiesced now: restore the sessions of any shard
  // ---- that died this wave onto the survivors.
  rebalance_dead_sessions();

  // ---- Terminal accounting: the status buckets partition the requests
  // ---- (the same invariant ServiceReport::faults keeps in-process).
  for (TranscipherResult& res : results) {
    switch (res.status) {
      case RequestStatus::kOk: ++rep.faults.ok; break;
      case RequestStatus::kUnknownSession:
      case RequestStatus::kNonceReplay:
      case RequestStatus::kInvalidRequest:
        ++rep.faults.rejected;
        res.blocks.clear();
        break;
      case RequestStatus::kOverloaded:
        ++rep.faults.shed;
        res.blocks.clear();
        break;
      case RequestStatus::kQuarantined:
        ++rep.faults.quarantined;
        res.blocks.clear();
        break;
      case RequestStatus::kTimedOut:
        ++rep.faults.timed_out;
        res.blocks.clear();
        break;
      case RequestStatus::kFailed:
        ++rep.faults.failed;
        res.blocks.clear();
        break;
    }
  }
  rep.shards_lost = shards_lost_;
  rep.sessions_rebalanced = sessions_rebalanced_;
  return results;
}

}  // namespace poe::net
