// Little-endian primitives for the framed wire protocol: an append-only
// writer, a bounds-checked reader, and the IEEE CRC-32 the frame header
// carries. Every reader method validates against the remaining bytes BEFORE
// touching them and every length prefix is checked against the buffer it
// claims to describe — the same overflow discipline as fhe/serialize.cpp,
// applied to the process boundary.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace poe::net {

/// Thrown on any malformed or damaged wire input: truncated reads, length
/// fields beyond the buffer or the protocol bound, bad magic / version /
/// checksum, and socket-level failures (a peer closing mid-frame). Derived
/// from poe::Error so the serving stack's typed-degradation machinery treats
/// protocol damage like any other organic fault.
class WireError : public Error {
 public:
  using Error::Error;
};

/// IEEE 802.3 CRC-32 (the zlib polynomial), table-driven.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Append-only little-endian byte builder for message payloads.
class WireWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// u32 length prefix + raw bytes.
  void blob(std::span<const std::uint8_t> bytes);
  void str(std::string_view s);

  std::span<const std::uint8_t> bytes() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked little-endian reader over a borrowed buffer. Every method
/// throws WireError instead of reading past the end.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Inverse of WireWriter::blob; the length prefix is validated against the
  /// remaining buffer before any allocation sized from it.
  std::span<const std::uint8_t> blob();
  std::string str();

  std::size_t remaining() const { return bytes_.size() - pos_; }
  /// Throws when the message left undeclared trailing bytes.
  void expect_done(std::string_view what) const;

 private:
  std::span<const std::uint8_t> need(std::size_t n);

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace poe::net
